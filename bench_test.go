// Repository-level benchmarks: one testing.B benchmark per table and
// figure of the paper's evaluation (§IV). Each benchmark drives the same
// internal/bench harness as cmd/nxbench, at a reduced scale chosen so the
// whole suite completes on a small CI machine, and reports the harness
// table through b.Log (visible with -v).
//
//	go test -bench=. -benchmem            # reduced scale
//	go run ./cmd/nxbench -exp all         # full harness
//
// Absolute times differ from the paper (scaled datasets, simulated
// disks); EXPERIMENTS.md records the paper-vs-measured comparison.
package nxgraph_test

import (
	"testing"

	"nxgraph/internal/bench"
	"nxgraph/internal/metrics"
)

func benchSuite(b *testing.B) *bench.Suite {
	b.Helper()
	s := bench.NewSuite()
	s.ScaleDelta = -6
	s.Threads = 2
	s.PageRankIters = 3
	b.Cleanup(s.Close)
	return s
}

func report(b *testing.B, t *metrics.Table, err error) {
	b.Helper()
	if err != nil {
		b.Fatal(err)
	}
	if b.N > 0 {
		b.Log("\n" + t.String())
	}
}

// BenchmarkTableII regenerates the analytic I/O model table.
func BenchmarkTableII(b *testing.B) {
	s := benchSuite(b)
	var t *metrics.Table
	for i := 0; i < b.N; i++ {
		t = s.TableII()
	}
	report(b, t, nil)
}

// BenchmarkFig6 regenerates the MPU/TurboGraph-like I/O ratio curve.
func BenchmarkFig6(b *testing.B) {
	s := benchSuite(b)
	var t *metrics.Table
	for i := 0; i < b.N; i++ {
		t = s.Fig6(12)
	}
	report(b, t, nil)
}

// BenchmarkTable4 regenerates Exp 1: sub-shard ordering and parallelism.
func BenchmarkTable4(b *testing.B) {
	s := benchSuite(b)
	for i := 0; i < b.N; i++ {
		t, err := s.Table4()
		report(b, t, err)
	}
}

// BenchmarkFig7 regenerates Exp 2: performance vs partitioning.
func BenchmarkFig7(b *testing.B) {
	s := benchSuite(b)
	for i := 0; i < b.N; i++ {
		t, err := s.Fig7([]int{2, 4, 12, 24})
		report(b, t, err)
	}
}

// BenchmarkFig8 regenerates Exp 3: SPU vs DPU across threads and memory.
func BenchmarkFig8(b *testing.B) {
	s := benchSuite(b)
	for i := 0; i < b.N; i++ {
		t, err := s.Fig8([]int{1, 2, 4}, []float64{0.5, 1})
		report(b, t, err)
	}
}

// BenchmarkFig9 regenerates Exp 4: PageRank vs memory budget per system.
func BenchmarkFig9(b *testing.B) {
	s := benchSuite(b)
	for i := 0; i < b.N; i++ {
		t, err := s.Fig9([]float64{0.25, 1})
		report(b, t, err)
	}
}

// BenchmarkFig10 regenerates Exp 5: PageRank vs thread count per system.
func BenchmarkFig10(b *testing.B) {
	s := benchSuite(b)
	for i := 0; i < b.N; i++ {
		t, err := s.Fig10([]int{1, 2})
		report(b, t, err)
	}
}

// BenchmarkFig11 regenerates Exp 6: MTEPS scalability on mesh graphs.
func BenchmarkFig11(b *testing.B) {
	s := benchSuite(b)
	for i := 0; i < b.N; i++ {
		t, err := s.Fig11()
		report(b, t, err)
	}
}

// BenchmarkFig12 regenerates Exp 7: BFS / SCC / WCC per system.
func BenchmarkFig12(b *testing.B) {
	s := benchSuite(b)
	for i := 0; i < b.N; i++ {
		t, err := s.Fig12()
		report(b, t, err)
	}
}

// BenchmarkTable5 regenerates Exp 8: limited resources on SSD and HDD.
func BenchmarkTable5(b *testing.B) {
	s := benchSuite(b)
	for i := 0; i < b.N; i++ {
		t, err := s.Table5()
		report(b, t, err)
	}
}

// BenchmarkTable6 regenerates Exp 9: best-case single-iteration PageRank.
func BenchmarkTable6(b *testing.B) {
	s := benchSuite(b)
	for i := 0; i < b.N; i++ {
		t, err := s.Table6()
		report(b, t, err)
	}
}
