// bench2json converts `go test -bench` text output (read from stdin)
// into a machine-readable JSON document (written to stdout), for CI jobs
// that archive benchmark trajectories as artifacts.
//
//	go test -run '^$' -bench . -benchtime=1x -count=3 ./... | bench2json > BENCH_ci.json
//
// Every benchmark result line becomes one entry — repeated -count runs
// stay separate entries so downstream tooling can compute its own
// dispersion — and the goos/goarch/cpu/pkg context lines are attached to
// the entries they precede.
//
// With -diff it instead compares two documents and warns (GitHub
// workflow-command format, never a failing exit) on time regressions
// beyond -warn-pct:
//
//	bench2json -diff BENCH_seed.json BENCH_ci.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Entry is one benchmark result line.
type Entry struct {
	Pkg        string `json:"pkg,omitempty"`
	Name       string `json:"name"`
	Iterations int64  `json:"iterations"`
	// Metrics maps unit -> value: "ns/op", "B/op", "allocs/op", plus any
	// custom b.ReportMetric units (e.g. "MTEPS").
	Metrics map[string]float64 `json:"metrics"`
}

// Doc is the emitted document.
type Doc struct {
	GOOS       string  `json:"goos,omitempty"`
	GOARCH     string  `json:"goarch,omitempty"`
	CPU        string  `json:"cpu,omitempty"`
	Benchmarks []Entry `json:"benchmarks"`
}

// parseLine parses one "BenchmarkName-8  N  V unit  V unit..." line,
// reporting ok=false for non-benchmark lines.
func parseLine(pkg, line string) (Entry, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Entry{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Entry{}, false
	}
	e := Entry{Pkg: pkg, Name: fields[0], Iterations: iters, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Entry{}, false
		}
		e.Metrics[fields[i+1]] = v
	}
	return e, true
}

// convert reads bench output lines and assembles the document.
func convert(lines []string) Doc {
	doc := Doc{Benchmarks: []Entry{}}
	pkg := ""
	for _, line := range lines {
		switch {
		case strings.HasPrefix(line, "goos: "):
			doc.GOOS = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			doc.GOARCH = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			doc.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "pkg: "):
			pkg = strings.TrimPrefix(line, "pkg: ")
		default:
			if e, ok := parseLine(pkg, line); ok {
				doc.Benchmarks = append(doc.Benchmarks, e)
			}
		}
	}
	return doc
}

// stripProcSuffix drops the trailing "-<GOMAXPROCS>" that go test
// appends to benchmark names on multi-CPU machines, so documents
// produced on machines with different CPU counts still compare.
func stripProcSuffix(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i <= 0 || i == len(name)-1 {
		return name
	}
	for _, c := range name[i+1:] {
		if c < '0' || c > '9' {
			return name
		}
	}
	return name[:i]
}

// bestNsPerOp reduces a document to benchmark key -> fastest ns/op
// across repeated -count entries (min is the standard noise-robust
// reduction: a benchmark cannot run faster than the code allows, only
// slower). Keys are proc-suffix-normalized.
func bestNsPerOp(doc Doc) map[string]float64 {
	best := map[string]float64{}
	for _, e := range doc.Benchmarks {
		ns, ok := e.Metrics["ns/op"]
		if !ok {
			continue
		}
		key := e.Pkg + "." + stripProcSuffix(e.Name)
		if cur, seen := best[key]; !seen || ns < cur {
			best[key] = ns
		}
	}
	return best
}

// diffLine describes one compared benchmark.
type diffLine struct {
	key      string
	old, new float64
	pct      float64 // (new/old - 1) * 100
}

// diffDocs compares the fastest ns/op of every benchmark present in
// both documents, sorted by key.
func diffDocs(oldDoc, newDoc Doc) []diffLine {
	oldBest, newBest := bestNsPerOp(oldDoc), bestNsPerOp(newDoc)
	var out []diffLine
	for key, nv := range newBest {
		ov, ok := oldBest[key]
		if !ok || ov <= 0 {
			continue
		}
		out = append(out, diffLine{key: key, old: ov, new: nv, pct: (nv/ov - 1) * 100})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].key < out[j].key })
	return out
}

func loadDoc(path string) (Doc, error) {
	var doc Doc
	raw, err := os.ReadFile(path)
	if err != nil {
		return doc, err
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		return doc, fmt.Errorf("%s: %w", path, err)
	}
	return doc, nil
}

// runDiff compares base against latest, printing one line per shared
// benchmark and a ::warning:: annotation per regression beyond warnPct.
// Regressions warn but never fail the build: CI runner performance is
// too noisy for a hard gate, and the trajectory is archived anyway.
func runDiff(w io.Writer, basePath, newPath string, warnPct float64) error {
	oldDoc, err := loadDoc(basePath)
	if err != nil {
		return err
	}
	newDoc, err := loadDoc(newPath)
	if err != nil {
		return err
	}
	lines := diffDocs(oldDoc, newDoc)
	if len(lines) == 0 {
		return fmt.Errorf("no benchmarks shared between %s and %s", basePath, newPath)
	}
	// A seed benchmark absent from the new run means the guard lost
	// coverage (renamed benchmark, stale -bench regex) — exactly the
	// case most likely to hide a regression, so it warns too.
	newBest := bestNsPerOp(newDoc)
	var missing []string
	for key := range bestNsPerOp(oldDoc) {
		if _, ok := newBest[key]; !ok {
			missing = append(missing, key)
		}
	}
	sort.Strings(missing)
	for _, key := range missing {
		fmt.Fprintf(w, "::warning::bench coverage lost: %s is in the seed but missing from the current run\n", key)
	}
	regressions := 0
	for _, d := range lines {
		fmt.Fprintf(w, "%-70s %12.0f -> %12.0f ns/op  %+6.1f%%\n", d.key, d.old, d.new, d.pct)
		if d.pct > warnPct {
			regressions++
			fmt.Fprintf(w, "::warning::bench regression: %s is %.1f%% slower than the seed (%.0f -> %.0f ns/op)\n",
				d.key, d.pct, d.old, d.new)
		}
	}
	fmt.Fprintf(w, "%d benchmarks compared, %d regressed beyond %.0f%%, %d missing from current run\n",
		len(lines), regressions, warnPct, len(missing))
	return nil
}

func main() {
	diff := flag.Bool("diff", false, "compare two bench JSON docs: bench2json -diff BASE.json NEW.json")
	warnPct := flag.Float64("warn-pct", 25, "regression percentage that triggers a warning in -diff mode")
	flag.Parse()
	if *diff {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "usage: bench2json -diff [-warn-pct N] BASE.json NEW.json")
			os.Exit(2)
		}
		if err := runDiff(os.Stdout, flag.Arg(0), flag.Arg(1), *warnPct); err != nil {
			fmt.Fprintln(os.Stderr, "bench2json:", err)
			os.Exit(1)
		}
		return
	}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var lines []string
	for sc.Scan() {
		lines = append(lines, sc.Text())
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "bench2json:", err)
		os.Exit(1)
	}
	doc := convert(lines)
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fmt.Fprintln(os.Stderr, "bench2json:", err)
		os.Exit(1)
	}
	if len(doc.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "bench2json: no benchmark lines found in input")
		os.Exit(1)
	}
}
