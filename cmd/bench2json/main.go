// bench2json converts `go test -bench` text output (read from stdin)
// into a machine-readable JSON document (written to stdout), for CI jobs
// that archive benchmark trajectories as artifacts.
//
//	go test -run '^$' -bench . -benchtime=1x -count=3 ./... | bench2json > BENCH_ci.json
//
// Every benchmark result line becomes one entry — repeated -count runs
// stay separate entries so downstream tooling can compute its own
// dispersion — and the goos/goarch/cpu/pkg context lines are attached to
// the entries they precede.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Entry is one benchmark result line.
type Entry struct {
	Pkg        string `json:"pkg,omitempty"`
	Name       string `json:"name"`
	Iterations int64  `json:"iterations"`
	// Metrics maps unit -> value: "ns/op", "B/op", "allocs/op", plus any
	// custom b.ReportMetric units (e.g. "MTEPS").
	Metrics map[string]float64 `json:"metrics"`
}

// Doc is the emitted document.
type Doc struct {
	GOOS       string  `json:"goos,omitempty"`
	GOARCH     string  `json:"goarch,omitempty"`
	CPU        string  `json:"cpu,omitempty"`
	Benchmarks []Entry `json:"benchmarks"`
}

// parseLine parses one "BenchmarkName-8  N  V unit  V unit..." line,
// reporting ok=false for non-benchmark lines.
func parseLine(pkg, line string) (Entry, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Entry{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Entry{}, false
	}
	e := Entry{Pkg: pkg, Name: fields[0], Iterations: iters, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Entry{}, false
		}
		e.Metrics[fields[i+1]] = v
	}
	return e, true
}

// convert reads bench output lines and assembles the document.
func convert(lines []string) Doc {
	doc := Doc{Benchmarks: []Entry{}}
	pkg := ""
	for _, line := range lines {
		switch {
		case strings.HasPrefix(line, "goos: "):
			doc.GOOS = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			doc.GOARCH = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			doc.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "pkg: "):
			pkg = strings.TrimPrefix(line, "pkg: ")
		default:
			if e, ok := parseLine(pkg, line); ok {
				doc.Benchmarks = append(doc.Benchmarks, e)
			}
		}
	}
	return doc
}

func main() {
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var lines []string
	for sc.Scan() {
		lines = append(lines, sc.Text())
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "bench2json:", err)
		os.Exit(1)
	}
	doc := convert(lines)
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fmt.Fprintln(os.Stderr, "bench2json:", err)
		os.Exit(1)
	}
	if len(doc.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "bench2json: no benchmark lines found in input")
		os.Exit(1)
	}
}
