package main

import (
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: nxgraph/internal/dynamic
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkDeltaOverlayPageRank 	       1	   2383498 ns/op	        70.91 MTEPS
BenchmarkDeltaOverlayPageRank 	       1	   2400000 ns/op	        69.00 MTEPS
PASS
ok  	nxgraph/internal/dynamic	0.056s
pkg: nxgraph/internal/storage
BenchmarkEncodeSubShard-8   	     120	     9876543 ns/op	 1024 B/op	       3 allocs/op
FAIL? no
`

func TestConvert(t *testing.T) {
	doc := convert(splitLines(sample))
	if doc.GOOS != "linux" || doc.GOARCH != "amd64" {
		t.Fatalf("context lines not parsed: %+v", doc)
	}
	if len(doc.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3", len(doc.Benchmarks))
	}
	b0 := doc.Benchmarks[0]
	if b0.Name != "BenchmarkDeltaOverlayPageRank" || b0.Pkg != "nxgraph/internal/dynamic" {
		t.Fatalf("entry 0 = %+v", b0)
	}
	if b0.Iterations != 1 || b0.Metrics["ns/op"] != 2383498 || b0.Metrics["MTEPS"] != 70.91 {
		t.Fatalf("entry 0 metrics = %+v", b0)
	}
	b2 := doc.Benchmarks[2]
	if b2.Pkg != "nxgraph/internal/storage" || b2.Metrics["allocs/op"] != 3 {
		t.Fatalf("entry 2 = %+v", b2)
	}
}

func TestParseLineRejectsNoise(t *testing.T) {
	for _, line := range []string{
		"PASS",
		"ok  	nxgraph/internal/dynamic	0.056s",
		"Benchmark text without numbers",
		"BenchmarkHalf 	 notanumber	 1 ns/op",
	} {
		if _, ok := parseLine("p", line); ok {
			t.Fatalf("parseLine accepted %q", line)
		}
	}
}

func splitLines(s string) []string {
	var out []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	if start < len(s) {
		out = append(out, s[start:])
	}
	return out
}

func entry(pkg, name string, ns float64) Entry {
	return Entry{Pkg: pkg, Name: name, Iterations: 1, Metrics: map[string]float64{"ns/op": ns}}
}

func TestBestNsPerOpTakesMin(t *testing.T) {
	doc := Doc{Benchmarks: []Entry{
		entry("p", "BenchmarkA", 300),
		entry("p", "BenchmarkA", 200),
		entry("p", "BenchmarkA", 250),
		{Pkg: "p", Name: "BenchmarkNoNs", Metrics: map[string]float64{"MTEPS": 5}},
	}}
	best := bestNsPerOp(doc)
	if len(best) != 1 || best["p.BenchmarkA"] != 200 {
		t.Fatalf("best = %v", best)
	}
}

func TestDiffDocs(t *testing.T) {
	oldDoc := Doc{Benchmarks: []Entry{
		entry("p", "BenchmarkA", 100),
		entry("p", "BenchmarkB", 100),
		entry("p", "BenchmarkGone", 100),
	}}
	newDoc := Doc{Benchmarks: []Entry{
		entry("p", "BenchmarkA", 140), // +40% regression
		entry("p", "BenchmarkB", 80),  // improvement
		entry("p", "BenchmarkNew", 50),
	}}
	lines := diffDocs(oldDoc, newDoc)
	if len(lines) != 2 {
		t.Fatalf("compared %d benchmarks, want 2 (shared only): %+v", len(lines), lines)
	}
	if lines[0].key != "p.BenchmarkA" || lines[0].pct < 39.9 || lines[0].pct > 40.1 {
		t.Fatalf("line 0 = %+v", lines[0])
	}
	if lines[1].key != "p.BenchmarkB" || lines[1].pct > -19.9 {
		t.Fatalf("line 1 = %+v", lines[1])
	}
}

func TestRunDiffWarnsOnRegression(t *testing.T) {
	dir := t.TempDir()
	write := func(name string, doc Doc) string {
		raw, _ := json.Marshal(doc)
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, raw, 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	base := write("base.json", Doc{Benchmarks: []Entry{entry("p", "BenchmarkA", 100), entry("p", "BenchmarkB", 100)}})
	cur := write("cur.json", Doc{Benchmarks: []Entry{entry("p", "BenchmarkA", 200), entry("p", "BenchmarkB", 101)}})
	var buf strings.Builder
	if err := runDiff(&buf, base, cur, 25); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "::warning::bench regression: p.BenchmarkA") {
		t.Fatalf("missing regression warning:\n%s", out)
	}
	if strings.Contains(out, "::warning::bench regression: p.BenchmarkB") {
		t.Fatalf("within-threshold benchmark warned:\n%s", out)
	}
	if !strings.Contains(out, "2 benchmarks compared, 1 regressed beyond 25%") {
		t.Fatalf("missing summary:\n%s", out)
	}
	// No shared benchmarks is an error (a broken seed must not pass
	// silently).
	empty := write("empty.json", Doc{})
	if err := runDiff(io.Discard, base, empty, 25); err == nil {
		t.Fatal("empty diff did not error")
	}
}

func TestStripProcSuffix(t *testing.T) {
	cases := map[string]string{
		"BenchmarkEncodeSubShard":    "BenchmarkEncodeSubShard",
		"BenchmarkEncodeSubShard-4":  "BenchmarkEncodeSubShard",
		"BenchmarkEncodeSubShard-16": "BenchmarkEncodeSubShard",
		"BenchmarkFoo/sub-case":      "BenchmarkFoo/sub-case",
		"BenchmarkFoo/sub-case-8":    "BenchmarkFoo/sub-case",
		"BenchmarkTrailingDash-":     "BenchmarkTrailingDash-",
		"-4":                         "-4",
	}
	for in, want := range cases {
		if got := stripProcSuffix(in); got != want {
			t.Errorf("stripProcSuffix(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestDiffAcrossCPUCounts: a seed generated on a 1-CPU machine
// (suffix-free names) must still compare against output from a
// multi-CPU runner (GOMAXPROCS-suffixed names).
func TestDiffAcrossCPUCounts(t *testing.T) {
	oldDoc := Doc{Benchmarks: []Entry{entry("p", "BenchmarkA", 100)}}
	newDoc := Doc{Benchmarks: []Entry{entry("p", "BenchmarkA-4", 110)}}
	lines := diffDocs(oldDoc, newDoc)
	if len(lines) != 1 || lines[0].key != "p.BenchmarkA" {
		t.Fatalf("suffixed and suffix-free names did not match: %+v", lines)
	}
}

func TestRunDiffWarnsOnLostCoverage(t *testing.T) {
	dir := t.TempDir()
	write := func(name string, doc Doc) string {
		raw, _ := json.Marshal(doc)
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, raw, 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	base := write("base.json", Doc{Benchmarks: []Entry{entry("p", "BenchmarkA", 100), entry("p", "BenchmarkGone", 100)}})
	cur := write("cur.json", Doc{Benchmarks: []Entry{entry("p", "BenchmarkA", 100)}})
	var buf strings.Builder
	if err := runDiff(&buf, base, cur, 25); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "::warning::bench coverage lost: p.BenchmarkGone") {
		t.Fatalf("missing coverage warning:\n%s", buf.String())
	}
	if !strings.Contains(buf.String(), "1 missing from current run") {
		t.Fatalf("missing summary count:\n%s", buf.String())
	}
}
