package main

import "testing"

const sample = `goos: linux
goarch: amd64
pkg: nxgraph/internal/dynamic
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkDeltaOverlayPageRank 	       1	   2383498 ns/op	        70.91 MTEPS
BenchmarkDeltaOverlayPageRank 	       1	   2400000 ns/op	        69.00 MTEPS
PASS
ok  	nxgraph/internal/dynamic	0.056s
pkg: nxgraph/internal/storage
BenchmarkEncodeSubShard-8   	     120	     9876543 ns/op	 1024 B/op	       3 allocs/op
FAIL? no
`

func TestConvert(t *testing.T) {
	doc := convert(splitLines(sample))
	if doc.GOOS != "linux" || doc.GOARCH != "amd64" {
		t.Fatalf("context lines not parsed: %+v", doc)
	}
	if len(doc.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3", len(doc.Benchmarks))
	}
	b0 := doc.Benchmarks[0]
	if b0.Name != "BenchmarkDeltaOverlayPageRank" || b0.Pkg != "nxgraph/internal/dynamic" {
		t.Fatalf("entry 0 = %+v", b0)
	}
	if b0.Iterations != 1 || b0.Metrics["ns/op"] != 2383498 || b0.Metrics["MTEPS"] != 70.91 {
		t.Fatalf("entry 0 metrics = %+v", b0)
	}
	b2 := doc.Benchmarks[2]
	if b2.Pkg != "nxgraph/internal/storage" || b2.Metrics["allocs/op"] != 3 {
		t.Fatalf("entry 2 = %+v", b2)
	}
}

func TestParseLineRejectsNoise(t *testing.T) {
	for _, line := range []string{
		"PASS",
		"ok  	nxgraph/internal/dynamic	0.056s",
		"Benchmark text without numbers",
		"BenchmarkHalf 	 notanumber	 1 ns/op",
	} {
		if _, ok := parseLine("p", line); ok {
			t.Fatalf("parseLine accepted %q", line)
		}
	}
}

func splitLines(s string) []string {
	var out []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	if start < len(s) {
		out = append(out, s[start:])
	}
	return out
}
