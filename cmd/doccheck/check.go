package main

import (
	"bytes"
	"fmt"
	"go/format"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

// problem is one finding, anchored to a 1-based line of the source file.
type problem struct {
	line int
	msg  string
}

// linkRE matches inline Markdown links and images: [text](dest) or
// ![alt](dest). The destination group stops at the first whitespace or
// closing parenthesis, which also drops an optional "title" part.
var linkRE = regexp.MustCompile(`!?\[[^\]]*\]\(([^)\s]+)[^)]*\)`)

// checkFile runs every check over one Markdown source. dir is the
// directory containing the file; relative link targets resolve against
// it.
func checkFile(dir, src string) []problem {
	var probs []problem
	lines := strings.Split(src, "\n")

	inFence := false // inside a ``` fenced code block
	fenceLang := ""
	fenceStart := 0
	var fenceBody []string

	for i, line := range lines {
		trimmed := strings.TrimSpace(line)
		if strings.HasPrefix(trimmed, "```") {
			if !inFence {
				inFence = true
				fenceLang = strings.TrimSpace(strings.TrimPrefix(trimmed, "```"))
				fenceStart = i + 1
				fenceBody = fenceBody[:0]
			} else {
				if fenceLang == "go" {
					if err := checkGoSnippet(strings.Join(fenceBody, "\n")); err != nil {
						probs = append(probs, problem{fenceStart, err.Error()})
					}
				}
				inFence = false
			}
			continue
		}
		if inFence {
			fenceBody = append(fenceBody, line)
			continue
		}
		for _, m := range linkRE.FindAllStringSubmatch(line, -1) {
			if msg := checkLink(dir, m[1]); msg != "" {
				probs = append(probs, problem{i + 1, msg})
			}
		}
	}
	if inFence {
		probs = append(probs, problem{fenceStart, "unterminated code fence"})
	}
	return probs
}

// checkLink validates one link destination against dir, returning an
// empty string when the link is fine (or out of scope: absolute URLs,
// mailto:, and in-page fragments are not checked).
func checkLink(dir, dest string) string {
	if strings.Contains(dest, "://") || strings.HasPrefix(dest, "mailto:") {
		return ""
	}
	if strings.HasPrefix(dest, "#") {
		return ""
	}
	path, _, _ := strings.Cut(dest, "#")
	if path == "" {
		return ""
	}
	if _, err := os.Stat(filepath.Join(dir, path)); err != nil {
		return fmt.Sprintf("broken link: %s", dest)
	}
	return ""
}

// checkGoSnippet asserts that one ```go fence holds valid, gofmt-clean
// Go. format.Source accepts whole files, declaration lists, and
// statement lists, so documentation snippets need no special wrapping —
// they just have to be real Go in canonical style.
func checkGoSnippet(snippet string) error {
	src := []byte(snippet)
	if len(bytes.TrimSpace(src)) == 0 {
		return nil
	}
	out, err := format.Source(src)
	if err != nil {
		return fmt.Errorf("go snippet does not parse: %v", err)
	}
	if !bytes.Equal(bytes.TrimRight(out, "\n"), bytes.TrimRight(src, "\n")) {
		return fmt.Errorf("go snippet is not gofmt-clean")
	}
	return nil
}
