package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// write creates name (with parents) under dir and returns its path.
func write(t *testing.T, dir, name, content string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCheckLinks(t *testing.T) {
	dir := t.TempDir()
	write(t, dir, "docs/other.md", "# other\n")

	src := strings.Join([]string{
		"[good](docs/other.md)",
		"[good dir](docs)",
		"[good fragment](docs/other.md#other)",
		"[external](https://example.com/missing)",
		"[mail](mailto:x@example.com)",
		"[in-page](#section)",
		"![image](docs/missing.png)",
		"[broken](docs/absent.md)",
	}, "\n")

	probs := checkFile(dir, src)
	if len(probs) != 2 {
		t.Fatalf("got %d problems, want 2: %+v", len(probs), probs)
	}
	if probs[0].line != 7 || !strings.Contains(probs[0].msg, "docs/missing.png") {
		t.Errorf("problem 0 = %+v, want broken image at line 7", probs[0])
	}
	if probs[1].line != 8 || !strings.Contains(probs[1].msg, "docs/absent.md") {
		t.Errorf("problem 1 = %+v, want broken link at line 8", probs[1])
	}
}

func TestLinksInsideFencesIgnored(t *testing.T) {
	src := "```sh\ncurl [x](nowhere.md)\n```\n"
	if probs := checkFile(t.TempDir(), src); len(probs) != 0 {
		t.Fatalf("fenced pseudo-link reported: %+v", probs)
	}
}

func TestCheckGoSnippets(t *testing.T) {
	cases := []struct {
		name    string
		snippet string
		wantErr string
	}{
		{"statements", "g, _ := open()\ndefer g.Close()", ""},
		{"declarations", "func hello() string {\n\treturn \"hi\"\n}", ""},
		{"whole file", "package main\n\nfunc main() {}", ""},
		{"empty", "   \n", ""},
		{"syntax error", "func { oops", "does not parse"},
		{"unformatted", "x:=1\ny  :=  2", "not gofmt-clean"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := checkGoSnippet(tc.snippet)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error = %v, want containing %q", err, tc.wantErr)
			}
		})
	}
}

func TestGoFencesChecked(t *testing.T) {
	src := "intro\n\n```go\nx:=1\n```\n\n```sh\nnot go at all (\n```\n"
	probs := checkFile(t.TempDir(), src)
	if len(probs) != 1 {
		t.Fatalf("got %d problems, want 1: %+v", len(probs), probs)
	}
	if probs[0].line != 3 || !strings.Contains(probs[0].msg, "gofmt") {
		t.Errorf("problem = %+v, want gofmt finding at fence line 3", probs[0])
	}
}

func TestUnterminatedFence(t *testing.T) {
	probs := checkFile(t.TempDir(), "```go\nx := 1\n")
	if len(probs) != 1 || !strings.Contains(probs[0].msg, "unterminated") {
		t.Fatalf("got %+v, want unterminated-fence finding", probs)
	}
}

func TestMarkdownFiles(t *testing.T) {
	dir := t.TempDir()
	readme := write(t, dir, "README.md", "# hi\n")
	a := write(t, dir, "docs/a.md", "a\n")
	b := write(t, dir, "docs/sub/b.md", "b\n")
	write(t, dir, "docs/ignore.txt", "not markdown\n")

	files, err := markdownFiles([]string{readme, filepath.Join(dir, "docs")})
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{readme: true, a: true, b: true}
	if len(files) != len(want) {
		t.Fatalf("files = %v, want %v", files, want)
	}
	for _, f := range files {
		if !want[f] {
			t.Errorf("unexpected file %s", f)
		}
	}

	if _, err := markdownFiles([]string{filepath.Join(dir, "absent")}); err == nil {
		t.Error("missing argument did not error")
	}
}
