// doccheck validates the repository's Markdown documentation the way CI
// validates code. For every file or directory argument (directories are
// walked for *.md) it checks:
//
//   - relative links: every [text](target) or ![alt](target) whose
//     target is not an absolute URL, mailto:, or pure #fragment must
//     resolve to an existing file or directory, relative to the Markdown
//     file containing it;
//   - Go snippets: every ```go fenced block must be syntactically valid
//     Go — a whole file, a declaration list, or a statement list — and
//     already in canonical gofmt style.
//
// Problems are reported one per line as path:line: message, and the exit
// status is 1 if any were found. With no arguments it checks README.md
// and docs/.
//
//	go run ./cmd/doccheck README.md docs
package main

import (
	"flag"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
)

func main() {
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: doccheck [file.md | dir]...\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		args = []string{"README.md", "docs"}
	}
	files, err := markdownFiles(args)
	if err != nil {
		fmt.Fprintln(os.Stderr, "doccheck:", err)
		os.Exit(1)
	}
	bad := false
	for _, f := range files {
		src, err := os.ReadFile(f)
		if err != nil {
			fmt.Fprintln(os.Stderr, "doccheck:", err)
			os.Exit(1)
		}
		probs := checkFile(filepath.Dir(f), string(src))
		for _, p := range probs {
			fmt.Printf("%s:%d: %s\n", f, p.line, p.msg)
		}
		bad = bad || len(probs) > 0
	}
	fmt.Printf("doccheck: %d file(s) checked\n", len(files))
	if bad {
		os.Exit(1)
	}
}

// markdownFiles expands the argument list: files are taken as given,
// directories are walked for *.md entries.
func markdownFiles(args []string) ([]string, error) {
	var files []string
	for _, a := range args {
		info, err := os.Stat(a)
		if err != nil {
			return nil, err
		}
		if !info.IsDir() {
			files = append(files, a)
			continue
		}
		err = filepath.WalkDir(a, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() && strings.HasSuffix(path, ".md") {
				files = append(files, path)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	return files, nil
}
