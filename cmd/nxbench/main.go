// nxbench regenerates the paper's tables and figures (§IV) on scaled
// stand-in datasets. Each experiment prints a text table whose rows
// mirror the corresponding paper artifact.
//
// Usage:
//
//	nxbench -exp all
//	nxbench -exp table4,fig7 -scale-delta -2 -threads 8
//	nxbench -exp none -trace
//	nxbench -exp none -batch 64
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"nxgraph/internal/bench"
	"nxgraph/internal/metrics"
)

func main() {
	var (
		exps       = flag.String("exp", "all", "comma-separated: table2,fig6,table4,fig7,fig8,fig9,fig10,fig11,fig12,table5,table6,soak, 'all' (everything except soak), or 'none' (with -trace)")
		scaleDelta = flag.Int("scale-delta", 0, "dataset scale adjustment (negative shrinks)")
		threads    = flag.Int("threads", 4, "worker threads")
		iters      = flag.Int("iters", 10, "PageRank iterations")
		seed       = flag.Int64("seed", 42, "generator seed")
		cacheMB    = flag.Int("cache-mb", -1, "sub-shard block cache budget in MiB per engine (-1 = derive from each experiment's budget, 0 = disable)")
		l2Frac     = flag.Float64("cache-l2-frac", 0, "fraction of each cache budget held as encoded blobs (0 = default quarter, negative = disable the encoded tier)")
		format     = flag.Int("format", 0, "store format the suite builds: 0 = current default, 1 = fixed-width, 2 = delta+varint compressed")
		quiet      = flag.Bool("q", false, "suppress progress logging")
		showTrace  = flag.Bool("trace", false, "run a traced PageRank and print its per-iteration compute-vs-stall breakdown")
		batch      = flag.Int("batch", 0, "run N personalized PageRank queries sequentially vs as one fused batch and print the speedup (0 = skip)")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile of the selected experiments to this file")
		memProfile = flag.String("memprofile", "", "write a heap profile taken after the selected experiments to this file")
	)
	flag.Parse()

	s := bench.NewSuite()
	s.ScaleDelta = *scaleDelta
	s.Threads = *threads
	s.PageRankIters = *iters
	s.Seed = *seed
	switch {
	case *cacheMB > 0:
		s.CacheBytes = int64(*cacheMB) << 20
	case *cacheMB == 0:
		s.CacheBytes = -1 // disable
	}
	s.CacheL2Frac = *l2Frac
	s.Format = *format
	if !*quiet {
		s.Log = os.Stderr
	}
	defer s.Close()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "nxbench:", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "nxbench:", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}

	want := map[string]bool{}
	all := *exps == "all"
	for _, e := range strings.Split(*exps, ",") {
		want[strings.TrimSpace(e)] = true
	}
	sel := func(name string) bool { return all || want[name] }

	show := func(t *metrics.Table, err error) {
		if err != nil {
			fmt.Fprintln(os.Stderr, "nxbench:", err)
			os.Exit(1)
		}
		t.Render(os.Stdout)
		fmt.Println()
	}

	if sel("table2") {
		show(s.TableII(), nil)
	}
	if sel("fig6") {
		show(s.Fig6(12), nil)
	}
	if sel("table4") {
		show(s.Table4())
	}
	if sel("fig7") {
		show(s.Fig7(nil))
	}
	if sel("fig8") {
		show(s.Fig8(nil, nil))
	}
	if sel("fig9") {
		show(s.Fig9(nil))
	}
	if sel("fig10") {
		show(s.Fig10(nil))
	}
	if sel("fig11") {
		show(s.Fig11())
	}
	if sel("fig12") {
		show(s.Fig12())
	}
	if sel("table5") {
		show(s.Table5())
	}
	if sel("table6") {
		show(s.Table6())
	}
	// The soak profile streams hundreds of MB through the simulated
	// disk, so it only runs when named explicitly, never under 'all'.
	if want["soak"] {
		show(s.Soak())
	}
	if *showTrace {
		show(s.TraceRun())
	}
	if *batch > 0 {
		show(s.Batch(*batch))
	}
	if sum := s.CacheSummary(); sum != "" {
		fmt.Println(sum)
	}
	if sum := s.CompressionSummary(); sum != "" {
		fmt.Println(sum)
	}
	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "nxbench:", err)
			os.Exit(1)
		}
		defer f.Close()
		runtime.GC() // settle live-heap accounting before the snapshot
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "nxbench:", err)
			os.Exit(1)
		}
	}
}
