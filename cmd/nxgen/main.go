// nxgen generates synthetic graphs as text edge lists.
//
// Usage:
//
//	nxgen -kind rmat -scale 20 -edgefactor 16 -out twitter-like.txt
//	nxgen -kind mesh -rows 1024 -cols 1024 -out road-like.txt
//	nxgen -preset twitter -out twitter-small.txt
package main

import (
	"flag"
	"fmt"
	"os"

	"nxgraph/internal/gen"
	"nxgraph/internal/graph"
)

func main() {
	var (
		kind       = flag.String("kind", "rmat", "generator: rmat | mesh | uniform")
		preset     = flag.String("preset", "", "dataset preset (livejournal, twitter, yahoo, delaunay_n20..n24); overrides -kind")
		scale      = flag.Int("scale", 16, "log2 vertex count (rmat, uniform)")
		edgeFactor = flag.Int("edgefactor", 16, "edges per vertex (rmat, uniform)")
		rows       = flag.Int("rows", 256, "mesh rows")
		cols       = flag.Int("cols", 256, "mesh cols")
		seed       = flag.Int64("seed", 42, "PRNG seed")
		weighted   = flag.Bool("weighted", false, "attach uniform random weights")
		scaleDelta = flag.Int("scale-delta", 0, "preset scale adjustment")
		out        = flag.String("out", "", "output file (default stdout)")
	)
	flag.Parse()

	var (
		g   *graph.EdgeList
		err error
	)
	switch {
	case *preset != "":
		g, err = gen.FromPreset(*preset, *scaleDelta, *seed)
	case *kind == "rmat":
		cfg := gen.DefaultRMAT(*scale, *edgeFactor, *seed)
		cfg.Weighted = *weighted
		g, err = gen.RMAT(cfg)
	case *kind == "mesh":
		g, err = gen.Mesh(*rows, *cols, *seed)
	case *kind == "uniform":
		n := uint32(1) << uint(*scale)
		g, err = gen.Uniform(n, int64(n)*int64(*edgeFactor), *seed)
	default:
		err = fmt.Errorf("unknown -kind %q", *kind)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "nxgen:", err)
		os.Exit(1)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "nxgen:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	edges := make([]graph.IndexEdge, len(g.Edges))
	for i, e := range g.Edges {
		edges[i] = graph.IndexEdge{Src: uint64(e.Src), Dst: uint64(e.Dst), Weight: e.Weight}
	}
	if err := graph.WriteEdgeText(w, edges, g.Weighted); err != nil {
		fmt.Fprintln(os.Stderr, "nxgen:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "nxgen: %d vertices, %d edges\n", g.NumVertices, len(g.Edges))
}
