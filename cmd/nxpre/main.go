// nxpre preprocesses a text edge list into a DSSS store (degreeing +
// sharding, paper §III-A).
//
// Usage:
//
//	nxpre -in graph.txt -store /data/mygraph -p 12 -transpose
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	nxgraph "nxgraph"
)

func main() {
	var (
		in        = flag.String("in", "", "input edge list (src dst [weight] per line)")
		store     = flag.String("store", "", "output store directory")
		p         = flag.Int("p", 12, "number of vertex intervals (P)")
		weighted  = flag.Bool("weighted", false, "retain edge weights")
		transpose = flag.Bool("transpose", false, "also materialize reverse edges (needed by wcc/scc/hits/kcore)")
		verify    = flag.Bool("verify", false, "verify every store invariant after building")
		format    = flag.Int("format", nxgraph.FormatV2, "store format version: 1 = fixed-width, 2 = delta+varint compressed")
	)
	flag.Parse()
	if *in == "" || *store == "" {
		fmt.Fprintln(os.Stderr, "nxpre: -in and -store are required")
		flag.Usage()
		os.Exit(2)
	}
	start := time.Now()
	g, err := nxgraph.BuildFromFile(*store, *in, nxgraph.Options{
		P: *p, Weighted: *weighted, Transpose: *transpose, Format: *format,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "nxpre:", err)
		os.Exit(1)
	}
	defer g.Close()
	if *verify {
		if err := g.Verify(); err != nil {
			fmt.Fprintln(os.Stderr, "nxpre: verification failed:", err)
			os.Exit(1)
		}
		fmt.Println("nxpre: store verified")
	}
	fmt.Printf("nxpre: store %s ready in %s: %d vertices, %d edges, P=%d\n",
		*store, time.Since(start).Round(time.Millisecond), g.NumVertices(), g.NumEdges(), g.P())
}
