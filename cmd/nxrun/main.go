// nxrun executes a graph algorithm over a DSSS store built by nxpre.
//
// Usage:
//
//	nxrun -store /data/mygraph -algo pagerank -iters 10
//	nxrun -store /data/mygraph -algo bfs -root 0
//	nxrun -store /data/mygraph -algo scc -strategy dpu -mem 1GiB
//	nxrun -store /data/mygraph -algo pagerank -trace
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"

	nxgraph "nxgraph"
	"nxgraph/internal/metrics"
)

func main() {
	var (
		store    = flag.String("store", "", "store directory (from nxpre)")
		algo     = flag.String("algo", "pagerank", "pagerank | ppr | bfs | sssp | wcc | scc | hits | kcore")
		iters    = flag.Int("iters", 10, "iterations (pagerank, hits)")
		damping  = flag.Float64("damping", 0.85, "PageRank damping")
		root     = flag.Uint64("root", 0, "root vertex (bfs, sssp), dense id")
		threads  = flag.Int("threads", 0, "worker threads (0 = GOMAXPROCS)")
		mem      = flag.String("mem", "0", "memory budget (e.g. 512MiB; 0 = unlimited)")
		cacheMB  = flag.Int("cache-mb", -1, "sub-shard block cache budget in MiB (-1 = derive from -mem, 0 = disable)")
		l2Frac   = flag.Float64("cache-l2-frac", 0, "fraction of the cache budget held as encoded blobs (0 = default quarter, negative = disable the encoded tier)")
		strategy = flag.String("strategy", "auto", "auto | spu | dpu | mpu")
		lockSync = flag.Bool("lock", false, "use interval-lock sync instead of callback")
		profile  = flag.String("disk", "none", "simulated disk: none | ssd | hdd")
		topk     = flag.Int("top", 10, "print top-K vertices (pagerank, hits)")
		showTr   = flag.Bool("trace", false, "print per-iteration compute-vs-stall breakdown")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
		memProf  = flag.String("memprofile", "", "write a heap profile taken after the run to this file")
	)
	flag.Parse()
	if *store == "" {
		fmt.Fprintln(os.Stderr, "nxrun: -store is required")
		os.Exit(2)
	}
	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintln(os.Stderr, "nxrun:", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "nxrun:", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fmt.Fprintln(os.Stderr, "nxrun:", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle live-heap accounting before the snapshot
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "nxrun:", err)
			}
		}()
	}
	budget, err := metrics.ParseBytes(*mem)
	if err != nil {
		fmt.Fprintln(os.Stderr, "nxrun:", err)
		os.Exit(2)
	}
	opt := nxgraph.Options{Threads: *threads, MemoryBudget: budget, LockSync: *lockSync, CacheL2Frac: *l2Frac}
	switch {
	case *cacheMB > 0:
		opt.CacheBytes = int64(*cacheMB) << 20
	case *cacheMB == 0:
		opt.CacheBytes = -1 // disable
	}
	switch *strategy {
	case "auto":
		opt.Strategy = nxgraph.Auto
	case "spu":
		opt.Strategy = nxgraph.SPU
	case "dpu":
		opt.Strategy = nxgraph.DPU
	case "mpu":
		opt.Strategy = nxgraph.MPU
	default:
		fmt.Fprintf(os.Stderr, "nxrun: unknown strategy %q\n", *strategy)
		os.Exit(2)
	}
	switch *profile {
	case "none":
	case "ssd":
		opt.Profile = nxgraph.SSD
	case "hdd":
		opt.Profile = nxgraph.HDD
	default:
		fmt.Fprintf(os.Stderr, "nxrun: unknown disk profile %q\n", *profile)
		os.Exit(2)
	}

	g, err := nxgraph.Open(*store, opt)
	if err != nil {
		fmt.Fprintln(os.Stderr, "nxrun:", err)
		os.Exit(1)
	}
	defer g.Close()
	fmt.Printf("graph: %d vertices, %d edges, P=%d\n", g.NumVertices(), g.NumEdges(), g.P())

	printResult := func(res *nxgraph.Result) {
		fmt.Printf("%s: %d iterations in %s (%.1f MTEPS), strategy=%s, io: read %d B, written %d B\n",
			*algo, res.Iterations, res.Elapsed.Round(1e6), res.MTEPS(), res.Strategy,
			res.IO.BytesRead, res.IO.BytesWritten)
		if sum := g.CacheStats().Summary(); sum != "" {
			fmt.Printf("%s, %s resident\n", sum, metrics.Bytes(g.CacheStats().ResidentBytes))
		}
		if *showTr && res.Trace != nil {
			metrics.StepTable("per-iteration trace", res.Trace.Steps()).Render(os.Stdout)
		}
	}
	printTop := func(vals []float64, label string) {
		type kv struct {
			v uint32
			x float64
		}
		top := make([]kv, 0, len(vals))
		for v, x := range vals {
			top = append(top, kv{uint32(v), x})
		}
		sort.Slice(top, func(i, j int) bool { return top[i].x > top[j].x })
		k := *topk
		if k > len(top) {
			k = len(top)
		}
		fmt.Printf("top %d by %s:\n", k, label)
		for i := 0; i < k; i++ {
			fmt.Printf("  #%-3d vertex %-10d %.6g\n", i+1, top[i].v, top[i].x)
		}
	}

	switch *algo {
	case "pagerank":
		res, err := g.PageRank(*damping, *iters)
		exitOn(err)
		printResult(res)
		printTop(res.Attrs, "rank")
	case "bfs":
		res, err := g.BFS(uint32(*root))
		exitOn(err)
		printResult(res)
		reach, maxd := 0, 0.0
		for _, d := range res.Attrs {
			if !math.IsInf(d, 1) {
				reach++
				if d > maxd {
					maxd = d
				}
			}
		}
		fmt.Printf("reached %d/%d vertices, max depth %d\n", reach, len(res.Attrs), int(maxd))
	case "sssp":
		res, err := g.SSSP(uint32(*root))
		exitOn(err)
		printResult(res)
	case "wcc":
		res, err := g.WCC()
		exitOn(err)
		printResult(res)
		comps := map[uint32]int{}
		for _, l := range res.Attrs {
			comps[uint32(l)]++
		}
		fmt.Printf("%d weakly connected components\n", len(comps))
	case "scc":
		res, err := g.SCC()
		exitOn(err)
		fmt.Printf("scc: %d components in %d rounds (%d engine iterations) in %s\n",
			res.NumComponents(), res.Rounds, res.Iterations, res.Elapsed.Round(1e6))
	case "hits":
		auth, _, err := g.HITS(*iters)
		exitOn(err)
		printTop(auth, "authority")
	case "ppr":
		res, err := g.PersonalizedPageRank(uint32(*root), *damping, *iters)
		exitOn(err)
		printResult(res)
		printTop(res.Attrs, "proximity")
	case "kcore":
		res, err := g.KCore()
		exitOn(err)
		fmt.Printf("kcore: degeneracy %d in %d passes (%d engine iterations) in %s\n",
			res.MaxCore, res.Passes, res.Iterations, res.Elapsed.Round(1e6))
	default:
		fmt.Fprintf(os.Stderr, "nxrun: unknown algorithm %q\n", *algo)
		os.Exit(2)
	}
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "nxrun:", err)
		os.Exit(1)
	}
}
