// nxserve serves graph algorithms over preprocessed DSSS stores through
// an HTTP/JSON API: an async job scheduler with a bounded worker pool,
// cooperative cancellation, an LRU result cache, online edge ingestion
// with delta-overlay serving and background compaction, Prometheus
// metrics, per-job run traces, and structured logging.
//
// Usage:
//
//	nxserve -listen :8080 -graph social=/data/social -graph web=/data/web
//	nxserve -listen :8080 -workers 4 -cache 512MiB -cache-mb 1024 -delta-threshold 16384
//	nxserve -listen :8080 -fsync always -wal-segment 16MiB
//	nxserve -listen :8080 -log-format json -log-level debug
//
// Graphs can also be opened — and mutated — at runtime:
//
//	curl -X POST localhost:8080/v1/graphs -d '{"name":"g","dir":"/data/g"}'
//	curl -X POST localhost:8080/v1/graphs/g/jobs -d '{"algo":"pagerank","params":{"iters":20}}'
//	curl -X POST localhost:8080/v1/graphs/g/edges -d '{"add":[{"src":1,"dst":2}]}'
//	curl -X POST localhost:8080/v1/graphs/g/compact
//	curl localhost:8080/v1/jobs/j-00000001
//	curl 'localhost:8080/v1/jobs/j-00000001/result?top=10'
//	curl localhost:8080/v1/jobs/j-00000001/trace
//	curl -X POST localhost:8080/v1/jobs/j-00000001/cancel
//	curl localhost:8080/metrics
//	curl localhost:8080/healthz
//	curl localhost:8080/debug/pprof/
//
// On SIGINT/SIGTERM the server shuts down gracefully: readiness drops,
// the listener stops accepting, in-flight HTTP requests get a grace
// period to finish, then the scheduler cancels remaining jobs, drains
// its workers and closes every graph. A second signal forces immediate
// exit.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"runtime/debug"
	"strings"
	"syscall"
	"time"

	nxgraph "nxgraph"
	"nxgraph/internal/metrics"
	"nxgraph/internal/server"
	"nxgraph/internal/wal"
)

// graphFlags collects repeated -graph name=dir arguments.
type graphFlags []struct{ name, dir string }

func (g *graphFlags) String() string { return fmt.Sprintf("%d graphs", len(*g)) }

func (g *graphFlags) Set(s string) error {
	name, dir, ok := strings.Cut(s, "=")
	if !ok || name == "" || dir == "" {
		return fmt.Errorf("want name=dir, got %q", s)
	}
	*g = append(*g, struct{ name, dir string }{name, dir})
	return nil
}

// newLogger builds the process logger from the -log-format and
// -log-level flags.
func newLogger(format, level string) (*slog.Logger, error) {
	var lvl slog.Level
	if err := lvl.UnmarshalText([]byte(level)); err != nil {
		return nil, fmt.Errorf("bad -log-level %q: %w", level, err)
	}
	opts := &slog.HandlerOptions{Level: lvl}
	switch format {
	case "text":
		return slog.New(slog.NewTextHandler(os.Stderr, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, opts)), nil
	default:
		return nil, fmt.Errorf("bad -log-format %q (want text or json)", format)
	}
}

// buildVersion labels nxserve_build_info from the module build info
// stamped by the go tool (VCS revision when built from a checkout).
func buildVersion() string {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return ""
	}
	var rev, modified string
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			if s.Value == "true" {
				modified = "-dirty"
			}
		}
	}
	if rev == "" {
		return bi.Main.Version
	}
	if len(rev) > 12 {
		rev = rev[:12]
	}
	return rev + modified
}

func main() {
	var graphs graphFlags
	var (
		listen    = flag.String("listen", ":8080", "address to serve on")
		workers   = flag.Int("workers", 2, "concurrent engine executions")
		queueCap  = flag.Int("queue", 64, "pending-job queue capacity")
		maxBatch  = flag.Int("max-batch", 0, "max compatible queued jobs fused into one engine run (0 = default 16, 1 disables)")
		cache     = flag.String("cache", "256MiB", "result cache budget (0 disables caching)")
		cacheMB   = flag.Int("cache-mb", 256, "shared decoded sub-shard block cache budget in MiB, 0 disables (distinct from -cache, the result cache)")
		l2Frac    = flag.Float64("cache-l2-frac", 0, "fraction of -cache-mb held as encoded blobs (0 = default quarter, negative = disable the encoded tier)")
		mem       = flag.String("mem", "0", "per-graph engine memory budget (0 = unlimited)")
		threads   = flag.Int("threads", 0, "engine worker threads per run (0 = GOMAXPROCS)")
		deltaThr  = flag.Int("delta-threshold", 0, "pending deltas that trigger auto-compaction (0 = default 8192, negative disables)")
		fsync     = flag.String("fsync", "batch", "WAL durability policy: off (no fsync), batch (one fsync per group commit) or always (one fsync per batch)")
		walDelay  = flag.Duration("wal-max-delay", 0, "max time the WAL committer waits to widen a group commit (0 = ack-coalescing only)")
		walBatch  = flag.Int("wal-max-batch", 0, "max batches fsynced per group commit (0 = default 256)")
		walSeg    = flag.String("wal-segment", "64MiB", "WAL segment roll size")
		noWAL     = flag.Bool("no-wal", false, "disable the write-ahead log entirely: ingest acks mean visibility only, crashes lose uncompacted deltas")
		graceSecs = flag.Int("grace", 10, "seconds to drain in-flight HTTP requests on shutdown")
		logFormat = flag.String("log-format", "text", "log output format: text or json")
		logLevel  = flag.String("log-level", "info", "minimum log level: debug, info, warn or error")
	)
	flag.Var(&graphs, "graph", "preload a store: name=dir (repeatable)")
	flag.Parse()

	logger, err := newLogger(*logFormat, *logLevel)
	if err != nil {
		fmt.Fprintln(os.Stderr, "nxserve:", err)
		os.Exit(2)
	}
	slog.SetDefault(logger)

	cacheBytes, err := metrics.ParseBytes(*cache)
	if err != nil {
		fmt.Fprintln(os.Stderr, "nxserve:", err)
		os.Exit(2)
	}
	if cacheBytes == 0 {
		cacheBytes = -1 // flag 0 means "no caching", not "default"
	}
	budget, err := metrics.ParseBytes(*mem)
	if err != nil {
		fmt.Fprintln(os.Stderr, "nxserve:", err)
		os.Exit(2)
	}

	syncPolicy, err := wal.ParseSyncPolicy(*fsync)
	if err != nil {
		fmt.Fprintln(os.Stderr, "nxserve:", err)
		os.Exit(2)
	}
	segBytes, err := metrics.ParseBytes(*walSeg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "nxserve:", err)
		os.Exit(2)
	}

	blockBytes := int64(-1) // <= 0 on the flag disables the block cache
	if *cacheMB > 0 {
		blockBytes = int64(*cacheMB) << 20
	}
	srv := server.New(server.Config{
		Workers:          *workers,
		QueueCap:         *queueCap,
		MaxBatch:         *maxBatch,
		CacheBytes:       cacheBytes,
		BlockCacheBytes:  blockBytes,
		BlockCacheL2Frac: *l2Frac,
		DeltaThreshold:   *deltaThr,
		WALSync:          syncPolicy,
		WALMaxDelay:      *walDelay,
		WALMaxBatch:      *walBatch,
		WALSegmentBytes:  segBytes,
		DisableWAL:       *noWAL,
		GraphOptions:     nxgraph.Options{Threads: *threads, MemoryBudget: budget},
		Logger:           logger,
		Version:          buildVersion(),
	})
	for _, g := range graphs {
		if err := srv.OpenGraph(g.name, g.dir, nxgraph.Options{Threads: *threads, MemoryBudget: budget}); err != nil {
			srv.Close()
			fmt.Fprintln(os.Stderr, "nxserve:", err)
			os.Exit(1)
		}
	}

	httpSrv := &http.Server{Addr: *listen, Handler: srv.Handler()}
	serveErr := make(chan error, 1)
	go func() {
		logger.Info("nxserve listening",
			"addr", *listen,
			"workers", *workers,
			"result_cache", *cache,
			"block_cache_mb", *cacheMB,
			"fsync", syncPolicy.String(),
			"version", buildVersion(),
		)
		serveErr <- httpSrv.ListenAndServe()
	}()

	sig := make(chan os.Signal, 2)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-serveErr:
		// Listener died (bad address, port in use, ...): release graphs
		// and report, instead of exiting past the cleanup.
		srv.Close()
		logger.Error("nxserve exiting", "error", err.Error())
		os.Exit(1)
	case s := <-sig:
		logger.Info("shutdown signal received", "signal", s.String(), "grace_s", *graceSecs)
	}

	// Force exit on a second signal while draining.
	go func() {
		s := <-sig
		logger.Warn("second signal, exiting immediately", "signal", s.String())
		os.Exit(1)
	}()

	// Phase 1: stop accepting and drain in-flight HTTP requests.
	ctx, cancel := context.WithTimeout(context.Background(), time.Duration(*graceSecs)*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		logger.Warn("http drain incomplete", "error", err.Error())
	}
	// Phase 2: cancel remaining jobs, drain scheduler workers, close
	// graphs. Cancellation propagates into the engine at sub-shard-batch
	// boundaries, so this returns promptly even mid-iteration.
	srv.Close()
	logger.Info("shutdown complete")
}
