// promcheck validates Prometheus text exposition format on stdin: HELP
// and TYPE metadata placement, metric and label name syntax, label
// escaping, and histogram invariants (ascending le, cumulative counts,
// terminal +Inf matching _count). Exit status 0 means valid. CI pipes
// nxserve's /metrics output through it to catch malformed exposition
// before a real scraper does.
//
// Usage:
//
//	curl -s localhost:8080/metrics | promcheck
package main

import (
	"fmt"
	"os"

	"nxgraph/internal/metrics"
)

func main() {
	if err := metrics.ValidateExposition(os.Stdin); err != nil {
		fmt.Fprintln(os.Stderr, "promcheck:", err)
		os.Exit(1)
	}
	fmt.Println("promcheck: exposition OK")
}
