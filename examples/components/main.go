// Components: connectivity structure of a directed graph — weakly and
// strongly connected components (the paper's Exp 7 workloads) on a graph
// engineered to contain both a giant SCC and peripheral DAG structure,
// i.e. a miniature web-graph "bow-tie".
//
//	go run ./examples/components
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sort"

	nxgraph "nxgraph"
)

func main() {
	// Core: a random strongly-connected-ish RMAT region; periphery: IN
	// and OUT chains hanging off it.
	core, err := nxgraph.Generate(nxgraph.RMAT(12, 16, 9))
	if err != nil {
		log.Fatal(err)
	}
	n := core.NumVertices
	g := &nxgraph.EdgeList{NumVertices: n + 2000}
	g.Edges = append(g.Edges, core.Edges...)
	// Close the core into one SCC with a Hamiltonian-ish cycle over a
	// sample, then attach an IN-tree and an OUT-tree.
	for v := uint32(0); v < n; v += 64 {
		g.Edges = append(g.Edges, nxgraph.Edge{Src: v, Dst: (v + 64) % n, Weight: 1})
	}
	for k := uint32(0); k < 1000; k++ {
		g.Edges = append(g.Edges,
			nxgraph.Edge{Src: n + k, Dst: k % n, Weight: 1},              // IN → core
			nxgraph.Edge{Src: (k * 7) % n, Dst: n + 1000 + k, Weight: 1}) // core → OUT
	}

	dir := filepath.Join(os.TempDir(), "nxgraph-components")
	defer os.RemoveAll(dir)
	gr, err := nxgraph.Build(dir, g, nxgraph.Options{P: 8, Transpose: true})
	if err != nil {
		log.Fatal(err)
	}
	defer gr.Close()
	fmt.Printf("web-like graph: %d vertices, %d edges\n", gr.NumVertices(), gr.NumEdges())

	wcc, err := gr.WCC()
	if err != nil {
		log.Fatal(err)
	}
	wsizes := map[uint32]int{}
	for _, l := range wcc.Attrs {
		wsizes[uint32(l)]++
	}
	fmt.Printf("wcc: %d weak components in %d iterations (%s)\n",
		len(wsizes), wcc.Iterations, wcc.Elapsed.Round(1e6))

	scc, err := gr.SCC()
	if err != nil {
		log.Fatal(err)
	}
	ssizes := map[uint32]int{}
	for _, c := range scc.Components {
		ssizes[c]++
	}
	sizes := make([]int, 0, len(ssizes))
	for _, s := range ssizes {
		sizes = append(sizes, s)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(sizes)))
	fmt.Printf("scc: %d strong components in %d rounds / %d engine iterations (%s)\n",
		len(ssizes), scc.Rounds, scc.Iterations, scc.Elapsed.Round(1e6))
	fmt.Printf("largest SCCs: %v\n", sizes[:min(5, len(sizes))])
	fmt.Printf("bow-tie: giant SCC holds %.1f%% of vertices; %d singleton SCCs (IN/OUT periphery)\n",
		100*float64(sizes[0])/float64(gr.NumVertices()), countOnes(sizes))
}

func countOnes(sizes []int) int {
	c := 0
	for _, s := range sizes {
		if s == 1 {
			c++
		}
	}
	return c
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
