// Quickstart: generate a small power-law graph, build a DSSS store, and
// run PageRank — the minimal end-to-end use of the public API.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sort"

	nxgraph "nxgraph"
)

func main() {
	// 1. A synthetic social-network-like graph: 2^14 vertices, ~16
	//    edges per vertex, heavy-tailed degrees.
	g, err := nxgraph.Generate(nxgraph.RMAT(14, 16, 1))
	if err != nil {
		log.Fatal(err)
	}

	// 2. Preprocess into the Destination-Sorted Sub-Shard store.
	dir := filepath.Join(os.TempDir(), "nxgraph-quickstart")
	defer os.RemoveAll(dir)
	gr, err := nxgraph.Build(dir, g, nxgraph.Options{P: 8})
	if err != nil {
		log.Fatal(err)
	}
	defer gr.Close()
	fmt.Printf("graph: %d vertices, %d edges, %d intervals\n",
		gr.NumVertices(), gr.NumEdges(), gr.P())

	// 3. Ten PageRank iterations (the paper's standard measurement).
	res, err := gr.PageRank(0.85, 10)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pagerank: %d iterations in %s (%.1f MTEPS) using %s\n",
		res.Iterations, res.Elapsed.Round(1e6), res.MTEPS(), res.Strategy)

	// 4. Report the most central vertices.
	type rv struct {
		v    uint32
		rank float64
	}
	top := make([]rv, 0, len(res.Attrs))
	for v, r := range res.Attrs {
		top = append(top, rv{uint32(v), r})
	}
	sort.Slice(top, func(i, j int) bool { return top[i].rank > top[j].rank })
	fmt.Println("top 5 vertices by rank:")
	for _, t := range top[:5] {
		fmt.Printf("  vertex %-8d rank %.6f\n", t.v, t.rank)
	}
}
