// Roadnet: traversal workloads on a planar, high-diameter mesh — the
// graph class the paper's delaunay_n20..n24 benchmarks represent. Runs
// BFS (hop distance) and weighted SSSP (travel time) from a depot vertex
// and reports reachability structure, demonstrating interval activity
// tracking on targeted queries.
//
//	go run ./examples/roadnet
package main

import (
	"fmt"
	"log"
	"math"
	"os"
	"path/filepath"

	nxgraph "nxgraph"
)

func main() {
	// A 256×256 triangulated grid ≈ a metro road network. Weighted
	// edges model segment travel times.
	g, err := nxgraph.Generate(nxgraph.Mesh(256, 256, 3))
	if err != nil {
		log.Fatal(err)
	}
	for i := range g.Edges {
		// Deterministic pseudo-random travel time in [1, 10).
		h := uint64(g.Edges[i].Src)*2654435761 + uint64(g.Edges[i].Dst)*40503
		g.Edges[i].Weight = 1 + float32(h%9000)/1000
	}
	g.Weighted = true

	dir := filepath.Join(os.TempDir(), "nxgraph-roadnet")
	defer os.RemoveAll(dir)
	gr, err := nxgraph.Build(dir, g, nxgraph.Options{P: 16, Weighted: true})
	if err != nil {
		log.Fatal(err)
	}
	defer gr.Close()
	fmt.Printf("road network: %d junctions, %d directed segments\n",
		gr.NumVertices(), gr.NumEdges())

	const depot = 0
	bfs, err := gr.BFS(depot)
	if err != nil {
		log.Fatal(err)
	}
	var reached int
	maxHop := 0.0
	hist := map[int]int{}
	for _, d := range bfs.Attrs {
		if math.IsInf(d, 1) {
			continue
		}
		reached++
		if d > maxHop {
			maxHop = d
		}
		hist[int(d)/10]++
	}
	fmt.Printf("bfs from depot %d: reached %d/%d junctions, diameter-ish %d hops, %d iterations in %s\n",
		depot, reached, len(bfs.Attrs), int(maxHop), bfs.Iterations, bfs.Elapsed.Round(1e6))
	fmt.Println("hop-distance histogram (buckets of 10):")
	for b := 0; b*10 <= int(maxHop); b++ {
		fmt.Printf("  %3d-%3d: %d\n", b*10, b*10+9, hist[b])
	}

	sssp, err := gr.SSSP(depot)
	if err != nil {
		log.Fatal(err)
	}
	var sum float64
	var far uint32
	for v, d := range sssp.Attrs {
		if math.IsInf(d, 1) {
			continue
		}
		sum += d
		if d > sssp.Attrs[far] && !math.IsInf(d, 1) {
			far = uint32(v)
		}
	}
	fmt.Printf("sssp: mean travel time %.2f, farthest junction %d at %.2f (%d iterations, %s)\n",
		sum/float64(reached), far, sssp.Attrs[far], sssp.Iterations, sssp.Elapsed.Round(1e6))
}
