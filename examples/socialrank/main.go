// Socialrank: influence analysis on a social-network-like graph — the
// workload class the paper's introduction motivates (Facebook/Twitter
// scale user graphs). Runs PageRank and HITS, then cross-references the
// two notions of influence, and shows the engine adapting its update
// strategy to a shrinking memory budget.
//
//	go run ./examples/socialrank
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sort"

	nxgraph "nxgraph"
)

func topK(vals []float64, k int) []uint32 {
	idx := make([]uint32, len(vals))
	for i := range idx {
		idx[i] = uint32(i)
	}
	sort.Slice(idx, func(a, b int) bool { return vals[idx[a]] > vals[idx[b]] })
	if k > len(idx) {
		k = len(idx)
	}
	return idx[:k]
}

func main() {
	// A follower graph: edge u→v means "u follows v", so rank flows to
	// the followed. HITS requires the transposed replica.
	g, err := nxgraph.Generate(nxgraph.RMAT(15, 24, 7))
	if err != nil {
		log.Fatal(err)
	}
	dir := filepath.Join(os.TempDir(), "nxgraph-socialrank")
	defer os.RemoveAll(dir)
	gr, err := nxgraph.Build(dir, g, nxgraph.Options{P: 12, Transpose: true})
	if err != nil {
		log.Fatal(err)
	}
	defer gr.Close()
	fmt.Printf("follower graph: %d users, %d follow edges\n", gr.NumVertices(), gr.NumEdges())

	pr, err := gr.PageRankConverge(0.85, 1e-9, 100)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pagerank converged in %d iterations (%s)\n", pr.Iterations, pr.Elapsed.Round(1e6))

	auth, hub, err := gr.HITS(20)
	if err != nil {
		log.Fatal(err)
	}

	prTop := topK(pr.Attrs, 10)
	authTop := topK(auth, 10)
	hubTop := topK(hub, 10)
	fmt.Println("rank  pagerank   authority  hub")
	for i := 0; i < 10; i++ {
		fmt.Printf("#%-4d %-10d %-10d %-10d\n", i+1, prTop[i], authTop[i], hubTop[i])
	}
	overlap := 0
	authSet := map[uint32]bool{}
	for _, v := range authTop {
		authSet[v] = true
	}
	for _, v := range prTop {
		if authSet[v] {
			overlap++
		}
	}
	fmt.Printf("pagerank/authority top-10 overlap: %d/10\n", overlap)

	// Strategy adaptation: rerun PageRank under shrinking budgets and
	// watch Auto pick SPU → MPU → DPU (paper §III-B).
	fmt.Println("\nadaptive strategy selection under memory pressure:")
	full := 2 * int64(gr.NumVertices()) * 8
	for _, frac := range []float64{2.0, 0.6, 0.05} {
		budget := int64(frac * float64(full))
		gb, err := nxgraph.Open(dir, nxgraph.Options{P: 12, MemoryBudget: budget, Transpose: true})
		if err != nil {
			log.Fatal(err)
		}
		res, err := gb.PageRank(0.85, 3)
		gb.Close()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  budget %8.2f MiB -> %-4s (Q=%d/%d resident) %8s, io read %6.1f MiB\n",
			float64(budget)/(1<<20), res.Strategy, res.ResidentIntervals, gr.P(),
			res.Elapsed.Round(1e6), float64(res.IO.BytesRead)/(1<<20))
	}
}
