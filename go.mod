module nxgraph

go 1.24
