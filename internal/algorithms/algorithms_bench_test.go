package algorithms_test

import (
	"testing"

	"nxgraph/internal/algorithms"
	"nxgraph/internal/engine"
	"nxgraph/internal/gen"
	"nxgraph/internal/graph"
	"nxgraph/internal/testutil"
)

func benchEngine(b *testing.B, transpose bool) (*engine.Engine, *graph.EdgeList) {
	b.Helper()
	g, err := gen.RMAT(gen.DefaultRMAT(13, 12, 5))
	if err != nil {
		b.Fatal(err)
	}
	st, oracle := testutil.BuildStore(b, g, testutil.StoreOptions{P: 8, Transpose: transpose})
	e, err := engine.New(st, engine.Config{Threads: 2})
	if err != nil {
		b.Fatal(err)
	}
	return e, oracle
}

func BenchmarkPageRank10Iters(b *testing.B) {
	e, _ := benchEngine(b, false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := algorithms.PageRank(e, 0.85, 10)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.MTEPS(), "MTEPS")
	}
}

func BenchmarkBFS(b *testing.B) {
	e, _ := benchEngine(b, false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := algorithms.BFS(e, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWCC(b *testing.B) {
	e, _ := benchEngine(b, true)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := algorithms.WCC(e); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSCC(b *testing.B) {
	e, _ := benchEngine(b, true)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := algorithms.SCC(e); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHITS(b *testing.B) {
	e, _ := benchEngine(b, true)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := algorithms.HITS(e, 5); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPersonalizedPageRank(b *testing.B) {
	e, _ := benchEngine(b, false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := algorithms.PersonalizedPageRank(e, 0, 0.85, 10); err != nil {
			b.Fatal(err)
		}
	}
}
