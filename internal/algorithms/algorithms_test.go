package algorithms_test

import (
	"fmt"
	"math"
	"testing"

	"nxgraph/internal/algorithms"
	"nxgraph/internal/engine"
	"nxgraph/internal/gen"
	"nxgraph/internal/graph"
	"nxgraph/internal/refalgo"
	"nxgraph/internal/testutil"
)

// configs is the strategy × sync matrix every algorithm is validated
// against. Budgets are computed from n at build time: SPU unlimited, MPU
// roughly half the intervals resident, DPU forced.
type configCase struct {
	name     string
	strategy engine.Strategy
	sync     engine.SyncMode
	budget   func(n uint32) int64
}

var configCases = []configCase{
	{"spu-callback", engine.SPU, engine.Callback, func(n uint32) int64 { return 0 }},
	{"spu-lock", engine.SPU, engine.Lock, func(n uint32) int64 { return 0 }},
	{"spu-streamed", engine.SPU, engine.Callback, func(n uint32) int64 { return 2*int64(n)*8 + 1 }},
	{"mpu-callback", engine.Auto, engine.Callback, func(n uint32) int64 { return int64(n) * 8 }},
	{"mpu-lock", engine.Auto, engine.Lock, func(n uint32) int64 { return int64(n) * 8 }},
	{"dpu-callback", engine.DPU, engine.Callback, func(n uint32) int64 { return 0 }},
	{"dpu-lock", engine.DPU, engine.Lock, func(n uint32) int64 { return 0 }},
}

func buildEngine(t *testing.T, g *graph.EdgeList, p int, weighted bool, cc configCase) (*engine.Engine, *graph.EdgeList) {
	t.Helper()
	st, oracle := testutil.BuildStore(t, g, testutil.StoreOptions{
		P: p, Weighted: weighted, Transpose: true,
	})
	e, err := engine.New(st, engine.Config{
		Threads:      4,
		MemoryBudget: cc.budget(oracle.NumVertices),
		Strategy:     cc.strategy,
		Sync:         cc.sync,
		ChunkDsts:    64, // small chunks exercise the parallel paths
	})
	if err != nil {
		t.Fatalf("engine.New: %v", err)
	}
	return e, oracle
}

func testGraphs(t *testing.T) map[string]*graph.EdgeList {
	t.Helper()
	rmat, err := gen.RMAT(gen.DefaultRMAT(9, 8, 42))
	if err != nil {
		t.Fatal(err)
	}
	mesh, err := gen.Mesh(16, 24, 7)
	if err != nil {
		t.Fatal(err)
	}
	uni, err := gen.Uniform(300, 1500, 99)
	if err != nil {
		t.Fatal(err)
	}
	return map[string]*graph.EdgeList{"rmat": rmat, "mesh": mesh, "uniform": uni}
}

func TestPageRankMatchesOracle(t *testing.T) {
	for gname, g := range testGraphs(t) {
		for _, cc := range configCases {
			t.Run(fmt.Sprintf("%s/%s", gname, cc.name), func(t *testing.T) {
				e, oracle := buildEngine(t, g, 5, false, cc)
				res, err := algorithms.PageRank(e, 0.85, 10)
				if err != nil {
					t.Fatalf("PageRank: %v", err)
				}
				want := refalgo.PageRank(oracle, 0.85, 10)
				if len(res.Attrs) != len(want) {
					t.Fatalf("got %d ranks, want %d", len(res.Attrs), len(want))
				}
				for v := range want {
					if math.Abs(res.Attrs[v]-want[v]) > 1e-9 {
						t.Fatalf("vertex %d: rank %.12f, want %.12f", v, res.Attrs[v], want[v])
					}
				}
				if res.Iterations != 10 {
					t.Errorf("ran %d iterations, want 10", res.Iterations)
				}
			})
		}
	}
}

func TestPageRankSumsToOne(t *testing.T) {
	for gname, g := range testGraphs(t) {
		t.Run(gname, func(t *testing.T) {
			e, _ := buildEngine(t, g, 4, false, configCases[0])
			res, err := algorithms.PageRank(e, 0.85, 5)
			if err != nil {
				t.Fatal(err)
			}
			var sum float64
			for _, r := range res.Attrs {
				sum += r
			}
			if math.Abs(sum-1) > 1e-9 {
				t.Fatalf("ranks sum to %.12f, want 1", sum)
			}
		})
	}
}

func TestPageRankConverge(t *testing.T) {
	g := testGraphs(t)["rmat"]
	e, oracle := buildEngine(t, g, 4, false, configCases[0])
	res, err := algorithms.PageRankConverge(e, 0.85, 1e-10, 200)
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations < 5 || res.Iterations >= 200 {
		t.Fatalf("converged in %d iterations, expected a moderate count", res.Iterations)
	}
	// A converged fixpoint should be insensitive to many more oracle
	// iterations.
	want := refalgo.PageRank(oracle, 0.85, 300)
	for v := range want {
		if math.Abs(res.Attrs[v]-want[v]) > 1e-7 {
			t.Fatalf("vertex %d: rank %.12g, want %.12g", v, res.Attrs[v], want[v])
		}
	}
}

func TestBFSMatchesOracle(t *testing.T) {
	for gname, g := range testGraphs(t) {
		for _, cc := range configCases {
			t.Run(fmt.Sprintf("%s/%s", gname, cc.name), func(t *testing.T) {
				e, oracle := buildEngine(t, g, 5, false, cc)
				res, err := algorithms.BFS(e, 0)
				if err != nil {
					t.Fatalf("BFS: %v", err)
				}
				want := refalgo.BFS(graph.BuildAdjacency(oracle), 0)
				for v := range want {
					got := int64(-1)
					if !math.IsInf(res.Attrs[v], 1) {
						got = int64(res.Attrs[v])
					}
					if got != want[v] {
						t.Fatalf("vertex %d: depth %d, want %d", v, got, want[v])
					}
				}
			})
		}
	}
}

func TestWCCMatchesOracle(t *testing.T) {
	for gname, g := range testGraphs(t) {
		for _, cc := range configCases {
			t.Run(fmt.Sprintf("%s/%s", gname, cc.name), func(t *testing.T) {
				e, oracle := buildEngine(t, g, 5, false, cc)
				res, err := algorithms.WCC(e)
				if err != nil {
					t.Fatalf("WCC: %v", err)
				}
				want := refalgo.WCC(oracle)
				testutil.SamePartition(t, algorithms.Labels(res.Attrs), want)
			})
		}
	}
}

func TestSCCMatchesOracle(t *testing.T) {
	for gname, g := range testGraphs(t) {
		for _, cc := range configCases {
			if cc.name == "spu-streamed" {
				continue // redundant with spu-callback for SCC, saves time
			}
			t.Run(fmt.Sprintf("%s/%s", gname, cc.name), func(t *testing.T) {
				e, oracle := buildEngine(t, g, 5, false, cc)
				res, err := algorithms.SCC(e)
				if err != nil {
					t.Fatalf("SCC: %v", err)
				}
				want := refalgo.SCC(graph.BuildAdjacency(oracle))
				testutil.SamePartition(t, res.Components, want)
			})
		}
	}
}

func TestSSSPMatchesOracle(t *testing.T) {
	g, err := gen.RMAT(gen.RMATConfig{Scale: 9, EdgeFactor: 8, A: 0.57, B: 0.19, C: 0.19,
		Seed: 5, Weighted: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, cc := range configCases {
		t.Run(cc.name, func(t *testing.T) {
			e, oracle := buildEngine(t, g, 5, true, cc)
			res, err := algorithms.SSSP(e, 0)
			if err != nil {
				t.Fatalf("SSSP: %v", err)
			}
			want := refalgo.SSSP(graph.BuildAdjacency(oracle), 0)
			for v := range want {
				if math.IsInf(want[v], 1) != math.IsInf(res.Attrs[v], 1) {
					t.Fatalf("vertex %d: reachability mismatch (%v vs %v)", v, res.Attrs[v], want[v])
				}
				if !math.IsInf(want[v], 1) && math.Abs(res.Attrs[v]-want[v]) > 1e-6 {
					t.Fatalf("vertex %d: dist %.9f, want %.9f", v, res.Attrs[v], want[v])
				}
			}
		})
	}
}

func TestHITSMatchesOracle(t *testing.T) {
	g := testGraphs(t)["rmat"]
	for _, cc := range []configCase{configCases[0], configCases[3], configCases[5]} {
		t.Run(cc.name, func(t *testing.T) {
			e, oracle := buildEngine(t, g, 4, false, cc)
			auth, hub, err := algorithms.HITS(e, 8)
			if err != nil {
				t.Fatalf("HITS: %v", err)
			}
			wantAuth, wantHub := refalgo.HITS(oracle, 8)
			for v := range wantAuth {
				if math.Abs(auth[v]-wantAuth[v]) > 1e-9 {
					t.Fatalf("vertex %d: auth %.12f, want %.12f", v, auth[v], wantAuth[v])
				}
				if math.Abs(hub[v]-wantHub[v]) > 1e-9 {
					t.Fatalf("vertex %d: hub %.12f, want %.12f", v, hub[v], wantHub[v])
				}
			}
		})
	}
}

func TestMaxDepth(t *testing.T) {
	depths := []float64{0, 1, 2, math.Inf(1), 3}
	if got := algorithms.MaxDepth(depths); got != 3 {
		t.Fatalf("MaxDepth = %d, want 3", got)
	}
	if got := algorithms.MaxDepth([]float64{math.Inf(1)}); got != -1 {
		t.Fatalf("MaxDepth of unreachable = %d, want -1", got)
	}
}

func TestPersonalizedPageRankMatchesOracle(t *testing.T) {
	g := testGraphs(t)["rmat"]
	for _, cc := range []configCase{configCases[0], configCases[3], configCases[5]} {
		t.Run(cc.name, func(t *testing.T) {
			e, oracle := buildEngine(t, g, 5, false, cc)
			res, err := algorithms.PersonalizedPageRank(e, 3, 0.85, 8)
			if err != nil {
				t.Fatalf("PPR: %v", err)
			}
			want := refalgo.PersonalizedPageRank(oracle, 3, 0.85, 8)
			var sum float64
			for v := range want {
				sum += res.Attrs[v]
				if math.Abs(res.Attrs[v]-want[v]) > 1e-10 {
					t.Fatalf("vertex %d: score %.12g, want %.12g", v, res.Attrs[v], want[v])
				}
			}
			if math.Abs(sum-1) > 1e-9 {
				t.Fatalf("scores sum to %v", sum)
			}
			if res.Attrs[3] <= res.Attrs[0] && oracle.NumVertices > 4 {
				t.Fatalf("root should score highest locally: root=%v other=%v",
					res.Attrs[3], res.Attrs[0])
			}
		})
	}
}

func TestPPRValidation(t *testing.T) {
	g := testGraphs(t)["uniform"]
	e, _ := buildEngine(t, g, 4, false, configCases[0])
	if _, err := algorithms.PersonalizedPageRank(e, 1<<30, 0.85, 5); err == nil {
		t.Fatal("out-of-range root accepted")
	}
	if _, err := algorithms.PersonalizedPageRank(e, 0, 0.85, 0); err == nil {
		t.Fatal("zero iterations accepted")
	}
}
