package algorithms

import (
	"context"
	"fmt"

	"nxgraph/internal/engine"
)

// This file provides the fused multi-query entry points: each builds one
// program per query root, runs them as lanes of a single engine
// BatchRun, and returns per-query results in submission order. A nil
// slot in the returned slice is a lane cancelled via the BatchControl
// handle; every other slot is bit-identical to the corresponding
// single-query run.
//
// ctrl, when non-nil, is invoked once with the run's per-lane control
// surface before the first iteration — the serving layer uses it to wire
// each fused job's cancel to its own lane.

// validateRoots checks every root is a valid vertex id.
func validateRoots(e *engine.Engine, algo string, roots []uint32) error {
	n := e.Store().Meta().NumVertices
	if len(roots) == 0 {
		return fmt.Errorf("algorithms: %s batch needs at least one root", algo)
	}
	for _, r := range roots {
		if r >= n {
			return fmt.Errorf("algorithms: %s root %d out of range n=%d", algo, r, n)
		}
	}
	return nil
}

// runBatch drives a fused run of ps until every lane finishes, capped at
// iters when iters > 0.
func runBatch(ctx context.Context, e *engine.Engine, ps []engine.Program, iters int, progress engine.ProgressFunc, ctrl func(engine.BatchControl)) ([]*engine.Result, error) {
	run, err := e.NewBatchRun(ps, engine.Forward)
	if err != nil {
		return nil, err
	}
	defer run.Close()
	run.SetProgress(progress)
	if ctrl != nil {
		ctrl(run)
	}
	for it := 0; iters <= 0 || it < iters; it++ {
		more, err := run.StepContext(ctx)
		if err != nil {
			return nil, err
		}
		if !more {
			break
		}
	}
	return run.Finish()
}

// PersonalizedPageRankBatch runs iters iterations of personalized
// PageRank from every root in one fused sweep, returning one result per
// root in order.
func PersonalizedPageRankBatch(e *engine.Engine, roots []uint32, damping float64, iters int) ([]*engine.Result, error) {
	return PersonalizedPageRankBatchContext(context.Background(), e, roots, damping, iters, nil, nil)
}

// PersonalizedPageRankBatchContext is PersonalizedPageRankBatch with
// cancellation, progress reporting, and per-lane control (all optional).
func PersonalizedPageRankBatchContext(ctx context.Context, e *engine.Engine, roots []uint32, damping float64, iters int, progress engine.ProgressFunc, ctrl func(engine.BatchControl)) ([]*engine.Result, error) {
	if err := validateRoots(e, "ppr", roots); err != nil {
		return nil, err
	}
	if iters <= 0 {
		return nil, fmt.Errorf("algorithms: ppr needs iters > 0")
	}
	ps := make([]engine.Program, len(roots))
	for i, r := range roots {
		ps[i] = &pprProg{root: r, damping: damping}
	}
	return runBatch(ctx, e, ps, iters, progress, ctrl)
}

// BFSBatch computes hop distances from every root in one fused sweep,
// returning one result per root in order.
func BFSBatch(e *engine.Engine, roots []uint32) ([]*engine.Result, error) {
	return BFSBatchContext(context.Background(), e, roots, nil, nil)
}

// BFSBatchContext is BFSBatch with cancellation, progress reporting, and
// per-lane control (all optional).
func BFSBatchContext(ctx context.Context, e *engine.Engine, roots []uint32, progress engine.ProgressFunc, ctrl func(engine.BatchControl)) ([]*engine.Result, error) {
	if err := validateRoots(e, "bfs", roots); err != nil {
		return nil, err
	}
	ps := make([]engine.Program, len(roots))
	for i, r := range roots {
		ps[i] = &bfsProg{root: r}
	}
	return runBatch(ctx, e, ps, 0, progress, ctrl)
}

// SSSPBatch computes shortest-path distances from every root in one
// fused sweep, returning one result per root in order.
func SSSPBatch(e *engine.Engine, roots []uint32) ([]*engine.Result, error) {
	return SSSPBatchContext(context.Background(), e, roots, nil, nil)
}

// SSSPBatchContext is SSSPBatch with cancellation, progress reporting,
// and per-lane control (all optional).
func SSSPBatchContext(ctx context.Context, e *engine.Engine, roots []uint32, progress engine.ProgressFunc, ctrl func(engine.BatchControl)) ([]*engine.Result, error) {
	if err := validateRoots(e, "sssp", roots); err != nil {
		return nil, err
	}
	ps := make([]engine.Program, len(roots))
	for i, r := range roots {
		ps[i] = &ssspProg{root: r}
	}
	return runBatch(ctx, e, ps, 0, progress, ctrl)
}
