package algorithms_test

import (
	"context"
	"errors"
	"math"
	"testing"

	"nxgraph/internal/algorithms"
	"nxgraph/internal/engine"
	"nxgraph/internal/gen"
	"nxgraph/internal/testutil"
)

// TestPageRankContextCancelMidRun is the serving subsystem's core engine
// requirement: a multi-iteration PageRank on an RMAT graph cancelled
// mid-run returns context.Canceled promptly and leaves the store fully
// reusable for subsequent runs.
func TestPageRankContextCancelMidRun(t *testing.T) {
	g, err := gen.RMAT(gen.DefaultRMAT(11, 8, 42))
	if err != nil {
		t.Fatal(err)
	}
	st, _ := testutil.BuildStore(t, g, testutil.StoreOptions{P: 6, Transpose: true})
	e, err := engine.New(st, engine.Config{})
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	cancelledAt := 0
	_, err = algorithms.PageRankContext(ctx, e, 0.85, 500, func(p engine.Progress) {
		if p.Iteration == 3 {
			cancelledAt = p.Iteration
			cancel()
		}
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if cancelledAt != 3 {
		t.Fatalf("cancel fired at iteration %d, want 3", cancelledAt)
	}

	// Store must be reusable: a fresh full run produces a valid
	// distribution (ranks sum to 1).
	res, err := algorithms.PageRank(e, 0.85, 10)
	if err != nil {
		t.Fatalf("store unusable after cancelled run: %v", err)
	}
	sum := 0.0
	for _, r := range res.Attrs {
		sum += r
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("post-cancel PageRank sums to %g, want 1", sum)
	}
	if res.Iterations != 10 {
		t.Fatalf("post-cancel PageRank ran %d iterations, want 10", res.Iterations)
	}
}

// TestContextVariantsCancelled verifies every multi-phase Context variant
// honours an already-cancelled context and surfaces ctx.Err().
func TestContextVariantsCancelled(t *testing.T) {
	g, err := gen.RMAT(gen.DefaultRMAT(8, 8, 5))
	if err != nil {
		t.Fatal(err)
	}
	st, _ := testutil.BuildStore(t, g, testutil.StoreOptions{P: 4, Transpose: true})
	e, err := engine.New(st, engine.Config{})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	cases := map[string]func() error{
		"pagerank": func() error { _, err := algorithms.PageRankContext(ctx, e, 0.85, 10, nil); return err },
		"converge": func() error { _, err := algorithms.PageRankConvergeContext(ctx, e, 0.85, 1e-9, 0, nil); return err },
		"ppr":      func() error { _, err := algorithms.PersonalizedPageRankContext(ctx, e, 0, 0.85, 10, nil); return err },
		"bfs":      func() error { _, err := algorithms.BFSContext(ctx, e, 0, nil); return err },
		"sssp":     func() error { _, err := algorithms.SSSPContext(ctx, e, 0, nil); return err },
		"wcc":      func() error { _, err := algorithms.WCCContext(ctx, e, nil); return err },
		"scc":      func() error { _, err := algorithms.SCCContext(ctx, e, nil); return err },
		"kcore":    func() error { _, err := algorithms.KCoreContext(ctx, e, nil); return err },
		"hits":     func() error { _, _, err := algorithms.HITSContext(ctx, e, 3, nil); return err },
	}
	for name, fn := range cases {
		if err := fn(); !errors.Is(err, context.Canceled) {
			t.Errorf("%s: want context.Canceled, got %v", name, err)
		}
	}

	// And the engine still works after the whole battery.
	if _, err := algorithms.BFS(e, 0); err != nil {
		t.Fatalf("engine unusable after cancelled battery: %v", err)
	}
}
