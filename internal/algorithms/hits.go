package algorithms

import (
	"context"
	"fmt"
	"math"

	"nxgraph/internal/engine"
)

// sumProg is a bare SpMV half-step: every destination's new attribute is
// the plain sum of its in-neighbors' attributes (forward) or
// out-neighbors' attributes (reverse). Normalization happens outside.
type sumProg struct{ label string }

func (p sumProg) Name() string                { return p.label }
func (sumProg) Zero() float64                 { return 0 }
func (sumProg) Init(v uint32) (float64, bool) { return 0, true }
func (sumProg) Gather(srcAttr float64, _ uint32, _ float32) float64 {
	return srcAttr
}
func (sumProg) Sum(a, b float64) float64 { return a + b }
func (sumProg) Apply(v uint32, old, acc float64) (float64, bool) {
	return acc, true
}
func (sumProg) DenseApply() {}

// FusedKernelHint declares the copy-and-add gather form so runs
// specialize the SpMV inner loop.
func (sumProg) FusedKernelHint() engine.KernelHint { return engine.KernelCopySum }

// ApplyLane implements engine.LaneApplier: Apply keeps the accumulated
// sum (already in next) and reports change for every vertex, so any
// non-empty range changed.
func (sumProg) ApplyLane(curr, next []float64, stride, off int, v0, v1 uint32) bool {
	return v1 > v0
}

// HITS runs iters iterations of Kleinberg's hubs-and-authorities
// computation with L2 normalization after every half-step, matching
// refalgo.HITS. It requires a store preprocessed with Transpose and
// orchestrates two alternating engine runs sharing attribute snapshots:
//
//	auth = normalize(Aᵀ·hub)   (gather hub scores along forward edges)
//	hub  = normalize(A·auth)   (gather auth scores along reverse edges)
func HITS(e *engine.Engine, iters int) (auth, hub []float64, err error) {
	return HITSContext(context.Background(), e, iters, nil)
}

// HITSContext is HITS with cancellation and progress reporting. Progress
// is reported once per half-step: Iteration counts half-steps (2·iters
// total) and Edges accumulates traversals across both alternating runs.
func HITSContext(ctx context.Context, e *engine.Engine, iters int, progress engine.ProgressFunc) (auth, hub []float64, err error) {
	if iters <= 0 {
		return nil, nil, fmt.Errorf("algorithms: hits needs iters > 0")
	}
	if !e.Store().Meta().HasTranspose {
		return nil, nil, fmt.Errorf("algorithms: hits requires a store preprocessed with Transpose")
	}
	n := int(e.Store().Meta().NumVertices)
	authRun, err := e.NewRun(sumProg{"hits-auth"}, engine.Forward)
	if err != nil {
		return nil, nil, err
	}
	defer authRun.Close()
	hubRun, err := e.NewRun(sumProg{"hits-hub"}, engine.Reverse)
	if err != nil {
		return nil, nil, err
	}
	defer hubRun.Close()

	hub = make([]float64, n)
	for i := range hub {
		hub[i] = 1
	}
	halfSteps := 0
	if progress != nil {
		// Each run's edge counter is cumulative over that run's own
		// steps; fold the two alternating runs into one monotone
		// stream by accumulating per-run deltas.
		var cumEdges int64
		last := map[*engine.Run]int64{}
		for _, rn := range []*engine.Run{authRun, hubRun} {
			rn.SetProgress(func(p engine.Progress) {
				cumEdges += p.Edges - last[rn]
				last[rn] = p.Edges
				progress(engine.Progress{
					Iteration:       halfSteps + 1,
					Edges:           cumEdges,
					ActiveIntervals: p.ActiveIntervals,
					Elapsed:         p.Elapsed,
				})
			})
		}
	}
	halfStep := func(run *engine.Run, in []float64) ([]float64, error) {
		if err := run.SetAttrs(in); err != nil {
			return nil, err
		}
		run.ActivateAll()
		run.ResetIterations()
		if _, err := run.StepContext(ctx); err != nil {
			return nil, err
		}
		out, err := run.Attrs()
		if err != nil {
			return nil, err
		}
		normalizeL2(out)
		halfSteps++
		return out, nil
	}
	for it := 0; it < iters; it++ {
		if auth, err = halfStep(authRun, hub); err != nil {
			return nil, nil, err
		}
		if hub, err = halfStep(hubRun, auth); err != nil {
			return nil, nil, err
		}
	}
	return auth, hub, nil
}

func normalizeL2(x []float64) {
	var s float64
	for _, v := range x {
		s += v * v
	}
	if s == 0 {
		return
	}
	inv := 1 / math.Sqrt(s)
	for i := range x {
		x[i] *= inv
	}
}
