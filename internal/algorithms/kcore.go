package algorithms

import (
	"context"
	"fmt"
	"time"

	"nxgraph/internal/bitset"
	"nxgraph/internal/engine"
)

// KCore computes the core number of every vertex — the largest k such
// that the vertex belongs to the k-core of the *undirected* view of the
// graph (self-loops contribute 2 to a vertex's degree, parallel edges
// count with multiplicity). It is an extension beyond the paper's
// evaluated tasks, built from the same machinery SCC uses: iterative
// peeling driven by one-shot degree counts over both edge orientations
// and the engine's vertex mask.
//
// Requires a store preprocessed with Transpose.
func KCore(e *engine.Engine) (*KCoreResult, error) {
	return KCoreContext(context.Background(), e, nil)
}

// KCoreContext is KCore with cancellation and progress reporting.
// Cancellation is checked inside every degree-recount pass; progress
// reports cumulative engine iterations across passes.
func KCoreContext(ctx context.Context, e *engine.Engine, progress engine.ProgressFunc) (*KCoreResult, error) {
	meta := e.Store().Meta()
	if !meta.HasTranspose {
		return nil, fmt.Errorf("algorithms: kcore requires a store preprocessed with Transpose")
	}
	n := int(meta.NumVertices)
	start := time.Now()
	res := &KCoreResult{Core: make([]uint32, n)}
	mask := bitset.New(n)
	remaining := n
	k := uint32(1)
	for remaining > 0 {
		// Peel everything of degree < k until stable, then raise k.
		peeledAny := true
		for peeledAny && remaining > 0 {
			counts, err := liveDegrees(ctx, e, mask, res, progress)
			if err != nil {
				return nil, err
			}
			peeledAny = false
			for v := 0; v < n; v++ {
				if mask.Test(v) {
					continue
				}
				if uint32(counts[v]) < k {
					res.Core[v] = k - 1
					mask.Set(v)
					remaining--
					peeledAny = true
				}
			}
			res.Passes++
		}
		k++
	}
	res.MaxCore = 0
	for _, c := range res.Core {
		if c > res.MaxCore {
			res.MaxCore = c
		}
	}
	res.Elapsed = time.Since(start)
	return res, nil
}

// KCoreResult reports a k-core decomposition.
type KCoreResult struct {
	// Core holds each vertex's core number.
	Core []uint32
	// MaxCore is the degeneracy of the graph.
	MaxCore uint32
	// Passes counts degree-recount engine passes.
	Passes int
	// Iterations counts engine iterations.
	Iterations int
	// EdgesTraversed counts edge visits.
	EdgesTraversed int64
	// Elapsed is wall time.
	Elapsed time.Duration
}

// liveDegrees counts, for every vertex, its unmasked undirected degree
// (in + out) with a single Both-direction engine iteration.
func liveDegrees(ctx context.Context, e *engine.Engine, mask *bitset.Set, res *KCoreResult, progress engine.ProgressFunc) ([]float64, error) {
	run, err := e.NewRun(degreeCountProg{}, engine.Both)
	if err != nil {
		return nil, err
	}
	defer run.Close()
	run.SetMask(mask)
	run.SetProgress(offsetProgress(progress, res.Iterations, res.EdgesTraversed))
	if _, err := run.StepContext(ctx); err != nil {
		return nil, err
	}
	r, err := run.Finish()
	if err != nil {
		return nil, err
	}
	res.Iterations += r.Iterations
	res.EdgesTraversed += r.EdgesTraversed
	return r.Attrs, nil
}
