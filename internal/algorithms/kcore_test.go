package algorithms_test

import (
	"testing"

	"nxgraph/internal/algorithms"
	"nxgraph/internal/engine"
	"nxgraph/internal/graph"
	"nxgraph/internal/refalgo"
	"nxgraph/internal/testutil"
)

func TestKCoreKnownGraph(t *testing.T) {
	// A 4-clique (core 3) with a pendant path hanging off it (core 1).
	// Undirected degree is in+out, so each undirected edge is stored
	// once; the Both-direction traversal supplies the other orientation.
	g := &graph.EdgeList{NumVertices: 6}
	for a := uint32(0); a < 4; a++ {
		for b := a + 1; b < 4; b++ {
			g.Edges = append(g.Edges, graph.Edge{Src: a, Dst: b})
		}
	}
	g.Edges = append(g.Edges,
		graph.Edge{Src: 3, Dst: 4}, graph.Edge{Src: 4, Dst: 5})
	e, oracle := buildEngine(t, g, 2, false, configCases[0])
	res, err := algorithms.KCore(e)
	if err != nil {
		t.Fatal(err)
	}
	want := refalgo.KCore(oracle)
	wantVals := []uint32{3, 3, 3, 3, 1, 1}
	for v := range want {
		if want[v] != wantVals[v] {
			t.Fatalf("oracle disagrees with hand-computed cores: %v", want)
		}
		if res.Core[v] != want[v] {
			t.Fatalf("vertex %d: core %d, want %d", v, res.Core[v], want[v])
		}
	}
	if res.MaxCore != 3 {
		t.Fatalf("degeneracy %d, want 3", res.MaxCore)
	}
}

func TestKCoreMatchesOracle(t *testing.T) {
	for gname, g := range testGraphs(t) {
		for _, cc := range []configCase{configCases[0], configCases[3], configCases[5]} {
			t.Run(gname+"/"+cc.name, func(t *testing.T) {
				e, oracle := buildEngine(t, g, 4, false, cc)
				res, err := algorithms.KCore(e)
				if err != nil {
					t.Fatal(err)
				}
				want := refalgo.KCore(oracle)
				for v := range want {
					if res.Core[v] != want[v] {
						t.Fatalf("vertex %d: core %d, want %d", v, res.Core[v], want[v])
					}
				}
			})
		}
	}
}

func TestKCoreRequiresTranspose(t *testing.T) {
	g := testGraphs(t)["uniform"]
	st, _ := testutil.BuildStore(t, g, testutil.StoreOptions{P: 4})
	e, err := engine.New(st, engine.Config{Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := algorithms.KCore(e); err == nil {
		t.Fatal("kcore without transpose accepted")
	}
}
