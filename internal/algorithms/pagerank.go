// Package algorithms implements the graph computations the paper
// evaluates — PageRank, BFS, WCC, SCC — plus weighted SSSP and HITS as
// extensions, all expressed as engine Programs (paper §II-B's
// Initialize/Update/Output decomposition).
package algorithms

import (
	"context"
	"fmt"
	"math"
	"sync/atomic"

	"nxgraph/internal/engine"
)

// pageRankProg implements the PageRank power iteration with dangling-mass
// redistribution. The global aggregate carries the dangling mass of the
// current attributes into Apply's base term.
type pageRankProg struct {
	n        float64
	damping  float64
	dangling float64
	// maxDelta tracks the largest per-vertex change of the last
	// iteration (atomic float64 bits; Apply runs concurrently).
	maxDelta atomic.Uint64
	dang     danglingCache
}

func (p *pageRankProg) Name() string  { return "pagerank" }
func (p *pageRankProg) Zero() float64 { return 0 }

func (p *pageRankProg) Init(v uint32) (float64, bool) { return 1 / p.n, true }

func (p *pageRankProg) Gather(srcAttr float64, srcDeg uint32, _ float32) float64 {
	return srcAttr / float64(srcDeg)
}

func (p *pageRankProg) Sum(a, b float64) float64 { return a + b }

// FusedKernelHint declares the attr/deg-and-add gather form so fused
// batch runs specialize the multi-lane kernel.
func (p *pageRankProg) FusedKernelHint() engine.KernelHint { return engine.KernelRankSum }

func (p *pageRankProg) Apply(v uint32, old, acc float64) (float64, bool) {
	nv := (1-p.damping)/p.n + p.damping*(p.dangling/p.n+acc)
	p.updateDelta(math.Abs(nv - old))
	// PageRank is non-monotone: accumulators rebuild from scratch every
	// iteration, so every interval must stay active until the driver
	// stops iterating.
	return nv, true
}

func (p *pageRankProg) updateDelta(d float64) {
	for {
		cur := p.maxDelta.Load()
		if d <= math.Float64frombits(cur) {
			return
		}
		if p.maxDelta.CompareAndSwap(cur, math.Float64bits(d)) {
			return
		}
	}
}

func (p *pageRankProg) takeDelta() float64 {
	return math.Float64frombits(p.maxDelta.Swap(0))
}

// GlobalAggregator: dangling mass of the current ranks.
func (p *pageRankProg) AggZero() float64 { return 0 }
func (p *pageRankProg) AggVertex(v uint32, attr float64, deg uint32) float64 {
	if deg == 0 {
		return attr
	}
	return 0
}
func (p *pageRankProg) AggCombine(a, b float64) float64 { return a + b }
func (p *pageRankProg) SetGlobal(g float64)             { p.dangling = g }

// AggLane implements engine.LaneAggregator; see pprProg.AggLane for why
// skipping non-dangling vertices reproduces the scalar fold bit-for-bit.
func (p *pageRankProg) AggLane(curr []float64, stride, off int, deg []uint32) float64 {
	val := 0.0
	for _, v := range p.dang.indexFor(deg) {
		val += curr[int(v)*stride+off]
	}
	return val
}

// ApplyLane implements engine.LaneApplier. The two per-iteration
// constants hoist out of the loop — computed with exactly Apply's
// operations, so each vertex's rank is bit-identical — and the atomic
// convergence delta updates once per range instead of once per vertex
// (updateDelta keeps a max, and the max of per-vertex deltas is the
// range's local max).
func (p *pageRankProg) ApplyLane(curr, next []float64, stride, off int, v0, v1 uint32) bool {
	base := (1 - p.damping) / p.n
	dm := p.dangling / p.n
	maxd := 0.0
	for v := v0; v < v1; v++ {
		idx := int(v)*stride + off
		nv := base + p.damping*(dm+next[idx])
		if d := math.Abs(nv - curr[idx]); d > maxd {
			maxd = d
		}
		next[idx] = nv
	}
	if maxd > 0 {
		p.updateDelta(maxd)
	}
	return v1 > v0
}

// PageRank runs exactly iters power iterations and returns per-vertex
// ranks (summing to 1).
func PageRank(e *engine.Engine, damping float64, iters int) (*engine.Result, error) {
	return PageRankContext(context.Background(), e, damping, iters, nil)
}

// PageRankContext is PageRank with cancellation and per-iteration progress
// reporting (progress may be nil). On cancellation it returns ctx.Err();
// the engine stays reusable.
func PageRankContext(ctx context.Context, e *engine.Engine, damping float64, iters int, progress engine.ProgressFunc) (*engine.Result, error) {
	if iters <= 0 {
		return nil, fmt.Errorf("algorithms: pagerank needs iters > 0")
	}
	prog := &pageRankProg{n: float64(e.Store().Meta().NumVertices), damping: damping}
	run, err := e.NewRun(prog, engine.Forward)
	if err != nil {
		return nil, err
	}
	defer run.Close()
	run.SetProgress(progress)
	for it := 0; it < iters; it++ {
		more, err := run.StepContext(ctx)
		if err != nil {
			return nil, err
		}
		if !more {
			break
		}
	}
	return run.Finish()
}

// PageRankConverge iterates until the largest per-vertex change drops
// below eps (or maxIters is hit).
func PageRankConverge(e *engine.Engine, damping, eps float64, maxIters int) (*engine.Result, error) {
	return PageRankConvergeContext(context.Background(), e, damping, eps, maxIters, nil)
}

// PageRankConvergeContext is PageRankConverge with cancellation and
// progress reporting.
func PageRankConvergeContext(ctx context.Context, e *engine.Engine, damping, eps float64, maxIters int, progress engine.ProgressFunc) (*engine.Result, error) {
	prog := &pageRankProg{n: float64(e.Store().Meta().NumVertices), damping: damping}
	run, err := e.NewRun(prog, engine.Forward)
	if err != nil {
		return nil, err
	}
	defer run.Close()
	run.SetProgress(progress)
	for it := 0; maxIters <= 0 || it < maxIters; it++ {
		more, err := run.StepContext(ctx)
		if err != nil {
			return nil, err
		}
		if !more {
			break
		}
		if prog.takeDelta() < eps {
			break
		}
	}
	return run.Finish()
}
