package algorithms

import (
	"context"
	"fmt"

	"nxgraph/internal/engine"
)

// pprProg is Personalized PageRank: the random walk teleports back to a
// single source vertex instead of the uniform distribution, scoring
// proximity to that source. Dangling mass also returns to the source.
type pprProg struct {
	root     uint32
	damping  float64
	dangling float64
	dang     danglingCache
}

// danglingCache memoizes the ascending list of zero-degree vertices the
// rank programs' AggLane folds over. The degree array is fixed for the
// life of a run, so the full-degree walk happens once per program
// instead of once per iteration. Each program instance owns its cache;
// lanes aggregate on distinct instances, so no synchronization needed.
type danglingCache struct {
	deg []uint32 // the slice the index was built from (same backing array)
	idx []uint32
}

// indexFor returns the ascending zero-degree vertex ids of deg,
// rebuilding the index only when deg is a different array.
func (c *danglingCache) indexFor(deg []uint32) []uint32 {
	if len(deg) == 0 {
		return nil
	}
	if len(c.deg) == len(deg) && &c.deg[0] == &deg[0] {
		return c.idx
	}
	c.deg = deg
	c.idx = c.idx[:0]
	for v, d := range deg {
		if d == 0 {
			c.idx = append(c.idx, uint32(v))
		}
	}
	return c.idx
}

func (p *pprProg) Name() string  { return "ppr" }
func (p *pprProg) Zero() float64 { return 0 }

func (p *pprProg) Init(v uint32) (float64, bool) {
	if v == p.root {
		return 1, true
	}
	return 0, true
}

func (p *pprProg) Gather(srcAttr float64, srcDeg uint32, _ float32) float64 {
	return srcAttr / float64(srcDeg)
}

func (p *pprProg) Sum(a, b float64) float64 { return a + b }

// FusedKernelHint declares the attr/deg-and-add gather form so fused
// batch runs specialize the multi-lane kernel.
func (p *pprProg) FusedKernelHint() engine.KernelHint { return engine.KernelRankSum }

func (p *pprProg) Apply(v uint32, old, acc float64) (float64, bool) {
	nv := p.damping * (acc)
	if v == p.root {
		nv += (1 - p.damping) + p.damping*p.dangling
	}
	return nv, true
}

func (p *pprProg) AggZero() float64 { return 0 }
func (p *pprProg) AggVertex(v uint32, attr float64, deg uint32) float64 {
	if deg == 0 {
		return attr
	}
	return 0
}
func (p *pprProg) AggCombine(a, b float64) float64 { return a + b }
func (p *pprProg) SetGlobal(g float64)             { p.dangling = g }

// ApplyLane implements engine.LaneApplier: Apply over a strided vertex
// range with no per-vertex interface dispatch. The per-vertex operations
// are exactly Apply's (one multiply, plus the root's teleport term);
// every vertex changes, matching Apply's unconditional true.
func (p *pprProg) ApplyLane(curr, next []float64, stride, off int, v0, v1 uint32) bool {
	for v := v0; v < v1; v++ {
		idx := int(v)*stride + off
		nv := p.damping * (next[idx])
		if v == p.root {
			nv += (1 - p.damping) + p.damping*p.dangling
		}
		next[idx] = nv
	}
	return v1 > v0
}

// AggLane implements engine.LaneAggregator: the dangling-mass reduction
// over one strided lane. Non-dangling vertices contribute AggVertex's
// literal 0, and adding 0 to a non-negative running sum is the identity
// bit pattern (ranks are never -0), so skipping them reproduces the
// scalar fold exactly.
func (p *pprProg) AggLane(curr []float64, stride, off int, deg []uint32) float64 {
	val := 0.0
	for _, v := range p.dang.indexFor(deg) {
		val += curr[int(v)*stride+off]
	}
	return val
}

// PersonalizedPageRank runs iters iterations of the single-source
// personalized PageRank from root. Scores sum to 1 and measure random-
// walk-with-restart proximity to root.
func PersonalizedPageRank(e *engine.Engine, root uint32, damping float64, iters int) (*engine.Result, error) {
	return PersonalizedPageRankContext(context.Background(), e, root, damping, iters, nil)
}

// PersonalizedPageRankContext is PersonalizedPageRank with cancellation
// and progress reporting.
func PersonalizedPageRankContext(ctx context.Context, e *engine.Engine, root uint32, damping float64, iters int, progress engine.ProgressFunc) (*engine.Result, error) {
	n := e.Store().Meta().NumVertices
	if root >= n {
		return nil, fmt.Errorf("algorithms: ppr root %d out of range n=%d", root, n)
	}
	if iters <= 0 {
		return nil, fmt.Errorf("algorithms: ppr needs iters > 0")
	}
	prog := &pprProg{root: root, damping: damping}
	run, err := e.NewRun(prog, engine.Forward)
	if err != nil {
		return nil, err
	}
	defer run.Close()
	run.SetProgress(progress)
	for it := 0; it < iters; it++ {
		more, err := run.StepContext(ctx)
		if err != nil {
			return nil, err
		}
		if !more {
			break
		}
	}
	return run.Finish()
}
