package algorithms

import (
	"context"
	"fmt"

	"nxgraph/internal/engine"
)

// pprProg is Personalized PageRank: the random walk teleports back to a
// single source vertex instead of the uniform distribution, scoring
// proximity to that source. Dangling mass also returns to the source.
type pprProg struct {
	root     uint32
	damping  float64
	dangling float64
}

func (p *pprProg) Name() string  { return "ppr" }
func (p *pprProg) Zero() float64 { return 0 }

func (p *pprProg) Init(v uint32) (float64, bool) {
	if v == p.root {
		return 1, true
	}
	return 0, true
}

func (p *pprProg) Gather(srcAttr float64, srcDeg uint32, _ float32) float64 {
	return srcAttr / float64(srcDeg)
}

func (p *pprProg) Sum(a, b float64) float64 { return a + b }

func (p *pprProg) Apply(v uint32, old, acc float64) (float64, bool) {
	nv := p.damping * (acc)
	if v == p.root {
		nv += (1 - p.damping) + p.damping*p.dangling
	}
	return nv, true
}

func (p *pprProg) AggZero() float64 { return 0 }
func (p *pprProg) AggVertex(v uint32, attr float64, deg uint32) float64 {
	if deg == 0 {
		return attr
	}
	return 0
}
func (p *pprProg) AggCombine(a, b float64) float64 { return a + b }
func (p *pprProg) SetGlobal(g float64)             { p.dangling = g }

// PersonalizedPageRank runs iters iterations of the single-source
// personalized PageRank from root. Scores sum to 1 and measure random-
// walk-with-restart proximity to root.
func PersonalizedPageRank(e *engine.Engine, root uint32, damping float64, iters int) (*engine.Result, error) {
	return PersonalizedPageRankContext(context.Background(), e, root, damping, iters, nil)
}

// PersonalizedPageRankContext is PersonalizedPageRank with cancellation
// and progress reporting.
func PersonalizedPageRankContext(ctx context.Context, e *engine.Engine, root uint32, damping float64, iters int, progress engine.ProgressFunc) (*engine.Result, error) {
	n := e.Store().Meta().NumVertices
	if root >= n {
		return nil, fmt.Errorf("algorithms: ppr root %d out of range n=%d", root, n)
	}
	if iters <= 0 {
		return nil, fmt.Errorf("algorithms: ppr needs iters > 0")
	}
	prog := &pprProg{root: root, damping: damping}
	run, err := e.NewRun(prog, engine.Forward)
	if err != nil {
		return nil, err
	}
	defer run.Close()
	run.SetProgress(progress)
	for it := 0; it < iters; it++ {
		more, err := run.StepContext(ctx)
		if err != nil {
			return nil, err
		}
		if !more {
			break
		}
	}
	return run.Finish()
}
