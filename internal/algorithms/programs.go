package algorithms

import "nxgraph/internal/engine"

// Exported program constructors. The baseline systems (GraphChi-like,
// TurboGraph-like, GridGraph-like, X-Stream-like) execute the very same
// gather–sum–apply programs as the NXgraph engine, so benchmark
// comparisons measure storage layout and scheduling, not algorithm
// differences.

// NewPageRankProgram returns the PageRank program over n vertices.
func NewPageRankProgram(n uint32, damping float64) engine.Program {
	return &pageRankProg{n: float64(n), damping: damping}
}

// NewBFSProgram returns the minimum-depth BFS program rooted at root.
func NewBFSProgram(root uint32) engine.Program { return &bfsProg{root: root} }

// NewSSSPProgram returns the weighted shortest-path program rooted at
// root.
func NewSSSPProgram(root uint32) engine.Program { return &ssspProg{root: root} }

// NewWCCProgram returns the minimum-label propagation program. On a
// directed store it must run in direction Both; on a symmetrized edge set
// (both orientations materialized) Forward suffices.
func NewWCCProgram() engine.Program { return wccProg{} }
