package algorithms

import (
	"context"
	"fmt"
	"math"
	"time"

	"nxgraph/internal/bitset"
	"nxgraph/internal/engine"
)

// stepAll drives run to termination, honouring ctx and reporting
// per-iteration progress (progress may be nil). Used by the SCC
// fixpoints, which run until inactivity rather than a fixed count.
func stepAll(ctx context.Context, run *engine.Run, progress engine.ProgressFunc) error {
	run.SetProgress(progress)
	for {
		more, err := run.StepContext(ctx)
		if err != nil {
			return err
		}
		if !more {
			return nil
		}
	}
}

// offsetProgress shifts per-run progress by cumulative counters so that
// multi-phase algorithms (SCC, KCore) report monotone iteration and edge
// counts across their many engine runs.
func offsetProgress(progress engine.ProgressFunc, baseIter int, baseEdges int64) engine.ProgressFunc {
	if progress == nil {
		return nil
	}
	return func(p engine.Progress) {
		p.Iteration += baseIter
		p.Edges += baseEdges
		progress(p)
	}
}

// SCC computes strongly connected components with the trim + forward-
// coloring + backward-confirmation scheme used by vertex-centric
// out-of-core systems (the same family GraphChi's SCC belongs to):
//
//  1. Trim: unassigned vertices with no unassigned in- or out-neighbor
//     are singleton SCCs (removed repeatedly, bounded rounds).
//  2. Color: propagate the maximum vertex id along forward edges to a
//     fixpoint. A vertex whose color equals its own id roots a candidate
//     component.
//  3. Confirm: propagate root confirmation backwards (along reverse
//     edges) within equal colors. Every confirmed vertex belongs to the
//     SCC rooted at its color. Because forward max-coloring guarantees
//     color(u) ≥ color(v) for every edge v→u, "some confirmed
//     out-neighbor has my color" reduces to an associative min.
//  4. Assign confirmed vertices, freeze them behind the engine's vertex
//     mask, repeat.
//
// The store must be preprocessed with Transpose. Labels identify
// components by their root's id (an arbitrary canonical member).
func SCC(e *engine.Engine) (*SCCResult, error) {
	return SCCContext(context.Background(), e, nil)
}

// SCCContext is SCC with cancellation and progress reporting. Cancellation
// is checked inside every engine fixpoint and between phases; progress
// reports cumulative engine iterations across all phases.
func SCCContext(ctx context.Context, e *engine.Engine, progress engine.ProgressFunc) (*SCCResult, error) {
	meta := e.Store().Meta()
	if !meta.HasTranspose {
		return nil, fmt.Errorf("algorithms: scc requires a store preprocessed with Transpose")
	}
	n := int(meta.NumVertices)
	start := time.Now()
	res := &SCCResult{Components: make([]uint32, n)}
	mask := bitset.New(n)
	remaining := n
	const trimRoundsPerPhase = 4

	for remaining > 0 {
		res.Rounds++
		// Phase 1: trim.
		for t := 0; t < trimRoundsPerPhase && remaining > 0; t++ {
			trimmed, err := trimOnce(ctx, e, mask, res, progress)
			if err != nil {
				return nil, err
			}
			if trimmed == 0 {
				break
			}
			remaining -= trimmed
		}
		if remaining == 0 {
			break
		}
		// Phase 2: forward max-coloring to fixpoint.
		colors, err := colorFixpoint(ctx, e, mask, res, progress)
		if err != nil {
			return nil, err
		}
		// Phase 3: backward confirmation to fixpoint.
		confirmed, err := confirmFixpoint(ctx, e, mask, colors, res, progress)
		if err != nil {
			return nil, err
		}
		// Phase 4: assign confirmed vertices.
		assigned := 0
		for v := 0; v < n; v++ {
			if mask.Test(v) || !confirmed[v] {
				continue
			}
			res.Components[v] = uint32(colors[v])
			mask.Set(v)
			assigned++
		}
		if assigned == 0 {
			return nil, fmt.Errorf("algorithms: scc made no progress (round %d, %d left)",
				res.Rounds, remaining)
		}
		remaining -= assigned
	}
	res.Elapsed = time.Since(start)
	return res, nil
}

// SCCResult reports an SCC computation.
type SCCResult struct {
	// Components maps each vertex to its component root's id.
	Components []uint32
	// Rounds counts outer trim/color/confirm rounds.
	Rounds int
	// Iterations counts engine iterations across all phases.
	Iterations int
	// EdgesTraversed accumulates edge visits across all phases.
	EdgesTraversed int64
	// Elapsed is total wall time.
	Elapsed time.Duration
}

// NumComponents counts distinct components.
func (r *SCCResult) NumComponents() int {
	seen := make(map[uint32]struct{})
	for _, c := range r.Components {
		seen[c] = struct{}{}
	}
	return len(seen)
}

// degreeCountProg counts unmasked in-neighbors (Forward) or out-neighbors
// (Reverse) in a single iteration.
type degreeCountProg struct{}

func (degreeCountProg) Name() string                                  { return "scc-degree-count" }
func (degreeCountProg) Zero() float64                                 { return 0 }
func (degreeCountProg) Init(v uint32) (float64, bool)                 { return 0, true }
func (degreeCountProg) Gather(_ float64, _ uint32, _ float32) float64 { return 1 }
func (degreeCountProg) Sum(a, b float64) float64                      { return a + b }
func (degreeCountProg) Apply(v uint32, old, acc float64) (float64, bool) {
	return acc, false
}
func (degreeCountProg) DenseApply() {}

// FusedKernelHint declares the count-and-add gather form so runs
// specialize the live-degree inner loop (KCore peeling re-runs it every
// round).
func (degreeCountProg) FusedKernelHint() engine.KernelHint { return engine.KernelCountSum }

// ApplyLane implements engine.LaneApplier: Apply keeps the accumulated
// count (already in next) and never reports change.
func (degreeCountProg) ApplyLane(curr, next []float64, stride, off int, v0, v1 uint32) bool {
	return false
}

// trimOnce assigns singleton SCCs to unmasked vertices with zero live
// in-degree or zero live out-degree, returning how many were trimmed.
func trimOnce(ctx context.Context, e *engine.Engine, mask *bitset.Set, res *SCCResult, progress engine.ProgressFunc) (int, error) {
	inCnt, err := oneShotCount(ctx, e, mask, engine.Forward, res, progress)
	if err != nil {
		return 0, err
	}
	outCnt, err := oneShotCount(ctx, e, mask, engine.Reverse, res, progress)
	if err != nil {
		return 0, err
	}
	trimmed := 0
	for v := range inCnt {
		if mask.Test(v) {
			continue
		}
		if inCnt[v] == 0 || outCnt[v] == 0 {
			res.Components[v] = uint32(v)
			mask.Set(v)
			trimmed++
		}
	}
	return trimmed, nil
}

func oneShotCount(ctx context.Context, e *engine.Engine, mask *bitset.Set, dir engine.Direction, res *SCCResult, progress engine.ProgressFunc) ([]float64, error) {
	run, err := e.NewRun(degreeCountProg{}, dir)
	if err != nil {
		return nil, err
	}
	defer run.Close()
	run.SetMask(mask)
	run.SetProgress(offsetProgress(progress, res.Iterations, res.EdgesTraversed))
	if _, err := run.StepContext(ctx); err != nil {
		return nil, err
	}
	r, err := run.Finish()
	if err != nil {
		return nil, err
	}
	res.Iterations += r.Iterations
	res.EdgesTraversed += r.EdgesTraversed
	return r.Attrs, nil
}

// colorProg propagates maximum vertex ids forward.
type colorProg struct{}

func (colorProg) Name() string                  { return "scc-color" }
func (colorProg) Zero() float64                 { return math.Inf(-1) }
func (colorProg) Init(v uint32) (float64, bool) { return float64(v), true }
func (colorProg) Gather(srcAttr float64, _ uint32, _ float32) float64 {
	return srcAttr
}
func (colorProg) Sum(a, b float64) float64 { return math.Max(a, b) }

// FusedKernelHint declares the copy-and-max gather form so runs
// specialize the coloring inner loop.
func (colorProg) FusedKernelHint() engine.KernelHint { return engine.KernelMaxFold }

func (colorProg) Apply(v uint32, old, acc float64) (float64, bool) {
	if acc > old {
		return acc, true
	}
	return old, false
}

// ApplyLane implements engine.LaneApplier: max-relaxation, the mirror of
// wccProg.ApplyLane. (SCC's masked fixpoints fall back to the generic
// per-vertex path — the engine only lanes unmasked applies — so this
// serves mask-free colorings.)
func (colorProg) ApplyLane(curr, next []float64, stride, off int, v0, v1 uint32) bool {
	changed := false
	for v := v0; v < v1; v++ {
		idx := int(v)*stride + off
		if next[idx] > curr[idx] {
			changed = true
		} else {
			next[idx] = curr[idx]
		}
	}
	return changed
}

func colorFixpoint(ctx context.Context, e *engine.Engine, mask *bitset.Set, res *SCCResult, progress engine.ProgressFunc) ([]float64, error) {
	run, err := e.NewRun(colorProg{}, engine.Forward)
	if err != nil {
		return nil, err
	}
	defer run.Close()
	run.SetMask(mask)
	if err := stepAll(ctx, run, offsetProgress(progress, res.Iterations, res.EdgesTraversed)); err != nil {
		return nil, err
	}
	r, err := run.Finish()
	if err != nil {
		return nil, err
	}
	res.Iterations += r.Iterations
	res.EdgesTraversed += r.EdgesTraversed
	return r.Attrs, nil
}

// confirmProg propagates root confirmation along reverse edges. The
// attribute packs (color, confirmed) as color*2 + flag; both fit a
// float64 exactly for any uint32 color.
type confirmProg struct{}

func (confirmProg) Name() string  { return "scc-confirm" }
func (confirmProg) Zero() float64 { return math.Inf(1) }

// Init is overwritten by SetAttrs before stepping.
func (confirmProg) Init(v uint32) (float64, bool) { return 0, true }

func (confirmProg) Gather(srcAttr float64, _ uint32, _ float32) float64 {
	if int64(srcAttr)&1 == 1 {
		return math.Floor(srcAttr / 2)
	}
	return math.Inf(1)
}

func (confirmProg) Sum(a, b float64) float64 { return math.Min(a, b) }

func (confirmProg) Apply(v uint32, old, acc float64) (float64, bool) {
	if int64(old)&1 == 1 {
		return old, false
	}
	color := math.Floor(old / 2)
	if acc == color {
		return old + 1, true
	}
	return old, false
}

func confirmFixpoint(ctx context.Context, e *engine.Engine, mask *bitset.Set, colors []float64, res *SCCResult, progress engine.ProgressFunc) ([]bool, error) {
	run, err := e.NewRun(confirmProg{}, engine.Reverse)
	if err != nil {
		return nil, err
	}
	defer run.Close()
	run.SetMask(mask)
	packed := make([]float64, len(colors))
	for v := range colors {
		flag := 0.0
		if colors[v] == float64(v) {
			flag = 1
		}
		packed[v] = colors[v]*2 + flag
	}
	if err := run.SetAttrs(packed); err != nil {
		return nil, err
	}
	run.ActivateAll()
	if err := stepAll(ctx, run, offsetProgress(progress, res.Iterations, res.EdgesTraversed)); err != nil {
		return nil, err
	}
	r, err := run.Finish()
	if err != nil {
		return nil, err
	}
	res.Iterations += r.Iterations
	res.EdgesTraversed += r.EdgesTraversed
	confirmed := make([]bool, len(colors))
	for v, a := range r.Attrs {
		confirmed[v] = int64(a)&1 == 1
	}
	return confirmed, nil
}
