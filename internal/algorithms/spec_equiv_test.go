package algorithms

// White-box equivalence suite for the devirtualized scalar kernels: every
// program that declares a KernelHint (and the LaneApplier fast paths that
// ride along) must produce attributes bit-identical to the same Program
// running through the generic interface kernels — across update
// strategies, with and without delta overlays, weights, and masks. The
// wrappers below strip the specialization interfaces from a Program so
// the engine falls back to per-edge interface dispatch.

import (
	"math"
	"testing"

	"nxgraph/internal/bitset"
	"nxgraph/internal/dynamic"
	"nxgraph/internal/engine"
	"nxgraph/internal/gen"
	"nxgraph/internal/storage"
	"nxgraph/internal/testutil"
)

// hideSpec exposes only the plain Program method set: interface
// assertions for FusedKernel, LaneApplier, GlobalAggregator and
// LaneAggregator all fail, so the engine uses the generic paths.
type hideSpec struct{ engine.Program }

// hideSpecDense is hideSpec for programs whose DenseApply marker must
// survive (it changes which vertices Apply runs for, which is not what
// this suite tests).
type hideSpecDense struct{ engine.Program }

func (hideSpecDense) DenseApply() {}

// hideSpecAgg is hideSpec keeping the full aggregator surface —
// GlobalAggregator and LaneAggregator — because the aggregate path must
// stay identical while the gather/apply kernels vary.
type hideSpecAgg struct{ engine.Program }

func (h hideSpecAgg) AggZero() float64 { return h.Program.(engine.GlobalAggregator).AggZero() }
func (h hideSpecAgg) AggVertex(v uint32, attr float64, deg uint32) float64 {
	return h.Program.(engine.GlobalAggregator).AggVertex(v, attr, deg)
}
func (h hideSpecAgg) AggCombine(a, b float64) float64 {
	return h.Program.(engine.GlobalAggregator).AggCombine(a, b)
}
func (h hideSpecAgg) SetGlobal(g float64) { h.Program.(engine.GlobalAggregator).SetGlobal(g) }
func (h hideSpecAgg) AggLane(curr []float64, stride, off int, deg []uint32) float64 {
	return h.Program.(engine.LaneAggregator).AggLane(curr, stride, off, deg)
}

// hideLaneAgg keeps GlobalAggregator but hides LaneAggregator, forcing
// the engine's chunked-partials parallel aggregate (the path programs
// without a lane aggregate take).
type hideLaneAgg struct{ engine.Program }

func (h hideLaneAgg) AggZero() float64 { return h.Program.(engine.GlobalAggregator).AggZero() }
func (h hideLaneAgg) AggVertex(v uint32, attr float64, deg uint32) float64 {
	return h.Program.(engine.GlobalAggregator).AggVertex(v, attr, deg)
}
func (h hideLaneAgg) AggCombine(a, b float64) float64 {
	return h.Program.(engine.GlobalAggregator).AggCombine(a, b)
}
func (h hideLaneAgg) SetGlobal(g float64) { h.Program.(engine.GlobalAggregator).SetGlobal(g) }

func specConfigs(n int) map[string]engine.Config {
	return map[string]engine.Config{
		"spu": {Threads: 3, Strategy: engine.SPU, ChunkDsts: 16},
		"dpu": {Threads: 3, Strategy: engine.DPU, ChunkDsts: 16},
		"mpu": {Threads: 3, Strategy: engine.MPU, MemoryBudget: int64(n) * 8, ChunkDsts: 16},
	}
}

// runSpecProg drives prog for steps iterations (or to termination when
// steps <= 0) and returns the final attributes.
func runSpecProg(t *testing.T, st *storage.Store, cfg engine.Config, prog engine.Program, dir engine.Direction, steps int, mask *bitset.Set, setup func(*engine.Engine)) []float64 {
	t.Helper()
	e, err := engine.New(st, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if setup != nil {
		setup(e)
	}
	run, err := e.NewRun(prog, dir)
	if err != nil {
		t.Fatal(err)
	}
	defer run.Close()
	if mask != nil {
		run.SetMask(mask)
	}
	for i := 0; steps <= 0 || i < steps; i++ {
		more, err := run.Step()
		if err != nil {
			t.Fatal(err)
		}
		if !more {
			break
		}
		if steps <= 0 && i > 500 {
			t.Fatal("run did not terminate")
		}
	}
	res, err := run.Finish()
	if err != nil {
		t.Fatal(err)
	}
	return res.Attrs
}

func assertBitsEqual(t *testing.T, name string, want, got []float64) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: length %d vs %d", name, len(want), len(got))
	}
	for v := range want {
		if math.Float64bits(want[v]) != math.Float64bits(got[v]) {
			t.Fatalf("%s: vertex %d: %g (%x) vs %g (%x)", name, v,
				got[v], math.Float64bits(got[v]), want[v], math.Float64bits(want[v]))
		}
	}
}

// TestScalarSpecEquivalence is the acceptance gate for the specialized
// scalar kernels: for every hinted program, specialized and generic runs
// agree bit-for-bit under SPU, DPU and MPU, on the base store and on a
// mutated overlay snapshot, with weights present and (where the
// algorithms use them) masks installed.
func TestScalarSpecEquivalence(t *testing.T) {
	g, err := gen.RMAT(gen.DefaultRMAT(8, 8, 21))
	if err != nil {
		t.Fatal(err)
	}
	st, oracle := testutil.BuildStore(t, g, testutil.StoreOptions{P: 4, Weighted: true, Transpose: true})
	n := int(oracle.NumVertices)
	prN := float64(oracle.NumVertices)

	mask := bitset.New(n)
	for v := 0; v < n; v += 3 {
		mask.Set(v)
	}

	log, err := dynamic.NewDeltaLog(st)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 12 && i < len(oracle.Edges); i++ {
		ed := oracle.Edges[i*5%len(oracle.Edges)]
		log.Remove(uint64(ed.Src), uint64(ed.Dst))
	}
	for i := uint64(0); i < 20; i++ {
		log.Add((i*17)%uint64(n), (i*31+3)%uint64(n), 1)
	}
	withOverlay := func(e *engine.Engine) { e.SetOverlayProvider(log.Overlay) }

	cases := []struct {
		name  string
		spec  func() engine.Program
		gen   func() engine.Program
		dir   engine.Direction
		steps int
		mask  *bitset.Set
	}{
		{"pagerank",
			func() engine.Program { return &pageRankProg{n: prN, damping: 0.85} },
			func() engine.Program { return hideSpecAgg{&pageRankProg{n: prN, damping: 0.85}} },
			engine.Forward, 6, nil},
		{"wcc",
			func() engine.Program { return wccProg{} },
			func() engine.Program { return hideSpec{wccProg{}} },
			engine.Both, 0, nil},
		{"bfs",
			func() engine.Program { return &bfsProg{root: 1} },
			func() engine.Program { return hideSpec{&bfsProg{root: 1}} },
			engine.Forward, 0, nil},
		{"sssp",
			func() engine.Program { return &ssspProg{root: 1} },
			func() engine.Program { return hideSpec{&ssspProg{root: 1}} },
			engine.Forward, 0, nil},
		{"kcore-degree",
			func() engine.Program { return degreeCountProg{} },
			func() engine.Program { return hideSpecDense{degreeCountProg{}} },
			engine.Forward, 1, nil},
		{"kcore-degree-masked",
			func() engine.Program { return degreeCountProg{} },
			func() engine.Program { return hideSpecDense{degreeCountProg{}} },
			engine.Forward, 1, mask},
		{"scc-color",
			func() engine.Program { return colorProg{} },
			func() engine.Program { return hideSpec{colorProg{}} },
			engine.Forward, 0, nil},
		{"scc-color-masked",
			func() engine.Program { return colorProg{} },
			func() engine.Program { return hideSpec{colorProg{}} },
			engine.Forward, 0, mask},
		{"hits-halfstep",
			func() engine.Program { return sumProg{"hits-auth"} },
			func() engine.Program { return hideSpecDense{sumProg{"hits-auth"}} },
			engine.Forward, 2, nil},
	}
	overlays := []struct {
		name  string
		setup func(*engine.Engine)
	}{
		{"base", nil},
		{"overlay", withOverlay},
	}
	for _, ov := range overlays {
		for cfgName, cfg := range specConfigs(n) {
			for _, c := range cases {
				name := ov.name + "/" + cfgName + "/" + c.name
				t.Run(name, func(t *testing.T) {
					want := runSpecProg(t, st, cfg, c.gen(), c.dir, c.steps, c.mask, ov.setup)
					got := runSpecProg(t, st, cfg, c.spec(), c.dir, c.steps, c.mask, ov.setup)
					assertBitsEqual(t, name, want, got)
				})
			}
		}
	}
}

// TestParallelAggregateMatchesSerial covers the chunked-partials global
// aggregate: for a PageRank run whose lane aggregate is hidden, the
// parallel per-chunk combine must (a) be bitwise deterministic across
// thread counts and (b) agree with the serial-fold reference to float
// tolerance (chunk-boundary association is the only difference).
func TestParallelAggregateMatchesSerial(t *testing.T) {
	g, err := gen.RMAT(gen.DefaultRMAT(9, 8, 33))
	if err != nil {
		t.Fatal(err)
	}
	st, oracle := testutil.BuildStore(t, g, testutil.StoreOptions{P: 4})
	prN := float64(oracle.NumVertices)
	const iters = 8

	serial := runSpecProg(t, st, engine.Config{Threads: 3},
		&pageRankProg{n: prN, damping: 0.85}, engine.Forward, iters, nil, nil)
	chunked1 := runSpecProg(t, st, engine.Config{Threads: 1},
		hideLaneAgg{&pageRankProg{n: prN, damping: 0.85}}, engine.Forward, iters, nil, nil)
	chunked8 := runSpecProg(t, st, engine.Config{Threads: 8},
		hideLaneAgg{&pageRankProg{n: prN, damping: 0.85}}, engine.Forward, iters, nil, nil)

	assertBitsEqual(t, "chunked aggregate thread determinism", chunked1, chunked8)
	for v := range serial {
		diff := math.Abs(chunked1[v] - serial[v])
		tol := 1e-12 * math.Max(1, math.Abs(serial[v]))
		if diff > tol {
			t.Fatalf("vertex %d: chunked %g vs serial %g (diff %g)", v, chunked1[v], serial[v], diff)
		}
	}

	// The user-facing driver on the same store: PageRankConverge's
	// convergence loop rides the serial-bits lane aggregate; it must land
	// on the same ranks as the chunked run within the same tolerance.
	e, err := engine.New(st, engine.Config{Threads: 3})
	if err != nil {
		t.Fatal(err)
	}
	res, err := PageRankConverge(e, 0.85, 0, iters)
	if err != nil {
		t.Fatal(err)
	}
	for v := range res.Attrs {
		diff := math.Abs(chunked1[v] - res.Attrs[v])
		tol := 1e-12 * math.Max(1, math.Abs(res.Attrs[v]))
		if diff > tol {
			t.Fatalf("vertex %d: chunked %g vs converge %g (diff %g)", v, chunked1[v], res.Attrs[v], diff)
		}
	}
}
