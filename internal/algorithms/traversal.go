package algorithms

import (
	"context"
	"fmt"
	"math"

	"nxgraph/internal/engine"
)

// bfsProg is the paper's BFS example (Algorithms 2–4): minimum-depth
// propagation from a root, with interval activity acting as the frontier.
type bfsProg struct {
	root uint32
}

func (p *bfsProg) Name() string  { return "bfs" }
func (p *bfsProg) Zero() float64 { return math.Inf(1) }

func (p *bfsProg) Init(v uint32) (float64, bool) {
	if v == p.root {
		return 0, true
	}
	return math.Inf(1), false
}

func (p *bfsProg) Gather(srcAttr float64, _ uint32, _ float32) float64 {
	return srcAttr + 1
}

func (p *bfsProg) Sum(a, b float64) float64 { return math.Min(a, b) }

// FusedKernelHint declares the hop-count-min gather form so fused batch
// runs specialize the multi-lane kernel.
func (p *bfsProg) FusedKernelHint() engine.KernelHint { return engine.KernelHopMin }

func (p *bfsProg) Apply(v uint32, old, acc float64) (float64, bool) {
	if acc < old {
		return acc, true
	}
	return old, false
}

// ApplyLane implements engine.LaneApplier: min-relaxation over a strided
// vertex range without per-vertex interface dispatch. next already holds
// the accumulated contribution, so an improved vertex keeps it and an
// unimproved one restores old — exactly Apply's two outcomes.
func (p *bfsProg) ApplyLane(curr, next []float64, stride, off int, v0, v1 uint32) bool {
	changed := false
	for v := v0; v < v1; v++ {
		idx := int(v)*stride + off
		if next[idx] < curr[idx] {
			changed = true
		} else {
			next[idx] = curr[idx]
		}
	}
	return changed
}

// BFS computes hop distances from root; unreachable vertices hold +Inf.
// The run terminates when no interval stays active (Algorithm 1's
// finished condition).
func BFS(e *engine.Engine, root uint32) (*engine.Result, error) {
	return BFSContext(context.Background(), e, root, nil)
}

// BFSContext is BFS with cancellation and progress reporting.
func BFSContext(ctx context.Context, e *engine.Engine, root uint32, progress engine.ProgressFunc) (*engine.Result, error) {
	if root >= e.Store().Meta().NumVertices {
		return nil, fmt.Errorf("algorithms: bfs root %d out of range n=%d",
			root, e.Store().Meta().NumVertices)
	}
	return e.RunContext(ctx, &bfsProg{root: root}, engine.Forward, progress)
}

// MaxDepth is BFS's Output function from the paper (Algorithm 4): the
// largest finite depth.
func MaxDepth(depths []float64) int64 {
	max := int64(-1)
	for _, d := range depths {
		if !math.IsInf(d, 1) && int64(d) > max {
			max = int64(d)
		}
	}
	return max
}

// ssspProg generalizes BFS to weighted shortest paths (Bellman-Ford style
// relaxation). Weights must be non-negative.
type ssspProg struct {
	root uint32
}

func (p *ssspProg) Name() string  { return "sssp" }
func (p *ssspProg) Zero() float64 { return math.Inf(1) }

func (p *ssspProg) Init(v uint32) (float64, bool) {
	if v == p.root {
		return 0, true
	}
	return math.Inf(1), false
}

func (p *ssspProg) Gather(srcAttr float64, _ uint32, w float32) float64 {
	return srcAttr + float64(w)
}

func (p *ssspProg) Sum(a, b float64) float64 { return math.Min(a, b) }

// FusedKernelHint declares the weighted-distance-min gather form so
// fused batch runs specialize the multi-lane kernel.
func (p *ssspProg) FusedKernelHint() engine.KernelHint { return engine.KernelDistMin }

func (p *ssspProg) Apply(v uint32, old, acc float64) (float64, bool) {
	if acc < old {
		return acc, true
	}
	return old, false
}

// ApplyLane implements engine.LaneApplier; see bfsProg.ApplyLane — the
// relaxation is identical, only the gathered distances differ.
func (p *ssspProg) ApplyLane(curr, next []float64, stride, off int, v0, v1 uint32) bool {
	changed := false
	for v := v0; v < v1; v++ {
		idx := int(v)*stride + off
		if next[idx] < curr[idx] {
			changed = true
		} else {
			next[idx] = curr[idx]
		}
	}
	return changed
}

// SSSP computes single-source shortest path distances over edge weights;
// unreachable vertices hold +Inf. The store should be built with
// Weighted; unweighted stores degenerate to BFS (all weights 1).
func SSSP(e *engine.Engine, root uint32) (*engine.Result, error) {
	return SSSPContext(context.Background(), e, root, nil)
}

// SSSPContext is SSSP with cancellation and progress reporting.
func SSSPContext(ctx context.Context, e *engine.Engine, root uint32, progress engine.ProgressFunc) (*engine.Result, error) {
	if root >= e.Store().Meta().NumVertices {
		return nil, fmt.Errorf("algorithms: sssp root %d out of range n=%d",
			root, e.Store().Meta().NumVertices)
	}
	return e.RunContext(ctx, &ssspProg{root: root}, engine.Forward, progress)
}

// wccProg propagates minimum labels across both edge orientations,
// computing weakly connected components.
type wccProg struct{}

func (wccProg) Name() string  { return "wcc" }
func (wccProg) Zero() float64 { return math.Inf(1) }

func (wccProg) Init(v uint32) (float64, bool) { return float64(v), true }

func (wccProg) Gather(srcAttr float64, _ uint32, _ float32) float64 { return srcAttr }

func (wccProg) Sum(a, b float64) float64 { return math.Min(a, b) }

// FusedKernelHint declares the copy-and-min gather form so runs
// specialize the label-propagation inner loop.
func (wccProg) FusedKernelHint() engine.KernelHint { return engine.KernelMinFold }

func (wccProg) Apply(v uint32, old, acc float64) (float64, bool) {
	if acc < old {
		return acc, true
	}
	return old, false
}

// ApplyLane implements engine.LaneApplier; the min-relaxation matches
// bfsProg.ApplyLane.
func (wccProg) ApplyLane(curr, next []float64, stride, off int, v0, v1 uint32) bool {
	changed := false
	for v := v0; v < v1; v++ {
		idx := int(v)*stride + off
		if next[idx] < curr[idx] {
			changed = true
		} else {
			next[idx] = curr[idx]
		}
	}
	return changed
}

// WCC labels every vertex with the smallest vertex id in its weakly
// connected component. It requires a store preprocessed with Transpose
// (label propagation runs over both edge orientations).
func WCC(e *engine.Engine) (*engine.Result, error) {
	return WCCContext(context.Background(), e, nil)
}

// WCCContext is WCC with cancellation and progress reporting.
func WCCContext(ctx context.Context, e *engine.Engine, progress engine.ProgressFunc) (*engine.Result, error) {
	return e.RunContext(ctx, wccProg{}, engine.Both, progress)
}

// Labels converts float64 label attributes to vertex ids.
func Labels(attrs []float64) []uint32 {
	out := make([]uint32, len(attrs))
	for i, a := range attrs {
		out[i] = uint32(a)
	}
	return out
}
