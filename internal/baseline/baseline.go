// Package baseline reimplements the update strategies of the systems the
// paper compares against — GraphChi (PSW), TurboGraph (pin-and-slide),
// GridGraph (2-level grid) and X-Stream (edge-centric scatter–gather) —
// over the same diskio substrate and the same gather–sum–apply programs
// as the NXgraph engine.
//
// These are not ports of the original codebases; they are faithful
// re-creations of each system's storage layout and per-iteration disk
// traffic (the quantities the paper's §III-C analysis and Tables V–VI
// compare), so that benchmark differences isolate the storage/scheduling
// strategy. All four systems:
//
//   - keep per-vertex attributes in an attrs.bin file and move them
//     through diskio according to their own model;
//   - run synchronous iterations of an engine.Program until no vertex
//     changes or maxIters is reached (no interval-granular activity
//     skipping — that is NXgraph's contribution);
//   - support GlobalAggregator programs (PageRank's dangling mass).
package baseline

import (
	"encoding/binary"
	"fmt"
	"math"
	"time"

	"nxgraph/internal/diskio"
	"nxgraph/internal/engine"
)

// System is a baseline graph engine bound to one preprocessed graph.
type System interface {
	// Name identifies the system ("graphchi-like", ...).
	Name() string
	// NumVertices returns the dense vertex count.
	NumVertices() uint32
	// NumEdges returns the edge count.
	NumEdges() int64
	// RunProgram executes p for at most maxIters synchronous iterations
	// (0 = until quiescent) and returns the final attributes.
	RunProgram(p engine.Program, maxIters int) (*Result, error)
	// Close releases the system's files.
	Close() error
}

// Result reports one baseline execution.
type Result struct {
	Attrs          []float64
	Iterations     int
	EdgesTraversed int64
	IO             diskio.StatsSnapshot
	Elapsed        time.Duration
}

// MTEPS returns millions of traversed edges per second.
func (r *Result) MTEPS() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.EdgesTraversed) / 1e6 / r.Elapsed.Seconds()
}

// runState carries the shared synchronous-iteration machinery: attribute
// mirror, aggregate computation and change tracking.
type runState struct {
	p    engine.Program
	agg  engine.GlobalAggregator
	deg  []uint32
	curr []float64
	acc  []float64
}

func newRunState(p engine.Program, deg []uint32, n uint32) *runState {
	s := &runState{p: p, deg: deg,
		curr: make([]float64, n), acc: make([]float64, n)}
	if a, ok := p.(engine.GlobalAggregator); ok {
		s.agg = a
	}
	for v := uint32(0); v < n; v++ {
		s.curr[v], _ = p.Init(v)
	}
	return s
}

// beginIteration zeroes accumulators and publishes the global aggregate.
func (s *runState) beginIteration() {
	zero := s.p.Zero()
	for i := range s.acc {
		s.acc[i] = zero
	}
	if s.agg == nil {
		return
	}
	g := s.agg.AggZero()
	for v, a := range s.curr {
		g = s.agg.AggCombine(g, s.agg.AggVertex(uint32(v), a, s.deg[v]))
	}
	s.agg.SetGlobal(g)
}

// applyAll folds accumulators into attributes, returning whether anything
// changed.
func (s *runState) applyAll(lo, hi uint32) bool {
	changed := false
	for v := lo; v < hi; v++ {
		nv, ch := s.p.Apply(v, s.curr[v], s.acc[v])
		s.curr[v] = nv
		if ch {
			changed = true
		}
	}
	return changed
}

// attr file helpers shared by the baselines.

func writeAttrFile(f *diskio.File, vals []float64, lo uint32) error {
	buf := make([]byte, 8*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint64(buf[8*i:], math.Float64bits(v))
	}
	if len(buf) == 0 {
		return nil
	}
	if _, err := f.WriteAt(buf, int64(lo)*8); err != nil {
		return fmt.Errorf("baseline: write attrs: %w", err)
	}
	return nil
}

func readAttrFile(f *diskio.File, vals []float64, lo uint32) error {
	if len(vals) == 0 {
		return nil
	}
	buf := make([]byte, 8*len(vals))
	if _, err := f.ReadAt(buf, int64(lo)*8); err != nil {
		return fmt.Errorf("baseline: read attrs: %w", err)
	}
	for i := range vals {
		vals[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[8*i:]))
	}
	return nil
}

// intervals splits [0, n) into p equal ranges and returns the boundary
// array (p+1 entries).
func intervals(n uint32, p int) []uint32 {
	size := (n + uint32(p) - 1) / uint32(p)
	b := make([]uint32, p+1)
	for k := 0; k <= p; k++ {
		v := uint32(k) * size
		if v > n {
			v = n
		}
		b[k] = v
	}
	return b
}

// intervalOf locates v in the boundary array.
func intervalOf(bounds []uint32, v uint32) int {
	size := bounds[1] - bounds[0]
	if size == 0 {
		return 0
	}
	k := int(v / size)
	if k >= len(bounds)-1 {
		k = len(bounds) - 2
	}
	return k
}
