package baseline_test

import (
	"testing"

	"nxgraph/internal/algorithms"
	"nxgraph/internal/baseline"
	"nxgraph/internal/diskio"
	"nxgraph/internal/gen"
	"nxgraph/internal/graph"
	"nxgraph/internal/testutil"
)

func benchGraph(b *testing.B) *graph.EdgeList {
	b.Helper()
	g, err := gen.RMAT(gen.DefaultRMAT(12, 12, 5))
	if err != nil {
		b.Fatal(err)
	}
	return testutil.Compact(g)
}

// BenchmarkBaselinePageRank compares one 3-iteration PageRank across the
// four baseline engines on identical data and unthrottled disks.
func BenchmarkBaselinePageRank(b *testing.B) {
	g := benchGraph(b)
	budget := 2 * int64(g.NumVertices) * 8 / 3
	builders := []struct {
		name  string
		build func(d *diskio.Disk) (baseline.System, error)
	}{
		{"graphchi", func(d *diskio.Disk) (baseline.System, error) {
			return baseline.NewGraphChi(d, "gc", g, 8, 2)
		}},
		{"turbograph", func(d *diskio.Disk) (baseline.System, error) {
			return baseline.NewTurboGraph(d, "tg", g, budget, 2)
		}},
		{"gridgraph", func(d *diskio.Disk) (baseline.System, error) {
			return baseline.NewGridGraph(d, "gg", g, budget, 2)
		}},
		{"xstream", func(d *diskio.Disk) (baseline.System, error) {
			return baseline.NewXStream(d, "xs", g, budget, 2)
		}},
	}
	for _, c := range builders {
		b.Run(c.name, func(b *testing.B) {
			d := diskio.MustNew(b.TempDir(), diskio.Unthrottled)
			sys, err := c.build(d)
			if err != nil {
				b.Fatal(err)
			}
			defer sys.Close()
			prog := algorithms.NewPageRankProgram(g.NumVertices, 0.85)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := sys.RunProgram(prog, 3)
				if err != nil {
					b.Fatal(err)
				}
				b.SetBytes(res.IO.Total() / int64(res.Iterations))
			}
		})
	}
}
