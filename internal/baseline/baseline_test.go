package baseline_test

import (
	"math"
	"testing"

	"nxgraph/internal/algorithms"
	"nxgraph/internal/baseline"
	"nxgraph/internal/diskio"
	"nxgraph/internal/gen"
	"nxgraph/internal/graph"
	"nxgraph/internal/refalgo"
	"nxgraph/internal/testutil"
)

func testGraph(t *testing.T) *graph.EdgeList {
	t.Helper()
	g, err := gen.RMAT(gen.DefaultRMAT(8, 8, 11))
	if err != nil {
		t.Fatal(err)
	}
	return testutil.Compact(g)
}

// systems builds every baseline over g on a fresh unthrottled disk.
func systems(t *testing.T, g *graph.EdgeList) []baseline.System {
	t.Helper()
	disk := diskio.MustNew(t.TempDir(), diskio.Unthrottled)
	budget := int64(g.NumVertices) * 8 // forces several intervals/partitions
	gc, err := baseline.NewGraphChi(disk, "gc", g, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	tg, err := baseline.NewTurboGraph(disk, "tg", g, budget, 2)
	if err != nil {
		t.Fatal(err)
	}
	gg, err := baseline.NewGridGraph(disk, "gg", g, budget, 2)
	if err != nil {
		t.Fatal(err)
	}
	xs, err := baseline.NewXStream(disk, "xs", g, budget, 2)
	if err != nil {
		t.Fatal(err)
	}
	all := []baseline.System{gc, tg, gg, xs}
	t.Cleanup(func() {
		for _, s := range all {
			s.Close()
		}
	})
	return all
}

// TestPageRankConvergesToOracleFixpoint runs PageRank to (near)
// convergence on every baseline. GraphChi-, TurboGraph- and
// GridGraph-like systems update asynchronously within an iteration
// (Gauss–Seidel), so only the fixpoint — not the per-iteration
// trajectory — is comparable.
func TestPageRankConvergesToOracleFixpoint(t *testing.T) {
	g := testGraph(t)
	want := refalgo.PageRank(g, 0.85, 150)
	for _, sys := range systems(t, g) {
		t.Run(sys.Name(), func(t *testing.T) {
			prog := algorithms.NewPageRankProgram(g.NumVertices, 0.85)
			res, err := sys.RunProgram(prog, 150)
			if err != nil {
				t.Fatalf("RunProgram: %v", err)
			}
			for v := range want {
				if math.Abs(res.Attrs[v]-want[v]) > 1e-8 {
					t.Fatalf("vertex %d: rank %.12g, want %.12g", v, res.Attrs[v], want[v])
				}
			}
			if res.IO.BytesRead == 0 || res.IO.BytesWritten == 0 {
				t.Errorf("expected nonzero disk traffic, got %+v", res.IO)
			}
		})
	}
}

// TestXStreamPageRankSynchronous checks the one synchronous baseline
// matches the oracle trajectory exactly.
func TestXStreamPageRankSynchronous(t *testing.T) {
	g := testGraph(t)
	disk := diskio.MustNew(t.TempDir(), diskio.Unthrottled)
	xs, err := baseline.NewXStream(disk, "xs", g, int64(g.NumVertices)*8, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer xs.Close()
	res, err := xs.RunProgram(algorithms.NewPageRankProgram(g.NumVertices, 0.85), 10)
	if err != nil {
		t.Fatal(err)
	}
	want := refalgo.PageRank(g, 0.85, 10)
	for v := range want {
		if math.Abs(res.Attrs[v]-want[v]) > 1e-9 {
			t.Fatalf("vertex %d: rank %.12g, want %.12g", v, res.Attrs[v], want[v])
		}
	}
}

func TestBFSMatchesOracleOnAllBaselines(t *testing.T) {
	g := testGraph(t)
	want := refalgo.BFS(graph.BuildAdjacency(g), 0)
	for _, sys := range systems(t, g) {
		t.Run(sys.Name(), func(t *testing.T) {
			res, err := sys.RunProgram(algorithms.NewBFSProgram(0), 0)
			if err != nil {
				t.Fatalf("RunProgram: %v", err)
			}
			for v := range want {
				got := int64(-1)
				if !math.IsInf(res.Attrs[v], 1) {
					got = int64(res.Attrs[v])
				}
				// Asynchronous systems may find shorter-or-equal paths
				// earlier but the fixpoint must be exact.
				if got != want[v] {
					t.Fatalf("vertex %d: depth %d, want %d", v, got, want[v])
				}
			}
		})
	}
}

func TestWCCMatchesOracleOnAllBaselines(t *testing.T) {
	raw := testGraph(t)
	sym := raw.Symmetrize() // baselines traverse forward edges only
	want := refalgo.WCC(raw)
	for _, sys := range systems(t, sym) {
		t.Run(sys.Name(), func(t *testing.T) {
			res, err := sys.RunProgram(algorithms.NewWCCProgram(), 0)
			if err != nil {
				t.Fatalf("RunProgram: %v", err)
			}
			testutil.SamePartition(t, algorithms.Labels(res.Attrs), want)
		})
	}
}

// TestTurboGraphIOGrowsWithSmallerBudget validates the §III-C analysis
// direction: halving the budget roughly doubles the attribute re-read
// traffic.
func TestTurboGraphIOGrowsWithSmallerBudget(t *testing.T) {
	g := testGraph(t)
	run := func(budget int64) int64 {
		disk := diskio.MustNew(t.TempDir(), diskio.Unthrottled)
		tg, err := baseline.NewTurboGraph(disk, "tg", g, budget, 1)
		if err != nil {
			t.Fatal(err)
		}
		defer tg.Close()
		res, err := tg.RunProgram(algorithms.NewPageRankProgram(g.NumVertices, 0.85), 3)
		if err != nil {
			t.Fatal(err)
		}
		return res.IO.BytesRead
	}
	big := run(int64(g.NumVertices) * 8) // P = 2
	small := run(int64(g.NumVertices))   // P = 16
	if small <= big {
		t.Fatalf("read traffic should grow as budget shrinks: big-budget=%d small-budget=%d", big, small)
	}
}
