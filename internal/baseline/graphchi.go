package baseline

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"
	"time"

	"nxgraph/internal/diskio"
	"nxgraph/internal/engine"
	"nxgraph/internal/graph"
)

// GraphChi reimplements GraphChi's Parallel Sliding Windows model
// (Kyrola et al., OSDI'12; paper §V-B): P source-sorted shards, one per
// destination interval, with per-edge data. Each iteration processes
// intervals in order; updating interval j loads shard j (its in-edges,
// whose records carry the contributions written when their sources were
// last updated), applies, then slides a window over every shard to
// rewrite the out-edge contributions of the just-updated interval.
//
// Key contrasts with NXgraph that the benchmarks surface:
//   - per-edge data means every edge's value is read and rewritten every
//     iteration (~m·(Be+Ba) read + m·rec write vs NXgraph's m·Be read);
//   - source-sorted shards force coarse-grained parallelism;
//   - updates are asynchronous within an iteration (PSW semantics):
//     later intervals observe contributions already rewritten by earlier
//     intervals of the same iteration.
type GraphChi struct {
	disk   *diskio.Disk
	dir    string
	n      uint32
	m      int64
	p      int
	bounds []uint32
	deg    []uint32
	// winOff[j][i] is the record offset in shard j of the first edge
	// with source in interval i (records sorted by source).
	winOff  [][]int64
	shardSz []int64 // records per shard
	shards  []*diskio.File
	attrs   *diskio.File
	threads int
}

// graphchiRec is one on-disk edge record: src, dst, srcDeg (u32 each),
// weight (f32) and the stored contribution value (f64) — 24 bytes. The
// value field is GraphChi's "edge data".
const graphchiRecBytes = 24

// NewGraphChi builds the PSW representation of g under dir on disk.
func NewGraphChi(disk *diskio.Disk, dir string, g *graph.EdgeList, p, threads int) (*GraphChi, error) {
	if p <= 0 {
		return nil, fmt.Errorf("baseline: graphchi needs P > 0")
	}
	if threads <= 0 {
		threads = 1
	}
	s := &GraphChi{
		disk: disk, dir: dir, n: g.NumVertices, m: int64(len(g.Edges)),
		p: p, bounds: intervals(g.NumVertices, p), deg: g.OutDegrees(),
		winOff: make([][]int64, p), shardSz: make([]int64, p),
		shards: make([]*diskio.File, p), threads: threads,
	}
	// Partition edges into shards by destination interval; sort each by
	// (src, dst) — GraphChi's source order.
	perShard := make([][]graph.Edge, p)
	for _, e := range g.Edges {
		j := intervalOf(s.bounds, e.Dst)
		perShard[j] = append(perShard[j], e)
	}
	for j := 0; j < p; j++ {
		edges := perShard[j]
		sort.Slice(edges, func(a, b int) bool {
			if edges[a].Src != edges[b].Src {
				return edges[a].Src < edges[b].Src
			}
			return edges[a].Dst < edges[b].Dst
		})
		f, err := disk.Create(fmt.Sprintf("%s/shard_%d.dat", dir, j))
		if err != nil {
			return nil, err
		}
		s.shards[j] = f
		buf := make([]byte, graphchiRecBytes*len(edges))
		offs := make([]int64, p+1)
		for r, e := range edges {
			rec := buf[graphchiRecBytes*r:]
			binary.LittleEndian.PutUint32(rec[0:], e.Src)
			binary.LittleEndian.PutUint32(rec[4:], e.Dst)
			binary.LittleEndian.PutUint32(rec[8:], s.deg[e.Src])
			binary.LittleEndian.PutUint32(rec[12:], math.Float32bits(e.Weight))
			binary.LittleEndian.PutUint64(rec[16:], 0)
		}
		// Window offsets: first record of each source interval.
		for i := 0; i <= p; i++ {
			offs[i] = int64(sort.Search(len(edges), func(r int) bool {
				return edges[r].Src >= s.bounds[i]
			}))
		}
		s.winOff[j] = offs
		s.shardSz[j] = int64(len(edges))
		if len(buf) > 0 {
			if _, err := f.WriteAt(buf, 0); err != nil {
				return nil, fmt.Errorf("baseline: graphchi shard write: %w", err)
			}
		}
	}
	attrs, err := disk.Create(dir + "/attrs.bin")
	if err != nil {
		return nil, err
	}
	s.attrs = attrs
	return s, nil
}

func (s *GraphChi) Name() string        { return "graphchi-like" }
func (s *GraphChi) NumVertices() uint32 { return s.n }
func (s *GraphChi) NumEdges() int64     { return s.m }

// Close releases shard and attribute files.
func (s *GraphChi) Close() error {
	var first error
	for _, f := range s.shards {
		if f != nil {
			if err := f.Close(); err != nil && first == nil {
				first = err
			}
		}
	}
	if s.attrs != nil {
		if err := s.attrs.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// RunProgram implements System.
func (s *GraphChi) RunProgram(p engine.Program, maxIters int) (*Result, error) {
	start := time.Now()
	io0 := s.disk.Stats().Snapshot()
	st := newRunState(p, s.deg, s.n)
	if err := writeAttrFile(s.attrs, st.curr, 0); err != nil {
		return nil, err
	}
	// Initial scatter: seed every edge's stored contribution from the
	// initial attributes.
	for j := 0; j < s.p; j++ {
		if err := s.rewriteWindow(p, st, j, 0, s.shardSz[j]); err != nil {
			return nil, err
		}
	}
	res := &Result{}
	for it := 0; maxIters <= 0 || it < maxIters; it++ {
		st.beginIteration()
		changed := false
		for j := 0; j < s.p; j++ {
			lo, hi := s.bounds[j], s.bounds[j+1]
			if lo == hi {
				continue
			}
			// Gather: load shard j; its records carry contributions.
			recs, err := s.readShard(j, 0, s.shardSz[j])
			if err != nil {
				return nil, err
			}
			res.EdgesTraversed += s.shardSz[j]
			for r := 0; r < len(recs); r += graphchiRecBytes {
				dst := binary.LittleEndian.Uint32(recs[r+4:])
				val := math.Float64frombits(binary.LittleEndian.Uint64(recs[r+16:]))
				st.acc[dst] = p.Sum(st.acc[dst], val)
			}
			// Apply interval j (attr file round-trip, per PSW).
			old := make([]float64, hi-lo)
			if err := readAttrFile(s.attrs, old, lo); err != nil {
				return nil, err
			}
			if st.applyAll(lo, hi) {
				changed = true
			}
			if err := writeAttrFile(s.attrs, st.curr[lo:hi], lo); err != nil {
				return nil, err
			}
			// Scatter: slide the window for source interval j over
			// every shard, rewriting contributions from the new
			// attributes (asynchronous PSW semantics).
			for t := 0; t < s.p; t++ {
				if err := s.rewriteWindow(p, st, t, s.winOff[t][j], s.winOff[t][j+1]); err != nil {
					return nil, err
				}
			}
		}
		res.Iterations++
		if !changed {
			break
		}
	}
	res.Attrs = append([]float64(nil), st.curr...)
	res.IO = s.disk.Stats().Snapshot().Sub(io0)
	res.Elapsed = time.Since(start)
	return res, nil
}

// readShard reads records [r0, r1) of shard j.
func (s *GraphChi) readShard(j int, r0, r1 int64) ([]byte, error) {
	if r1 <= r0 {
		return nil, nil
	}
	buf := make([]byte, (r1-r0)*graphchiRecBytes)
	if _, err := s.shards[j].ReadAt(buf, r0*graphchiRecBytes); err != nil {
		return nil, fmt.Errorf("baseline: graphchi read shard %d: %w", j, err)
	}
	return buf, nil
}

// rewriteWindow recomputes the stored contribution of records [r0, r1) of
// shard t from the current in-memory attributes and writes them back.
func (s *GraphChi) rewriteWindow(p engine.Program, st *runState, t int, r0, r1 int64) error {
	if r1 <= r0 {
		return nil
	}
	buf, err := s.readShard(t, r0, r1)
	if err != nil {
		return err
	}
	for r := 0; r < len(buf); r += graphchiRecBytes {
		src := binary.LittleEndian.Uint32(buf[r:])
		deg := binary.LittleEndian.Uint32(buf[r+8:])
		w := math.Float32frombits(binary.LittleEndian.Uint32(buf[r+12:]))
		val := p.Gather(st.curr[src], deg, w)
		binary.LittleEndian.PutUint64(buf[r+16:], math.Float64bits(val))
	}
	if _, err := s.shards[t].WriteAt(buf, r0*graphchiRecBytes); err != nil {
		return fmt.Errorf("baseline: graphchi rewrite shard %d: %w", t, err)
	}
	return nil
}
