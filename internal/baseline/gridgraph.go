package baseline

import (
	"encoding/binary"
	"fmt"
	"time"

	"nxgraph/internal/diskio"
	"nxgraph/internal/engine"
	"nxgraph/internal/graph"
)

// GridGraph reimplements GridGraph's 2-level grid model (Zhu et al.,
// ATC'15; paper §V-B): edges live in a P×P grid of *unsorted* blocks;
// processing streams blocks column by column with the source and
// destination intervals of the current block held in memory. Without
// destination sorting there is no compressed edge format (8 bytes per
// edge) and no conflict-free fine-grained parallelism — the contrasts
// Table IV and §III-C draw.
//
// Per iteration the traffic follows the TurboGraph-like row of Table II:
// every column re-reads each source interval once (P·n/P·Ba per column,
// n·Ba·P total across columns → 2(n·Ba)²/BM at the budget-forced P).
type GridGraph struct {
	disk    *diskio.Disk
	dir     string
	n       uint32
	m       int64
	p       int
	bounds  []uint32
	deg     []uint32
	blocks  *diskio.File
	blkOff  []int64 // (p*p+1) record offsets, column-major
	attrs   *diskio.File
	threads int
}

const ggRecBytes = 8

// NewGridGraph builds the grid representation; the memory budget forces
// the grid resolution P = ⌈2n·Ba/BM⌉ (source + destination interval
// resident), minimum 1.
func NewGridGraph(disk *diskio.Disk, dir string, g *graph.EdgeList, budget int64, threads int) (*GridGraph, error) {
	if threads <= 0 {
		threads = 1
	}
	p := 1
	if budget > 0 {
		need := 2 * int64(g.NumVertices) * 8
		p = int((need + budget - 1) / budget)
		if p < 1 {
			p = 1
		}
		if p > int(g.NumVertices) {
			p = int(g.NumVertices)
		}
	}
	s := &GridGraph{
		disk: disk, dir: dir, n: g.NumVertices, m: int64(len(g.Edges)),
		p: p, bounds: intervals(g.NumVertices, p), deg: g.OutDegrees(),
		threads: threads,
	}
	grid := make([][]graph.Edge, p*p)
	for _, e := range g.Edges {
		i := intervalOf(s.bounds, e.Src)
		j := intervalOf(s.bounds, e.Dst)
		grid[j*p+i] = append(grid[j*p+i], e) // column-major, unsorted
	}
	f, err := disk.Create(dir + "/grid.dat")
	if err != nil {
		return nil, err
	}
	s.blocks = f
	s.blkOff = make([]int64, p*p+1)
	var off int64
	for b, blk := range grid {
		s.blkOff[b] = off
		buf := make([]byte, ggRecBytes*len(blk))
		for r, e := range blk {
			binary.LittleEndian.PutUint32(buf[ggRecBytes*r:], e.Src)
			binary.LittleEndian.PutUint32(buf[ggRecBytes*r+4:], e.Dst)
		}
		if len(buf) > 0 {
			if _, err := f.WriteAt(buf, off*ggRecBytes); err != nil {
				return nil, fmt.Errorf("baseline: gridgraph write grid: %w", err)
			}
		}
		off += int64(len(blk))
	}
	s.blkOff[p*p] = off
	attrs, err := disk.Create(dir + "/attrs.bin")
	if err != nil {
		return nil, err
	}
	s.attrs = attrs
	return s, nil
}

func (s *GridGraph) Name() string        { return "gridgraph-like" }
func (s *GridGraph) NumVertices() uint32 { return s.n }
func (s *GridGraph) NumEdges() int64     { return s.m }

// P returns the grid resolution the memory budget forced.
func (s *GridGraph) P() int { return s.p }

// Close releases the system's files.
func (s *GridGraph) Close() error {
	err1 := s.blocks.Close()
	err2 := s.attrs.Close()
	if err1 != nil {
		return err1
	}
	return err2
}

// RunProgram implements System.
func (s *GridGraph) RunProgram(p engine.Program, maxIters int) (*Result, error) {
	start := time.Now()
	io0 := s.disk.Stats().Snapshot()
	st := newRunState(p, s.deg, s.n)
	if err := writeAttrFile(s.attrs, st.curr, 0); err != nil {
		return nil, err
	}
	res := &Result{}
	srcBuf := make([]float64, s.bounds[1]-s.bounds[0])
	for it := 0; maxIters <= 0 || it < maxIters; it++ {
		st.beginIteration()
		changed := false
		for j := 0; j < s.p; j++ {
			lo, hi := s.bounds[j], s.bounds[j+1]
			if lo == hi {
				continue
			}
			for i := 0; i < s.p; i++ {
				b := j*s.p + i
				r0, r1 := s.blkOff[b], s.blkOff[b+1]
				if r1 <= r0 {
					continue
				}
				// Load source interval i (the repeated-read term).
				slo, shi := s.bounds[i], s.bounds[i+1]
				src := srcBuf[:shi-slo]
				if err := readAttrFile(s.attrs, src, slo); err != nil {
					return nil, err
				}
				buf := make([]byte, (r1-r0)*ggRecBytes)
				if _, err := s.blocks.ReadAt(buf, r0*ggRecBytes); err != nil {
					return nil, fmt.Errorf("baseline: gridgraph read block: %w", err)
				}
				res.EdgesTraversed += r1 - r0
				for r := 0; r < len(buf); r += ggRecBytes {
					sv := binary.LittleEndian.Uint32(buf[r:])
					dv := binary.LittleEndian.Uint32(buf[r+4:])
					st.acc[dv] = p.Sum(st.acc[dv], p.Gather(src[sv-slo], s.deg[sv], 1))
				}
			}
			if st.applyAll(lo, hi) {
				changed = true
			}
			if err := writeAttrFile(s.attrs, st.curr[lo:hi], lo); err != nil {
				return nil, err
			}
		}
		res.Iterations++
		if !changed {
			break
		}
	}
	res.Attrs = append([]float64(nil), st.curr...)
	res.IO = s.disk.Stats().Snapshot().Sub(io0)
	res.Elapsed = time.Since(start)
	return res, nil
}
