package baseline

import (
	"encoding/binary"
	"fmt"
	"time"

	"nxgraph/internal/diskio"
	"nxgraph/internal/engine"
	"nxgraph/internal/graph"
)

// TurboGraph reimplements the TurboGraph-like update strategy the paper
// analyzes in §III-C: vertices are divided into P = ⌈2n·Ba/BM⌉ intervals
// (pages of destination vertices pinned in memory one at a time); updating
// a pinned interval slides over the source attributes — a full n·Ba
// attribute scan per interval — while the edges, grouped by destination
// interval, stream exactly once per iteration. Per-iteration traffic is
// the paper's
//
//	Bread  = m·Be + P·n·Ba = m·Be + 2(n·Ba)²/BM,   Bwrite = n·Ba
//
// which grows linearly in P (inversely in the memory budget) — the
// behaviour Figure 6 and Table II contrast with MPU.
type TurboGraph struct {
	disk    *diskio.Disk
	dir     string
	n       uint32
	m       int64
	p       int
	bounds  []uint32
	deg     []uint32
	edges   *diskio.File
	grpOff  []int64 // record offset of each destination group, p+1
	attrs   *diskio.File
	threads int
}

const tgRecBytes = 8 // src u32 + dst u32

// NewTurboGraph builds the destination-grouped page representation. The
// memory budget fixes P; budget 0 (unlimited) gives P = 1.
func NewTurboGraph(disk *diskio.Disk, dir string, g *graph.EdgeList, budget int64, threads int) (*TurboGraph, error) {
	if threads <= 0 {
		threads = 1
	}
	p := 1
	if budget > 0 {
		need := 2 * int64(g.NumVertices) * 8
		p = int((need + budget - 1) / budget)
		if p < 1 {
			p = 1
		}
		if p > int(g.NumVertices) {
			p = int(g.NumVertices)
		}
	}
	s := &TurboGraph{
		disk: disk, dir: dir, n: g.NumVertices, m: int64(len(g.Edges)),
		p: p, bounds: intervals(g.NumVertices, p), deg: g.OutDegrees(),
		threads: threads,
	}
	// Group edges by destination interval; page order (insertion order)
	// inside a group — TurboGraph does not sort adjacency pages.
	groups := make([][]graph.Edge, p)
	for _, e := range g.Edges {
		j := intervalOf(s.bounds, e.Dst)
		groups[j] = append(groups[j], e)
	}
	f, err := disk.Create(dir + "/pages.dat")
	if err != nil {
		return nil, err
	}
	s.edges = f
	s.grpOff = make([]int64, p+1)
	var off int64
	for j, grp := range groups {
		s.grpOff[j] = off
		buf := make([]byte, tgRecBytes*len(grp))
		for r, e := range grp {
			binary.LittleEndian.PutUint32(buf[tgRecBytes*r:], e.Src)
			binary.LittleEndian.PutUint32(buf[tgRecBytes*r+4:], e.Dst)
		}
		if len(buf) > 0 {
			if _, err := f.WriteAt(buf, off*tgRecBytes); err != nil {
				return nil, fmt.Errorf("baseline: turbograph write pages: %w", err)
			}
		}
		off += int64(len(grp))
	}
	s.grpOff[p] = off
	attrs, err := disk.Create(dir + "/attrs.bin")
	if err != nil {
		return nil, err
	}
	s.attrs = attrs
	return s, nil
}

func (s *TurboGraph) Name() string        { return "turbograph-like" }
func (s *TurboGraph) NumVertices() uint32 { return s.n }
func (s *TurboGraph) NumEdges() int64     { return s.m }

// P returns the interval count the memory budget forced.
func (s *TurboGraph) P() int { return s.p }

// Close releases the system's files.
func (s *TurboGraph) Close() error {
	err1 := s.edges.Close()
	err2 := s.attrs.Close()
	if err1 != nil {
		return err1
	}
	return err2
}

// RunProgram implements System.
func (s *TurboGraph) RunProgram(p engine.Program, maxIters int) (*Result, error) {
	start := time.Now()
	io0 := s.disk.Stats().Snapshot()
	st := newRunState(p, s.deg, s.n)
	if err := writeAttrFile(s.attrs, st.curr, 0); err != nil {
		return nil, err
	}
	res := &Result{}
	srcBuf := make([]float64, s.n)
	for it := 0; maxIters <= 0 || it < maxIters; it++ {
		st.beginIteration()
		changed := false
		for j := 0; j < s.p; j++ {
			lo, hi := s.bounds[j], s.bounds[j+1]
			if lo == hi {
				continue
			}
			// Pin destination interval j; slide over the full source
			// attribute file (the P·n·Ba term).
			if err := readAttrFile(s.attrs, srcBuf, 0); err != nil {
				return nil, err
			}
			r0, r1 := s.grpOff[j], s.grpOff[j+1]
			if r1 > r0 {
				buf := make([]byte, (r1-r0)*tgRecBytes)
				if _, err := s.edges.ReadAt(buf, r0*tgRecBytes); err != nil {
					return nil, fmt.Errorf("baseline: turbograph read pages: %w", err)
				}
				res.EdgesTraversed += r1 - r0
				for r := 0; r < len(buf); r += tgRecBytes {
					src := binary.LittleEndian.Uint32(buf[r:])
					dst := binary.LittleEndian.Uint32(buf[r+4:])
					st.acc[dst] = p.Sum(st.acc[dst], p.Gather(srcBuf[src], s.deg[src], 1))
				}
			}
			if st.applyAll(lo, hi) {
				changed = true
			}
			if err := writeAttrFile(s.attrs, st.curr[lo:hi], lo); err != nil {
				return nil, err
			}
		}
		res.Iterations++
		if !changed {
			break
		}
	}
	res.Attrs = append([]float64(nil), st.curr...)
	res.IO = s.disk.Stats().Snapshot().Sub(io0)
	res.Elapsed = time.Since(start)
	return res, nil
}
