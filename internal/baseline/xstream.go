package baseline

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"time"

	"nxgraph/internal/diskio"
	"nxgraph/internal/engine"
	"nxgraph/internal/graph"
)

// XStream reimplements X-Stream's edge-centric scatter–gather model (Roy
// et al., SOSP'13; paper §V-B): vertices are split into K streaming
// partitions whose state fits in memory; edges are grouped by *source*
// partition and kept completely unsorted. Every iteration:
//
//	scatter — stream each partition's edges against its resident vertex
//	          state, appending (dst, value) update records to the
//	          destination partition's update file;
//	gather  — stream each partition's update file, folding values into
//	          its vertices.
//
// The update files make X-Stream's per-iteration traffic the largest of
// the compared systems (m·Be + m·(Bv+Ba) written and re-read), which is
// why it trails in the paper's Tables V and VI.
type XStream struct {
	disk    *diskio.Disk
	dir     string
	n       uint32
	m       int64
	k       int
	bounds  []uint32
	deg     []uint32
	edges   *diskio.File
	grpOff  []int64 // per source partition, k+1
	attrs   *diskio.File
	threads int
}

const (
	xsEdgeBytes   = 8  // src u32 + dst u32
	xsUpdateBytes = 12 // dst u32 + value f64
)

// NewXStream builds the streaming-partition representation. The memory
// budget fixes K = ⌈2n·Ba/BM⌉ (vertex state plus working buffers),
// minimum 1.
func NewXStream(disk *diskio.Disk, dir string, g *graph.EdgeList, budget int64, threads int) (*XStream, error) {
	if threads <= 0 {
		threads = 1
	}
	k := 1
	if budget > 0 {
		need := 2 * int64(g.NumVertices) * 8
		k = int((need + budget - 1) / budget)
		if k < 1 {
			k = 1
		}
		if k > int(g.NumVertices) {
			k = int(g.NumVertices)
		}
	}
	s := &XStream{
		disk: disk, dir: dir, n: g.NumVertices, m: int64(len(g.Edges)),
		k: k, bounds: intervals(g.NumVertices, k), deg: g.OutDegrees(),
		threads: threads,
	}
	groups := make([][]graph.Edge, k)
	for _, e := range g.Edges {
		i := intervalOf(s.bounds, e.Src)
		groups[i] = append(groups[i], e) // unsorted within partition
	}
	f, err := disk.Create(dir + "/edges.dat")
	if err != nil {
		return nil, err
	}
	s.edges = f
	s.grpOff = make([]int64, k+1)
	var off int64
	for i, grp := range groups {
		s.grpOff[i] = off
		buf := make([]byte, xsEdgeBytes*len(grp))
		for r, e := range grp {
			binary.LittleEndian.PutUint32(buf[xsEdgeBytes*r:], e.Src)
			binary.LittleEndian.PutUint32(buf[xsEdgeBytes*r+4:], e.Dst)
		}
		if len(buf) > 0 {
			if _, err := f.WriteAt(buf, off*xsEdgeBytes); err != nil {
				return nil, fmt.Errorf("baseline: xstream write edges: %w", err)
			}
		}
		off += int64(len(grp))
	}
	s.grpOff[k] = off
	attrs, err := disk.Create(dir + "/attrs.bin")
	if err != nil {
		return nil, err
	}
	s.attrs = attrs
	return s, nil
}

func (s *XStream) Name() string        { return "xstream-like" }
func (s *XStream) NumVertices() uint32 { return s.n }
func (s *XStream) NumEdges() int64     { return s.m }

// Partitions returns K, the streaming partition count.
func (s *XStream) Partitions() int { return s.k }

// Close releases the system's files.
func (s *XStream) Close() error {
	err1 := s.edges.Close()
	err2 := s.attrs.Close()
	if err1 != nil {
		return err1
	}
	return err2
}

// RunProgram implements System.
func (s *XStream) RunProgram(p engine.Program, maxIters int) (*Result, error) {
	start := time.Now()
	io0 := s.disk.Stats().Snapshot()
	st := newRunState(p, s.deg, s.n)
	if err := writeAttrFile(s.attrs, st.curr, 0); err != nil {
		return nil, err
	}
	res := &Result{}
	for it := 0; maxIters <= 0 || it < maxIters; it++ {
		st.beginIteration()
		// Scatter phase: one update file per destination partition.
		upd := make([]*diskio.File, s.k)
		updW := make([]*bufio.Writer, s.k)
		for t := 0; t < s.k; t++ {
			f, err := s.disk.Create(fmt.Sprintf("%s/updates_%d.dat", s.dir, t))
			if err != nil {
				return nil, err
			}
			upd[t] = f
			updW[t] = bufio.NewWriterSize(f, 1<<16)
		}
		closeUpd := func() {
			for _, f := range upd {
				if f != nil {
					f.Close()
				}
			}
		}
		var rec [xsUpdateBytes]byte
		for i := 0; i < s.k; i++ {
			// Resident vertex state for partition i.
			lo, hi := s.bounds[i], s.bounds[i+1]
			src := make([]float64, hi-lo)
			if err := readAttrFile(s.attrs, src, lo); err != nil {
				closeUpd()
				return nil, err
			}
			r0, r1 := s.grpOff[i], s.grpOff[i+1]
			if r1 <= r0 {
				continue
			}
			buf := make([]byte, (r1-r0)*xsEdgeBytes)
			if _, err := s.edges.ReadAt(buf, r0*xsEdgeBytes); err != nil {
				closeUpd()
				return nil, fmt.Errorf("baseline: xstream read edges: %w", err)
			}
			res.EdgesTraversed += r1 - r0
			for r := 0; r < len(buf); r += xsEdgeBytes {
				sv := binary.LittleEndian.Uint32(buf[r:])
				dv := binary.LittleEndian.Uint32(buf[r+4:])
				val := p.Gather(src[sv-lo], s.deg[sv], 1)
				t := intervalOf(s.bounds, dv)
				binary.LittleEndian.PutUint32(rec[0:], dv)
				binary.LittleEndian.PutUint64(rec[4:], math.Float64bits(val))
				if _, err := updW[t].Write(rec[:]); err != nil {
					closeUpd()
					return nil, fmt.Errorf("baseline: xstream write update: %w", err)
				}
			}
		}
		for t := 0; t < s.k; t++ {
			if err := updW[t].Flush(); err != nil {
				closeUpd()
				return nil, fmt.Errorf("baseline: xstream flush updates: %w", err)
			}
		}
		// Gather phase.
		changed := false
		for t := 0; t < s.k; t++ {
			lo, hi := s.bounds[t], s.bounds[t+1]
			if _, err := upd[t].Seek(0, io.SeekStart); err != nil {
				closeUpd()
				return nil, err
			}
			br := bufio.NewReaderSize(upd[t], 1<<16)
			for {
				var u [xsUpdateBytes]byte
				if _, err := io.ReadFull(br, u[:]); err == io.EOF {
					break
				} else if err != nil {
					closeUpd()
					return nil, fmt.Errorf("baseline: xstream read update: %w", err)
				}
				dv := binary.LittleEndian.Uint32(u[0:])
				val := math.Float64frombits(binary.LittleEndian.Uint64(u[4:]))
				st.acc[dv] = p.Sum(st.acc[dv], val)
			}
			if st.applyAll(lo, hi) {
				changed = true
			}
			if err := writeAttrFile(s.attrs, st.curr[lo:hi], lo); err != nil {
				closeUpd()
				return nil, err
			}
		}
		closeUpd()
		res.Iterations++
		if !changed {
			break
		}
	}
	res.Attrs = append([]float64(nil), st.curr...)
	res.IO = s.disk.Stats().Snapshot().Sub(io0)
	res.Elapsed = time.Since(start)
	return res, nil
}
