package bench

import (
	"fmt"
	"time"

	"nxgraph/internal/algorithms"
	"nxgraph/internal/engine"
	"nxgraph/internal/metrics"
)

// Batch measures fused multi-query execution: `width` personalized
// PageRank queries answered back to back (one engine run each) versus
// as one fused batch run, on the LiveJournal stand-in with a warm block
// cache. The fused row reports the aggregate-throughput speedup — the
// tentpole target is ≥5× at width 64.
func (s *Suite) Batch(width int) (*metrics.Table, error) {
	if width <= 0 {
		return nil, fmt.Errorf("bench: batch width must be positive, got %d", width)
	}
	t := metrics.NewTable(
		fmt.Sprintf("Batched queries: %d-root personalized PageRank (LiveJournal stand-in, warm cache)", width),
		"mode", "queries", "time(s)", "queries/s", "speedup")
	g, err := s.Graph("livejournal")
	if err != nil {
		return nil, err
	}
	e, done, err := s.nxEngine(g, 12, false, engine.Config{Strategy: engine.SPU}, s.Profile)
	if err != nil {
		return nil, err
	}
	defer done()

	// Spread the query roots over the id space; duplicates are fine (a
	// production batch may well repeat roots) but a decorrelated spread
	// exercises distinct frontiers.
	n := e.Store().Meta().NumVertices
	roots := make([]uint32, width)
	for i := range roots {
		roots[i] = uint32(uint64(i) * 2654435761 % uint64(n))
	}
	const damping = 0.85
	iters := s.PageRankIters

	// Warm up with one run of each mode: the first touch loads the
	// sub-shard block cache, faults in the engine's pooled fused-run
	// arrays, and JITs nothing else — the timed runs then measure the
	// steady-state serving cost, matching how the server reuses one
	// engine across jobs.
	if _, err := algorithms.PersonalizedPageRank(e, roots[0], damping, iters); err != nil {
		return nil, err
	}
	if _, err := algorithms.PersonalizedPageRankBatch(e, roots, damping, iters); err != nil {
		return nil, err
	}

	// Each mode is timed batchReps times, alternating so background
	// contention drifts across both equally, and the minimum is
	// reported — the standard estimator for the true cost under noisy
	// neighbors.
	const batchReps = 3
	seq := 0.0
	fused := 0.0
	var seqResults, fusedResults []*engine.Result
	for rep := 0; rep < batchReps; rep++ {
		seqStart := time.Now()
		seqResults = seqResults[:0]
		for _, r := range roots {
			res, err := algorithms.PersonalizedPageRank(e, r, damping, iters)
			if err != nil {
				return nil, err
			}
			seqResults = append(seqResults, res)
		}
		if t := time.Since(seqStart).Seconds(); rep == 0 || t < seq {
			seq = t
		}
		s.logf("batch sequential rep %d: %d queries in %.3fs", rep, width, time.Since(seqStart).Seconds())

		fusedStart := time.Now()
		fr, err := algorithms.PersonalizedPageRankBatch(e, roots, damping, iters)
		if err != nil {
			return nil, err
		}
		if t := time.Since(fusedStart).Seconds(); rep == 0 || t < fused {
			fused = t
		}
		fusedResults = fr
		s.logf("batch fused rep %d: %d queries in %.3fs", rep, width, time.Since(fusedStart).Seconds())
	}

	// The fused run must be a pure throughput optimization: verify every
	// lane against its sequential run bit for bit before reporting.
	for i, fr := range fusedResults {
		if fr == nil {
			return nil, fmt.Errorf("bench: fused lane %d returned no result", i)
		}
		for v, got := range fr.Attrs {
			if got != seqResults[i].Attrs[v] {
				return nil, fmt.Errorf("bench: fused lane %d diverges from sequential at vertex %d: %v != %v",
					i, v, got, seqResults[i].Attrs[v])
			}
		}
	}

	t.AddRow("sequential", width, seq, float64(width)/seq, 1.0)
	t.AddRow("fused", width, fused, float64(width)/fused, seq/fused)
	return t, nil
}
