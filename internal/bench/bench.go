// Package bench is the experiment harness that regenerates every table
// and figure of the paper's evaluation (§IV). Each Exp* method builds the
// scaled stand-in datasets, runs the relevant systems, and returns a
// text table whose rows mirror what the paper reports. The cmd/nxbench
// binary and the repository-level Go benchmarks both drive this package.
//
// Absolute numbers differ from the paper — the datasets are scaled
// stand-ins and the disks are simulated — but the comparisons (who wins,
// by what factor, where curves bend) are the reproduction targets;
// EXPERIMENTS.md records both sides.
package bench

import (
	"fmt"
	"io"
	"os"

	"nxgraph/internal/algorithms"
	"nxgraph/internal/baseline"
	"nxgraph/internal/blockcache"
	"nxgraph/internal/diskio"
	"nxgraph/internal/engine"
	"nxgraph/internal/gen"
	"nxgraph/internal/graph"
	"nxgraph/internal/preprocess"
	"nxgraph/internal/storage"
)

// Suite configures one harness run.
type Suite struct {
	// ScaleDelta is added to every dataset preset's scale (negative
	// shrinks; -2 quarters the vertex count).
	ScaleDelta int
	// Threads is the worker count for all systems.
	Threads int
	// Seed drives all generators.
	Seed int64
	// Profile is the simulated disk used for timed runs (experiments
	// that sweep disks override it).
	Profile diskio.Profile
	// WorkDir hosts scratch stores; empty means a fresh temp dir.
	WorkDir string
	// PageRankIters is the iteration count for PageRank experiments
	// (the paper uses 10).
	PageRankIters int
	// CacheBytes overrides every engine's sub-shard block cache budget:
	// 0 keeps the per-engine derivation from the experiment's memory
	// budget (so budgeted experiments still measure streaming I/O),
	// positive sets the budget in bytes, negative disables caching.
	CacheBytes int64
	// CacheL2Frac is every engine's encoded-tier share of the cache
	// budget (0 = default quarter, negative = decoded tier only).
	CacheL2Frac float64
	// Format selects the store encoding the suite writes; 0 picks
	// storage.DefaultFormatVersion.
	Format int
	// Log, when non-nil, receives progress lines.
	Log io.Writer

	graphs map[string]*graph.EdgeList
	nstore int
	// cacheTotals accumulates the final block-cache counters of every
	// engine the suite created (read when the engine's store closes).
	cacheTotals blockcache.Stats
	// encodedBytes/fixedBytes accumulate each built store's on-disk
	// sub-shard footprint against its fixed-width equivalent, for the
	// compression line in summaries.
	encodedBytes, fixedBytes int64
}

// NewSuite returns a Suite with the paper's defaults at reduced scale.
func NewSuite() *Suite {
	return &Suite{Threads: 4, Seed: 42, Profile: diskio.Unthrottled, PageRankIters: 10}
}

func (s *Suite) logf(format string, args ...any) {
	if s.Log != nil {
		fmt.Fprintf(s.Log, format+"\n", args...)
	}
}

func (s *Suite) workdir() (string, error) {
	if s.WorkDir == "" {
		dir, err := os.MkdirTemp("", "nxbench-*")
		if err != nil {
			return "", err
		}
		s.WorkDir = dir
	}
	return s.WorkDir, nil
}

// Graph returns (generating and caching) the named preset stand-in.
func (s *Suite) Graph(name string) (*graph.EdgeList, error) {
	if g, ok := s.graphs[name]; ok {
		return g, nil
	}
	g, err := gen.FromPreset(name, s.ScaleDelta, s.Seed)
	if err != nil {
		return nil, err
	}
	if s.graphs == nil {
		s.graphs = make(map[string]*graph.EdgeList)
	}
	s.graphs[name] = g
	s.logf("generated %s: %d vertices, %d edges", name, g.NumVertices, g.NumEdges())
	return g, nil
}

// buildStore preprocesses g (on an unthrottled disk — preprocessing is
// not part of any timed experiment) and reopens the store on a disk with
// the given profile for measurement.
func (s *Suite) buildStore(g *graph.EdgeList, p int, transpose bool, prof diskio.Profile) (*storage.Store, error) {
	wd, err := s.workdir()
	if err != nil {
		return nil, err
	}
	s.nstore++
	dir := fmt.Sprintf("store-%04d", s.nstore)
	build := diskio.MustNew(wd, diskio.Unthrottled)
	res, err := preprocess.FromEdgeList(build, dir, g, preprocess.Options{
		Name: dir, P: p, Transpose: transpose, Format: s.Format,
	})
	if err != nil {
		return nil, err
	}
	res.Store.Close()
	run := diskio.MustNew(wd, prof)
	st, err := storage.Open(run, dir)
	if err != nil {
		return nil, err
	}
	enc, fixed := st.CompressionRatio()
	s.encodedBytes += enc
	s.fixedBytes += fixed
	return st, nil
}

// nxEngine builds an engine over a fresh store of g. The returned
// cleanup folds the engine's block-cache counters into the suite totals
// before closing the store.
func (s *Suite) nxEngine(g *graph.EdgeList, p int, transpose bool, cfg engine.Config, prof diskio.Profile) (*engine.Engine, func(), error) {
	st, err := s.buildStore(g, p, transpose, prof)
	if err != nil {
		return nil, nil, err
	}
	if cfg.Threads == 0 {
		cfg.Threads = s.Threads
	}
	if s.CacheBytes != 0 {
		cfg.CacheBytes = s.CacheBytes
	}
	cfg.CacheL2Frac = s.CacheL2Frac
	e, err := engine.New(st, cfg)
	if err != nil {
		st.Close()
		return nil, nil, err
	}
	return e, func() {
		cs := e.CacheStats()
		s.cacheTotals.Hits += cs.Hits
		s.cacheTotals.L2Hits += cs.L2Hits
		s.cacheTotals.Misses += cs.Misses
		s.cacheTotals.Evictions += cs.Evictions
		s.cacheTotals.L2Evictions += cs.L2Evictions
		st.Close()
	}, nil
}

// CacheSummary reports the block-cache traffic aggregated over every
// engine the suite ran, or "" before any engine closed.
func (s *Suite) CacheSummary() string { return s.cacheTotals.Summary() }

// CompressionSummary reports the on-disk sub-shard footprint of every
// store the suite built against its fixed-width (v1) equivalent, or ""
// when nothing was built or the stores are uncompressed.
func (s *Suite) CompressionSummary() string {
	if s.fixedBytes == 0 || s.encodedBytes >= s.fixedBytes {
		return ""
	}
	return fmt.Sprintf("store compression: %d B encoded vs %d B fixed-width (%.2fx)",
		s.encodedBytes, s.fixedBytes, float64(s.fixedBytes)/float64(s.encodedBytes))
}

// realGraphs lists the paper's three real-world datasets (stand-ins).
var realGraphs = []string{"livejournal", "twitter", "yahoo"}

// Close removes the suite's scratch directory.
func (s *Suite) Close() {
	if s.WorkDir != "" {
		os.RemoveAll(s.WorkDir)
		s.WorkDir = ""
	}
}

// pagerank runs the suite's standard PageRank measurement on an engine.
func (s *Suite) pagerank(e *engine.Engine) (*engine.Result, error) {
	return algorithms.PageRank(e, 0.85, s.PageRankIters)
}

// baselinePageRank runs PageRank on a baseline system for the standard
// iteration count.
func (s *Suite) baselinePageRank(sys baseline.System) (*baseline.Result, error) {
	return sys.RunProgram(algorithms.NewPageRankProgram(sys.NumVertices(), 0.85), s.PageRankIters)
}
