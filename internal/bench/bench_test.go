package bench

import (
	"strings"
	"testing"

	"nxgraph/internal/metrics"
)

// tinySuite shrinks every dataset far enough that the full experiment
// matrix runs in CI time.
func tinySuite(t *testing.T) *Suite {
	t.Helper()
	s := NewSuite()
	s.ScaleDelta = -8
	s.Threads = 2
	s.PageRankIters = 2
	t.Cleanup(s.Close)
	return s
}

func checkTable(t *testing.T, tab *metrics.Table, err error, minRows int) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
	if tab.Rows() < minRows {
		t.Fatalf("table has %d rows, want at least %d:\n%s", tab.Rows(), minRows, tab)
	}
	if !strings.Contains(tab.String(), "==") {
		t.Fatal("table missing title")
	}
}

func TestTableII(t *testing.T) {
	checkTable(t, tinySuite(t).TableII(), nil, 16)
}

func TestFig6(t *testing.T) {
	checkTable(t, tinySuite(t).Fig6(8), nil, 8)
}

func TestTable4(t *testing.T) {
	tab, err := tinySuite(t).Table4()
	checkTable(t, tab, err, 3)
}

func TestFig7(t *testing.T) {
	tab, err := tinySuite(t).Fig7([]int{2, 4})
	checkTable(t, tab, err, 2)
}

func TestFig8(t *testing.T) {
	tab, err := tinySuite(t).Fig8([]int{1, 2}, []float64{0.5})
	checkTable(t, tab, err, 9)
}

func TestFig9(t *testing.T) {
	tab, err := tinySuite(t).Fig9([]float64{0.5, 1})
	checkTable(t, tab, err, 24)
}

func TestFig10(t *testing.T) {
	tab, err := tinySuite(t).Fig10([]int{2})
	checkTable(t, tab, err, 12)
}

func TestFig11(t *testing.T) {
	tab, err := tinySuite(t).Fig11()
	checkTable(t, tab, err, 20)
}

func TestFig12(t *testing.T) {
	tab, err := tinySuite(t).Fig12()
	checkTable(t, tab, err, 3*(6+4))
}

func TestTable5(t *testing.T) {
	tab, err := tinySuite(t).Table5()
	checkTable(t, tab, err, 7)
}

func TestTable6(t *testing.T) {
	tab, err := tinySuite(t).Table6()
	checkTable(t, tab, err, 5)
}
