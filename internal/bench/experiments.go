package bench

import (
	"fmt"

	"nxgraph/internal/algorithms"
	"nxgraph/internal/baseline"
	"nxgraph/internal/diskio"
	"nxgraph/internal/engine"
	"nxgraph/internal/metrics"
	"nxgraph/internal/model"
)

// TableII renders the analytic I/O model (paper Table II) evaluated at
// the Yahoo-web constants for a sweep of memory budgets.
func (s *Suite) TableII() *metrics.Table {
	t := metrics.NewTable("Table II: per-iteration I/O by update strategy (Yahoo-web constants)",
		"BM/(2nBa)", "strategy", "read(GB)", "write(GB)")
	p := model.YahooWeb()
	full := 2 * p.N * p.Ba
	gb := func(b float64) float64 { return b / 1e9 }
	for _, frac := range []float64{0.25, 0.5, 0.75, 1.0} {
		p.BM = frac * full
		t.AddRow(frac, "turbograph-like", gb(model.TurboGraphLike(p).Read), gb(model.TurboGraphLike(p).Write))
		t.AddRow(frac, "spu", gb(model.SPU(p).Read), gb(model.SPU(p).Write))
		t.AddRow(frac, "dpu", gb(model.DPU(p).Read), gb(model.DPU(p).Write))
		t.AddRow(frac, "mpu", gb(model.MPU(p).Read), gb(model.MPU(p).Write))
	}
	return t
}

// Fig6 renders the MPU / TurboGraph-like total-I/O ratio curve (paper
// Figure 6): always below 1, i.e. MPU transfers less at every budget.
func (s *Suite) Fig6(points int) *metrics.Table {
	if points <= 0 {
		points = 12
	}
	t := metrics.NewTable("Figure 6: total I/O ratio MPU / TurboGraph-like (Yahoo-web)",
		"mem(GB)", "ratio")
	p := model.YahooWeb()
	budgets, ratios := model.Fig6Series(p, points)
	for i := range budgets {
		t.AddRow(budgets[i]/1e9, ratios[i])
	}
	return t
}

// Table4 reproduces Exp 1 (paper Table IV): sub-shard ordering and
// parallelism grain, 10-iteration PageRank on the three real-graph
// stand-ins.
func (s *Suite) Table4() (*metrics.Table, error) {
	t := metrics.NewTable("Table IV: sub-shard ordering and parallelism (10-iter PageRank)",
		"graph", "src-sorted,coarse(s)", "dst-sorted,fine(s)", "speedup")
	for _, name := range realGraphs {
		g, err := s.Graph(name)
		if err != nil {
			return nil, err
		}
		var secs [2]float64
		for k, order := range []engine.Order{engine.SrcSortedCoarse, engine.DstSortedFine} {
			e, done, err := s.nxEngine(g, 12, false, engine.Config{
				Strategy: engine.SPU, Order: order,
			}, s.Profile)
			if err != nil {
				return nil, err
			}
			res, err := s.pagerank(e)
			done()
			if err != nil {
				return nil, err
			}
			secs[k] = res.Elapsed.Seconds()
			s.logf("table4 %s %s: %.3fs", name, order, secs[k])
		}
		t.AddRow(name, secs[0], secs[1], secs[0]/secs[1])
	}
	return t, nil
}

// Fig7 reproduces Exp 2: elapsed time of PageRank, BFS and SCC on the
// Twitter stand-in as the interval count P varies.
func (s *Suite) Fig7(ps []int) (*metrics.Table, error) {
	if len(ps) == 0 {
		ps = []int{2, 4, 6, 12, 18, 24, 36, 48}
	}
	t := metrics.NewTable("Figure 7: performance vs partitioning (Twitter stand-in)",
		"P", "pagerank(s)", "bfs(s)", "scc(s)")
	g, err := s.Graph("twitter")
	if err != nil {
		return nil, err
	}
	for _, p := range ps {
		e, done, err := s.nxEngine(g, p, true, engine.Config{Strategy: engine.SPU}, s.Profile)
		if err != nil {
			return nil, err
		}
		pr, err := s.pagerank(e)
		if err != nil {
			done()
			return nil, err
		}
		bfs, err := algorithms.BFS(e, 0)
		if err != nil {
			done()
			return nil, err
		}
		scc, err := algorithms.SCC(e)
		done()
		if err != nil {
			return nil, err
		}
		t.AddRow(p, pr.Elapsed.Seconds(), bfs.Elapsed.Seconds(), scc.Elapsed.Seconds())
		s.logf("fig7 P=%d done", p)
	}
	return t, nil
}

// Fig8 reproduces Exp 3: SPU vs DPU across thread counts and memory
// budgets for PageRank, BFS and SCC on the Twitter stand-in.
func (s *Suite) Fig8(threads []int, memFracs []float64) (*metrics.Table, error) {
	if len(threads) == 0 {
		threads = []int{1, 2, 4, 6, 8, 10, 12}
	}
	if len(memFracs) == 0 {
		memFracs = []float64{0.25, 0.5, 0.75, 1.0}
	}
	g, err := s.Graph("twitter")
	if err != nil {
		return nil, err
	}
	t := metrics.NewTable("Figure 8: SPU vs DPU (Twitter stand-in)",
		"sweep", "x", "algo", "spu(s)", "dpu(s)", "dpu/spu")
	run := func(strategy engine.Strategy, nThreads int, budget int64, algo string) (float64, error) {
		e, done, err := s.nxEngine(g, 12, algo == "scc", engine.Config{
			Strategy: strategy, Threads: nThreads, MemoryBudget: budget,
		}, s.Profile)
		if err != nil {
			return 0, err
		}
		defer done()
		switch algo {
		case "pagerank":
			res, err := s.pagerank(e)
			if err != nil {
				return 0, err
			}
			return res.Elapsed.Seconds(), nil
		case "bfs":
			res, err := algorithms.BFS(e, 0)
			if err != nil {
				return 0, err
			}
			return res.Elapsed.Seconds(), nil
		default:
			res, err := algorithms.SCC(e)
			if err != nil {
				return 0, err
			}
			return res.Elapsed.Seconds(), nil
		}
	}
	algos := []string{"pagerank", "bfs", "scc"}
	for _, algo := range algos {
		for _, th := range threads {
			spu, err := run(engine.SPU, th, 0, algo)
			if err != nil {
				return nil, err
			}
			dpu, err := run(engine.DPU, th, 0, algo)
			if err != nil {
				return nil, err
			}
			t.AddRow("threads", th, algo, spu, dpu, dpu/spu)
		}
		full := 2*int64(g.NumVertices)*8 + g.NumEdges()*8
		for _, f := range memFracs {
			budget := int64(f * float64(full))
			spu, err := run(engine.SPU, s.Threads, budget, algo)
			if err != nil {
				return nil, err
			}
			dpu, err := run(engine.DPU, s.Threads, budget, algo)
			if err != nil {
				return nil, err
			}
			t.AddRow("mem", fmt.Sprintf("%.2f", f), algo, spu, dpu, dpu/spu)
		}
		s.logf("fig8 %s done", algo)
	}
	return t, nil
}

// systemsForComparison builds the Fig 9–12 comparison set over graph g:
// NXgraph in callback and lock mode plus the GraphChi- and
// TurboGraph-like baselines. budget applies to every system.
type comparisonRow struct {
	system  string
	seconds float64
	mteps   float64
}

func (s *Suite) compareOnPageRank(name string, budget int64, nThreads int, prof diskio.Profile) ([]comparisonRow, error) {
	g, err := s.Graph(name)
	if err != nil {
		return nil, err
	}
	var rows []comparisonRow
	for _, sync := range []engine.SyncMode{engine.Callback, engine.Lock} {
		e, done, err := s.nxEngine(g, 12, false, engine.Config{
			Strategy: engine.Auto, Sync: sync, Threads: nThreads, MemoryBudget: budget,
		}, prof)
		if err != nil {
			return nil, err
		}
		res, err := s.pagerank(e)
		done()
		if err != nil {
			return nil, err
		}
		rows = append(rows, comparisonRow{"nxgraph-" + sync.String(),
			res.Elapsed.Seconds(), res.MTEPS()})
	}
	wd, err := s.workdir()
	if err != nil {
		return nil, err
	}
	disk := diskio.MustNew(wd, prof)
	s.nstore++
	gc, err := baseline.NewGraphChi(disk, fmt.Sprintf("gc-%04d", s.nstore), g, 12, nThreads)
	if err != nil {
		return nil, err
	}
	gcRes, err := s.baselinePageRank(gc)
	gc.Close()
	if err != nil {
		return nil, err
	}
	rows = append(rows, comparisonRow{"graphchi-like", gcRes.Elapsed.Seconds(), gcRes.MTEPS()})
	s.nstore++
	tg, err := baseline.NewTurboGraph(disk, fmt.Sprintf("tg-%04d", s.nstore), g, budget, nThreads)
	if err != nil {
		return nil, err
	}
	tgRes, err := s.baselinePageRank(tg)
	tg.Close()
	if err != nil {
		return nil, err
	}
	rows = append(rows, comparisonRow{"turbograph-like", tgRes.Elapsed.Seconds(), tgRes.MTEPS()})
	return rows, nil
}

// Fig9 reproduces Exp 4: 10-iteration PageRank elapsed time as the memory
// budget varies, per system, on each real-graph stand-in.
func (s *Suite) Fig9(memFracs []float64) (*metrics.Table, error) {
	if len(memFracs) == 0 {
		memFracs = []float64{0.125, 0.25, 0.5, 1.0}
	}
	t := metrics.NewTable("Figure 9: PageRank vs memory budget",
		"graph", "mem-frac", "system", "time(s)")
	for _, name := range realGraphs {
		g, err := s.Graph(name)
		if err != nil {
			return nil, err
		}
		full := 2*int64(g.NumVertices)*8 + g.NumEdges()*8
		for _, f := range memFracs {
			budget := int64(f * float64(full))
			rows, err := s.compareOnPageRank(name, budget, s.Threads, s.Profile)
			if err != nil {
				return nil, err
			}
			for _, r := range rows {
				t.AddRow(name, fmt.Sprintf("%.3f", f), r.system, r.seconds)
			}
			s.logf("fig9 %s f=%.3f done", name, f)
		}
	}
	return t, nil
}

// Fig10 reproduces Exp 5: 10-iteration PageRank elapsed time as the
// thread count varies, per system, on each real-graph stand-in.
func (s *Suite) Fig10(threads []int) (*metrics.Table, error) {
	if len(threads) == 0 {
		threads = []int{1, 2, 4, 6, 8, 10, 12}
	}
	t := metrics.NewTable("Figure 10: PageRank vs threads",
		"graph", "threads", "system", "time(s)")
	for _, name := range realGraphs {
		for _, th := range threads {
			rows, err := s.compareOnPageRank(name, 0, th, s.Profile)
			if err != nil {
				return nil, err
			}
			for _, r := range rows {
				t.AddRow(name, th, r.system, r.seconds)
			}
			s.logf("fig10 %s t=%d done", name, th)
		}
	}
	return t, nil
}

// Fig11 reproduces Exp 6: throughput (MTEPS) across the five mesh
// (Delaunay stand-in) scales, per system.
func (s *Suite) Fig11() (*metrics.Table, error) {
	t := metrics.NewTable("Figure 11: scalability on mesh graphs (MTEPS)",
		"graph", "system", "mteps")
	for _, name := range []string{"delaunay_n20", "delaunay_n21", "delaunay_n22",
		"delaunay_n23", "delaunay_n24"} {
		rows, err := s.compareOnPageRank(name, 0, s.Threads, s.Profile)
		if err != nil {
			return nil, err
		}
		for _, r := range rows {
			t.AddRow(name, r.system, r.mteps)
		}
		s.logf("fig11 %s done", name)
	}
	return t, nil
}
