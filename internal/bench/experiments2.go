package bench

import (
	"fmt"

	"nxgraph/internal/algorithms"
	"nxgraph/internal/baseline"
	"nxgraph/internal/diskio"
	"nxgraph/internal/engine"
	"nxgraph/internal/metrics"
)

// Fig12 reproduces Exp 7: BFS, SCC and WCC elapsed times per system on
// each real-graph stand-in. As in the paper, the baselines have gaps:
// TurboGraph provides no SCC (and its BFS "keeps crashing" in the paper's
// runs — ours works, so we report it), and the plain gather baselines run
// SCC not at all (the algorithm needs NXgraph's masking/orchestration
// machinery). Gaps render as "n/a".
func (s *Suite) Fig12() (*metrics.Table, error) {
	t := metrics.NewTable("Figure 12: BFS, SCC, WCC",
		"graph", "algo", "system", "time(s)")
	for _, name := range realGraphs {
		g, err := s.Graph(name)
		if err != nil {
			return nil, err
		}
		// NXgraph, both sync modes.
		for _, sync := range []engine.SyncMode{engine.Callback, engine.Lock} {
			e, done, err := s.nxEngine(g, 12, true, engine.Config{
				Strategy: engine.Auto, Sync: sync, Threads: s.Threads,
			}, s.Profile)
			if err != nil {
				return nil, err
			}
			sysName := "nxgraph-" + sync.String()
			bfs, err := algorithms.BFS(e, 0)
			if err != nil {
				done()
				return nil, err
			}
			t.AddRow(name, "bfs", sysName, bfs.Elapsed.Seconds())
			scc, err := algorithms.SCC(e)
			if err != nil {
				done()
				return nil, err
			}
			t.AddRow(name, "scc", sysName, scc.Elapsed.Seconds())
			wcc, err := algorithms.WCC(e)
			done()
			if err != nil {
				return nil, err
			}
			t.AddRow(name, "wcc", sysName, wcc.Elapsed.Seconds())
		}
		// Baselines: BFS on the directed graph, WCC on the symmetrized
		// one; no SCC (see doc comment).
		wd, err := s.workdir()
		if err != nil {
			return nil, err
		}
		disk := diskio.MustNew(wd, s.Profile)
		sym := g.Symmetrize()
		build := func(dir bool) ([]baseline.System, error) {
			gg := g
			if !dir {
				gg = sym
			}
			s.nstore++
			gc, err := baseline.NewGraphChi(disk, fmt.Sprintf("f12gc-%04d", s.nstore), gg, 12, s.Threads)
			if err != nil {
				return nil, err
			}
			tg, err := baseline.NewTurboGraph(disk, fmt.Sprintf("f12tg-%04d", s.nstore), gg, 0, s.Threads)
			if err != nil {
				gc.Close()
				return nil, err
			}
			return []baseline.System{gc, tg}, nil
		}
		dirSys, err := build(true)
		if err != nil {
			return nil, err
		}
		for _, sys := range dirSys {
			res, err := sys.RunProgram(algorithms.NewBFSProgram(0), 0)
			if err != nil {
				return nil, err
			}
			t.AddRow(name, "bfs", sys.Name(), res.Elapsed.Seconds())
			t.AddRow(name, "scc", sys.Name(), "n/a")
			sys.Close()
		}
		symSys, err := build(false)
		if err != nil {
			return nil, err
		}
		for _, sys := range symSys {
			res, err := sys.RunProgram(algorithms.NewWCCProgram(), 0)
			if err != nil {
				return nil, err
			}
			t.AddRow(name, "wcc", sys.Name(), res.Elapsed.Seconds())
			sys.Close()
		}
		s.logf("fig12 %s done", name)
	}
	return t, nil
}

// Table5 reproduces Exp 8 (limited resources): single-iteration PageRank
// on the Twitter stand-in with a constrained memory budget, on simulated
// SSD and HDD. VENUS is unavailable (no source or binary exists, as the
// paper itself notes) and appears as a cited row.
func (s *Suite) Table5() (*metrics.Table, error) {
	t := metrics.NewTable("Table V: limited resources (1-iter PageRank, Twitter stand-in)",
		"disk", "system", "time(s)", "speedup-vs-nxgraph")
	g, err := s.Graph("twitter")
	if err != nil {
		return nil, err
	}
	// The paper gives the systems 8 GB against Twitter's ~12 GB edge
	// data: intervals fit, edges do not. Scale the same proportion.
	budget := 2*int64(g.NumVertices)*8 + g.NumEdges()*8*2/3
	for _, prof := range []diskio.Profile{diskio.SSD, diskio.HDD} {
		nx, err := s.oneIterPageRankNX(budget, prof)
		if err != nil {
			return nil, err
		}
		t.AddRow(prof.Name, "nxgraph", nx, 1.0)
		gg, err := s.oneIterPageRankGrid(budget, prof)
		if err != nil {
			return nil, err
		}
		t.AddRow(prof.Name, "gridgraph-like", gg, gg/nx)
		xs, err := s.oneIterPageRankXStream(budget, prof)
		if err != nil {
			return nil, err
		}
		t.AddRow(prof.Name, "xstream-like", xs, xs/nx)
		if prof.Name == "hdd" {
			t.AddRow(prof.Name, "venus", "n/a", "7.60 (paper-reported)")
		}
		s.logf("table5 %s done", prof.Name)
	}
	return t, nil
}

// Table6 reproduces Exp 9 (best case): single-iteration PageRank with a
// generous budget on simulated SSD, plus the cited MMAP and PowerGraph
// rows the paper quotes.
func (s *Suite) Table6() (*metrics.Table, error) {
	t := metrics.NewTable("Table VI: best case (1-iter PageRank, Twitter stand-in, SSD)",
		"system", "time(s)", "speedup-vs-nxgraph")
	nx, err := s.oneIterPageRankNX(0, diskio.SSD)
	if err != nil {
		return nil, err
	}
	t.AddRow("nxgraph", nx, 1.0)
	xs, err := s.oneIterPageRankXStream(0, diskio.SSD)
	if err != nil {
		return nil, err
	}
	t.AddRow("xstream-like", xs, xs/nx)
	gg, err := s.oneIterPageRankGrid(0, diskio.SSD)
	if err != nil {
		return nil, err
	}
	t.AddRow("gridgraph-like", gg, gg/nx)
	t.AddRow("mmap", "n/a", "6.52 (paper-reported)")
	t.AddRow("powergraph (64-node cluster)", "n/a", "1.79 (paper-reported)")
	return t, nil
}

func (s *Suite) oneIterPageRankNX(budget int64, prof diskio.Profile) (float64, error) {
	gg, err := s.Graph("twitter")
	if err != nil {
		return 0, err
	}
	e, done, err := s.nxEngine(gg, 12, false, engine.Config{
		Strategy: engine.Auto, Threads: s.Threads, MemoryBudget: budget,
	}, prof)
	if err != nil {
		return 0, err
	}
	defer done()
	res, err := algorithms.PageRank(e, 0.85, 1)
	if err != nil {
		return 0, err
	}
	return res.Elapsed.Seconds(), nil
}

func (s *Suite) oneIterPageRankGrid(budget int64, prof diskio.Profile) (float64, error) {
	gg, err := s.Graph("twitter")
	if err != nil {
		return 0, err
	}
	wd, err := s.workdir()
	if err != nil {
		return 0, err
	}
	disk := diskio.MustNew(wd, prof)
	s.nstore++
	sys, err := baseline.NewGridGraph(disk, fmt.Sprintf("t5gg-%04d", s.nstore), gg, budget, s.Threads)
	if err != nil {
		return 0, err
	}
	defer sys.Close()
	res, err := sys.RunProgram(algorithms.NewPageRankProgram(gg.NumVertices, 0.85), 1)
	if err != nil {
		return 0, err
	}
	return res.Elapsed.Seconds(), nil
}

func (s *Suite) oneIterPageRankXStream(budget int64, prof diskio.Profile) (float64, error) {
	gg, err := s.Graph("twitter")
	if err != nil {
		return 0, err
	}
	wd, err := s.workdir()
	if err != nil {
		return 0, err
	}
	disk := diskio.MustNew(wd, prof)
	s.nstore++
	sys, err := baseline.NewXStream(disk, fmt.Sprintf("t5xs-%04d", s.nstore), gg, budget, s.Threads)
	if err != nil {
		return 0, err
	}
	defer sys.Close()
	res, err := sys.RunProgram(algorithms.NewPageRankProgram(gg.NumVertices, 0.85), 1)
	if err != nil {
		return 0, err
	}
	return res.Elapsed.Seconds(), nil
}

// TraceRun runs the standard PageRank measurement on the livejournal
// stand-in with run tracing on and returns the per-iteration
// compute-vs-stall breakdown (nxbench -trace). A tight memory budget
// would hide cold-start misses behind the resident set, so the run uses
// the suite defaults: the first iteration shows the cold block loads,
// later ones the warm-cache steady state.
func (s *Suite) TraceRun() (*metrics.Table, error) {
	g, err := s.Graph("livejournal")
	if err != nil {
		return nil, err
	}
	e, done, err := s.nxEngine(g, 12, false, engine.Config{Strategy: engine.SPU}, s.Profile)
	if err != nil {
		return nil, err
	}
	defer done()
	res, err := s.pagerank(e)
	if err != nil {
		return nil, err
	}
	if res.Trace == nil {
		return nil, fmt.Errorf("bench: trace run returned no trace")
	}
	s.logf("trace: %d iterations in %s", res.Iterations, res.Elapsed)
	return metrics.StepTable("PageRank per-iteration trace (livejournal stand-in)",
		res.Trace.Steps()), nil
}
