package bench

import (
	"fmt"

	"nxgraph/internal/engine"
	"nxgraph/internal/metrics"
)

// soakCacheBytes returns the deliberately tiny block-cache budget for
// the soak profile: 1/16th of the graph's approximate edge bytes, so
// the working set never becomes resident and every PageRank iteration
// re-reads evicted sub-shards from disk. Proportional (not a fixed
// constant) so -scale-delta shrunk runs still overflow.
func soakCacheBytes(edges int64) int64 {
	b := edges * 8 / 16
	if b < 1<<16 {
		b = 1 << 16
	}
	return b
}

// Soak runs the larger-than-RAM soak profile (nxbench -exp soak): a
// standard PageRank measurement whose block cache is budgeted far below
// the store's edge bytes. The warm-cache benchmarks deliberately exclude
// this regime; here the headline is sustained nonzero disk read traffic
// across back-to-back rounds — steady-state eviction, not a cold-start
// artifact. A Suite-level CacheBytes override still wins (nxEngine
// applies it last), so -cache-mb can widen or disable the budget.
func (s *Suite) Soak() (*metrics.Table, error) {
	g, err := s.Graph("livejournal")
	if err != nil {
		return nil, err
	}
	e, done, err := s.nxEngine(g, 12, false, engine.Config{
		Strategy: engine.SPU, CacheBytes: soakCacheBytes(g.NumEdges()),
	}, s.Profile)
	if err != nil {
		return nil, err
	}
	defer done()
	disk := e.Store().Disk()
	t := metrics.NewTable("Soak: cold-cache PageRank (livejournal stand-in, cache = edge bytes/16)",
		"round", "elapsed(s)", "disk-read(MB)", "read/iter(MB)")
	const rounds = 3
	for r := 1; r <= rounds; r++ {
		before := disk.Stats().Snapshot()
		res, err := s.pagerank(e)
		if err != nil {
			return nil, err
		}
		d := disk.Stats().Snapshot().Sub(before)
		if d.BytesRead == 0 {
			return nil, fmt.Errorf("bench: soak round %d read no disk bytes: cache budget did not overflow", r)
		}
		mb := float64(d.BytesRead) / (1 << 20)
		iters := res.Iterations
		if iters == 0 {
			iters = 1
		}
		t.AddRow(r, res.Elapsed.Seconds(), mb, mb/float64(iters))
		s.logf("soak round %d: %.3fs, %.1f MB read", r, res.Elapsed.Seconds(), mb)
	}
	return t, nil
}
