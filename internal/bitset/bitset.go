// Package bitset provides a fixed-size bit set used by the engine for
// interval activity tracking, vertex masks, and BFS-style frontiers.
//
// The zero value of Set is an empty set of length zero; use New to create a
// set sized for a vertex range. All methods panic on out-of-range indices,
// matching the behaviour of slice indexing.
package bitset

import (
	"fmt"
	"math/bits"
)

const wordBits = 64

// Set is a fixed-length bit set.
type Set struct {
	words []uint64
	n     int
}

// New returns a Set capable of holding n bits, all initially clear.
func New(n int) *Set {
	if n < 0 {
		panic("bitset: negative length")
	}
	return &Set{words: make([]uint64, (n+wordBits-1)/wordBits), n: n}
}

// Len returns the number of bits the set can hold.
func (s *Set) Len() int { return s.n }

func (s *Set) check(i int) {
	if i < 0 || i >= s.n {
		panic(fmt.Sprintf("bitset: index %d out of range [0,%d)", i, s.n))
	}
}

// Set sets bit i.
func (s *Set) Set(i int) {
	s.check(i)
	s.words[i/wordBits] |= 1 << (uint(i) % wordBits)
}

// Clear clears bit i.
func (s *Set) Clear(i int) {
	s.check(i)
	s.words[i/wordBits] &^= 1 << (uint(i) % wordBits)
}

// Test reports whether bit i is set.
func (s *Set) Test(i int) bool {
	s.check(i)
	return s.words[i/wordBits]&(1<<(uint(i)%wordBits)) != 0
}

// SetAll sets every bit.
func (s *Set) SetAll() {
	for i := range s.words {
		s.words[i] = ^uint64(0)
	}
	s.trim()
}

// ClearAll clears every bit.
func (s *Set) ClearAll() {
	for i := range s.words {
		s.words[i] = 0
	}
}

// trim zeroes the unused high bits of the last word so Count and Any stay
// correct after SetAll or bulk operations.
func (s *Set) trim() {
	if rem := s.n % wordBits; rem != 0 && len(s.words) > 0 {
		s.words[len(s.words)-1] &= (1 << uint(rem)) - 1
	}
}

// Count returns the number of set bits.
func (s *Set) Count() int {
	c := 0
	for _, w := range s.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Any reports whether at least one bit is set.
func (s *Set) Any() bool {
	for _, w := range s.words {
		if w != 0 {
			return true
		}
	}
	return false
}

// None reports whether no bit is set.
func (s *Set) None() bool { return !s.Any() }

// AnyInRange reports whether any bit in [lo, hi) is set.
func (s *Set) AnyInRange(lo, hi int) bool {
	if lo < 0 || hi > s.n || lo > hi {
		panic(fmt.Sprintf("bitset: bad range [%d,%d) of %d", lo, hi, s.n))
	}
	for i := lo; i < hi; {
		if i%wordBits == 0 && i+wordBits <= hi {
			if s.words[i/wordBits] != 0 {
				return true
			}
			i += wordBits
			continue
		}
		if s.Test(i) {
			return true
		}
		i++
	}
	return false
}

// Or sets s to the union of s and t. The sets must have equal length.
func (s *Set) Or(t *Set) {
	if s.n != t.n {
		panic("bitset: length mismatch")
	}
	for i := range s.words {
		s.words[i] |= t.words[i]
	}
}

// And sets s to the intersection of s and t. The sets must have equal length.
func (s *Set) And(t *Set) {
	if s.n != t.n {
		panic("bitset: length mismatch")
	}
	for i := range s.words {
		s.words[i] &= t.words[i]
	}
}

// AndNot clears in s every bit that is set in t.
func (s *Set) AndNot(t *Set) {
	if s.n != t.n {
		panic("bitset: length mismatch")
	}
	for i := range s.words {
		s.words[i] &^= t.words[i]
	}
}

// CopyFrom overwrites s with the contents of t. The sets must have equal
// length.
func (s *Set) CopyFrom(t *Set) {
	if s.n != t.n {
		panic("bitset: length mismatch")
	}
	copy(s.words, t.words)
}

// Clone returns a copy of s.
func (s *Set) Clone() *Set {
	c := New(s.n)
	copy(c.words, s.words)
	return c
}

// NextSet returns the index of the first set bit at or after i, or -1 if
// there is none.
func (s *Set) NextSet(i int) int {
	if i < 0 {
		i = 0
	}
	if i >= s.n {
		return -1
	}
	w := i / wordBits
	word := s.words[w] >> (uint(i) % wordBits)
	if word != 0 {
		return i + bits.TrailingZeros64(word)
	}
	for w++; w < len(s.words); w++ {
		if s.words[w] != 0 {
			return w*wordBits + bits.TrailingZeros64(s.words[w])
		}
	}
	return -1
}

// ForEach calls fn for every set bit in ascending order.
func (s *Set) ForEach(fn func(i int)) {
	for i := s.NextSet(0); i >= 0; i = s.NextSet(i + 1) {
		fn(i)
	}
}
