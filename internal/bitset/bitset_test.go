package bitset

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBasicOps(t *testing.T) {
	s := New(130) // crosses two word boundaries
	if s.Len() != 130 {
		t.Fatalf("Len = %d, want 130", s.Len())
	}
	if s.Any() {
		t.Fatal("new set should be empty")
	}
	s.Set(0)
	s.Set(63)
	s.Set(64)
	s.Set(129)
	for _, i := range []int{0, 63, 64, 129} {
		if !s.Test(i) {
			t.Fatalf("bit %d should be set", i)
		}
	}
	if s.Count() != 4 {
		t.Fatalf("Count = %d, want 4", s.Count())
	}
	s.Clear(63)
	if s.Test(63) {
		t.Fatal("bit 63 should be clear")
	}
	if s.Count() != 3 {
		t.Fatalf("Count = %d, want 3", s.Count())
	}
}

func TestSetAllClearAll(t *testing.T) {
	for _, n := range []int{0, 1, 63, 64, 65, 100, 128} {
		s := New(n)
		s.SetAll()
		if s.Count() != n {
			t.Fatalf("n=%d: SetAll Count = %d", n, s.Count())
		}
		if n > 0 && s.None() {
			t.Fatalf("n=%d: None after SetAll", n)
		}
		s.ClearAll()
		if s.Any() {
			t.Fatalf("n=%d: Any after ClearAll", n)
		}
	}
}

func TestOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(10).Set(10)
}

func TestNegativeLengthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(-1)
}

func TestNextSetAndForEach(t *testing.T) {
	s := New(200)
	want := []int{3, 64, 65, 127, 128, 199}
	for _, i := range want {
		s.Set(i)
	}
	var got []int
	s.ForEach(func(i int) { got = append(got, i) })
	if len(got) != len(want) {
		t.Fatalf("ForEach visited %v, want %v", got, want)
	}
	for k := range want {
		if got[k] != want[k] {
			t.Fatalf("ForEach visited %v, want %v", got, want)
		}
	}
	if s.NextSet(200) != -1 {
		t.Fatal("NextSet past end should be -1")
	}
	if s.NextSet(-5) != 3 {
		t.Fatal("NextSet with negative start should clamp")
	}
}

func TestAnyInRange(t *testing.T) {
	s := New(300)
	s.Set(150)
	cases := []struct {
		lo, hi int
		want   bool
	}{
		{0, 150, false}, {150, 151, true}, {0, 300, true},
		{151, 300, false}, {64, 192, true}, {128, 150, false},
	}
	for _, c := range cases {
		if got := s.AnyInRange(c.lo, c.hi); got != c.want {
			t.Errorf("AnyInRange(%d,%d) = %v, want %v", c.lo, c.hi, got, c.want)
		}
	}
}

func TestAlgebra(t *testing.T) {
	a := New(100)
	b := New(100)
	a.Set(1)
	a.Set(50)
	b.Set(50)
	b.Set(99)
	u := a.Clone()
	u.Or(b)
	if u.Count() != 3 || !u.Test(1) || !u.Test(50) || !u.Test(99) {
		t.Fatal("Or wrong")
	}
	i := a.Clone()
	i.And(b)
	if i.Count() != 1 || !i.Test(50) {
		t.Fatal("And wrong")
	}
	d := a.Clone()
	d.AndNot(b)
	if d.Count() != 1 || !d.Test(1) {
		t.Fatal("AndNot wrong")
	}
	c := New(100)
	c.CopyFrom(a)
	if c.Count() != a.Count() || !c.Test(1) || !c.Test(50) {
		t.Fatal("CopyFrom wrong")
	}
}

func TestLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(10).Or(New(11))
}

// TestQuickCountMatchesMap cross-checks against a map-based model under
// random operation sequences.
func TestQuickCountMatchesMap(t *testing.T) {
	f := func(seed int64, nOps uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		const n = 257
		s := New(n)
		model := map[int]bool{}
		for k := 0; k < int(nOps); k++ {
			i := rng.Intn(n)
			if rng.Intn(2) == 0 {
				s.Set(i)
				model[i] = true
			} else {
				s.Clear(i)
				delete(model, i)
			}
		}
		if s.Count() != len(model) {
			return false
		}
		for i := 0; i < n; i++ {
			if s.Test(i) != model[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickDeMorgan checks ¬(a ∪ b) = ¬a ∩ ¬b over random sets via
// AndNot identities: (u AndNot a) AndNot b == u AndNot (a Or b).
func TestQuickDeMorgan(t *testing.T) {
	f := func(aBits, bBits []uint16) bool {
		const n = 1 << 16
		a, b := New(n), New(n)
		for _, i := range aBits {
			a.Set(int(i))
		}
		for _, i := range bBits {
			b.Set(int(i))
		}
		lhs := New(n)
		lhs.SetAll()
		lhs.AndNot(a)
		lhs.AndNot(b)
		ab := a.Clone()
		ab.Or(b)
		rhs := New(n)
		rhs.SetAll()
		rhs.AndNot(ab)
		if lhs.Count() != rhs.Count() {
			return false
		}
		rhs.AndNot(lhs)
		return rhs.None()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
