// Package blockcache provides a process-wide, reference-counted,
// memory-budgeted cache of decoded sub-shard blocks, shared by every
// engine run on a store.
//
// NXgraph's performance argument is about minimizing and streaming
// sub-shard I/O; the serving layer's is about answering many queries on
// the same graph. Before this cache, every engine run privately re-read
// and re-decoded the sub-shards it needed, so concurrent jobs on one
// graph each held a duplicate copy of the edge set and iterative
// strategies re-paid decode cost every iteration. The cache makes
// decoded blocks a shared, budgeted resource:
//
//   - a Get hit returns a pinned handle to the already-decoded block;
//   - a miss runs the caller's loader exactly once per key
//     (concurrent misses coalesce on the in-flight load) and publishes
//     the result;
//   - Release unpins; unpinned blocks are evicted in LRU order whenever
//     resident bytes exceed the budget. Pinned blocks are never evicted,
//     so a pipeline that pins the next batch while computing on the
//     current one may transiently exceed the budget by the pinned set.
//
// Keys carry a store generation: when a store's content is replaced
// (background compaction swapping a rebuilt store in), the owner
// allocates a fresh generation for the new store and invalidates the old
// one, so a block decoded from the retired store can never be served to
// a run over its replacement. Generations are allocated process-wide by
// NextGeneration, which lets many stores share one cache (one budget)
// without key collisions.
//
// Values are opaque to the cache (`any` plus an explicit byte size), so
// the same cache holds CSR sub-shards and the source-sorted ablation's
// flattened form side by side.
package blockcache

import (
	"container/list"
	"fmt"
	"sync"
	"sync/atomic"
)

// Key identifies one decoded block: sub-shard (I, J) of the given
// replica of the store generation Gen. Flat distinguishes the
// source-sorted (Table IV ablation) form from the CSR form of the same
// sub-shard.
type Key struct {
	Gen       uint64
	I, J      int
	Transpose bool
	Flat      bool
}

// generation is the process-wide store-generation counter.
var generation atomic.Uint64

// NextGeneration allocates a fresh, process-unique store generation.
// Every opened store (and every compaction-swapped replacement) gets its
// own, so one shared cache can serve many stores without aliasing.
func NextGeneration() uint64 { return generation.Add(1) }

// entry is one cached block. An entry is born with refs = 1 (the loading
// Get); waiters block on ready. refs > 0 pins the entry; at refs == 0 it
// moves to the LRU list and becomes evictable. doomed marks an entry
// whose generation was invalidated while pinned: it is already removed
// from the map (no future Get can find it) and its bytes are returned on
// the final release.
type entry struct {
	key   Key
	ready chan struct{}
	val   any
	size  int64
	err   error

	refs   int
	doomed bool
	elem   *list.Element // non-nil iff refs == 0 and the entry is evictable
}

// Stats is a point-in-time copy of the cache counters.
type Stats struct {
	// Hits counts Gets served from a resident or in-flight block
	// (waiting on another Get's load counts as a hit: only one decode
	// happened).
	Hits int64
	// Misses counts Gets that ran the loader.
	Misses int64
	// Evictions counts blocks dropped to fit the budget.
	Evictions int64
	// Invalidations counts blocks dropped by generation invalidation.
	Invalidations int64
	// Blocks is the number of resident blocks (gauge).
	Blocks int64
	// ResidentBytes is the decoded bytes held, pinned or not (gauge).
	ResidentBytes int64
	// PinnedBytes is the subset of ResidentBytes held by unreleased
	// handles (gauge).
	PinnedBytes int64
}

// HitRatio returns hits / (hits + misses), or 0 before any traffic.
func (s Stats) HitRatio() float64 {
	if s.Hits+s.Misses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Hits+s.Misses)
}

// Summary renders the one-line human summary the CLIs print, or ""
// before any traffic.
func (s Stats) Summary() string {
	if s.Hits+s.Misses == 0 {
		return ""
	}
	return fmt.Sprintf("block cache: %d hits, %d misses (%.1f%% hit ratio), %d evictions",
		s.Hits, s.Misses, 100*s.HitRatio(), s.Evictions)
}

// Cache is the shared block cache. The zero value is not usable; use New.
type Cache struct {
	budget int64 // < 0 unlimited; >= 0 resident-byte budget (0 = pins only)

	mu       sync.Mutex
	entries  map[Key]*entry
	lru      *list.List // unpinned entries, most recently used at front
	resident int64
	pinned   int64

	hits, misses, evictions, invalidations atomic.Int64
}

// New creates a cache with the given resident-byte budget. A negative
// budget means unlimited; zero keeps nothing beyond the currently pinned
// blocks (caching disabled, but loads still coalesce and handles still
// pin, so pipelined prefetch works unchanged).
func New(budget int64) *Cache {
	return &Cache{
		budget:  budget,
		entries: make(map[Key]*entry),
		lru:     list.New(),
	}
}

// Budget returns the configured resident-byte budget (< 0 = unlimited).
func (c *Cache) Budget() int64 { return c.budget }

// Handle is a pinned reference to a cached block. The block cannot be
// evicted until Release; the value must not be mutated (it is shared by
// every concurrent holder).
type Handle struct {
	c        *Cache
	e        *entry
	released atomic.Bool
}

// Value returns the cached block.
func (h *Handle) Value() any { return h.e.val }

// Size returns the block's accounted byte size.
func (h *Handle) Size() int64 { return h.e.size }

// Release unpins the block. Releasing twice is a no-op.
func (h *Handle) Release() {
	if h == nil || !h.released.CompareAndSwap(false, true) {
		return
	}
	h.c.mu.Lock()
	h.c.unref(h.e)
	h.c.mu.Unlock()
}

// Get returns a pinned handle for key, running load to produce the block
// on a miss. Concurrent Gets for the same key coalesce: exactly one runs
// load, the rest wait and share the result. A load error is returned to
// every waiter and nothing is cached.
func (c *Cache) Get(key Key, load func() (val any, size int64, err error)) (*Handle, error) {
	c.mu.Lock()
	if e, ok := c.entries[key]; ok {
		c.ref(e)
		c.mu.Unlock()
		<-e.ready
		if e.err != nil {
			c.mu.Lock()
			e.refs-- // never resident: no accounting to unwind
			c.mu.Unlock()
			return nil, e.err
		}
		c.hits.Add(1)
		return &Handle{c: c, e: e}, nil
	}
	e := &entry{key: key, ready: make(chan struct{}), refs: 1}
	c.entries[key] = e
	c.mu.Unlock()

	val, size, err := load()

	c.mu.Lock()
	e.val, e.size, e.err = val, size, err
	if err != nil {
		// Only remove the mapping if it is still ours — an invalidation
		// may have dropped it and a successor entry may own the key now.
		if c.entries[key] == e {
			delete(c.entries, key)
		}
		e.refs--
	} else {
		c.resident += size
		c.pinned += size
		c.misses.Add(1)
		c.evictLocked()
	}
	c.mu.Unlock()
	close(e.ready)
	if err != nil {
		return nil, err
	}
	return &Handle{c: c, e: e}, nil
}

// ref pins e. Caller holds mu.
func (c *Cache) ref(e *entry) {
	if e.refs == 0 {
		// Entries at refs == 0 are always ready and on the LRU list.
		c.lru.Remove(e.elem)
		e.elem = nil
		c.pinned += e.size
	}
	e.refs++
}

// unref unpins e, retiring it if doomed or enqueueing it for eviction.
// Caller holds mu.
func (c *Cache) unref(e *entry) {
	e.refs--
	if e.refs > 0 || e.err != nil {
		return
	}
	c.pinned -= e.size
	if e.doomed {
		c.resident -= e.size
		return
	}
	e.elem = c.lru.PushFront(e)
	c.evictLocked()
}

// evictLocked drops least-recently-used unpinned entries until resident
// bytes fit the budget. Caller holds mu.
func (c *Cache) evictLocked() {
	if c.budget < 0 {
		return
	}
	for c.resident > c.budget {
		el := c.lru.Back()
		if el == nil {
			return // everything else is pinned; transient overage
		}
		e := el.Value.(*entry)
		c.lru.Remove(el)
		e.elem = nil
		delete(c.entries, e.key)
		c.resident -= e.size
		c.evictions.Add(1)
	}
}

// InvalidateGeneration drops every block of the given store generation.
// Unpinned blocks are freed immediately; pinned ones are unmapped now
// (no future Get can return them) and their bytes are returned when the
// last holder releases. Callers invalidate after ensuring no new run
// will request the generation (the server does this under the graph's
// run lock during a compaction swap).
func (c *Cache) InvalidateGeneration(gen uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for k, e := range c.entries {
		if k.Gen != gen {
			continue
		}
		delete(c.entries, k)
		c.invalidations.Add(1)
		if e.refs == 0 {
			c.lru.Remove(e.elem)
			e.elem = nil
			c.resident -= e.size
		} else {
			e.doomed = true
		}
	}
}

// Stats returns a snapshot of the cache counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	blocks := int64(len(c.entries))
	resident, pinned := c.resident, c.pinned
	c.mu.Unlock()
	return Stats{
		Hits:          c.hits.Load(),
		Misses:        c.misses.Load(),
		Evictions:     c.evictions.Load(),
		Invalidations: c.invalidations.Load(),
		Blocks:        blocks,
		ResidentBytes: resident,
		PinnedBytes:   pinned,
	}
}
