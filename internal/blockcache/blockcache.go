// Package blockcache provides a process-wide, reference-counted,
// memory-budgeted cache of decoded sub-shard blocks, shared by every
// engine run on a store.
//
// NXgraph's performance argument is about minimizing and streaming
// sub-shard I/O; the serving layer's is about answering many queries on
// the same graph. Before this cache, every engine run privately re-read
// and re-decoded the sub-shards it needed, so concurrent jobs on one
// graph each held a duplicate copy of the edge set and iterative
// strategies re-paid decode cost every iteration. The cache makes
// decoded blocks a shared, budgeted resource:
//
//   - a Get hit returns a pinned handle to the already-decoded block;
//   - a miss runs the caller's loader exactly once per key
//     (concurrent misses coalesce on the in-flight load) and publishes
//     the result;
//   - Release unpins; unpinned blocks are evicted in LRU order whenever
//     resident bytes exceed the budget. Pinned blocks are never evicted,
//     so a pipeline that pins the next batch while computing on the
//     current one may transiently exceed the budget by the pinned set.
//
// With the v2 store format the encoded blob is 3-4x smaller than the
// decoded block, which makes holding encoded bytes a much cheaper way to
// avoid disk than holding decoded ones. GetTiered exploits this with a
// second tier: L1 holds decoded blocks (as above), L2 holds the raw
// encoded blobs keyed without the decoded-form bit, so the CSR and flat
// forms of one sub-shard share a single blob. An L1 miss that finds its
// blob in L2 re-decodes from RAM instead of re-reading from disk; only an
// L2 miss touches the store. Each tier has its own budget and LRU; the
// blob is pinned (refcounted) for the duration of the decode, so L2
// eviction can never free bytes a decode is still reading.
//
// Keys carry a store generation: when a store's content is replaced
// (background compaction swapping a rebuilt store in), the owner
// allocates a fresh generation for the new store and invalidates the old
// one, so a block decoded from the retired store can never be served to
// a run over its replacement. Generations are allocated process-wide by
// NextGeneration, which lets many stores share one cache (one budget)
// without key collisions.
//
// Values are opaque to the cache (`any` plus an explicit byte size), so
// the same cache holds CSR sub-shards and the source-sorted ablation's
// flattened form side by side.
package blockcache

import (
	"container/list"
	"fmt"
	"sync"
	"sync/atomic"
)

// Key identifies one decoded block: sub-shard (I, J) of the given
// replica of the store generation Gen. Flat distinguishes the
// source-sorted (Table IV ablation) form from the CSR form of the same
// sub-shard.
type Key struct {
	Gen       uint64
	I, J      int
	Transpose bool
	Flat      bool
}

// L2Key identifies one encoded blob in the L2 tier. It is Key without
// the Flat bit: the CSR and source-sorted forms of a sub-shard decode
// from the same bytes, so they share one L2 entry.
type L2Key struct {
	Gen       uint64
	I, J      int
	Transpose bool
}

func (k Key) l2() L2Key {
	return L2Key{Gen: k.Gen, I: k.I, J: k.J, Transpose: k.Transpose}
}

// generation is the process-wide store-generation counter.
var generation atomic.Uint64

// NextGeneration allocates a fresh, process-unique store generation.
// Every opened store (and every compaction-swapped replacement) gets its
// own, so one shared cache can serve many stores without aliasing.
func NextGeneration() uint64 { return generation.Add(1) }

// entry is one cached block. An entry is born with refs = 1 (the loading
// Get); waiters block on ready. refs > 0 pins the entry; at refs == 0 it
// moves to the LRU list and becomes evictable. doomed marks an entry
// whose generation was invalidated while pinned: it is already removed
// from the map (no future Get can find it) and its bytes are returned on
// the final release.
type entry struct {
	key   Key
	ready chan struct{}
	val   any
	size  int64
	err   error

	refs   int
	doomed bool
	elem   *list.Element // non-nil iff refs == 0 and the entry is evictable
}

// l2entry is one cached encoded blob. It has the same lifecycle as entry
// (born pinned by the loading GetTiered, waiters block on ready, refs ==
// 0 moves it to the L2 LRU, doomed defers the byte return of an
// invalidated-while-pinned blob to the final unref).
type l2entry struct {
	key   L2Key
	ready chan struct{}
	blob  []byte
	size  int64
	err   error

	refs   int
	doomed bool
	elem   *list.Element
}

// Stats is a point-in-time copy of the cache counters.
type Stats struct {
	// Hits counts Gets served from a resident or in-flight block
	// (waiting on another Get's load counts as a hit: only one decode
	// happened).
	Hits int64
	// L2Hits counts L1 misses whose encoded blob was served from RAM
	// (resident or in-flight in the L2 tier) — a decode happened but no
	// disk read.
	L2Hits int64
	// Misses counts Gets that went to disk.
	Misses int64
	// Evictions counts decoded blocks dropped to fit the L1 budget.
	Evictions int64
	// L2Evictions counts encoded blobs dropped to fit the L2 budget.
	L2Evictions int64
	// Invalidations counts blocks and blobs dropped by generation
	// invalidation, across both tiers.
	Invalidations int64
	// Blocks is the number of resident decoded blocks (gauge).
	Blocks int64
	// L2Blocks is the number of resident encoded blobs (gauge).
	L2Blocks int64
	// ResidentBytes is the decoded bytes held, pinned or not (gauge).
	ResidentBytes int64
	// PinnedBytes is the subset of ResidentBytes held by unreleased
	// handles (gauge).
	PinnedBytes int64
	// L2ResidentBytes is the encoded bytes held in the L2 tier (gauge).
	L2ResidentBytes int64
	// L2PinnedBytes is the subset of L2ResidentBytes pinned by in-flight
	// decodes (gauge).
	L2PinnedBytes int64
}

// HitRatio returns the fraction of lookups served without a decode:
// hits / (hits + l2hits + misses), or 0 before any traffic. L2 hits are
// in the denominator only — they saved the disk read but still paid the
// decode.
func (s Stats) HitRatio() float64 {
	total := s.Hits + s.L2Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// Summary renders the one-line human summary the CLIs print, or ""
// before any traffic. The L2 clause appears only when the tier saw
// traffic, so single-tier caches keep their old summary.
func (s Stats) Summary() string {
	if s.Hits+s.L2Hits+s.Misses == 0 {
		return ""
	}
	out := fmt.Sprintf("block cache: %d hits, %d misses (%.1f%% hit ratio), %d evictions",
		s.Hits, s.Misses, 100*s.HitRatio(), s.Evictions)
	if s.L2Hits > 0 || s.L2Blocks > 0 || s.L2Evictions > 0 {
		out += fmt.Sprintf("; L2: %d hits, %d blobs resident (%d B), %d evictions",
			s.L2Hits, s.L2Blocks, s.L2ResidentBytes, s.L2Evictions)
	}
	return out
}

// Cache is the shared block cache. The zero value is not usable; use New
// or NewTiered.
type Cache struct {
	budget   int64 // < 0 unlimited; >= 0 resident-byte budget (0 = pins only)
	l2budget int64 // 0 disables the L2 tier; < 0 unlimited

	mu       sync.Mutex
	entries  map[Key]*entry
	lru      *list.List // unpinned entries, most recently used at front
	resident int64
	pinned   int64

	l2entries  map[L2Key]*l2entry
	l2lru      *list.List
	l2resident int64
	l2pinned   int64

	hits, l2hits, misses                  atomic.Int64
	evictions, l2evictions, invalidations atomic.Int64
}

// New creates a single-tier cache with the given resident-byte budget. A
// negative budget means unlimited; zero keeps nothing beyond the
// currently pinned blocks (caching disabled, but loads still coalesce
// and handles still pin, so pipelined prefetch works unchanged).
func New(budget int64) *Cache {
	return NewTiered(budget, 0)
}

// NewTiered creates a cache with separate budgets for decoded blocks
// (l1) and encoded blobs (l2). l2 == 0 disables the encoded tier —
// GetTiered then behaves exactly like Get with a composed loader.
func NewTiered(l1, l2 int64) *Cache {
	return &Cache{
		budget:    l1,
		l2budget:  l2,
		entries:   make(map[Key]*entry),
		lru:       list.New(),
		l2entries: make(map[L2Key]*l2entry),
		l2lru:     list.New(),
	}
}

// DefaultL2Frac is the fraction of a combined cache budget given to the
// encoded tier when the caller does not choose one. Encoded blobs are
// 3-4x denser than decoded blocks, so a quarter of the bytes holds
// roughly as many sub-shards as the decoded three quarters.
const DefaultL2Frac = 0.25

// SplitBudget divides a combined cache budget between the tiers. frac is
// the L2 share: 0 picks DefaultL2Frac, negative disables L2, and values
// are capped at 0.9 so L1 always keeps working room. An unlimited
// (negative) total disables L2 outright — with no eviction pressure in
// L1 the encoded tier would only duplicate bytes.
func SplitBudget(total int64, frac float64) (l1, l2 int64) {
	if total < 0 || frac < 0 {
		return total, 0
	}
	if frac == 0 {
		frac = DefaultL2Frac
	}
	if frac > 0.9 {
		frac = 0.9
	}
	l2 = int64(float64(total) * frac)
	return total - l2, l2
}

// Budget returns the configured L1 resident-byte budget (< 0 = unlimited).
func (c *Cache) Budget() int64 { return c.budget }

// L2Budget returns the configured L2 budget (0 = tier disabled).
func (c *Cache) L2Budget() int64 { return c.l2budget }

// Handle is a pinned reference to a cached block. The block cannot be
// evicted until Release; the value must not be mutated (it is shared by
// every concurrent holder).
type Handle struct {
	c        *Cache
	e        *entry
	released atomic.Bool
}

// Value returns the cached block.
func (h *Handle) Value() any { return h.e.val }

// Size returns the block's accounted byte size.
func (h *Handle) Size() int64 { return h.e.size }

// Release unpins the block. Releasing twice is a no-op.
func (h *Handle) Release() {
	if h == nil || !h.released.CompareAndSwap(false, true) {
		return
	}
	h.c.mu.Lock()
	h.c.unref(h.e)
	h.c.mu.Unlock()
}

// Get returns a pinned handle for key, running load to produce the block
// on a miss. Concurrent Gets for the same key coalesce: exactly one runs
// load, the rest wait and share the result. A load error is returned to
// every waiter and nothing is cached.
func (c *Cache) Get(key Key, load func() (val any, size int64, err error)) (*Handle, error) {
	c.mu.Lock()
	if e, ok := c.entries[key]; ok {
		c.ref(e)
		c.mu.Unlock()
		<-e.ready
		if e.err != nil {
			c.mu.Lock()
			e.refs-- // never resident: no accounting to unwind
			c.mu.Unlock()
			return nil, e.err
		}
		c.hits.Add(1)
		return &Handle{c: c, e: e}, nil
	}
	e := &entry{key: key, ready: make(chan struct{}), refs: 1}
	c.entries[key] = e
	c.mu.Unlock()

	val, size, err := load()

	c.mu.Lock()
	e.val, e.size, e.err = val, size, err
	if err != nil {
		// Only remove the mapping if it is still ours — an invalidation
		// may have dropped it and a successor entry may own the key now.
		if c.entries[key] == e {
			delete(c.entries, key)
		}
		e.refs--
	} else {
		c.resident += size
		c.pinned += size
		c.misses.Add(1)
		c.evictLocked()
	}
	c.mu.Unlock()
	close(e.ready)
	if err != nil {
		return nil, err
	}
	return &Handle{c: c, e: e}, nil
}

// GetTiered returns a pinned handle for key, consulting the encoded
// tier between the decoded tier and disk: an L1 hit returns the decoded
// block; an L1 miss with the blob in L2 runs decode on the in-RAM bytes;
// only an L2 miss runs loadRaw (the disk read). Both tiers single-flight
// — concurrent callers coalesce per Key on the decode and per L2Key on
// the disk read, so two decoded forms of one sub-shard share one read.
// The blob stays pinned until decode returns, so eviction can never free
// it mid-decode. With the L2 tier disabled this is Get with a composed
// loader.
func (c *Cache) GetTiered(key Key, loadRaw func() ([]byte, error), decode func(blob []byte) (val any, size int64, err error)) (*Handle, error) {
	if c.l2budget == 0 {
		return c.Get(key, func() (any, int64, error) {
			blob, err := loadRaw()
			if err != nil {
				return nil, 0, err
			}
			return decode(blob)
		})
	}

	c.mu.Lock()
	if e, ok := c.entries[key]; ok {
		c.ref(e)
		c.mu.Unlock()
		<-e.ready
		if e.err != nil {
			c.mu.Lock()
			e.refs--
			c.mu.Unlock()
			return nil, e.err
		}
		c.hits.Add(1)
		return &Handle{c: c, e: e}, nil
	}
	// L1 miss: claim the key (single-flight for this decoded form), then
	// fetch the blob with an L2 ref held across the decode.
	e := &entry{key: key, ready: make(chan struct{}), refs: 1}
	c.entries[key] = e

	le, err := c.l2get(key.l2(), loadRaw) // unlocks c.mu
	var val any
	var size int64
	if err == nil {
		val, size, err = decode(le.blob)
		c.mu.Lock()
		c.l2unref(le)
		c.mu.Unlock()
	}

	c.mu.Lock()
	e.val, e.size, e.err = val, size, err
	if err != nil {
		if c.entries[key] == e {
			delete(c.entries, key)
		}
		e.refs--
	} else {
		c.resident += size
		c.pinned += size
		c.evictLocked()
	}
	c.mu.Unlock()
	close(e.ready)
	if err != nil {
		return nil, err
	}
	return &Handle{c: c, e: e}, nil
}

// l2get returns the blob entry for k with one reference held by the
// caller, loading it via loadRaw on an L2 miss. Called with c.mu held;
// returns with it released. On error no reference is held.
func (c *Cache) l2get(k L2Key, loadRaw func() ([]byte, error)) (*l2entry, error) {
	if le, ok := c.l2entries[k]; ok {
		c.l2ref(le)
		c.mu.Unlock()
		<-le.ready
		if le.err != nil {
			c.mu.Lock()
			le.refs--
			c.mu.Unlock()
			return nil, le.err
		}
		// Served from RAM even if we waited on another caller's disk
		// read: only one read happened.
		c.l2hits.Add(1)
		return le, nil
	}
	le := &l2entry{key: k, ready: make(chan struct{}), refs: 1}
	c.l2entries[k] = le
	c.mu.Unlock()

	blob, err := loadRaw()

	c.mu.Lock()
	le.blob, le.size, le.err = blob, int64(len(blob)), err
	if err != nil {
		if c.l2entries[k] == le {
			delete(c.l2entries, k)
		}
		le.refs--
	} else {
		c.l2resident += le.size
		c.l2pinned += le.size
		c.misses.Add(1)
		c.evictL2Locked()
	}
	c.mu.Unlock()
	close(le.ready)
	if err != nil {
		return nil, err
	}
	return le, nil
}

// ref pins e. Caller holds mu.
func (c *Cache) ref(e *entry) {
	if e.refs == 0 {
		// Entries at refs == 0 are always ready and on the LRU list.
		c.lru.Remove(e.elem)
		e.elem = nil
		c.pinned += e.size
	}
	e.refs++
}

// unref unpins e, retiring it if doomed or enqueueing it for eviction.
// Caller holds mu.
func (c *Cache) unref(e *entry) {
	e.refs--
	if e.refs > 0 || e.err != nil {
		return
	}
	c.pinned -= e.size
	if e.doomed {
		c.resident -= e.size
		return
	}
	e.elem = c.lru.PushFront(e)
	c.evictLocked()
}

// evictLocked drops least-recently-used unpinned entries until resident
// bytes fit the budget. Caller holds mu.
func (c *Cache) evictLocked() {
	if c.budget < 0 {
		return
	}
	for c.resident > c.budget {
		el := c.lru.Back()
		if el == nil {
			return // everything else is pinned; transient overage
		}
		e := el.Value.(*entry)
		c.lru.Remove(el)
		e.elem = nil
		delete(c.entries, e.key)
		c.resident -= e.size
		c.evictions.Add(1)
	}
}

// l2ref pins le. Caller holds mu.
func (c *Cache) l2ref(le *l2entry) {
	if le.refs == 0 {
		c.l2lru.Remove(le.elem)
		le.elem = nil
		c.l2pinned += le.size
	}
	le.refs++
}

// l2unref unpins le. Caller holds mu.
func (c *Cache) l2unref(le *l2entry) {
	le.refs--
	if le.refs > 0 || le.err != nil {
		return
	}
	c.l2pinned -= le.size
	if le.doomed {
		c.l2resident -= le.size
		return
	}
	le.elem = c.l2lru.PushFront(le)
	c.evictL2Locked()
}

// evictL2Locked drops least-recently-used unpinned blobs until the tier
// fits its budget. Blobs pinned by an in-flight decode are skipped the
// same way pinned blocks are in L1. Caller holds mu.
func (c *Cache) evictL2Locked() {
	if c.l2budget < 0 {
		return
	}
	for c.l2resident > c.l2budget {
		el := c.l2lru.Back()
		if el == nil {
			return
		}
		le := el.Value.(*l2entry)
		c.l2lru.Remove(el)
		le.elem = nil
		delete(c.l2entries, le.key)
		c.l2resident -= le.size
		c.l2evictions.Add(1)
	}
}

// InvalidateGeneration drops every block of the given store generation.
// Unpinned blocks are freed immediately; pinned ones are unmapped now
// (no future Get can return them) and their bytes are returned when the
// last holder releases. Callers invalidate after ensuring no new run
// will request the generation (the server does this under the graph's
// run lock during a compaction swap).
func (c *Cache) InvalidateGeneration(gen uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for k, e := range c.entries {
		if k.Gen != gen {
			continue
		}
		delete(c.entries, k)
		c.invalidations.Add(1)
		if e.refs == 0 {
			c.lru.Remove(e.elem)
			e.elem = nil
			c.resident -= e.size
		} else {
			e.doomed = true
		}
	}
	for k, le := range c.l2entries {
		if k.Gen != gen {
			continue
		}
		delete(c.l2entries, k)
		c.invalidations.Add(1)
		if le.refs == 0 {
			c.l2lru.Remove(le.elem)
			le.elem = nil
			c.l2resident -= le.size
		} else {
			le.doomed = true
		}
	}
}

// Stats returns a snapshot of the cache counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	blocks := int64(len(c.entries))
	resident, pinned := c.resident, c.pinned
	l2blocks := int64(len(c.l2entries))
	l2resident, l2pinned := c.l2resident, c.l2pinned
	c.mu.Unlock()
	return Stats{
		Hits:            c.hits.Load(),
		L2Hits:          c.l2hits.Load(),
		Misses:          c.misses.Load(),
		Evictions:       c.evictions.Load(),
		L2Evictions:     c.l2evictions.Load(),
		Invalidations:   c.invalidations.Load(),
		Blocks:          blocks,
		L2Blocks:        l2blocks,
		ResidentBytes:   resident,
		PinnedBytes:     pinned,
		L2ResidentBytes: l2resident,
		L2PinnedBytes:   l2pinned,
	}
}
