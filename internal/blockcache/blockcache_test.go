package blockcache

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

func key(gen uint64, i, j int) Key { return Key{Gen: gen, I: i, J: j} }

// load returns a loader producing a distinguishable value of the given
// size and counting its invocations.
func load(calls *atomic.Int64, v string, size int64) func() (any, int64, error) {
	return func() (any, int64, error) {
		calls.Add(1)
		return v, size, nil
	}
}

func TestHitMissAndRefcounting(t *testing.T) {
	c := New(1 << 20)
	var calls atomic.Int64
	h1, err := c.Get(key(1, 0, 0), load(&calls, "a", 100))
	if err != nil {
		t.Fatal(err)
	}
	if h1.Value().(string) != "a" {
		t.Fatalf("Value = %v", h1.Value())
	}
	h2, err := c.Get(key(1, 0, 0), load(&calls, "b", 100))
	if err != nil {
		t.Fatal(err)
	}
	if h2.Value().(string) != "a" {
		t.Fatal("second Get did not share the cached block")
	}
	if calls.Load() != 1 {
		t.Fatalf("loader ran %d times, want 1", calls.Load())
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.ResidentBytes != 100 || st.PinnedBytes != 100 {
		t.Fatalf("stats = %+v", st)
	}
	h1.Release()
	if st := c.Stats(); st.PinnedBytes != 100 {
		t.Fatalf("pinned after one of two releases = %d, want 100", st.PinnedBytes)
	}
	h2.Release()
	h2.Release() // double release is a no-op
	st = c.Stats()
	if st.PinnedBytes != 0 || st.ResidentBytes != 100 || st.Blocks != 1 {
		t.Fatalf("stats after release = %+v", st)
	}
}

func TestLRUEvictionRespectsBudgetAndPins(t *testing.T) {
	c := New(250)
	var calls atomic.Int64
	var handles []*Handle
	for j := 0; j < 3; j++ {
		h, err := c.Get(key(1, 0, j), load(&calls, fmt.Sprint(j), 100))
		if err != nil {
			t.Fatal(err)
		}
		handles = append(handles, h)
	}
	// All three pinned: 300 resident bytes exceed the 250 budget, but
	// pins are never evicted.
	if st := c.Stats(); st.ResidentBytes != 300 || st.Evictions != 0 {
		t.Fatalf("pinned overage stats = %+v", st)
	}
	for _, h := range handles {
		h.Release()
	}
	// Releasing lets eviction trim to the budget, oldest-released first.
	st := c.Stats()
	if st.ResidentBytes != 200 || st.Blocks != 2 || st.Evictions != 1 {
		t.Fatalf("post-release stats = %+v", st)
	}
	// Block 0 was the first released, so it is the LRU victim: a re-Get
	// must miss.
	if _, err := c.Get(key(1, 0, 0), load(&calls, "0", 100)); err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 4 {
		t.Fatalf("loader calls = %d, want 4 (evicted block re-decoded)", calls.Load())
	}
}

func TestZeroBudgetKeepsNothingBeyondPins(t *testing.T) {
	c := New(0)
	var calls atomic.Int64
	h, err := c.Get(key(1, 0, 0), load(&calls, "a", 64))
	if err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st.ResidentBytes != 64 {
		t.Fatalf("pinned block not resident: %+v", st)
	}
	h.Release()
	if st := c.Stats(); st.ResidentBytes != 0 || st.Blocks != 0 {
		t.Fatalf("zero-budget cache retained a block: %+v", st)
	}
}

func TestLoadErrorNotCached(t *testing.T) {
	c := New(-1)
	boom := errors.New("boom")
	if _, err := c.Get(key(1, 0, 0), func() (any, int64, error) { return nil, 0, boom }); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	var calls atomic.Int64
	h, err := c.Get(key(1, 0, 0), load(&calls, "ok", 8))
	if err != nil || calls.Load() != 1 {
		t.Fatalf("retry after error: err=%v calls=%d", err, calls.Load())
	}
	h.Release()
	if st := c.Stats(); st.ResidentBytes != 8 || st.PinnedBytes != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestInvalidateGeneration(t *testing.T) {
	c := New(-1)
	var calls atomic.Int64
	hOld, _ := c.Get(key(1, 0, 0), load(&calls, "old-pinned", 10))
	hTmp, _ := c.Get(key(1, 0, 1), load(&calls, "old-idle", 10))
	hTmp.Release()
	hNew, _ := c.Get(key(2, 0, 0), load(&calls, "new", 10))

	c.InvalidateGeneration(1)

	// The unpinned gen-1 block is gone immediately; the pinned one is
	// unmapped (a re-Get misses) but its bytes stay until release.
	st := c.Stats()
	if st.Blocks != 1 || st.ResidentBytes != 20 || st.Invalidations != 2 {
		t.Fatalf("post-invalidate stats = %+v", st)
	}
	if _, err := c.Get(key(1, 0, 0), load(&calls, "old-reload", 10)); err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 4 {
		t.Fatalf("invalidated block served from cache (calls=%d)", calls.Load())
	}
	// The doomed block's value is still usable by its holder.
	if hOld.Value().(string) != "old-pinned" {
		t.Fatal("pinned value corrupted by invalidation")
	}
	hOld.Release()
	hNew.Release()
	st = c.Stats()
	// gen-2 block plus the post-invalidate reload remain.
	if st.ResidentBytes != 20 || st.PinnedBytes != 10 {
		t.Fatalf("final stats = %+v", st)
	}
}

func TestConcurrentGetSingleFlight(t *testing.T) {
	c := New(-1)
	var calls atomic.Int64
	var wg sync.WaitGroup
	start := make(chan struct{})
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			h, err := c.Get(key(1, 3, 4), load(&calls, "x", 1))
			if err != nil {
				t.Error(err)
				return
			}
			if h.Value().(string) != "x" {
				t.Error("wrong value")
			}
			h.Release()
		}()
	}
	close(start)
	wg.Wait()
	if calls.Load() != 1 {
		t.Fatalf("loader ran %d times under concurrency, want 1", calls.Load())
	}
}

// TestConcurrentChurn hammers Get/Release/Invalidate from many
// goroutines; run under -race it is the cache's memory-safety proof.
func TestConcurrentChurn(t *testing.T) {
	c := New(512) // small budget: constant eviction pressure
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for n := 0; n < 300; n++ {
				k := key(uint64(1+n%3), n%5, (n+w)%5)
				h, err := c.Get(k, func() (any, int64, error) { return n, 64, nil })
				if err != nil {
					t.Error(err)
					return
				}
				if n%7 == 0 {
					c.InvalidateGeneration(uint64(1 + n%3))
				}
				h.Release()
			}
		}(w)
	}
	wg.Wait()
	st := c.Stats()
	if st.PinnedBytes != 0 {
		t.Fatalf("pinned bytes leaked: %+v", st)
	}
	if st.ResidentBytes > 512 {
		t.Fatalf("budget exceeded at rest: %+v", st)
	}
}

func TestNextGenerationUnique(t *testing.T) {
	a, b := NextGeneration(), NextGeneration()
	if a == b || b == 0 {
		t.Fatalf("generations not unique: %d %d", a, b)
	}
}

func TestHitRatio(t *testing.T) {
	if r := (Stats{}).HitRatio(); r != 0 {
		t.Fatalf("empty ratio = %v", r)
	}
	if r := (Stats{Hits: 3, Misses: 1}).HitRatio(); r != 0.75 {
		t.Fatalf("ratio = %v, want 0.75", r)
	}
}
