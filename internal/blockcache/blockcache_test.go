package blockcache

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

func key(gen uint64, i, j int) Key { return Key{Gen: gen, I: i, J: j} }

// load returns a loader producing a distinguishable value of the given
// size and counting its invocations.
func load(calls *atomic.Int64, v string, size int64) func() (any, int64, error) {
	return func() (any, int64, error) {
		calls.Add(1)
		return v, size, nil
	}
}

func TestHitMissAndRefcounting(t *testing.T) {
	c := New(1 << 20)
	var calls atomic.Int64
	h1, err := c.Get(key(1, 0, 0), load(&calls, "a", 100))
	if err != nil {
		t.Fatal(err)
	}
	if h1.Value().(string) != "a" {
		t.Fatalf("Value = %v", h1.Value())
	}
	h2, err := c.Get(key(1, 0, 0), load(&calls, "b", 100))
	if err != nil {
		t.Fatal(err)
	}
	if h2.Value().(string) != "a" {
		t.Fatal("second Get did not share the cached block")
	}
	if calls.Load() != 1 {
		t.Fatalf("loader ran %d times, want 1", calls.Load())
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.ResidentBytes != 100 || st.PinnedBytes != 100 {
		t.Fatalf("stats = %+v", st)
	}
	h1.Release()
	if st := c.Stats(); st.PinnedBytes != 100 {
		t.Fatalf("pinned after one of two releases = %d, want 100", st.PinnedBytes)
	}
	h2.Release()
	h2.Release() // double release is a no-op
	st = c.Stats()
	if st.PinnedBytes != 0 || st.ResidentBytes != 100 || st.Blocks != 1 {
		t.Fatalf("stats after release = %+v", st)
	}
}

func TestLRUEvictionRespectsBudgetAndPins(t *testing.T) {
	c := New(250)
	var calls atomic.Int64
	var handles []*Handle
	for j := 0; j < 3; j++ {
		h, err := c.Get(key(1, 0, j), load(&calls, fmt.Sprint(j), 100))
		if err != nil {
			t.Fatal(err)
		}
		handles = append(handles, h)
	}
	// All three pinned: 300 resident bytes exceed the 250 budget, but
	// pins are never evicted.
	if st := c.Stats(); st.ResidentBytes != 300 || st.Evictions != 0 {
		t.Fatalf("pinned overage stats = %+v", st)
	}
	for _, h := range handles {
		h.Release()
	}
	// Releasing lets eviction trim to the budget, oldest-released first.
	st := c.Stats()
	if st.ResidentBytes != 200 || st.Blocks != 2 || st.Evictions != 1 {
		t.Fatalf("post-release stats = %+v", st)
	}
	// Block 0 was the first released, so it is the LRU victim: a re-Get
	// must miss.
	if _, err := c.Get(key(1, 0, 0), load(&calls, "0", 100)); err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 4 {
		t.Fatalf("loader calls = %d, want 4 (evicted block re-decoded)", calls.Load())
	}
}

func TestZeroBudgetKeepsNothingBeyondPins(t *testing.T) {
	c := New(0)
	var calls atomic.Int64
	h, err := c.Get(key(1, 0, 0), load(&calls, "a", 64))
	if err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st.ResidentBytes != 64 {
		t.Fatalf("pinned block not resident: %+v", st)
	}
	h.Release()
	if st := c.Stats(); st.ResidentBytes != 0 || st.Blocks != 0 {
		t.Fatalf("zero-budget cache retained a block: %+v", st)
	}
}

func TestLoadErrorNotCached(t *testing.T) {
	c := New(-1)
	boom := errors.New("boom")
	if _, err := c.Get(key(1, 0, 0), func() (any, int64, error) { return nil, 0, boom }); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	var calls atomic.Int64
	h, err := c.Get(key(1, 0, 0), load(&calls, "ok", 8))
	if err != nil || calls.Load() != 1 {
		t.Fatalf("retry after error: err=%v calls=%d", err, calls.Load())
	}
	h.Release()
	if st := c.Stats(); st.ResidentBytes != 8 || st.PinnedBytes != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestInvalidateGeneration(t *testing.T) {
	c := New(-1)
	var calls atomic.Int64
	hOld, _ := c.Get(key(1, 0, 0), load(&calls, "old-pinned", 10))
	hTmp, _ := c.Get(key(1, 0, 1), load(&calls, "old-idle", 10))
	hTmp.Release()
	hNew, _ := c.Get(key(2, 0, 0), load(&calls, "new", 10))

	c.InvalidateGeneration(1)

	// The unpinned gen-1 block is gone immediately; the pinned one is
	// unmapped (a re-Get misses) but its bytes stay until release.
	st := c.Stats()
	if st.Blocks != 1 || st.ResidentBytes != 20 || st.Invalidations != 2 {
		t.Fatalf("post-invalidate stats = %+v", st)
	}
	if _, err := c.Get(key(1, 0, 0), load(&calls, "old-reload", 10)); err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 4 {
		t.Fatalf("invalidated block served from cache (calls=%d)", calls.Load())
	}
	// The doomed block's value is still usable by its holder.
	if hOld.Value().(string) != "old-pinned" {
		t.Fatal("pinned value corrupted by invalidation")
	}
	hOld.Release()
	hNew.Release()
	st = c.Stats()
	// gen-2 block plus the post-invalidate reload remain.
	if st.ResidentBytes != 20 || st.PinnedBytes != 10 {
		t.Fatalf("final stats = %+v", st)
	}
}

func TestConcurrentGetSingleFlight(t *testing.T) {
	c := New(-1)
	var calls atomic.Int64
	var wg sync.WaitGroup
	start := make(chan struct{})
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			h, err := c.Get(key(1, 3, 4), load(&calls, "x", 1))
			if err != nil {
				t.Error(err)
				return
			}
			if h.Value().(string) != "x" {
				t.Error("wrong value")
			}
			h.Release()
		}()
	}
	close(start)
	wg.Wait()
	if calls.Load() != 1 {
		t.Fatalf("loader ran %d times under concurrency, want 1", calls.Load())
	}
}

// TestConcurrentChurn hammers Get/Release/Invalidate from many
// goroutines; run under -race it is the cache's memory-safety proof.
func TestConcurrentChurn(t *testing.T) {
	c := New(512) // small budget: constant eviction pressure
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for n := 0; n < 300; n++ {
				k := key(uint64(1+n%3), n%5, (n+w)%5)
				h, err := c.Get(k, func() (any, int64, error) { return n, 64, nil })
				if err != nil {
					t.Error(err)
					return
				}
				if n%7 == 0 {
					c.InvalidateGeneration(uint64(1 + n%3))
				}
				h.Release()
			}
		}(w)
	}
	wg.Wait()
	st := c.Stats()
	if st.PinnedBytes != 0 {
		t.Fatalf("pinned bytes leaked: %+v", st)
	}
	if st.ResidentBytes > 512 {
		t.Fatalf("budget exceeded at rest: %+v", st)
	}
}

func TestNextGenerationUnique(t *testing.T) {
	a, b := NextGeneration(), NextGeneration()
	if a == b || b == 0 {
		t.Fatalf("generations not unique: %d %d", a, b)
	}
}

// rawLoad returns a loadRaw closure producing a fixed blob and counting
// disk reads.
func rawLoad(reads *atomic.Int64, blob []byte) func() ([]byte, error) {
	return func() ([]byte, error) {
		reads.Add(1)
		return blob, nil
	}
}

// sizedDecode models decoding: the value is the blob, the accounted size
// is an expansion of the encoded size (decoded blocks are bigger).
func sizedDecode(decodes *atomic.Int64, expand int64) func([]byte) (any, int64, error) {
	return func(blob []byte) (any, int64, error) {
		decodes.Add(1)
		return blob, int64(len(blob)) * expand, nil
	}
}

// TestTieredL2HitAvoidsDisk is the tier's reason to exist: once the blob
// is resident, an L1 miss costs a decode but no disk read.
func TestTieredL2HitAvoidsDisk(t *testing.T) {
	c := NewTiered(0, 1<<20) // L1 keeps nothing beyond pins
	var reads, decodes atomic.Int64
	blob := make([]byte, 100)
	h, err := c.GetTiered(key(1, 0, 0), rawLoad(&reads, blob), sizedDecode(&decodes, 4))
	if err != nil {
		t.Fatal(err)
	}
	h.Release() // zero L1 budget: the decoded block is dropped here
	h, err = c.GetTiered(key(1, 0, 0), rawLoad(&reads, blob), sizedDecode(&decodes, 4))
	if err != nil {
		t.Fatal(err)
	}
	h.Release()
	if reads.Load() != 1 || decodes.Load() != 2 {
		t.Fatalf("reads=%d decodes=%d, want 1 disk read and 2 decodes", reads.Load(), decodes.Load())
	}
	st := c.Stats()
	if st.Misses != 1 || st.L2Hits != 1 || st.Hits != 0 {
		t.Fatalf("stats = %+v", st)
	}
	if st.L2ResidentBytes != 100 || st.L2PinnedBytes != 0 {
		t.Fatalf("L2 accounting = %+v", st)
	}
}

// TestTieredSharedBlobAcrossForms: the CSR and flat decoded forms of one
// sub-shard differ only in Key.Flat, so they must share one L2 blob and
// one disk read.
func TestTieredSharedBlobAcrossForms(t *testing.T) {
	c := NewTiered(1<<20, 1<<20)
	var reads, decodes atomic.Int64
	blob := make([]byte, 64)
	csr := Key{Gen: 1, I: 2, J: 3}
	flat := Key{Gen: 1, I: 2, J: 3, Flat: true}
	h1, err := c.GetTiered(csr, rawLoad(&reads, blob), sizedDecode(&decodes, 2))
	if err != nil {
		t.Fatal(err)
	}
	h2, err := c.GetTiered(flat, rawLoad(&reads, blob), sizedDecode(&decodes, 2))
	if err != nil {
		t.Fatal(err)
	}
	if reads.Load() != 1 {
		t.Fatalf("two decoded forms cost %d disk reads, want 1", reads.Load())
	}
	st := c.Stats()
	if st.Blocks != 2 || st.L2Blocks != 1 || st.Misses != 1 || st.L2Hits != 1 {
		t.Fatalf("stats = %+v", st)
	}
	h1.Release()
	h2.Release()
}

// TestTieredNoDoubleCharge audits the accounting when a sub-shard is
// resident in both tiers: each tier charges its own representation, a
// pinned decoded handle pins L1 bytes only, and the blob is unpinned the
// moment its decode completes.
func TestTieredNoDoubleCharge(t *testing.T) {
	c := NewTiered(1<<20, 1<<20)
	var reads, decodes atomic.Int64
	blob := make([]byte, 100)
	h, err := c.GetTiered(key(1, 0, 0), rawLoad(&reads, blob), sizedDecode(&decodes, 4))
	if err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.ResidentBytes != 400 || st.PinnedBytes != 400 {
		t.Fatalf("L1 charged %d resident / %d pinned, want 400/400", st.ResidentBytes, st.PinnedBytes)
	}
	if st.L2ResidentBytes != 100 || st.L2PinnedBytes != 0 {
		t.Fatalf("L2 charged %d resident / %d pinned, want 100/0 (blob unpinned after decode)",
			st.L2ResidentBytes, st.L2PinnedBytes)
	}
	h.Release()
	st = c.Stats()
	if st.PinnedBytes != 0 || st.ResidentBytes != 400 || st.L2ResidentBytes != 100 {
		t.Fatalf("post-release stats = %+v", st)
	}
}

// TestTieredDecodePinsBlob fills the L2 tier past its budget from inside
// a decode callback: the blob being decoded is pinned and must survive
// the eviction pressure; the idle blob is the victim.
func TestTieredDecodePinsBlob(t *testing.T) {
	c := NewTiered(-1, 100)
	var reads atomic.Int64
	blobA := []byte("aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa") // 60 B
	blobB := make([]byte, 60)
	decodeA := func(blob []byte) (any, int64, error) {
		// While A's blob is pinned by this decode, load B: 120 resident
		// bytes against a 100-byte budget forces an eviction pass.
		hB, err := c.GetTiered(key(1, 0, 1), rawLoad(&reads, blobB), sizedDecode(new(atomic.Int64), 1))
		if err != nil {
			t.Error(err)
		}
		hB.Release()
		if st := c.Stats(); st.L2PinnedBytes != 60 {
			t.Errorf("mid-decode L2PinnedBytes = %d, want 60 (blob A pinned)", st.L2PinnedBytes)
		}
		if string(blob) != string(blobA) {
			t.Error("blob A corrupted mid-decode")
		}
		return string(blob), int64(len(blob)), nil
	}
	hA, err := c.GetTiered(key(1, 0, 0), rawLoad(&reads, blobA), decodeA)
	if err != nil {
		t.Fatal(err)
	}
	hA.Release()
	st := c.Stats()
	// B (unpinned) was evicted to fit the budget; A's blob is still here.
	if st.L2Evictions != 1 || st.L2Blocks != 1 || st.L2ResidentBytes != 60 {
		t.Fatalf("stats = %+v, want blob B evicted and A resident", st)
	}
	var decodes atomic.Int64
	h, err := c.GetTiered(Key{Gen: 1, Flat: true}, rawLoad(&reads, blobA), sizedDecode(&decodes, 1))
	if err != nil {
		t.Fatal(err)
	}
	h.Release()
	if reads.Load() != 2 || decodes.Load() != 1 {
		t.Fatalf("reads=%d (want 2: A once, B once) decodes=%d", reads.Load(), decodes.Load())
	}
}

// TestTieredInvalidateBothTiers: a generation swap must drop the encoded
// blobs too, or a compacted-away sub-shard could be re-decoded from
// stale bytes.
func TestTieredInvalidateBothTiers(t *testing.T) {
	c := NewTiered(-1, -1)
	var reads atomic.Int64
	for j := 0; j < 3; j++ {
		h, err := c.GetTiered(key(1, 0, j), rawLoad(&reads, make([]byte, 10)), sizedDecode(new(atomic.Int64), 1))
		if err != nil {
			t.Fatal(err)
		}
		h.Release()
	}
	c.InvalidateGeneration(1)
	st := c.Stats()
	if st.Blocks != 0 || st.L2Blocks != 0 || st.ResidentBytes != 0 || st.L2ResidentBytes != 0 {
		t.Fatalf("post-invalidate stats = %+v", st)
	}
	if st.Invalidations != 6 { // 3 decoded blocks + 3 blobs
		t.Fatalf("invalidations = %d, want 6", st.Invalidations)
	}
	h, err := c.GetTiered(key(1, 0, 0), rawLoad(&reads, make([]byte, 10)), sizedDecode(new(atomic.Int64), 1))
	if err != nil {
		t.Fatal(err)
	}
	h.Release()
	if reads.Load() != 4 {
		t.Fatalf("invalidated blob served from L2 (reads=%d, want 4)", reads.Load())
	}
}

// TestTieredSingleFlight: concurrent callers for both decoded forms of
// one sub-shard coalesce to one disk read and at most one decode per
// form.
func TestTieredSingleFlight(t *testing.T) {
	c := NewTiered(-1, -1)
	var reads, decodes atomic.Int64
	var wg sync.WaitGroup
	start := make(chan struct{})
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			<-start
			k := Key{Gen: 1, I: 3, J: 4, Flat: w%2 == 0}
			h, err := c.GetTiered(k, rawLoad(&reads, make([]byte, 8)), sizedDecode(&decodes, 2))
			if err != nil {
				t.Error(err)
				return
			}
			h.Release()
		}(w)
	}
	close(start)
	wg.Wait()
	if reads.Load() != 1 {
		t.Fatalf("disk read %d times under concurrency, want 1", reads.Load())
	}
	if decodes.Load() != 2 {
		t.Fatalf("decoded %d times, want 2 (one per form)", decodes.Load())
	}
}

// TestTieredErrors: a failed disk read caches nothing anywhere; a failed
// decode keeps the blob (the bytes are fine — the retry decodes from L2).
func TestTieredErrors(t *testing.T) {
	c := NewTiered(-1, -1)
	boom := errors.New("boom")
	var reads atomic.Int64
	_, err := c.GetTiered(key(1, 0, 0),
		func() ([]byte, error) { reads.Add(1); return nil, boom },
		sizedDecode(new(atomic.Int64), 1))
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if st := c.Stats(); st.Blocks != 0 || st.L2Blocks != 0 {
		t.Fatalf("error cached: %+v", st)
	}
	_, err = c.GetTiered(key(1, 0, 0), rawLoad(&reads, make([]byte, 8)),
		func([]byte) (any, int64, error) { return nil, 0, boom })
	if !errors.Is(err, boom) {
		t.Fatalf("decode err = %v", err)
	}
	st := c.Stats()
	if st.Blocks != 0 || st.L2Blocks != 1 {
		t.Fatalf("after decode error: %+v, want blob kept, block not", st)
	}
	h, err := c.GetTiered(key(1, 0, 0), rawLoad(&reads, make([]byte, 8)), sizedDecode(new(atomic.Int64), 1))
	if err != nil {
		t.Fatal(err)
	}
	h.Release()
	if reads.Load() != 2 {
		t.Fatalf("reads = %d, want 2 (decode retry must hit L2)", reads.Load())
	}
}

// TestTieredDisabledFallsBack: New() leaves the L2 tier off and GetTiered
// degrades to plain Get semantics.
func TestTieredDisabledFallsBack(t *testing.T) {
	c := New(1 << 20)
	var reads, decodes atomic.Int64
	h, err := c.GetTiered(key(1, 0, 0), rawLoad(&reads, make([]byte, 8)), sizedDecode(&decodes, 2))
	if err != nil {
		t.Fatal(err)
	}
	h.Release()
	h, err = c.GetTiered(key(1, 0, 0), rawLoad(&reads, make([]byte, 8)), sizedDecode(&decodes, 2))
	if err != nil {
		t.Fatal(err)
	}
	h.Release()
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.L2Hits != 0 || st.L2Blocks != 0 {
		t.Fatalf("stats = %+v", st)
	}
	if reads.Load() != 1 || decodes.Load() != 1 {
		t.Fatalf("reads=%d decodes=%d", reads.Load(), decodes.Load())
	}
}

func TestSplitBudget(t *testing.T) {
	cases := []struct {
		total  int64
		frac   float64
		l1, l2 int64
	}{
		{1000, 0, 750, 250},   // default split
		{1000, 0.5, 500, 500}, // explicit
		{1000, -1, 1000, 0},   // negative frac disables L2
		{-1, 0.5, -1, 0},      // unlimited L1 disables L2
		{1000, 2, 100, 900},   // clamped to 0.9
		{0, 0.5, 0, 0},        // zero budget stays zero
	}
	for _, tc := range cases {
		l1, l2 := SplitBudget(tc.total, tc.frac)
		if l1 != tc.l1 || l2 != tc.l2 {
			t.Errorf("SplitBudget(%d, %v) = (%d, %d), want (%d, %d)",
				tc.total, tc.frac, l1, l2, tc.l1, tc.l2)
		}
	}
}

// TestTieredConcurrentChurn is the -race proof for the two-tier paths.
func TestTieredConcurrentChurn(t *testing.T) {
	c := NewTiered(512, 128) // both tiers under constant pressure
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for n := 0; n < 300; n++ {
				k := Key{Gen: uint64(1 + n%3), I: n % 5, J: (n + w) % 5, Flat: n%2 == 0}
				h, err := c.GetTiered(k,
					func() ([]byte, error) { return make([]byte, 16), nil },
					func(b []byte) (any, int64, error) { return b, 64, nil })
				if err != nil {
					t.Error(err)
					return
				}
				if n%7 == 0 {
					c.InvalidateGeneration(uint64(1 + n%3))
				}
				h.Release()
			}
		}(w)
	}
	wg.Wait()
	st := c.Stats()
	if st.PinnedBytes != 0 || st.L2PinnedBytes != 0 {
		t.Fatalf("pinned bytes leaked: %+v", st)
	}
	if st.ResidentBytes > 512 || st.L2ResidentBytes > 128 {
		t.Fatalf("budget exceeded at rest: %+v", st)
	}
}

func TestHitRatio(t *testing.T) {
	if r := (Stats{}).HitRatio(); r != 0 {
		t.Fatalf("empty ratio = %v", r)
	}
	if r := (Stats{Hits: 3, Misses: 1}).HitRatio(); r != 0.75 {
		t.Fatalf("ratio = %v, want 0.75", r)
	}
	// L2 hits dilute the ratio: they are cheaper than disk but not free.
	if r := (Stats{Hits: 2, L2Hits: 1, Misses: 1}).HitRatio(); r != 0.5 {
		t.Fatalf("tiered ratio = %v, want 0.5", r)
	}
}
