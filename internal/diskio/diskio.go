// Package diskio provides the storage substrate for NXgraph: files whose
// read/write traffic is byte-accounted and, optionally, throttled by a
// simple disk performance model (sequential bandwidth plus per-seek
// latency).
//
// The paper evaluates NXgraph on both SSD and HDD and derives analytic
// amounts of disk traffic for each update strategy (Table II). Real spinning
// and solid-state disks are not available in this reproduction environment,
// so diskio substitutes a model: sequential transfers cost
// bytes/bandwidth, and every discontiguous access adds the profile's seek
// latency. Byte counters expose exactly how much each component read and
// wrote, which the test-suite checks against the paper's Table II
// equations.
package diskio

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"
)

// Profile describes a simulated disk.
type Profile struct {
	Name string
	// ReadBW and WriteBW are sequential bandwidths in bytes per second.
	// Zero means unthrottled.
	ReadBW  float64
	WriteBW float64
	// Seek is the latency charged whenever an access is not contiguous
	// with the previous access to the same file.
	Seek time.Duration
	// TimeScale divides all simulated delays, letting the benchmark
	// harness model big disks at small time cost. 0 means 1.
	TimeScale float64
}

// Predefined profiles. The HDD and SSD numbers follow the hardware class
// used in the paper's evaluation (a commodity PC with a SATA HDD and a
// RAID-0 pair of SATA SSDs).
var (
	// Unthrottled performs no simulation; only byte accounting.
	Unthrottled = Profile{Name: "unthrottled"}
	// SSD models a SATA SSD RAID-0: ~520 MB/s sequential, 60 µs seek.
	SSD = Profile{Name: "ssd", ReadBW: 520e6, WriteBW: 480e6, Seek: 60 * time.Microsecond}
	// HDD models a 7200 rpm SATA disk: ~140 MB/s sequential, 8 ms seek.
	HDD = Profile{Name: "hdd", ReadBW: 140e6, WriteBW: 130e6, Seek: 8 * time.Millisecond}
)

// Stats accumulates traffic counters for a Disk.
type Stats struct {
	BytesRead    atomic.Int64
	BytesWritten atomic.Int64
	Seeks        atomic.Int64
	// SimulatedDelay is the total artificial delay injected, in
	// nanoseconds. With a zero-latency profile it stays zero.
	SimulatedDelay atomic.Int64
}

// Snapshot returns a plain-value copy of the counters.
func (s *Stats) Snapshot() StatsSnapshot {
	return StatsSnapshot{
		BytesRead:      s.BytesRead.Load(),
		BytesWritten:   s.BytesWritten.Load(),
		Seeks:          s.Seeks.Load(),
		SimulatedDelay: time.Duration(s.SimulatedDelay.Load()),
	}
}

// StatsSnapshot is a point-in-time copy of Stats.
type StatsSnapshot struct {
	BytesRead      int64
	BytesWritten   int64
	Seeks          int64
	SimulatedDelay time.Duration
}

// Total returns read plus written bytes.
func (s StatsSnapshot) Total() int64 { return s.BytesRead + s.BytesWritten }

// Sub returns s - t, counter-wise.
func (s StatsSnapshot) Sub(t StatsSnapshot) StatsSnapshot {
	return StatsSnapshot{
		BytesRead:      s.BytesRead - t.BytesRead,
		BytesWritten:   s.BytesWritten - t.BytesWritten,
		Seeks:          s.Seeks - t.Seeks,
		SimulatedDelay: s.SimulatedDelay - t.SimulatedDelay,
	}
}

func (s StatsSnapshot) String() string {
	return fmt.Sprintf("read=%d written=%d seeks=%d delay=%s",
		s.BytesRead, s.BytesWritten, s.Seeks, s.SimulatedDelay)
}

// Disk is a directory-rooted namespace of simulated files. All files opened
// through one Disk share its Profile and its Stats.
type Disk struct {
	root    string
	profile Profile
	stats   Stats
	sleep   func(time.Duration) // test hook; defaults to time.Sleep
	// debt accumulates owed simulated delay (ns). Sleeping per operation
	// would overshoot badly for sub-millisecond charges (OS timer
	// granularity), so charges accumulate and sleep in >=2ms slices.
	debt atomic.Int64
}

// debtSliceNs is the minimum accumulated delay worth an actual sleep.
const debtSliceNs = int64(2 * time.Millisecond)

// New returns a Disk rooted at dir using the given profile. The directory
// is created if it does not exist.
func New(dir string, p Profile) (*Disk, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("diskio: create root: %w", err)
	}
	return &Disk{root: dir, profile: p, sleep: time.Sleep}, nil
}

// MustNew is New that panics on error; intended for tests and examples.
func MustNew(dir string, p Profile) *Disk {
	d, err := New(dir, p)
	if err != nil {
		panic(err)
	}
	return d
}

// Root returns the directory the disk is rooted at.
func (d *Disk) Root() string { return d.root }

// Profile returns the disk's performance profile.
func (d *Disk) Profile() Profile { return d.profile }

// Stats returns the disk's traffic counters.
func (d *Disk) Stats() *Stats { return &d.stats }

// ResetStats zeroes all counters.
func (d *Disk) ResetStats() {
	d.stats.BytesRead.Store(0)
	d.stats.BytesWritten.Store(0)
	d.stats.Seeks.Store(0)
	d.stats.SimulatedDelay.Store(0)
}

// Path resolves a disk-relative file name.
func (d *Disk) Path(name string) string { return filepath.Join(d.root, name) }

// charge simulates the time cost of moving n bytes at bandwidth bw.
func (d *Disk) charge(n int, bw float64, seek bool) {
	var delay time.Duration
	if seek && d.profile.Seek > 0 {
		d.stats.Seeks.Add(1)
		delay += d.profile.Seek
	}
	if bw > 0 && n > 0 {
		delay += time.Duration(float64(n) / bw * float64(time.Second))
	}
	if delay <= 0 {
		return
	}
	if ts := d.profile.TimeScale; ts > 1 {
		delay = time.Duration(float64(delay) / ts)
	}
	d.stats.SimulatedDelay.Add(int64(delay))
	if owed := d.debt.Add(int64(delay)); owed >= debtSliceNs {
		d.debt.Add(-owed)
		d.sleep(time.Duration(owed))
	}
}

// File is a simulated file handle. It implements io.ReaderAt, io.WriterAt,
// io.ReadWriteSeeker and io.Closer.
type File struct {
	disk *Disk
	f    *os.File
	name string

	mu      sync.Mutex
	lastPos int64 // next contiguous offset; -1 if unknown
	pos     int64 // seek position for Read/Write
}

// Create creates (truncating) a file on the disk.
func (d *Disk) Create(name string) (*File, error) {
	if err := os.MkdirAll(filepath.Dir(d.Path(name)), 0o755); err != nil {
		return nil, fmt.Errorf("diskio: create parent: %w", err)
	}
	f, err := os.Create(d.Path(name))
	if err != nil {
		return nil, fmt.Errorf("diskio: create: %w", err)
	}
	return &File{disk: d, f: f, name: name, lastPos: 0}, nil
}

// Open opens an existing file for reading and writing.
func (d *Disk) Open(name string) (*File, error) {
	f, err := os.OpenFile(d.Path(name), os.O_RDWR, 0)
	if err != nil {
		return nil, fmt.Errorf("diskio: open: %w", err)
	}
	return &File{disk: d, f: f, name: name, lastPos: 0}, nil
}

// Remove deletes a file from the disk.
func (d *Disk) Remove(name string) error {
	if err := os.Remove(d.Path(name)); err != nil {
		return fmt.Errorf("diskio: remove: %w", err)
	}
	return nil
}

// Exists reports whether the named file exists on the disk.
func (d *Disk) Exists(name string) bool {
	_, err := os.Stat(d.Path(name))
	return err == nil
}

// Name returns the disk-relative name of the file.
func (f *File) Name() string { return f.name }

// Size returns the current size of the file.
func (f *File) Size() (int64, error) {
	fi, err := f.f.Stat()
	if err != nil {
		return 0, fmt.Errorf("diskio: stat: %w", err)
	}
	return fi.Size(), nil
}

// ReadAt implements io.ReaderAt with accounting and throttling.
func (f *File) ReadAt(p []byte, off int64) (int, error) {
	f.mu.Lock()
	seek := off != f.lastPos
	f.lastPos = off + int64(len(p))
	f.mu.Unlock()
	n, err := f.f.ReadAt(p, off)
	f.disk.stats.BytesRead.Add(int64(n))
	f.disk.charge(n, f.disk.profile.ReadBW, seek)
	return n, err
}

// WriteAt implements io.WriterAt with accounting and throttling.
func (f *File) WriteAt(p []byte, off int64) (int, error) {
	f.mu.Lock()
	seek := off != f.lastPos
	f.lastPos = off + int64(len(p))
	f.mu.Unlock()
	n, err := f.f.WriteAt(p, off)
	f.disk.stats.BytesWritten.Add(int64(n))
	f.disk.charge(n, f.disk.profile.WriteBW, seek)
	return n, err
}

// Read implements io.Reader at the file's seek position.
func (f *File) Read(p []byte) (int, error) {
	f.mu.Lock()
	off := f.pos
	f.mu.Unlock()
	n, err := f.ReadAt(p, off)
	f.mu.Lock()
	f.pos = off + int64(n)
	f.mu.Unlock()
	return n, err
}

// Write implements io.Writer at the file's seek position.
func (f *File) Write(p []byte) (int, error) {
	f.mu.Lock()
	off := f.pos
	f.mu.Unlock()
	n, err := f.WriteAt(p, off)
	f.mu.Lock()
	f.pos = off + int64(n)
	f.mu.Unlock()
	return n, err
}

// Seek implements io.Seeker.
func (f *File) Seek(offset int64, whence int) (int64, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	var base int64
	switch whence {
	case io.SeekStart:
		base = 0
	case io.SeekCurrent:
		base = f.pos
	case io.SeekEnd:
		fi, err := f.f.Stat()
		if err != nil {
			return 0, fmt.Errorf("diskio: seek: %w", err)
		}
		base = fi.Size()
	default:
		return 0, fmt.Errorf("diskio: seek: invalid whence %d", whence)
	}
	np := base + offset
	if np < 0 {
		return 0, fmt.Errorf("diskio: seek: negative position %d", np)
	}
	f.pos = np
	return np, nil
}

// Sync flushes the file to the underlying OS file.
func (f *File) Sync() error { return f.f.Sync() }

// Close closes the file.
func (f *File) Close() error { return f.f.Close() }
