package diskio

import (
	"bytes"
	"io"
	"testing"
	"time"
)

func TestReadWriteRoundTrip(t *testing.T) {
	d := MustNew(t.TempDir(), Unthrottled)
	f, err := d.Create("sub/dir/file.bin")
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("destination sorted sub shards")
	if _, err := f.WriteAt(payload, 0); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(payload))
	if _, err := f.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("got %q, want %q", got, payload)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	st := d.Stats().Snapshot()
	if st.BytesWritten != int64(len(payload)) || st.BytesRead != int64(len(payload)) {
		t.Fatalf("counters wrong: %+v", st)
	}
}

func TestSequentialVsSeekAccounting(t *testing.T) {
	d := MustNew(t.TempDir(), Unthrottled)
	f, err := d.Create("f.bin")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	buf := make([]byte, 1024)
	// Sequential writes: only the implicit first access may seek.
	for i := 0; i < 8; i++ {
		if _, err := f.WriteAt(buf, int64(i)*1024); err != nil {
			t.Fatal(err)
		}
	}
	seq := d.Stats().Seeks.Load()
	// Backward writes: every access is a discontinuity.
	for i := 7; i >= 0; i-- {
		if _, err := f.WriteAt(buf, int64(i)*1024); err != nil {
			t.Fatal(err)
		}
	}
	back := d.Stats().Seeks.Load() - seq
	// Seeks counter only increments when the profile charges for seeks;
	// with Unthrottled (Seek=0) it stays zero.
	if seq != 0 || back != 0 {
		t.Fatalf("unthrottled profile should not count seeks, got %d/%d", seq, back)
	}

	// With a seeky profile, contiguity matters.
	d2 := MustNew(t.TempDir(), Profile{Name: "seeky", Seek: time.Nanosecond})
	f2, err := d2.Create("f.bin")
	if err != nil {
		t.Fatal(err)
	}
	defer f2.Close()
	for i := 0; i < 8; i++ {
		if _, err := f2.WriteAt(buf, int64(i)*1024); err != nil {
			t.Fatal(err)
		}
	}
	if got := d2.Stats().Seeks.Load(); got != 0 {
		t.Fatalf("sequential writes counted %d seeks", got)
	}
	for i := 7; i >= 0; i-- {
		if _, err := f2.WriteAt(buf, int64(i)*1024); err != nil {
			t.Fatal(err)
		}
	}
	if got := d2.Stats().Seeks.Load(); got != 8 {
		t.Fatalf("backward writes counted %d seeks, want 8", got)
	}
}

func TestThrottleChargesDelay(t *testing.T) {
	var slept time.Duration
	d := MustNew(t.TempDir(), Profile{Name: "slow", ReadBW: 1e6, WriteBW: 1e6})
	d.sleep = func(dur time.Duration) { slept += dur }
	f, err := d.Create("f.bin")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	buf := make([]byte, 1<<20) // 1 MiB at 1 MB/s ≈ 1.05s
	if _, err := f.WriteAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	st := d.Stats().Snapshot()
	if st.SimulatedDelay < 900*time.Millisecond {
		t.Fatalf("simulated delay %v, want ~1s", st.SimulatedDelay)
	}
	if slept < 900*time.Millisecond {
		t.Fatalf("slept %v, want ~1s", slept)
	}
}

func TestDebtBatchesSmallCharges(t *testing.T) {
	sleeps := 0
	d := MustNew(t.TempDir(), Profile{Name: "seeky", Seek: 100 * time.Microsecond})
	d.sleep = func(time.Duration) { sleeps++ }
	f, err := d.Create("f.bin")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var b [1]byte
	// 100 seeks × 100µs = 10ms owed; at a 2ms slice that is ≤ 5 sleeps,
	// not 100.
	for i := 0; i < 100; i++ {
		if _, err := f.WriteAt(b[:], int64(i*10)); err != nil {
			t.Fatal(err)
		}
	}
	if sleeps > 10 {
		t.Fatalf("%d sleeps for 100 small charges; debt batching broken", sleeps)
	}
	if d.Stats().SimulatedDelay.Load() < int64(9*time.Millisecond) {
		t.Fatalf("delay accounting lost charges: %v", d.Stats().Snapshot())
	}
}

func TestTimeScaleDividesDelay(t *testing.T) {
	var slept time.Duration
	d := MustNew(t.TempDir(), Profile{Name: "scaled", WriteBW: 1e6, TimeScale: 100})
	d.sleep = func(dur time.Duration) { slept += dur }
	f, _ := d.Create("f.bin")
	defer f.Close()
	if _, err := f.WriteAt(make([]byte, 1<<20), 0); err != nil {
		t.Fatal(err)
	}
	if slept > 50*time.Millisecond {
		t.Fatalf("TimeScale=100 should shrink ~1s to ~10ms, slept %v", slept)
	}
}

func TestSeekerReaderWriter(t *testing.T) {
	d := MustNew(t.TempDir(), Unthrottled)
	f, err := d.Create("f.bin")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := io.WriteString(f, "hello world"); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Seek(6, io.SeekStart); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 5)
	if _, err := io.ReadFull(f, got); err != nil {
		t.Fatal(err)
	}
	if string(got) != "world" {
		t.Fatalf("got %q", got)
	}
	if pos, err := f.Seek(-5, io.SeekEnd); err != nil || pos != 6 {
		t.Fatalf("SeekEnd: pos=%d err=%v", pos, err)
	}
	if _, err := f.Seek(-100, io.SeekStart); err == nil {
		t.Fatal("negative seek should error")
	}
	if _, err := f.Seek(0, 99); err == nil {
		t.Fatal("bad whence should error")
	}
	sz, err := f.Size()
	if err != nil || sz != 11 {
		t.Fatalf("Size=%d err=%v", sz, err)
	}
}

func TestOpenMissingFails(t *testing.T) {
	d := MustNew(t.TempDir(), Unthrottled)
	if _, err := d.Open("nope.bin"); err == nil {
		t.Fatal("expected error opening missing file")
	}
	if d.Exists("nope.bin") {
		t.Fatal("Exists should be false")
	}
}

func TestRemoveAndReset(t *testing.T) {
	d := MustNew(t.TempDir(), Unthrottled)
	f, _ := d.Create("f.bin")
	f.WriteAt([]byte("x"), 0)
	f.Close()
	if !d.Exists("f.bin") {
		t.Fatal("file should exist")
	}
	if err := d.Remove("f.bin"); err != nil {
		t.Fatal(err)
	}
	if d.Exists("f.bin") {
		t.Fatal("file should be gone")
	}
	d.ResetStats()
	if s := d.Stats().Snapshot(); s.Total() != 0 {
		t.Fatalf("stats not reset: %+v", s)
	}
}

func TestSnapshotSub(t *testing.T) {
	a := StatsSnapshot{BytesRead: 10, BytesWritten: 20, Seeks: 3}
	b := StatsSnapshot{BytesRead: 4, BytesWritten: 5, Seeks: 1}
	got := a.Sub(b)
	if got.BytesRead != 6 || got.BytesWritten != 15 || got.Seeks != 2 {
		t.Fatalf("Sub wrong: %+v", got)
	}
	if got.Total() != 21 {
		t.Fatalf("Total = %d", got.Total())
	}
	if got.String() == "" {
		t.Fatal("String empty")
	}
}
