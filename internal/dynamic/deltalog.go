package dynamic

import (
	"context"
	"fmt"
	"sync"

	"nxgraph/internal/diskio"
	"nxgraph/internal/engine"
	"nxgraph/internal/graph"
	"nxgraph/internal/preprocess"
	"nxgraph/internal/storage"
)

// Op is one logged structural change, expressed in the graph's original
// index space (the raw-input ids, which stay stable across rebuilds).
type Op struct {
	// Remove deletes every copy of the edge (Src, Dst); false inserts
	// one copy.
	Remove   bool
	Src, Dst uint64
	// Weight is the inserted edge's weight (ignored for removals and by
	// unweighted stores).
	Weight float32
}

// DeltaLog accumulates structural changes against a base DSSS store as an
// ordered operation log and serves them two ways:
//
//   - Overlay compiles the pending ops into an immutable engine.Overlay
//     snapshot — per-cell sub-shards of inserted edges plus tombstones
//     for removed base edges — so queries observe the mutated graph
//     immediately, with no preprocessing;
//   - Rebuild merges a checkpointed prefix of the log into a fresh store
//     (background compaction), after which Advance rebases the remaining
//     ops onto the new store.
//
// Semantics: ops apply in log order. A removal kills every base copy of
// the pair and every insertion of the pair logged before it; insertions
// logged after a removal survive, so remove-then-re-add behaves as
// expected. Insertions that reference vertices the base store has never
// seen are accepted but deferred — they are invisible to the overlay
// (the engine's dense id space cannot address them) and materialize at
// the next compaction.
//
// All methods are safe for concurrent use.
type DeltaLog struct {
	mu      sync.Mutex
	base    *storage.Store
	idmap   []uint64          // dense id -> original index
	denseOf map[uint64]uint32 // original index -> dense id
	baseOut []uint32
	baseIn  []uint32
	ops     []Op
	// deferred counts insertion ops in ops whose endpoints the base id
	// space cannot address, maintained incrementally so Deferred() (on
	// the ingest ack path) never rescans the log.
	deferred int
	// lastSeq is the WAL sequence of the newest batch applied via
	// AppendBatch. WAL replay after a crash (or after a partial segment
	// GC) re-presents batches the log already holds; the <= lastSeq
	// check makes re-application a no-op, so replay is idempotent.
	lastSeq uint64

	snap      *overlaySnapshot // compiled cache for the current ops
	snapLen   int              // ops length the cache was compiled at
	snapEmpty bool             // cache compiled to "no servable deltas"
}

// NewDeltaLog prepares an empty log over base.
func NewDeltaLog(base *storage.Store) (*DeltaLog, error) {
	idmap, err := base.IDMap()
	if err != nil {
		return nil, err
	}
	out, in, err := base.Degrees()
	if err != nil {
		return nil, err
	}
	denseOf := make(map[uint64]uint32, len(idmap))
	for id, orig := range idmap {
		denseOf[orig] = uint32(id)
	}
	return &DeltaLog{base: base, idmap: idmap, denseOf: denseOf, baseOut: out, baseIn: in}, nil
}

// Base returns the store the log is anchored to.
func (l *DeltaLog) Base() *storage.Store { return l.base }

// Append logs ops in order and returns the new pending count.
func (l *DeltaLog) Append(ops ...Op) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.appendLocked(ops)
	return len(l.ops)
}

// AppendBatch logs one WAL-sequenced batch. A batch whose sequence is
// not beyond lastSeq is already in the log (a replay duplicate) and is
// skipped — applied reports whether the ops landed. seq 0 is reserved
// for unsequenced appends (use Append).
func (l *DeltaLog) AppendBatch(seq uint64, ops []Op) (pending int, applied bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if seq <= l.lastSeq {
		return len(l.ops), false
	}
	l.appendLocked(ops)
	l.lastSeq = seq
	return len(l.ops), true
}

// LastSeq returns the WAL sequence of the newest applied batch.
func (l *DeltaLog) LastSeq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.lastSeq
}

// appendLocked is the shared append body. Caller holds l.mu.
func (l *DeltaLog) appendLocked(ops []Op) {
	if len(ops) == 0 {
		return
	}
	l.ops = append(l.ops, ops...)
	for _, op := range ops {
		if l.isDeferred(op) {
			l.deferred++
		}
	}
	l.snap, l.snapEmpty = nil, false
}

// isDeferred reports whether op is an insertion naming a vertex outside
// the base id space. Caller holds l.mu.
func (l *DeltaLog) isDeferred(op Op) bool {
	if op.Remove {
		return false
	}
	if _, ok := l.denseOf[op.Src]; !ok {
		return true
	}
	_, ok := l.denseOf[op.Dst]
	return !ok
}

// Add logs insertion of one copy of (src, dst) in original index space.
func (l *DeltaLog) Add(src, dst uint64, w float32) int {
	return l.Append(Op{Src: src, Dst: dst, Weight: w})
}

// Remove logs removal of every copy of (src, dst).
func (l *DeltaLog) Remove(src, dst uint64) int {
	return l.Append(Op{Remove: true, Src: src, Dst: dst})
}

// Pending returns the number of logged, uncompacted ops.
func (l *DeltaLog) Pending() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.ops)
}

// Deferred returns how many pending insertions reference vertices outside
// the base store's id space — accepted but invisible until compaction.
func (l *DeltaLog) Deferred() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.deferred
}

// pairKey packs a dense edge into a map key.
func pairKey(src, dst uint32) uint64 { return uint64(src)<<32 | uint64(dst) }

// Overlay compiles the pending ops into an engine-consumable snapshot.
// It returns (nil, nil) when nothing servable is pending. The snapshot
// is cached until the log changes, so repeated runs between ingests pay
// the compile once. Compilation reads the base cells touched by
// removals (to count the base copies a tombstone kills, for degree
// accounting), which is why it can fail; that disk I/O — and the
// O(NumVertices) degree-array copies — happen *outside* l.mu, so
// concurrent ingest appends never stall behind a compile. (The compile
// itself is from-scratch per delta state; the compaction threshold
// bounds the op walk, but the degree copies scale with the graph —
// incremental snapshot maintenance is the known future optimization.)
func (l *DeltaLog) Overlay() (engine.Overlay, error) {
	l.mu.Lock()
	n := len(l.ops)
	if n == 0 {
		l.mu.Unlock()
		return nil, nil
	}
	if l.snapLen == n {
		if l.snapEmpty {
			l.mu.Unlock()
			return nil, nil
		}
		if l.snap != nil {
			snap := l.snap
			l.mu.Unlock()
			return snap, nil
		}
	}
	// Ops are append-only and existing elements never mutate, so a
	// three-index slice of the current prefix is a stable snapshot to
	// compile from without the lock.
	ops := l.ops[:n:n]
	l.mu.Unlock()

	snap, err := l.compile(ops)
	if err != nil {
		return nil, err
	}

	l.mu.Lock()
	if n > l.snapLen { // don't regress a cache a concurrent call built from more ops
		l.snapLen = n
		l.snap, l.snapEmpty = snap, snap == nil
	}
	l.mu.Unlock()
	if snap == nil {
		return nil, nil
	}
	return snap, nil
}

// CachedOverlay returns the compiled snapshot for the current ops if
// one is already cached, without compiling (and so without touching the
// base store). Informational callers — listings, stats — use this so a
// metadata read never pays compile-time disk I/O.
func (l *DeltaLog) CachedOverlay() engine.Overlay {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.snap != nil && l.snapLen == len(l.ops) {
		return l.snap
	}
	return nil
}

// denseAdd is one pending insertion mapped into dense id space.
type denseAdd struct {
	src, dst uint32
	w        float32
}

// compile walks ops (a stable prefix of the log) and builds the overlay
// snapshot. It touches only immutable DeltaLog state (denseOf, base
// degrees, the base store) and so runs without l.mu.
func (l *DeltaLog) compile(ops []Op) (*overlaySnapshot, error) {
	// A removal kills every insertion of its pair logged before it, so
	// an insertion survives iff no removal of its pair appears later in
	// the log. Recording each pair's last removal position keeps the
	// walk O(ops) instead of filtering the adds list per removal.
	lastRemove := make(map[uint64]int)
	tombs := make(map[uint64]struct{})
	for idx, op := range ops {
		if !op.Remove {
			continue
		}
		s, sok := l.denseOf[op.Src]
		d, dok := l.denseOf[op.Dst]
		if !sok || !dok {
			continue // pair cannot exist in the base id space
		}
		k := pairKey(s, d)
		lastRemove[k] = idx
		tombs[k] = struct{}{}
	}
	var adds []denseAdd
	for idx, op := range ops {
		if op.Remove {
			continue
		}
		s, sok := l.denseOf[op.Src]
		d, dok := l.denseOf[op.Dst]
		if !sok || !dok {
			continue // deferred until compaction
		}
		if ri, ok := lastRemove[pairKey(s, d)]; ok && ri > idx {
			continue // cancelled by a later removal
		}
		adds = append(adds, denseAdd{s, d, op.Weight})
	}
	if len(adds) == 0 && len(tombs) == 0 {
		return nil, nil
	}

	meta := l.base.Meta()
	P := meta.P
	snap := &overlaySnapshot{
		p:        P,
		cells:    make(map[int]*storage.SubShard),
		tcells:   make(map[int]*storage.SubShard),
		tombs:    tombs,
		delCells: make(map[int]struct{}),
		out:      append([]uint32(nil), l.baseOut...),
		in:       append([]uint32(nil), l.baseIn...),
	}
	if meta.HasTranspose {
		snap.tdelCells = make(map[int]struct{})
	}

	// Tombstones: locate each pair's forward cell, count the base copies
	// it kills (degree and edge-count accounting), and mark the cell —
	// in both replicas — as needing the per-edge skip check.
	tombCells := make(map[int][]uint64)
	for key := range tombs {
		s, d := uint32(key>>32), uint32(key)
		ci := meta.IntervalOf(s)*P + meta.IntervalOf(d)
		tombCells[ci] = append(tombCells[ci], key)
		snap.delCells[ci] = struct{}{}
		if meta.HasTranspose {
			snap.tdelCells[meta.IntervalOf(d)*P+meta.IntervalOf(s)] = struct{}{}
		}
	}
	for ci := range tombCells {
		i, j := ci/P, ci%P
		if meta.SubShards[ci].Edges == 0 {
			continue
		}
		ss, err := l.base.ReadSubShard(i, j, false)
		if err != nil {
			return nil, err
		}
		for k := range ss.Dsts {
			d := ss.Dsts[k]
			for t := ss.Offsets[k]; t < ss.Offsets[k+1]; t++ {
				s := ss.Srcs[t]
				if _, dead := tombs[pairKey(s, d)]; dead {
					snap.out[s]--
					snap.in[d]--
					snap.deltaEdges--
				}
			}
		}
	}

	// Insertions: group by cell and compile destination-sorted CSRs for
	// the forward replica and, when present, the transposed one.
	snap.deltaEdges += int64(len(adds))
	type cellBuf struct {
		srcs, dsts []uint32
		ws         []float32
	}
	fw := make(map[int]*cellBuf)
	var tp map[int]*cellBuf
	if meta.HasTranspose {
		tp = make(map[int]*cellBuf)
	}
	put := func(m map[int]*cellBuf, ci int, s, d uint32, w float32) {
		b := m[ci]
		if b == nil {
			b = &cellBuf{}
			m[ci] = b
		}
		b.srcs = append(b.srcs, s)
		b.dsts = append(b.dsts, d)
		if meta.Weighted {
			b.ws = append(b.ws, w)
		}
	}
	for _, a := range adds {
		snap.out[a.src]++
		snap.in[a.dst]++
		put(fw, meta.IntervalOf(a.src)*P+meta.IntervalOf(a.dst), a.src, a.dst, a.w)
		if tp != nil {
			put(tp, meta.IntervalOf(a.dst)*P+meta.IntervalOf(a.src), a.dst, a.src, a.w)
		}
	}
	for ci, b := range fw {
		snap.cells[ci] = storage.NewSubShardFromEdges(b.srcs, b.dsts, b.ws)
	}
	for ci, b := range tp {
		snap.tcells[ci] = storage.NewSubShardFromEdges(b.srcs, b.dsts, b.ws)
	}
	return snap, nil
}

// overlaySnapshot is the compiled, immutable form of a DeltaLog handed
// to engine runs.
type overlaySnapshot struct {
	p                   int
	cells, tcells       map[int]*storage.SubShard
	tombs               map[uint64]struct{}
	delCells, tdelCells map[int]struct{}
	out, in             []uint32
	deltaEdges          int64
}

func (s *overlaySnapshot) Cell(i, j int, transpose bool) *storage.SubShard {
	if transpose {
		return s.tcells[i*s.p+j]
	}
	return s.cells[i*s.p+j]
}

func (s *overlaySnapshot) CellHasDeletes(i, j int, transpose bool) bool {
	m := s.delCells
	if transpose {
		m = s.tdelCells
	}
	_, ok := m[i*s.p+j]
	return ok
}

func (s *overlaySnapshot) Deleted(src, dst uint32, transpose bool) bool {
	if transpose {
		src, dst = dst, src
	}
	_, ok := s.tombs[pairKey(src, dst)]
	return ok
}

func (s *overlaySnapshot) Degrees() (out, in []uint32) { return s.out, s.in }

func (s *overlaySnapshot) DeltaEdges() int64 { return s.deltaEdges }

// Checkpoint marks the current end of the log for a compaction pass:
// Rebuild folds ops[:mark] into a new store, ops logged afterwards stay
// pending and ride along into Advance.
func (l *DeltaLog) Checkpoint() int {
	mark, _ := l.CheckpointSeq()
	return mark
}

// CheckpointSeq is Checkpoint plus the WAL sequence the mark
// corresponds to, read under one lock so the pair is consistent: every
// sequenced batch at or below seq is inside ops[:mark]. Compaction
// stamps seq into the rebuilt store's MANIFEST as the replay start
// point.
func (l *DeltaLog) CheckpointSeq() (mark int, seq uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.ops), l.lastSeq
}

// Rebuild merges the base store with the first mark logged ops and
// writes a fresh DSSS store at dir on disk — the compaction step. The
// base store stays untouched and readable throughout (the scan is
// read-only), so queries keep being served from base+overlay while the
// rebuild runs. ctx aborts the base scan between batches of edges.
//
// The merge applies exactly the overlay's semantics — removals kill all
// base copies of a pair and earlier-logged insertions; later insertions
// survive — and additionally materializes deferred insertions, whose
// brand-new vertices receive dense ids in the rebuilt store.
func (l *DeltaLog) Rebuild(ctx context.Context, mark int, disk *diskio.Disk, dir string, opt preprocess.Options) (*preprocess.Result, error) {
	l.mu.Lock()
	if mark < 0 || mark > len(l.ops) {
		n := len(l.ops)
		l.mu.Unlock()
		return nil, fmt.Errorf("dynamic: checkpoint %d out of range (log has %d ops)", mark, n)
	}
	ops := append([]Op(nil), l.ops[:mark]...)
	l.mu.Unlock()

	// Same one-pass survival rule as compile: an insertion survives iff
	// no removal of its pair is logged after it.
	lastRemove := make(map[[2]uint64]int)
	tombs := make(map[[2]uint64]struct{})
	for idx, op := range ops {
		if op.Remove {
			p := [2]uint64{op.Src, op.Dst}
			lastRemove[p] = idx
			tombs[p] = struct{}{}
		}
	}
	var pending []graph.IndexEdge
	for idx, op := range ops {
		if op.Remove {
			continue
		}
		if ri, ok := lastRemove[[2]uint64{op.Src, op.Dst}]; ok && ri > idx {
			continue
		}
		pending = append(pending, graph.IndexEdge{Src: op.Src, Dst: op.Dst, Weight: op.Weight})
	}

	meta := l.base.Meta()
	merged := make([]graph.IndexEdge, 0, meta.NumEdges+int64(len(pending)))
	var scanned int64
	err := l.base.ForEachEdge(func(src, dst uint32, w float32) error {
		if scanned++; scanned&0xffff == 0 && ctx != nil {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		e := graph.IndexEdge{Src: l.idmap[src], Dst: l.idmap[dst], Weight: w}
		if _, dead := tombs[[2]uint64{e.Src, e.Dst}]; dead {
			return nil
		}
		merged = append(merged, e)
		return nil
	})
	if err != nil {
		return nil, err
	}
	merged = append(merged, pending...)
	if len(merged) == 0 {
		return nil, fmt.Errorf("dynamic: compaction would produce an empty graph")
	}
	return preprocess.FromIndexEdges(disk, dir, merged, opt)
}

// Advance rebases the log onto newBase (the store a Rebuild produced):
// ops up to mark are considered folded in, later ops carry over as
// pending against the new store. The receiver is left unchanged and
// should be discarded.
func (l *DeltaLog) Advance(mark int, newBase *storage.Store) (*DeltaLog, error) {
	nl, err := NewDeltaLog(newBase)
	if err != nil {
		return nil, err
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if mark < 0 || mark > len(l.ops) {
		return nil, fmt.Errorf("dynamic: checkpoint %d out of range (log has %d ops)", mark, len(l.ops))
	}
	// Go through Append so the carried ops are re-classified against the
	// new store's id space (deferred vertices usually materialized).
	nl.Append(l.ops[mark:]...)
	// The carried ops keep their WAL positions: the new log continues
	// deduplicating replay at the same high-water mark.
	nl.lastSeq = l.lastSeq
	return nl, nil
}
