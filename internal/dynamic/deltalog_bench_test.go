package dynamic_test

import (
	"testing"

	"nxgraph/internal/algorithms"
	"nxgraph/internal/diskio"
	"nxgraph/internal/dynamic"
	"nxgraph/internal/engine"
	"nxgraph/internal/gen"
	"nxgraph/internal/preprocess"
	"nxgraph/internal/storage"
)

// benchStore builds an RMAT store for benchmarking (scale 12, ~4k
// vertices) on a fresh temp disk.
func benchStore(b *testing.B) *storage.Store {
	b.Helper()
	g, err := gen.RMAT(gen.DefaultRMAT(12, 8, 42))
	if err != nil {
		b.Fatal(err)
	}
	disk, err := diskio.New(b.TempDir(), diskio.Unthrottled)
	if err != nil {
		b.Fatal(err)
	}
	res, err := preprocess.FromEdgeList(disk, "store", g, preprocess.Options{Name: "bench", P: 8})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { res.Store.Close() })
	return res.Store
}

// BenchmarkDeltaOverlayPageRank measures PageRank served through a
// delta overlay carrying 1024 pending edge insertions, against the
// zero-overlay baseline of the same store (BenchmarkPageRankIteration*
// in internal/engine). It is the serving-path cost of online ingestion.
func BenchmarkDeltaOverlayPageRank(b *testing.B) {
	st := benchStore(b)
	log, err := dynamic.NewDeltaLog(st)
	if err != nil {
		b.Fatal(err)
	}
	ids, err := st.IDMap()
	if err != nil {
		b.Fatal(err)
	}
	n := uint64(len(ids))
	ops := make([]dynamic.Op, 0, 1024)
	for k := uint64(0); k < 1024; k++ {
		ops = append(ops, dynamic.Op{Src: ids[(k*13)%n], Dst: ids[(k*31+7)%n], Weight: 1})
	}
	log.Append(ops...)
	e, err := engine.New(st, engine.Config{Threads: 4})
	if err != nil {
		b.Fatal(err)
	}
	e.SetOverlayProvider(func() (engine.Overlay, error) { return log.Overlay() })
	if _, err := log.Overlay(); err != nil { // compile outside the loop
		b.Fatal(err)
	}
	b.ResetTimer()
	var edges int64
	for i := 0; i < b.N; i++ {
		res, err := algorithms.PageRank(e, 0.85, 5)
		if err != nil {
			b.Fatal(err)
		}
		edges += res.EdgesTraversed
	}
	b.ReportMetric(float64(edges)/1e6/b.Elapsed().Seconds(), "MTEPS")
}

// BenchmarkDeltaLogCompile measures overlay compilation alone: the cost
// an ingest batch adds to the first query after it.
func BenchmarkDeltaLogCompile(b *testing.B) {
	st := benchStore(b)
	ids, err := st.IDMap()
	if err != nil {
		b.Fatal(err)
	}
	n := uint64(len(ids))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		log, err := dynamic.NewDeltaLog(st)
		if err != nil {
			b.Fatal(err)
		}
		for k := uint64(0); k < 4096; k++ {
			log.Add(ids[(k*13)%n], ids[(k*31+7)%n], 1)
		}
		b.StartTimer()
		if _, err := log.Overlay(); err != nil {
			b.Fatal(err)
		}
	}
}
