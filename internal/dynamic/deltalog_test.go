package dynamic_test

import (
	"context"
	"math"
	"testing"

	"nxgraph/internal/algorithms"
	"nxgraph/internal/diskio"
	"nxgraph/internal/dynamic"
	"nxgraph/internal/engine"
	"nxgraph/internal/gen"
	"nxgraph/internal/preprocess"
	"nxgraph/internal/storage"
	"nxgraph/internal/testutil"
)

// overlayEngine binds an engine to st that serves log's pending deltas.
func overlayEngine(t *testing.T, st *storage.Store, log *dynamic.DeltaLog, cfg engine.Config) *engine.Engine {
	t.Helper()
	e, err := engine.New(st, cfg)
	if err != nil {
		t.Fatal(err)
	}
	e.SetOverlayProvider(func() (engine.Overlay, error) { return log.Overlay() })
	return e
}

// rebuiltStore compacts log (all pending ops) into a fresh store.
func rebuiltStore(t *testing.T, log *dynamic.DeltaLog, opt preprocess.Options) *storage.Store {
	t.Helper()
	disk, err := diskio.New(t.TempDir(), diskio.Unthrottled)
	if err != nil {
		t.Fatal(err)
	}
	res, err := log.Rebuild(context.Background(), log.Checkpoint(), disk, "rebuilt", opt)
	if err != nil {
		t.Fatalf("rebuild: %v", err)
	}
	t.Cleanup(func() { res.Store.Close() })
	return res.Store
}

// ranksByOrig runs PageRank on e and keys the ranks by original index,
// so results compare across stores with different dense id assignments.
func ranksByOrig(t *testing.T, e *engine.Engine, st *storage.Store) map[uint64]float64 {
	t.Helper()
	res, err := algorithms.PageRank(e, 0.85, 10)
	if err != nil {
		t.Fatal(err)
	}
	ids, err := st.IDMap()
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[uint64]float64, len(ids))
	for v, r := range res.Attrs {
		out[ids[v]] = r
	}
	return out
}

func sameRanks(t *testing.T, want, got map[uint64]float64, tol float64) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("vertex sets differ: %d vs %d", len(want), len(got))
	}
	for id, w := range want {
		g, ok := got[id]
		if !ok {
			t.Fatalf("vertex %d missing", id)
		}
		if math.Abs(w-g) > tol {
			t.Fatalf("vertex %d: rank %g vs %g (tol %g)", id, w, g, tol)
		}
	}
}

// TestDeltaOverlayMatchesRebuild is the core correctness property:
// PageRank served from base+overlay must match PageRank on a full
// rebuild of the mutated graph, under every update strategy.
func TestDeltaOverlayMatchesRebuild(t *testing.T) {
	base, err := gen.RMAT(gen.DefaultRMAT(8, 6, 7))
	if err != nil {
		t.Fatal(err)
	}
	st, _ := testutil.BuildStore(t, base, testutil.StoreOptions{P: 4})
	log, err := dynamic.NewDeltaLog(st)
	if err != nil {
		t.Fatal(err)
	}
	// Mutations among existing vertices only, so dense ids stay aligned
	// and the rebuilt store is comparable index-by-index too. Pick base
	// edges to remove from the store itself.
	var victims [][2]uint64
	ids, err := st.IDMap()
	if err != nil {
		t.Fatal(err)
	}
	err = st.ForEachEdge(func(src, dst uint32, w float32) error {
		if len(victims) < 3 && src != dst {
			victims = append(victims, [2]uint64{ids[src], ids[dst]})
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range victims {
		log.Remove(v[0], v[1])
	}
	n := uint64(len(ids))
	for k := uint64(0); k < 40; k++ {
		log.Add(ids[k%n], ids[(k*7+3)%n], 1)
	}

	rb := rebuiltStore(t, log, preprocess.Options{P: 4})
	wantRanks := ranksByOrig(t, mustEngine(t, rb, engine.Config{Threads: 2}), rb)

	nverts := st.Meta().NumVertices
	pingPong := 2 * int64(nverts) * engine.Ba
	cases := []struct {
		name string
		cfg  engine.Config
	}{
		{"spu", engine.Config{Threads: 2, Strategy: engine.SPU}},
		{"dpu", engine.Config{Threads: 2, Strategy: engine.DPU}},
		{"mpu", engine.Config{Threads: 2, Strategy: engine.MPU, MemoryBudget: pingPong / 2}},
		{"lock", engine.Config{Threads: 2, Strategy: engine.SPU, Sync: engine.Lock}},
		// Block-cache ablation: the overlay must serve identically with
		// the shared cache disabled (pure streaming) and with a tiny
		// budget that evicts mid-iteration, for every strategy. Cached
		// base blocks carry no tombstones — deletes are applied at
		// gather time — so warm blocks must stay valid under deltas.
		{"spu-nocache", engine.Config{Threads: 2, Strategy: engine.SPU, CacheBytes: -1}},
		{"dpu-nocache", engine.Config{Threads: 2, Strategy: engine.DPU, CacheBytes: -1}},
		{"mpu-nocache", engine.Config{Threads: 2, Strategy: engine.MPU, MemoryBudget: pingPong / 2, CacheBytes: -1}},
		{"spu-tinycache", engine.Config{Threads: 2, Strategy: engine.SPU, CacheBytes: 4096}},
		// A thrashing L1 over an encoded L2 tier: overlay gathers must be
		// identical when base blocks are re-decoded from cached blobs.
		{"spu-tinycache-l2", engine.Config{Threads: 2, Strategy: engine.SPU, CacheBytes: 4096, CacheL2Frac: 0.5}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			e := overlayEngine(t, st, log, tc.cfg)
			got := ranksByOrig(t, e, st)
			sameRanks(t, wantRanks, got, 1e-9)
		})
	}
}

func mustEngine(t *testing.T, st *storage.Store, cfg engine.Config) *engine.Engine {
	t.Helper()
	e, err := engine.New(st, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// TestDeltaRemoveThenReAdd verifies the log-order semantics: removing a
// base edge tombstones it, a later re-add of the same pair is served
// from the overlay, and the net result matches the rebuilt graph.
func TestDeltaRemoveThenReAdd(t *testing.T) {
	base, err := gen.RMAT(gen.DefaultRMAT(7, 5, 21))
	if err != nil {
		t.Fatal(err)
	}
	st, _ := testutil.BuildStore(t, base, testutil.StoreOptions{P: 4})
	baseline := ranksByOrig(t, mustEngine(t, st, engine.Config{Threads: 2}), st)

	log, err := dynamic.NewDeltaLog(st)
	if err != nil {
		t.Fatal(err)
	}
	ids, err := st.IDMap()
	if err != nil {
		t.Fatal(err)
	}
	var src, dst uint64
	found := false
	err = st.ForEachEdge(func(s, d uint32, w float32) error {
		if !found && s != d {
			src, dst, found = ids[s], ids[d], true
		}
		return nil
	})
	if err != nil || !found {
		t.Fatalf("no edge found: %v", err)
	}
	log.Remove(src, dst)
	log.Add(src, dst, 1)

	// Removing every copy then adding one back can change multiplicity,
	// so compare against the rebuilt graph, not the untouched base.
	rb := rebuiltStore(t, log, preprocess.Options{P: 4})
	want := ranksByOrig(t, mustEngine(t, rb, engine.Config{Threads: 2}), rb)
	got := ranksByOrig(t, overlayEngine(t, st, log, engine.Config{Threads: 2}), st)
	sameRanks(t, want, got, 1e-9)

	// And re-adding must actually restore influence: with only one base
	// copy the overlay result equals the baseline as well.
	if len(want) == len(baseline) {
		// informational consistency only; multiplicities may differ
		_ = baseline
	}
}

// TestDeltaNewVertexDeferred: insertions referencing vertices the base
// never saw are invisible to the overlay but materialize on compaction.
func TestDeltaNewVertexDeferred(t *testing.T) {
	base, err := gen.RMAT(gen.DefaultRMAT(7, 5, 3))
	if err != nil {
		t.Fatal(err)
	}
	st, _ := testutil.BuildStore(t, base, testutil.StoreOptions{P: 4})
	log, err := dynamic.NewDeltaLog(st)
	if err != nil {
		t.Fatal(err)
	}
	const fresh = uint64(1) << 20
	ids, err := st.IDMap()
	if err != nil {
		t.Fatal(err)
	}
	log.Add(fresh, ids[0], 1)
	log.Add(ids[1], fresh, 1)
	if got := log.Deferred(); got != 2 {
		t.Fatalf("Deferred = %d, want 2", got)
	}

	// Only deferred ops pending: the overlay has nothing to serve.
	ov, err := log.Overlay()
	if err != nil {
		t.Fatal(err)
	}
	if ov != nil {
		t.Fatalf("overlay = %v, want nil (all ops deferred)", ov)
	}
	got := ranksByOrig(t, overlayEngine(t, st, log, engine.Config{Threads: 2}), st)
	want := ranksByOrig(t, mustEngine(t, st, engine.Config{Threads: 2}), st)
	sameRanks(t, want, got, 0)

	// Compaction assigns the new vertex a dense id and serves it.
	rb := rebuiltStore(t, log, preprocess.Options{P: 4})
	if rb.Meta().NumVertices != st.Meta().NumVertices+1 {
		t.Fatalf("rebuilt has %d vertices, want %d", rb.Meta().NumVertices, st.Meta().NumVertices+1)
	}
	after := ranksByOrig(t, mustEngine(t, rb, engine.Config{Threads: 2}), rb)
	if _, ok := after[fresh]; !ok {
		t.Fatalf("new vertex %d missing after compaction", fresh)
	}
}

// TestDeltaAdvance: ops logged after a checkpoint survive compaction and
// keep serving from the overlay of the new store.
func TestDeltaAdvance(t *testing.T) {
	base, err := gen.RMAT(gen.DefaultRMAT(7, 5, 9))
	if err != nil {
		t.Fatal(err)
	}
	st, _ := testutil.BuildStore(t, base, testutil.StoreOptions{P: 4})
	log, err := dynamic.NewDeltaLog(st)
	if err != nil {
		t.Fatal(err)
	}
	ids, err := st.IDMap()
	if err != nil {
		t.Fatal(err)
	}
	log.Add(ids[0], ids[5], 1)
	mark := log.Checkpoint()
	log.Add(ids[1], ids[6], 1) // post-checkpoint: must survive Advance

	disk, err := diskio.New(t.TempDir(), diskio.Unthrottled)
	if err != nil {
		t.Fatal(err)
	}
	res, err := log.Rebuild(context.Background(), mark, disk, "rebuilt", preprocess.Options{P: 4})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { res.Store.Close() })

	nl, err := log.Advance(mark, res.Store)
	if err != nil {
		t.Fatal(err)
	}
	if nl.Pending() != 1 {
		t.Fatalf("pending after advance = %d, want 1", nl.Pending())
	}

	// base + both ops == new store + carried op.
	full := rebuiltStore(t, log, preprocess.Options{P: 4})
	want := ranksByOrig(t, mustEngine(t, full, engine.Config{Threads: 2}), full)
	got := ranksByOrig(t, overlayEngine(t, res.Store, nl, engine.Config{Threads: 2}), res.Store)
	sameRanks(t, want, got, 1e-9)
}

// TestDeltaOverlayReverseTraversal exercises the transposed overlay
// cells: WCC traverses both replicas, so a delta linking two components
// must merge them when served from the overlay.
func TestDeltaOverlayReverseTraversal(t *testing.T) {
	base, err := gen.RMAT(gen.DefaultRMAT(7, 5, 11))
	if err != nil {
		t.Fatal(err)
	}
	st, _ := testutil.BuildStore(t, base, testutil.StoreOptions{P: 4, Transpose: true})
	log, err := dynamic.NewDeltaLog(st)
	if err != nil {
		t.Fatal(err)
	}
	ids, err := st.IDMap()
	if err != nil {
		t.Fatal(err)
	}
	log.Add(ids[2], ids[9], 1)
	log.Add(ids[9], ids[4], 1)
	log.Remove(ids[2], ids[9]) // and take one back out again
	log.Add(ids[2], ids[9], 1)

	rb := rebuiltStore(t, log, preprocess.Options{P: 4, Transpose: true})
	wres, err := algorithms.WCC(mustEngine(t, rb, engine.Config{Threads: 2}))
	if err != nil {
		t.Fatal(err)
	}
	wa := make([]uint32, len(wres.Attrs))
	for i := range wres.Attrs {
		wa[i] = uint32(wres.Attrs[i])
	}
	// WCC traverses both replicas; check the overlay with the block
	// cache in its default, disabled and eviction-heavy configurations.
	for _, cc := range []struct {
		name       string
		cacheBytes int64
	}{{"cache", 0}, {"nocache", -1}, {"tinycache", 4096}} {
		t.Run(cc.name, func(t *testing.T) {
			gres, err := algorithms.WCC(overlayEngine(t, st, log, engine.Config{Threads: 2, CacheBytes: cc.cacheBytes}))
			if err != nil {
				t.Fatal(err)
			}
			ga := make([]uint32, len(gres.Attrs))
			for i := range gres.Attrs {
				ga[i] = uint32(gres.Attrs[i])
			}
			testutil.SamePartition(t, wa, ga)
		})
	}
}
