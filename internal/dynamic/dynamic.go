// Package dynamic adds support for graphs that change over time — the
// extension the paper names as future work ("NXgraph will be extended to
// support dynamic change on graph structure", §VI).
//
// Two models coexist:
//
//   - merge-rebuild (Updater): accumulate mutations, then stop-the-world
//     re-preprocess into a fresh store — simple, batch-oriented;
//   - delta-overlay (DeltaLog): an ordered op log whose pending entries
//     compile into an engine.Overlay served *live* on top of the base
//     store, with the same Rebuild pass demoted to a background
//     compaction that a serving layer swaps in atomically.
//
// Both express mutations in the graph's *original index space* (the ids
// of the raw input, which stay stable across rebuilds — dense ids do
// not, because the degreer recompacts). Rebuild streams the base store's
// edges through the mutation set and re-preprocesses into a fresh store.
// This preserves every DSSS invariant by construction and costs one
// sharding pass, which the paper's own preprocessing already budgets
// for.
package dynamic

import (
	"fmt"

	"nxgraph/internal/diskio"
	"nxgraph/internal/graph"
	"nxgraph/internal/preprocess"
	"nxgraph/internal/storage"
)

// Updater accumulates structural changes against a base store.
type Updater struct {
	base    *storage.Store
	idmap   []uint64 // dense id -> original index
	added   []graph.IndexEdge
	removed map[[2]uint64]int // index-space pair -> copies to drop (-1 = all)
}

// NewUpdater prepares an updater over base.
func NewUpdater(base *storage.Store) (*Updater, error) {
	idmap, err := base.IDMap()
	if err != nil {
		return nil, err
	}
	return &Updater{base: base, idmap: idmap, removed: make(map[[2]uint64]int)}, nil
}

// AddEdge schedules insertion of an edge in original index space. New
// vertices (indices the base graph never saw) are allowed.
func (u *Updater) AddEdge(src, dst uint64, w float32) {
	u.added = append(u.added, graph.IndexEdge{Src: src, Dst: dst, Weight: w})
}

// RemoveEdge schedules removal of one copy of the edge (src, dst); call
// repeatedly to drop parallel copies, or use RemoveAllEdges.
func (u *Updater) RemoveEdge(src, dst uint64) {
	k := [2]uint64{src, dst}
	if u.removed[k] >= 0 {
		u.removed[k]++
	}
}

// RemoveAllEdges schedules removal of every copy of (src, dst).
func (u *Updater) RemoveAllEdges(src, dst uint64) {
	u.removed[[2]uint64{src, dst}] = -1
}

// PendingAdds returns the number of scheduled insertions.
func (u *Updater) PendingAdds() int { return len(u.added) }

// Rebuild merges the base store with the scheduled mutations and writes a
// new store at dir on disk. The base store is left untouched and stays
// readable. Vertices that lose their last edge disappear (the degreer's
// isolated-vertex rule), and brand-new vertices get ids.
func (u *Updater) Rebuild(disk *diskio.Disk, dir string, opt preprocess.Options) (*preprocess.Result, error) {
	meta := u.base.Meta()
	merged := make([]graph.IndexEdge, 0, meta.NumEdges+int64(len(u.added)))
	drop := make(map[[2]uint64]int, len(u.removed))
	for k, v := range u.removed {
		drop[k] = v
	}
	err := u.base.ForEachEdge(func(src, dst uint32, w float32) error {
		e := graph.IndexEdge{Src: u.idmap[src], Dst: u.idmap[dst], Weight: w}
		k := [2]uint64{e.Src, e.Dst}
		if c, ok := drop[k]; ok {
			if c == -1 {
				return nil // drop all copies
			}
			if c > 0 {
				drop[k] = c - 1
				return nil
			}
		}
		merged = append(merged, e)
		return nil
	})
	if err != nil {
		return nil, err
	}
	for _, e := range u.added {
		k := [2]uint64{e.Src, e.Dst}
		if c, ok := drop[k]; ok {
			if c == -1 {
				continue
			}
			if c > 0 {
				drop[k] = c - 1
				continue
			}
		}
		merged = append(merged, e)
	}
	if len(merged) == 0 {
		return nil, fmt.Errorf("dynamic: rebuild would produce an empty graph")
	}
	return preprocess.FromIndexEdges(disk, dir, merged, opt)
}
