package dynamic_test

import (
	"math"
	"testing"

	"nxgraph/internal/algorithms"
	"nxgraph/internal/diskio"
	"nxgraph/internal/dynamic"
	"nxgraph/internal/engine"
	"nxgraph/internal/gen"
	"nxgraph/internal/graph"
	"nxgraph/internal/preprocess"
	"nxgraph/internal/refalgo"
	"nxgraph/internal/storage"
	"nxgraph/internal/testutil"
)

// pagerankOf runs PageRank on a store and returns ranks keyed by
// original index (stable across rebuilds).
func pagerankOf(t *testing.T, st *storage.Store) map[uint64]float64 {
	t.Helper()
	e, err := engine.New(st, engine.Config{Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	res, err := algorithms.PageRank(e, 0.85, 8)
	if err != nil {
		t.Fatal(err)
	}
	ids, err := st.IDMap()
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[uint64]float64, len(ids))
	for v, r := range res.Attrs {
		out[ids[v]] = r
	}
	return out
}

func TestAddEdgesMatchesFromScratch(t *testing.T) {
	base, _ := gen.RMAT(gen.DefaultRMAT(8, 6, 13))
	st, _ := testutil.BuildStore(t, base, testutil.StoreOptions{P: 4})
	u, err := dynamic.NewUpdater(st)
	if err != nil {
		t.Fatal(err)
	}
	// New edges, including a brand-new vertex (index 1<<20).
	extra := []graph.IndexEdge{
		{Src: 1, Dst: 2, Weight: 1},
		{Src: 1 << 20, Dst: 0, Weight: 1},
		{Src: 0, Dst: 1 << 20, Weight: 1},
	}
	for _, e := range extra {
		u.AddEdge(e.Src, e.Dst, e.Weight)
	}
	if u.PendingAdds() != len(extra) {
		t.Fatalf("pending = %d", u.PendingAdds())
	}
	disk := diskio.MustNew(t.TempDir(), diskio.Unthrottled)
	res, err := u.Rebuild(disk, "v2", preprocess.Options{Name: "v2", P: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer res.Store.Close()
	if res.NumEdges != st.Meta().NumEdges+int64(len(extra)) {
		t.Fatalf("merged edges %d, want %d", res.NumEdges, st.Meta().NumEdges+3)
	}

	// Ground truth: preprocess the union from scratch.
	var union []graph.IndexEdge
	if err := st.ForEachEdge(func(s, d uint32, w float32) error {
		ids, _ := st.IDMap()
		union = append(union, graph.IndexEdge{Src: ids[s], Dst: ids[d], Weight: w})
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	union = append(union, extra...)
	disk2 := diskio.MustNew(t.TempDir(), diskio.Unthrottled)
	want, err := preprocess.FromIndexEdges(disk2, "w", union, preprocess.Options{Name: "w", P: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer want.Store.Close()

	got := pagerankOf(t, res.Store)
	exp := pagerankOf(t, want.Store)
	if len(got) != len(exp) {
		t.Fatalf("vertex sets differ: %d vs %d", len(got), len(exp))
	}
	for idx, r := range exp {
		if math.Abs(got[idx]-r) > 1e-12 {
			t.Fatalf("index %d: rank %v, want %v", idx, got[idx], r)
		}
	}
}

func TestRemoveEdgeSemantics(t *testing.T) {
	// Graph with a doubled edge 0->1 and single 1->2, 2->0.
	g := &graph.EdgeList{NumVertices: 3, Edges: []graph.Edge{
		{Src: 0, Dst: 1}, {Src: 0, Dst: 1}, {Src: 1, Dst: 2}, {Src: 2, Dst: 0},
	}}
	st, _ := testutil.BuildStore(t, g, testutil.StoreOptions{P: 2})
	u, err := dynamic.NewUpdater(st)
	if err != nil {
		t.Fatal(err)
	}
	u.RemoveEdge(0, 1) // one copy only
	disk := diskio.MustNew(t.TempDir(), diskio.Unthrottled)
	res, err := u.Rebuild(disk, "v2", preprocess.Options{Name: "v2", P: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer res.Store.Close()
	if res.NumEdges != 3 {
		t.Fatalf("edges after single removal: %d, want 3", res.NumEdges)
	}

	u2, _ := dynamic.NewUpdater(st)
	u2.RemoveAllEdges(0, 1)
	res2, err := u2.Rebuild(disk, "v3", preprocess.Options{Name: "v3", P: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer res2.Store.Close()
	if res2.NumEdges != 2 {
		t.Fatalf("edges after remove-all: %d, want 2", res2.NumEdges)
	}
}

func TestRemovalAppliesToPendingAdds(t *testing.T) {
	g := &graph.EdgeList{NumVertices: 2, Edges: []graph.Edge{{Src: 0, Dst: 1}}}
	st, _ := testutil.BuildStore(t, g, testutil.StoreOptions{P: 1})
	u, _ := dynamic.NewUpdater(st)
	u.AddEdge(1, 0, 1)
	u.RemoveAllEdges(1, 0) // cancels the pending add
	disk := diskio.MustNew(t.TempDir(), diskio.Unthrottled)
	res, err := u.Rebuild(disk, "v2", preprocess.Options{Name: "v2", P: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer res.Store.Close()
	if res.NumEdges != 1 {
		t.Fatalf("edges %d, want 1", res.NumEdges)
	}
}

func TestRebuildEmptyFails(t *testing.T) {
	g := &graph.EdgeList{NumVertices: 2, Edges: []graph.Edge{{Src: 0, Dst: 1}}}
	st, _ := testutil.BuildStore(t, g, testutil.StoreOptions{P: 1})
	u, _ := dynamic.NewUpdater(st)
	u.RemoveAllEdges(0, 1)
	disk := diskio.MustNew(t.TempDir(), diskio.Unthrottled)
	if _, err := u.Rebuild(disk, "v2", preprocess.Options{Name: "v2", P: 1}); err == nil {
		t.Fatal("empty rebuild accepted")
	}
}

func TestIncrementalBFSScenario(t *testing.T) {
	// A disconnected pair of cliques; adding a bridge must change
	// reachability, matching an oracle on the edited graph.
	mk := func(base uint32) []graph.Edge {
		var es []graph.Edge
		for a := uint32(0); a < 5; a++ {
			for b := uint32(0); b < 5; b++ {
				if a != b {
					es = append(es, graph.Edge{Src: base + a, Dst: base + b})
				}
			}
		}
		return es
	}
	g := &graph.EdgeList{NumVertices: 10, Edges: append(mk(0), mk(5)...)}
	st, _ := testutil.BuildStore(t, g, testutil.StoreOptions{P: 2})
	u, _ := dynamic.NewUpdater(st)
	u.AddEdge(0, 5, 1)
	disk := diskio.MustNew(t.TempDir(), diskio.Unthrottled)
	res, err := u.Rebuild(disk, "v2", preprocess.Options{Name: "v2", P: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer res.Store.Close()
	e, err := engine.New(res.Store, engine.Config{Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	bfs, err := algorithms.BFS(e, 0)
	if err != nil {
		t.Fatal(err)
	}
	edited := &graph.EdgeList{NumVertices: 10,
		Edges: append(append([]graph.Edge(nil), g.Edges...), graph.Edge{Src: 0, Dst: 5})}
	want := refalgo.BFS(graph.BuildAdjacency(edited), 0)
	for v := range want {
		got := int64(-1)
		if !math.IsInf(bfs.Attrs[v], 1) {
			got = int64(bfs.Attrs[v])
		}
		if got != want[v] {
			t.Fatalf("vertex %d: depth %d, want %d", v, got, want[v])
		}
	}
}
