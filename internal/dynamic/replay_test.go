package dynamic_test

import (
	"reflect"
	"testing"

	"nxgraph/internal/dynamic"
	"nxgraph/internal/graph"
	"nxgraph/internal/storage"
	"nxgraph/internal/testutil"
)

// seqBatch is one WAL-sequenced ingest batch for the idempotence table.
type seqBatch struct {
	seq uint64
	ops []dynamic.Op
}

// replayBase builds the small fixed store the idempotence table runs
// against: a 6-vertex ring with two chords, every vertex addressable by
// its raw id.
func replayBase(t *testing.T) *storage.Store {
	t.Helper()
	g := &graph.EdgeList{NumVertices: 6}
	for v := uint32(0); v < 6; v++ {
		g.Edges = append(g.Edges, graph.Edge{Src: v, Dst: (v + 1) % 6, Weight: 1})
	}
	g.Edges = append(g.Edges,
		graph.Edge{Src: 0, Dst: 3, Weight: 1},
		graph.Edge{Src: 2, Dst: 5, Weight: 1},
	)
	st, _ := testutil.BuildStore(t, g, testutil.StoreOptions{P: 2, Transpose: true})
	return st
}

// TestAppendBatchReplayIdempotent is the recovery invariant the WAL
// relies on: re-presenting an already-applied sequenced batch (replay
// after a crash, or after a partial segment GC left folded batches on
// disk) must change nothing — same pending ops, same deferred count,
// same compiled Overlay.
func TestAppendBatchReplayIdempotent(t *testing.T) {
	cases := []struct {
		name    string
		batches []seqBatch
	}{
		{"adds-only", []seqBatch{
			{1, []dynamic.Op{{Src: 1, Dst: 4, Weight: 2}, {Src: 3, Dst: 0, Weight: 1}}},
			{2, []dynamic.Op{{Src: 5, Dst: 2, Weight: 1}}},
		}},
		{"remove-base-edge", []seqBatch{
			{1, []dynamic.Op{{Remove: true, Src: 0, Dst: 1}}},
			{2, []dynamic.Op{{Remove: true, Src: 2, Dst: 5}, {Src: 2, Dst: 0, Weight: 1}}},
		}},
		{"remove-then-re-add", []seqBatch{
			{1, []dynamic.Op{{Src: 4, Dst: 1, Weight: 1}}},
			{2, []dynamic.Op{{Remove: true, Src: 4, Dst: 1}}},
			{3, []dynamic.Op{{Src: 4, Dst: 1, Weight: 3}}},
		}},
		{"deferred-new-vertices", []seqBatch{
			{1, []dynamic.Op{{Src: 100, Dst: 0, Weight: 1}, {Src: 0, Dst: 100, Weight: 1}}},
			{2, []dynamic.Op{{Src: 100, Dst: 101, Weight: 1}}},
		}},
		{"mixed", []seqBatch{
			{1, []dynamic.Op{{Src: 1, Dst: 3, Weight: 1}, {Remove: true, Src: 1, Dst: 2}}},
			{2, []dynamic.Op{{Src: 200, Dst: 2, Weight: 1}}},
			{3, []dynamic.Op{{Remove: true, Src: 1, Dst: 3}, {Src: 1, Dst: 2, Weight: 5}}},
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			st := replayBase(t)
			once, err := dynamic.NewDeltaLog(st)
			if err != nil {
				t.Fatal(err)
			}
			twice, err := dynamic.NewDeltaLog(st)
			if err != nil {
				t.Fatal(err)
			}
			for _, b := range tc.batches {
				if _, applied := once.AppendBatch(b.seq, b.ops); !applied {
					t.Fatalf("seq %d: first application skipped", b.seq)
				}
				// The duplicated log sees every batch twice in a row —
				// the second application must be the no-op.
				if _, applied := twice.AppendBatch(b.seq, b.ops); !applied {
					t.Fatalf("seq %d: first application skipped on dup log", b.seq)
				}
				if _, applied := twice.AppendBatch(b.seq, b.ops); applied {
					t.Fatalf("seq %d: duplicate application was not skipped", b.seq)
				}
			}
			// ...and then the whole prefix replays once more from the
			// start (the crash-during-GC shape: old segments resurface
			// every batch).
			for _, b := range tc.batches {
				if _, applied := twice.AppendBatch(b.seq, b.ops); applied {
					t.Fatalf("seq %d: full re-replay applied a stale batch", b.seq)
				}
			}
			if once.Pending() != twice.Pending() {
				t.Fatalf("pending diverged: %d vs %d", once.Pending(), twice.Pending())
			}
			if once.Deferred() != twice.Deferred() {
				t.Fatalf("deferred diverged: %d vs %d", once.Deferred(), twice.Deferred())
			}
			if once.LastSeq() != twice.LastSeq() {
				t.Fatalf("lastSeq diverged: %d vs %d", once.LastSeq(), twice.LastSeq())
			}
			ovA, err := once.Overlay()
			if err != nil {
				t.Fatal(err)
			}
			ovB, err := twice.Overlay()
			if err != nil {
				t.Fatal(err)
			}
			// The compiled snapshots carry everything a run observes
			// (cells, tombstones, degrees); structural equality means
			// identical query results.
			if !reflect.DeepEqual(ovA, ovB) {
				t.Fatalf("overlays diverged after duplicate application:\n once: %#v\ntwice: %#v", ovA, ovB)
			}
		})
	}
}

// TestAppendBatchOutOfOrderDuplicate pins the dedup rule precisely: it
// is a high-water mark, not a set — a batch at or below lastSeq is
// dropped even if that exact sequence was never applied (it can only be
// missing because it rode in via Advance or an earlier store
// generation).
func TestAppendBatchOutOfOrderDuplicate(t *testing.T) {
	st := replayBase(t)
	l, err := dynamic.NewDeltaLog(st)
	if err != nil {
		t.Fatal(err)
	}
	if _, applied := l.AppendBatch(5, []dynamic.Op{{Src: 0, Dst: 2, Weight: 1}}); !applied {
		t.Fatal("seq 5 should apply")
	}
	if _, applied := l.AppendBatch(3, []dynamic.Op{{Src: 1, Dst: 5, Weight: 1}}); applied {
		t.Fatal("seq 3 <= lastSeq 5 must be skipped")
	}
	if _, applied := l.AppendBatch(5, []dynamic.Op{{Src: 0, Dst: 2, Weight: 1}}); applied {
		t.Fatal("seq 5 == lastSeq must be skipped")
	}
	if _, applied := l.AppendBatch(6, nil); !applied {
		t.Fatal("seq 6 should apply (empty batch still advances the mark)")
	}
	if got := l.LastSeq(); got != 6 {
		t.Fatalf("LastSeq = %d, want 6", got)
	}
}
