package engine

import (
	"context"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"nxgraph/internal/diskio"
	"nxgraph/internal/storage"
	"nxgraph/internal/trace"
)

// BatchControl is the per-lane control surface of a fused batch run,
// handed to callers that need to steer individual queries (the serving
// layer cancels one job's lane without touching its siblings).
type BatchControl interface {
	// Width returns the number of lanes.
	Width() int
	// CancelLane requests cancellation of lane l. The request takes
	// effect at the next iteration boundary: the lane stops computing,
	// its Finish result becomes nil, and sibling lanes are unaffected.
	// Cancelling a lane that already converged is a no-op (its result
	// stands). Safe to call from any goroutine.
	CancelLane(l int)
}

// BatchRun executes a batch of Programs in one fused sweep over the
// graph — the answer to NXgraph's "every decoded edge byte should do
// maximum work" applied across queries instead of within one. Per-vertex
// state is laid out SoA-style, lane-minor (state[v*L+l] is lane l's
// attribute of vertex v), so one decoded sub-shard block feeds all L
// lanes while it is hot in cache: the edge decode, degree load, and loop
// bookkeeping are paid once per edge instead of once per edge per query.
//
// Every lane keeps its own frontier (per-interval activity), iteration
// and edge counters, global aggregate, and convergence state; a lane
// whose intervals all go inactive freezes (its values carry forward)
// while siblings continue. All lane state is memory-resident regardless
// of the engine's strategy — the fused sweep is SPU-shaped — and the
// per-destination fold order matches the scalar row phase exactly, so
// each lane's result is bit-identical to a scalar Run of its program
// (hub folding in DPU/MPU inserts only exact-identity operations, so
// scalar strategies agree with each other bit-for-bit too).
//
// Lanes must share one Zero value and one traversal direction; the
// source-sorted ablation order is not supported. Create with
// NewBatchRun, drive with Step/StepContext, collect with Finish.
type BatchRun struct {
	// fetcher carries the read path (block cache access, prefetch
	// pipeline, fetch tracing) shared with the scalar Run.
	fetcher

	ps      []Program
	aggs    []GlobalAggregator
	lapply  []LaneApplier    // nil entries fall back to per-vertex Apply
	laggs   []LaneAggregator // nil entries fall back to AggVertex folds
	dense   []bool
	dir     Direction
	hint    KernelHint
	lcount  int // lane count L
	threads int
	chunk   int

	// curr/next are the SoA ping-pong arrays: index v*L+l.
	curr, next []float64

	// scaled[d] holds, for KernelRankSum batches, this iteration's
	// per-lane Gather values curr[v*L+l]/deg[v] for traversal flag d.
	// Hoisting the division out of the edge loop turns the fused rank
	// kernel into pure additions: edges×L divisions become vertices×L.
	// After the first iteration the apply phase refreshes it in place
	// while the chunk is cache-hot (scaledReady), so the standalone
	// computeScaled sweep only runs on iteration one.
	scaled      [2][]float64
	scaledReady bool

	// active[l][i] is lane l's frontier: interval i has lane-l-active
	// vertices. done/cancelled/laneIters/laneEdges are per-lane run
	// state; cancelReq is written by CancelLane (any goroutine) and
	// folded into done at iteration boundaries.
	active    [][]bool
	done      []bool
	cancelled []bool
	laneIters []int
	laneEdges []int64
	cancelReq []atomic.Bool

	zero float64 // the lanes' shared Sum identity

	ov    Overlay
	ovOut []uint32
	ovIn  []uint32

	locks []sync.Mutex

	iter     int
	edges    int64
	finished bool
	closed   bool

	ctx      context.Context // nil outside StepContext
	progress ProgressFunc

	startIO diskio.StatsSnapshot
	started time.Time

	runSpan   trace.Span
	runEnded  bool
	laneSpans []trace.Span
	laneEnded []bool
}

// NewBatchRun initializes a fused run of the given programs (one lane
// each) over the engine's store in direction dir. All programs must
// share the same Zero value; the engine must not be configured with the
// source-sorted ablation order. The delta-overlay snapshot, if any, is
// captured once and shared by every lane — callers fusing queries must
// ensure they may legally observe the same graph version.
func (e *Engine) NewBatchRun(ps []Program, dir Direction) (*BatchRun, error) {
	if len(ps) == 0 {
		return nil, fmt.Errorf("engine: batch run needs at least one program")
	}
	if err := e.validateDirection(dir); err != nil {
		return nil, err
	}
	if e.cfg.Order == SrcSortedCoarse {
		return nil, fmt.Errorf("engine: source-sorted ablation does not support fused batch runs")
	}
	zero := ps[0].Zero()
	for l := 1; l < len(ps); l++ {
		if math.Float64bits(ps[l].Zero()) != math.Float64bits(zero) {
			return nil, fmt.Errorf("engine: batch lanes must share one Zero value (lane %d: %v, lane 0: %v)", l, ps[l].Zero(), zero)
		}
	}
	m := e.store.Meta()
	L := len(ps)
	b := &BatchRun{
		ps:      ps,
		dir:     dir,
		lcount:  L,
		zero:    zero,
		threads: e.cfg.threads(),
		chunk:   e.cfg.chunk(),
		started: time.Now(),
		startIO: e.store.Disk().Stats().Snapshot(),
	}
	b.fetcher.e = e
	if e.cfg.TraceSpans >= 0 {
		b.tr = trace.New(e.cfg.TraceSpans)
		b.runSpan = b.tr.Start(trace.KindRun, ps[0].Name()+"-batch", 0)
		b.iterSpanID.Store(b.runSpan.ID)
		b.laneSpans = make([]trace.Span, L)
		for l := range ps {
			b.laneSpans[l] = b.tr.Start(trace.KindLane, spanName("lane-", l), b.runSpan.ID)
		}
	}
	osp := b.tr.Start(trace.KindOverlay, "overlay-snapshot", b.runSpan.ID)
	if e.overlayProvider != nil {
		ov, err := e.overlayProvider()
		if err != nil {
			return nil, fmt.Errorf("engine: overlay snapshot: %w", err)
		}
		if ov != nil {
			b.ov = ov
			b.ovOut, b.ovIn = ov.Degrees()
			b.tr.End(osp)
		}
	}
	b.hint = commonHint(ps)
	b.aggs = make([]GlobalAggregator, L)
	b.lapply = make([]LaneApplier, L)
	b.laggs = make([]LaneAggregator, L)
	b.dense = make([]bool, L)
	for l, p := range ps {
		if a, ok := p.(GlobalAggregator); ok {
			b.aggs[l] = a
		}
		if la, ok := p.(LaneApplier); ok {
			b.lapply[l] = la
		}
		if la, ok := p.(LaneAggregator); ok {
			b.laggs[l] = la
		}
		if _, ok := p.(DenseApply); ok || b.aggs[l] != nil {
			b.dense[l] = true
		}
	}
	n := int(m.NumVertices)
	b.curr = e.getBatchBuf(n * L)
	b.next = e.getBatchBuf(n * L)
	// The accumulator must hold the lanes' Zero before the first gather
	// (pooled buffers arrive dirty); later iterations re-zero it
	// chunkwise during apply.
	zeroSlab(b.next, zero)
	b.active = make([][]bool, L)
	for l := range b.active {
		b.active[l] = make([]bool, m.P)
	}
	b.done = make([]bool, L)
	b.cancelled = make([]bool, L)
	b.laneIters = make([]int, L)
	b.laneEdges = make([]int64, L)
	b.cancelReq = make([]atomic.Bool, L)
	b.laneEnded = make([]bool, L)
	b.locks = make([]sync.Mutex, m.P)
	if b.hint == KernelRankSum {
		for _, d := range b.dirsUsed() {
			// Dirty pooled contents are fine: computeScaled overwrites
			// every slot the gather reads before the first row phase.
			b.scaled[d] = e.getBatchBuf(n * L)
		}
	}
	b.initAttrs()
	return b, nil
}

// commonHint resolves the batch's kernel specialization: the shared
// non-generic hint if every lane declares the same one, else generic.
func commonHint(ps []Program) KernelHint {
	h := KernelGeneric
	if fk, ok := ps[0].(FusedKernel); ok {
		h = fk.FusedKernelHint()
	}
	for _, p := range ps[1:] {
		fk, ok := p.(FusedKernel)
		if !ok || fk.FusedKernelHint() != h {
			return KernelGeneric
		}
	}
	return h
}

// initAttrs runs every lane's Init over every vertex, populating the SoA
// current array and the per-lane interval activity. Interval activity is
// written under a per-interval reduction so vertex chunks parallelize.
func (b *BatchRun) initAttrs() {
	m := b.e.store.Meta()
	n := int(m.NumVertices)
	L := b.lcount
	bounds := chunkRanges(n, 1<<14)
	act := make([][]bool, len(bounds)-1) // per-chunk [l*P+k] activity
	P := m.P
	parallelFor(b.threads, len(bounds)-1, func(c int) {
		local := make([]bool, L*P)
		for v := bounds[c]; v < bounds[c+1]; v++ {
			k := m.IntervalOf(uint32(v))
			for l, p := range b.ps {
				attr, a := p.Init(uint32(v))
				b.curr[v*L+l] = attr
				if a {
					local[l*P+k] = true
				}
			}
		}
		act[c] = local
	})
	for _, local := range act {
		for l := 0; l < L; l++ {
			for k := 0; k < P; k++ {
				if local[l*P+k] {
					b.active[l][k] = true
				}
			}
		}
	}
}

// Width returns the number of lanes.
func (b *BatchRun) Width() int { return b.lcount }

// CancelLane implements BatchControl.
func (b *BatchRun) CancelLane(l int) {
	if l >= 0 && l < b.lcount {
		b.cancelReq[l].Store(true)
	}
}

// LaneCancelled reports whether lane l's cancellation took effect (its
// Finish result will be nil).
func (b *BatchRun) LaneCancelled(l int) bool { return b.cancelled[l] }

// LaneIterations returns the number of iterations lane l participated in.
func (b *BatchRun) LaneIterations(l int) int { return b.laneIters[l] }

// SetProgress installs a per-iteration progress observer (nil to clear).
// Progress aggregates over the whole batch: Edges is the summed per-lane
// traversal count and ActiveIntervals the union frontier size.
func (b *BatchRun) SetProgress(f ProgressFunc) { b.progress = f }

// Trace returns the batch's shared trace, nil when tracing is disabled.
func (b *BatchRun) Trace() *trace.Trace { return b.tr }

// Iterations returns the number of fused iterations executed so far (the
// maximum over lanes; see LaneIterations for one lane's count).
func (b *BatchRun) Iterations() int { return b.iter }

// Close releases run resources: the SoA arrays return to the engine's
// fused-run buffer pool and the run becomes unusable.
func (b *BatchRun) Close() {
	if b.closed {
		return
	}
	b.closed = true
	b.e.putBatchBuf(b.curr, b.next, b.scaled[0], b.scaled[1])
	b.curr, b.next, b.scaled[0], b.scaled[1] = nil, nil, nil, nil
}

// Step executes one fused iteration across all unfinished lanes. It
// returns false when every lane has converged or been cancelled, or the
// MaxIterations budget is exhausted.
func (b *BatchRun) Step() (bool, error) {
	return b.step()
}

// StepContext is Step with cancellation of the whole batch: ctx is
// consulted before the iteration and between sub-shard rows. Per-lane
// cancellation is CancelLane, observed at iteration boundaries.
func (b *BatchRun) StepContext(ctx context.Context) (bool, error) {
	if ctx != nil && ctx != context.Background() {
		b.ctx = ctx
		defer func() { b.ctx = nil }()
	}
	return b.step()
}

func (b *BatchRun) checkCtx() error {
	if b.ctx == nil {
		return nil
	}
	select {
	case <-b.ctx.Done():
		return b.ctx.Err()
	default:
		return nil
	}
}

// endLaneSpan closes lane l's trace span. tag is empty for normal
// completion, "cancelled" for a cancelled lane.
func (b *BatchRun) endLaneSpan(l int, tag string) {
	if b.tr == nil || b.laneEnded[l] {
		return
	}
	b.laneEnded[l] = true
	sp := b.laneSpans[l]
	sp.Tag = tag
	sp.Count = int64(b.laneIters[l])
	b.tr.End(sp)
}

// laneHasWork reports whether lane l has any active interval.
func (b *BatchRun) laneHasWork(l int) bool {
	for _, a := range b.active[l] {
		if a {
			return true
		}
	}
	return false
}

func (b *BatchRun) step() (bool, error) {
	if b.closed {
		return false, fmt.Errorf("engine: Step on closed batch run")
	}
	if b.finished {
		return false, nil
	}
	if err := b.checkCtx(); err != nil {
		return false, err
	}
	// Fold lane-cancellation requests, then retire converged lanes; the
	// remaining lanes participate in this iteration.
	for l := range b.ps {
		if !b.done[l] && b.cancelReq[l].Load() {
			b.done[l], b.cancelled[l] = true, true
			b.endLaneSpan(l, "cancelled")
		}
	}
	if max := b.e.cfg.MaxIterations; max > 0 && b.iter >= max {
		b.finishAll()
		return false, nil
	}
	var lanes []int
	for l := range b.ps {
		if b.done[l] {
			continue
		}
		if !b.laneHasWork(l) {
			b.done[l] = true
			b.endLaneSpan(l, "")
			continue
		}
		lanes = append(lanes, l)
	}
	if len(lanes) == 0 {
		b.finished = true
		return false, nil
	}

	m := b.e.store.Meta()
	P := m.P
	dirs := b.dirsUsed()

	var iterSpan trace.Span
	var iterIO diskio.StatsSnapshot
	var edges0 int64
	if b.tr != nil {
		iterSpan = b.tr.Start(trace.KindIteration, spanName("iter-", b.iter), b.runSpan.ID)
		b.iterSpanID.Store(iterSpan.ID)
		b.iterHits.Store(0)
		b.iterMisses.Store(0)
		b.stallNS = 0
		iterIO = b.e.store.Disk().Stats().Snapshot()
		edges0 = b.edges
	}

	// InitializeIteration: the accumulator array is already Zero — it was
	// reset chunk by chunk during the previous apply phase (or by
	// NewBatchRun before iteration one), while each chunk was cache-hot.
	// The SoA array is L× a scalar run's accumulator, so avoiding a
	// separate cold zeroing pass over it each iteration matters.
	plans := b.rowPlans(dirs, lanes)

	// Per-lane global aggregates over current attributes, each folded in
	// ascending vertex order exactly as the scalar step does.
	b.computeAggregates(lanes)

	// Rank-sum batches hoist Gather's division out of the edge loop:
	// every lane's attr/deg values are precomputed per vertex, so the
	// gather kernel is left with additions only. After iteration one the
	// apply phase refreshes the values in place (scaledReady); the
	// standalone sweep only runs when no apply has primed them.
	if b.hint == KernelRankSum && !b.scaledReady {
		b.computeScaled(dirs)
	}
	b.scaledReady = false

	// Row phase: one pass over the sub-shard grid; each decoded block is
	// gathered into every participating lane before the next block.
	rowPipe := b.newPipeline(plans)
	defer rowPipe.drain()
	rowLanes := make([]int, 0, len(lanes))
	for i := 0; i < P; i++ {
		if err := b.checkCtx(); err != nil {
			return false, err
		}
		rowLanes = rowLanes[:0]
		for _, l := range lanes {
			if b.active[l][i] {
				rowLanes = append(rowLanes, l)
			}
		}
		if len(rowLanes) == 0 {
			continue
		}
		if err := b.processRow(i, rowLanes, dirs, rowPipe.take(i)); err != nil {
			return false, err
		}
	}

	// Apply phase: per-lane Apply where contributions (or a dense lane)
	// demand it, plain carry-forward elsewhere, then ping-pong swap.
	applySpan := b.tr.Start(trace.KindApply, "apply-lanes", iterSpan.ID)
	activeNext := b.applyLanes(lanes)
	b.tr.End(applySpan)
	b.curr, b.next = b.next, b.curr
	if b.hint == KernelRankSum {
		b.scaledReady = true // applyLanes refreshed scaled from the new curr
	}
	for l, a := range activeNext {
		if a != nil {
			b.active[l] = a
		}
	}
	for _, l := range lanes {
		b.laneIters[l]++
	}
	b.iter++
	b.notifyProgress()

	if b.tr != nil {
		dur := b.tr.End(iterSpan)
		io := b.e.store.Disk().Stats().Snapshot().Sub(iterIO)
		stall := time.Duration(b.stallNS)
		compute := dur - stall
		if compute < 0 {
			compute = 0
		}
		b.tr.AddStep(trace.StepStats{
			Iteration:    b.iter - 1,
			Edges:        b.edges - edges0,
			BlocksHit:    b.iterHits.Load(),
			BlocksMiss:   b.iterMisses.Load(),
			BytesRead:    io.BytesRead,
			BytesWritten: io.BytesWritten,
			StallUS:      stall.Microseconds(),
			ComputeUS:    compute.Microseconds(),
			DurUS:        dur.Microseconds(),
		})
		b.iterSpanID.Store(b.runSpan.ID)
	}
	return true, nil
}

// finishAll retires every remaining lane (MaxIterations exhaustion).
func (b *BatchRun) finishAll() {
	for l := range b.ps {
		if !b.done[l] {
			b.done[l] = true
			b.endLaneSpan(l, "")
		}
	}
	b.finished = true
}

// dirsUsed lists the traversal flags the batch sweeps (0 = forward,
// 1 = reverse).
func (b *BatchRun) dirsUsed() []int {
	switch b.dir {
	case Forward:
		return []int{0}
	case Reverse:
		return []int{1}
	default:
		return []int{0, 1}
	}
}

// degOf returns the source-degree array for a traversal flag,
// overlay-adjusted when a delta snapshot is installed.
func (b *BatchRun) degOf(d int) []uint32 {
	if d == 1 {
		if b.ovIn != nil {
			return b.ovIn
		}
		return b.e.inDeg
	}
	if b.ovOut != nil {
		return b.ovOut
	}
	return b.e.outDeg
}

// primaryDeg is the degree array handed to lane GlobalAggregators.
func (b *BatchRun) primaryDeg() []uint32 {
	if b.dir == Reverse {
		return b.degOf(1)
	}
	return b.degOf(0)
}

// ovCell returns the overlay sub-shard for cell (i, j) of traversal flag
// d, or nil.
func (b *BatchRun) ovCell(d, i, j int) *storage.SubShard {
	if b.ov == nil {
		return nil
	}
	return b.ov.Cell(i, j, d == 1)
}

// cellDel returns the overlay tombstone predicate for base cell (i, j),
// or nil when the cell has no pending removals.
func (b *BatchRun) cellDel(d, i, j int) func(src, dst uint32) bool {
	if b.ov == nil || !b.ov.CellHasDeletes(i, j, d == 1) {
		return nil
	}
	t := d == 1
	ov := b.ov
	return func(src, dst uint32) bool { return ov.Deleted(src, dst, t) }
}

// cellHasEdges reports whether cell (i, j) of traversal flag d holds any
// edges to gather — base or overlay.
func (b *BatchRun) cellHasEdges(d, i, j int) bool {
	if b.subShardInfosFor(d)[i*b.e.store.Meta().P+j].Edges > 0 {
		return true
	}
	return b.ovCell(d, i, j) != nil
}

// subShardInfosFor returns the sub-shard index for a traversal flag.
func (b *BatchRun) subShardInfosFor(d int) []storage.SubShardInfo {
	m := b.e.store.Meta()
	if d == 1 {
		return m.TSubShards
	}
	return m.SubShards
}

// computeAggregates folds each participating lane's global aggregate
// (vertex-ascending, matching the scalar step) and publishes it via
// SetGlobal. Lanes reduce independently, so they parallelize.
func (b *BatchRun) computeAggregates(lanes []int) {
	var aggLanes []int
	for _, l := range lanes {
		if b.aggs[l] != nil {
			aggLanes = append(aggLanes, l)
		}
	}
	if len(aggLanes) == 0 {
		return
	}
	n := int(b.e.store.Meta().NumVertices)
	deg := b.primaryDeg()
	L := b.lcount
	parallelFor(b.threads, len(aggLanes), func(t int) {
		l := aggLanes[t]
		a := b.aggs[l]
		if la := b.laggs[l]; la != nil {
			a.SetGlobal(la.AggLane(b.curr, L, l, deg[:n]))
			return
		}
		val := a.AggZero()
		for v := 0; v < n; v++ {
			val = a.AggCombine(val, a.AggVertex(uint32(v), b.curr[v*L+l], deg[v]))
		}
		a.SetGlobal(val)
	})
}

// computeScaled fills scaled[d] with curr[v*L+l]/float64(deg[v]) for
// every traversal flag the batch sweeps — the KernelRankSum Gather value
// of every (vertex, lane) pair, computed once per iteration instead of
// once per edge. Each division uses exactly the operands a scalar
// Gather would, so hoisting preserves bit-identity. Zero-degree
// vertices produce Inf/NaN slots, but a zero-degree source has no
// surviving edges (base edges are tombstoned when overlay deletions
// empty a source), so those slots are never read.
func (b *BatchRun) computeScaled(dirs []int) {
	n := int(b.e.store.Meta().NumVertices)
	L := b.lcount
	for _, d := range dirs {
		sc := b.scaled[d]
		deg := b.degOf(d)
		bounds := chunkRanges(n, 1<<13)
		parallelFor(b.threads, len(bounds)-1, func(c int) {
			refreshScaled(sc, b.curr, deg, L, uint32(bounds[c]), uint32(bounds[c+1]))
		})
	}
}

// refreshScaled recomputes the hoisted rank-sum Gather values for
// vertices [v0, v1) from the attribute array attrs. The apply phase
// calls it per chunk right after writing the next iteration's
// attributes, while the chunk is still cache-resident. Zero-degree
// rows are skipped: such a source has no surviving edges, so its slots
// are never read and whatever they hold is immaterial.
func refreshScaled(scaled, attrs []float64, deg []uint32, L int, v0, v1 uint32) {
	for v := v0; v < v1; v++ {
		if deg[v] == 0 {
			continue
		}
		dd := float64(deg[v])
		base := int(v) * L
		as := attrs[base : base+L]
		sc := scaled[base : base+L]
		for x := range as {
			sc[x] = as[x] / dd
		}
	}
}

// zeroSlab resets s to the lanes' shared Zero. The literal-0 branch
// compiles to memclr.
func zeroSlab(s []float64, zero float64) {
	if math.Float64bits(zero) == 0 {
		for i := range s {
			s[i] = 0
		}
	} else {
		fill(s, zero)
	}
}

// scaledFor returns the hoisted rank-sum Gather values for a traversal
// flag, nil for batches without the KernelRankSum hint.
func (b *BatchRun) scaledFor(d int) []float64 {
	return b.scaled[d]
}

// rowPlans lists, in execution order, the rows this iteration's row
// phase will sweep (the union frontier over participating lanes) and the
// base-store blocks each needs. Overlay cells are in-memory and never
// planned.
func (b *BatchRun) rowPlans(dirs []int, lanes []int) []fetchPlan {
	m := b.e.store.Meta()
	P := m.P
	var plans []fetchPlan
	for i := 0; i < P; i++ {
		anyActive := false
		for _, l := range lanes {
			if b.active[l][i] {
				anyActive = true
				break
			}
		}
		if !anyActive {
			continue
		}
		var cells []cellID
		for _, d := range dirs {
			infos := b.subShardInfosFor(d)
			for j := 0; j < P; j++ {
				if infos[i*P+j].Edges > 0 {
					cells = append(cells, cellID{d, i, j, false})
				}
			}
		}
		plans = append(plans, fetchPlan{id: i, cells: cells})
	}
	return plans
}

// processRow gathers row i of the sub-shard grid into every lane in
// rowLanes. Task scheduling mirrors the scalar processRow: within one
// replica's row the distinct destination ranges are disjoint, so chunk
// tasks run lock-free; groups that can collide on a destination (forward
// vs transposed replica, base vs overlay cell) are separated by
// barriers, preserving the scalar per-destination fold order.
func (b *BatchRun) processRow(i int, rowLanes []int, dirs []int, blocks *fetchBatch) error {
	defer blocks.release()
	if err := b.waitBatch(blocks, "row-", i); err != nil {
		return err
	}
	if b.tr != nil {
		gsp := b.tr.Start(trace.KindGather, spanName("row-", i), b.iterSpanID.Load())
		defer b.tr.End(gsp)
	}
	m := b.e.store.Meta()
	P := m.P
	var resident [2][2][]func() // [traversal flag][0 = base, 1 = overlay]
	for _, d := range dirs {
		deg := b.degOf(d)
		sc := b.scaledFor(d)
		infos := b.subShardInfosFor(d)
		for j := 0; j < P; j++ {
			base := infos[i*P+j].Edges > 0
			ovc := b.ovCell(d, i, j)
			if !base && ovc == nil {
				continue
			}
			if base {
				ss, err := b.batchSubShard(blocks, cellID{d, i, j, false})
				if err != nil {
					return err
				}
				b.countEdges(rowLanes, int64(ss.NumEdges()))
				resident[d][0] = append(resident[d][0], b.gatherTasks(ss, deg, sc, b.cellDel(d, i, j), rowLanes, j)...)
			}
			if ovc != nil {
				b.countEdges(rowLanes, int64(ovc.NumEdges()))
				resident[d][1] = append(resident[d][1], b.gatherTasks(ovc, deg, sc, nil, rowLanes, j)...)
			}
		}
	}
	for _, d := range dirs {
		for _, g := range resident[d] {
			if len(g) == 0 {
				continue
			}
			parallelFor(b.threads, len(g), func(t int) { g[t]() })
		}
	}
	return nil
}

// countEdges charges one visited cell's edge count to every
// participating lane — the same cell-granular accounting the scalar run
// uses, so per-lane EdgesTraversed matches a scalar run of that lane.
func (b *BatchRun) countEdges(rowLanes []int, n int64) {
	b.edges += n * int64(len(rowLanes))
	for _, l := range rowLanes {
		b.laneEdges[l] += n
	}
}

// gatherTasks builds the fine-grained (callback) or interval-locked
// (lock) tasks folding sub-shard ss into every lane's accumulator.
// scaled is the direction's hoisted rank-sum Gather array (nil unless
// the batch has the KernelRankSum hint).
func (b *BatchRun) gatherTasks(ss *storage.SubShard, deg []uint32, scaled []float64, del func(src, dst uint32) bool, rowLanes []int, j int) []func() {
	lanes := append([]int(nil), rowLanes...) // rowLanes is reused per row
	if b.e.cfg.Sync == Lock {
		lock := &b.locks[j]
		return []func(){func() {
			lock.Lock()
			b.gatherCell(ss, deg, scaled, del, lanes, 0, ss.NumDsts())
			lock.Unlock()
		}}
	}
	bounds := chunkRanges(ss.NumDsts(), b.chunk)
	tasks := make([]func(), 0, len(bounds)-1)
	for c := 0; c < len(bounds)-1; c++ {
		k0, k1 := bounds[c], bounds[c+1]
		tasks = append(tasks, func() {
			b.gatherCell(ss, deg, scaled, del, lanes, k0, k1)
		})
	}
	return tasks
}

// applyLanes runs the apply phase for every participating lane and
// carries finished lanes' values forward, returning each participating
// lane's next-iteration activity (nil for lanes that did not
// participate). Interval touch detection matches the scalar
// applyResident: a lane's interval applies when the lane is dense or any
// active source interval has edges into it; untouched intervals copy.
func (b *BatchRun) applyLanes(lanes []int) [][]bool {
	m := b.e.store.Meta()
	P := m.P
	dirs := b.dirsUsed()
	L := b.lcount

	participating := make([]bool, L)
	for _, l := range lanes {
		participating[l] = true
	}

	// applies[j*L+l]: does lane l Apply over interval j (vs carrying its
	// values forward)?
	applies := make([]bool, P*L)
	for l := 0; l < L; l++ {
		appliesAll := participating[l] && b.dense[l]
		for j := 0; j < P; j++ {
			apply := appliesAll
			if participating[l] && !apply {
				for _, d := range dirs {
					for i := 0; i < P; i++ {
						if b.active[l][i] && b.cellHasEdges(d, i, j) {
							apply = true
							break
						}
					}
					if apply {
						break
					}
				}
			}
			applies[j*L+l] = apply
		}
	}

	// Tasks are vertex chunks that every lane sweeps in turn, sized so a
	// chunk's whole SoA block (all L lanes of curr and next) stays
	// cache-resident across the per-lane passes — one lane's walk is
	// L-strided, which over an unbounded range would miss on every
	// vertex.
	type task struct {
		j      int
		v0, v1 uint32
	}
	chunkV := (1 << 15) / L // ≈256KiB of curr+next per chunk
	if chunkV < 64 {
		chunkV = 64
	}
	// Rank-sum batches refresh the hoisted Gather values per chunk while
	// the freshly written attributes are still cache-resident, sparing
	// the next iteration its standalone computeScaled sweep.
	type scaledDir struct {
		sc  []float64
		deg []uint32
	}
	var scs []scaledDir
	if b.hint == KernelRankSum {
		for _, d := range dirs {
			scs = append(scs, scaledDir{b.scaled[d], b.degOf(d)})
		}
	}
	var tasks []task
	for j := 0; j < P; j++ {
		lo, hi := m.IntervalRange(j)
		if lo == hi {
			continue
		}
		bounds := chunkRanges(int(hi-lo), chunkV)
		for c := 0; c < len(bounds)-1; c++ {
			tasks = append(tasks, task{j, lo + uint32(bounds[c]), lo + uint32(bounds[c+1])})
		}
	}
	changed := make([]bool, len(tasks)*L)
	parallelFor(b.threads, len(tasks), func(t int) {
		tk := tasks[t]
		for l := 0; l < L; l++ {
			if !applies[tk.j*L+l] {
				copyLane(b.curr, b.next, L, l, tk.v0, tk.v1)
				continue
			}
			if la := b.lapply[l]; la != nil {
				changed[t*L+l] = la.ApplyLane(b.curr, b.next, L, l, tk.v0, tk.v1)
				continue
			}
			changed[t*L+l] = applyLane(b.ps[l], b.curr, b.next, L, l, tk.v0, tk.v1)
		}
		for _, s := range scs {
			refreshScaled(s.sc, b.next, s.deg, L, tk.v0, tk.v1)
		}
		// The outgoing attribute chunk becomes the next iteration's
		// accumulator after the ping-pong swap; reset it here while it is
		// cache-resident so the next step starts gathering directly.
		zeroSlab(b.curr[int(tk.v0)*L:int(tk.v1)*L], b.zero)
	})
	activeNext := make([][]bool, L)
	for _, l := range lanes {
		activeNext[l] = make([]bool, P)
	}
	for t := range tasks {
		for l := 0; l < L; l++ {
			if changed[t*L+l] && activeNext[l] != nil {
				activeNext[l][tasks[t].j] = true
			}
		}
	}
	return activeNext
}

// notifyProgress reports the completed fused iteration to the observer.
func (b *BatchRun) notifyProgress() {
	if b.progress == nil {
		return
	}
	seen := make([]bool, b.e.store.Meta().P)
	for l := range b.ps {
		if b.done[l] {
			continue
		}
		for k, a := range b.active[l] {
			if a {
				seen[k] = true
			}
		}
	}
	n := 0
	for _, a := range seen {
		if a {
			n++
		}
	}
	b.progress(Progress{
		Iteration:       b.iter,
		Edges:           b.edges,
		ActiveIntervals: n,
		Elapsed:         time.Since(b.started),
	})
}

// Finish assembles one Result per lane: final attributes plus the lane's
// own iteration and edge counters. Cancelled lanes yield nil. The IO
// snapshot, elapsed time, and trace are shared across the batch — they
// describe the fused run that served every lane. The run remains usable
// afterwards.
func (b *BatchRun) Finish() ([]*Result, error) {
	for l := range b.ps {
		b.endLaneSpan(l, "") // lanes still running (fixed-iteration drivers) close here
	}
	if b.tr != nil && !b.runEnded {
		b.runEnded = true
		b.tr.End(b.runSpan)
	}
	m := b.e.store.Meta()
	n := int(m.NumVertices)
	L := b.lcount
	io := b.e.store.Disk().Stats().Snapshot().Sub(b.startIO)
	elapsed := time.Since(b.started)
	out := make([]*Result, L)
	attrs := make([][]float64, L)
	for l := range b.ps {
		if b.cancelled[l] {
			continue
		}
		attrs[l] = make([]float64, n)
		out[l] = &Result{
			Attrs:             attrs[l],
			Iterations:        b.laneIters[l],
			Strategy:          SPU,
			ResidentIntervals: m.P,
			EdgesTraversed:    b.laneEdges[l],
			IO:                io,
			Elapsed:           elapsed,
			Trace:             b.tr,
		}
	}
	// Copy out in vertex chunks: within a chunk the SoA block stays
	// cache-resident while each lane's strided reads sweep it, and each
	// lane's Attrs writes run sequentially — against both a full
	// lane-major pass (strided reads miss on every vertex) and a
	// vertex-major pass (re-walks all L slice headers per vertex).
	const chunkV = 1 << 10 // ≈512KiB of SoA state per chunk at L=64
	for v0 := 0; v0 < n; v0 += chunkV {
		v1 := v0 + chunkV
		if v1 > n {
			v1 = n
		}
		for l, a := range attrs {
			if a == nil {
				continue
			}
			for v := v0; v < v1; v++ {
				a[v] = b.curr[v*L+l]
			}
		}
	}
	return out, nil
}
