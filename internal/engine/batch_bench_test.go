package engine_test

import (
	"testing"

	"nxgraph/internal/algorithms"
	"nxgraph/internal/engine"
	"nxgraph/internal/gen"
	"nxgraph/internal/testutil"
)

// benchRoots spreads n query roots over the vertex id space.
func benchRoots(n int, numVertices uint32) []uint32 {
	roots := make([]uint32, n)
	for i := range roots {
		roots[i] = uint32(uint64(i) * 2654435761 % uint64(numVertices))
	}
	return roots
}

func benchBatchEngine(b *testing.B) (*engine.Engine, []uint32) {
	b.Helper()
	g, err := gen.RMAT(gen.DefaultRMAT(13, 12, 77))
	if err != nil {
		b.Fatal(err)
	}
	st, oracle := testutil.BuildStore(b, g, testutil.StoreOptions{P: 8})
	e, err := engine.New(st, engine.Config{Threads: 2})
	if err != nil {
		b.Fatal(err)
	}
	roots := benchRoots(64, oracle.NumVertices)
	// Warm the block cache so both modes measure pure compute.
	if _, err := algorithms.PersonalizedPageRank(e, roots[0], 0.85, 5); err != nil {
		b.Fatal(err)
	}
	return e, roots
}

// BenchmarkPPRBatch64Fused runs 64 personalized PageRank queries as one
// fused batch per op; compare against BenchmarkPPRBatch64Sequential for
// the fusion speedup (the tentpole target is ≥5× aggregate throughput).
func BenchmarkPPRBatch64Fused(b *testing.B) {
	e, roots := benchBatchEngine(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := algorithms.PersonalizedPageRankBatch(e, roots, 0.85, 5); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(len(roots)*b.N)/b.Elapsed().Seconds(), "queries/s")
}

// BenchmarkPPRBatch64Sequential runs the same 64 queries back to back,
// one engine run each.
func BenchmarkPPRBatch64Sequential(b *testing.B) {
	e, roots := benchBatchEngine(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, r := range roots {
			if _, err := algorithms.PersonalizedPageRank(e, r, 0.85, 5); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(len(roots)*b.N)/b.Elapsed().Seconds(), "queries/s")
}
