package engine

import (
	"math"

	"nxgraph/internal/storage"
)

// This file holds the fused multi-lane gather and apply kernels of
// BatchRun. The gather kernels keep the scalar gatherCSR's shape — a
// per-destination local fold over the destination's in-edges, then one
// fold of the local into the accumulator — replicated per lane, so every
// lane's floating-point operations happen in exactly the order a scalar
// run would perform them and results stay bit-identical.
//
// When every lane declares the same KernelHint, the per-edge Program
// interface dispatch (two calls per edge per lane in the generic path)
// is replaced by direct arithmetic on the SoA arrays. This is where the
// fused throughput win comes from: the edge decode, degree load, and
// tombstone check are paid once per edge, and the per-lane work shrinks
// to one or two FP operations on consecutive memory.

// gatherCell folds destinations [k0, k1) of sub-shard ss into the SoA
// accumulator b.next for the given lanes. del is the overlay tombstone
// predicate for base cells (nil when the cell has no pending removals);
// scaled is the direction's hoisted rank-sum Gather array, non-nil
// exactly when the batch hint is KernelRankSum.
func (b *BatchRun) gatherCell(ss *storage.SubShard, deg []uint32, scaled []float64, del func(src, dst uint32) bool, lanes []int, k0, k1 int) {
	// contig: lanes is a run of consecutive lane ids, letting the
	// specialized kernels slice the SoA arrays directly instead of
	// indirecting through the lane list. This is the common shape for
	// dense programs (PPR lanes never deactivate).
	contig := true
	for x, l := range lanes {
		if l != lanes[0]+x {
			contig = false
			break
		}
	}
	local := make([]float64, len(lanes))
	switch b.hint {
	case KernelRankSum:
		b.gatherRankSum(ss, scaled, del, lanes, contig, local, k0, k1)
	case KernelHopMin:
		b.gatherMin(ss, deg, del, lanes, contig, local, k0, k1, false)
	case KernelDistMin:
		b.gatherMin(ss, deg, del, lanes, contig, local, k0, k1, true)
	default:
		b.gatherGeneric(ss, deg, del, lanes, local, k0, k1)
	}
}

// gatherGeneric is the hint-free fused kernel: per-edge Program
// dispatch, one Gather+Sum pair per lane.
func (b *BatchRun) gatherGeneric(ss *storage.SubShard, deg []uint32, del func(src, dst uint32) bool, lanes []int, local []float64, k0, k1 int) {
	L := b.lcount
	zero := b.ps[lanes[0]].Zero()
	for k := k0; k < k1; k++ {
		d := ss.Dsts[k]
		for x := range local {
			local[x] = zero
		}
		lo, hi := ss.Offsets[k], ss.Offsets[k+1]
		for t := lo; t < hi; t++ {
			s := ss.Srcs[t]
			if del != nil && del(s, d) {
				continue
			}
			w := float32(1)
			if ss.Weights != nil {
				w = ss.Weights[t]
			}
			sb := int(s) * L
			for x, l := range lanes {
				p := b.ps[l]
				local[x] = p.Sum(local[x], p.Gather(b.curr[sb+l], deg[s], w))
			}
		}
		db := int(d) * L
		for x, l := range lanes {
			b.next[db+l] = b.ps[l].Sum(b.next[db+l], local[x])
		}
	}
}

// gatherRankSum is the KernelRankSum specialization:
// Gather = attr/deg, Sum = +. The divisions by float64(deg[s]) were
// hoisted into the per-iteration scaled array (see computeScaled) with
// exactly the operands a scalar Gather would use, so the edge loop here
// is pure left-to-right additions and stays bit-identical to the scalar
// pprProg/pageRankProg operations.
func (b *BatchRun) gatherRankSum(ss *storage.SubShard, scaled []float64, del func(src, dst uint32) bool, lanes []int, contig bool, local []float64, k0, k1 int) {
	L := b.lcount
	if contig && del == nil {
		b.gatherRankSumDense(ss, scaled, local, k0, k1, lanes[0])
		return
	}
	off, w := 0, len(local)
	if contig {
		off = lanes[0]
	}
	for k := k0; k < k1; k++ {
		d := ss.Dsts[k]
		for x := range local {
			local[x] = 0
		}
		lo, hi := ss.Offsets[k], ss.Offsets[k+1]
		for t := lo; t < hi; t++ {
			s := ss.Srcs[t]
			if del != nil && del(s, d) {
				continue
			}
			sb := int(s) * L
			if contig {
				addLanes(local, scaled[sb+off:sb+off+w])
			} else {
				for x, l := range lanes {
					local[x] += scaled[sb+l]
				}
			}
		}
		db := int(d) * L
		if contig {
			addLanes(b.next[db+off:db+off+w], local)
		} else {
			for x, l := range lanes {
				b.next[db+l] += local[x]
			}
		}
	}
}

// denseFoldMax bounds the per-destination edge count the interchanged
// fold handles; beyond it the streaming local-buffer fold wins (a hub
// destination's source rows overflow the cache when revisited per lane).
const denseFoldMax = 32

// gatherRankSumDense is gatherRankSum for the hot shape: a consecutive
// lane run with no overlay tombstones. With P intervals a destination
// sees only ~1/P of its in-edges per cell, so most destinations here
// carry a handful of edges; instead of the general three-pass
// local-buffer fold (zero local, add each edge, fold into next) it
// sweeps the lanes once, accumulating the destination's whole edge list
// in a register. Per lane the additions are the scalar fold's, in the
// scalar fold's order — ranks are never -0, so 0+g == g and
// next+(0+g) == next+g — keeping results bit-identical.
func (b *BatchRun) gatherRankSumDense(ss *storage.SubShard, scaled, local []float64, k0, k1, off int) {
	L := b.lcount
	w := len(local)
	var offBuf [denseFoldMax]int // per-destination source row offsets
	for k := k0; k < k1; k++ {
		lo, hi := ss.Offsets[k], ss.Offsets[k+1]
		if lo >= hi {
			continue // no edges: the fold would add local's zeros, a bitwise no-op
		}
		db := int(ss.Dsts[k])*L + off
		sb := int(ss.Srcs[lo])*L + off
		if hi == lo+1 {
			addLanes(b.next[db:db+w], scaled[sb:sb+w])
			continue
		}
		if e := int(hi - lo); e <= denseFoldMax {
			s0 := scaled[sb : sb+w]
			ns := b.next[db : db+w]
			switch e {
			case 2: // the offs loop's per-lane overhead rivals one add
				o1 := int(ss.Srcs[lo+1])*L + off
				s1 := scaled[o1 : o1+w]
				for x, g := range s0 {
					ns[x] += g + s1[x]
				}
			case 3:
				o1 := int(ss.Srcs[lo+1])*L + off
				o2 := int(ss.Srcs[lo+2])*L + off
				s1, s2 := scaled[o1:o1+w], scaled[o2:o2+w]
				for x, g := range s0 {
					ns[x] += g + s1[x] + s2[x]
				}
			default:
				offs := offBuf[:e-1]
				for t := lo + 1; t < hi; t++ {
					offs[t-lo-1] = int(ss.Srcs[t])*L + off
				}
				for x, g := range s0 {
					for _, so := range offs {
						g += scaled[so+x]
					}
					ns[x] += g
				}
			}
			continue
		}
		copy(local, scaled[sb:sb+w]) // local = 0 + first gather, as one move
		for t := lo + 1; t < hi; t++ {
			sb := int(ss.Srcs[t])*L + off
			addLanes(local, scaled[sb:sb+w])
		}
		addLanes(b.next[db:db+w], local)
	}
}

// addLanes is the fused rank kernel's innermost operation: element-wise
// dst[x] += src[x], unrolled four wide. The additions are independent
// across x, so unrolling reorders nothing; it exists because this loop
// runs once per edge per chunk and loop overhead otherwise rivals the
// arithmetic.
func addLanes(dst, src []float64) {
	if len(src) > len(dst) {
		return // never happens: both are lane-width; guards hoist checks
	}
	x := 0
	for ; x+4 <= len(src); x += 4 {
		dst[x] += src[x]
		dst[x+1] += src[x+1]
		dst[x+2] += src[x+2]
		dst[x+3] += src[x+3]
	}
	for ; x < len(src); x++ {
		dst[x] += src[x]
	}
}

// gatherMin is the KernelHopMin/KernelDistMin specialization:
// Gather = attr+1 (hops) or attr+float64(w) (distances), Sum = math.Min.
// Zero is +Inf for both programs, so local starts at the lanes' shared
// Zero value.
func (b *BatchRun) gatherMin(ss *storage.SubShard, deg []uint32, del func(src, dst uint32) bool, lanes []int, contig bool, local []float64, k0, k1 int, weighted bool) {
	L := b.lcount
	zero := b.ps[lanes[0]].Zero()
	off, w := lanes[0], len(local)
	for k := k0; k < k1; k++ {
		d := ss.Dsts[k]
		for x := range local {
			local[x] = zero
		}
		lo, hi := ss.Offsets[k], ss.Offsets[k+1]
		for t := lo; t < hi; t++ {
			s := ss.Srcs[t]
			if del != nil && del(s, d) {
				continue
			}
			step := 1.0
			if weighted {
				wt := float32(1)
				if ss.Weights != nil {
					wt = ss.Weights[t]
				}
				step = float64(wt)
			}
			sb := int(s) * L
			if contig {
				cs := b.curr[sb+off : sb+off+w]
				for x := range local {
					local[x] = math.Min(local[x], cs[x]+step)
				}
			} else {
				for x, l := range lanes {
					local[x] = math.Min(local[x], b.curr[sb+l]+step)
				}
			}
		}
		db := int(d) * L
		if contig {
			ns := b.next[db+off : db+off+w]
			for x := range local {
				ns[x] = math.Min(ns[x], local[x])
			}
		} else {
			for x, l := range lanes {
				b.next[db+l] = math.Min(b.next[db+l], local[x])
			}
		}
	}
}

// applyLane applies lane l's accumulated contributions for vertices
// [v0, v1): next[v*L+l] = Apply(v, curr[v*L+l], next[v*L+l]), reporting
// whether any vertex changed — the SoA counterpart of applyRange with
// out aliasing acc.
func applyLane(p Program, curr, next []float64, L, l int, v0, v1 uint32) bool {
	changed := false
	for v := v0; v < v1; v++ {
		idx := int(v)*L + l
		nv, ch := p.Apply(v, curr[idx], next[idx])
		next[idx] = nv
		if ch {
			changed = true
		}
	}
	return changed
}

// copyLane carries lane l's attributes forward unchanged for vertices
// [v0, v1) — the untouched-interval (and finished-lane) path of the
// apply phase.
func copyLane(curr, next []float64, L, l int, v0, v1 uint32) {
	for v := v0; v < v1; v++ {
		idx := int(v)*L + l
		next[idx] = curr[idx]
	}
}
