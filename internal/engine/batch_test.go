package engine_test

import (
	"math"
	"strings"
	"testing"

	"nxgraph/internal/algorithms"
	"nxgraph/internal/dynamic"
	"nxgraph/internal/engine"
	"nxgraph/internal/gen"
	"nxgraph/internal/testutil"
)

// batchRoots is the fused-query fixture: distinct sources spread over
// the id space so lanes hit different frontiers.
var batchRoots = []uint32{0, 3, 7, 11, 19}

// assertBitIdentical fails unless got and want agree bit-for-bit.
func assertBitIdentical(t *testing.T, label string, got, want []float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d, want %d", label, len(got), len(want))
	}
	for v := range got {
		if got[v] != want[v] {
			t.Fatalf("%s: vertex %d = %v, want %v (fused diverges from scalar)", label, v, got[v], want[v])
		}
	}
}

// strategyConfigs enumerates the three update strategies a sequential
// run can execute under; n sizes the MPU budget to a mid-range Q.
func strategyConfigs(n int) map[string]engine.Config {
	return map[string]engine.Config{
		"spu": {Threads: 3, Strategy: engine.SPU, ChunkDsts: 16},
		"dpu": {Threads: 3, Strategy: engine.DPU, ChunkDsts: 16},
		"mpu": {Threads: 3, Strategy: engine.MPU, MemoryBudget: int64(n) * 8, ChunkDsts: 16},
	}
}

// TestFusedPPREquivalenceAllStrategies is the tentpole property: a fused
// batch of PPR queries produces, per lane, exactly the attributes a
// sequential run of that query produces — under every update strategy
// the sequential run might have used.
func TestFusedPPREquivalenceAllStrategies(t *testing.T) {
	g, err := gen.RMAT(gen.DefaultRMAT(8, 8, 7))
	if err != nil {
		t.Fatal(err)
	}
	for name, cfg := range strategyConfigs(200) {
		t.Run(name, func(t *testing.T) {
			e, _ := buildEngine(t, g, 5, cfg)
			fused, err := algorithms.PersonalizedPageRankBatch(e, batchRoots, 0.85, 6)
			if err != nil {
				t.Fatal(err)
			}
			for i, root := range batchRoots {
				seq, err := algorithms.PersonalizedPageRank(e, root, 0.85, 6)
				if err != nil {
					t.Fatal(err)
				}
				assertBitIdentical(t, name+" ppr root "+string(rune('0'+i)), fused[i].Attrs, seq.Attrs)
				if fused[i].Iterations != seq.Iterations {
					t.Fatalf("root %d: fused %d iterations, sequential %d", root, fused[i].Iterations, seq.Iterations)
				}
				if fused[i].EdgesTraversed != seq.EdgesTraversed {
					t.Fatalf("root %d: fused traversed %d edges, sequential %d", root, fused[i].EdgesTraversed, seq.EdgesTraversed)
				}
			}
		})
	}
}

// TestFusedTraversalEquivalence checks BFS (frontier-driven, lanes
// converge at different iterations) and weighted SSSP lanes against
// their sequential runs under every strategy.
func TestFusedTraversalEquivalence(t *testing.T) {
	g, err := gen.RMAT(gen.RMATConfig{Scale: 8, EdgeFactor: 6, A: 0.57, B: 0.19, C: 0.19, Seed: 11, Weighted: true})
	if err != nil {
		t.Fatal(err)
	}
	st, _ := testutil.BuildStore(t, g, testutil.StoreOptions{P: 5, Weighted: true, Transpose: true})
	for name, cfg := range strategyConfigs(200) {
		t.Run(name, func(t *testing.T) {
			e, err := engine.New(st, cfg)
			if err != nil {
				t.Fatal(err)
			}
			fusedBFS, err := algorithms.BFSBatch(e, batchRoots)
			if err != nil {
				t.Fatal(err)
			}
			fusedSSSP, err := algorithms.SSSPBatch(e, batchRoots)
			if err != nil {
				t.Fatal(err)
			}
			for i, root := range batchRoots {
				seqBFS, err := algorithms.BFS(e, root)
				if err != nil {
					t.Fatal(err)
				}
				assertBitIdentical(t, "bfs", fusedBFS[i].Attrs, seqBFS.Attrs)
				if fusedBFS[i].Iterations != seqBFS.Iterations {
					t.Fatalf("bfs root %d: fused %d iterations, sequential %d", root, fusedBFS[i].Iterations, seqBFS.Iterations)
				}
				seqSSSP, err := algorithms.SSSP(e, root)
				if err != nil {
					t.Fatal(err)
				}
				assertBitIdentical(t, "sssp", fusedSSSP[i].Attrs, seqSSSP.Attrs)
			}
		})
	}
}

// genericProg is a hint-free BFS clone: it exercises the generic
// per-edge interface-dispatch path of the fused kernel.
type genericProg struct{ root uint32 }

func (p *genericProg) Name() string  { return "generic-hops" }
func (p *genericProg) Zero() float64 { return inf() }
func (p *genericProg) Init(v uint32) (float64, bool) {
	if v == p.root {
		return 0, true
	}
	return inf(), false
}
func (p *genericProg) Gather(srcAttr float64, _ uint32, _ float32) float64 { return srcAttr + 1 }
func (p *genericProg) Sum(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}
func (p *genericProg) Apply(v uint32, old, acc float64) (float64, bool) {
	if acc < old {
		return acc, true
	}
	return old, false
}

func inf() float64 { return math.Inf(1) }

// TestFusedGenericKernelEquivalence runs hint-free programs through the
// fused generic kernel and compares each lane to its scalar run.
func TestFusedGenericKernelEquivalence(t *testing.T) {
	g, err := gen.Uniform(300, 2400, 9)
	if err != nil {
		t.Fatal(err)
	}
	e, _ := buildEngine(t, g, 4, engine.Config{Threads: 2, ChunkDsts: 32})
	ps := make([]engine.Program, len(batchRoots))
	for i, r := range batchRoots {
		ps[i] = &genericProg{root: r}
	}
	run, err := e.NewBatchRun(ps, engine.Forward)
	if err != nil {
		t.Fatal(err)
	}
	defer run.Close()
	for {
		more, err := run.Step()
		if err != nil {
			t.Fatal(err)
		}
		if !more {
			break
		}
	}
	fused, err := run.Finish()
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range batchRoots {
		seq, err := e.Run(&genericProg{root: r}, engine.Forward)
		if err != nil {
			t.Fatal(err)
		}
		assertBitIdentical(t, "generic", fused[i].Attrs, seq.Attrs)
	}
}

// TestFusedOverlayEquivalence: a fused run over a delta overlay (inserts
// and removes pending against the base store) must match sequential runs
// over the same overlay snapshot, per lane, bit for bit.
func TestFusedOverlayEquivalence(t *testing.T) {
	g, err := gen.RMAT(gen.DefaultRMAT(7, 6, 3))
	if err != nil {
		t.Fatal(err)
	}
	st, oracle := testutil.BuildStore(t, g, testutil.StoreOptions{P: 4, Transpose: true})
	log, err := dynamic.NewDeltaLog(st)
	if err != nil {
		t.Fatal(err)
	}
	// Mutate: remove some base edges, add fresh ones (including into a
	// high interval so overlay cells span the grid).
	n := uint64(oracle.NumVertices)
	for i := 0; i < 10 && i < len(oracle.Edges); i++ {
		ed := oracle.Edges[i*7%len(oracle.Edges)]
		log.Remove(uint64(ed.Src), uint64(ed.Dst))
	}
	for i := uint64(0); i < 15; i++ {
		log.Add((i*13)%n, (i*29+5)%n, 1)
	}
	for name, cfg := range strategyConfigs(int(n)) {
		t.Run(name, func(t *testing.T) {
			e, err := engine.New(st, cfg)
			if err != nil {
				t.Fatal(err)
			}
			e.SetOverlayProvider(log.Overlay)
			fused, err := algorithms.PersonalizedPageRankBatch(e, batchRoots, 0.85, 5)
			if err != nil {
				t.Fatal(err)
			}
			for i, root := range batchRoots {
				seq, err := algorithms.PersonalizedPageRank(e, root, 0.85, 5)
				if err != nil {
					t.Fatal(err)
				}
				assertBitIdentical(t, "overlay ppr", fused[i].Attrs, seq.Attrs)
			}
		})
	}
}

// TestFusedLaneCancellation: cancelling one lane mid-run yields a nil
// result for that lane and leaves every sibling bit-identical to its
// sequential run.
func TestFusedLaneCancellation(t *testing.T) {
	g, err := gen.RMAT(gen.DefaultRMAT(8, 8, 5))
	if err != nil {
		t.Fatal(err)
	}
	e, _ := buildEngine(t, g, 4, engine.Config{Threads: 2})
	roots := []uint32{1, 5, 9}
	ps := []engine.Program{
		algorithms.NewSSSPProgram(roots[0]),
		algorithms.NewSSSPProgram(roots[1]),
		algorithms.NewSSSPProgram(roots[2]),
	}
	run, err := e.NewBatchRun(ps, engine.Forward)
	if err != nil {
		t.Fatal(err)
	}
	defer run.Close()
	if _, err := run.Step(); err != nil {
		t.Fatal(err)
	}
	run.CancelLane(1)
	for {
		more, err := run.Step()
		if err != nil {
			t.Fatal(err)
		}
		if !more {
			break
		}
	}
	fused, err := run.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if fused[1] != nil || !run.LaneCancelled(1) {
		t.Fatalf("cancelled lane: result %v, LaneCancelled %v; want nil result, cancelled", fused[1], run.LaneCancelled(1))
	}
	for _, i := range []int{0, 2} {
		if run.LaneCancelled(i) {
			t.Fatalf("sibling lane %d reported cancelled", i)
		}
		seq, err := algorithms.SSSP(e, roots[i])
		if err != nil {
			t.Fatal(err)
		}
		assertBitIdentical(t, "sibling", fused[i].Attrs, seq.Attrs)
	}
}

// TestFusedWidthOne: batch width 1 must behave exactly like the scalar
// path for every algorithm family (the bit-identical-at-width-1 floor).
func TestFusedWidthOne(t *testing.T) {
	g, err := gen.Uniform(400, 3600, 21)
	if err != nil {
		t.Fatal(err)
	}
	e, _ := buildEngine(t, g, 4, engine.Config{Threads: 2})
	fused, err := algorithms.PersonalizedPageRankBatch(e, []uint32{17}, 0.9, 8)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := algorithms.PersonalizedPageRank(e, 17, 0.9, 8)
	if err != nil {
		t.Fatal(err)
	}
	assertBitIdentical(t, "width-1 ppr", fused[0].Attrs, seq.Attrs)
	fusedB, err := algorithms.BFSBatch(e, []uint32{17})
	if err != nil {
		t.Fatal(err)
	}
	seqB, err := algorithms.BFS(e, 17)
	if err != nil {
		t.Fatal(err)
	}
	assertBitIdentical(t, "width-1 bfs", fusedB[0].Attrs, seqB.Attrs)
}

// TestFusedRejections: mismatched Zero values and the source-sorted
// ablation order must be refused at construction.
func TestFusedRejections(t *testing.T) {
	g, err := gen.Uniform(100, 800, 2)
	if err != nil {
		t.Fatal(err)
	}
	e, _ := buildEngine(t, g, 3, engine.Config{Threads: 1})
	_, err = e.NewBatchRun([]engine.Program{
		algorithms.NewBFSProgram(0),
		algorithms.NewPageRankProgram(100, 0.85),
	}, engine.Forward)
	if err == nil || !strings.Contains(err.Error(), "Zero") {
		t.Fatalf("mixed-Zero batch: err = %v, want Zero mismatch", err)
	}

	st, _ := testutil.BuildStore(t, g, testutil.StoreOptions{P: 3})
	eAbl, err := engine.New(st, engine.Config{Threads: 1, Order: engine.SrcSortedCoarse, Strategy: engine.SPU})
	if err != nil {
		t.Fatal(err)
	}
	_, err = eAbl.NewBatchRun([]engine.Program{algorithms.NewBFSProgram(0)}, engine.Forward)
	if err == nil || !strings.Contains(err.Error(), "source-sorted") {
		t.Fatalf("ablation batch: err = %v, want source-sorted rejection", err)
	}
}
