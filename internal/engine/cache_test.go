package engine_test

import (
	"fmt"
	"testing"

	"nxgraph/internal/algorithms"
	"nxgraph/internal/engine"
	"nxgraph/internal/gen"
	"nxgraph/internal/graph"
	"nxgraph/internal/storage"
	"nxgraph/internal/testutil"
)

// TestCacheEquivalenceAcrossStrategies is the block-cache and store-
// format correctness gate: PageRank and WCC must produce bit-identical
// attributes on v1 and v2 stores, with the cache unlimited, tightly
// budgeted (evicting mid-iteration), disabled, and tiered (encoded blobs
// re-decoding on L1 misses), under SPU, DPU and MPU. The read path is
// the only thing the cache and the encoding change, so any divergence
// means a stale, corrupted, or mis-decoded block.
func TestCacheEquivalenceAcrossStrategies(t *testing.T) {
	g, err := gen.RMAT(gen.DefaultRMAT(9, 8, 11))
	if err != nil {
		t.Fatal(err)
	}
	stores := []struct {
		name string
		st   *storage.Store
	}{}
	var oracle *graph.EdgeList
	for _, f := range []int{storage.FormatV1, storage.FormatV2} {
		st, o := testutil.BuildStore(t, g, testutil.StoreOptions{P: 4, Transpose: true, Format: f})
		stores = append(stores, struct {
			name string
			st   *storage.Store
		}{fmt.Sprintf("v%d", f), st})
		oracle = o
	}
	pingPong := 2 * int64(oracle.NumVertices) * engine.Ba

	strategies := []struct {
		name string
		cfg  engine.Config
	}{
		{"spu", engine.Config{Threads: 2, Strategy: engine.SPU}},
		{"dpu", engine.Config{Threads: 2, Strategy: engine.DPU}},
		{"mpu", engine.Config{Threads: 2, Strategy: engine.MPU, MemoryBudget: pingPong / 2}},
	}
	caches := []struct {
		name       string
		cacheBytes int64
		l2Frac     float64
	}{
		{"unlimited", 0, 0},
		{"tiny", 4096, -1},     // forces eviction every iteration, no L2
		{"tiny+l2", 4096, 0.5}, // misses re-decode from the encoded tier
		{"disabled", -1, 0},
	}
	for _, algo := range []string{"pagerank", "wcc"} {
		for _, sc := range strategies {
			// One baseline per algo/strategy shared across stores and
			// cache shapes: v1 and v2 must agree bit for bit.
			var want []float64
			for _, store := range stores {
				for _, cc := range caches {
					cfg := sc.cfg
					cfg.CacheBytes = cc.cacheBytes
					cfg.CacheL2Frac = cc.l2Frac
					e, err := engine.New(store.st, cfg)
					if err != nil {
						t.Fatal(err)
					}
					var attrs []float64
					switch algo {
					case "pagerank":
						res, err := algorithms.PageRank(e, 0.85, 8)
						if err != nil {
							t.Fatalf("%s/%s/%s/%s: %v", algo, sc.name, store.name, cc.name, err)
						}
						attrs = res.Attrs
					case "wcc":
						res, err := algorithms.WCC(e)
						if err != nil {
							t.Fatalf("%s/%s/%s/%s: %v", algo, sc.name, store.name, cc.name, err)
						}
						attrs = res.Attrs
					}
					if want == nil {
						want = attrs
						continue
					}
					for v := range want {
						if attrs[v] != want[v] {
							t.Fatalf("%s/%s: store=%s cache=%s diverges at vertex %d: %g vs %g",
								algo, sc.name, store.name, cc.name, v, attrs[v], want[v])
						}
					}
				}
			}
		}
	}
}

// TestWarmRunZeroBaseReads is the tentpole's acceptance property: a
// second run on the same graph finds every sub-shard resident in the
// shared cache and performs zero disk reads. Under SPU nothing else is
// read either (attributes and hubs exist only for on-disk intervals),
// so the whole run is I/O-free.
func TestWarmRunZeroBaseReads(t *testing.T) {
	g, err := gen.RMAT(gen.DefaultRMAT(9, 8, 13))
	if err != nil {
		t.Fatal(err)
	}
	st, oracle := testutil.BuildStore(t, g, testutil.StoreOptions{P: 4})
	e, err := engine.New(st, engine.Config{Threads: 2}) // SPU, unlimited cache
	if err != nil {
		t.Fatal(err)
	}
	cold, err := algorithms.PageRank(e, 0.85, 5)
	if err != nil {
		t.Fatal(err)
	}
	if cold.IO.BytesRead == 0 {
		t.Fatal("cold run read nothing — measurement broken")
	}
	before := st.Disk().Stats().Snapshot()
	warm, err := algorithms.PageRank(e, 0.85, 5)
	if err != nil {
		t.Fatal(err)
	}
	delta := st.Disk().Stats().Snapshot().Sub(before)
	if delta.BytesRead != 0 {
		t.Fatalf("warm run read %d bytes from disk, want 0", delta.BytesRead)
	}
	for v := range cold.Attrs {
		if cold.Attrs[v] != warm.Attrs[v] {
			t.Fatalf("warm run diverged at vertex %d", v)
		}
	}
	cs := e.CacheStats()
	if cs.Hits == 0 || cs.Evictions != 0 {
		t.Fatalf("cache stats = %+v, want hits > 0 and no evictions", cs)
	}

	// MPU warm runs keep streaming attributes and hubs, but with an
	// explicit block-cache budget covering the edge set, base sub-shard
	// reads also vanish after the first run (the satellite-1 property:
	// the budget boundary degrades via LRU instead of cliff-ing).
	em, err := engine.New(st, engine.Config{
		Threads:      2,
		Strategy:     engine.MPU,
		MemoryBudget: int64(oracle.NumVertices) * engine.Ba, // half the ping-pong need
		CacheBytes:   32 << 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := algorithms.PageRank(em, 0.85, 3); err != nil {
		t.Fatal(err)
	}
	missesAfterCold := em.CacheStats().Misses
	if _, err := algorithms.PageRank(em, 0.85, 3); err != nil {
		t.Fatal(err)
	}
	if m := em.CacheStats().Misses; m != missesAfterCold {
		t.Fatalf("warm MPU run re-decoded %d blocks", m-missesAfterCold)
	}
}

// TestTieredCacheCutsDiskReads pins the L2 tier's value on the engine
// read path: with an L1 too small for the edge set but an L2 that holds
// every encoded blob, the second run decodes from RAM and reads zero
// disk bytes.
func TestTieredCacheCutsDiskReads(t *testing.T) {
	g, err := gen.RMAT(gen.DefaultRMAT(10, 8, 17))
	if err != nil {
		t.Fatal(err)
	}
	st, _ := testutil.BuildStore(t, g, testutil.StoreOptions{P: 4, Format: storage.FormatV2})
	e, err := engine.New(st, engine.Config{
		Threads:     2,
		CacheBytes:  64 << 10, // far below the decoded edge set
		CacheL2Frac: 0.95,     // capped to 0.9 by SplitBudget; most bytes encoded
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := algorithms.PageRank(e, 0.85, 3); err != nil {
		t.Fatal(err)
	}
	cs := e.CacheStats()
	if cs.L2Hits == 0 {
		t.Fatalf("thrashing L1 never hit the encoded tier: %+v", cs)
	}
	if cs.L2ResidentBytes == 0 || cs.L2PinnedBytes != 0 {
		t.Fatalf("L2 accounting at rest = %+v", cs)
	}
	before := st.Disk().Stats().Snapshot()
	if _, err := algorithms.PageRank(e, 0.85, 3); err != nil {
		t.Fatal(err)
	}
	if d := st.Disk().Stats().Snapshot().Sub(before); d.BytesRead != 0 {
		t.Fatalf("second run read %d disk bytes despite a fully resident L2", d.BytesRead)
	}
}

// BenchmarkWarmCachePageRank measures PageRank on a fully warm shared
// cache and reports the disk bytes read per run — the headline number is
// that diskReadB/op stays 0.
func BenchmarkWarmCachePageRank(b *testing.B) {
	benchWarmCachePageRank(b, 0)
}

// BenchmarkWarmCachePageRankNoTrace is the same workload with run
// tracing disabled — comparing against BenchmarkWarmCachePageRank bounds
// the tracer's overhead (the acceptance bar is ≤ 2%).
func BenchmarkWarmCachePageRankNoTrace(b *testing.B) {
	benchWarmCachePageRank(b, -1)
}

func benchWarmCachePageRank(b *testing.B, traceSpans int) {
	g, err := gen.RMAT(gen.DefaultRMAT(13, 12, 77))
	if err != nil {
		b.Fatal(err)
	}
	st, _ := testutil.BuildStore(b, g, testutil.StoreOptions{P: 8})
	e, err := engine.New(st, engine.Config{Threads: 2, TraceSpans: traceSpans})
	if err != nil {
		b.Fatal(err)
	}
	if _, err := algorithms.PageRank(e, 0.85, 5); err != nil {
		b.Fatal(err) // warm the cache
	}
	before := st.Disk().Stats().Snapshot()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := algorithms.PageRank(e, 0.85, 5); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	delta := st.Disk().Stats().Snapshot().Sub(before)
	b.ReportMetric(float64(delta.BytesRead)/float64(b.N), "diskReadB/op")
}
