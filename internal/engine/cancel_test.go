package engine_test

import (
	"context"
	"errors"
	"testing"

	"nxgraph/internal/algorithms"
	"nxgraph/internal/engine"
	"nxgraph/internal/gen"
)

// TestRunContextCancelBeforeStart verifies an already-cancelled context
// aborts before the first iteration.
func TestRunContextCancelBeforeStart(t *testing.T) {
	g, err := gen.RMAT(gen.DefaultRMAT(8, 8, 1))
	if err != nil {
		t.Fatal(err)
	}
	e, _ := buildEngine(t, g, 4, engine.Config{})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	prog := algorithms.NewPageRankProgram(e.Store().Meta().NumVertices, 0.85)
	_, err = e.RunContext(ctx, prog, engine.Forward, nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

// TestRunContextCancelMidRun cancels from a progress callback after two
// iterations and verifies prompt termination, then reuses the engine.
func TestRunContextCancelMidRun(t *testing.T) {
	g, err := gen.RMAT(gen.DefaultRMAT(10, 8, 7))
	if err != nil {
		t.Fatal(err)
	}
	e, _ := buildEngine(t, g, 4, engine.Config{MaxIterations: 1000})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var seen []int
	prog := algorithms.NewPageRankProgram(e.Store().Meta().NumVertices, 0.85)
	_, err = e.RunContext(ctx, prog, engine.Forward, func(p engine.Progress) {
		seen = append(seen, p.Iteration)
		if p.Iteration == 2 {
			cancel()
		}
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if len(seen) != 2 {
		t.Fatalf("progress called %d times, want 2 (cancel at iteration 2 must stop the run promptly)", len(seen))
	}

	// The engine and store must stay fully usable after cancellation.
	res, err := e.Run(prog, engine.Forward)
	if err != nil {
		t.Fatalf("engine unusable after cancelled run: %v", err)
	}
	if res.Iterations == 0 {
		t.Fatal("follow-up run did no work")
	}
}

// TestStepContextProgress verifies the per-iteration progress stream of a
// plain (uncancelled) run: monotone iterations and cumulative edges.
func TestStepContextProgress(t *testing.T) {
	g, err := gen.RMAT(gen.DefaultRMAT(8, 8, 3))
	if err != nil {
		t.Fatal(err)
	}
	e, _ := buildEngine(t, g, 4, engine.Config{MaxIterations: 5})
	var iters []int
	var lastEdges int64
	prog := algorithms.NewPageRankProgram(e.Store().Meta().NumVertices, 0.85)
	res, err := e.RunContext(context.Background(), prog, engine.Forward, func(p engine.Progress) {
		iters = append(iters, p.Iteration)
		if p.Edges < lastEdges {
			t.Errorf("edge counter regressed: %d -> %d", lastEdges, p.Edges)
		}
		lastEdges = p.Edges
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(iters) != res.Iterations {
		t.Fatalf("progress called %d times for %d iterations", len(iters), res.Iterations)
	}
	for i, it := range iters {
		if it != i+1 {
			t.Fatalf("iteration sequence %v not 1..n", iters)
		}
	}
	if lastEdges != res.EdgesTraversed {
		t.Fatalf("final progress edges %d != result %d", lastEdges, res.EdgesTraversed)
	}
}

// TestRunContextCancelDPU exercises the cancellation points of the
// disk-based strategies (checks between rows and columns).
func TestRunContextCancelDPU(t *testing.T) {
	g, err := gen.RMAT(gen.DefaultRMAT(9, 8, 11))
	if err != nil {
		t.Fatal(err)
	}
	e, _ := buildEngine(t, g, 4, engine.Config{Strategy: engine.DPU, MaxIterations: 1000})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	prog := algorithms.NewPageRankProgram(e.Store().Meta().NumVertices, 0.85)
	_, err = e.RunContext(ctx, prog, engine.Forward, func(p engine.Progress) {
		if p.Iteration == 1 {
			cancel()
		}
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if _, err := e.Run(prog, engine.Forward); err != nil {
		t.Fatalf("engine unusable after cancelled DPU run: %v", err)
	}
}
