package engine

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"

	"nxgraph/internal/blockcache"
	"nxgraph/internal/diskio"
	"nxgraph/internal/storage"
	"nxgraph/internal/trace"
)

// Strategy identifies an update strategy (paper §III-B).
type Strategy int

const (
	// Auto selects the fastest valid strategy from the memory budget:
	// SPU when two copies of all intervals fit, otherwise MPU (which
	// degenerates to DPU when not even one interval pair fits).
	Auto Strategy = iota
	// SPU is Single-Phase Update: ping-pong intervals resident in
	// memory, sub-shards streamed (or cached when the budget allows).
	SPU
	// DPU is Double-Phase Update: fully disk-based, ToHub + FromHub.
	DPU
	// MPU is Mixed-Phase Update: Q resident intervals handled SPU-style,
	// the rest via hubs.
	MPU
)

func (s Strategy) String() string {
	switch s {
	case Auto:
		return "auto"
	case SPU:
		return "spu"
	case DPU:
		return "dpu"
	case MPU:
		return "mpu"
	}
	return "unknown"
}

// SyncMode selects how worker updates are synchronized (paper §IV prelude:
// the callback and interval-lock implementations).
type SyncMode int

const (
	// Callback schedules conflict-free destination ranges and joins
	// workers with completion signals; no locks are taken on attribute
	// data.
	Callback SyncMode = iota
	// Lock serializes whole destination intervals with a mutex, taking
	// one task per sub-shard.
	Lock
)

func (m SyncMode) String() string {
	if m == Lock {
		return "lock"
	}
	return "callback"
}

// Order is the Table IV ablation knob: how edges inside a sub-shard are
// traversed and parallelized.
type Order int

const (
	// DstSortedFine is NXgraph's destination-sorted order with
	// fine-grained (per destination range) parallelism.
	DstSortedFine Order = iota
	// SrcSortedCoarse emulates the GraphChi-style source-sorted order
	// with coarse-grained (per sub-shard, interval-locked) parallelism.
	SrcSortedCoarse
)

func (o Order) String() string {
	if o == SrcSortedCoarse {
		return "src-sorted-coarse"
	}
	return "dst-sorted-fine"
}

// Ba is the attribute size in bytes (float64), matching the paper's
// PageRank accounting.
const Ba = 8

// Config tunes an Engine.
type Config struct {
	// Threads is the worker pool size; 0 means GOMAXPROCS.
	Threads int
	// MemoryBudget is BM in bytes; 0 means unlimited.
	MemoryBudget int64
	// Strategy picks the update strategy; Auto adapts to MemoryBudget.
	Strategy Strategy
	// Sync picks the synchronization mechanism.
	Sync SyncMode
	// Order is the Table IV ablation (destination- vs source-sorted).
	Order Order
	// MaxIterations caps the number of iterations; 0 means run until
	// every interval is inactive.
	MaxIterations int
	// ChunkDsts is the number of distinct destinations per fine-grained
	// task; 0 selects a default.
	ChunkDsts int
	// CacheBytes budgets the engine's sub-shard block cache, shared by
	// all runs on the store: 0 derives the budget from MemoryBudget
	// (unlimited when MemoryBudget is 0, the headroom past the ping-pong
	// arrays otherwise), a positive value sets it in bytes, and a
	// negative value disables caching — blocks are held only while
	// pinned by the running iteration's prefetch pipeline.
	CacheBytes int64
	// CacheL2Frac is the fraction of the block-cache budget held as
	// encoded blobs instead of decoded blocks (see blockcache.SplitBudget):
	// 0 picks blockcache.DefaultL2Frac, a negative value disables the
	// encoded tier. Encoded v2 blobs are 3-4x denser, so the tier turns
	// many would-be disk reads into in-RAM decodes.
	CacheL2Frac float64
	// TraceSpans bounds each run's span ring buffer (see internal/trace):
	// 0 selects trace.DefaultCapacity, a positive value sets the bound,
	// and a negative value disables run tracing entirely (Result.Trace is
	// then nil and instrumentation costs nothing).
	TraceSpans int
}

// cacheBudget resolves CacheBytes against MemoryBudget for a graph of n
// vertices, in the block cache's convention (< 0 unlimited, >= 0 bytes).
func (c *Config) cacheBudget(n uint32) int64 {
	switch {
	case c.CacheBytes > 0:
		return c.CacheBytes
	case c.CacheBytes < 0:
		return 0
	case c.MemoryBudget <= 0:
		return -1
	}
	b := c.MemoryBudget - 2*int64(n)*Ba
	if b < 0 {
		b = 0
	}
	return b
}

func (c *Config) threads() int {
	if c.Threads <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return c.Threads
}

func (c *Config) chunk() int {
	if c.ChunkDsts <= 0 {
		return 2048
	}
	return c.ChunkDsts
}

// Engine executes Programs over one DSSS store.
type Engine struct {
	store *storage.Store
	cfg   Config

	outDeg []uint32 // forward out-degrees
	inDeg  []uint32 // forward in-degrees (= reverse out-degrees)

	// cache holds decoded sub-shard blocks shared by every run on the
	// store; cacheGen is the store generation its keys carry. New gives
	// each engine a private cache sized by Config.CacheBytes; a serving
	// layer may substitute a process-wide cache via SetBlockCache.
	cache    *blockcache.Cache
	cacheGen uint64

	// overlayProvider, when set, supplies each new run's delta-overlay
	// snapshot (see SetOverlayProvider).
	overlayProvider OverlayProvider

	// batchMu guards batchBufs, a free list of SoA float64 arrays
	// recycled across fused batch runs. The arrays are tens of megabytes
	// (vertices × lanes); reusing them spares every fused job after the
	// first the allocation and first-touch page faults.
	batchMu   sync.Mutex
	batchBufs [][]float64
}

// getBatchBuf returns a float64 buffer of length size, reusing a pooled
// one when capacity allows. Contents are unspecified — callers must
// initialize every slot they read.
func (e *Engine) getBatchBuf(size int) []float64 {
	e.batchMu.Lock()
	defer e.batchMu.Unlock()
	for i, b := range e.batchBufs {
		if cap(b) >= size {
			last := len(e.batchBufs) - 1
			e.batchBufs[i] = e.batchBufs[last]
			e.batchBufs = e.batchBufs[:last]
			return b[:size]
		}
	}
	return make([]float64, size)
}

// putBatchBuf returns buffers to the fused-run free list. The list is
// bounded only by the number of concurrent batch runs (each holds a
// handful of arrays), so no explicit cap is needed.
func (e *Engine) putBatchBuf(bufs ...[]float64) {
	e.batchMu.Lock()
	defer e.batchMu.Unlock()
	for _, b := range bufs {
		if b != nil {
			e.batchBufs = append(e.batchBufs, b)
		}
	}
}

// New creates an engine over store.
func New(store *storage.Store, cfg Config) (*Engine, error) {
	out, in, err := store.Degrees()
	if err != nil {
		return nil, err
	}
	l1, l2 := blockcache.SplitBudget(cfg.cacheBudget(store.Meta().NumVertices), cfg.CacheL2Frac)
	return &Engine{
		store:    store,
		cfg:      cfg,
		outDeg:   out,
		inDeg:    in,
		cache:    blockcache.NewTiered(l1, l2),
		cacheGen: blockcache.NextGeneration(),
	}, nil
}

// SetBlockCache substitutes a shared block cache (and the store
// generation this engine's reads are keyed under) for the engine's
// private one. It must be called before runs are created; the serving
// layer uses it to share one budgeted cache across every registered
// graph and to retire a generation when compaction swaps the store.
func (e *Engine) SetBlockCache(c *blockcache.Cache, gen uint64) {
	e.cache, e.cacheGen = c, gen
}

// CacheStats returns the engine's block cache counters. With a shared
// cache installed they cover every store on that cache.
func (e *Engine) CacheStats() blockcache.Stats { return e.cache.Stats() }

// Store returns the engine's store.
func (e *Engine) Store() *storage.Store { return e.store }

// Config returns the engine's configuration.
func (e *Engine) Config() Config { return e.cfg }

// chooseStrategy resolves Auto against the memory budget, following
// §III-B: SPU needs 2·n·Ba for the ping-pong intervals; otherwise MPU with
// Q = ⌊BM/(2nBa)·P⌋ resident intervals, which is DPU when Q = 0.
func (e *Engine) chooseStrategy() (Strategy, int) {
	m := e.store.Meta()
	P := m.P
	if e.cfg.Strategy == SPU {
		return SPU, P
	}
	if e.cfg.Strategy == DPU {
		return DPU, 0
	}
	pingPong := 2 * int64(m.NumVertices) * Ba
	bm := e.cfg.MemoryBudget
	if bm <= 0 || bm >= pingPong {
		if e.cfg.Strategy == MPU {
			return MPU, P
		}
		return SPU, P
	}
	q := int(float64(bm) / float64(pingPong) * float64(P))
	if q > P {
		q = P
	}
	if e.cfg.Strategy == Auto && q == 0 {
		return DPU, 0
	}
	return MPU, q
}

// Result reports one program execution.
type Result struct {
	// Attrs holds the final attribute of every vertex (dense id order).
	Attrs []float64
	// Iterations is the number of iterations executed.
	Iterations int
	// Strategy is the strategy actually used (after Auto resolution).
	Strategy Strategy
	// ResidentIntervals is Q, the number of memory-resident intervals
	// (P for SPU, 0 for DPU).
	ResidentIntervals int
	// EdgesTraversed counts edge visits over all iterations (drives the
	// MTEPS metric of Fig 11).
	EdgesTraversed int64
	// IO is the store disk traffic during the run.
	IO diskio.StatsSnapshot
	// Elapsed is wall-clock run time.
	Elapsed time.Duration
	// Trace is the run's span timeline and per-iteration stage stats,
	// nil when tracing is disabled (Config.TraceSpans < 0).
	Trace *trace.Trace
}

// MTEPS returns millions of traversed edges per second.
func (r *Result) MTEPS() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.EdgesTraversed) / 1e6 / r.Elapsed.Seconds()
}

// Run executes p to completion (inactivity or MaxIterations) in the given
// direction and returns the final attributes.
func (e *Engine) Run(p Program, dir Direction) (*Result, error) {
	return e.RunContext(context.Background(), p, dir, nil)
}

// Progress reports the state of a running computation after one iteration.
type Progress struct {
	// Iteration is the number of iterations completed so far.
	Iteration int
	// Edges is the cumulative edge-traversal count.
	Edges int64
	// ActiveIntervals counts intervals active for the next iteration.
	ActiveIntervals int
	// Elapsed is wall-clock time since the run started.
	Elapsed time.Duration
}

// ProgressFunc observes per-iteration progress. It is called synchronously
// from the driving goroutine after each completed iteration, so it must be
// cheap; it must not call back into the Run.
type ProgressFunc func(Progress)

// RunContext executes p to completion like Run, but honours ctx
// cancellation — checked before every iteration and at sub-shard-batch
// (row/column) boundaries within one — and reports per-iteration progress
// to progress (which may be nil). On cancellation it returns ctx.Err();
// the engine and its store remain usable for subsequent runs.
func (e *Engine) RunContext(ctx context.Context, p Program, dir Direction, progress ProgressFunc) (*Result, error) {
	run, err := e.NewRun(p, dir)
	if err != nil {
		return nil, err
	}
	defer run.Close()
	run.SetProgress(progress)
	for {
		more, err := run.StepContext(ctx)
		if err != nil {
			return nil, err
		}
		if !more {
			break
		}
	}
	return run.Finish()
}

// validateDirection checks the store supports dir.
func (e *Engine) validateDirection(dir Direction) error {
	if dir != Forward && !e.store.Meta().HasTranspose {
		return fmt.Errorf("engine: direction %s requires a store preprocessed with Transpose", dir)
	}
	return nil
}

// degreesFor returns the source-degree array for gathering in the given
// traversal direction.
func (e *Engine) degreesFor(dir Direction) (fwd, rev []uint32) {
	return e.outDeg, e.inDeg
}
