package engine_test

import (
	"fmt"
	"testing"

	"nxgraph/internal/algorithms"
	"nxgraph/internal/engine"
	"nxgraph/internal/gen"
	"nxgraph/internal/graph"
	"nxgraph/internal/testutil"
)

func benchGraph(b *testing.B) *graph.EdgeList {
	b.Helper()
	g, err := gen.RMAT(gen.DefaultRMAT(13, 12, 77))
	if err != nil {
		b.Fatal(err)
	}
	return g
}

// BenchmarkPageRankIterationByStrategy measures one PageRank iteration
// per update strategy (the core ablation behind Fig 8).
func BenchmarkPageRankIterationByStrategy(b *testing.B) {
	g := benchGraph(b)
	for _, c := range []struct {
		name     string
		strategy engine.Strategy
		budget   func(n uint32) int64
	}{
		{"spu", engine.SPU, func(n uint32) int64 { return 0 }},
		{"mpu", engine.MPU, func(n uint32) int64 { return int64(n) * 8 }},
		{"dpu", engine.DPU, func(n uint32) int64 { return 0 }},
	} {
		b.Run(c.name, func(b *testing.B) {
			st, oracle := testutil.BuildStore(b, g, testutil.StoreOptions{P: 8})
			e, err := engine.New(st, engine.Config{
				Strategy: c.strategy, MemoryBudget: c.budget(oracle.NumVertices), Threads: 2,
			})
			if err != nil {
				b.Fatal(err)
			}
			run, err := e.NewRun(algorithms.NewPageRankProgram(oracle.NumVertices, 0.85), engine.Forward)
			if err != nil {
				b.Fatal(err)
			}
			defer run.Close()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := run.Step(); err != nil {
					b.Fatal(err)
				}
			}
			b.SetBytes(st.EdgeBytesOnDisk(false))
		})
	}
}

// BenchmarkSyncModes compares the two synchronization mechanisms the
// paper reports side by side (callback vs interval lock).
func BenchmarkSyncModes(b *testing.B) {
	g := benchGraph(b)
	for _, sync := range []engine.SyncMode{engine.Callback, engine.Lock} {
		b.Run(sync.String(), func(b *testing.B) {
			st, oracle := testutil.BuildStore(b, g, testutil.StoreOptions{P: 8})
			e, err := engine.New(st, engine.Config{Sync: sync, Threads: 2})
			if err != nil {
				b.Fatal(err)
			}
			run, err := e.NewRun(algorithms.NewPageRankProgram(oracle.NumVertices, 0.85), engine.Forward)
			if err != nil {
				b.Fatal(err)
			}
			defer run.Close()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := run.Step(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkOrderAblation is the micro version of Table IV: destination-
// sorted fine-grained vs source-sorted coarse-grained processing.
func BenchmarkOrderAblation(b *testing.B) {
	g := benchGraph(b)
	for _, order := range []engine.Order{engine.DstSortedFine, engine.SrcSortedCoarse} {
		b.Run(order.String(), func(b *testing.B) {
			st, oracle := testutil.BuildStore(b, g, testutil.StoreOptions{P: 8})
			e, err := engine.New(st, engine.Config{Order: order, Threads: 2})
			if err != nil {
				b.Fatal(err)
			}
			run, err := e.NewRun(algorithms.NewPageRankProgram(oracle.NumVertices, 0.85), engine.Forward)
			if err != nil {
				b.Fatal(err)
			}
			defer run.Close()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := run.Step(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkChunkSizes probes the fine-grained task granularity knob.
func BenchmarkChunkSizes(b *testing.B) {
	g := benchGraph(b)
	for _, chunk := range []int{64, 512, 4096, 32768} {
		b.Run(fmt.Sprintf("chunk-%d", chunk), func(b *testing.B) {
			st, oracle := testutil.BuildStore(b, g, testutil.StoreOptions{P: 8})
			e, err := engine.New(st, engine.Config{ChunkDsts: chunk, Threads: 2})
			if err != nil {
				b.Fatal(err)
			}
			run, err := e.NewRun(algorithms.NewPageRankProgram(oracle.NumVertices, 0.85), engine.Forward)
			if err != nil {
				b.Fatal(err)
			}
			defer run.Close()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := run.Step(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
