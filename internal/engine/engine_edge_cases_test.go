package engine_test

import (
	"math"
	"testing"

	"nxgraph/internal/algorithms"
	"nxgraph/internal/engine"
	"nxgraph/internal/gen"
	"nxgraph/internal/graph"
	"nxgraph/internal/refalgo"
	"nxgraph/internal/testutil"
)

// TestBothDirectionEqualsSymmetrized checks that a Both-direction run
// over a directed store gives the same labels as a Forward run over the
// explicitly symmetrized graph — i.e. Direction.Both really is the
// paper's "undirected graph = both orientations" convention.
func TestBothDirectionEqualsSymmetrized(t *testing.T) {
	g, err := gen.RMAT(gen.DefaultRMAT(9, 6, 31))
	if err != nil {
		t.Fatal(err)
	}
	eBoth, oracle := buildEngine(t, g, 5, engine.Config{Threads: 2})
	both, err := eBoth.Run(algorithms.NewWCCProgram(), engine.Both)
	if err != nil {
		t.Fatal(err)
	}
	// Forward over the symmetrized compacted oracle graph.
	sym := oracle.Symmetrize()
	st, _ := testutil.BuildStore(t, sym, testutil.StoreOptions{P: 5})
	eSym, err := engine.New(st, engine.Config{Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	fwd, err := eSym.Run(algorithms.NewWCCProgram(), engine.Forward)
	if err != nil {
		t.Fatal(err)
	}
	testutil.SamePartition(t, algorithms.Labels(both.Attrs), algorithms.Labels(fwd.Attrs))
}

func TestSelfLoopsAndDuplicateEdges(t *testing.T) {
	// Self-loops feed rank back; duplicate edges count twice. The
	// oracle handles both, so exact agreement proves the engine does.
	g := &graph.EdgeList{NumVertices: 4, Edges: []graph.Edge{
		{Src: 0, Dst: 0}, {Src: 0, Dst: 1}, {Src: 0, Dst: 1}, // dup
		{Src: 1, Dst: 2}, {Src: 2, Dst: 3}, {Src: 3, Dst: 0},
	}}
	e, oracle := buildEngine(t, g, 2, engine.Config{Threads: 2})
	res, err := algorithms.PageRank(e, 0.85, 12)
	if err != nil {
		t.Fatal(err)
	}
	want := refalgo.PageRank(oracle, 0.85, 12)
	for v := range want {
		if math.Abs(res.Attrs[v]-want[v]) > 1e-12 {
			t.Fatalf("vertex %d: %v vs %v", v, res.Attrs[v], want[v])
		}
	}
}

func TestAllDanglingGraph(t *testing.T) {
	// Star into a single sink: nearly all mass ends in dangling
	// redistribution; exercises the aggregator heavily.
	g := &graph.EdgeList{NumVertices: 8}
	for v := uint32(0); v < 7; v++ {
		g.Edges = append(g.Edges, graph.Edge{Src: v, Dst: 7})
	}
	for _, strategy := range []engine.Strategy{engine.SPU, engine.DPU} {
		e, oracle := buildEngine(t, g, 2, engine.Config{Strategy: strategy, Threads: 2})
		res, err := algorithms.PageRank(e, 0.85, 20)
		if err != nil {
			t.Fatal(err)
		}
		want := refalgo.PageRank(oracle, 0.85, 20)
		for v := range want {
			if math.Abs(res.Attrs[v]-want[v]) > 1e-12 {
				t.Fatalf("%s vertex %d: %v vs %v", strategy, v, res.Attrs[v], want[v])
			}
		}
	}
}

// TestUnreachableBFSTerminates ensures the activity machinery terminates
// runs where the frontier dies immediately.
func TestUnreachableBFSTerminates(t *testing.T) {
	g := &graph.EdgeList{NumVertices: 4, Edges: []graph.Edge{
		{Src: 0, Dst: 1}, {Src: 2, Dst: 3},
	}}
	e, _ := buildEngine(t, g, 2, engine.Config{Threads: 1})
	res, err := algorithms.BFS(e, 3) // vertex 3 has no out-edges
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations > 2 {
		t.Fatalf("dead frontier ran %d iterations", res.Iterations)
	}
	if res.Attrs[3] != 0 {
		t.Fatalf("root depth %v", res.Attrs[3])
	}
	for _, v := range []int{0, 1, 2} {
		if !math.IsInf(res.Attrs[v], 1) {
			t.Fatalf("vertex %d should be unreachable, got %v", v, res.Attrs[v])
		}
	}
}

// TestUnevenIntervals covers n not divisible by P (short last interval)
// for every strategy.
func TestUnevenIntervals(t *testing.T) {
	g, err := gen.Uniform(101, 900, 17) // 101 vertices, P=7 → last interval short
	if err != nil {
		t.Fatal(err)
	}
	for _, strategy := range []engine.Strategy{engine.SPU, engine.DPU, engine.MPU} {
		e, oracle := buildEngine(t, g, 7, engine.Config{
			Strategy: strategy, MemoryBudget: int64(g.NumVertices) * 8, Threads: 2,
		})
		res, err := algorithms.PageRank(e, 0.85, 6)
		if err != nil {
			t.Fatalf("%s: %v", strategy, err)
		}
		want := refalgo.PageRank(oracle, 0.85, 6)
		for v := range want {
			if math.Abs(res.Attrs[v]-want[v]) > 1e-12 {
				t.Fatalf("%s vertex %d: %v vs %v", strategy, v, res.Attrs[v], want[v])
			}
		}
	}
}

// TestRunReuseAcrossPhases exercises the stepping API the SCC/HITS
// orchestration depends on: reset, reactivate, re-step.
func TestRunReuseAcrossPhases(t *testing.T) {
	g, _ := gen.Uniform(200, 1500, 23)
	e, oracle := buildEngine(t, g, 4, engine.Config{Threads: 2})
	run, err := e.NewRun(algorithms.NewPageRankProgram(oracle.NumVertices, 0.85), engine.Forward)
	if err != nil {
		t.Fatal(err)
	}
	defer run.Close()
	if _, err := run.Step(); err != nil {
		t.Fatal(err)
	}
	if run.Iterations() != 1 {
		t.Fatalf("iterations = %d", run.Iterations())
	}
	run.ResetIterations()
	if run.Iterations() != 0 {
		t.Fatal("reset failed")
	}
	run.ActivateAll()
	if _, err := run.Step(); err != nil {
		t.Fatal(err)
	}
	run.ActivateVertex(0)
	if _, err := run.Finish(); err != nil {
		t.Fatal(err)
	}
	// A closed run refuses to step.
	run.Close()
	if _, err := run.Step(); err == nil {
		t.Fatal("step on closed run accepted")
	}
}

func TestEdgesTraversedCount(t *testing.T) {
	g, _ := gen.Uniform(100, 1000, 29)
	e, oracle := buildEngine(t, g, 4, engine.Config{Threads: 2})
	res, err := algorithms.PageRank(e, 0.85, 3)
	if err != nil {
		t.Fatal(err)
	}
	m := int64(len(oracle.Edges))
	if res.EdgesTraversed != 3*m {
		t.Fatalf("traversed %d edges, want %d", res.EdgesTraversed, 3*m)
	}
}

// TestWeightedStoreDefaultsWeightOne checks SSSP over an unweighted
// store equals BFS (all weights read as 1).
func TestWeightedStoreDefaultsWeightOne(t *testing.T) {
	g, _ := gen.Uniform(150, 1200, 37)
	e, _ := buildEngine(t, g, 4, engine.Config{Threads: 2})
	bfs, err := algorithms.BFS(e, 0)
	if err != nil {
		t.Fatal(err)
	}
	sssp, err := algorithms.SSSP(e, 0)
	if err != nil {
		t.Fatal(err)
	}
	for v := range bfs.Attrs {
		if bfs.Attrs[v] != sssp.Attrs[v] {
			t.Fatalf("vertex %d: bfs %v, sssp %v", v, bfs.Attrs[v], sssp.Attrs[v])
		}
	}
}
