package engine_test

import (
	"math"
	"testing"
	"testing/quick"

	"nxgraph/internal/algorithms"
	"nxgraph/internal/bitset"
	"nxgraph/internal/engine"
	"nxgraph/internal/gen"
	"nxgraph/internal/graph"
	"nxgraph/internal/refalgo"
	"nxgraph/internal/testutil"
)

func buildEngine(t testing.TB, g *graph.EdgeList, p int, cfg engine.Config) (*engine.Engine, *graph.EdgeList) {
	t.Helper()
	st, oracle := testutil.BuildStore(t, g, testutil.StoreOptions{P: p, Transpose: true})
	e, err := engine.New(st, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return e, oracle
}

// TestStrategyEquivalenceQuick is the central engine property: for random
// graphs, partitionings and budgets, SPU, DPU and MPU produce bitwise
// identical PageRank trajectories.
func TestStrategyEquivalenceQuick(t *testing.T) {
	f := func(seed int64, pRaw, fracRaw uint8) bool {
		g, err := gen.Uniform(uint32(50+int(pRaw)*3), 1200, seed)
		if err != nil {
			return false
		}
		p := 2 + int(pRaw)%9
		run := func(strategy engine.Strategy, budget int64) []float64 {
			e, _ := buildEngine(t, g, p, engine.Config{
				Threads: 3, Strategy: strategy, MemoryBudget: budget, ChunkDsts: 16,
			})
			res, err := algorithms.PageRank(e, 0.85, 4)
			if err != nil {
				t.Fatal(err)
			}
			return res.Attrs
		}
		spu := run(engine.SPU, 0)
		dpu := run(engine.DPU, 0)
		// A budget forcing a mid-range Q.
		n := int64(len(spu))
		budget := n * 8 * (1 + int64(fracRaw)%2)
		mpu := run(engine.MPU, budget)
		for v := range spu {
			if spu[v] != dpu[v] || spu[v] != mpu[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}

func TestAutoStrategySelection(t *testing.T) {
	g, _ := gen.Uniform(1000, 8000, 1)
	cases := []struct {
		budget int64
		want   engine.Strategy
	}{
		{0, engine.SPU},
		{1 << 40, engine.SPU},
		{8 * 1000, engine.MPU}, // half the ping-pong need
		{100, engine.DPU},      // not even one interval pair
	}
	for _, c := range cases {
		e, _ := buildEngine(t, g, 8, engine.Config{MemoryBudget: c.budget})
		res, err := algorithms.PageRank(e, 0.85, 1)
		if err != nil {
			t.Fatal(err)
		}
		if res.Strategy != c.want {
			t.Errorf("budget %d: strategy %s, want %s", c.budget, res.Strategy, c.want)
		}
	}
}

func TestSPUZeroDiskTrafficWhenCached(t *testing.T) {
	g, _ := gen.Uniform(500, 5000, 2)
	e, _ := buildEngine(t, g, 4, engine.Config{Strategy: engine.SPU})
	run, err := e.NewRun(algorithms.NewPageRankProgram(500, 0.85), engine.Forward)
	if err != nil {
		t.Fatal(err)
	}
	defer run.Close()
	// Warm-up (the first iteration populates the block cache); measure
	// one iteration.
	if _, err := run.Step(); err != nil {
		t.Fatal(err)
	}
	before := e.Store().Disk().Stats().Snapshot()
	if _, err := run.Step(); err != nil {
		t.Fatal(err)
	}
	delta := e.Store().Disk().Stats().Snapshot().Sub(before)
	if delta.Total() != 0 {
		t.Fatalf("fully-cached SPU iteration moved %d bytes", delta.Total())
	}
}

// TestDPUIOMatchesTableII validates the measured per-iteration traffic of
// the DPU strategy against the analytic model (Table II, implementation
// variant: one extra n·Ba read for old attributes in FromHub). The block
// cache is disabled: Table II models the streaming read path, which the
// cache exists to short-circuit.
func TestDPUIOMatchesTableII(t *testing.T) {
	g, _ := gen.RMAT(gen.DefaultRMAT(10, 10, 3))
	st, oracle := testutil.BuildStore(t, g, testutil.StoreOptions{P: 6})
	e, err := engine.New(st, engine.Config{Strategy: engine.DPU, Threads: 2, CacheBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	run, err := e.NewRun(algorithms.NewPageRankProgram(oracle.NumVertices, 0.85), engine.Forward)
	if err != nil {
		t.Fatal(err)
	}
	defer run.Close()
	if _, err := run.Step(); err != nil {
		t.Fatal(err)
	}
	before := st.Disk().Stats().Snapshot()
	if _, err := run.Step(); err != nil {
		t.Fatal(err)
	}
	delta := st.Disk().Stats().Snapshot().Sub(before)

	n := int64(oracle.NumVertices)
	edgeBytes := st.EdgeBytesOnDisk(false)
	var hubEntries int64
	for _, info := range st.Meta().SubShards {
		hubEntries += info.Dsts
	}
	hubBytes := hubEntries * 12 // Bv + Ba
	wantRead := edgeBytes + 2*n*8 + hubBytes
	wantWrite := n*8 + hubBytes
	if delta.BytesRead != wantRead {
		t.Errorf("DPU read %d bytes/iter, model says %d", delta.BytesRead, wantRead)
	}
	if delta.BytesWritten != wantWrite {
		t.Errorf("DPU wrote %d bytes/iter, model says %d", delta.BytesWritten, wantWrite)
	}
}

// TestMPUIOBetweenSPUAndDPU checks the monotonicity claim of §III-B3: per-
// iteration traffic shrinks as the resident fraction Q/P grows.
func TestMPUIOBetweenSPUAndDPU(t *testing.T) {
	g, _ := gen.RMAT(gen.DefaultRMAT(10, 10, 4))
	measure := func(strategy engine.Strategy, budget int64) int64 {
		st, oracle := testutil.BuildStore(t, g, testutil.StoreOptions{P: 8})
		// Cache disabled: the monotonicity claim is about streaming I/O.
		e, err := engine.New(st, engine.Config{Strategy: strategy, MemoryBudget: budget, Threads: 2, CacheBytes: -1})
		if err != nil {
			t.Fatal(err)
		}
		run, err := e.NewRun(algorithms.NewPageRankProgram(oracle.NumVertices, 0.85), engine.Forward)
		if err != nil {
			t.Fatal(err)
		}
		defer run.Close()
		if _, err := run.Step(); err != nil {
			t.Fatal(err)
		}
		before := st.Disk().Stats().Snapshot()
		if _, err := run.Step(); err != nil {
			t.Fatal(err)
		}
		return st.Disk().Stats().Snapshot().Sub(before).Total()
	}
	n := int64(1) << 10 // ≥ oracle n
	dpu := measure(engine.DPU, 0)
	mpuLow := measure(engine.MPU, n*8/2)    // few resident intervals
	mpuHigh := measure(engine.MPU, n*8*3/2) // most intervals resident
	if !(mpuHigh <= mpuLow && mpuLow <= dpu) {
		t.Fatalf("traffic not monotone in residency: dpu=%d mpuLow=%d mpuHigh=%d",
			dpu, mpuLow, mpuHigh)
	}
}

func TestBFSSkipsInactiveIntervals(t *testing.T) {
	// A long path: each iteration should touch O(1) sub-shards, so total
	// edge traversals stay near-linear rather than iterations×m.
	n := uint32(512)
	g := &graph.EdgeList{NumVertices: n}
	for v := uint32(0); v+1 < n; v++ {
		g.Edges = append(g.Edges, graph.Edge{Src: v, Dst: v + 1})
	}
	e, _ := buildEngine(t, g, 8, engine.Config{Threads: 2})
	res, err := algorithms.BFS(e, 0)
	if err != nil {
		t.Fatal(err)
	}
	m := int64(len(g.Edges))
	iters := int64(res.Iterations)
	if res.EdgesTraversed >= m*iters/4 {
		t.Fatalf("activity skipping broken: traversed %d edges over %d iterations (m=%d)",
			res.EdgesTraversed, iters, m)
	}
	if res.Attrs[n-1] != float64(n-1) {
		t.Fatalf("path end depth %v, want %d", res.Attrs[n-1], n-1)
	}
}

func TestMaskFreezesVertices(t *testing.T) {
	// Star: 0 -> {1..9}. Masking vertex 0 blocks all propagation.
	g := &graph.EdgeList{NumVertices: 10}
	for v := uint32(1); v < 10; v++ {
		g.Edges = append(g.Edges, graph.Edge{Src: 0, Dst: v})
	}
	e, oracle := buildEngine(t, g, 2, engine.Config{Threads: 1})
	run, err := e.NewRun(algorithms.NewBFSProgram(0), engine.Forward)
	if err != nil {
		t.Fatal(err)
	}
	defer run.Close()
	mask := bitset.New(int(oracle.NumVertices))
	mask.Set(0)
	run.SetMask(mask)
	for {
		more, err := run.Step()
		if err != nil {
			t.Fatal(err)
		}
		if !more {
			break
		}
	}
	attrs, err := run.Attrs()
	if err != nil {
		t.Fatal(err)
	}
	for v := 1; v < 10; v++ {
		if !math.IsInf(attrs[v], 1) {
			t.Fatalf("masked source leaked: depth[%d] = %v", v, attrs[v])
		}
	}
}

func TestSetAttrsRoundTrip(t *testing.T) {
	g, _ := gen.Uniform(300, 2000, 9)
	for _, strategy := range []engine.Strategy{engine.SPU, engine.DPU} {
		e, oracle := buildEngine(t, g, 5, engine.Config{Strategy: strategy})
		run, err := e.NewRun(algorithms.NewWCCProgram(), engine.Forward)
		if err != nil {
			t.Fatal(err)
		}
		want := make([]float64, oracle.NumVertices)
		for v := range want {
			want[v] = float64(v) * 1.5
		}
		if err := run.SetAttrs(want); err != nil {
			t.Fatal(err)
		}
		got, err := run.Attrs()
		if err != nil {
			t.Fatal(err)
		}
		for v := range want {
			if got[v] != want[v] {
				t.Fatalf("%s: attr %d = %v, want %v", strategy, v, got[v], want[v])
			}
		}
		if err := run.SetAttrs(want[:10]); err == nil {
			t.Fatal("short SetAttrs accepted")
		}
		run.Close()
	}
}

func TestSrcSortedAblationMatchesResults(t *testing.T) {
	g, _ := gen.RMAT(gen.DefaultRMAT(9, 8, 6))
	run := func(order engine.Order) []float64 {
		e, oracle := buildEngine(t, g, 4, engine.Config{Order: order, Threads: 3})
		res, err := algorithms.PageRank(e, 0.85, 5)
		if err != nil {
			t.Fatal(err)
		}
		_ = oracle
		return res.Attrs
	}
	a := run(engine.DstSortedFine)
	b := run(engine.SrcSortedCoarse)
	for v := range a {
		if math.Abs(a[v]-b[v]) > 1e-12 {
			t.Fatalf("orderings disagree at %d: %v vs %v", v, a[v], b[v])
		}
	}
}

func TestSrcSortedRequiresSPU(t *testing.T) {
	g, _ := gen.Uniform(100, 500, 3)
	st, _ := testutil.BuildStore(t, g, testutil.StoreOptions{P: 4})
	e, err := engine.New(st, engine.Config{Order: engine.SrcSortedCoarse, Strategy: engine.DPU})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.NewRun(algorithms.NewPageRankProgram(100, 0.85), engine.Forward); err == nil {
		t.Fatal("src-sorted DPU accepted")
	}
}

func TestReverseRequiresTranspose(t *testing.T) {
	g, _ := gen.Uniform(100, 500, 3)
	st, _ := testutil.BuildStore(t, g, testutil.StoreOptions{P: 4, Transpose: false})
	e, err := engine.New(st, engine.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(algorithms.NewWCCProgram(), engine.Reverse); err == nil {
		t.Fatal("reverse direction without transpose accepted")
	}
}

func TestP1SingleSubShard(t *testing.T) {
	g, _ := gen.Uniform(64, 400, 5)
	e, oracle := buildEngine(t, g, 1, engine.Config{Threads: 2})
	res, err := algorithms.PageRank(e, 0.85, 5)
	if err != nil {
		t.Fatal(err)
	}
	want := refalgo.PageRank(oracle, 0.85, 5)
	for v := range want {
		if math.Abs(res.Attrs[v]-want[v]) > 1e-12 {
			t.Fatalf("P=1 rank %d: %v vs %v", v, res.Attrs[v], want[v])
		}
	}
}

func TestMaxIterationsCap(t *testing.T) {
	g, _ := gen.Uniform(100, 1000, 6)
	st, _ := testutil.BuildStore(t, g, testutil.StoreOptions{P: 4})
	e, err := engine.New(st, engine.Config{MaxIterations: 3})
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run(algorithms.NewPageRankProgram(100, 0.85), engine.Forward)
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations != 3 {
		t.Fatalf("ran %d iterations, want 3", res.Iterations)
	}
}

func TestResultMTEPS(t *testing.T) {
	r := &engine.Result{EdgesTraversed: 2_000_000, Elapsed: 1e9}
	if got := r.MTEPS(); math.Abs(got-2) > 1e-9 {
		t.Fatalf("MTEPS = %v", got)
	}
	zero := &engine.Result{}
	if zero.MTEPS() != 0 {
		t.Fatal("zero-elapsed MTEPS should be 0")
	}
}

func TestStringers(t *testing.T) {
	if engine.SPU.String() != "spu" || engine.Auto.String() != "auto" ||
		engine.DPU.String() != "dpu" || engine.MPU.String() != "mpu" {
		t.Fatal("Strategy strings")
	}
	if engine.Callback.String() != "callback" || engine.Lock.String() != "lock" {
		t.Fatal("SyncMode strings")
	}
	if engine.Forward.String() != "forward" || engine.Reverse.String() != "reverse" ||
		engine.Both.String() != "both" {
		t.Fatal("Direction strings")
	}
	if engine.DstSortedFine.String() == engine.SrcSortedCoarse.String() {
		t.Fatal("Order strings")
	}
}
