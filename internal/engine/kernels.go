package engine

import (
	"sort"

	"nxgraph/internal/bitset"
	"nxgraph/internal/storage"
)

// view is a window over per-vertex attributes: vals[v-base] is the
// attribute of vertex v. A full-array view has base 0.
type view struct {
	vals []float64
	base uint32
}

func (v view) at(id uint32) float64 { return v.vals[id-v.base] }

// gatherCSR processes destinations k0 ≤ k < k1 of a destination-sorted
// sub-shard: for each distinct destination it folds the Gather
// contributions of its (source-sorted) in-edges with Sum and folds the
// result into acc. Distinct destination ranges are disjoint, so concurrent
// calls with non-overlapping [k0,k1) need no synchronization — this is the
// fine-grained parallelism of paper §III-D.
//
// del, when non-nil, is the delta-overlay tombstone predicate: base edges
// it reports as removed are skipped, so a run serves the post-mutation
// graph without rewriting the sub-shard on disk. Cells without pending
// removals pass nil and pay nothing.
func gatherCSR(p Program, deg []uint32, mask *bitset.Set, del func(src, dst uint32) bool, ss *storage.SubShard, src view, acc view, k0, k1 int) {
	zero := p.Zero()
	for k := k0; k < k1; k++ {
		local := zero
		d := ss.Dsts[k]
		lo, hi := ss.Offsets[k], ss.Offsets[k+1]
		for t := lo; t < hi; t++ {
			s := ss.Srcs[t]
			if mask != nil && mask.Test(int(s)) {
				continue
			}
			if del != nil && del(s, d) {
				continue
			}
			w := float32(1)
			if ss.Weights != nil {
				w = ss.Weights[t]
			}
			local = p.Sum(local, p.Gather(src.at(s), deg[s], w))
		}
		acc.vals[d-acc.base] = p.Sum(acc.vals[d-acc.base], local)
	}
}

// gatherToHub is gatherCSR writing per-destination partials into out[k]
// (parallel to ss.Dsts) instead of a dense accumulator — the ToHub
// kernel. Every k in [k0, k1) is assigned (not accumulated), so reused
// out arrays need no zeroing. del is the same tombstone predicate as in
// gatherCSR; a destination whose base edges are all tombstoned stores
// Zero, which folds as a no-op.
func gatherToHub(p Program, deg []uint32, mask *bitset.Set, del func(src, dst uint32) bool, ss *storage.SubShard, src view, out []float64, k0, k1 int) {
	zero := p.Zero()
	for k := k0; k < k1; k++ {
		local := zero
		d := ss.Dsts[k]
		lo, hi := ss.Offsets[k], ss.Offsets[k+1]
		for t := lo; t < hi; t++ {
			s := ss.Srcs[t]
			if mask != nil && mask.Test(int(s)) {
				continue
			}
			if del != nil && del(s, d) {
				continue
			}
			w := float32(1)
			if ss.Weights != nil {
				w = ss.Weights[t]
			}
			local = p.Sum(local, p.Gather(src.at(s), deg[s], w))
		}
		out[k] = local
	}
}

// srcSortedEdges is the Table IV ablation form of a sub-shard: plain edge
// triples ordered by source id (GraphChi's ordering).
type srcSortedEdges struct {
	srcs, dsts []uint32
	ws         []float32
}

// toSrcSorted flattens a destination-sorted sub-shard into source order.
func toSrcSorted(ss *storage.SubShard) *srcSortedEdges {
	m := ss.NumEdges()
	e := &srcSortedEdges{
		srcs: make([]uint32, m),
		dsts: make([]uint32, m),
	}
	if ss.Weights != nil {
		e.ws = make([]float32, m)
	}
	idx := 0
	for k := range ss.Dsts {
		for t := ss.Offsets[k]; t < ss.Offsets[k+1]; t++ {
			e.srcs[idx] = ss.Srcs[t]
			e.dsts[idx] = ss.Dsts[k]
			if e.ws != nil {
				e.ws[idx] = ss.Weights[t]
			}
			idx++
		}
	}
	order := make([]int, m)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return e.srcs[order[a]] < e.srcs[order[b]] })
	out := &srcSortedEdges{
		srcs: make([]uint32, m),
		dsts: make([]uint32, m),
	}
	if e.ws != nil {
		out.ws = make([]float32, m)
	}
	for i, o := range order {
		out.srcs[i] = e.srcs[o]
		out.dsts[i] = e.dsts[o]
		if e.ws != nil {
			out.ws[i] = e.ws[o]
		}
	}
	return out
}

// gatherSrcSorted scatters contributions edge-by-edge in source order —
// the coarse-grained comparison point of Table IV. The caller must hold
// the destination interval's lock; destinations are visited in effectively
// random order, so per-destination folding cannot be batched.
func gatherSrcSorted(p Program, deg []uint32, mask *bitset.Set, e *srcSortedEdges, src view, acc view) {
	for t := range e.srcs {
		s := e.srcs[t]
		if mask != nil && mask.Test(int(s)) {
			continue
		}
		w := float32(1)
		if e.ws != nil {
			w = e.ws[t]
		}
		d := e.dsts[t]
		acc.vals[d-acc.base] = p.Sum(acc.vals[d-acc.base], p.Gather(src.at(s), deg[s], w))
	}
}

// foldHub folds hub entries with destination index in [k0, k1) of the
// entry arrays into acc — the FromHub kernel.
func foldHub(p Program, dsts []uint32, vals []float64, acc view, k0, k1 int) {
	for k := k0; k < k1; k++ {
		d := dsts[k]
		acc.vals[d-acc.base] = p.Sum(acc.vals[d-acc.base], vals[k])
	}
}

// applyRange applies accumulated contributions for vertices [v0, v1):
// newAttr[v-base] = Apply(v, old[v-base], acc[v-base]). It writes results
// into out (which may alias acc) and reports whether any vertex changed.
// Masked vertices keep their old attribute.
func applyRange(p Program, mask *bitset.Set, old, acc, out view, v0, v1 uint32) bool {
	changed := false
	for v := v0; v < v1; v++ {
		if mask != nil && mask.Test(int(v)) {
			out.vals[v-out.base] = old.at(v)
			continue
		}
		nv, ch := p.Apply(v, old.at(v), acc.at(v))
		out.vals[v-out.base] = nv
		if ch {
			changed = true
		}
	}
	return changed
}

// fill sets vals[i] = x for all i.
func fill(vals []float64, x float64) {
	for i := range vals {
		vals[i] = x
	}
}
