package engine

import (
	"fmt"

	"nxgraph/internal/storage"
)

// Overlay presents pending structural deltas — edges inserted or removed
// since the store was preprocessed — to engine runs, enabling live
// queries over a mutating graph without rebuilding the DSSS store.
//
// An Overlay is an immutable snapshot: a Run captures one at NewRun time
// and consults it for the whole execution, so a job observes exactly the
// deltas acknowledged before it started. Implementations live outside the
// engine (internal/dynamic compiles one from a DeltaLog).
//
// Inserted edges are exposed as per-cell destination-sorted sub-shards in
// the same dense-id space as the base store; they flow through the same
// gather kernels as base edges. Removed edges are exposed as tombstones:
// a predicate the kernels consult to skip base edges. Tombstones never
// apply to overlay-inserted edges — a remove-then-re-add sequence
// tombstones the base copies and re-inserts through the overlay.
type Overlay interface {
	// Cell returns the pending inserted edges whose (source, destination)
	// intervals are (i, j) in the given traversal replica, as a
	// destination-sorted sub-shard, or nil when the cell has none. For
	// the transpose replica the edges are reversed, mirroring the
	// on-disk transposed sub-shards.
	Cell(i, j int, transpose bool) *storage.SubShard
	// CellHasDeletes reports whether cell (i, j) of the given replica may
	// contain tombstoned base edges. It gates the per-edge Deleted check
	// so cells without removals gather at full speed.
	CellHasDeletes(i, j int, transpose bool) bool
	// Deleted reports whether the base edge (src, dst) — in the replica's
	// own orientation — is tombstoned and must be skipped.
	Deleted(src, dst uint32, transpose bool) bool
	// Degrees returns the overlay-adjusted out- and in-degree arrays
	// (dense-id order, length NumVertices). Gather normalizes by source
	// degree, so serving deltas without adjusting degrees would skew
	// degree-sensitive programs like PageRank.
	Degrees() (out, in []uint32)
	// DeltaEdges returns the net edge-count delta (insertions minus
	// tombstoned base copies).
	DeltaEdges() int64
}

// OverlayProvider supplies the overlay snapshot for a new run; it may
// return (nil, nil) when no deltas are pending. It is called once per
// NewRun, from the goroutine creating the run.
type OverlayProvider func() (Overlay, error)

// SetOverlayProvider installs the engine's overlay source. It must be
// set before runs are created and not changed while runs exist; the
// provider itself may return a different snapshot per run (that is the
// point — each run sees the deltas current at its start).
func (e *Engine) SetOverlayProvider(p OverlayProvider) { e.overlayProvider = p }

// initOverlay captures the overlay snapshot for this run and resolves
// the degree arrays gather will use.
func (r *Run) initOverlay() error {
	if r.e.overlayProvider == nil {
		return nil
	}
	ov, err := r.e.overlayProvider()
	if err != nil {
		return fmt.Errorf("engine: overlay snapshot: %w", err)
	}
	if ov == nil {
		return nil
	}
	if r.e.cfg.Order == SrcSortedCoarse {
		return fmt.Errorf("engine: source-sorted ablation does not support delta overlays")
	}
	r.ov = ov
	r.ovOut, r.ovIn = ov.Degrees()
	return nil
}

// ovCell returns the overlay sub-shard for cell (i, j) of traversal flag
// d, or nil.
func (r *Run) ovCell(d, i, j int) *storage.SubShard {
	if r.ov == nil {
		return nil
	}
	return r.ov.Cell(i, j, d == 1)
}

// cellDel returns the tombstone predicate the kernels apply to base
// edges of cell (i, j), or nil when the cell has no pending removals.
func (r *Run) cellDel(d, i, j int) func(src, dst uint32) bool {
	if r.ov == nil || !r.ov.CellHasDeletes(i, j, d == 1) {
		return nil
	}
	t := d == 1
	ov := r.ov
	return func(src, dst uint32) bool { return ov.Deleted(src, dst, t) }
}

// cellHasEdges reports whether cell (i, j) of traversal flag d holds any
// edges to gather — base or overlay. It drives row/column scheduling, so
// a cell empty on disk but populated by pending insertions is still
// visited.
func (r *Run) cellHasEdges(d, i, j int) bool {
	if r.subShardInfosFor(d)[i*r.e.store.Meta().P+j].Edges > 0 {
		return true
	}
	return r.ovCell(d, i, j) != nil
}

// ovHubVals returns (allocating on first use) the in-memory accumulator
// for overlay cell (i, j): per-destination partials parallel to the
// cell's Dsts. The on-disk hub regions are sized from the base meta and
// cannot absorb overlay destinations, so overlay contributions to
// on-disk destination intervals are kept in memory — they are bounded by
// the compaction threshold, unlike the base edge set.
func (r *Run) ovHubVals(d, i, j int, cell *storage.SubShard) []float64 {
	P := r.e.store.Meta().P
	if r.ovHub[d] == nil {
		r.ovHub[d] = make(map[int][]float64)
	}
	vals := r.ovHub[d][i*P+j]
	if vals == nil {
		vals = make([]float64, cell.NumDsts())
		r.ovHub[d][i*P+j] = vals
	}
	return vals
}
