package engine

import (
	"errors"
	"strings"
	"testing"

	"nxgraph/internal/gen"
	"nxgraph/internal/storage"
	"nxgraph/internal/testutil"
)

// stubOverlay is a minimal Overlay for provider-plumbing tests.
type stubOverlay struct {
	out, in []uint32
}

func (s *stubOverlay) Cell(i, j int, transpose bool) *storage.SubShard { return nil }
func (s *stubOverlay) CellHasDeletes(i, j int, transpose bool) bool    { return false }
func (s *stubOverlay) Deleted(src, dst uint32, transpose bool) bool    { return false }
func (s *stubOverlay) Degrees() (out, in []uint32)                     { return s.out, s.in }
func (s *stubOverlay) DeltaEdges() int64                               { return 0 }

func overlayTestStore(t *testing.T) *storage.Store {
	t.Helper()
	g, err := gen.RMAT(gen.DefaultRMAT(6, 4, 5))
	if err != nil {
		t.Fatal(err)
	}
	st, _ := testutil.BuildStore(t, g, testutil.StoreOptions{P: 2})
	return st
}

// TestOverlayProviderErrorFailsRun: a failing snapshot must surface at
// NewRun instead of silently serving the base graph.
func TestOverlayProviderErrorFailsRun(t *testing.T) {
	st := overlayTestStore(t)
	e, err := New(st, Config{Threads: 1})
	if err != nil {
		t.Fatal(err)
	}
	boom := errors.New("boom")
	e.SetOverlayProvider(func() (Overlay, error) { return nil, boom })
	if _, err := e.NewRun(degProg{}, Forward); !errors.Is(err, boom) {
		t.Fatalf("NewRun error = %v, want %v", err, boom)
	}
}

// TestOverlayRejectsSrcSortedAblation: the Table IV ablation path has no
// overlay hook and must refuse rather than drop deltas.
func TestOverlayRejectsSrcSortedAblation(t *testing.T) {
	st := overlayTestStore(t)
	e, err := New(st, Config{Threads: 1, Order: SrcSortedCoarse, Strategy: SPU})
	if err != nil {
		t.Fatal(err)
	}
	out, in, err := st.Degrees()
	if err != nil {
		t.Fatal(err)
	}
	e.SetOverlayProvider(func() (Overlay, error) { return &stubOverlay{out, in}, nil })
	_, err = e.NewRun(degProg{}, Forward)
	if err == nil || !strings.Contains(err.Error(), "source-sorted") {
		t.Fatalf("NewRun error = %v, want source-sorted rejection", err)
	}
	// A nil snapshot keeps the ablation path usable.
	e.SetOverlayProvider(func() (Overlay, error) { return nil, nil })
	run, err := e.NewRun(degProg{}, Forward)
	if err != nil {
		t.Fatalf("NewRun with empty overlay: %v", err)
	}
	run.Close()
}

// degProg is a trivial program (sums in-neighbour degree shares once).
type degProg struct{}

func (degProg) Name() string                                     { return "deg" }
func (degProg) Zero() float64                                    { return 0 }
func (degProg) Init(v uint32) (float64, bool)                    { return 1, true }
func (degProg) Gather(a float64, d uint32, w float32) float64    { return a }
func (degProg) Sum(a, b float64) float64                         { return a + b }
func (degProg) Apply(v uint32, old, acc float64) (float64, bool) { return acc, false }
