package engine

import (
	"sync"
	"sync/atomic"
)

// parallelFor runs fn(i) for i in [0, n) on up to `threads` goroutines,
// pulling indices from a shared atomic counter (work stealing keeps skewed
// sub-shards from serializing the pool). It returns after every call has
// completed — the "callback" completion signalling of the paper's first
// synchronization mechanism.
func parallelFor(threads, n int, fn func(i int)) {
	if n == 0 {
		return
	}
	if threads > n {
		threads = n
	}
	if threads <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(threads)
	for t := 0; t < threads; t++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// chunkRanges splits [0, n) into ranges of at most size, returning the
// boundaries (len = number of chunks + 1).
func chunkRanges(n, size int) []int {
	if size <= 0 {
		size = 1
	}
	bounds := []int{0}
	for b := 0; b < n; {
		b += size
		if b > n {
			b = n
		}
		bounds = append(bounds, b)
	}
	if n == 0 {
		bounds = append(bounds, 0)
	}
	return bounds
}
