package engine

import (
	"sort"
	"sync"
	"sync/atomic"
)

// parallelFor runs fn(i) for i in [0, n) on up to `threads` goroutines,
// pulling indices from a shared atomic counter (work stealing keeps skewed
// sub-shards from serializing the pool). It returns after every call has
// completed — the "callback" completion signalling of the paper's first
// synchronization mechanism.
func parallelFor(threads, n int, fn func(i int)) {
	if n == 0 {
		return
	}
	if threads > n {
		threads = n
	}
	if threads <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(threads)
	for t := 0; t < threads; t++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// chunkRanges splits [0, n) into ranges of at most size, returning the
// boundaries (len = number of chunks + 1). n = 0 has zero chunks, so the
// result is the canonical single boundary [0] — callers iterating
// len(bounds)-1 chunks schedule nothing instead of one empty chunk.
func chunkRanges(n, size int) []int {
	if size <= 0 {
		size = 1
	}
	bounds := []int{0}
	for b := 0; b < n; {
		b += size
		if b > n {
			b = n
		}
		bounds = append(bounds, b)
	}
	return bounds
}

// edgeChunkRanges splits the destinations of a CSR (offsets has one entry
// per destination plus a final edge count) into chunks of roughly equal
// work, returning destination-index boundaries like chunkRanges. The cost
// of destination k is 1 + its edge count, so a chunk closes at the first
// destination where accumulated edges + destinations reaches target —
// a hub destination with a million in-edges gets a chunk of its own while
// sparse destinations pack thousands to a chunk. Boundaries stay at
// destination granularity (a single destination's fold is one
// left-associative chain and cannot split), so chunking never affects
// results, only load balance.
func edgeChunkRanges(offsets []uint32, target int) []int {
	n := len(offsets) - 1
	if n <= 0 {
		return []int{0}
	}
	if target <= 0 {
		target = 1
	}
	cost := func(k int) int { return int(offsets[k]) + k } // prefix cost: edges so far + destinations so far
	bounds := make([]int, 1, 2+cost(n)/target)
	for k := 0; k < n; {
		want := cost(k) + target
		// First boundary past k whose prefix cost reaches want; cost is
		// strictly increasing in k, so binary search applies.
		nk := k + 1 + sort.Search(n-k-1, func(i int) bool { return cost(k+1+i) >= want })
		bounds = append(bounds, nk)
		k = nk
	}
	return bounds
}
