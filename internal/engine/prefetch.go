package engine

import (
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"

	"nxgraph/internal/blockcache"
	"nxgraph/internal/storage"
	"nxgraph/internal/trace"
)

// This file is the engine's read path: every sub-shard consumed by a
// step goes through the shared block cache (pinned, decoded blocks —
// see internal/blockcache) and, within a step, through a double-buffered
// prefetch pipeline. While the row/column phase computes on batch k, one
// background goroutine pins batch k+1's blocks, so disk reads overlap
// gathering instead of serializing with it. Cache hits make the fetch a
// map lookup; misses decode once and publish for every run on the store.

// cellID names one block a phase needs: sub-shard (i, j) of traversal
// flag d (1 = transpose), optionally in the source-sorted flat form of
// the Table IV ablation.
type cellID struct {
	d, i, j int
	flat    bool
}

// spanNames interns span label strings across runs: block labels keyed
// by cellID, indexed labels (iter-3, row-0, ...) by nameKey. The label
// space is bounded — P² cells per store shape, small indices — so the
// map stays tiny while the traced read path stops allocating a fresh
// string per block acquisition.
var spanNames sync.Map

type nameKey struct {
	prefix string
	n      int
}

// spanName returns the interned prefix+itoa(n) label. Large indices
// (very long runs) skip interning so the map cannot grow without bound.
func spanName(prefix string, n int) string {
	if n >= 4096 {
		return prefix + strconv.Itoa(n)
	}
	k := nameKey{prefix, n}
	if v, ok := spanNames.Load(k); ok {
		return v.(string)
	}
	s := prefix + strconv.Itoa(n)
	spanNames.Store(k, s)
	return s
}

// name renders the cell for span labels: f/t for forward/transpose, *
// for the flat ablation form. Interned — this runs once per block
// acquisition on the traced read path.
func (c cellID) name() string {
	if v, ok := spanNames.Load(c); ok {
		return v.(string)
	}
	p := "f"
	if c.d == 1 {
		p = "t"
	}
	if c.flat {
		p += "*"
	}
	s := p + "[" + strconv.Itoa(c.i) + "," + strconv.Itoa(c.j) + "]"
	spanNames.Store(c, s)
	return s
}

// fetcher is the read-path state one executing run carries: the engine
// whose cache and store blocks come from, the run's trace, and the
// per-iteration counters the prefetch goroutines accumulate into. Both
// the scalar Run and the fused BatchRun embed a fetcher, so the block
// cache, the double-buffered pipeline, and the fetch tracing below are
// written once and promoted into both.
type fetcher struct {
	e *Engine

	// tr records the run's span timeline (nil when Config.TraceSpans is
	// negative — every instrumentation call below is then inert).
	// iterSpanID is the current iteration's span, read by the prefetch
	// goroutines to parent their block-load spans; iterHits/iterMisses
	// count block acquisitions from those goroutines. stallNS accumulates
	// fetch-batch wait time and is touched only by the step loop.
	tr         *trace.Trace
	iterSpanID atomic.Uint64
	iterHits   atomic.Int64
	iterMisses atomic.Int64
	stallNS    int64
}

// loadBlock pins cell c's decoded block through the shared cache,
// reporting whether the pin went to disk and, if so, the decoded size.
// All read paths (traced or not) funnel through here. The cache is
// tiered: an L1 miss first tries the encoded-blob tier, so the decode
// closure often runs on bytes already in RAM — those count as hits in
// the run trace (no disk stall) even though Stats tallies them as
// L2Hits.
func (r *fetcher) loadBlock(c cellID) (h *blockcache.Handle, missed bool, decoded int64, err error) {
	key := blockcache.Key{Gen: r.e.cacheGen, I: c.i, J: c.j, Transpose: c.d == 1, Flat: c.flat}
	h, err = r.e.cache.GetTiered(key,
		func() ([]byte, error) {
			// The disk read: single-flighted per sub-shard across both
			// decoded forms; reaching it is exactly one Stats miss.
			missed = true
			return r.e.store.ReadSubShardRaw(c.i, c.j, c.d == 1)
		},
		func(blob []byte) (any, int64, error) {
			ss, err := r.e.store.DecodeSubShardBlob(blob)
			if err != nil {
				return nil, 0, fmt.Errorf("decode %s: %w", c.name(), err)
			}
			if c.flat {
				fl := toSrcSorted(ss)
				decoded = fl.memBytes()
				return fl, decoded, nil
			}
			decoded = ss.MemBytes()
			return ss, decoded, nil
		})
	return
}

// getBlock pins cell c's block with an individually recorded block-load
// span. It serves the step loop's batchBlock fallbacks — rare,
// unplanned loads — so the trace counters it touches are atomics.
func (r *fetcher) getBlock(c cellID) (*blockcache.Handle, error) {
	var sp trace.Span
	if r.tr != nil {
		sp = r.tr.Start(trace.KindBlockLoad, c.name(), r.iterSpanID.Load())
	}
	h, missed, decoded, err := r.loadBlock(c)
	if r.tr != nil {
		if err == nil {
			if missed {
				sp.Tag = trace.TagMiss
				sp.Bytes = decoded
				r.iterMisses.Add(1)
			} else {
				sp.Tag = trace.TagHit
				r.iterHits.Add(1)
			}
		}
		r.tr.End(sp)
	}
	return h, err
}

// fetchTrace buffers one fetch goroutine's trace output. Misses keep
// individual spans — they carry decoded bytes and real disk latency —
// but hits coalesce into a single counted span per batch: a warm batch
// is nothing but hits, and materializing a ~0µs span per hit costs more
// in stores and ring churn than the information is worth.
type fetchTrace struct {
	spans    []trace.Span
	hits     int64
	misses   int64
	firstNS  int64 // Clock offset of the batch's first hit
	hitDurNS int64 // summed duration of the batch's hits
}

// getBlockBatched is the fetch goroutine's traced load: it samples the
// trace clock around loadBlock and folds the result into ft, deferring
// all recording and counter updates to flushFetchTrace.
func (r *fetcher) getBlockBatched(c cellID, ft *fetchTrace) (*blockcache.Handle, error) {
	began := r.tr.Clock()
	h, missed, decoded, err := r.loadBlock(c)
	if err != nil {
		return h, err
	}
	dur := r.tr.Clock() - began
	if missed {
		sp := r.tr.Make(trace.KindBlockLoad, c.name(), r.iterSpanID.Load(), began, dur)
		sp.Tag = trace.TagMiss
		sp.Bytes = decoded
		ft.spans = append(ft.spans, sp)
		ft.misses++
	} else {
		if ft.hits == 0 {
			ft.firstNS = began
		}
		ft.hits++
		ft.hitDurNS += dur
	}
	return h, nil
}

// flushFetchTrace records a batch's buffered spans — one coalesced hit
// span plus any miss spans — under a single trace lock, and settles the
// iteration's hit/miss counters with one atomic RMW each.
func (r *fetcher) flushFetchTrace(ft *fetchTrace) {
	if ft.hits > 0 {
		sp := r.tr.Make(trace.KindBlockLoad, "hits", r.iterSpanID.Load(), ft.firstNS, ft.hitDurNS)
		sp.Tag = trace.TagHit
		sp.Count = ft.hits
		ft.spans = append(ft.spans, sp)
	}
	r.tr.Record(ft.spans)
	if ft.hits != 0 {
		r.iterHits.Add(ft.hits)
	}
	if ft.misses != 0 {
		r.iterMisses.Add(ft.misses)
	}
}

// waitBatch blocks on a phase batch's prefetch, recording the blocked
// time as a fetch-batch span and charging it to the iteration's
// prefetch-stall total. Only the step loop calls it, so stallNS needs no
// synchronization.
func (r *fetcher) waitBatch(b *fetchBatch, phase string, id int) error {
	if r.tr == nil {
		return b.wait()
	}
	sp := r.tr.Start(trace.KindFetchBatch, spanName(phase, id), r.iterSpanID.Load())
	err := b.wait()
	r.stallNS += int64(r.tr.End(sp))
	return err
}

// fetchBatch holds the pinned blocks of one phase batch (a row of the
// row phase, a destination interval of the column phase). handles is
// populated by the fetch goroutine and must only be read after wait;
// extra collects fallback pins taken synchronously by the consumer so
// release returns everything at once.
type fetchBatch struct {
	handles map[cellID]*blockcache.Handle
	extra   []*blockcache.Handle
	err     error
	done    chan struct{}
}

// emptyBatch returns a completed batch with no blocks, for consumers
// whose batch was not planned (all their loads fall back to synchronous
// pins via batchBlock).
func emptyBatch() *fetchBatch {
	b := &fetchBatch{done: make(chan struct{})}
	close(b.done)
	return b
}

// startFetch pins the given cells on a background goroutine. Cells are
// loaded in slice order — ascending j within a row, matching the
// physical row-major layout of shards.dat, so misses read sequentially.
func (r *fetcher) startFetch(cells []cellID) *fetchBatch {
	if len(cells) == 0 {
		return emptyBatch()
	}
	b := &fetchBatch{
		handles: make(map[cellID]*blockcache.Handle, len(cells)),
		done:    make(chan struct{}),
	}
	go func() {
		defer close(b.done)
		var ft *fetchTrace
		if r.tr != nil {
			ft = &fetchTrace{}
			defer func() { r.flushFetchTrace(ft) }()
		}
		for _, c := range cells {
			var h *blockcache.Handle
			var err error
			if ft != nil {
				h, err = r.getBlockBatched(c, ft)
			} else {
				h, _, _, err = r.loadBlock(c)
			}
			if err != nil {
				b.err = err
				return
			}
			b.handles[c] = h
		}
	}()
	return b
}

// wait blocks until the fetch goroutine finished and reports its error.
// It must be called before reading handles.
func (b *fetchBatch) wait() error {
	<-b.done
	return b.err
}

// release unpins every block the batch holds (including fallback pins),
// waiting out an in-flight fetch first so no pin is orphaned.
func (b *fetchBatch) release() {
	if b == nil {
		return
	}
	<-b.done
	for _, h := range b.handles {
		h.Release()
	}
	for _, h := range b.extra {
		h.Release()
	}
	b.handles, b.extra = nil, nil
}

// batchBlock returns cell c's pinned block from the batch, falling back
// to a synchronous load (recorded in the batch so release covers it)
// when the planner did not anticipate the cell. Callers must have
// wait()ed on the batch.
func (r *fetcher) batchBlock(b *fetchBatch, c cellID) (*blockcache.Handle, error) {
	if h, ok := b.handles[c]; ok {
		return h, nil
	}
	h, err := r.getBlock(c)
	if err != nil {
		return nil, err
	}
	b.extra = append(b.extra, h)
	return h, nil
}

// batchSubShard is batchBlock typed for CSR sub-shards.
func (r *fetcher) batchSubShard(b *fetchBatch, c cellID) (*storage.SubShard, error) {
	h, err := r.batchBlock(b, c)
	if err != nil {
		return nil, err
	}
	return h.Value().(*storage.SubShard), nil
}

// batchFlat is batchBlock typed for the source-sorted ablation form.
func (r *fetcher) batchFlat(b *fetchBatch, c cellID) (*srcSortedEdges, error) {
	h, err := r.batchBlock(b, c)
	if err != nil {
		return nil, err
	}
	return h.Value().(*srcSortedEdges), nil
}

// memBytes returns the flat form's in-memory footprint for cache
// accounting.
func (e *srcSortedEdges) memBytes() int64 {
	b := int64(len(e.srcs)+len(e.dsts)) * 4
	if e.ws != nil {
		b += int64(len(e.ws)) * 4
	}
	return b
}

// fetchPlan is one batch of the pipeline: the blocks batch id (a row
// index in the row phase, a destination interval in the column phase)
// will consume. touched carries the column phase's columnTouched
// verdict so the step loop never re-derives it (the pipeline's
// take-order contract holds by construction when the loop iterates the
// plans themselves).
type fetchPlan struct {
	id      int
	touched bool
	cells   []cellID
}

// pipeline runs the double-buffered prefetch over a phase's planned
// batches: at any time the batch being computed on is pinned and the
// next one is loading.
type pipeline struct {
	r        *fetcher
	plans    []fetchPlan
	next     int
	inflight *fetchBatch
}

// newPipeline starts fetching the first planned batch.
func (r *fetcher) newPipeline(plans []fetchPlan) *pipeline {
	p := &pipeline{r: r, plans: plans}
	if len(plans) > 0 {
		p.inflight = r.startFetch(plans[0].cells)
	}
	return p
}

// take hands over the pinned batch for plan id — which must be consumed
// in plan order — and starts the following plan's fetch so its reads
// overlap the caller's compute. The caller owns the returned batch and
// must release it. An unplanned id gets an empty batch.
func (p *pipeline) take(id int) *fetchBatch {
	if p.next >= len(p.plans) || p.plans[p.next].id != id {
		return emptyBatch()
	}
	b := p.inflight
	p.next++
	if p.next < len(p.plans) {
		p.inflight = p.r.startFetch(p.plans[p.next].cells)
	} else {
		p.inflight = nil
	}
	return b
}

// drain releases the in-flight batch; it must run on every exit from the
// phase loop (early error returns included) so no pin outlives the step.
func (p *pipeline) drain() {
	if p.inflight != nil {
		p.inflight.release()
		p.inflight = nil
	}
}

// rowPlans lists, in execution order, the rows the row phase will
// process and the base-store blocks each needs. Overlay cells are
// in-memory and never planned.
func (r *Run) rowPlans(dirs []int) []fetchPlan {
	m := r.e.store.Meta()
	P, Q := m.P, r.q
	flat := r.e.cfg.Order == SrcSortedCoarse
	var plans []fetchPlan
	for i := 0; i < P; i++ {
		if !r.active[i] {
			continue
		}
		jmax := P
		if i < Q {
			jmax = Q // SS[i][j>=Q] with resident source is handled by the column phase
		}
		var cells []cellID
		for _, d := range dirs {
			infos := r.subShardInfosFor(d)
			for j := 0; j < jmax; j++ {
				if infos[i*P+j].Edges > 0 {
					cells = append(cells, cellID{d, i, j, flat})
				}
			}
		}
		plans = append(plans, fetchPlan{id: i, cells: cells})
	}
	return plans
}

// colPlans lists the destination intervals the column phase will visit
// and the resident-source blocks each folds. It must be computed after
// the row phase (columnTouched consults hubRowValid, which the row phase
// fills in).
func (r *Run) colPlans(dirs []int) []fetchPlan {
	m := r.e.store.Meta()
	P, Q := m.P, r.q
	var plans []fetchPlan
	for j := Q; j < P; j++ {
		touched := r.columnTouched(j, dirs)
		if !touched && !r.dense {
			continue
		}
		var cells []cellID
		if touched {
			for _, d := range dirs {
				infos := r.subShardInfosFor(d)
				for i := 0; i < Q; i++ {
					if r.active[i] && infos[i*P+j].Edges > 0 {
						cells = append(cells, cellID{d, i, j, false})
					}
				}
			}
		}
		plans = append(plans, fetchPlan{id: j, touched: touched, cells: cells})
	}
	return plans
}
