// Package engine implements the NXgraph computation engine: the update
// model of paper §II-B driven by the three update strategies of §III-B
// (SPU, DPU, MPU) with the fine-grained sub-shard parallelism of §III-D.
package engine

// Program expresses one graph computation in the gather–sum–apply form
// that Algorithm 1's Update(Ij, Ii, SSi.j) decomposes into. For every edge
// (s → t) in an active sub-shard the engine computes
// Gather(attr[s], deg[s], w); contributions to the same destination are
// folded with Sum (which must be associative and commutative with identity
// Zero); at the end of the iteration Apply folds the accumulated value
// into the destination's attribute and reports whether it changed.
//
// The hubs of DPU hold exactly Sum-combined partial aggregates, so a
// single Program definition drives all three update strategies.
//
// Activity: a vertex that changed activates its interval for the next
// iteration; sub-shards whose source interval is inactive are skipped.
// This skipping is sound for monotone programs (BFS, WCC, SCC, SSSP) where
// earlier contributions are already folded into destination attributes.
// Non-monotone programs (PageRank, HITS) must report changed=true until
// they genuinely converge.
type Program interface {
	// Name labels the program in logs and results.
	Name() string
	// Zero is the identity of Sum.
	Zero() float64
	// Init supplies vertex v's initial attribute and activity.
	Init(v uint32) (attr float64, active bool)
	// Gather computes the contribution of one edge. srcDeg is the
	// source's degree in the traversal direction (out-degree for forward
	// edges, in-degree when traversing the transpose).
	Gather(srcAttr float64, srcDeg uint32, weight float32) float64
	// Sum folds two contributions.
	Sum(a, b float64) float64
	// Apply folds the iteration's accumulated contribution acc into the
	// old attribute, returning the new attribute and whether it changed.
	// acc is Zero when no contribution arrived.
	Apply(v uint32, old, acc float64) (float64, bool)
}

// GlobalAggregator is an optional Program extension for computations that
// need a global reduction over the current attributes before each
// iteration (e.g. PageRank's dangling-vertex mass, HITS' norm). The engine
// computes g = ⊕ AggVertex(v, attr[v], deg[v]) over all vertices and calls
// SetGlobal(g) before any Apply of the iteration. All strategies compute
// the aggregate while attributes stream through memory, so it adds no
// extra disk traffic.
type GlobalAggregator interface {
	AggZero() float64
	AggVertex(v uint32, attr float64, deg uint32) float64
	AggCombine(a, b float64) float64
	SetGlobal(g float64)
}

// DenseApply is an optional marker for programs whose Apply must run for
// every vertex in every iteration even when no contribution arrived (i.e.
// programs violating the default contract Apply(v, old, Zero) == (old,
// false)). Programs with a GlobalAggregator get this behaviour implicitly.
type DenseApply interface {
	DenseApply()
}

// KernelHint names the functional form of a Program's Gather/Sum pair.
// Both single-query runs (Run) and fused batch runs (BatchRun) use the
// hint to select a specialized inner loop with no per-edge interface
// dispatch (see scalar_kernels.go and batch_kernels.go). Each
// specialized kernel performs exactly the floating-point operations the
// declared Gather/Sum would, in the same order, so results stay
// bit-identical to the generic interface path; a program must only
// declare a hint whose form its methods — including Zero, the identity
// of Sum — match exactly.
type KernelHint int

const (
	// KernelGeneric makes no claim: gathering dispatches through the
	// Program interface per edge.
	KernelGeneric KernelHint = iota
	// KernelRankSum claims Gather(a, deg, w) == a/float64(deg),
	// Sum(x, y) == x+y and Zero == 0 — the PageRank family.
	KernelRankSum
	// KernelHopMin claims Gather(a, deg, w) == a+1,
	// Sum(x, y) == math.Min(x, y) and Zero == +Inf — BFS.
	KernelHopMin
	// KernelDistMin claims Gather(a, deg, w) == a+float64(w),
	// Sum(x, y) == math.Min(x, y) and Zero == +Inf — SSSP.
	KernelDistMin
	// KernelMinFold claims Gather(a, deg, w) == a,
	// Sum(x, y) == math.Min(x, y) and Zero == +Inf — WCC's min-label
	// propagation.
	KernelMinFold
	// KernelMaxFold claims Gather(a, deg, w) == a,
	// Sum(x, y) == math.Max(x, y) and Zero == -Inf — SCC's forward
	// max-coloring.
	KernelMaxFold
	// KernelCountSum claims Gather(a, deg, w) == 1, Sum(x, y) == x+y and
	// Zero == 0 — the live-degree counts of SCC trim and KCore peeling.
	KernelCountSum
	// KernelCopySum claims Gather(a, deg, w) == a, Sum(x, y) == x+y and
	// Zero == 0 — HITS' SpMV half-steps.
	KernelCopySum
)

// FusedKernel is an optional Program extension declaring the kernel
// hint a run (single-query or fused batch) may specialize on.
type FusedKernel interface {
	FusedKernelHint() KernelHint
}

// LaneApplier is an optional Program extension that applies a whole
// strided vertex range in one call instead of one Apply call per vertex.
// Fused batch runs pass their SoA arrays with stride = lane count;
// single-query runs pass their flat attribute arrays with stride 1 (off
// may then be negative: a window with base b uses off = -b). curr/next
// hold the program's state for vertex v at index int(v)*stride+off. The
// implementation must perform, per vertex in ascending order, exactly
// the floating-point operations Apply(v, curr[idx], next[idx]) would and
// store the result in next[idx], returning whether any vertex changed —
// it exists purely to eliminate per-vertex interface dispatch, not to
// change semantics.
type LaneApplier interface {
	ApplyLane(curr, next []float64, stride, off int, v0, v1 uint32) bool
}

// LaneAggregator is an optional GlobalAggregator extension for fused
// batch runs: it computes the whole global reduction over one strided
// attribute lane in a single call. deg has one entry per vertex; the
// result must be bit-identical to folding AggCombine over AggVertex in
// ascending vertex order starting from AggZero. The engine still calls
// SetGlobal with the returned value.
type LaneAggregator interface {
	AggLane(curr []float64, stride, off int, deg []uint32) float64
}

// Direction selects which edge orientation a Run traverses.
type Direction int

const (
	// Forward traverses stored edges source→destination.
	Forward Direction = iota
	// Reverse traverses the transposed replica (requires a store built
	// with Transpose).
	Reverse
	// Both traverses forward and reverse edges in every iteration,
	// which makes min/max label propagation treat the graph as
	// undirected (used by WCC).
	Both
)

func (d Direction) String() string {
	switch d {
	case Forward:
		return "forward"
	case Reverse:
		return "reverse"
	case Both:
		return "both"
	}
	return "unknown"
}
