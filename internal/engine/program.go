// Package engine implements the NXgraph computation engine: the update
// model of paper §II-B driven by the three update strategies of §III-B
// (SPU, DPU, MPU) with the fine-grained sub-shard parallelism of §III-D.
package engine

// Program expresses one graph computation in the gather–sum–apply form
// that Algorithm 1's Update(Ij, Ii, SSi.j) decomposes into. For every edge
// (s → t) in an active sub-shard the engine computes
// Gather(attr[s], deg[s], w); contributions to the same destination are
// folded with Sum (which must be associative and commutative with identity
// Zero); at the end of the iteration Apply folds the accumulated value
// into the destination's attribute and reports whether it changed.
//
// The hubs of DPU hold exactly Sum-combined partial aggregates, so a
// single Program definition drives all three update strategies.
//
// Activity: a vertex that changed activates its interval for the next
// iteration; sub-shards whose source interval is inactive are skipped.
// This skipping is sound for monotone programs (BFS, WCC, SCC, SSSP) where
// earlier contributions are already folded into destination attributes.
// Non-monotone programs (PageRank, HITS) must report changed=true until
// they genuinely converge.
type Program interface {
	// Name labels the program in logs and results.
	Name() string
	// Zero is the identity of Sum.
	Zero() float64
	// Init supplies vertex v's initial attribute and activity.
	Init(v uint32) (attr float64, active bool)
	// Gather computes the contribution of one edge. srcDeg is the
	// source's degree in the traversal direction (out-degree for forward
	// edges, in-degree when traversing the transpose).
	Gather(srcAttr float64, srcDeg uint32, weight float32) float64
	// Sum folds two contributions.
	Sum(a, b float64) float64
	// Apply folds the iteration's accumulated contribution acc into the
	// old attribute, returning the new attribute and whether it changed.
	// acc is Zero when no contribution arrived.
	Apply(v uint32, old, acc float64) (float64, bool)
}

// GlobalAggregator is an optional Program extension for computations that
// need a global reduction over the current attributes before each
// iteration (e.g. PageRank's dangling-vertex mass, HITS' norm). The engine
// computes g = ⊕ AggVertex(v, attr[v], deg[v]) over all vertices and calls
// SetGlobal(g) before any Apply of the iteration. All strategies compute
// the aggregate while attributes stream through memory, so it adds no
// extra disk traffic.
type GlobalAggregator interface {
	AggZero() float64
	AggVertex(v uint32, attr float64, deg uint32) float64
	AggCombine(a, b float64) float64
	SetGlobal(g float64)
}

// DenseApply is an optional marker for programs whose Apply must run for
// every vertex in every iteration even when no contribution arrived (i.e.
// programs violating the default contract Apply(v, old, Zero) == (old,
// false)). Programs with a GlobalAggregator get this behaviour implicitly.
type DenseApply interface {
	DenseApply()
}

// Direction selects which edge orientation a Run traverses.
type Direction int

const (
	// Forward traverses stored edges source→destination.
	Forward Direction = iota
	// Reverse traverses the transposed replica (requires a store built
	// with Transpose).
	Reverse
	// Both traverses forward and reverse edges in every iteration,
	// which makes min/max label propagation treat the graph as
	// undirected (used by WCC).
	Both
)

func (d Direction) String() string {
	switch d {
	case Forward:
		return "forward"
	case Reverse:
		return "reverse"
	case Both:
		return "both"
	}
	return "unknown"
}
