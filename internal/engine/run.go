package engine

import (
	"context"
	"fmt"
	"sync"
	"time"

	"nxgraph/internal/bitset"
	"nxgraph/internal/diskio"
	"nxgraph/internal/storage"
	"nxgraph/internal/trace"
)

// Run is one program execution in progress. It exposes iteration-level
// stepping so algorithms can orchestrate multi-phase computations (SCC's
// alternating forward/backward fixpoints, HITS' alternating half-steps).
//
// The implementation realizes all three update strategies in one body,
// exactly as the paper frames them: MPU with Q resident intervals, where
// Q = P degenerates to SPU (no hubs, no attribute I/O) and Q = 0 to DPU
// (every interval via hubs). Each iteration runs:
//
//	row phase     — Algorithm 7 lines 1–16: for every active source
//	                interval, gather into resident accumulators
//	                (SPU-like) and into hubs for on-disk destinations
//	                (ToHub);
//	column phase  — lines 17–26: for every on-disk destination interval,
//	                fold resident-source contributions and hubs, apply,
//	                write back (FromHub);
//	apply phase   — finalize resident intervals and ping-pong swap.
//
// Sub-shard reads flow through the engine's shared block cache with a
// double-buffered prefetch pipeline per phase (see prefetch.go): runs on
// the same store reuse each other's decoded blocks, and misses load in
// the background while the previous batch computes.
type Run struct {
	// fetcher carries the read path (block cache access, prefetch
	// pipeline, fetch tracing) shared with BatchRun; its e field is the
	// owning engine, promoted as r.e.
	fetcher

	p       Program
	agg     GlobalAggregator
	dense   bool
	dir     Direction
	strat   Strategy
	q       int
	resEnd  uint32
	threads int
	chunk   int

	// hint is the program's declared kernel form (KernelGeneric without
	// one); la/laggr are its optional lane-wise apply and aggregate
	// specializations. chunkCost is the edge-balanced task size: a gather
	// chunk closes once edges + destinations reaches it (see
	// edgeChunkRanges).
	hint      KernelHint
	la        LaneApplier
	laggr     LaneAggregator
	chunkCost int

	// useScaled marks a single-direction RankSum run: the per-edge
	// division Gather performs is hoisted into scaled (resident vertices)
	// and scaledBuf (streamed-interval scratch), refreshed each iteration
	// with exactly the operands Gather would use, so the edge loop
	// degenerates to the copy-sum fold.
	useScaled bool
	scaled    []float64
	scaledBuf []float64

	// nextZeroed records the invariant "r.next holds Zero everywhere in
	// [0, resEnd)": true after a completed step (the apply phase re-zeroes
	// the outgoing curr array cache-hot), false initially and after an
	// aborted step.
	nextZeroed bool

	curr, next []float64
	active     []bool
	mask       *bitset.Set

	attrs       *storage.AttrStore
	hubs        [2]*storage.HubStore
	hubRowValid [2][]bool

	// ov is the delta-overlay snapshot captured at NewRun (nil without
	// pending deltas); ovOut/ovIn are its adjusted degree arrays, and
	// ovHub holds in-memory per-cell partials for overlay edges whose
	// destination interval is on disk (keyed i*P+j per traversal flag).
	ov    Overlay
	ovOut []uint32
	ovIn  []uint32
	ovHub [2]map[int][]float64

	locks []sync.Mutex

	iter     int
	edges    int64
	finished bool
	closed   bool

	ctx      context.Context // nil outside StepContext
	progress ProgressFunc

	loadBuf []float64 // reusable interval attr buffer (row phase)
	accBuf  []float64 // reusable column accumulator
	oldBuf  []float64 // reusable column old-attr buffer

	errMu    sync.Mutex
	asyncErr error

	startIO diskio.StatsSnapshot
	started time.Time

	// runSpan is the whole-run trace span (see fetcher for the rest of
	// the trace state); runEnded guards against double-ending it.
	runSpan  trace.Span
	runEnded bool
}

// NewRun initializes a run of p over the engine's store in direction dir.
func (e *Engine) NewRun(p Program, dir Direction) (*Run, error) {
	if err := e.validateDirection(dir); err != nil {
		return nil, err
	}
	m := e.store.Meta()
	strat, q := e.chooseStrategy()
	if e.cfg.Order == SrcSortedCoarse && q < m.P {
		return nil, fmt.Errorf("engine: source-sorted ablation requires SPU (all intervals resident)")
	}
	r := &Run{
		p:       p,
		dir:     dir,
		strat:   strat,
		q:       q,
		threads: e.cfg.threads(),
		chunk:   e.cfg.chunk(),
		active:  make([]bool, m.P),
		started: time.Now(),
		startIO: e.store.Disk().Stats().Snapshot(),
	}
	r.fetcher.e = e
	if e.cfg.TraceSpans >= 0 {
		r.tr = trace.New(e.cfg.TraceSpans)
		r.runSpan = r.tr.Start(trace.KindRun, p.Name(), 0)
		r.iterSpanID.Store(r.runSpan.ID)
	}
	osp := r.tr.Start(trace.KindOverlay, "overlay-snapshot", r.runSpan.ID)
	if err := r.initOverlay(); err != nil {
		return nil, err
	}
	if r.ov != nil {
		r.tr.End(osp)
	}
	if a, ok := p.(GlobalAggregator); ok {
		r.agg = a
	}
	if _, ok := p.(DenseApply); ok || r.agg != nil {
		r.dense = true
	}
	if fk, ok := p.(FusedKernel); ok {
		r.hint = fk.FusedKernelHint()
	}
	if la, ok := p.(LaneApplier); ok {
		r.la = la
	}
	if lg, ok := p.(LaneAggregator); ok {
		r.laggr = lg
	}
	// One destination costs ~1 unit of task overhead plus one unit per
	// in-edge; 4x the destination-count chunk size keeps task counts
	// comparable to the old chunking on typical sparse cells while
	// splitting hub-heavy ranges by edge mass.
	r.chunkCost = 4 * r.chunk
	// The division hoist needs one degree array per source attribute, so
	// it is limited to single-direction runs; the source-sorted ablation
	// keeps the paper's unmodified per-edge form.
	r.useScaled = r.hint == KernelRankSum && len(r.dirsUsed()) == 1 && e.cfg.Order != SrcSortedCoarse
	size := m.IntervalSize()
	r.resEnd = uint32(q) * size
	if r.resEnd > m.NumVertices {
		r.resEnd = m.NumVertices
	}
	r.curr = make([]float64, r.resEnd)
	r.next = make([]float64, r.resEnd)
	// Locks exist in every mode: Lock-mode gathering and the coarse
	// source-sorted ablation both serialize on destination intervals.
	r.locks = make([]sync.Mutex, m.P)
	maxLen := 0
	for k := 0; k < m.P; k++ {
		if l := m.IntervalLen(k); l > maxLen {
			maxLen = l
		}
	}
	r.loadBuf = make([]float64, maxLen)
	r.accBuf = make([]float64, maxLen)
	r.oldBuf = make([]float64, maxLen)
	if r.useScaled {
		r.scaled = make([]float64, r.resEnd)
		r.scaledBuf = make([]float64, maxLen)
	}

	if err := r.initAttrs(); err != nil {
		r.Close()
		return nil, err
	}
	if err := r.openHubs(); err != nil {
		r.Close()
		return nil, err
	}
	return r, nil
}

// dirsUsed lists the transpose flags the run traverses (index 0 =
// forward, 1 = reverse).
func (r *Run) dirsUsed() []int {
	switch r.dir {
	case Forward:
		return []int{0}
	case Reverse:
		return []int{1}
	default:
		return []int{0, 1}
	}
}

// degOf returns the source-degree array for a traversal flag,
// overlay-adjusted when a delta snapshot is installed.
func (r *Run) degOf(d int) []uint32 {
	if d == 1 {
		if r.ovIn != nil {
			return r.ovIn
		}
		return r.e.inDeg
	}
	if r.ovOut != nil {
		return r.ovOut
	}
	return r.e.outDeg
}

// primaryDeg is the degree array handed to the GlobalAggregator,
// overlay-adjusted when a delta snapshot is installed.
func (r *Run) primaryDeg() []uint32 {
	if r.dir == Reverse {
		if r.ovIn != nil {
			return r.ovIn
		}
		return r.e.inDeg
	}
	if r.ovOut != nil {
		return r.ovOut
	}
	return r.e.outDeg
}

func (r *Run) setErr(err error) {
	r.errMu.Lock()
	if r.asyncErr == nil {
		r.asyncErr = err
	}
	r.errMu.Unlock()
}

func (r *Run) takeErr() error {
	r.errMu.Lock()
	defer r.errMu.Unlock()
	err := r.asyncErr
	r.asyncErr = nil
	return err
}

// initAttrs runs Program.Init over every vertex, populating resident
// attributes in memory and on-disk intervals through the attribute store.
func (r *Run) initAttrs() error {
	m := r.e.store.Meta()
	for v := uint32(0); v < r.resEnd; v++ {
		attr, act := r.p.Init(v)
		r.curr[v] = attr
		if act {
			r.active[m.IntervalOf(v)] = true
		}
	}
	if r.q == m.P {
		return nil
	}
	var err error
	if r.attrs, err = r.e.store.OpenAttrs(); err != nil {
		return err
	}
	for k := r.q; k < m.P; k++ {
		lo, hi := m.IntervalRange(k)
		buf := r.loadBuf[:hi-lo]
		for v := lo; v < hi; v++ {
			attr, act := r.p.Init(v)
			buf[v-lo] = attr
			if act {
				r.active[k] = true
			}
		}
		if err := r.attrs.WriteInterval(k, buf); err != nil {
			return err
		}
	}
	return nil
}

func (r *Run) openHubs() error {
	if r.q == r.e.store.Meta().P {
		return nil
	}
	for _, d := range r.dirsUsed() {
		h, err := r.e.store.OpenHubs(d == 1)
		if err != nil {
			return err
		}
		r.hubs[d] = h
		r.hubRowValid[d] = make([]bool, r.e.store.Meta().P)
	}
	return nil
}

// SetProgress installs a per-iteration progress observer (nil to clear).
func (r *Run) SetProgress(f ProgressFunc) { r.progress = f }

// checkCtx reports the context's error, if any. It is consulted at
// iteration boundaries and between sub-shard batches (rows and columns),
// so cancellation latency is one row/column of gathering, not a whole
// iteration.
func (r *Run) checkCtx() error {
	if r.ctx == nil {
		return nil
	}
	select {
	case <-r.ctx.Done():
		return r.ctx.Err()
	default:
		return nil
	}
}

// notifyProgress reports the completed iteration to the observer.
func (r *Run) notifyProgress(activeNext []bool) {
	if r.progress == nil {
		return
	}
	n := 0
	for _, a := range activeNext {
		if a {
			n++
		}
	}
	r.progress(Progress{
		Iteration:       r.iter,
		Edges:           r.edges,
		ActiveIntervals: n,
		Elapsed:         time.Since(r.started),
	})
}

// Strategy returns the resolved update strategy.
func (r *Run) Strategy() Strategy { return r.strat }

// ResidentIntervals returns Q.
func (r *Run) ResidentIntervals() int { return r.q }

// Iterations returns the number of iterations executed so far.
func (r *Run) Iterations() int { return r.iter }

// SetMask installs a frozen-vertex mask: masked vertices neither emit nor
// accept updates and keep their attribute. Pass nil to clear.
func (r *Run) SetMask(m *bitset.Set) { r.mask = m }

// ActivateAll marks every interval active, forcing at least one more full
// iteration.
func (r *Run) ActivateAll() {
	for k := range r.active {
		r.active[k] = true
	}
	r.finished = false
}

// ActivateVertex marks the interval owning v active.
func (r *Run) ActivateVertex(v uint32) {
	r.active[r.e.store.Meta().IntervalOf(v)] = true
	r.finished = false
}

// ResetIterations zeroes the iteration counter (the MaxIterations budget),
// for callers that drive multiple phases through one Run.
func (r *Run) ResetIterations() { r.iter = 0; r.finished = false }

// Attrs returns a snapshot of all vertex attributes.
func (r *Run) Attrs() ([]float64, error) {
	m := r.e.store.Meta()
	out := make([]float64, m.NumVertices)
	copy(out, r.curr)
	for k := r.q; k < m.P; k++ {
		lo, hi := m.IntervalRange(k)
		if lo == hi {
			continue
		}
		buf := out[lo:hi]
		if err := r.attrs.ReadInterval(k, buf); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// SetAttrs overwrites all vertex attributes.
func (r *Run) SetAttrs(a []float64) error {
	m := r.e.store.Meta()
	if len(a) != int(m.NumVertices) {
		return fmt.Errorf("engine: SetAttrs got %d values, want %d", len(a), m.NumVertices)
	}
	copy(r.curr, a[:r.resEnd])
	for k := r.q; k < m.P; k++ {
		lo, hi := m.IntervalRange(k)
		if lo == hi {
			continue
		}
		if err := r.attrs.WriteInterval(k, a[lo:hi]); err != nil {
			return err
		}
	}
	return nil
}

// Close releases run resources.
func (r *Run) Close() {
	if r.closed {
		return
	}
	r.closed = true
	if r.attrs != nil {
		r.attrs.Close()
	}
	for _, h := range r.hubs {
		if h != nil {
			h.Close()
		}
	}
}

// Trace returns the run's trace, nil when tracing is disabled.
func (r *Run) Trace() *trace.Trace { return r.tr }

// Finish assembles the Result (final attributes plus counters). The run
// remains usable afterwards.
func (r *Run) Finish() (*Result, error) {
	attrs, err := r.Attrs()
	if err != nil {
		return nil, err
	}
	if r.tr != nil && !r.runEnded {
		r.runEnded = true
		r.tr.End(r.runSpan)
	}
	return &Result{
		Attrs:             attrs,
		Iterations:        r.iter,
		Strategy:          r.strat,
		ResidentIntervals: r.q,
		EdgesTraversed:    r.edges,
		IO:                r.e.store.Disk().Stats().Snapshot().Sub(r.startIO),
		Elapsed:           time.Since(r.started),
		Trace:             r.tr,
	}, nil
}
