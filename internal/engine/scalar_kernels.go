package engine

import (
	"math"

	"nxgraph/internal/bitset"
	"nxgraph/internal/storage"
)

// This file holds the devirtualized single-query gather kernels: the
// scalar counterpart of batch_kernels.go. A Program that declares a
// KernelHint gets its per-edge Gather/Sum pair compiled into a direct
// arithmetic loop — no interface dispatch per edge — selected once per
// task at build time (see gatherTasks/hubTasks in step.go).
//
// Each hint maps to a scalarFold, the concrete fold loop for one
// (Gather, Sum, Zero) triple. The mapping happens per sub-shard cell, so
// per-cell facts fold into the selection too: KernelDistMin on an
// unweighted cell resolves to the hop fold (float64(float32(1)) == 1),
// and KernelRankSum resolves to the plain copy-sum fold when the run
// hoisted the per-edge division into a scaled attribute array (see
// Run.refreshScaled).
//
// Every fold performs, per destination, exactly the floating-point
// operations the generic gatherCSR/gatherToHub would: a left-associative
// fold over the destination's in-edges starting from Zero, then one Sum
// into the accumulator (or an assignment into the hub array). The
// e = 1/2/3 unrolls in the add-family folds write that exact chain out
// literally — 0 + g1 + g2 is ((0+g1)+g2), identity additions included,
// so results stay bit-identical even for -0 inputs. Equivalence is
// enforced by TestScalarKernelsMatchGeneric and the algorithm-level
// suite in internal/algorithms.
//
// A note on mechanism: these loops are hand-monomorphized rather than
// instantiated from one generic function over a fold typeclass. Go's
// gcshape stenciling compiles type-parameterized bodies against
// dictionaries, leaving the per-edge method calls indirect — measured at
// ~4x the cost of the direct loops below. See
// docs/adr/ADR-002-scalar-kernels.md.

// scalarFold identifies one specialized fold loop.
type scalarFold uint8

const (
	foldNone     scalarFold = iota // no specialization: generic interface path
	foldCopySum                    // Gather a        Sum +    Zero 0
	foldRankSum                    // Gather a/deg    Sum +    Zero 0
	foldCountSum                   // Gather 1        Sum +    Zero 0
	foldMin                        // Gather a        Sum min  Zero +Inf
	foldMax                        // Gather a        Sum max  Zero -Inf
	foldHopMin                     // Gather a+1      Sum min  Zero +Inf
	foldDistMin                    // Gather a+w      Sum min  Zero +Inf (weighted cells)
)

// scalarFoldFor maps a program hint to the fold loop for one cell.
// scaled reports whether the source view holds pre-divided rank
// contributions (RankSum's division hoisted per iteration); weighted
// reports whether the cell carries per-edge weights.
func scalarFoldFor(hint KernelHint, scaled, weighted bool) scalarFold {
	switch hint {
	case KernelRankSum:
		if scaled {
			return foldCopySum
		}
		return foldRankSum
	case KernelHopMin:
		return foldHopMin
	case KernelDistMin:
		if !weighted {
			return foldHopMin // Gather(a, _, 1) == a + float64(float32(1)) == a+1
		}
		return foldDistMin
	case KernelMinFold:
		return foldMin
	case KernelMaxFold:
		return foldMax
	case KernelCountSum:
		return foldCountSum
	case KernelCopySum:
		return foldCopySum
	}
	return foldNone
}

// sumFoldFor maps a hint to the fold of its Sum alone — the FromHub
// kernel folds pre-gathered partials, so only the combine op matters.
func sumFoldFor(hint KernelHint) scalarFold {
	switch hint {
	case KernelRankSum, KernelCountSum, KernelCopySum:
		return foldCopySum
	case KernelHopMin, KernelDistMin, KernelMinFold:
		return foldMin
	case KernelMaxFold:
		return foldMax
	}
	return foldNone
}

// delPred is the overlay tombstone predicate threaded through the gather
// kernels (nil for cells without pending removals).
type delPred = func(src, dst uint32) bool

// gatherSpec is the specialized counterpart of gatherCSR and gatherToHub
// in one: it folds destinations [k0, k1) of ss with fold f. When hub is
// non-nil the per-destination partial is assigned to hub[k] (the ToHub
// kernel); otherwise it is Sum-folded into acc. The fold dispatch and
// the mask/del presence check run once per call — a task covers
// thousands of edges — so the inner loops carry no per-edge nil tests
// beyond what filtering itself requires.
func gatherSpec(f scalarFold, deg []uint32, mask *bitset.Set, del delPred, ss *storage.SubShard, src view, acc view, hub []float64, k0, k1 int) {
	switch f {
	case foldCopySum:
		gatherCopySum(mask, del, ss, src, acc, hub, k0, k1)
	case foldRankSum:
		gatherRankSumScalar(deg, mask, del, ss, src, acc, hub, k0, k1)
	case foldCountSum:
		gatherCountSum(mask, del, ss, acc, hub, k0, k1)
	case foldMin:
		gatherMinMax(mask, del, ss, src, acc, hub, k0, k1, false)
	case foldMax:
		gatherMinMax(mask, del, ss, src, acc, hub, k0, k1, true)
	case foldHopMin:
		gatherHopMin(mask, del, ss, src, acc, hub, k0, k1)
	case foldDistMin:
		gatherDistMin(mask, del, ss, src, acc, hub, k0, k1)
	}
}

// gatherCopySum: local = 0 + a1 + a2 + ... over the destination's
// in-edges. Serves KernelCopySum directly and KernelRankSum over a
// scaled source view.
func gatherCopySum(mask *bitset.Set, del delPred, ss *storage.SubShard, src view, acc view, hub []float64, k0, k1 int) {
	if mask != nil || del != nil {
		for k := k0; k < k1; k++ {
			d := ss.Dsts[k]
			local := 0.0
			for t := ss.Offsets[k]; t < ss.Offsets[k+1]; t++ {
				s := ss.Srcs[t]
				if mask != nil && mask.Test(int(s)) {
					continue
				}
				if del != nil && del(s, d) {
					continue
				}
				local += src.at(s)
			}
			if hub != nil {
				hub[k] = local
			} else {
				acc.vals[d-acc.base] += local
			}
		}
		return
	}
	srcs, vals, base := ss.Srcs, src.vals, src.base
	for k := k0; k < k1; k++ {
		lo, hi := ss.Offsets[k], ss.Offsets[k+1]
		var local float64
		switch hi - lo {
		case 0:
			local = 0
		case 1:
			local = 0 + vals[srcs[lo]-base]
		case 2:
			local = 0 + vals[srcs[lo]-base] + vals[srcs[lo+1]-base]
		case 3:
			local = 0 + vals[srcs[lo]-base] + vals[srcs[lo+1]-base] + vals[srcs[lo+2]-base]
		default:
			local = 0
			for t := lo; t < hi; t++ {
				local += vals[srcs[t]-base]
			}
		}
		if hub != nil {
			hub[k] = local
		} else {
			acc.vals[ss.Dsts[k]-acc.base] += local
		}
	}
}

// gatherRankSumScalar: local = 0 + a1/deg1 + a2/deg2 + ... — the
// un-hoisted rank fold, used when the run cannot maintain a scaled view
// (multi-direction runs; the source-sorted ablation).
func gatherRankSumScalar(deg []uint32, mask *bitset.Set, del delPred, ss *storage.SubShard, src view, acc view, hub []float64, k0, k1 int) {
	if mask != nil || del != nil {
		for k := k0; k < k1; k++ {
			d := ss.Dsts[k]
			local := 0.0
			for t := ss.Offsets[k]; t < ss.Offsets[k+1]; t++ {
				s := ss.Srcs[t]
				if mask != nil && mask.Test(int(s)) {
					continue
				}
				if del != nil && del(s, d) {
					continue
				}
				local += src.at(s) / float64(deg[s])
			}
			if hub != nil {
				hub[k] = local
			} else {
				acc.vals[d-acc.base] += local
			}
		}
		return
	}
	srcs, vals, base := ss.Srcs, src.vals, src.base
	for k := k0; k < k1; k++ {
		lo, hi := ss.Offsets[k], ss.Offsets[k+1]
		var local float64
		switch hi - lo {
		case 0:
			local = 0
		case 1:
			s0 := srcs[lo]
			local = 0 + vals[s0-base]/float64(deg[s0])
		case 2:
			s0, s1 := srcs[lo], srcs[lo+1]
			local = 0 + vals[s0-base]/float64(deg[s0]) + vals[s1-base]/float64(deg[s1])
		default:
			local = 0
			for t := lo; t < hi; t++ {
				s := srcs[t]
				local += vals[s-base] / float64(deg[s])
			}
		}
		if hub != nil {
			hub[k] = local
		} else {
			acc.vals[ss.Dsts[k]-acc.base] += local
		}
	}
}

// gatherCountSum: local = 0 + 1 + 1 + ... — integer-valued float64
// additions are exact far past any edge count, so the unfiltered fold is
// just float64(edge count), bit-identical to the serial chain.
func gatherCountSum(mask *bitset.Set, del delPred, ss *storage.SubShard, acc view, hub []float64, k0, k1 int) {
	if mask != nil || del != nil {
		for k := k0; k < k1; k++ {
			d := ss.Dsts[k]
			n := 0
			for t := ss.Offsets[k]; t < ss.Offsets[k+1]; t++ {
				s := ss.Srcs[t]
				if mask != nil && mask.Test(int(s)) {
					continue
				}
				if del != nil && del(s, d) {
					continue
				}
				n++
			}
			if hub != nil {
				hub[k] = float64(n)
			} else {
				acc.vals[d-acc.base] += float64(n)
			}
		}
		return
	}
	for k := k0; k < k1; k++ {
		local := float64(ss.Offsets[k+1] - ss.Offsets[k])
		if hub != nil {
			hub[k] = local
		} else {
			acc.vals[ss.Dsts[k]-acc.base] += local
		}
	}
}

// gatherMinMax: local = min(...min(Zero, a1)..., ae) (or max), the label
// propagation folds of WCC and SCC coloring. Min chains are a dependent
// sequence, so there is nothing to unroll — the win is the direct
// math.Min call in place of two interface dispatches.
func gatherMinMax(mask *bitset.Set, del delPred, ss *storage.SubShard, src view, acc view, hub []float64, k0, k1 int, isMax bool) {
	zero := math.Inf(1)
	if isMax {
		zero = math.Inf(-1)
	}
	filtered := mask != nil || del != nil
	for k := k0; k < k1; k++ {
		d := ss.Dsts[k]
		local := zero
		for t := ss.Offsets[k]; t < ss.Offsets[k+1]; t++ {
			s := ss.Srcs[t]
			if filtered {
				if mask != nil && mask.Test(int(s)) {
					continue
				}
				if del != nil && del(s, d) {
					continue
				}
			}
			if isMax {
				local = math.Max(local, src.at(s))
			} else {
				local = math.Min(local, src.at(s))
			}
		}
		if hub != nil {
			hub[k] = local
		} else if isMax {
			acc.vals[d-acc.base] = math.Max(acc.vals[d-acc.base], local)
		} else {
			acc.vals[d-acc.base] = math.Min(acc.vals[d-acc.base], local)
		}
	}
}

// gatherHopMin: local = min(local, a+1) — BFS, and SSSP over unweighted
// cells (where Gather's float64(float32(1)) step is exactly 1).
func gatherHopMin(mask *bitset.Set, del delPred, ss *storage.SubShard, src view, acc view, hub []float64, k0, k1 int) {
	filtered := mask != nil || del != nil
	for k := k0; k < k1; k++ {
		d := ss.Dsts[k]
		local := math.Inf(1)
		for t := ss.Offsets[k]; t < ss.Offsets[k+1]; t++ {
			s := ss.Srcs[t]
			if filtered {
				if mask != nil && mask.Test(int(s)) {
					continue
				}
				if del != nil && del(s, d) {
					continue
				}
			}
			local = math.Min(local, src.at(s)+1)
		}
		if hub != nil {
			hub[k] = local
		} else {
			acc.vals[d-acc.base] = math.Min(acc.vals[d-acc.base], local)
		}
	}
}

// gatherDistMin: local = min(local, a+float64(w)) — weighted SSSP. Only
// selected for cells with a weight array.
func gatherDistMin(mask *bitset.Set, del delPred, ss *storage.SubShard, src view, acc view, hub []float64, k0, k1 int) {
	filtered := mask != nil || del != nil
	ws := ss.Weights
	for k := k0; k < k1; k++ {
		d := ss.Dsts[k]
		local := math.Inf(1)
		for t := ss.Offsets[k]; t < ss.Offsets[k+1]; t++ {
			s := ss.Srcs[t]
			if filtered {
				if mask != nil && mask.Test(int(s)) {
					continue
				}
				if del != nil && del(s, d) {
					continue
				}
			}
			local = math.Min(local, src.at(s)+float64(ws[t]))
		}
		if hub != nil {
			hub[k] = local
		} else {
			acc.vals[d-acc.base] = math.Min(acc.vals[d-acc.base], local)
		}
	}
}

// gatherSrcSortedSpec is the specialized counterpart of gatherSrcSorted
// (the Table IV ablation path): per-edge scatter in source order.
// Destinations arrive in effectively random order, so the per-edge
// filter checks stay, but the fold ops are direct. Reports false when f
// has no specialization (caller falls back to the generic scatter).
func gatherSrcSortedSpec(f scalarFold, deg []uint32, mask *bitset.Set, e *srcSortedEdges, src, acc view) bool {
	switch f {
	case foldCopySum:
		for t := range e.srcs {
			s := e.srcs[t]
			if mask != nil && mask.Test(int(s)) {
				continue
			}
			acc.vals[e.dsts[t]-acc.base] += src.at(s)
		}
	case foldRankSum:
		for t := range e.srcs {
			s := e.srcs[t]
			if mask != nil && mask.Test(int(s)) {
				continue
			}
			acc.vals[e.dsts[t]-acc.base] += src.at(s) / float64(deg[s])
		}
	case foldCountSum:
		for t := range e.srcs {
			if mask != nil && mask.Test(int(e.srcs[t])) {
				continue
			}
			acc.vals[e.dsts[t]-acc.base]++
		}
	case foldMin:
		for t := range e.srcs {
			s := e.srcs[t]
			if mask != nil && mask.Test(int(s)) {
				continue
			}
			i := e.dsts[t] - acc.base
			acc.vals[i] = math.Min(acc.vals[i], src.at(s))
		}
	case foldMax:
		for t := range e.srcs {
			s := e.srcs[t]
			if mask != nil && mask.Test(int(s)) {
				continue
			}
			i := e.dsts[t] - acc.base
			acc.vals[i] = math.Max(acc.vals[i], src.at(s))
		}
	case foldHopMin:
		for t := range e.srcs {
			s := e.srcs[t]
			if mask != nil && mask.Test(int(s)) {
				continue
			}
			i := e.dsts[t] - acc.base
			acc.vals[i] = math.Min(acc.vals[i], src.at(s)+1)
		}
	case foldDistMin:
		for t := range e.srcs {
			s := e.srcs[t]
			if mask != nil && mask.Test(int(s)) {
				continue
			}
			i := e.dsts[t] - acc.base
			acc.vals[i] = math.Min(acc.vals[i], src.at(s)+float64(e.ws[t]))
		}
	default:
		return false
	}
	return true
}

// foldHubSpec is the specialized FromHub kernel: Sum pre-gathered hub
// partials into the dense accumulator. Reports false when f has no
// specialization.
func foldHubSpec(f scalarFold, dsts []uint32, vals []float64, acc view, k0, k1 int) bool {
	switch f {
	case foldCopySum:
		for k := k0; k < k1; k++ {
			acc.vals[dsts[k]-acc.base] += vals[k]
		}
	case foldMin:
		for k := k0; k < k1; k++ {
			i := dsts[k] - acc.base
			acc.vals[i] = math.Min(acc.vals[i], vals[k])
		}
	case foldMax:
		for k := k0; k < k1; k++ {
			i := dsts[k] - acc.base
			acc.vals[i] = math.Max(acc.vals[i], vals[k])
		}
	default:
		return false
	}
	return true
}
