package engine

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"nxgraph/internal/bitset"
	"nxgraph/internal/storage"
)

func TestChunkRanges(t *testing.T) {
	cases := []struct {
		n, size int
		want    []int
	}{
		{0, 16, []int{0}}, // degenerate: zero chunks, canonical single boundary
		{0, 0, []int{0}},
		{5, 16, []int{0, 5}},
		{16, 16, []int{0, 16}}, // exact multiple: no trailing empty chunk
		{32, 16, []int{0, 16, 32}},
		{33, 16, []int{0, 16, 32, 33}},
		{3, 1, []int{0, 1, 2, 3}},
		{4, -1, []int{0, 1, 2, 3, 4}}, // size clamps to 1
	}
	for _, c := range cases {
		got := chunkRanges(c.n, c.size)
		if len(got) != len(c.want) {
			t.Fatalf("chunkRanges(%d, %d) = %v, want %v", c.n, c.size, got, c.want)
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Fatalf("chunkRanges(%d, %d) = %v, want %v", c.n, c.size, got, c.want)
			}
		}
	}
}

func TestEdgeChunkRanges(t *testing.T) {
	// 6 destinations with edge counts 1, 100, 1, 1, 1, 1: with target 8
	// the hub destination must close its chunk alone instead of dragging
	// its neighbours into a 100-edge chunk.
	offsets := []uint32{0, 1, 101, 102, 103, 104, 105}
	got := edgeChunkRanges(offsets, 8)
	if got[0] != 0 || got[len(got)-1] != len(offsets)-1 {
		t.Fatalf("bounds must span [0, n]: %v", got)
	}
	for i := 1; i < len(got); i++ {
		if got[i] <= got[i-1] {
			t.Fatalf("bounds not strictly increasing: %v", got)
		}
	}
	// Every chunk except the last must have reached the target cost
	// (edges + destinations); no chunk may start inside the hub's edges.
	cost := func(k int) int { return int(offsets[k]) + k }
	for i := 0; i+2 < len(got); i++ {
		if cost(got[i+1])-cost(got[i]) < 8 {
			t.Fatalf("chunk %d under target: %v", i, got)
		}
	}
	// The chunk containing the hub destination (index 1) must close
	// immediately after it — the light destinations behind the hub never
	// serialize behind its edges.
	found := false
	for _, b := range got {
		if b == 2 {
			found = true
		}
	}
	if !found {
		t.Fatalf("no boundary directly after the hub destination: %v", got)
	}

	if got := edgeChunkRanges([]uint32{0}, 8); len(got) != 1 || got[0] != 0 {
		t.Fatalf("empty CSR: %v", got)
	}
	// Uniform destinations pack evenly: 64 dsts x 3 edges, target 16
	// -> every chunk spans 4 destinations (cost 16 each).
	uni := make([]uint32, 65)
	for i := range uni {
		uni[i] = uint32(i * 3)
	}
	got = edgeChunkRanges(uni, 16)
	if len(got) != 17 {
		t.Fatalf("uniform split: got %d chunks, want 16 (%v)", len(got)-1, got)
	}
	for i := 1; i < len(got); i++ {
		if got[i]-got[i-1] != 4 {
			t.Fatalf("uniform chunk width: %v", got)
		}
	}
}

// foldTestProg is a generic Program with pluggable Gather/Sum/Zero — the
// interface-dispatch reference the specialized folds must match
// bit-for-bit.
type foldTestProg struct {
	zero   float64
	gather func(a float64, deg uint32, w float32) float64
	sum    func(a, b float64) float64
}

func (p *foldTestProg) Name() string                  { return "fold-test" }
func (p *foldTestProg) Zero() float64                 { return p.zero }
func (p *foldTestProg) Init(v uint32) (float64, bool) { return 0, true }
func (p *foldTestProg) Gather(a float64, deg uint32, w float32) float64 {
	return p.gather(a, deg, w)
}
func (p *foldTestProg) Sum(a, b float64) float64 { return p.sum(a, b) }
func (p *foldTestProg) Apply(v uint32, old, acc float64) (float64, bool) {
	return acc, true
}

// makeTestSubShard builds a synthetic destination-sorted sub-shard over
// vertices [0, n) with edge counts spread over 0..6 so every unroll arm
// (0, 1, 2, 3, long) is exercised.
func makeTestSubShard(rng *rand.Rand, n, numDsts int, weighted bool) *storage.SubShard {
	ss := &storage.SubShard{Offsets: []uint32{0}}
	step := n / numDsts
	if step == 0 {
		step = 1
	}
	for k := 0; k < numDsts; k++ {
		d := uint32(k * step % n)
		e := k % 7 // deterministic spread over the unroll arms
		for t := 0; t < e; t++ {
			ss.Srcs = append(ss.Srcs, uint32(rng.Intn(n)))
			if weighted {
				ss.Weights = append(ss.Weights, 0.25+rng.Float32())
			}
		}
		ss.Dsts = append(ss.Dsts, d)
		ss.Offsets = append(ss.Offsets, uint32(len(ss.Srcs)))
	}
	return ss
}

func scalarFoldCases() []struct {
	name     string
	f        scalarFold
	prog     *foldTestProg
	weighted bool
} {
	add := func(a, b float64) float64 { return a + b }
	min := func(a, b float64) float64 { return math.Min(a, b) }
	max := func(a, b float64) float64 { return math.Max(a, b) }
	return []struct {
		name     string
		f        scalarFold
		prog     *foldTestProg
		weighted bool
	}{
		{"copySum", foldCopySum, &foldTestProg{0,
			func(a float64, _ uint32, _ float32) float64 { return a }, add}, false},
		{"rankSum", foldRankSum, &foldTestProg{0,
			func(a float64, deg uint32, _ float32) float64 { return a / float64(deg) }, add}, false},
		{"countSum", foldCountSum, &foldTestProg{0,
			func(_ float64, _ uint32, _ float32) float64 { return 1 }, add}, false},
		{"min", foldMin, &foldTestProg{math.Inf(1),
			func(a float64, _ uint32, _ float32) float64 { return a }, min}, false},
		{"max", foldMax, &foldTestProg{math.Inf(-1),
			func(a float64, _ uint32, _ float32) float64 { return a }, max}, false},
		{"hopMin", foldHopMin, &foldTestProg{math.Inf(1),
			func(a float64, _ uint32, _ float32) float64 { return a + 1 }, min}, false},
		{"distMin", foldDistMin, &foldTestProg{math.Inf(1),
			func(a float64, _ uint32, w float32) float64 { return a + float64(w) }, min}, true},
	}
}

// TestScalarKernelsMatchGeneric is the kernel-level bit-identity gate:
// every specialized fold, across the CSR, ToHub, FromHub and
// source-sorted kernels, with and without mask/tombstone filtering, must
// reproduce the generic interface path exactly.
func TestScalarKernelsMatchGeneric(t *testing.T) {
	const n = 96
	rng := rand.New(rand.NewSource(42))
	deg := make([]uint32, n)
	attrs := make([]float64, n)
	for v := range attrs {
		deg[v] = uint32(1 + rng.Intn(5))
		attrs[v] = rng.NormFloat64() // negative values catch sign bugs
	}
	mask := bitset.New(n)
	for v := 0; v < n; v += 5 {
		mask.Set(v)
	}
	del := func(s, d uint32) bool { return (s+d)%3 == 0 }
	src := view{attrs, 0}

	for _, c := range scalarFoldCases() {
		ss := makeTestSubShard(rng, n, 48, c.weighted)
		filters := []struct {
			name string
			mask *bitset.Set
			del  delPred
		}{
			{"plain", nil, nil},
			{"mask", mask, nil},
			{"del", nil, del},
			{"mask+del", mask, del},
		}
		for _, fl := range filters {
			name := c.name + "/" + fl.name

			accA := make([]float64, n)
			accB := make([]float64, n)
			for v := range accA {
				accA[v] = c.prog.zero
				accB[v] = c.prog.zero
			}
			gatherCSR(c.prog, deg, fl.mask, fl.del, ss, src, view{accA, 0}, 0, ss.NumDsts())
			gatherSpec(c.f, deg, fl.mask, fl.del, ss, src, view{accB, 0}, nil, 0, ss.NumDsts())
			assertSameBits(t, name+"/csr", accA, accB)

			hubA := make([]float64, ss.NumDsts())
			hubB := make([]float64, ss.NumDsts())
			gatherToHub(c.prog, deg, fl.mask, fl.del, ss, src, hubA, 0, ss.NumDsts())
			gatherSpec(c.f, deg, fl.mask, fl.del, ss, src, view{}, hubB, 0, ss.NumDsts())
			assertSameBits(t, name+"/hub", hubA, hubB)

			if fl.del == nil { // the source-sorted path has no overlay
				flat := toSrcSorted(ss)
				for v := range accA {
					accA[v] = c.prog.zero
					accB[v] = c.prog.zero
				}
				gatherSrcSorted(c.prog, deg, fl.mask, flat, src, view{accA, 0})
				if !gatherSrcSortedSpec(c.f, deg, fl.mask, flat, src, view{accB, 0}) {
					t.Fatalf("%s: no srcsorted specialization", name)
				}
				assertSameBits(t, name+"/srcsorted", accA, accB)
			}
		}

		// FromHub: only Sum matters, so exercise the sum fold over the
		// hub partials just produced.
		if sf := sumFoldFor(hintForFold(c.f)); sf != foldNone {
			hub := make([]float64, ss.NumDsts())
			gatherToHub(c.prog, deg, nil, nil, ss, src, hub, 0, ss.NumDsts())
			accA := make([]float64, n)
			accB := make([]float64, n)
			for v := range accA {
				accA[v] = c.prog.zero
				accB[v] = c.prog.zero
			}
			foldHub(c.prog, ss.Dsts, hub, view{accA, 0}, 0, ss.NumDsts())
			if !foldHubSpec(sf, ss.Dsts, hub, view{accB, 0}, 0, ss.NumDsts()) {
				t.Fatalf("%s: no foldHub specialization", c.name)
			}
			assertSameBits(t, c.name+"/foldHub", accA, accB)
		}
	}
}

// hintForFold inverts scalarFoldFor far enough for the FromHub check:
// any hint whose Sum matches the fold's combine.
func hintForFold(f scalarFold) KernelHint {
	switch f {
	case foldCopySum, foldRankSum, foldCountSum:
		return KernelCopySum
	case foldMin, foldHopMin, foldDistMin:
		return KernelMinFold
	case foldMax:
		return KernelMaxFold
	}
	return KernelGeneric
}

func TestScalarFoldFor(t *testing.T) {
	cases := []struct {
		hint             KernelHint
		scaled, weighted bool
		want             scalarFold
	}{
		{KernelGeneric, false, false, foldNone},
		{KernelRankSum, false, false, foldRankSum},
		{KernelRankSum, true, false, foldCopySum}, // division hoisted
		{KernelHopMin, false, true, foldHopMin},
		{KernelDistMin, false, true, foldDistMin},
		{KernelDistMin, false, false, foldHopMin}, // unweighted cell: w == 1
		{KernelMinFold, false, false, foldMin},
		{KernelMaxFold, false, false, foldMax},
		{KernelCountSum, false, false, foldCountSum},
		{KernelCopySum, false, false, foldCopySum},
	}
	for _, c := range cases {
		if got := scalarFoldFor(c.hint, c.scaled, c.weighted); got != c.want {
			t.Errorf("scalarFoldFor(%v, %v, %v) = %v, want %v",
				c.hint, c.scaled, c.weighted, got, c.want)
		}
	}
}

func assertSameBits(t *testing.T, name string, want, got []float64) {
	t.Helper()
	for i := range want {
		if math.Float64bits(want[i]) != math.Float64bits(got[i]) {
			t.Fatalf("%s: [%d] = %x (%g), want %x (%g)", name, i,
				math.Float64bits(got[i]), got[i], math.Float64bits(want[i]), want[i])
		}
	}
}

// benchSubShard builds a dense synthetic sub-shard: numDsts destinations
// with edgesPer in-edges each over n source vertices.
func benchSubShard(rng *rand.Rand, n, numDsts, edgesPer int) *storage.SubShard {
	ss := &storage.SubShard{Offsets: []uint32{0}}
	for k := 0; k < numDsts; k++ {
		for t := 0; t < edgesPer; t++ {
			ss.Srcs = append(ss.Srcs, uint32(rng.Intn(n)))
		}
		ss.Dsts = append(ss.Dsts, uint32(k%n))
		ss.Offsets = append(ss.Offsets, uint32(len(ss.Srcs)))
	}
	return ss
}

// BenchmarkGatherKernel compares the generic interface-dispatch gather
// against the devirtualized folds on one 64k-edge sub-shard.
func BenchmarkGatherKernel(b *testing.B) {
	const n = 1 << 13
	rng := rand.New(rand.NewSource(7))
	ss := benchSubShard(rng, n, n, 8)
	deg := make([]uint32, n)
	attrs := make([]float64, n)
	for v := range attrs {
		deg[v] = uint32(1 + rng.Intn(8))
		attrs[v] = rng.Float64()
	}
	src := view{attrs, 0}
	acc := make([]float64, n)
	edges := int64(ss.NumEdges())

	for _, c := range scalarFoldCases() {
		if c.weighted {
			continue // weight array omitted; distMin covered by equivalence tests
		}
		b.Run("generic/"+c.name, func(b *testing.B) {
			b.SetBytes(edges * 8)
			for i := 0; i < b.N; i++ {
				gatherCSR(c.prog, deg, nil, nil, ss, src, view{acc, 0}, 0, ss.NumDsts())
			}
		})
		b.Run("spec/"+c.name, func(b *testing.B) {
			b.SetBytes(edges * 8)
			for i := 0; i < b.N; i++ {
				gatherSpec(c.f, deg, nil, nil, ss, src, view{acc, 0}, nil, 0, ss.NumDsts())
			}
		})
	}
}

// minApplyBenchProg is a BFS-style relaxation with a LaneApplier.
type minApplyBenchProg struct{}

func (minApplyBenchProg) Name() string                  { return "min-apply-bench" }
func (minApplyBenchProg) Zero() float64                 { return math.Inf(1) }
func (minApplyBenchProg) Init(v uint32) (float64, bool) { return math.Inf(1), true }
func (minApplyBenchProg) Gather(a float64, _ uint32, _ float32) float64 {
	return a + 1
}
func (minApplyBenchProg) Sum(a, b float64) float64 { return math.Min(a, b) }
func (minApplyBenchProg) Apply(v uint32, old, acc float64) (float64, bool) {
	if acc < old {
		return acc, true
	}
	return old, false
}
func (minApplyBenchProg) ApplyLane(curr, next []float64, stride, off int, v0, v1 uint32) bool {
	changed := false
	for v := v0; v < v1; v++ {
		idx := int(v)*stride + off
		if next[idx] < curr[idx] {
			changed = true
		} else {
			next[idx] = curr[idx]
		}
	}
	return changed
}

// BenchmarkApplyKernel compares the per-vertex interface apply against
// the lane apply over one 256k-vertex range.
func BenchmarkApplyKernel(b *testing.B) {
	const n = 1 << 18
	rng := rand.New(rand.NewSource(9))
	old := make([]float64, n)
	acc := make([]float64, n)
	for v := range old {
		old[v] = rng.Float64()
		acc[v] = rng.Float64()
	}
	p := minApplyBenchProg{}
	b.Run("generic", func(b *testing.B) {
		b.SetBytes(n * 16)
		for i := 0; i < b.N; i++ {
			applyRange(p, nil, view{old, 0}, view{acc, 0}, view{acc, 0}, 0, n)
		}
	})
	b.Run("lane", func(b *testing.B) {
		b.SetBytes(n * 16)
		for i := 0; i < b.N; i++ {
			p.ApplyLane(old, acc, 1, 0, 0, n)
		}
	})
}

// BenchmarkChunkingSkewed demonstrates why chunk boundaries balance
// edges rather than destinations: one hub destination holding half the
// sub-shard's edges serializes its whole destination-count chunk, while
// edge-balanced boundaries isolate it.
func BenchmarkChunkingSkewed(b *testing.B) {
	// Power-law shape: a high-in-degree hub among moderately dense
	// destinations, then a long sparse tail. Destination-count chunks
	// (2048 destinations each) put the hub and every dense destination
	// into one chunk holding ~95% of the edges; edge-balanced chunks
	// split that mass across the pool.
	const n = 1 << 13
	rng := rand.New(rand.NewSource(11))
	ss := &storage.SubShard{Offsets: []uint32{0}}
	edgesOf := func(k int) int {
		switch {
		case k == 0:
			return 1 << 14 // the hub
		case k < 1<<11:
			return 64 // dense neighbourhood
		default:
			return 1 // sparse tail
		}
	}
	for k := 0; k < 1<<12; k++ {
		for t := 0; t < edgesOf(k); t++ {
			ss.Srcs = append(ss.Srcs, uint32(rng.Intn(n)))
		}
		ss.Dsts = append(ss.Dsts, uint32(k))
		ss.Offsets = append(ss.Offsets, uint32(len(ss.Srcs)))
	}
	attrs := make([]float64, n)
	for v := range attrs {
		attrs[v] = rng.Float64()
	}
	src := view{attrs, 0}
	acc := make([]float64, n)
	deg := make([]uint32, n)
	edges := int64(ss.NumEdges())
	const threads, chunk = 4, 2048

	run := func(b *testing.B, bounds []int) {
		// The largest chunk bounds the critical path: with enough
		// threads, wall-clock cannot drop below maxChunkEdges. Reporting
		// it makes the schedule quality visible even on machines without
		// the cores to show it in ns/op.
		maxEdges := 0
		for c := 0; c+1 < len(bounds); c++ {
			if e := int(ss.Offsets[bounds[c+1]] - ss.Offsets[bounds[c]]); e > maxEdges {
				maxEdges = e
			}
		}
		b.ReportMetric(float64(maxEdges), "maxChunkEdges")
		b.ReportMetric(float64(maxEdges)/float64(edges), "criticalPathFrac")
		b.SetBytes(edges * 8)
		for i := 0; i < b.N; i++ {
			parallelFor(threads, len(bounds)-1, func(c int) {
				gatherSpec(foldCopySum, deg, nil, nil, ss, src, view{acc, 0}, nil, bounds[c], bounds[c+1])
			})
		}
	}
	b.Run(fmt.Sprintf("dstCount/t%d", threads), func(b *testing.B) {
		run(b, chunkRanges(ss.NumDsts(), chunk))
	})
	b.Run(fmt.Sprintf("edgeBalanced/t%d", threads), func(b *testing.B) {
		run(b, edgeChunkRanges(ss.Offsets, 4*chunk))
	})
}
