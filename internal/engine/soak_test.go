package engine_test

import (
	"testing"

	"nxgraph/internal/algorithms"
	"nxgraph/internal/engine"
	"nxgraph/internal/gen"
	"nxgraph/internal/testutil"
)

// BenchmarkSoakPageRankColdCache is the larger-than-RAM profile: the
// block cache is budgeted far below the store's edge bytes, so every
// iteration re-reads evicted sub-shards from disk. The headline metric
// is a sustained nonzero diskReadB/op — the workload the warm-cache
// benchmark deliberately excludes. Skipped under -short (it moves
// hundreds of MB through the page cache).
func BenchmarkSoakPageRankColdCache(b *testing.B) {
	if testing.Short() {
		b.Skip("soak benchmark skipped in -short mode")
	}
	g, err := gen.RMAT(gen.DefaultRMAT(15, 8, 7))
	if err != nil {
		b.Fatal(err)
	}
	st, _ := testutil.BuildStore(b, g, testutil.StoreOptions{P: 8})
	e, err := engine.New(st, engine.Config{Threads: 2, CacheBytes: 1 << 20})
	if err != nil {
		b.Fatal(err)
	}
	if _, err := algorithms.PageRank(e, 0.85, 1); err != nil {
		b.Fatal(err) // populate whatever fits; the rest stays cold
	}
	before := st.Disk().Stats().Snapshot()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := algorithms.PageRank(e, 0.85, 5); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	delta := st.Disk().Stats().Snapshot().Sub(before)
	b.ReportMetric(float64(delta.BytesRead)/float64(b.N), "diskReadB/op")
	if delta.BytesRead == 0 {
		b.Fatal("soak run read no disk bytes: cache budget did not overflow")
	}
}
