package engine

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"

	"nxgraph/internal/diskio"
	"nxgraph/internal/storage"
	"nxgraph/internal/trace"
)

// Step executes one iteration (Algorithm 1's repeat body). It returns
// false when the computation has terminated: every interval inactive, or
// the MaxIterations budget exhausted.
func (r *Run) Step() (bool, error) {
	return r.step()
}

// StepContext is Step with cancellation: ctx is consulted before the
// iteration and between sub-shard batches (each row of the row phase, each
// destination interval of the column phase). On cancellation it returns
// ctx.Err() without corrupting run state; the run may not be stepped
// further, but the engine and store remain reusable.
func (r *Run) StepContext(ctx context.Context) (bool, error) {
	if ctx != nil && ctx != context.Background() {
		r.ctx = ctx
		defer func() { r.ctx = nil }()
	}
	return r.step()
}

func (r *Run) step() (bool, error) {
	if r.closed {
		return false, fmt.Errorf("engine: Step on closed run")
	}
	if r.finished {
		return false, nil
	}
	if err := r.checkCtx(); err != nil {
		return false, err
	}
	if max := r.e.cfg.MaxIterations; max > 0 && r.iter >= max {
		r.finished = true
		return false, nil
	}
	anyActive := false
	for _, a := range r.active {
		if a {
			anyActive = true
			break
		}
	}
	if !anyActive {
		r.finished = true
		return false, nil
	}

	m := r.e.store.Meta()
	P, Q := m.P, r.q
	dirs := r.dirsUsed()

	// Open the iteration span and reset the per-iteration counters the
	// prefetch goroutines and batch waits accumulate into.
	var iterSpan trace.Span
	var iterIO diskio.StatsSnapshot
	var edges0 int64
	if r.tr != nil {
		iterSpan = r.tr.Start(trace.KindIteration, spanName("iter-", r.iter), r.runSpan.ID)
		r.iterSpanID.Store(iterSpan.ID)
		r.iterHits.Store(0)
		r.iterMisses.Store(0)
		r.stallNS = 0
		iterIO = r.e.store.Disk().Stats().Snapshot()
		edges0 = r.edges
	}

	// InitializeIteration: the resident accumulators must hold Zero.
	// After a completed step this is already true — the apply phase
	// re-zeroes the outgoing attribute array while its cache lines are
	// hot (see applyResident) — so the sweep below only runs on the first
	// step and after an aborted one.
	if !r.nextZeroed {
		zero := r.p.Zero()
		bounds := chunkRanges(int(r.resEnd), 1<<16)
		parallelFor(r.threads, len(bounds)-1, func(c int) {
			fill(r.next[bounds[c]:bounds[c+1]], zero)
		})
	}
	r.nextZeroed = false

	// RankSum division hoist: refresh the per-iteration scaled view of
	// the resident attributes before any gathering reads it.
	if r.useScaled {
		r.refreshScaled(r.scaled, r.curr[:r.resEnd], 0, r.degOf(dirs[0]))
	}

	// Global aggregate over current attributes (resident part now,
	// on-disk intervals as the row phase streams them through memory).
	var aggVal float64
	if r.agg != nil {
		aggVal = r.agg.AggZero()
		deg := r.primaryDeg()
		switch {
		case r.laggr != nil && r.resEnd == m.NumVertices:
			// Every attribute is resident (SPU): one lane-aggregate call,
			// bit-identical to the serial fold by LaneAggregator's
			// contract and free to exploit program structure (PageRank's
			// skips every non-dangling vertex).
			aggVal = r.laggr.AggLane(r.curr, 1, 0, deg)
		case r.laggr != nil:
			// A LaneAggregator promises serial-fold bits and fused runs
			// rely on them, so partial-array strategies keep the exact
			// serial order: resident vertices now, streamed intervals as
			// the row phase flows them through memory.
			for v := uint32(0); v < r.resEnd; v++ {
				aggVal = r.agg.AggCombine(aggVal, r.agg.AggVertex(v, r.curr[v], deg[v]))
			}
		default:
			aggVal = r.aggRange(aggVal, r.curr[:r.resEnd], 0, deg)
		}
	}

	// Row phase: SPU-like updates into resident accumulators, ToHub for
	// on-disk destinations (Algorithm 7 lines 1-16). Each row's blocks
	// are pinned by the prefetch pipeline one row ahead, so row i's
	// gathering overlaps row i+1's reads.
	rowPipe := r.newPipeline(r.rowPlans(dirs))
	defer rowPipe.drain()
	for i := 0; i < P; i++ {
		if err := r.checkCtx(); err != nil {
			return false, err
		}
		srcActive := r.active[i]
		if i < Q {
			if !srcActive {
				continue
			}
			if err := r.processRow(i, r.srcView(), dirs, rowPipe.take(i)); err != nil {
				return false, err
			}
			continue
		}
		for _, d := range dirs {
			if r.hubRowValid[d] != nil {
				r.hubRowValid[d][i] = srcActive
			}
		}
		if !srcActive && r.agg == nil {
			continue
		}
		lo, hi := m.IntervalRange(i)
		buf := r.loadBuf[:hi-lo]
		if err := r.attrs.ReadInterval(i, buf); err != nil {
			return false, err
		}
		if r.agg != nil {
			deg := r.primaryDeg()
			if r.laggr != nil { // serial-fold bits, see the resident case
				for v := lo; v < hi; v++ {
					aggVal = r.agg.AggCombine(aggVal, r.agg.AggVertex(v, buf[v-lo], deg[v]))
				}
			} else {
				aggVal = r.aggRange(aggVal, buf, lo, deg)
			}
		}
		if !srcActive {
			continue
		}
		srcV := view{buf, lo}
		if r.useScaled {
			sbuf := r.scaledBuf[:hi-lo]
			r.refreshScaled(sbuf, buf, lo, r.degOf(dirs[0]))
			srcV = view{sbuf, lo}
		}
		if err := r.processRow(i, srcV, dirs, rowPipe.take(i)); err != nil {
			return false, err
		}
	}
	if r.agg != nil {
		r.agg.SetGlobal(aggVal)
	}

	activeNext := make([]bool, P)

	// Column phase: FromHub plus resident-source gathering for on-disk
	// destination intervals (Algorithm 7 lines 17-26), pipelined like the
	// row phase (the column-major reads are the seekiest of the step).
	// The loop iterates the plans themselves, so the pipeline's
	// consume-in-plan-order contract holds by construction.
	colPlans := r.colPlans(dirs)
	colPipe := r.newPipeline(colPlans)
	defer colPipe.drain()
	for _, plan := range colPlans {
		if err := r.checkCtx(); err != nil {
			return false, err
		}
		changed, err := r.processColumn(plan.id, dirs, plan.touched, colPipe.take(plan.id))
		if err != nil {
			return false, err
		}
		activeNext[plan.id] = changed
	}

	// Apply phase for resident intervals, then ping-pong swap.
	applySpan := r.tr.Start(trace.KindApply, "apply-resident", iterSpan.ID)
	if err := r.applyResident(activeNext); err != nil {
		return false, err
	}
	r.tr.End(applySpan)
	r.curr, r.next = r.next, r.curr
	r.nextZeroed = true // apply tasks re-zeroed what is now r.next
	copy(r.active, activeNext)
	r.iter++
	r.notifyProgress(activeNext)

	if r.tr != nil {
		dur := r.tr.End(iterSpan)
		io := r.e.store.Disk().Stats().Snapshot().Sub(iterIO)
		stall := time.Duration(r.stallNS)
		compute := dur - stall
		if compute < 0 {
			compute = 0
		}
		r.tr.AddStep(trace.StepStats{
			Iteration:    r.iter - 1,
			Edges:        r.edges - edges0,
			BlocksHit:    r.iterHits.Load(),
			BlocksMiss:   r.iterMisses.Load(),
			BytesRead:    io.BytesRead,
			BytesWritten: io.BytesWritten,
			StallUS:      stall.Microseconds(),
			ComputeUS:    compute.Microseconds(),
			DurUS:        dur.Microseconds(),
		})
		r.iterSpanID.Store(r.runSpan.ID)
	}
	return true, nil
}

// subShardInfosFor returns the sub-shard index for a traversal flag.
func (r *Run) subShardInfosFor(d int) []storage.SubShardInfo {
	m := r.e.store.Meta()
	if d == 1 {
		return m.TSubShards
	}
	return m.SubShards
}

// processRow executes row i of the sub-shard matrix with source attributes
// src: destinations in resident intervals accumulate into r.next;
// destinations in on-disk intervals are gathered into hubs (ToHub).
// blocks is the row's prefetched batch; processRow owns it — blocks stay
// pinned until every gather task has run, then the whole batch releases.
// Within one replica's row, distinct destination ranges never overlap, so
// callback mode runs each group lock-free; groups that can collide on a
// destination (forward vs transposed replica, base vs overlay) are
// separated by barriers — see the scheduling comment below.
func (r *Run) processRow(i int, src view, dirs []int, blocks *fetchBatch) error {
	defer blocks.release()
	if err := r.waitBatch(blocks, "row-", i); err != nil {
		return err
	}
	if r.tr != nil {
		gsp := r.tr.Start(trace.KindGather, spanName("row-", i), r.iterSpanID.Load())
		defer r.tr.End(gsp)
	}
	m := r.e.store.Meta()
	P, Q := m.P, r.q
	jmax := P
	if i < Q {
		jmax = Q // SS[i][j>=Q] with resident source is handled by the column phase
	}
	// Tasks are scheduled in conflict-free groups. Hub-side tasks
	// (j >= Q) write private per-cell value arrays and can run with
	// anything. Resident-destination gathers (j < Q) fold into the
	// shared r.next accumulator: within one replica's row the distinct
	// destination ranges are disjoint (the §III-D invariant), but the
	// forward and transposed replicas — and a cell's base sub-shard vs
	// its overlay cell — can hit the same destination vertex, so each
	// (replica, base|overlay) group gets its own barrier. Forward-only
	// runs without deltas still execute exactly one parallelFor.
	var free []func()           // hub-side: no shared accumulator
	var resident [2][2][]func() // [traversal flag][0 = base, 1 = overlay]
	for _, d := range dirs {
		deg := r.degOf(d)
		infos := r.subShardInfosFor(d)
		for j := 0; j < jmax; j++ {
			base := infos[i*P+j].Edges > 0
			ovc := r.ovCell(d, i, j)
			if !base && ovc == nil {
				continue
			}
			if r.e.cfg.Order == SrcSortedCoarse { // overlay rejected at NewRun
				flat, err := r.batchFlat(blocks, cellID{d, i, j, true})
				if err != nil {
					return err
				}
				r.edges += int64(len(flat.srcs))
				lock := &r.locks[j]
				acc := view{r.next, 0}
				p, dd := r.p, deg
				f := scalarFoldFor(r.hint, false, flat.ws != nil)
				free = append(free, func() { // interval lock serializes
					lock.Lock()
					if !gatherSrcSortedSpec(f, dd, r.mask, flat, src, acc) {
						gatherSrcSorted(p, dd, r.mask, flat, src, acc)
					}
					lock.Unlock()
				})
				continue
			}
			del := r.cellDel(d, i, j)
			if j < Q {
				if base {
					ss, err := r.batchSubShard(blocks, cellID{d, i, j, false})
					if err != nil {
						return err
					}
					r.edges += int64(ss.NumEdges())
					resident[d][0] = append(resident[d][0], r.gatherTasks(ss, deg, del, src, view{r.next, 0}, j)...)
				}
				if ovc != nil {
					r.edges += int64(ovc.NumEdges())
					resident[d][1] = append(resident[d][1], r.gatherTasks(ovc, deg, nil, src, view{r.next, 0}, j)...)
				}
				continue
			}
			if base {
				ss, err := r.batchSubShard(blocks, cellID{d, i, j, false})
				if err != nil {
					return err
				}
				r.edges += int64(ss.NumEdges())
				free = append(free, r.hubTasks(d, i, j, ss, deg, del, src)...)
			}
			if ovc != nil {
				// Overlay contributions to an on-disk destination
				// interval accumulate in memory (the hub file's regions
				// are sized from the base meta); the column phase folds
				// them alongside the disk hub.
				r.edges += int64(ovc.NumEdges())
				free = append(free, r.ovHubTasks(d, i, j, ovc, deg, src)...)
			}
		}
	}
	first := true
	for _, d := range dirs {
		for _, g := range resident[d] {
			if first {
				g = append(g, free...) // fold free tasks into the first barrier
				free = nil
				first = false
			}
			if len(g) == 0 {
				continue
			}
			parallelFor(r.threads, len(g), func(t int) { g[t]() })
		}
	}
	parallelFor(r.threads, len(free), func(t int) { free[t]() }) // no resident groups ran
	return r.takeErr()
}

// gatherTasks builds the fine-grained (callback) or interval-locked (lock)
// tasks that fold sub-shard ss into a dense accumulator. del is the
// overlay tombstone predicate for base sub-shards (nil for overlay cells
// and cells without pending removals). Cells whose Gather/Sum match the
// run's kernel hint go through the devirtualized fold loops; chunk
// boundaries balance edges, not destinations, so a hub destination does
// not serialize its whole chunk's worth of sparse neighbours behind it.
func (r *Run) gatherTasks(ss *storage.SubShard, deg []uint32, del func(src, dst uint32) bool, src, acc view, j int) []func() {
	p := r.p
	f := scalarFoldFor(r.hint, r.useScaled, ss.Weights != nil)
	if r.e.cfg.Sync == Lock {
		lock := &r.locks[j]
		return []func(){func() {
			lock.Lock()
			if f != foldNone {
				gatherSpec(f, deg, r.mask, del, ss, src, acc, nil, 0, ss.NumDsts())
			} else {
				gatherCSR(p, deg, r.mask, del, ss, src, acc, 0, ss.NumDsts())
			}
			lock.Unlock()
		}}
	}
	bounds := edgeChunkRanges(ss.Offsets, r.chunkCost)
	tasks := make([]func(), 0, len(bounds)-1)
	for c := 0; c < len(bounds)-1; c++ {
		k0, k1 := bounds[c], bounds[c+1]
		if f != foldNone {
			tasks = append(tasks, func() {
				gatherSpec(f, deg, r.mask, del, ss, src, acc, nil, k0, k1)
			})
		} else {
			tasks = append(tasks, func() {
				gatherCSR(p, deg, r.mask, del, ss, src, acc, k0, k1)
			})
		}
	}
	return tasks
}

// hubTasks builds the ToHub tasks for sub-shard SS[i][j]: gather partials
// into a value array and write hub H[i][j] once the last chunk completes
// (the callback mechanism).
func (r *Run) hubTasks(d, i, j int, ss *storage.SubShard, deg []uint32, del func(src, dst uint32) bool, src view) []func() {
	p := r.p
	vals := make([]float64, ss.NumDsts())
	write := func() {
		if err := r.hubs[d].Write(i, j, ss.Dsts, vals); err != nil {
			r.setErr(err)
		}
	}
	f := scalarFoldFor(r.hint, r.useScaled, ss.Weights != nil)
	gather := func(k0, k1 int) {
		if f != foldNone {
			gatherSpec(f, deg, r.mask, del, ss, src, view{}, vals, k0, k1)
		} else {
			gatherToHub(p, deg, r.mask, del, ss, src, vals, k0, k1)
		}
	}
	if r.e.cfg.Sync == Lock {
		return []func(){func() {
			gather(0, ss.NumDsts())
			write()
		}}
	}
	bounds := edgeChunkRanges(ss.Offsets, r.chunkCost)
	var pending atomic.Int32
	pending.Store(int32(len(bounds) - 1))
	tasks := make([]func(), 0, len(bounds)-1)
	for c := 0; c < len(bounds)-1; c++ {
		k0, k1 := bounds[c], bounds[c+1]
		tasks = append(tasks, func() {
			gather(k0, k1)
			if pending.Add(-1) == 0 {
				write()
			}
		})
	}
	return tasks
}

// ovHubTasks gathers overlay cell (i,j) into its in-memory partials
// array — the overlay counterpart of hubTasks, with no disk write.
func (r *Run) ovHubTasks(d, i, j int, cell *storage.SubShard, deg []uint32, src view) []func() {
	p := r.p
	vals := r.ovHubVals(d, i, j, cell)
	f := scalarFoldFor(r.hint, r.useScaled, cell.Weights != nil)
	gather := func(k0, k1 int) {
		if f != foldNone {
			gatherSpec(f, deg, r.mask, nil, cell, src, view{}, vals, k0, k1)
		} else {
			gatherToHub(p, deg, r.mask, nil, cell, src, vals, k0, k1)
		}
	}
	if r.e.cfg.Sync == Lock {
		return []func(){func() {
			gather(0, cell.NumDsts())
		}}
	}
	bounds := edgeChunkRanges(cell.Offsets, r.chunkCost)
	tasks := make([]func(), 0, len(bounds)-1)
	for c := 0; c < len(bounds)-1; c++ {
		k0, k1 := bounds[c], bounds[c+1]
		tasks = append(tasks, func() {
			gather(k0, k1)
		})
	}
	return tasks
}

// columnTouched reports whether any contribution can reach on-disk
// destination interval j this iteration.
func (r *Run) columnTouched(j int, dirs []int) bool {
	P, Q := r.e.store.Meta().P, r.q
	for _, d := range dirs {
		infos := r.subShardInfosFor(d)
		for i := 0; i < Q; i++ {
			if r.active[i] && r.cellHasEdges(d, i, j) {
				return true
			}
		}
		for i := Q; i < P; i++ {
			if r.hubRowValid[d][i] && (infos[i*P+j].Dsts > 0 || r.ovCell(d, i, j) != nil) {
				return true
			}
		}
	}
	return false
}

// processColumn runs the FromHub side for on-disk destination interval j:
// gather resident-source sub-shards, fold hubs, apply, and persist.
// blocks is the column's prefetched batch; processColumn owns it.
func (r *Run) processColumn(j int, dirs []int, touched bool, blocks *fetchBatch) (bool, error) {
	defer blocks.release()
	if err := r.waitBatch(blocks, "col-", j); err != nil {
		return false, err
	}
	if r.tr != nil {
		gsp := r.tr.Start(trace.KindGather, spanName("col-", j), r.iterSpanID.Load())
		defer r.tr.End(gsp)
	}
	m := r.e.store.Meta()
	P, Q := m.P, r.q
	lo, hi := m.IntervalRange(j)
	if lo == hi {
		return false, nil
	}
	acc := r.accBuf[:hi-lo]
	fill(acc, r.p.Zero())
	accV := view{acc, lo}
	if touched {
		for _, d := range dirs {
			deg := r.degOf(d)
			infos := r.subShardInfosFor(d)
			for i := 0; i < Q; i++ {
				if !r.active[i] {
					continue
				}
				if infos[i*P+j].Edges > 0 {
					ss, err := r.batchSubShard(blocks, cellID{d, i, j, false})
					if err != nil {
						return false, err
					}
					r.edges += int64(ss.NumEdges())
					tasks := r.gatherTasks(ss, deg, r.cellDel(d, i, j), r.srcView(), accV, j)
					parallelFor(r.threads, len(tasks), func(t int) { tasks[t]() })
				}
				if ovc := r.ovCell(d, i, j); ovc != nil {
					r.edges += int64(ovc.NumEdges())
					tasks := r.gatherTasks(ovc, deg, nil, r.srcView(), accV, j)
					parallelFor(r.threads, len(tasks), func(t int) { tasks[t]() })
				}
			}
			for i := Q; i < P; i++ {
				if !r.hubRowValid[d][i] {
					continue
				}
				if infos[i*P+j].Dsts > 0 {
					dsts, vals, err := r.hubs[d].Read(i, j)
					if err != nil {
						return false, err
					}
					bounds := chunkRanges(len(dsts), r.chunk)
					parallelFor(r.threads, len(bounds)-1, func(c int) {
						r.foldHubRange(dsts, vals, accV, bounds[c], bounds[c+1])
					})
				}
				if ovc := r.ovCell(d, i, j); ovc != nil {
					// Fold the in-memory overlay partials written by this
					// iteration's row phase (hubRowValid guarantees the
					// row ran, so the array is populated).
					r.foldHubRange(ovc.Dsts, r.ovHub[d][i*P+j], accV, 0, ovc.NumDsts())
				}
			}
			if err := r.takeErr(); err != nil {
				return false, err
			}
		}
	}
	old := r.oldBuf[:hi-lo]
	if err := r.attrs.ReadInterval(j, old); err != nil {
		return false, err
	}
	oldV := view{old, lo}
	bounds := chunkRanges(int(hi-lo), r.chunk)
	changed := make([]bool, len(bounds)-1)
	parallelFor(r.threads, len(bounds)-1, func(c int) {
		v0, v1 := lo+uint32(bounds[c]), lo+uint32(bounds[c+1])
		changed[c] = r.applyChunk(oldV, accV, v0, v1)
	})
	anyChanged := false
	for _, c := range changed {
		if c {
			anyChanged = true
			break
		}
	}
	if err := r.attrs.WriteInterval(j, acc); err != nil {
		return false, err
	}
	return anyChanged, nil
}

// applyResident finalizes resident intervals: Apply where contributions
// (or a global aggregate) demand it, plain copy elsewhere. Every task —
// apply or copy — re-zeroes its slice of what is about to become the
// next iteration's accumulator (r.curr, pre-swap) while the cache lines
// are still hot, so step() never needs a separate zeroing sweep.
func (r *Run) applyResident(activeNext []bool) error {
	m := r.e.store.Meta()
	P, Q := m.P, r.q
	dirs := r.dirsUsed()
	type task struct {
		j      int
		v0, v1 uint32
		copy   bool
	}
	var tasks []task
	for j := 0; j < Q; j++ {
		lo, hi := m.IntervalRange(j)
		if lo == hi {
			continue
		}
		touched := r.dense
		if !touched {
			for _, d := range dirs {
				for i := 0; i < P; i++ {
					if r.active[i] && r.cellHasEdges(d, i, j) {
						touched = true
						break
					}
				}
				if touched {
					break
				}
			}
		}
		bounds := chunkRanges(int(hi-lo), r.chunk)
		for c := 0; c < len(bounds)-1; c++ {
			tasks = append(tasks, task{j, lo + uint32(bounds[c]), lo + uint32(bounds[c+1]), !touched})
		}
	}
	changed := make([]bool, len(tasks))
	zero := r.p.Zero()
	currV, nextV := view{r.curr, 0}, view{r.next, 0}
	parallelFor(r.threads, len(tasks), func(t int) {
		tk := tasks[t]
		if tk.copy {
			copy(r.next[tk.v0:tk.v1], r.curr[tk.v0:tk.v1])
		} else {
			changed[t] = r.applyChunk(currV, nextV, tk.v0, tk.v1)
		}
		fill(r.curr[tk.v0:tk.v1], zero)
	})
	for t, ch := range changed {
		if ch {
			activeNext[tasks[t].j] = true
		}
	}
	return nil
}

// srcView is the resident source-attribute window the gather kernels
// read: the per-iteration scaled array under the RankSum division hoist,
// the raw attributes otherwise.
func (r *Run) srcView() view {
	if r.useScaled {
		return view{r.scaled, 0}
	}
	return view{r.curr, 0}
}

// refreshScaled recomputes dst[i] = vals[i] / float64(deg[lo+i]) in
// parallel chunks — the RankSum division hoist, performed with exactly
// the operands Gather(vals[i], deg[lo+i], w) would use so the hoisted
// fold stays bit-identical. Zero-degree vertices yield Inf entries that
// are never read: a gathered edge from source s implies s's
// overlay-adjusted degree is at least 1 (tombstoned edges are filtered
// before the attribute read).
func (r *Run) refreshScaled(dst, vals []float64, lo uint32, deg []uint32) {
	bounds := chunkRanges(len(vals), 1<<15)
	parallelFor(r.threads, len(bounds)-1, func(c int) {
		for i := bounds[c]; i < bounds[c+1]; i++ {
			dst[i] = vals[i] / float64(deg[lo+uint32(i)])
		}
	})
}

// aggRange folds the global aggregate over the vertex range
// [lo, lo+len(vals)) whose attributes sit in vals, computing per-chunk
// partials in parallel and combining them with AggCombine in ascending
// chunk order. The fixed chunk size makes the result deterministic for
// any thread count, though the chunked combine is not the serial fold's
// float association — programs that need serial bits declare a
// LaneAggregator and never reach this path.
func (r *Run) aggRange(val float64, vals []float64, lo uint32, deg []uint32) float64 {
	bounds := chunkRanges(len(vals), 1<<15)
	parts := make([]float64, len(bounds)-1)
	parallelFor(r.threads, len(parts), func(c int) {
		pv := r.agg.AggZero()
		for i := bounds[c]; i < bounds[c+1]; i++ {
			v := lo + uint32(i)
			pv = r.agg.AggCombine(pv, r.agg.AggVertex(v, vals[i], deg[v]))
		}
		parts[c] = pv
	})
	for _, pv := range parts {
		val = r.agg.AggCombine(val, pv)
	}
	return val
}

// foldHubRange folds hub partials [k0, k1) into the accumulator through
// the devirtualized Sum loop when the kernel hint pins Sum's form, the
// generic per-entry path otherwise.
func (r *Run) foldHubRange(dsts []uint32, vals []float64, acc view, k0, k1 int) {
	if !foldHubSpec(sumFoldFor(r.hint), dsts, vals, acc, k0, k1) {
		foldHub(r.p, dsts, vals, acc, k0, k1)
	}
}

// applyChunk applies vertices [v0, v1), reading old attributes from old
// and folding into acc in place. With no mask installed it uses the
// program's LaneApplier (stride 1; both views share a base, so one
// offset indexes both arrays) to skip per-vertex interface dispatch.
func (r *Run) applyChunk(old, acc view, v0, v1 uint32) bool {
	if r.la != nil && r.mask == nil {
		return r.la.ApplyLane(old.vals, acc.vals, 1, -int(old.base), v0, v1)
	}
	return applyRange(r.p, r.mask, old, acc, acc, v0, v1)
}
