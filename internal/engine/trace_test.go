package engine_test

import (
	"testing"

	"nxgraph/internal/algorithms"
	"nxgraph/internal/engine"
	"nxgraph/internal/gen"
	"nxgraph/internal/testutil"
	"nxgraph/internal/trace"
)

// TestRunTraceTimeline checks the engine's tracing end to end: a PageRank
// run must leave a timeline containing the run span, one iteration span
// per iteration, block loads tagged hit/miss, gather and fetch-batch
// spans parented into the right iteration, and a per-iteration StepStats
// series whose counters are self-consistent.
func TestRunTraceTimeline(t *testing.T) {
	g, err := gen.RMAT(gen.DefaultRMAT(9, 8, 21))
	if err != nil {
		t.Fatal(err)
	}
	st, _ := testutil.BuildStore(t, g, testutil.StoreOptions{P: 4})
	e, err := engine.New(st, engine.Config{Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	const iters = 4
	res, err := algorithms.PageRank(e, 0.85, iters)
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace == nil {
		t.Fatal("tracing is on by default but Result.Trace is nil")
	}
	tl := res.Trace.Snapshot()
	if len(tl.Spans) == 0 {
		t.Fatal("empty span timeline")
	}

	byKind := map[trace.Kind][]trace.Span{}
	for _, sp := range tl.Spans {
		byKind[sp.Kind] = append(byKind[sp.Kind], sp)
	}
	runs := byKind[trace.KindRun]
	if len(runs) != 1 {
		t.Fatalf("got %d run spans, want 1", len(runs))
	}
	iterSpans := byKind[trace.KindIteration]
	if len(iterSpans) != iters {
		t.Fatalf("got %d iteration spans, want %d", len(iterSpans), iters)
	}
	iterIDs := map[uint64]bool{}
	for _, sp := range iterSpans {
		if sp.Parent != runs[0].ID {
			t.Fatalf("iteration %q parented to %d, not the run span %d", sp.Name, sp.Parent, runs[0].ID)
		}
		iterIDs[sp.ID] = true
	}
	loads := byKind[trace.KindBlockLoad]
	if len(loads) == 0 {
		t.Fatal("no block-load spans")
	}
	hits, misses := 0, 0
	for _, sp := range loads {
		switch sp.Tag {
		case trace.TagHit:
			hits++
		case trace.TagMiss:
			misses++
			if sp.Bytes <= 0 {
				t.Fatalf("miss %q decoded %d bytes", sp.Name, sp.Bytes)
			}
		default:
			t.Fatalf("block load %q has tag %q", sp.Name, sp.Tag)
		}
		if !iterIDs[sp.Parent] {
			t.Fatalf("block load %q parented to %d, not an iteration", sp.Name, sp.Parent)
		}
	}
	// Iteration 0 decodes from disk; later iterations hit the warm cache.
	if misses == 0 || hits == 0 {
		t.Fatalf("hits=%d misses=%d, want both non-zero", hits, misses)
	}
	if len(byKind[trace.KindGather]) == 0 || len(byKind[trace.KindFetchBatch]) == 0 {
		t.Fatal("missing gather or fetch-batch spans")
	}

	steps := tl.Steps
	if len(steps) != iters {
		t.Fatalf("got %d steps, want %d", len(steps), iters)
	}
	var edges int64
	for i, s := range steps {
		if s.Iteration != i {
			t.Fatalf("step %d has iteration %d", i, s.Iteration)
		}
		if s.Edges <= 0 {
			t.Fatalf("step %d gathered %d edges", i, s.Edges)
		}
		if s.DurUS < s.StallUS || s.DurUS < s.ComputeUS {
			t.Fatalf("step %d timing inconsistent: %+v", i, s)
		}
		edges += s.Edges
	}
	if edges != res.EdgesTraversed {
		t.Fatalf("steps sum to %d edges, result says %d", edges, res.EdgesTraversed)
	}
	if steps[0].BlocksMiss == 0 {
		t.Fatal("first iteration recorded no block misses on a cold cache")
	}
}

// TestTracingDisabled checks TraceSpans < 0 turns the tracer fully off.
func TestTracingDisabled(t *testing.T) {
	g, err := gen.RMAT(gen.DefaultRMAT(8, 8, 5))
	if err != nil {
		t.Fatal(err)
	}
	st, _ := testutil.BuildStore(t, g, testutil.StoreOptions{P: 4})
	e, err := engine.New(st, engine.Config{Threads: 2, TraceSpans: -1})
	if err != nil {
		t.Fatal(err)
	}
	res, err := algorithms.PageRank(e, 0.85, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace != nil {
		t.Fatal("TraceSpans=-1 still produced a trace")
	}
}

// TestTraceRingBoundOnRun checks a tiny span budget degrades to dropping
// old spans, never to unbounded growth or a broken run.
func TestTraceRingBoundOnRun(t *testing.T) {
	g, err := gen.RMAT(gen.DefaultRMAT(8, 8, 5))
	if err != nil {
		t.Fatal(err)
	}
	st, _ := testutil.BuildStore(t, g, testutil.StoreOptions{P: 4})
	e, err := engine.New(st, engine.Config{Threads: 2, TraceSpans: 8})
	if err != nil {
		t.Fatal(err)
	}
	res, err := algorithms.PageRank(e, 0.85, 5)
	if err != nil {
		t.Fatal(err)
	}
	tl := res.Trace.Snapshot()
	if len(tl.Spans) != 8 {
		t.Fatalf("ring holds %d spans, want 8", len(tl.Spans))
	}
	if tl.DroppedSpans == 0 {
		t.Fatal("a 8-span budget over 5 iterations dropped nothing")
	}
	if len(tl.Steps) != 5 {
		t.Fatalf("step series truncated to %d by the span ring", len(tl.Steps))
	}
}
