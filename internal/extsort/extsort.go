// Package extsort implements an external merge sort for edge streams.
//
// The NXgraph preprocessor (paper §III-A) must order all edges of a graph
// by (destination interval, source interval, destination, source) to build
// destination-sorted sub-shards, and graphs can exceed memory. Sorter
// accumulates edges in a bounded in-memory buffer, spills sorted runs to a
// scratch disk, and merges the runs with a k-way heap on iteration.
package extsort

import (
	"bufio"
	"container/heap"
	"encoding/binary"
	"fmt"
	"io"

	"nxgraph/internal/diskio"
	"nxgraph/internal/graph"
)

const edgeBytes = 12 // src uint32 + dst uint32 + weight float32

// Less orders edges; it must be a strict weak ordering.
type Less func(a, b graph.Edge) bool

// Sorter sorts a stream of edges using bounded memory.
type Sorter struct {
	disk    *diskio.Disk
	less    Less
	maxRun  int // max edges held in memory before spilling
	buf     []graph.Edge
	runs    []string
	runSeq  int
	sealed  bool
	scratch string
}

// NewSorter returns a Sorter spilling runs to disk. maxRunEdges bounds the
// in-memory buffer; values below 1024 are raised to 1024.
func NewSorter(disk *diskio.Disk, less Less, maxRunEdges int) *Sorter {
	if maxRunEdges < 1024 {
		maxRunEdges = 1024
	}
	return &Sorter{disk: disk, less: less, maxRun: maxRunEdges,
		scratch: "extsort"}
}

// Add appends an edge to the sorter.
func (s *Sorter) Add(e graph.Edge) error {
	if s.sealed {
		return fmt.Errorf("extsort: Add after Sort")
	}
	s.buf = append(s.buf, e)
	if len(s.buf) >= s.maxRun {
		return s.spill()
	}
	return nil
}

func (s *Sorter) sortBuf() {
	less := s.less
	buf := s.buf
	// insertion-free: use sort.Slice via closure
	sortEdges(buf, less)
}

func (s *Sorter) spill() error {
	if len(s.buf) == 0 {
		return nil
	}
	s.sortBuf()
	name := fmt.Sprintf("%s/run-%06d.bin", s.scratch, s.runSeq)
	s.runSeq++
	f, err := s.disk.Create(name)
	if err != nil {
		return fmt.Errorf("extsort: spill: %w", err)
	}
	bw := bufio.NewWriterSize(f, 1<<20)
	var rec [edgeBytes]byte
	for _, e := range s.buf {
		encodeEdge(&rec, e)
		if _, err := bw.Write(rec[:]); err != nil {
			f.Close()
			return fmt.Errorf("extsort: spill write: %w", err)
		}
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		return fmt.Errorf("extsort: spill flush: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("extsort: spill close: %w", err)
	}
	s.runs = append(s.runs, name)
	s.buf = s.buf[:0]
	return nil
}

// Sort finishes ingestion and returns an iterator over all edges in sorted
// order. After Sort, Add must not be called. Close the iterator to release
// scratch files.
func (s *Sorter) Sort() (*Iterator, error) {
	if s.sealed {
		return nil, fmt.Errorf("extsort: Sort called twice")
	}
	s.sealed = true
	if len(s.runs) == 0 {
		// Pure in-memory path.
		s.sortBuf()
		return &Iterator{mem: s.buf, sorter: s}, nil
	}
	if err := s.spill(); err != nil {
		return nil, err
	}
	it := &Iterator{sorter: s}
	for _, name := range s.runs {
		f, err := s.disk.Open(name)
		if err != nil {
			it.Close()
			return nil, fmt.Errorf("extsort: open run: %w", err)
		}
		rr := &runReader{f: f, br: bufio.NewReaderSize(f, 1<<20)}
		if ok, err := rr.next(); err != nil {
			it.Close()
			return nil, err
		} else if ok {
			it.h = append(it.h, rr)
		} else {
			f.Close()
		}
	}
	it.less = s.less
	heap.Init(&runHeap{it})
	return it, nil
}

func encodeEdge(rec *[edgeBytes]byte, e graph.Edge) {
	binary.LittleEndian.PutUint32(rec[0:4], e.Src)
	binary.LittleEndian.PutUint32(rec[4:8], e.Dst)
	binary.LittleEndian.PutUint32(rec[8:12], floatBits(e.Weight))
}

func decodeEdge(rec *[edgeBytes]byte) graph.Edge {
	return graph.Edge{
		Src:    binary.LittleEndian.Uint32(rec[0:4]),
		Dst:    binary.LittleEndian.Uint32(rec[4:8]),
		Weight: bitsFloat(binary.LittleEndian.Uint32(rec[8:12])),
	}
}

type runReader struct {
	f    *diskio.File
	br   *bufio.Reader
	cur  graph.Edge
	done bool
}

func (r *runReader) next() (bool, error) {
	var rec [edgeBytes]byte
	_, err := io.ReadFull(r.br, rec[:])
	if err == io.EOF {
		r.done = true
		return false, nil
	}
	if err != nil {
		return false, fmt.Errorf("extsort: read run: %w", err)
	}
	r.cur = decodeEdge(&rec)
	return true, nil
}

// Iterator yields edges in sorted order.
type Iterator struct {
	// in-memory path
	mem []graph.Edge
	pos int
	// merge path
	h      []*runReader
	less   Less
	sorter *Sorter
	err    error
}

// Next returns the next edge. ok is false when the stream is exhausted or
// an error occurred; check Err afterwards.
func (it *Iterator) Next() (e graph.Edge, ok bool) {
	if it.err != nil {
		return graph.Edge{}, false
	}
	if it.mem != nil {
		if it.pos >= len(it.mem) {
			return graph.Edge{}, false
		}
		e = it.mem[it.pos]
		it.pos++
		return e, true
	}
	if len(it.h) == 0 {
		return graph.Edge{}, false
	}
	top := it.h[0]
	e = top.cur
	more, err := top.next()
	if err != nil {
		it.err = err
		return graph.Edge{}, false
	}
	if more {
		heap.Fix(&runHeap{it}, 0)
	} else {
		top.f.Close()
		heap.Pop(&runHeap{it})
	}
	return e, true
}

// Err returns the first error encountered while iterating.
func (it *Iterator) Err() error { return it.err }

// Close releases scratch files.
func (it *Iterator) Close() error {
	for _, r := range it.h {
		r.f.Close()
	}
	it.h = nil
	if it.sorter != nil {
		for _, name := range it.sorter.runs {
			// Best effort: runs may already be gone.
			_ = it.sorter.disk.Remove(name)
		}
		it.sorter.runs = nil
	}
	return nil
}

// runHeap adapts Iterator's reader slice to container/heap.
type runHeap struct{ it *Iterator }

func (h *runHeap) Len() int { return len(h.it.h) }
func (h *runHeap) Less(i, j int) bool {
	return h.it.less(h.it.h[i].cur, h.it.h[j].cur)
}
func (h *runHeap) Swap(i, j int) { h.it.h[i], h.it.h[j] = h.it.h[j], h.it.h[i] }
func (h *runHeap) Push(x any)    { h.it.h = append(h.it.h, x.(*runReader)) }
func (h *runHeap) Pop() any {
	old := h.it.h
	n := len(old)
	x := old[n-1]
	h.it.h = old[:n-1]
	return x
}
