package extsort

import (
	"math/rand"
	"testing"

	"nxgraph/internal/diskio"
	"nxgraph/internal/graph"
)

func benchSort(b *testing.B, n, maxRun int) {
	b.Helper()
	rng := rand.New(rand.NewSource(4))
	edges := make([]graph.Edge, n)
	for i := range edges {
		edges[i] = graph.Edge{Src: rng.Uint32() % 1e6, Dst: rng.Uint32() % 1e6}
	}
	b.SetBytes(int64(n) * edgeBytes)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := diskio.MustNew(b.TempDir(), diskio.Unthrottled)
		s := NewSorter(d, byDstSrcBench, maxRun)
		for _, e := range edges {
			if err := s.Add(e); err != nil {
				b.Fatal(err)
			}
		}
		it, err := s.Sort()
		if err != nil {
			b.Fatal(err)
		}
		for {
			if _, ok := it.Next(); !ok {
				break
			}
		}
		if err := it.Err(); err != nil {
			b.Fatal(err)
		}
		it.Close()
	}
}

func byDstSrcBench(a, b graph.Edge) bool {
	if a.Dst != b.Dst {
		return a.Dst < b.Dst
	}
	return a.Src < b.Src
}

func BenchmarkSortInMemory(b *testing.B)      { benchSort(b, 200_000, 1<<22) }
func BenchmarkSortSpilling(b *testing.B)      { benchSort(b, 200_000, 16_384) }
func BenchmarkSortManySmallRuns(b *testing.B) { benchSort(b, 200_000, 1024) }
