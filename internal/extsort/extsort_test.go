package extsort

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"nxgraph/internal/diskio"
	"nxgraph/internal/graph"
)

func byDstSrc(a, b graph.Edge) bool {
	if a.Dst != b.Dst {
		return a.Dst < b.Dst
	}
	return a.Src < b.Src
}

func drain(t *testing.T, it *Iterator) []graph.Edge {
	t.Helper()
	var out []graph.Edge
	for {
		e, ok := it.Next()
		if !ok {
			break
		}
		out = append(out, e)
	}
	if err := it.Err(); err != nil {
		t.Fatal(err)
	}
	if err := it.Close(); err != nil {
		t.Fatal(err)
	}
	return out
}

func sortAll(t *testing.T, edges []graph.Edge, maxRun int) []graph.Edge {
	t.Helper()
	d := diskio.MustNew(t.TempDir(), diskio.Unthrottled)
	s := NewSorter(d, byDstSrc, maxRun)
	for _, e := range edges {
		if err := s.Add(e); err != nil {
			t.Fatal(err)
		}
	}
	it, err := s.Sort()
	if err != nil {
		t.Fatal(err)
	}
	return drain(t, it)
}

func randomEdges(rng *rand.Rand, n int) []graph.Edge {
	edges := make([]graph.Edge, n)
	for i := range edges {
		edges[i] = graph.Edge{
			Src:    uint32(rng.Intn(1000)),
			Dst:    uint32(rng.Intn(1000)),
			Weight: rng.Float32(),
		}
	}
	return edges
}

func TestInMemoryPath(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	edges := randomEdges(rng, 500)
	got := sortAll(t, edges, 1<<20) // never spills
	want := append([]graph.Edge(nil), edges...)
	sort.SliceStable(want, func(i, j int) bool { return byDstSrc(want[i], want[j]) })
	compare(t, got, want)
}

func TestSpillPath(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	edges := randomEdges(rng, 50_000)
	got := sortAll(t, edges, 1024) // many runs (min run size)
	want := append([]graph.Edge(nil), edges...)
	sort.SliceStable(want, func(i, j int) bool { return byDstSrc(want[i], want[j]) })
	compare(t, got, want)
}

func compare(t *testing.T, got, want []graph.Edge) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %d edges, want %d", len(got), len(want))
	}
	for i := range want {
		// Keys must be non-decreasing and multiset equal; weights ride
		// along. Compare exact (stable order differences between runs
		// are allowed only among fully-equal keys, and our Less is a
		// total order on (dst,src) with possible duplicates — compare
		// key fields only).
		if got[i].Dst != want[i].Dst || got[i].Src != want[i].Src {
			t.Fatalf("edge %d: got (%d->%d), want (%d->%d)",
				i, got[i].Src, got[i].Dst, want[i].Src, want[i].Dst)
		}
	}
}

func TestEmptySort(t *testing.T) {
	got := sortAll(t, nil, 2048)
	if len(got) != 0 {
		t.Fatalf("empty sort returned %d edges", len(got))
	}
}

func TestWeightsSurviveSpill(t *testing.T) {
	d := diskio.MustNew(t.TempDir(), diskio.Unthrottled)
	s := NewSorter(d, byDstSrc, 1024)
	const n = 5000
	for i := 0; i < n; i++ {
		if err := s.Add(graph.Edge{Src: uint32(i), Dst: uint32(i % 7), Weight: float32(i) / 3}); err != nil {
			t.Fatal(err)
		}
	}
	it, err := s.Sort()
	if err != nil {
		t.Fatal(err)
	}
	seen := 0
	for {
		e, ok := it.Next()
		if !ok {
			break
		}
		if e.Weight != float32(e.Src)/3 {
			t.Fatalf("edge src=%d weight %v corrupted", e.Src, e.Weight)
		}
		seen++
	}
	it.Close()
	if seen != n {
		t.Fatalf("saw %d edges, want %d", seen, n)
	}
}

func TestAddAfterSortFails(t *testing.T) {
	d := diskio.MustNew(t.TempDir(), diskio.Unthrottled)
	s := NewSorter(d, byDstSrc, 2048)
	it, err := s.Sort()
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	if err := s.Add(graph.Edge{}); err == nil {
		t.Fatal("Add after Sort should fail")
	}
	if _, err := s.Sort(); err == nil {
		t.Fatal("second Sort should fail")
	}
}

func TestScratchFilesCleanedUp(t *testing.T) {
	dir := t.TempDir()
	d := diskio.MustNew(dir, diskio.Unthrottled)
	s := NewSorter(d, byDstSrc, 1024)
	for i := 0; i < 10_000; i++ {
		s.Add(graph.Edge{Src: uint32(i), Dst: uint32(i * 7)})
	}
	it, err := s.Sort()
	if err != nil {
		t.Fatal(err)
	}
	drainCount := 0
	for {
		if _, ok := it.Next(); !ok {
			break
		}
		drainCount++
	}
	it.Close()
	if d.Exists("extsort/run-000000.bin") {
		t.Fatal("scratch run not removed after Close")
	}
	if drainCount != 10_000 {
		t.Fatalf("drained %d", drainCount)
	}
}

// TestQuickMatchesSortSlice is the central property: external sort ==
// in-memory sort for arbitrary inputs and run sizes.
func TestQuickMatchesSortSlice(t *testing.T) {
	f := func(seed int64, size uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		edges := randomEdges(rng, int(size))
		d := diskio.MustNew(t.TempDir(), diskio.Unthrottled)
		s := NewSorter(d, byDstSrc, 1024)
		for _, e := range edges {
			if err := s.Add(e); err != nil {
				return false
			}
		}
		it, err := s.Sort()
		if err != nil {
			return false
		}
		defer it.Close()
		want := append([]graph.Edge(nil), edges...)
		sort.SliceStable(want, func(i, j int) bool { return byDstSrc(want[i], want[j]) })
		for i := range want {
			e, ok := it.Next()
			if !ok || e.Dst != want[i].Dst || e.Src != want[i].Src {
				return false
			}
		}
		_, extra := it.Next()
		return !extra
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
