package extsort

import (
	"math"
	"sort"

	"nxgraph/internal/graph"
)

// sortEdges sorts edges in place by less.
func sortEdges(edges []graph.Edge, less Less) {
	sort.Slice(edges, func(i, j int) bool { return less(edges[i], edges[j]) })
}

func floatBits(f float32) uint32 { return math.Float32bits(f) }
func bitsFloat(b uint32) float32 { return math.Float32frombits(b) }
