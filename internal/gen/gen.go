// Package gen produces the synthetic graphs used throughout the test and
// benchmark suites.
//
// The paper evaluates on three real-world graphs (LiveJournal, Twitter,
// Yahoo-web) and five synthetic Delaunay graphs (delaunay_n20..n24 from the
// DIMACS collection). Neither the real crawls nor the DIMACS files are
// available offline, so this package substitutes:
//
//   - RMAT: a recursive-matrix (Kronecker) generator with the classic
//     (a,b,c) = (0.57, 0.19, 0.19) skew, which reproduces the heavy-tailed
//     degree distributions of social/web graphs. Presets scale the paper's
//     graphs down by a configurable factor while preserving the
//     edges-per-vertex ratio.
//   - Mesh: a triangulated grid with randomly-oriented diagonals and a
//     shuffled vertex numbering — a planar, bounded-degree, high-diameter
//     stand-in for the Delaunay family (average degree ≈ 6 in both).
//   - Uniform: an Erdős–Rényi G(n, m) sampler for unbiased property tests.
//
// All generators are deterministic given a seed.
package gen

import (
	"fmt"
	"math/rand"

	"nxgraph/internal/graph"
)

// RMATConfig parameterizes the recursive-matrix generator.
type RMATConfig struct {
	// Scale is log2 of the number of vertices.
	Scale int
	// EdgeFactor is the number of edges per vertex.
	EdgeFactor int
	// A, B, C are the recursive quadrant probabilities; D = 1-A-B-C.
	A, B, C float64
	// Seed drives the deterministic PRNG.
	Seed int64
	// Weighted assigns uniform random weights in (0, 1].
	Weighted bool
}

// DefaultRMAT returns the Graph500-style parameters used for the paper's
// social/web graph stand-ins.
func DefaultRMAT(scale, edgeFactor int, seed int64) RMATConfig {
	return RMATConfig{Scale: scale, EdgeFactor: edgeFactor,
		A: 0.57, B: 0.19, C: 0.19, Seed: seed}
}

// RMAT generates a directed power-law graph. Self-loops are permitted, as
// they are in real crawls; duplicate edges are not removed (the
// preprocessor handles them).
func RMAT(cfg RMATConfig) (*graph.EdgeList, error) {
	if cfg.Scale < 1 || cfg.Scale > 30 {
		return nil, fmt.Errorf("gen: rmat scale %d out of range [1,30]", cfg.Scale)
	}
	if cfg.EdgeFactor < 1 {
		return nil, fmt.Errorf("gen: rmat edge factor %d < 1", cfg.EdgeFactor)
	}
	if cfg.A <= 0 || cfg.B < 0 || cfg.C < 0 || cfg.A+cfg.B+cfg.C >= 1 {
		return nil, fmt.Errorf("gen: rmat probabilities invalid (a=%g b=%g c=%g)",
			cfg.A, cfg.B, cfg.C)
	}
	n := uint32(1) << uint(cfg.Scale)
	m := int64(n) * int64(cfg.EdgeFactor)
	rng := rand.New(rand.NewSource(cfg.Seed))
	g := &graph.EdgeList{NumVertices: n, Weighted: cfg.Weighted,
		Edges: make([]graph.Edge, 0, m)}
	ab := cfg.A + cfg.B
	abc := cfg.A + cfg.B + cfg.C
	for i := int64(0); i < m; i++ {
		var src, dst uint32
		for bit := cfg.Scale - 1; bit >= 0; bit-- {
			r := rng.Float64()
			switch {
			case r < cfg.A:
				// top-left: no bits set
			case r < ab:
				dst |= 1 << uint(bit)
			case r < abc:
				src |= 1 << uint(bit)
			default:
				src |= 1 << uint(bit)
				dst |= 1 << uint(bit)
			}
		}
		w := float32(1)
		if cfg.Weighted {
			w = float32(1 - rng.Float64()) // (0, 1]
		}
		g.Edges = append(g.Edges, graph.Edge{Src: src, Dst: dst, Weight: w})
	}
	return g, nil
}

// Mesh generates a triangulated rows×cols grid: each cell contributes its
// two sides plus one randomly-oriented diagonal, and every edge is stored
// in both directions. Vertex numbering is shuffled so interval
// partitioning does not trivially align with grid locality. The result is
// the planar bounded-degree stand-in for the DIMACS delaunay graphs
// (average degree ≈ 6).
func Mesh(rows, cols int, seed int64) (*graph.EdgeList, error) {
	if rows < 2 || cols < 2 {
		return nil, fmt.Errorf("gen: mesh needs rows, cols >= 2 (got %d, %d)", rows, cols)
	}
	if int64(rows)*int64(cols) > int64(1)<<31 {
		return nil, fmt.Errorf("gen: mesh %dx%d too large", rows, cols)
	}
	n := uint32(rows * cols)
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(int(n))
	id := func(r, c int) uint32 { return uint32(perm[r*cols+c]) }
	g := &graph.EdgeList{NumVertices: n}
	add := func(u, v uint32) {
		g.Edges = append(g.Edges,
			graph.Edge{Src: u, Dst: v, Weight: 1},
			graph.Edge{Src: v, Dst: u, Weight: 1})
	}
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				add(id(r, c), id(r, c+1))
			}
			if r+1 < rows {
				add(id(r, c), id(r+1, c))
			}
			if r+1 < rows && c+1 < cols {
				if rng.Intn(2) == 0 {
					add(id(r, c), id(r+1, c+1))
				} else {
					add(id(r, c+1), id(r+1, c))
				}
			}
		}
	}
	return g, nil
}

// MeshN generates a mesh with approximately 2^scale vertices, mirroring the
// delaunay_n<scale> naming of the DIMACS instances.
func MeshN(scale int, seed int64) (*graph.EdgeList, error) {
	if scale < 2 || scale > 28 {
		return nil, fmt.Errorf("gen: mesh scale %d out of range [2,28]", scale)
	}
	n := 1 << uint(scale)
	rows := 1 << uint(scale/2)
	cols := n / rows
	return Mesh(rows, cols, seed)
}

// Uniform generates an Erdős–Rényi style G(n, m) multigraph with m edges
// sampled uniformly at random.
func Uniform(n uint32, m int64, seed int64) (*graph.EdgeList, error) {
	if n == 0 {
		return nil, fmt.Errorf("gen: uniform needs n > 0")
	}
	rng := rand.New(rand.NewSource(seed))
	g := &graph.EdgeList{NumVertices: n, Edges: make([]graph.Edge, 0, m)}
	for i := int64(0); i < m; i++ {
		g.Edges = append(g.Edges, graph.Edge{
			Src:    uint32(rng.Int63n(int64(n))),
			Dst:    uint32(rng.Int63n(int64(n))),
			Weight: 1,
		})
	}
	return g, nil
}

// Preset identifies a scaled stand-in for one of the paper's datasets.
type Preset struct {
	Name       string
	Kind       string // "rmat" or "mesh"
	Scale      int
	EdgeFactor int
	// PaperVertices / PaperEdges record the size of the original dataset
	// for the EXPERIMENTS.md bookkeeping.
	PaperVertices int64
	PaperEdges    int64
}

// Presets lists the stand-ins used by the benchmark harness. Scales are
// sized for a small CI machine; the harness can raise them uniformly.
var Presets = map[string]Preset{
	// Live-journal: 4.85M vertices, 69M edges => edge factor ~14.
	"livejournal": {Name: "livejournal", Kind: "rmat", Scale: 16, EdgeFactor: 14,
		PaperVertices: 4_850_000, PaperEdges: 69_000_000},
	// Twitter: 41.7M vertices, 1.47B edges => edge factor ~35.
	"twitter": {Name: "twitter", Kind: "rmat", Scale: 17, EdgeFactor: 35,
		PaperVertices: 41_700_000, PaperEdges: 1_470_000_000},
	// Yahoo-web: 720M vertices, 6.64B edges => edge factor ~9, very
	// vertex-heavy (drives the DPU/MPU paths).
	"yahoo": {Name: "yahoo", Kind: "rmat", Scale: 19, EdgeFactor: 9,
		PaperVertices: 720_000_000, PaperEdges: 6_640_000_000},
	// delaunay_n20..n24 stand-ins.
	"delaunay_n20": {Name: "delaunay_n20", Kind: "mesh", Scale: 14,
		PaperVertices: 1 << 20, PaperEdges: 6_290_000},
	"delaunay_n21": {Name: "delaunay_n21", Kind: "mesh", Scale: 15,
		PaperVertices: 1 << 21, PaperEdges: 12_600_000},
	"delaunay_n22": {Name: "delaunay_n22", Kind: "mesh", Scale: 16,
		PaperVertices: 1 << 22, PaperEdges: 25_200_000},
	"delaunay_n23": {Name: "delaunay_n23", Kind: "mesh", Scale: 17,
		PaperVertices: 1 << 23, PaperEdges: 50_300_000},
	"delaunay_n24": {Name: "delaunay_n24", Kind: "mesh", Scale: 18,
		PaperVertices: 1 << 24, PaperEdges: 101_000_000},
}

// FromPreset generates the named preset graph with an optional scale
// adjustment added to the preset's base scale (negative shrinks).
func FromPreset(name string, scaleDelta int, seed int64) (*graph.EdgeList, error) {
	p, ok := Presets[name]
	if !ok {
		return nil, fmt.Errorf("gen: unknown preset %q", name)
	}
	scale := p.Scale + scaleDelta
	switch p.Kind {
	case "rmat":
		return RMAT(DefaultRMAT(scale, p.EdgeFactor, seed))
	case "mesh":
		return MeshN(scale, seed)
	default:
		return nil, fmt.Errorf("gen: preset %q has unknown kind %q", name, p.Kind)
	}
}
