package gen

import (
	"sort"
	"testing"
)

func TestRMATDeterministic(t *testing.T) {
	a, err := RMAT(DefaultRMAT(10, 8, 5))
	if err != nil {
		t.Fatal(err)
	}
	b, err := RMAT(DefaultRMAT(10, 8, 5))
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Edges) != len(b.Edges) {
		t.Fatal("nondeterministic edge count")
	}
	for i := range a.Edges {
		if a.Edges[i] != b.Edges[i] {
			t.Fatalf("edge %d differs", i)
		}
	}
	c, err := RMAT(DefaultRMAT(10, 8, 6))
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a.Edges {
		if a.Edges[i] != c.Edges[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical graphs")
	}
}

func TestRMATSizesAndSkew(t *testing.T) {
	g, err := RMAT(DefaultRMAT(12, 16, 1))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices != 1<<12 {
		t.Fatalf("n = %d", g.NumVertices)
	}
	if int64(len(g.Edges)) != 16<<12 {
		t.Fatalf("m = %d", len(g.Edges))
	}
	// Power-law check: the top 1% of vertices by in-degree should hold
	// far more than 1% of edges (heavy tail).
	in := g.InDegrees()
	sort.Slice(in, func(i, j int) bool { return in[i] > in[j] })
	var top, total int64
	cut := len(in) / 100
	for i, d := range in {
		total += int64(d)
		if i < cut {
			top += int64(d)
		}
	}
	if float64(top) < 0.1*float64(total) {
		t.Fatalf("top 1%% holds only %.1f%% of edges; degree distribution not skewed",
			100*float64(top)/float64(total))
	}
}

func TestRMATValidation(t *testing.T) {
	if _, err := RMAT(RMATConfig{Scale: 0, EdgeFactor: 1, A: 0.5, B: 0.2, C: 0.2}); err == nil {
		t.Fatal("scale 0 should fail")
	}
	if _, err := RMAT(RMATConfig{Scale: 5, EdgeFactor: 0, A: 0.5, B: 0.2, C: 0.2}); err == nil {
		t.Fatal("edge factor 0 should fail")
	}
	if _, err := RMAT(RMATConfig{Scale: 5, EdgeFactor: 1, A: 0.6, B: 0.3, C: 0.2}); err == nil {
		t.Fatal("probabilities summing over 1 should fail")
	}
}

func TestRMATWeighted(t *testing.T) {
	cfg := DefaultRMAT(8, 4, 2)
	cfg.Weighted = true
	g, err := RMAT(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range g.Edges {
		if e.Weight <= 0 || e.Weight > 1 {
			t.Fatalf("weight %v out of (0,1]", e.Weight)
		}
	}
}

func TestMeshStructure(t *testing.T) {
	rows, cols := 10, 14
	g, err := Mesh(rows, cols, 3)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices != uint32(rows*cols) {
		t.Fatalf("n = %d", g.NumVertices)
	}
	// Horizontal + vertical + one diagonal per cell, both directions.
	wantEdges := 2 * (rows*(cols-1) + (rows-1)*cols + (rows-1)*(cols-1))
	if len(g.Edges) != wantEdges {
		t.Fatalf("m = %d, want %d", len(g.Edges), wantEdges)
	}
	// Symmetric by construction.
	type key struct{ a, b uint32 }
	seen := map[key]int{}
	for _, e := range g.Edges {
		seen[key{e.Src, e.Dst}]++
	}
	for k, c := range seen {
		if seen[key{k.b, k.a}] != c {
			t.Fatalf("edge %v not symmetric", k)
		}
	}
	// Average degree ≈ 6 (delaunay-like).
	avg := float64(len(g.Edges)) / float64(g.NumVertices)
	if avg < 4.5 || avg > 6.5 {
		t.Fatalf("average degree %.2f not delaunay-like", avg)
	}
}

func TestMeshValidation(t *testing.T) {
	if _, err := Mesh(1, 5, 0); err == nil {
		t.Fatal("1-row mesh should fail")
	}
}

func TestMeshN(t *testing.T) {
	g, err := MeshN(10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices != 1<<10 {
		t.Fatalf("n = %d, want %d", g.NumVertices, 1<<10)
	}
	if _, err := MeshN(1, 1); err == nil {
		t.Fatal("tiny scale should fail")
	}
}

func TestUniform(t *testing.T) {
	g, err := Uniform(100, 5000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Edges) != 5000 {
		t.Fatalf("m = %d", len(g.Edges))
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if _, err := Uniform(0, 5, 1); err == nil {
		t.Fatal("n=0 should fail")
	}
}

func TestPresets(t *testing.T) {
	for name := range Presets {
		g, err := FromPreset(name, -4, 7)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if g.NumVertices == 0 || len(g.Edges) == 0 {
			t.Fatalf("%s: empty graph", name)
		}
	}
	if _, err := FromPreset("no-such", 0, 1); err == nil {
		t.Fatal("unknown preset should fail")
	}
}
