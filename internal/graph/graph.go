// Package graph defines the basic graph types shared by every NXgraph
// component: vertex ids, edges, in-memory edge lists and adjacency views.
//
// Following the paper (§II-A), a graph G = (V, E) is directed; an
// undirected graph is represented by storing both orientations of every
// edge. Vertex ids are dense uint32 values produced by the degreer
// (internal/preprocess); raw inputs may instead carry sparse "indices",
// which this package models with the wider Index type.
package graph

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// VertexID is a dense vertex identifier in [0, n).
type VertexID = uint32

// Index is a raw vertex index as it appears in input files. Indices may be
// sparse and need not start at zero; the degreer maps them to dense ids.
type Index = uint64

// Edge is a directed edge from Src to Dst with an optional weight.
type Edge struct {
	Src, Dst VertexID
	Weight   float32
}

// IndexEdge is an edge in raw-input index space.
type IndexEdge struct {
	Src, Dst Index
	Weight   float32
}

// EdgeList is an in-memory directed graph in coordinate form.
type EdgeList struct {
	NumVertices uint32
	Edges       []Edge
	Weighted    bool
}

// NumEdges returns the number of edges.
func (g *EdgeList) NumEdges() int64 { return int64(len(g.Edges)) }

// Validate checks that all endpoints are within [0, NumVertices).
func (g *EdgeList) Validate() error {
	for i, e := range g.Edges {
		if e.Src >= g.NumVertices || e.Dst >= g.NumVertices {
			return fmt.Errorf("graph: edge %d (%d->%d) out of range n=%d",
				i, e.Src, e.Dst, g.NumVertices)
		}
	}
	return nil
}

// OutDegrees returns the out-degree of every vertex.
func (g *EdgeList) OutDegrees() []uint32 {
	deg := make([]uint32, g.NumVertices)
	for _, e := range g.Edges {
		deg[e.Src]++
	}
	return deg
}

// InDegrees returns the in-degree of every vertex.
func (g *EdgeList) InDegrees() []uint32 {
	deg := make([]uint32, g.NumVertices)
	for _, e := range g.Edges {
		deg[e.Dst]++
	}
	return deg
}

// Transpose returns a new EdgeList with every edge reversed.
func (g *EdgeList) Transpose() *EdgeList {
	t := &EdgeList{NumVertices: g.NumVertices, Weighted: g.Weighted,
		Edges: make([]Edge, len(g.Edges))}
	for i, e := range g.Edges {
		t.Edges[i] = Edge{Src: e.Dst, Dst: e.Src, Weight: e.Weight}
	}
	return t
}

// Symmetrize returns a new EdgeList containing both orientations of every
// edge (the paper's representation of undirected graphs).
func (g *EdgeList) Symmetrize() *EdgeList {
	s := &EdgeList{NumVertices: g.NumVertices, Weighted: g.Weighted,
		Edges: make([]Edge, 0, 2*len(g.Edges))}
	for _, e := range g.Edges {
		s.Edges = append(s.Edges, e, Edge{Src: e.Dst, Dst: e.Src, Weight: e.Weight})
	}
	return s
}

// Adjacency is a CSR (compressed sparse row) view over an edge list, used
// by the in-memory reference algorithms.
type Adjacency struct {
	NumVertices uint32
	Offsets     []int64    // len n+1
	Neighbors   []VertexID // len m
	Weights     []float32  // len m if weighted, else nil
}

// BuildAdjacency builds an out-neighbor CSR from g. Neighbor lists are
// sorted by destination id.
func BuildAdjacency(g *EdgeList) *Adjacency {
	n := g.NumVertices
	a := &Adjacency{NumVertices: n, Offsets: make([]int64, n+1)}
	for _, e := range g.Edges {
		a.Offsets[e.Src+1]++
	}
	for i := uint32(0); i < n; i++ {
		a.Offsets[i+1] += a.Offsets[i]
	}
	a.Neighbors = make([]VertexID, len(g.Edges))
	if g.Weighted {
		a.Weights = make([]float32, len(g.Edges))
	}
	next := make([]int64, n)
	copy(next, a.Offsets[:n])
	for _, e := range g.Edges {
		p := next[e.Src]
		a.Neighbors[p] = e.Dst
		if g.Weighted {
			a.Weights[p] = e.Weight
		}
		next[e.Src]++
	}
	for v := uint32(0); v < n; v++ {
		lo, hi := a.Offsets[v], a.Offsets[v+1]
		nb := a.Neighbors[lo:hi]
		if g.Weighted {
			ws := a.Weights[lo:hi]
			sort.Sort(&nbrWeightSort{nb, ws})
		} else {
			sort.Slice(nb, func(i, j int) bool { return nb[i] < nb[j] })
		}
	}
	return a
}

type nbrWeightSort struct {
	nb []VertexID
	ws []float32
}

func (s *nbrWeightSort) Len() int           { return len(s.nb) }
func (s *nbrWeightSort) Less(i, j int) bool { return s.nb[i] < s.nb[j] }
func (s *nbrWeightSort) Swap(i, j int) {
	s.nb[i], s.nb[j] = s.nb[j], s.nb[i]
	s.ws[i], s.ws[j] = s.ws[j], s.ws[i]
}

// Out returns v's out-neighbors.
func (a *Adjacency) Out(v VertexID) []VertexID {
	return a.Neighbors[a.Offsets[v]:a.Offsets[v+1]]
}

// OutWeights returns the weights parallel to Out(v); nil for unweighted
// graphs.
func (a *Adjacency) OutWeights(v VertexID) []float32 {
	if a.Weights == nil {
		return nil
	}
	return a.Weights[a.Offsets[v]:a.Offsets[v+1]]
}

// ParseEdgeText reads a whitespace-separated edge-list ("SNAP") text
// stream: one "src dst [weight]" pair per line, '#' or '%' comments
// allowed. It returns edges in raw index space.
func ParseEdgeText(r io.Reader) ([]IndexEdge, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	var edges []IndexEdge
	line := 0
	for sc.Scan() {
		line++
		s := strings.TrimSpace(sc.Text())
		if s == "" || s[0] == '#' || s[0] == '%' {
			continue
		}
		fields := strings.Fields(s)
		if len(fields) < 2 {
			return nil, fmt.Errorf("graph: line %d: need at least 2 fields", line)
		}
		src, err := strconv.ParseUint(fields[0], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: bad src: %w", line, err)
		}
		dst, err := strconv.ParseUint(fields[1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: bad dst: %w", line, err)
		}
		e := IndexEdge{Src: src, Dst: dst, Weight: 1}
		if len(fields) >= 3 {
			w, err := strconv.ParseFloat(fields[2], 32)
			if err != nil {
				return nil, fmt.Errorf("graph: line %d: bad weight: %w", line, err)
			}
			e.Weight = float32(w)
		}
		edges = append(edges, e)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("graph: scan: %w", err)
	}
	return edges, nil
}

// WriteEdgeText writes edges as "src dst" lines (plus weight when w is
// true), the inverse of ParseEdgeText.
func WriteEdgeText(w io.Writer, edges []IndexEdge, weighted bool) error {
	bw := bufio.NewWriter(w)
	for _, e := range edges {
		var err error
		if weighted {
			_, err = fmt.Fprintf(bw, "%d %d %g\n", e.Src, e.Dst, e.Weight)
		} else {
			_, err = fmt.Fprintf(bw, "%d %d\n", e.Src, e.Dst)
		}
		if err != nil {
			return fmt.Errorf("graph: write: %w", err)
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("graph: flush: %w", err)
	}
	return nil
}
