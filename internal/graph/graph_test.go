package graph

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func small() *EdgeList {
	// The paper's Figure 1 example graph (7 vertices).
	return &EdgeList{NumVertices: 7, Edges: []Edge{
		{Src: 1, Dst: 2}, {Src: 0, Dst: 3}, {Src: 1, Dst: 3},
		{Src: 3, Dst: 2}, {Src: 5, Dst: 2}, {Src: 4, Dst: 3}, {Src: 5, Dst: 3},
		{Src: 3, Dst: 0}, {Src: 2, Dst: 1}, {Src: 3, Dst: 1}, {Src: 4, Dst: 1},
		{Src: 6, Dst: 1}, {Src: 1, Dst: 4}, {Src: 0, Dst: 5}, {Src: 3, Dst: 4},
		{Src: 3, Dst: 5}, {Src: 5, Dst: 4}, {Src: 4, Dst: 5}, {Src: 6, Dst: 4},
		{Src: 0, Dst: 6}, {Src: 4, Dst: 6},
	}}
}

func TestDegrees(t *testing.T) {
	g := small()
	out := g.OutDegrees()
	in := g.InDegrees()
	var sumOut, sumIn uint32
	for v := range out {
		sumOut += out[v]
		sumIn += in[v]
	}
	if int(sumOut) != len(g.Edges) || int(sumIn) != len(g.Edges) {
		t.Fatalf("degree sums %d/%d, want %d", sumOut, sumIn, len(g.Edges))
	}
	if out[3] != 5 { // vertex 3 has out-edges to 2,0,1,4,5
		t.Fatalf("out[3] = %d, want 5", out[3])
	}
}

func TestValidate(t *testing.T) {
	g := small()
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := &EdgeList{NumVertices: 3, Edges: []Edge{{Src: 0, Dst: 3}}}
	if err := bad.Validate(); err == nil {
		t.Fatal("expected out-of-range error")
	}
}

func TestTransposeInvolution(t *testing.T) {
	g := small()
	tt := g.Transpose().Transpose()
	if len(tt.Edges) != len(g.Edges) {
		t.Fatal("edge count changed")
	}
	for i := range g.Edges {
		if tt.Edges[i] != g.Edges[i] {
			t.Fatalf("edge %d changed: %v vs %v", i, tt.Edges[i], g.Edges[i])
		}
	}
}

func TestSymmetrizeDoubles(t *testing.T) {
	g := small()
	s := g.Symmetrize()
	if len(s.Edges) != 2*len(g.Edges) {
		t.Fatalf("symmetrize: %d edges, want %d", len(s.Edges), 2*len(g.Edges))
	}
	out := s.OutDegrees()
	in := s.InDegrees()
	for v := range out {
		if out[v] != in[v] {
			t.Fatalf("vertex %d: out %d != in %d after symmetrize", v, out[v], in[v])
		}
	}
}

func TestBuildAdjacency(t *testing.T) {
	g := small()
	a := BuildAdjacency(g)
	if a.Offsets[g.NumVertices] != int64(len(g.Edges)) {
		t.Fatalf("CSR holds %d edges, want %d", a.Offsets[g.NumVertices], len(g.Edges))
	}
	out := g.OutDegrees()
	for v := uint32(0); v < g.NumVertices; v++ {
		nb := a.Out(v)
		if len(nb) != int(out[v]) {
			t.Fatalf("vertex %d: %d neighbors, want %d", v, len(nb), out[v])
		}
		for i := 1; i < len(nb); i++ {
			if nb[i-1] > nb[i] {
				t.Fatalf("vertex %d neighbors unsorted: %v", v, nb)
			}
		}
	}
	if a.OutWeights(0) != nil {
		t.Fatal("unweighted graph should have nil weights")
	}
}

func TestBuildAdjacencyWeighted(t *testing.T) {
	g := &EdgeList{NumVertices: 3, Weighted: true, Edges: []Edge{
		{Src: 0, Dst: 2, Weight: 2.5}, {Src: 0, Dst: 1, Weight: 1.5},
	}}
	a := BuildAdjacency(g)
	nb, ws := a.Out(0), a.OutWeights(0)
	if nb[0] != 1 || nb[1] != 2 {
		t.Fatalf("neighbors %v", nb)
	}
	if ws[0] != 1.5 || ws[1] != 2.5 {
		t.Fatalf("weights %v did not follow the neighbor sort", ws)
	}
}

func TestParseEdgeText(t *testing.T) {
	in := `# comment
% another comment

1 2
300 4 0.5
7	9
`
	edges, err := ParseEdgeText(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(edges) != 3 {
		t.Fatalf("parsed %d edges, want 3", len(edges))
	}
	if edges[0] != (IndexEdge{Src: 1, Dst: 2, Weight: 1}) {
		t.Fatalf("edge 0: %+v", edges[0])
	}
	if edges[1] != (IndexEdge{Src: 300, Dst: 4, Weight: 0.5}) {
		t.Fatalf("edge 1: %+v", edges[1])
	}
}

func TestParseEdgeTextErrors(t *testing.T) {
	for _, in := range []string{"1\n", "a b\n", "1 b\n", "1 2 zz\n"} {
		if _, err := ParseEdgeText(strings.NewReader(in)); err == nil {
			t.Fatalf("input %q should fail", in)
		}
	}
}

func TestWriteParseRoundTrip(t *testing.T) {
	f := func(pairs []uint32, weighted bool) bool {
		var edges []IndexEdge
		rng := rand.New(rand.NewSource(int64(len(pairs))))
		for i := 0; i+1 < len(pairs); i += 2 {
			e := IndexEdge{Src: uint64(pairs[i]), Dst: uint64(pairs[i+1]), Weight: 1}
			if weighted {
				e.Weight = float32(rng.Intn(1000)) / 16 // exactly representable
			}
			edges = append(edges, e)
		}
		var buf bytes.Buffer
		if err := WriteEdgeText(&buf, edges, weighted); err != nil {
			return false
		}
		got, err := ParseEdgeText(&buf)
		if err != nil {
			return false
		}
		if len(got) != len(edges) {
			return false
		}
		for i := range edges {
			if got[i] != edges[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
