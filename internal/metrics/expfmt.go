package metrics

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"regexp"
	"strconv"
	"strings"
)

// This file is a validating parser for the Prometheus text exposition
// format (version 0.0.4) — the contract the /metrics endpoint promises.
// It exists because we hand-render the exposition instead of depending
// on a client library: ValidateExposition is the test (and CI smoke
// check, via cmd/promcheck) that keeps the hand-rendering honest. It
// checks structure, not values: metric-name and label syntax, HELP/TYPE
// placement, label-value escaping, and histogram shape (le bounds
// strictly ascending, bucket counts cumulative, a terminal +Inf bucket
// agreeing with _count).

var (
	metricNameRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	labelNameRe  = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
)

// sample is one parsed exposition line: name{labels} value.
type sample struct {
	name   string
	labels map[string]string
	value  float64
	line   int
}

// expoState tracks one metric family while scanning.
type expoState struct {
	typ     string
	helped  bool
	samples []sample
}

// ValidateExposition reads a complete text exposition and returns the
// first format violation found, or nil if the payload is well-formed.
func ValidateExposition(r io.Reader) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	families := map[string]*expoState{}
	order := []string{}
	family := func(name string) *expoState {
		if f, ok := families[name]; ok {
			return f
		}
		f := &expoState{}
		families[name] = f
		order = append(order, name)
		return f
	}
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			rest := strings.TrimPrefix(line, "# HELP ")
			name, _, _ := strings.Cut(rest, " ")
			if !metricNameRe.MatchString(name) {
				return fmt.Errorf("line %d: HELP for invalid metric name %q", lineNo, name)
			}
			f := family(name)
			if len(f.samples) > 0 {
				return fmt.Errorf("line %d: HELP for %s after its samples", lineNo, name)
			}
			if f.helped {
				return fmt.Errorf("line %d: duplicate HELP for %s", lineNo, name)
			}
			f.helped = true
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			fields := strings.Fields(strings.TrimPrefix(line, "# TYPE "))
			if len(fields) != 2 {
				return fmt.Errorf("line %d: malformed TYPE line", lineNo)
			}
			name, typ := fields[0], fields[1]
			switch typ {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				return fmt.Errorf("line %d: unknown metric type %q", lineNo, typ)
			}
			f := family(name)
			if len(f.samples) > 0 {
				return fmt.Errorf("line %d: TYPE for %s after its samples", lineNo, name)
			}
			if f.typ != "" {
				return fmt.Errorf("line %d: duplicate TYPE for %s", lineNo, name)
			}
			f.typ = typ
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue // free-form comment
		}
		s, err := parseSample(line, lineNo)
		if err != nil {
			return err
		}
		fam := s.name
		// Histogram series attach to their family name.
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			base := strings.TrimSuffix(s.name, suffix)
			if base != s.name {
				if f, ok := families[base]; ok && f.typ == "histogram" {
					fam = base
				}
				break
			}
		}
		family(fam).samples = append(family(fam).samples, s)
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if len(order) == 0 {
		return fmt.Errorf("empty exposition")
	}
	for _, name := range order {
		f := families[name]
		if len(f.samples) == 0 {
			return fmt.Errorf("metric %s has HELP/TYPE but no samples", name)
		}
		if f.typ == "histogram" {
			if err := validateHistogram(name, f.samples); err != nil {
				return err
			}
		}
	}
	return nil
}

// parseSample parses `name{l1="v1",...} value` (labels optional).
func parseSample(line string, lineNo int) (sample, error) {
	s := sample{line: lineNo, labels: map[string]string{}}
	rest := line
	i := strings.IndexAny(rest, "{ ")
	if i < 0 {
		return s, fmt.Errorf("line %d: no value on sample line %q", lineNo, line)
	}
	s.name = rest[:i]
	if !metricNameRe.MatchString(s.name) {
		return s, fmt.Errorf("line %d: invalid metric name %q", lineNo, s.name)
	}
	rest = rest[i:]
	if rest[0] == '{' {
		end, err := parseLabels(rest, s.labels)
		if err != nil {
			return s, fmt.Errorf("line %d: %v", lineNo, err)
		}
		rest = rest[end:]
	}
	valStr := strings.TrimSpace(rest)
	if valStr == "" {
		return s, fmt.Errorf("line %d: missing sample value", lineNo)
	}
	// Timestamps (a second field) are permitted by the format.
	valStr, _, _ = strings.Cut(valStr, " ")
	v, err := strconv.ParseFloat(valStr, 64)
	if err != nil {
		return s, fmt.Errorf("line %d: bad sample value %q", lineNo, valStr)
	}
	s.value = v
	return s, nil
}

// parseLabels parses a `{name="value",...}` block starting at in[0] == '{'
// and returns the index one past the closing brace. Escapes \\, \" and
// \n are honoured in values.
func parseLabels(in string, out map[string]string) (int, error) {
	i := 1
	for {
		if i >= len(in) {
			return 0, fmt.Errorf("unterminated label block")
		}
		if in[i] == '}' {
			return i + 1, nil
		}
		eq := strings.IndexByte(in[i:], '=')
		if eq < 0 {
			return 0, fmt.Errorf("label without '='")
		}
		name := in[i : i+eq]
		if !labelNameRe.MatchString(name) {
			return 0, fmt.Errorf("invalid label name %q", name)
		}
		i += eq + 1
		if i >= len(in) || in[i] != '"' {
			return 0, fmt.Errorf("label %s: unquoted value", name)
		}
		i++
		var val strings.Builder
		for {
			if i >= len(in) {
				return 0, fmt.Errorf("label %s: unterminated value", name)
			}
			c := in[i]
			if c == '"' {
				i++
				break
			}
			if c == '\\' {
				if i+1 >= len(in) {
					return 0, fmt.Errorf("label %s: dangling escape", name)
				}
				switch in[i+1] {
				case '\\':
					val.WriteByte('\\')
				case '"':
					val.WriteByte('"')
				case 'n':
					val.WriteByte('\n')
				default:
					return 0, fmt.Errorf("label %s: invalid escape \\%c", name, in[i+1])
				}
				i += 2
				continue
			}
			val.WriteByte(c)
			i++
		}
		if _, dup := out[name]; dup {
			return 0, fmt.Errorf("duplicate label %s", name)
		}
		out[name] = val.String()
		if i < len(in) && in[i] == ',' {
			i++
		}
	}
}

// validateHistogram checks one histogram family's series: le bounds
// strictly ascending, cumulative bucket counts, a terminal +Inf bucket,
// and _count both present and equal to the +Inf bucket.
func validateHistogram(name string, samples []sample) error {
	var prevLE = math.Inf(-1)
	var prevCount = math.Inf(-1)
	var infCount = math.NaN()
	var count = math.NaN()
	sawSum := false
	for _, s := range samples {
		switch s.name {
		case name + "_bucket":
			leStr, ok := s.labels["le"]
			if !ok {
				return fmt.Errorf("line %d: %s_bucket without le label", s.line, name)
			}
			le, err := strconv.ParseFloat(leStr, 64)
			if err != nil {
				return fmt.Errorf("line %d: bad le %q", s.line, leStr)
			}
			if le <= prevLE {
				return fmt.Errorf("line %d: %s le %q not ascending", s.line, name, leStr)
			}
			if prevCount != math.Inf(-1) && s.value < prevCount {
				return fmt.Errorf("line %d: %s bucket counts not cumulative", s.line, name)
			}
			prevLE, prevCount = le, s.value
			if math.IsInf(le, +1) {
				infCount = s.value
			}
		case name + "_sum":
			sawSum = true
		case name + "_count":
			count = s.value
		default:
			return fmt.Errorf("line %d: unexpected series %s in histogram %s", s.line, s.name, name)
		}
	}
	if math.IsNaN(infCount) {
		return fmt.Errorf("histogram %s: no +Inf bucket (or buckets after it)", name)
	}
	if !math.IsInf(prevLE, +1) {
		return fmt.Errorf("histogram %s: +Inf bucket is not terminal", name)
	}
	if !sawSum {
		return fmt.Errorf("histogram %s: missing _sum", name)
	}
	if math.IsNaN(count) {
		return fmt.Errorf("histogram %s: missing _count", name)
	}
	if count != infCount {
		return fmt.Errorf("histogram %s: _count %g != +Inf bucket %g", name, count, infCount)
	}
	return nil
}
