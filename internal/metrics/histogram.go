package metrics

import (
	"fmt"
	"io"
	"math"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
)

// Histogram is a fixed-bucket Prometheus histogram: lock-free Observe
// (one atomic add per bucket plus a CAS loop for the sum), rendered in
// text exposition format with cumulative buckets, a terminal +Inf
// bucket, _sum and _count. Buckets are chosen at construction and never
// change, so scrapes are consistent without coordination.
type Histogram struct {
	name   string
	help   string
	bounds []float64
	// counts[i] counts observations <= bounds[i], non-cumulatively;
	// counts[len(bounds)] is the +Inf overflow bucket. Rendering
	// accumulates, so Observe touches exactly one slot.
	counts  []atomic.Int64
	sumBits atomic.Uint64 // float64 bits of the running sum
}

// NewHistogram creates a histogram over the given ascending, finite
// upper bounds. It panics on an invalid bucket layout — histograms are
// package-level wiring, not runtime input.
func NewHistogram(name, help string, bounds []float64) *Histogram {
	if len(bounds) == 0 {
		panic("metrics: histogram needs at least one bucket bound")
	}
	for i, b := range bounds {
		if math.IsInf(b, 0) || math.IsNaN(b) {
			panic("metrics: histogram bounds must be finite (+Inf is implicit)")
		}
		if i > 0 && b <= bounds[i-1] {
			panic("metrics: histogram bounds must be strictly ascending")
		}
	}
	h := &Histogram{
		name:   name,
		help:   help,
		bounds: append([]float64(nil), bounds...),
		counts: make([]atomic.Int64, len(bounds)+1),
	}
	return h
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	for {
		old := h.sumBits.Load()
		new := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, new) {
			return
		}
	}
}

// Count returns the number of observations so far.
func (h *Histogram) Count() int64 {
	var n int64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// WritePrometheus renders the histogram in text exposition format.
func (h *Histogram) WritePrometheus(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", h.name, h.help, h.name); err != nil {
		return err
	}
	var cum int64
	for i, b := range h.bounds {
		cum += h.counts[i].Load()
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"%s\"} %d\n",
			h.name, strconv.FormatFloat(b, 'g', -1, 64), cum); err != nil {
			return err
		}
	}
	cum += h.counts[len(h.bounds)].Load()
	sum := math.Float64frombits(h.sumBits.Load())
	_, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n%s_sum %s\n%s_count %d\n",
		h.name, cum, h.name, strconv.FormatFloat(sum, 'g', -1, 64), h.name, cum)
	return err
}

// DurationBuckets is the default bucket layout for latency histograms,
// in seconds: 1ms to 10s, roughly trebling.
var DurationBuckets = []float64{0.001, 0.003, 0.01, 0.03, 0.1, 0.3, 1, 3, 10}

// SizeBuckets is the default bucket layout for count-valued histograms
// (batch sizes): decades from 1 to 1e6.
var SizeBuckets = []float64{1, 10, 100, 1e3, 1e4, 1e5, 1e6}

// FsyncBuckets is the bucket layout for fsync latency, in seconds.
// Fsyncs on healthy local disks land well under a millisecond, so the
// layout starts two decades below DurationBuckets.
var FsyncBuckets = []float64{0.0001, 0.0003, 0.001, 0.003, 0.01, 0.03, 0.1, 0.3, 1}

// ServerHistograms bundles the serving layer's latency and size
// distributions for the /metrics endpoint.
type ServerHistograms struct {
	// JobDuration is end-to-end engine execution time per completed job.
	JobDuration *Histogram
	// IterationDuration is per-iteration wall time from run traces.
	IterationDuration *Histogram
	// BlockLoad is per-block acquisition time from run traces (hits and
	// misses pooled; the trace endpoint separates them).
	BlockLoad *Histogram
	// IngestBatch is the ops-per-batch distribution of /ingest requests.
	IngestBatch *Histogram
	// HTTPRequest is HTTP handler latency across all routes.
	HTTPRequest *Histogram
	// BatchWidth is the lane count distribution of fused engine runs.
	BatchWidth *Histogram
	// WALFsync is write-ahead-log fsync latency (one observation per
	// group-commit flush, not per appended batch).
	WALFsync *Histogram
}

// NewServerHistograms creates the standard nxserve histogram set.
func NewServerHistograms() *ServerHistograms {
	return &ServerHistograms{
		JobDuration:       NewHistogram("nxserve_job_duration_seconds", "End-to-end engine execution time per completed job.", DurationBuckets),
		IterationDuration: NewHistogram("nxserve_iteration_duration_seconds", "Per-iteration wall time of engine runs.", DurationBuckets),
		BlockLoad:         NewHistogram("nxserve_block_load_seconds", "Sub-shard block acquisition time (cache hits and misses).", DurationBuckets),
		IngestBatch:       NewHistogram("nxserve_ingest_batch_edges", "Edge operations per accepted ingest batch.", SizeBuckets),
		HTTPRequest:       NewHistogram("nxserve_http_request_seconds", "HTTP request handling latency.", DurationBuckets),
		BatchWidth:        NewHistogram("nxserve_fused_batch_width", "Lane count of fused engine runs.", SizeBuckets),
		WALFsync:          NewHistogram("nxserve_wal_fsync_seconds", "Write-ahead-log fsync latency per group-commit flush.", FsyncBuckets),
	}
}

// WritePrometheus renders every histogram in the set.
func (s *ServerHistograms) WritePrometheus(w io.Writer) error {
	for _, h := range []*Histogram{s.JobDuration, s.IterationDuration, s.BlockLoad, s.IngestBatch, s.HTTPRequest, s.BatchWidth, s.WALFsync} {
		if err := h.WritePrometheus(w); err != nil {
			return err
		}
	}
	return nil
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(v string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// WriteBuildInfo renders the nxserve_build_info gauge: constant 1 with
// the build's version and Go runtime as labels, the conventional shape
// for deployment inventory queries.
func WriteBuildInfo(w io.Writer, version string) error {
	if version == "" {
		version = "dev"
	}
	_, err := fmt.Fprintf(w,
		"# HELP nxserve_build_info Build metadata (constant 1; inspect the labels).\n"+
			"# TYPE nxserve_build_info gauge\n"+
			"nxserve_build_info{version=\"%s\",go_version=\"%s\"} 1\n",
		escapeLabel(version), escapeLabel(runtime.Version()))
	return err
}
