package metrics

import (
	"strings"
	"sync"
	"testing"
)

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram("test_seconds", "help text", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.1, 0.5, 2, 100} {
		h.Observe(v)
	}
	var b strings.Builder
	if err := h.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	want := []string{
		`test_seconds_bucket{le="0.1"} 2`, // 0.05 and 0.1 (le is inclusive)
		`test_seconds_bucket{le="1"} 3`,
		`test_seconds_bucket{le="10"} 4`,
		`test_seconds_bucket{le="+Inf"} 5`,
		`test_seconds_sum 102.65`,
		`test_seconds_count 5`,
	}
	for _, w := range want {
		if !strings.Contains(out, w+"\n") {
			t.Fatalf("exposition missing %q:\n%s", w, out)
		}
	}
	if err := ValidateExposition(strings.NewReader(out)); err != nil {
		t.Fatalf("own exposition rejected: %v", err)
	}
	if h.Count() != 5 {
		t.Fatalf("Count = %d, want 5", h.Count())
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram("c_seconds", "h", DurationBuckets)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(float64(g) * 0.001)
			}
		}(g)
	}
	wg.Wait()
	if h.Count() != 8000 {
		t.Fatalf("Count = %d, want 8000", h.Count())
	}
}

func TestHistogramInvalidBounds(t *testing.T) {
	for _, bounds := range [][]float64{{}, {1, 1}, {2, 1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("bounds %v did not panic", bounds)
				}
			}()
			NewHistogram("x", "y", bounds)
		}()
	}
}

func TestServerHistogramsExposition(t *testing.T) {
	s := NewServerHistograms()
	s.JobDuration.Observe(0.5)
	s.IngestBatch.Observe(128)
	var b strings.Builder
	if err := s.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if err := ValidateExposition(strings.NewReader(b.String())); err != nil {
		t.Fatalf("server histograms exposition invalid: %v", err)
	}
}

func TestWriteBuildInfoEscaping(t *testing.T) {
	var b strings.Builder
	if err := WriteBuildInfo(&b, "v1\"2\\3\n4"); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, `version="v1\"2\\3\n4"`) {
		t.Fatalf("label escaping wrong:\n%s", out)
	}
	if err := ValidateExposition(strings.NewReader(out)); err != nil {
		t.Fatalf("build info exposition invalid: %v", err)
	}
}

func TestValidateExpositionRejects(t *testing.T) {
	cases := []struct {
		name string
		in   string
	}{
		{"empty", ""},
		{"bad name", "9bad 1\n"},
		{"no value", "metric_a\n"},
		{"help after sample", "m 1\n# HELP m h\nm 2\n"},
		{"bad escape", "m{l=\"a\\q\"} 1\n"},
		{"unterminated label", "m{l=\"a} 1\n"},
		{"duplicate label", `m{a="1",a="2"} 1` + "\n"},
		{"non-monotonic le", "# TYPE h histogram\n" +
			`h_bucket{le="1"} 1` + "\n" + `h_bucket{le="0.5"} 2` + "\n" +
			`h_bucket{le="+Inf"} 3` + "\nh_sum 1\nh_count 3\n"},
		{"non-cumulative", "# TYPE h histogram\n" +
			`h_bucket{le="1"} 5` + "\n" + `h_bucket{le="2"} 3` + "\n" +
			`h_bucket{le="+Inf"} 5` + "\nh_sum 1\nh_count 5\n"},
		{"missing inf", "# TYPE h histogram\n" +
			`h_bucket{le="1"} 1` + "\nh_sum 1\nh_count 1\n"},
		{"count mismatch", "# TYPE h histogram\n" +
			`h_bucket{le="+Inf"} 4` + "\nh_sum 1\nh_count 5\n"},
		{"missing sum", "# TYPE h histogram\n" +
			`h_bucket{le="+Inf"} 1` + "\nh_count 1\n"},
	}
	for _, c := range cases {
		if err := ValidateExposition(strings.NewReader(c.in)); err == nil {
			t.Fatalf("%s: accepted invalid exposition", c.name)
		}
	}
}

func TestValidateExpositionAccepts(t *testing.T) {
	in := "# HELP m counts things\n# TYPE m counter\nm 42\n" +
		"# freeform comment\n" +
		`g{instance="a b",path="c\\d"} 1.5` + "\n"
	if err := ValidateExposition(strings.NewReader(in)); err != nil {
		t.Fatalf("rejected valid exposition: %v", err)
	}
}
