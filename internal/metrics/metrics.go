// Package metrics provides the measurement and reporting substrate for
// the benchmark harness: throughput metrics and plain-text tables that
// mirror the paper's tables and figure series.
package metrics

import (
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
	"time"
)

// MTEPS returns millions of traversed edges per second (the Fig 11
// metric).
func MTEPS(edges int64, elapsed time.Duration) float64 {
	if elapsed <= 0 {
		return 0
	}
	return float64(edges) / 1e6 / elapsed.Seconds()
}

// Table accumulates rows and renders a fixed-width text table.
type Table struct {
	Title   string
	headers []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, headers: headers}
}

// AddRow appends a row; values are formatted with %v, floats with 4
// significant digits.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.4g", v)
		case time.Duration:
			row[i] = v.Round(time.Millisecond).String()
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.rows = append(t.rows, row)
}

// Render writes the table to w.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.headers)
	sep := make([]string, len(t.headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	_ = t.Render(&b)
	return b.String()
}

// Rows returns the number of data rows.
func (t *Table) Rows() int { return len(t.rows) }

// ParseBytes parses human byte sizes — "512MiB", "1.5g", "64kb" or a
// plain count. The inverse of Bytes, shared by the CLI tools.
// Unrecognized suffixes are an error, never a silent misparse.
func ParseBytes(s string) (int64, error) {
	if s == "" || s == "0" {
		return 0, nil
	}
	u := strings.ToLower(s)
	mult := int64(1)
	for _, suf := range []struct {
		s string
		m int64
	}{
		{"gib", 1 << 30}, {"gb", 1 << 30}, {"g", 1 << 30},
		{"mib", 1 << 20}, {"mb", 1 << 20}, {"m", 1 << 20},
		{"kib", 1 << 10}, {"kb", 1 << 10}, {"k", 1 << 10},
		{"b", 1}, // must come last: every other suffix ends in 'b'
	} {
		if strings.HasSuffix(u, suf.s) {
			u, mult = u[:len(u)-len(suf.s)], suf.m
			break
		}
	}
	v, err := strconv.ParseFloat(u, 64)
	if err != nil || v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
		return 0, fmt.Errorf("bad size %q", s)
	}
	b := v * float64(mult)
	if b >= math.MaxInt64 {
		return 0, fmt.Errorf("size %q overflows", s)
	}
	return int64(b), nil
}

// Bytes formats a byte count human-readably.
func Bytes(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.2fGiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.2fMiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.2fKiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%dB", n)
	}
}
