package metrics

import (
	"strings"
	"testing"
	"time"
)

func TestMTEPS(t *testing.T) {
	if got := MTEPS(3_000_000, time.Second); got != 3 {
		t.Fatalf("MTEPS = %v", got)
	}
	if MTEPS(100, 0) != 0 {
		t.Fatal("zero duration should give 0")
	}
}

func TestTableRendering(t *testing.T) {
	tab := NewTable("Demo", "name", "value", "time")
	tab.AddRow("alpha", 1.23456, 1500*time.Millisecond)
	tab.AddRow("a-much-longer-name", 42, "n/a")
	out := tab.String()
	if !strings.Contains(out, "== Demo ==") {
		t.Fatalf("missing title:\n%s", out)
	}
	if !strings.Contains(out, "1.235") {
		t.Fatalf("float not formatted to 4 sig digits:\n%s", out)
	}
	if !strings.Contains(out, "1.5s") {
		t.Fatalf("duration not rendered:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// Title + header + separator + 2 rows.
	if len(lines) != 5 {
		t.Fatalf("expected 5 lines, got %d:\n%s", len(lines), out)
	}
	// Columns aligned: header and rows share the position of column 2.
	if tab.Rows() != 2 {
		t.Fatalf("Rows = %d", tab.Rows())
	}
}

func TestBytes(t *testing.T) {
	cases := map[int64]string{
		512:     "512B",
		2048:    "2.00KiB",
		3 << 20: "3.00MiB",
		5 << 30: "5.00GiB",
	}
	for in, want := range cases {
		if got := Bytes(in); got != want {
			t.Errorf("Bytes(%d) = %q, want %q", in, got, want)
		}
	}
}
