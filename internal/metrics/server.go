package metrics

import (
	"fmt"
	"io"
	"sync/atomic"

	"nxgraph/internal/blockcache"
)

// ServerStats aggregates the serving subsystem's operational counters.
// All fields are updated atomically by the scheduler, cache and registry;
// WritePrometheus renders them in Prometheus text exposition format for
// the /metrics endpoint.
type ServerStats struct {
	// JobsSubmitted counts every accepted job, including cache hits.
	JobsSubmitted atomic.Int64
	// JobsStarted counts jobs a worker began executing.
	JobsStarted atomic.Int64
	// JobsCompleted counts jobs that finished successfully.
	JobsCompleted atomic.Int64
	// JobsFailed counts jobs that ended with a non-cancellation error.
	JobsFailed atomic.Int64
	// JobsCancelled counts jobs cancelled while pending or running.
	JobsCancelled atomic.Int64
	// CacheHits counts submissions answered from the result cache.
	CacheHits atomic.Int64
	// CacheMisses counts submissions that had to run the engine.
	CacheMisses atomic.Int64
	// QueueDepth is the number of jobs waiting for a worker (gauge).
	QueueDepth atomic.Int64
	// RunningJobs is the number of jobs currently executing (gauge).
	RunningJobs atomic.Int64
	// CacheEntries is the number of cached results (gauge).
	CacheEntries atomic.Int64
	// CacheBytes is the approximate memory held by the cache (gauge).
	CacheBytes atomic.Int64
	// GraphsOpen is the number of graphs in the registry (gauge).
	GraphsOpen atomic.Int64
	// EdgesTraversed accumulates engine edge traversals across all jobs.
	EdgesTraversed atomic.Int64
	// FusedRuns counts fused engine runs (one per coalesced batch).
	FusedRuns atomic.Int64
	// FusedJobs counts jobs executed as lanes of a fused run.
	FusedJobs atomic.Int64
	// EdgesIngested counts edge insertions accepted into delta logs.
	EdgesIngested atomic.Int64
	// EdgesRemoved counts edge removals accepted into delta logs.
	EdgesRemoved atomic.Int64
	// DeltaPending is the total uncompacted delta ops across all graphs
	// (gauge).
	DeltaPending atomic.Int64
	// CompactionsStarted counts background compactions begun.
	CompactionsStarted atomic.Int64
	// CompactionsCompleted counts compactions that swapped in a new store.
	CompactionsCompleted atomic.Int64
	// CompactionsFailed counts compactions that ended in error.
	CompactionsFailed atomic.Int64
}

// promMetric describes one exported metric for WritePrometheus.
type promMetric struct {
	name  string
	help  string
	typ   string // "counter" or "gauge"
	value func(*ServerStats) int64
}

var serverMetrics = []promMetric{
	{"nxserve_jobs_submitted_total", "Jobs accepted, including cache hits.", "counter",
		func(s *ServerStats) int64 { return s.JobsSubmitted.Load() }},
	{"nxserve_jobs_started_total", "Jobs a worker began executing.", "counter",
		func(s *ServerStats) int64 { return s.JobsStarted.Load() }},
	{"nxserve_jobs_completed_total", "Jobs finished successfully.", "counter",
		func(s *ServerStats) int64 { return s.JobsCompleted.Load() }},
	{"nxserve_jobs_failed_total", "Jobs that ended with an error.", "counter",
		func(s *ServerStats) int64 { return s.JobsFailed.Load() }},
	{"nxserve_jobs_cancelled_total", "Jobs cancelled while pending or running.", "counter",
		func(s *ServerStats) int64 { return s.JobsCancelled.Load() }},
	{"nxserve_cache_hits_total", "Submissions answered from the result cache.", "counter",
		func(s *ServerStats) int64 { return s.CacheHits.Load() }},
	{"nxserve_cache_misses_total", "Submissions that ran the engine.", "counter",
		func(s *ServerStats) int64 { return s.CacheMisses.Load() }},
	{"nxserve_queue_depth", "Jobs waiting for a worker.", "gauge",
		func(s *ServerStats) int64 { return s.QueueDepth.Load() }},
	{"nxserve_running_jobs", "Jobs currently executing.", "gauge",
		func(s *ServerStats) int64 { return s.RunningJobs.Load() }},
	{"nxserve_cache_entries", "Results held by the LRU cache.", "gauge",
		func(s *ServerStats) int64 { return s.CacheEntries.Load() }},
	{"nxserve_cache_bytes", "Approximate bytes held by the LRU cache.", "gauge",
		func(s *ServerStats) int64 { return s.CacheBytes.Load() }},
	{"nxserve_graphs_open", "Graphs in the registry.", "gauge",
		func(s *ServerStats) int64 { return s.GraphsOpen.Load() }},
	{"nxserve_edges_traversed_total", "Engine edge traversals across all jobs.", "counter",
		func(s *ServerStats) int64 { return s.EdgesTraversed.Load() }},
	{"nxserve_fused_runs_total", "Fused engine runs (one per coalesced query batch).", "counter",
		func(s *ServerStats) int64 { return s.FusedRuns.Load() }},
	{"nxserve_fused_jobs_total", "Jobs executed as lanes of a fused run.", "counter",
		func(s *ServerStats) int64 { return s.FusedJobs.Load() }},
	{"nxserve_edges_ingested_total", "Edge insertions accepted into delta logs.", "counter",
		func(s *ServerStats) int64 { return s.EdgesIngested.Load() }},
	{"nxserve_edges_removed_total", "Edge removals accepted into delta logs.", "counter",
		func(s *ServerStats) int64 { return s.EdgesRemoved.Load() }},
	{"nxserve_delta_pending", "Uncompacted delta ops across all graphs.", "gauge",
		func(s *ServerStats) int64 { return s.DeltaPending.Load() }},
	{"nxserve_compactions_started_total", "Background compactions begun.", "counter",
		func(s *ServerStats) int64 { return s.CompactionsStarted.Load() }},
	{"nxserve_compactions_completed_total", "Compactions that swapped in a new store.", "counter",
		func(s *ServerStats) int64 { return s.CompactionsCompleted.Load() }},
	{"nxserve_compactions_failed_total", "Compactions that ended in error.", "counter",
		func(s *ServerStats) int64 { return s.CompactionsFailed.Load() }},
}

// WritePrometheus renders every counter and gauge in Prometheus text
// exposition format (version 0.0.4).
func (s *ServerStats) WritePrometheus(w io.Writer) error {
	for _, m := range serverMetrics {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n%s %d\n",
			m.name, m.help, m.name, m.typ, m.name, m.value(s)); err != nil {
			return err
		}
	}
	return nil
}

var blockCacheMetrics = []struct {
	name string
	help string
	typ  string
	val  func(blockcache.Stats) int64
}{
	{"nxserve_blockcache_hits_total", "Sub-shard reads served from the shared block cache.", "counter",
		func(s blockcache.Stats) int64 { return s.Hits }},
	{"nxserve_blockcache_misses_total", "Sub-shard reads that decoded from disk.", "counter",
		func(s blockcache.Stats) int64 { return s.Misses }},
	{"nxserve_blockcache_evictions_total", "Blocks evicted to fit the cache budget.", "counter",
		func(s blockcache.Stats) int64 { return s.Evictions }},
	{"nxserve_blockcache_invalidations_total", "Blocks dropped by store-generation invalidation.", "counter",
		func(s blockcache.Stats) int64 { return s.Invalidations }},
	{"nxserve_blockcache_blocks", "Decoded sub-shard blocks resident.", "gauge",
		func(s blockcache.Stats) int64 { return s.Blocks }},
	{"nxserve_blockcache_resident_bytes", "Decoded bytes held by the block cache.", "gauge",
		func(s blockcache.Stats) int64 { return s.ResidentBytes }},
	{"nxserve_blockcache_pinned_bytes", "Resident bytes pinned by running iterations.", "gauge",
		func(s blockcache.Stats) int64 { return s.PinnedBytes }},
	{"nxserve_blockcache_l2_hits_total", "Sub-shard reads decoded from the encoded-blob tier instead of disk.", "counter",
		func(s blockcache.Stats) int64 { return s.L2Hits }},
	{"nxserve_blockcache_l2_evictions_total", "Encoded blobs evicted to fit the L2 budget.", "counter",
		func(s blockcache.Stats) int64 { return s.L2Evictions }},
	{"nxserve_blockcache_l2_blocks", "Encoded sub-shard blobs resident.", "gauge",
		func(s blockcache.Stats) int64 { return s.L2Blocks }},
	{"nxserve_blockcache_l2_resident_bytes", "Encoded bytes held by the L2 tier.", "gauge",
		func(s blockcache.Stats) int64 { return s.L2ResidentBytes }},
	{"nxserve_blockcache_l2_pinned_bytes", "Encoded bytes pinned by in-flight decodes.", "gauge",
		func(s blockcache.Stats) int64 { return s.L2PinnedBytes }},
}

// WriteBlockCachePrometheus renders a block cache snapshot in
// Prometheus text exposition format.
func WriteBlockCachePrometheus(w io.Writer, s blockcache.Stats) error {
	for _, m := range blockCacheMetrics {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n%s %d\n",
			m.name, m.help, m.name, m.typ, m.name, m.val(s)); err != nil {
			return err
		}
	}
	return nil
}

var walMetrics = []struct {
	name string
	help string
}{
	{"nxserve_wal_appends_total", "Batches durably appended to write-ahead logs and acked to their appenders."},
	{"nxserve_wal_fsyncs_total", "Write-ahead-log fsyncs (group commit coalesces batches per fsync)."},
	{"nxserve_wal_replayed_batches_total", "Batches replayed from write-ahead logs on graph open."},
	{"nxserve_wal_torn_tails_total", "Torn write-ahead-log tails truncated on graph open."},
}

// WriteWALPrometheus renders a write-ahead-log counter snapshot in
// Prometheus text exposition format. Plain-int arguments keep metrics
// free of a wal dependency.
func WriteWALPrometheus(w io.Writer, appends, fsyncs, replayed, tornTails int64) error {
	vals := []int64{appends, fsyncs, replayed, tornTails}
	for i, m := range walMetrics {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n",
			m.name, m.help, m.name, m.name, vals[i]); err != nil {
			return err
		}
	}
	return nil
}
