package metrics

import (
	"strings"
	"testing"
)

func TestServerStatsPrometheus(t *testing.T) {
	var s ServerStats
	s.JobsSubmitted.Add(3)
	s.JobsCancelled.Add(1)
	s.CacheHits.Add(2)
	s.QueueDepth.Store(5)

	var b strings.Builder
	if err := s.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP nxserve_jobs_submitted_total ",
		"# TYPE nxserve_jobs_submitted_total counter",
		"nxserve_jobs_submitted_total 3",
		"nxserve_jobs_cancelled_total 1",
		"nxserve_cache_hits_total 2",
		"# TYPE nxserve_queue_depth gauge",
		"nxserve_queue_depth 5",
		"nxserve_jobs_failed_total 0",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}
