package metrics

import (
	"fmt"

	"nxgraph/internal/trace"
)

// StepTable renders per-iteration trace stats as a compute-vs-stall
// breakdown table, with a totals row. Percentages guard against
// zero-duration iterations (trivial graphs on warm caches), printing 0
// instead of NaN.
func StepTable(title string, steps []trace.StepStats) *Table {
	t := NewTable(title,
		"iter", "edges", "hit", "miss", "read", "compute", "stall", "stall%", "total")
	var edges, hit, miss, read, compute, stall, dur int64
	for _, st := range steps {
		t.AddRow(st.Iteration, st.Edges, st.BlocksHit, st.BlocksMiss,
			Bytes(st.BytesRead),
			fmt.Sprintf("%.1fms", float64(st.ComputeUS)/1e3),
			fmt.Sprintf("%.1fms", float64(st.StallUS)/1e3),
			fmt.Sprintf("%.1f", pct(st.StallUS, st.DurUS)),
			fmt.Sprintf("%.1fms", float64(st.DurUS)/1e3))
		edges += st.Edges
		hit += st.BlocksHit
		miss += st.BlocksMiss
		read += st.BytesRead
		compute += st.ComputeUS
		stall += st.StallUS
		dur += st.DurUS
	}
	t.AddRow("total", edges, hit, miss, Bytes(read),
		fmt.Sprintf("%.1fms", float64(compute)/1e3),
		fmt.Sprintf("%.1fms", float64(stall)/1e3),
		fmt.Sprintf("%.1f", pct(stall, dur)),
		fmt.Sprintf("%.1fms", float64(dur)/1e3))
	return t
}

// pct returns part/whole as a percentage, 0 when whole is 0.
func pct(part, whole int64) float64 {
	if whole <= 0 {
		return 0
	}
	return 100 * float64(part) / float64(whole)
}
