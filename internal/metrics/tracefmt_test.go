package metrics

import (
	"strings"
	"testing"

	"nxgraph/internal/trace"
)

// Zero-duration iterations (trivial graphs on warm caches) must print
// 0 percent, never NaN or Inf.
func TestStepTableZeroDuration(t *testing.T) {
	tbl := StepTable("t", []trace.StepStats{
		{Iteration: 0, Edges: 10, DurUS: 0, StallUS: 0, ComputeUS: 0},
	})
	out := tbl.String()
	if strings.Contains(out, "NaN") || strings.Contains(out, "Inf") {
		t.Fatalf("zero-duration step rendered NaN/Inf:\n%s", out)
	}
	if tbl.Rows() != 2 { // one step + totals
		t.Fatalf("rows = %d, want 2", tbl.Rows())
	}
}

func TestStepTableTotals(t *testing.T) {
	tbl := StepTable("t", []trace.StepStats{
		{Iteration: 0, Edges: 10, BlocksMiss: 4, BytesRead: 1024, StallUS: 500, ComputeUS: 500, DurUS: 1000},
		{Iteration: 1, Edges: 10, BlocksHit: 4, StallUS: 0, ComputeUS: 250, DurUS: 250},
	})
	out := tbl.String()
	for _, want := range []string{"total", "20", "40.0"} { // edges sum, stall% = 500/1250
		if !strings.Contains(out, want) {
			t.Fatalf("totals row missing %q:\n%s", want, out)
		}
	}
}
