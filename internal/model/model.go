// Package model implements the paper's analytic I/O models: the per-
// iteration read/write amounts of Table II for all four update strategies,
// and the MPU-vs-TurboGraph-like ratio curve of Figure 6.
//
// All quantities are bytes per iteration. Parameters follow Table I:
// n vertices, m edges, Ba attribute bytes, Bv vertex-id bytes, Be edge
// bytes, BM memory budget, d average sub-shard destination in-degree,
// P intervals, Q resident intervals.
package model

import "math"

// Params carries the graph and machine constants of the model.
type Params struct {
	N  float64 // number of vertices
	M  float64 // number of edges
	Ba float64 // bytes per vertex attribute
	Bv float64 // bytes per vertex id
	Be float64 // bytes per edge
	BM float64 // memory budget in bytes
	D  float64 // average destination in-degree within hub-bearing sub-shards
}

// YahooWeb returns the constants the paper uses for Figure 6: the
// Yahoo-web graph with 4-byte ids, 8-byte attributes, ~4-byte compressed
// edges and d = 15.
func YahooWeb() Params {
	return Params{
		N:  7.20e8,
		M:  6.63e9,
		Ba: 8,
		Bv: 4,
		Be: 4,
		D:  15,
	}
}

// IO is a read/write pair in bytes.
type IO struct {
	Read  float64
	Write float64
}

// Total returns read + write bytes.
func (io IO) Total() float64 { return io.Read + io.Write }

// SPU returns Table II row "SPU": reads stream the sub-shards not held in
// memory (m·Be − (BM − 2n·Ba), floored at zero), writes are zero. Valid
// only when BM ≥ 2n·Ba (or BM = 0 meaning unlimited).
func SPU(p Params) IO {
	read := p.M*p.Be - (p.BM - 2*p.N*p.Ba)
	if p.BM == 0 || read < 0 {
		read = 0
	}
	return IO{Read: read}
}

// DPU returns Table II row "DPU": edges plus one interval pass plus hub
// traffic on the read side; hub traffic plus one interval pass on the
// write side.
func DPU(p Params) IO {
	hub := p.M * (p.Ba + p.Bv) / p.D
	return IO{
		Read:  p.M*p.Be + hub + p.N*p.Ba,
		Write: hub + p.N*p.Ba,
	}
}

// MPUFraction returns (1 − BM/(2n·Ba)), the fraction of intervals that
// cannot be resident, clamped to [0, 1].
func MPUFraction(p Params) float64 {
	f := 1 - p.BM/(2*p.N*p.Ba)
	return math.Min(1, math.Max(0, f))
}

// MPU returns Table II row "MPU". At BM = 0 it equals DPU; at
// BM ≥ 2n·Ba it equals SPU with all edges streamed.
func MPU(p Params) IO {
	f := MPUFraction(p)
	hub := p.M * f * f * (p.Ba + p.Bv) / p.D
	return IO{
		Read:  p.M*p.Be + hub + f*p.N*p.Ba,
		Write: hub + f*p.N*p.Ba,
	}
}

// TurboGraphLike returns Table II row "TurboGraph-like" at the strategy's
// own optimal partitioning P = 2n·Ba/BM: every destination-interval pass
// re-reads all interval attributes.
func TurboGraphLike(p Params) IO {
	return IO{
		Read:  p.M*p.Be + 2*math.Pow(p.N*p.Ba, 2)/p.BM + p.N*p.Ba,
		Write: p.N * p.Ba,
	}
}

// Fig6Ratio returns total-I/O(MPU) / total-I/O(TurboGraph-like) at memory
// budget bm, the quantity plotted in Figure 6.
func Fig6Ratio(p Params, bm float64) float64 {
	p.BM = bm
	den := TurboGraphLike(p).Total()
	if den == 0 {
		return 0
	}
	return MPU(p).Total() / den
}

// Fig6Series samples the Figure 6 curve at `points` budgets spanning
// (0, 2n·Ba], returning parallel slices of budget bytes and ratios.
func Fig6Series(p Params, points int) (budgets, ratios []float64) {
	maxBM := 2 * p.N * p.Ba
	for i := 1; i <= points; i++ {
		bm := maxBM * float64(i) / float64(points)
		budgets = append(budgets, bm)
		ratios = append(ratios, Fig6Ratio(p, bm))
	}
	return budgets, ratios
}

// ImplDPU adjusts the paper's DPU read model to this implementation: the
// FromHub phase re-reads each destination interval's previous attributes
// so Apply can fold old values (the paper's Algorithm 6 initializes
// intervals in memory instead), adding one extra n·Ba read pass. The
// measured-I/O validation tests assert against this variant.
func ImplDPU(p Params) IO {
	io := DPU(p)
	io.Read += p.N * p.Ba
	return io
}

// ImplMPU is the implementation variant of MPU (extra old-attribute read
// for the non-resident destination intervals).
func ImplMPU(p Params) IO {
	io := MPU(p)
	io.Read += MPUFraction(p) * p.N * p.Ba
	return io
}
