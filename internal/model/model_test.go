package model

import (
	"math"
	"testing"
	"testing/quick"
)

func params(bm float64) Params {
	p := YahooWeb()
	p.BM = bm
	return p
}

func TestMPUBoundaryIdentities(t *testing.T) {
	full := 2 * YahooWeb().N * YahooWeb().Ba
	// At BM = 0, MPU degenerates to DPU.
	if got, want := MPU(params(0)), DPU(params(0)); got != want {
		t.Fatalf("MPU(0) = %+v, DPU = %+v", got, want)
	}
	// At BM = 2nBa, MPU degenerates to SPU with all edges streamed.
	mpu := MPU(params(full))
	if mpu.Write != 0 {
		t.Fatalf("MPU at full budget writes %v", mpu.Write)
	}
	p := params(full)
	if mpu.Read != p.M*p.Be {
		t.Fatalf("MPU at full budget reads %v, want %v", mpu.Read, p.M*p.Be)
	}
}

func TestSPUModel(t *testing.T) {
	p := params(0) // unlimited
	if io := SPU(p); io.Read != 0 || io.Write != 0 {
		t.Fatalf("unlimited SPU: %+v", io)
	}
	full := 2 * p.N * p.Ba
	p.BM = full + p.M*p.Be // everything cached
	if io := SPU(p); io.Read != 0 {
		t.Fatalf("fully-cached SPU reads %v", io.Read)
	}
	p.BM = full // nothing left for edges
	if io := SPU(p); io.Read != p.M*p.Be {
		t.Fatalf("edge-streaming SPU reads %v, want %v", io.Read, p.M*p.Be)
	}
}

func TestDPUIndependentOfBudget(t *testing.T) {
	a := DPU(params(1e9))
	b := DPU(params(64e9))
	if a != b {
		t.Fatalf("DPU should not depend on BM: %+v vs %+v", a, b)
	}
}

// TestQuickMPUAlwaysBeatsTurboGraph reproduces Figure 6's claim over the
// whole budget range: MPU total I/O is strictly below TurboGraph-like.
func TestQuickMPUAlwaysBeatsTurboGraph(t *testing.T) {
	p := YahooWeb()
	maxBM := 2 * p.N * p.Ba
	f := func(frac float64) bool {
		frac = math.Abs(frac)
		frac -= math.Floor(frac) // (0,1)
		if frac == 0 {
			frac = 0.5
		}
		r := Fig6Ratio(p, frac*maxBM)
		return r > 0 && r < 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickMPUMonotoneInBudget(t *testing.T) {
	p := YahooWeb()
	maxBM := 2 * p.N * p.Ba
	f := func(a, b float64) bool {
		fa := math.Mod(math.Abs(a), 1)
		fb := math.Mod(math.Abs(b), 1)
		if fa > fb {
			fa, fb = fb, fa
		}
		lo := MPU(params(fa * maxBM)).Total()
		hi := MPU(params(fb * maxBM)).Total()
		return lo >= hi // more memory, less traffic
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestFig6Series(t *testing.T) {
	budgets, ratios := Fig6Series(YahooWeb(), 10)
	if len(budgets) != 10 || len(ratios) != 10 {
		t.Fatalf("series lengths %d/%d", len(budgets), len(ratios))
	}
	for i, r := range ratios {
		if r <= 0 || r >= 1 {
			t.Fatalf("ratio[%d] = %v outside (0,1)", i, r)
		}
	}
	if budgets[9] != 2*YahooWeb().N*YahooWeb().Ba {
		t.Fatalf("last budget %v", budgets[9])
	}
}

func TestImplVariants(t *testing.T) {
	p := params(0)
	if got, want := ImplDPU(p).Read-DPU(p).Read, p.N*p.Ba; got != want {
		t.Fatalf("ImplDPU extra read %v, want %v", got, want)
	}
	full := 2 * p.N * p.Ba
	if ImplMPU(params(full)) != MPU(params(full)) {
		t.Fatal("ImplMPU at full budget should equal MPU")
	}
}

func TestMPUFractionClamped(t *testing.T) {
	if f := MPUFraction(params(1e30)); f != 0 {
		t.Fatalf("huge budget fraction %v", f)
	}
	if f := MPUFraction(params(0)); f != 1 {
		t.Fatalf("zero budget fraction %v", f)
	}
}
