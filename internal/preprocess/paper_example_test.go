package preprocess_test

import (
	"testing"

	"nxgraph/internal/diskio"
	"nxgraph/internal/graph"
	"nxgraph/internal/preprocess"
)

// TestPaperFigure1Layout rebuilds the example graph of the paper's
// Figure 1 and checks that the sub-shard contents match the figure
// exactly: with P = 4 the intervals are I1 = {0,1}, I2 = {2,3},
// I3 = {4,5}, I4 = {6}, and e.g. SS3.2 holds the edges 5→2, 4→3, 5→3
// sorted by destination then source.
func TestPaperFigure1Layout(t *testing.T) {
	// Edges transcribed from Figure 1(b), as (src, dst).
	edges := [][2]uint32{
		{1, 2}, {0, 3}, {1, 3}, // SS1.2
		{3, 2},                 // SS2.2
		{5, 2}, {4, 3}, {5, 3}, // SS3.2
		{3, 0}, {2, 1}, {3, 1}, // SS2.1
		{4, 1},         // SS3.1
		{6, 1},         // SS4.1
		{1, 4}, {0, 5}, // SS1.3
		{3, 4}, {3, 5}, // SS2.3
		{5, 4}, {4, 5}, // SS3.3
		{6, 4}, // SS4.3
		{0, 6}, // SS1.4
		{4, 6}, // SS3.4
	}
	g := &graph.EdgeList{NumVertices: 7}
	for _, e := range edges {
		g.Edges = append(g.Edges, graph.Edge{Src: e[0], Dst: e[1]})
	}
	disk := diskio.MustNew(t.TempDir(), diskio.Unthrottled)
	res, err := preprocess.FromEdgeList(disk, "fig1", g, preprocess.Options{Name: "fig1", P: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer res.Store.Close()
	st := res.Store
	m := st.Meta()
	// Interval boundaries match the figure (1-indexed in the paper,
	// 0-indexed here).
	wantRanges := [][2]uint32{{0, 2}, {2, 4}, {4, 6}, {6, 7}}
	for k, want := range wantRanges {
		lo, hi := m.IntervalRange(k)
		if lo != want[0] || hi != want[1] {
			t.Fatalf("interval %d = [%d,%d), want [%d,%d)", k, lo, hi, want[0], want[1])
		}
	}

	type edge struct{ s, d uint32 }
	read := func(i, j int) []edge {
		ss, err := st.ReadSubShard(i, j, false)
		if err != nil {
			t.Fatal(err)
		}
		var out []edge
		for k := range ss.Dsts {
			for e := ss.Offsets[k]; e < ss.Offsets[k+1]; e++ {
				out = append(out, edge{ss.Srcs[e], ss.Dsts[k]})
			}
		}
		return out
	}
	// Paper SS3.2 (our SS[2][1]): destination-sorted 5→2, then 4→3, 5→3.
	got := read(2, 1)
	want := []edge{{5, 2}, {4, 3}, {5, 3}}
	if len(got) != len(want) {
		t.Fatalf("SS3.2 = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("SS3.2 = %v, want %v", got, want)
		}
	}
	// Paper SS2.1 (our SS[1][0]): 3→0, then 2→1, 3→1.
	got = read(1, 0)
	want = []edge{{3, 0}, {2, 1}, {3, 1}}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("SS2.1 = %v, want %v", got, want)
		}
	}
	// Paper SS2.4 and SS4.2 and SS4.4 are empty in the figure.
	for _, ij := range [][2]int{{1, 3}, {3, 1}, {3, 3}} {
		if e := read(ij[0], ij[1]); len(e) != 0 {
			t.Fatalf("SS%d.%d should be empty, has %v", ij[0]+1, ij[1]+1, e)
		}
	}
	// Shard S1 (column 0) collects rows 2, 3, 4 of the figure.
	rows := st.SubShardsOfColumn(0, false)
	if len(rows) != 3 || rows[0] != 1 || rows[1] != 2 || rows[2] != 3 {
		t.Fatalf("shard S1 rows = %v", rows)
	}
	// d for SS3.2: 3 edges over 2 distinct destinations.
	ss, _ := st.ReadSubShard(2, 1, false)
	if d := ss.AvgInDegree(); d != 1.5 {
		t.Fatalf("SS3.2 avg in-degree %v, want 1.5", d)
	}
}
