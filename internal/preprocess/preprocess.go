// Package preprocess implements NXgraph's explicit preprocessing stage
// (paper §III-A): the degreer and the sharder.
//
// The degreer maps raw vertex *indices* (possibly sparse, as found in edge
// list files) to dense *ids* in [0, n), dropping vertices with no incident
// edge — exactly the paper's convention ("# vertices does not include
// isolated vertices"). It also computes in/out degrees and emits the
// id-space edge set (the paper's "pre-shard").
//
// The sharder partitions vertices into P equal-sized intervals and edges
// into P² destination-sorted sub-shards, ordering edges by destination and
// then source within each sub-shard, and writes the DSSS store. Sorting
// runs through the external merge sorter so graphs larger than memory
// shard correctly.
package preprocess

import (
	"fmt"
	"sort"

	"nxgraph/internal/diskio"
	"nxgraph/internal/extsort"
	"nxgraph/internal/graph"
	"nxgraph/internal/storage"
)

// Options configures preprocessing.
type Options struct {
	// Name labels the store (informational).
	Name string
	// P is the number of vertex intervals (and per-axis sub-shards).
	P int
	// Weighted retains edge weights in the store.
	Weighted bool
	// Transpose additionally materializes the transposed sub-shard set,
	// needed by algorithms that traverse reverse edges (WCC, SCC, HITS).
	Transpose bool
	// Format selects the on-disk sub-shard encoding
	// (storage.FormatV1/FormatV2); 0 picks storage.DefaultFormatVersion.
	Format int
	// MaxRunEdges bounds the external sorter's in-memory run size.
	// Zero selects a default of 1<<22 edges (~48 MB).
	MaxRunEdges int
	// SortBudgetDisk, when non-nil, receives the external sorter's
	// scratch traffic instead of the store's disk.
	SortBudgetDisk *diskio.Disk
}

func (o *Options) maxRun() int {
	if o.MaxRunEdges <= 0 {
		return 1 << 22
	}
	return o.MaxRunEdges
}

func (o *Options) format() int {
	if o.Format == 0 {
		return storage.DefaultFormatVersion
	}
	return o.Format
}

// Result reports what preprocessing produced.
type Result struct {
	Store       *storage.Store
	NumVertices uint32
	NumEdges    int64
	// DroppedVertices counts raw indices that appeared in no edge (they
	// exist only when the caller supplies an explicit universe, e.g. a
	// vertex count larger than the edges touch).
	DroppedVertices int64
}

// Degree maps and degree arrays from the degreer.
type degreeing struct {
	idOf     func(graph.Index) (uint32, bool)
	idMap    []uint64 // id -> original index
	outDeg   []uint32
	inDeg    []uint32
	numVerts uint32
}

// runDegreer builds the dense id space from raw index edges.
func runDegreer(edges []graph.IndexEdge) *degreeing {
	// Collect every endpoint, sort, unique: the rank of an index is its id.
	idx := make([]uint64, 0, 2*len(edges))
	for _, e := range edges {
		idx = append(idx, e.Src, e.Dst)
	}
	sort.Slice(idx, func(i, j int) bool { return idx[i] < idx[j] })
	uniq := idx[:0]
	var last uint64
	for i, v := range idx {
		if i == 0 || v != last {
			uniq = append(uniq, v)
			last = v
		}
	}
	idMap := make([]uint64, len(uniq))
	copy(idMap, uniq)
	d := &degreeing{
		idMap:    idMap,
		numVerts: uint32(len(idMap)),
		outDeg:   make([]uint32, len(idMap)),
		inDeg:    make([]uint32, len(idMap)),
	}
	d.idOf = func(x graph.Index) (uint32, bool) {
		k := sort.Search(len(idMap), func(i int) bool { return idMap[i] >= x })
		if k < len(idMap) && idMap[k] == x {
			return uint32(k), true
		}
		return 0, false
	}
	for _, e := range edges {
		s, _ := d.idOf(e.Src)
		t, _ := d.idOf(e.Dst)
		d.outDeg[s]++
		d.inDeg[t]++
	}
	return d
}

// FromIndexEdges preprocesses a raw edge list (sparse indices) into a DSSS
// store at dir on disk.
func FromIndexEdges(disk *diskio.Disk, dir string, edges []graph.IndexEdge, opt Options) (*Result, error) {
	if len(edges) == 0 {
		return nil, fmt.Errorf("preprocess: empty edge set")
	}
	d := runDegreer(edges)
	dense := make([]graph.Edge, len(edges))
	for i, e := range edges {
		s, _ := d.idOf(e.Src)
		t, _ := d.idOf(e.Dst)
		dense[i] = graph.Edge{Src: s, Dst: t, Weight: e.Weight}
	}
	return shard(disk, dir, dense, d, opt)
}

// FromEdgeList preprocesses an in-memory dense edge list. Isolated
// vertices (ids with no incident edge) are dropped and the remaining ids
// compacted, matching the degreer's behaviour on raw input.
func FromEdgeList(disk *diskio.Disk, dir string, g *graph.EdgeList, opt Options) (*Result, error) {
	if len(g.Edges) == 0 {
		return nil, fmt.Errorf("preprocess: empty edge set")
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	// Degree in original id space, then compact.
	out := make([]uint32, g.NumVertices)
	in := make([]uint32, g.NumVertices)
	for _, e := range g.Edges {
		out[e.Src]++
		in[e.Dst]++
	}
	remap := make([]uint32, g.NumVertices)
	idMap := make([]uint64, 0, g.NumVertices)
	var next uint32
	for v := uint32(0); v < g.NumVertices; v++ {
		if out[v] == 0 && in[v] == 0 {
			remap[v] = ^uint32(0)
			continue
		}
		remap[v] = next
		idMap = append(idMap, uint64(v))
		next++
	}
	d := &degreeing{
		idMap:    idMap,
		numVerts: next,
		outDeg:   make([]uint32, next),
		inDeg:    make([]uint32, next),
	}
	dense := make([]graph.Edge, len(g.Edges))
	for i, e := range g.Edges {
		s, t := remap[e.Src], remap[e.Dst]
		dense[i] = graph.Edge{Src: s, Dst: t, Weight: e.Weight}
		d.outDeg[s]++
		d.inDeg[t]++
	}
	res, err := shard(disk, dir, dense, d, opt)
	if err != nil {
		return nil, err
	}
	res.DroppedVertices = int64(g.NumVertices) - int64(next)
	return res, nil
}

// shard sorts the dense edges into row-major sub-shard order and writes
// the store.
func shard(disk *diskio.Disk, dir string, dense []graph.Edge, d *degreeing, opt Options) (*Result, error) {
	if opt.P <= 0 {
		return nil, fmt.Errorf("preprocess: P must be positive, got %d", opt.P)
	}
	n := d.numVerts
	P := opt.P
	if uint32(P) > n {
		return nil, fmt.Errorf("preprocess: P=%d exceeds vertex count %d", P, n)
	}
	size := (n + uint32(P) - 1) / uint32(P)
	w, err := storage.NewWriterFormat(disk, dir, opt.Name, n, int64(len(dense)), P, opt.Weighted, opt.format())
	if err != nil {
		return nil, err
	}
	ok := false
	defer func() {
		if !ok {
			w.Abort()
		}
	}()
	if err := w.WriteDegrees(d.outDeg, d.inDeg); err != nil {
		return nil, err
	}
	if err := w.WriteIDMap(d.idMap); err != nil {
		return nil, err
	}
	scratch := disk
	if opt.SortBudgetDisk != nil {
		scratch = opt.SortBudgetDisk
	}
	if err := writeShardSet(w, scratch, dense, size, P, opt, false); err != nil {
		return nil, err
	}
	if opt.Transpose {
		if err := w.BeginTranspose(); err != nil {
			return nil, err
		}
		if err := writeShardSet(w, scratch, dense, size, P, opt, true); err != nil {
			return nil, err
		}
	}
	if err := w.Finish(); err != nil {
		return nil, err
	}
	st, err := storage.Open(disk, dir)
	if err != nil {
		return nil, err
	}
	ok = true
	return &Result{Store: st, NumVertices: n, NumEdges: int64(len(dense))}, nil
}

// writeShardSet externally sorts edges into (srcInterval, dstInterval,
// dst, src) order — row-major sub-shard order with destination-sorted,
// source-tied edges inside each sub-shard — and streams them into the
// writer.
func writeShardSet(w *storage.Writer, scratch *diskio.Disk, dense []graph.Edge, size uint32, P int, opt Options, transpose bool) error {
	less := func(a, b graph.Edge) bool {
		ai, bi := a.Src/size, b.Src/size
		if ai != bi {
			return ai < bi
		}
		aj, bj := a.Dst/size, b.Dst/size
		if aj != bj {
			return aj < bj
		}
		if a.Dst != b.Dst {
			return a.Dst < b.Dst
		}
		return a.Src < b.Src
	}
	sorter := extsort.NewSorter(scratch, less, opt.maxRun())
	for _, e := range dense {
		if transpose {
			e = graph.Edge{Src: e.Dst, Dst: e.Src, Weight: e.Weight}
		}
		if err := sorter.Add(e); err != nil {
			return err
		}
	}
	it, err := sorter.Sort()
	if err != nil {
		return err
	}
	defer it.Close()

	// Stream edges into sub-shard builders. Invariant: when the builder
	// is dirty it owns slot cur (reserved, not yet appended); otherwise
	// cur is the next row-major slot to fill.
	b := newSubShardBuilder(opt.Weighted)
	cur := 0
	appendEmptyUpTo := func(slot int) error {
		for cur < slot {
			if err := w.AppendSubShard(&storage.SubShard{Offsets: []uint32{0}}); err != nil {
				return err
			}
			cur++
		}
		return nil
	}
	for {
		e, more := it.Next()
		if !more {
			break
		}
		slot := int(e.Src/size)*P + int(e.Dst/size)
		if slot < cur {
			return fmt.Errorf("preprocess: edges out of order (slot %d after %d)", slot, cur)
		}
		if b.dirty && slot != b.slot {
			if err := w.AppendSubShard(b.take()); err != nil {
				return err
			}
			cur++
		}
		if !b.dirty {
			if err := appendEmptyUpTo(slot); err != nil {
				return err
			}
		}
		b.add(e, slot)
	}
	if err := it.Err(); err != nil {
		return err
	}
	if b.dirty {
		if err := w.AppendSubShard(b.take()); err != nil {
			return err
		}
		cur++
	}
	return appendEmptyUpTo(P * P)
}

// subShardBuilder accumulates one sub-shard's CSR arrays from edges
// arriving in (dst, src) order.
type subShardBuilder struct {
	weighted bool
	dirty    bool
	slot     int
	dsts     []uint32
	offsets  []uint32
	srcs     []uint32
	weights  []float32
}

func newSubShardBuilder(weighted bool) *subShardBuilder {
	return &subShardBuilder{weighted: weighted, offsets: []uint32{0}}
}

func (b *subShardBuilder) add(e graph.Edge, slot int) {
	if !b.dirty {
		b.dirty = true
		b.slot = slot
	}
	if len(b.dsts) == 0 || b.dsts[len(b.dsts)-1] != e.Dst {
		b.dsts = append(b.dsts, e.Dst)
		b.offsets = append(b.offsets, uint32(len(b.srcs)))
	}
	b.srcs = append(b.srcs, e.Src)
	b.offsets[len(b.offsets)-1] = uint32(len(b.srcs))
	if b.weighted {
		b.weights = append(b.weights, e.Weight)
	}
}

func (b *subShardBuilder) take() *storage.SubShard {
	ss := &storage.SubShard{
		Dsts:    append([]uint32(nil), b.dsts...),
		Offsets: append([]uint32(nil), b.offsets...),
		Srcs:    append([]uint32(nil), b.srcs...),
	}
	if b.weighted {
		ss.Weights = append([]float32(nil), b.weights...)
	}
	b.dsts = b.dsts[:0]
	b.offsets = b.offsets[:1]
	b.srcs = b.srcs[:0]
	b.weights = b.weights[:0]
	b.dirty = false
	return ss
}
