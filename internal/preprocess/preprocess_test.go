package preprocess_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"nxgraph/internal/diskio"
	"nxgraph/internal/gen"
	"nxgraph/internal/graph"
	"nxgraph/internal/preprocess"
	"nxgraph/internal/storage"
)

func build(t testing.TB, g *graph.EdgeList, opt preprocess.Options) *preprocess.Result {
	t.Helper()
	disk := diskio.MustNew(t.TempDir(), diskio.Unthrottled)
	res, err := preprocess.FromEdgeList(disk, "st", g, opt)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { res.Store.Close() })
	return res
}

// collectEdges reads every sub-shard back into a flat edge list and
// verifies the DSSS invariants along the way:
//   - every destination of SS[i][j] lies in interval j, every source in i;
//   - destinations strictly ascend within a sub-shard;
//   - sources ascend within one destination's list.
func collectEdges(t *testing.T, st *storage.Store, transpose bool) map[[2]uint32]int {
	t.Helper()
	m := st.Meta()
	got := map[[2]uint32]int{}
	for i := 0; i < m.P; i++ {
		for j := 0; j < m.P; j++ {
			ss, err := st.ReadSubShard(i, j, transpose)
			if err != nil {
				t.Fatal(err)
			}
			ilo, ihi := m.IntervalRange(i)
			jlo, jhi := m.IntervalRange(j)
			for k := range ss.Dsts {
				d := ss.Dsts[k]
				if d < jlo || d >= jhi {
					t.Fatalf("SS[%d][%d] dst %d outside interval [%d,%d)", i, j, d, jlo, jhi)
				}
				if k > 0 && ss.Dsts[k-1] >= d {
					t.Fatalf("SS[%d][%d] dsts not strictly ascending", i, j)
				}
				var prev int64 = -1
				for e := ss.Offsets[k]; e < ss.Offsets[k+1]; e++ {
					s := ss.Srcs[e]
					if s < ilo || s >= ihi {
						t.Fatalf("SS[%d][%d] src %d outside interval [%d,%d)", i, j, s, ilo, ihi)
					}
					if int64(s) < prev {
						t.Fatalf("SS[%d][%d] srcs of dst %d not sorted", i, j, d)
					}
					prev = int64(s)
					got[[2]uint32{s, d}]++
				}
			}
		}
	}
	return got
}

func TestPartitionInvariants(t *testing.T) {
	g, err := gen.RMAT(gen.DefaultRMAT(10, 8, 3))
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []int{1, 3, 7, 16} {
		res := build(t, g, preprocess.Options{Name: "t", P: p, Transpose: true})
		// Every input edge appears exactly once (after compaction).
		remap := compactRemap(g)
		want := map[[2]uint32]int{}
		for _, e := range g.Edges {
			want[[2]uint32{remap[e.Src], remap[e.Dst]}]++
		}
		got := collectEdges(t, res.Store, false)
		if len(got) != len(want) {
			t.Fatalf("P=%d: %d distinct edges, want %d", p, len(got), len(want))
		}
		for k, c := range want {
			if got[k] != c {
				t.Fatalf("P=%d: edge %v count %d, want %d", p, k, got[k], c)
			}
		}
		// Transpose holds the reversed multiset.
		gotT := collectEdges(t, res.Store, true)
		for k, c := range want {
			rk := [2]uint32{k[1], k[0]}
			if gotT[rk] < c {
				t.Fatalf("P=%d: transpose missing edge %v", p, rk)
			}
		}
	}
}

func compactRemap(g *graph.EdgeList) []uint32 {
	out := make([]uint32, g.NumVertices)
	in := make([]uint32, g.NumVertices)
	for _, e := range g.Edges {
		out[e.Src]++
		in[e.Dst]++
	}
	remap := make([]uint32, g.NumVertices)
	var next uint32
	for v := uint32(0); v < g.NumVertices; v++ {
		if out[v] == 0 && in[v] == 0 {
			remap[v] = ^uint32(0)
			continue
		}
		remap[v] = next
		next++
	}
	return remap
}

func TestIsolatedVerticesDropped(t *testing.T) {
	g := &graph.EdgeList{NumVertices: 100, Edges: []graph.Edge{
		{Src: 10, Dst: 20}, {Src: 20, Dst: 99},
	}}
	res := build(t, g, preprocess.Options{Name: "t", P: 1})
	if res.NumVertices != 3 {
		t.Fatalf("n = %d, want 3", res.NumVertices)
	}
	if res.DroppedVertices != 97 {
		t.Fatalf("dropped = %d, want 97", res.DroppedVertices)
	}
	ids, err := res.Store.IDMap()
	if err != nil {
		t.Fatal(err)
	}
	if ids[0] != 10 || ids[1] != 20 || ids[2] != 99 {
		t.Fatalf("idmap: %v", ids)
	}
}

func TestFromIndexEdgesSparse(t *testing.T) {
	disk := diskio.MustNew(t.TempDir(), diskio.Unthrottled)
	edges := []graph.IndexEdge{
		{Src: 1_000_000_000_000, Dst: 5, Weight: 2},
		{Src: 5, Dst: 7, Weight: 1},
		{Src: 7, Dst: 1_000_000_000_000, Weight: 3},
	}
	res, err := preprocess.FromIndexEdges(disk, "st", edges, preprocess.Options{
		Name: "sparse", P: 2, Weighted: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer res.Store.Close()
	if res.NumVertices != 3 {
		t.Fatalf("n = %d", res.NumVertices)
	}
	ids, _ := res.Store.IDMap()
	if ids[0] != 5 || ids[1] != 7 || ids[2] != 1_000_000_000_000 {
		t.Fatalf("idmap: %v", ids)
	}
	out, in, _ := res.Store.Degrees()
	if out[2] != 1 || in[2] != 1 {
		t.Fatalf("degrees of big index: %v %v", out, in)
	}
}

func TestDegreesMatchGraph(t *testing.T) {
	g, _ := gen.Uniform(200, 2000, 4)
	res := build(t, g, preprocess.Options{Name: "t", P: 4})
	out, in, err := res.Store.Degrees()
	if err != nil {
		t.Fatal(err)
	}
	remap := compactRemap(g)
	wantOut := make([]uint32, res.NumVertices)
	wantIn := make([]uint32, res.NumVertices)
	for _, e := range g.Edges {
		wantOut[remap[e.Src]]++
		wantIn[remap[e.Dst]]++
	}
	for v := range out {
		if out[v] != wantOut[v] || in[v] != wantIn[v] {
			t.Fatalf("vertex %d degrees %d/%d, want %d/%d", v, out[v], in[v], wantOut[v], wantIn[v])
		}
	}
}

func TestErrors(t *testing.T) {
	disk := diskio.MustNew(t.TempDir(), diskio.Unthrottled)
	if _, err := preprocess.FromEdgeList(disk, "st", &graph.EdgeList{NumVertices: 5}, preprocess.Options{P: 2}); err == nil {
		t.Fatal("empty edge set accepted")
	}
	g := &graph.EdgeList{NumVertices: 2, Edges: []graph.Edge{{Src: 0, Dst: 1}}}
	if _, err := preprocess.FromEdgeList(disk, "st", g, preprocess.Options{P: 0}); err == nil {
		t.Fatal("P=0 accepted")
	}
	if _, err := preprocess.FromEdgeList(disk, "st", g, preprocess.Options{P: 10}); err == nil {
		t.Fatal("P > n accepted")
	}
	bad := &graph.EdgeList{NumVertices: 1, Edges: []graph.Edge{{Src: 0, Dst: 5}}}
	if _, err := preprocess.FromEdgeList(disk, "st", bad, preprocess.Options{P: 1}); err == nil {
		t.Fatal("invalid edge accepted")
	}
}

func TestExternalSortPathMatchesInMemory(t *testing.T) {
	g, _ := gen.RMAT(gen.DefaultRMAT(9, 8, 5))
	small := build(t, g, preprocess.Options{Name: "a", P: 4, MaxRunEdges: 1024})
	big := build(t, g, preprocess.Options{Name: "b", P: 4, MaxRunEdges: 1 << 24})
	a := collectEdges(t, small.Store, false)
	b := collectEdges(t, big.Store, false)
	if len(a) != len(b) {
		t.Fatalf("edge sets differ: %d vs %d", len(a), len(b))
	}
	for k, c := range a {
		if b[k] != c {
			t.Fatalf("edge %v: %d vs %d", k, c, b[k])
		}
	}
}

func TestQuickRandomGraphsRoundTrip(t *testing.T) {
	f := func(seed int64, pRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := uint32(10 + rng.Intn(200))
		m := int64(1 + rng.Intn(2000))
		g, err := gen.Uniform(n, m, seed)
		if err != nil {
			return false
		}
		p := 1 + int(pRaw)%8
		// Compaction drops isolated vertices, so a very sparse draw can
		// leave fewer vertices than P; clamp so the legitimate
		// "P exceeds vertex count" rejection doesn't fail the property.
		touched := make(map[uint32]struct{})
		for _, e := range g.Edges {
			touched[e.Src] = struct{}{}
			touched[e.Dst] = struct{}{}
		}
		if p > len(touched) {
			p = len(touched)
		}
		disk := diskio.MustNew(t.TempDir(), diskio.Unthrottled)
		res, err := preprocess.FromEdgeList(disk, "st", g, preprocess.Options{Name: "q", P: p})
		if err != nil {
			return false
		}
		defer res.Store.Close()
		var edges int64
		for i := 0; i < p; i++ {
			for j := 0; j < p; j++ {
				ss, err := res.Store.ReadSubShard(i, j, false)
				if err != nil {
					return false
				}
				edges += int64(ss.NumEdges())
			}
		}
		return edges == int64(len(g.Edges))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
