// Package refalgo contains straightforward in-memory reference
// implementations of every algorithm NXgraph runs. They serve two roles:
//
//   - test oracles: the out-of-core engine, in every strategy and sync
//     mode, must produce exactly (or, for PageRank, numerically) the same
//     answers;
//   - an "ideal in-memory system" baseline for the benchmark harness.
//
// All functions operate on graph.EdgeList / graph.Adjacency and make no
// attempt at being fast beyond asymptotics.
package refalgo

import (
	"container/heap"
	"math"

	"nxgraph/internal/graph"
)

// PageRank runs iters synchronous power iterations with damping d.
// Dangling mass (vertices with zero out-degree) is redistributed
// uniformly, matching the engine's PageRank program.
func PageRank(g *graph.EdgeList, d float64, iters int) []float64 {
	n := int(g.NumVertices)
	if n == 0 {
		return nil
	}
	deg := g.OutDegrees()
	rank := make([]float64, n)
	next := make([]float64, n)
	for i := range rank {
		rank[i] = 1 / float64(n)
	}
	for it := 0; it < iters; it++ {
		dangling := 0.0
		for v := 0; v < n; v++ {
			next[v] = 0
			if deg[v] == 0 {
				dangling += rank[v]
			}
		}
		for _, e := range g.Edges {
			next[e.Dst] += rank[e.Src] / float64(deg[e.Src])
		}
		base := (1-d)/float64(n) + d*dangling/float64(n)
		for v := 0; v < n; v++ {
			next[v] = base + d*next[v]
		}
		rank, next = next, rank
	}
	return rank
}

// PersonalizedPageRank runs iters iterations of random-walk-with-restart
// scoring from root with damping d; dangling mass returns to the root.
func PersonalizedPageRank(g *graph.EdgeList, root uint32, d float64, iters int) []float64 {
	n := int(g.NumVertices)
	deg := g.OutDegrees()
	rank := make([]float64, n)
	next := make([]float64, n)
	rank[root] = 1
	for it := 0; it < iters; it++ {
		dangling := 0.0
		for v := 0; v < n; v++ {
			next[v] = 0
			if deg[v] == 0 {
				dangling += rank[v]
			}
		}
		for _, e := range g.Edges {
			next[e.Dst] += rank[e.Src] / float64(deg[e.Src])
		}
		for v := 0; v < n; v++ {
			next[v] *= d
		}
		next[root] += (1 - d) + d*dangling
		rank, next = next, rank
	}
	return rank
}

// BFS returns the hop distance from root to every vertex; unreachable
// vertices get -1.
func BFS(a *graph.Adjacency, root graph.VertexID) []int64 {
	n := int(a.NumVertices)
	dist := make([]int64, n)
	for i := range dist {
		dist[i] = -1
	}
	if int(root) >= n {
		return dist
	}
	dist[root] = 0
	queue := []graph.VertexID{root}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, u := range a.Out(v) {
			if dist[u] < 0 {
				dist[u] = dist[v] + 1
				queue = append(queue, u)
			}
		}
	}
	return dist
}

// WCC returns, for each vertex, the smallest vertex id in its weakly
// connected component (treating edges as undirected), computed with
// union-find.
func WCC(g *graph.EdgeList) []graph.VertexID {
	n := int(g.NumVertices)
	parent := make([]uint32, n)
	for i := range parent {
		parent[i] = uint32(i)
	}
	var find func(x uint32) uint32
	find = func(x uint32) uint32 {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for _, e := range g.Edges {
		a, b := find(e.Src), find(e.Dst)
		if a == b {
			continue
		}
		if a < b { // keep the smaller id as root
			parent[b] = a
		} else {
			parent[a] = b
		}
	}
	out := make([]graph.VertexID, n)
	for i := range out {
		out[i] = find(uint32(i))
	}
	return out
}

// SCC returns, for each vertex, a canonical representative of its strongly
// connected component: the smallest vertex id in the component. Uses an
// iterative Tarjan algorithm.
func SCC(a *graph.Adjacency) []graph.VertexID {
	n := int(a.NumVertices)
	const unvisited = -1
	index := make([]int64, n)
	low := make([]int64, n)
	onStack := make([]bool, n)
	comp := make([]graph.VertexID, n)
	for i := range index {
		index[i] = unvisited
	}
	var stack []uint32
	var counter int64

	type frame struct {
		v  uint32
		ei int64
	}
	for start := 0; start < n; start++ {
		if index[start] != unvisited {
			continue
		}
		frames := []frame{{v: uint32(start)}}
		index[start] = counter
		low[start] = counter
		counter++
		stack = append(stack, uint32(start))
		onStack[start] = true
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			v := f.v
			if f.ei < a.Offsets[v+1]-a.Offsets[v] {
				u := a.Neighbors[a.Offsets[v]+f.ei]
				f.ei++
				if index[u] == unvisited {
					index[u] = counter
					low[u] = counter
					counter++
					stack = append(stack, u)
					onStack[u] = true
					frames = append(frames, frame{v: u})
				} else if onStack[u] && index[u] < low[v] {
					low[v] = index[u]
				}
				continue
			}
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				p := frames[len(frames)-1].v
				if low[v] < low[p] {
					low[p] = low[v]
				}
			}
			if low[v] == index[v] {
				// v roots an SCC; pop it and pick the min id.
				minID := uint32(math.MaxUint32)
				end := len(stack)
				i := end
				for {
					i--
					if stack[i] < minID {
						minID = stack[i]
					}
					if stack[i] == v {
						break
					}
				}
				for j := i; j < end; j++ {
					onStack[stack[j]] = false
					comp[stack[j]] = minID
				}
				stack = stack[:i]
			}
		}
	}
	return comp
}

// KCore returns each vertex's core number in the undirected view of g
// (self-loops add 2 to degree, parallel edges count), via bucketless
// iterative peeling.
func KCore(g *graph.EdgeList) []uint32 {
	n := int(g.NumVertices)
	deg := make([]int64, n)
	for _, e := range g.Edges {
		deg[e.Src]++
		deg[e.Dst]++
	}
	adj := graph.BuildAdjacency(g.Symmetrize())
	core := make([]uint32, n)
	removed := make([]bool, n)
	left := n
	for k := int64(1); left > 0; k++ {
		for {
			peeled := false
			for v := 0; v < n; v++ {
				if removed[v] || deg[v] >= k {
					continue
				}
				core[v] = uint32(k - 1)
				removed[v] = true
				left--
				peeled = true
				for _, u := range adj.Out(graph.VertexID(v)) {
					if !removed[u] {
						deg[u]--
					}
				}
			}
			if !peeled {
				break
			}
		}
	}
	return core
}

// SSSP returns single-source shortest path distances with Dijkstra;
// unreachable vertices get +Inf. Weights must be non-negative.
func SSSP(a *graph.Adjacency, root graph.VertexID) []float64 {
	n := int(a.NumVertices)
	dist := make([]float64, n)
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	if int(root) >= n {
		return dist
	}
	dist[root] = 0
	pq := &distHeap{{v: root, d: 0}}
	for pq.Len() > 0 {
		item := heap.Pop(pq).(distItem)
		if item.d > dist[item.v] {
			continue
		}
		nbrs := a.Out(item.v)
		ws := a.OutWeights(item.v)
		for i, u := range nbrs {
			w := 1.0
			if ws != nil {
				w = float64(ws[i])
			}
			if nd := item.d + w; nd < dist[u] {
				dist[u] = nd
				heap.Push(pq, distItem{v: u, d: nd})
			}
		}
	}
	return dist
}

type distItem struct {
	v graph.VertexID
	d float64
}

type distHeap []distItem

func (h distHeap) Len() int           { return len(h) }
func (h distHeap) Less(i, j int) bool { return h[i].d < h[j].d }
func (h distHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *distHeap) Push(x any)        { *h = append(*h, x.(distItem)) }
func (h *distHeap) Pop() any          { old := *h; n := len(old); x := old[n-1]; *h = old[:n-1]; return x }

// HITS runs iters iterations of Kleinberg's hub/authority computation with
// L2 normalization, returning (authority, hub) scores.
func HITS(g *graph.EdgeList, iters int) (auth, hub []float64) {
	n := int(g.NumVertices)
	auth = make([]float64, n)
	hub = make([]float64, n)
	for i := range hub {
		hub[i] = 1
		auth[i] = 1
	}
	for it := 0; it < iters; it++ {
		for i := range auth {
			auth[i] = 0
		}
		for _, e := range g.Edges {
			auth[e.Dst] += hub[e.Src]
		}
		normalize(auth)
		for i := range hub {
			hub[i] = 0
		}
		for _, e := range g.Edges {
			hub[e.Src] += auth[e.Dst]
		}
		normalize(hub)
	}
	return auth, hub
}

func normalize(x []float64) {
	var s float64
	for _, v := range x {
		s += v * v
	}
	if s == 0 {
		return
	}
	inv := 1 / math.Sqrt(s)
	for i := range x {
		x[i] *= inv
	}
}
