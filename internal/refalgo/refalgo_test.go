package refalgo

import (
	"math"
	"testing"

	"nxgraph/internal/graph"
)

// diamond: 0 -> {1,2} -> 3, plus 3 -> 0 making one big cycle.
func diamond() *graph.EdgeList {
	return &graph.EdgeList{NumVertices: 4, Edges: []graph.Edge{
		{Src: 0, Dst: 1}, {Src: 0, Dst: 2}, {Src: 1, Dst: 3}, {Src: 2, Dst: 3},
		{Src: 3, Dst: 0},
	}}
}

func TestPageRankSumsToOne(t *testing.T) {
	r := PageRank(diamond(), 0.85, 20)
	var sum float64
	for _, x := range r {
		sum += x
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("sum = %v", sum)
	}
}

func TestPageRankSymmetry(t *testing.T) {
	r := PageRank(diamond(), 0.85, 50)
	if math.Abs(r[1]-r[2]) > 1e-12 {
		t.Fatalf("symmetric vertices 1,2 have ranks %v, %v", r[1], r[2])
	}
	if r[3] <= r[1] {
		t.Fatalf("vertex 3 (two in-edges) should outrank vertex 1: %v vs %v", r[3], r[1])
	}
}

func TestPageRankDangling(t *testing.T) {
	// 0 -> 1, 1 dangling: mass must be conserved.
	g := &graph.EdgeList{NumVertices: 2, Edges: []graph.Edge{{Src: 0, Dst: 1}}}
	r := PageRank(g, 0.85, 100)
	if math.Abs(r[0]+r[1]-1) > 1e-12 {
		t.Fatalf("mass not conserved: %v", r[0]+r[1])
	}
	if r[1] <= r[0] {
		t.Fatalf("sink should accumulate rank: %v vs %v", r[1], r[0])
	}
}

func TestPageRankEmpty(t *testing.T) {
	if r := PageRank(&graph.EdgeList{}, 0.85, 5); r != nil {
		t.Fatal("empty graph should return nil")
	}
}

func TestBFSChain(t *testing.T) {
	g := &graph.EdgeList{NumVertices: 5, Edges: []graph.Edge{
		{Src: 0, Dst: 1}, {Src: 1, Dst: 2}, {Src: 2, Dst: 3},
	}}
	d := BFS(graph.BuildAdjacency(g), 0)
	want := []int64{0, 1, 2, 3, -1}
	for v := range want {
		if d[v] != want[v] {
			t.Fatalf("depth[%d] = %d, want %d", v, d[v], want[v])
		}
	}
}

func TestBFSPrefersShortest(t *testing.T) {
	g := diamond()
	d := BFS(graph.BuildAdjacency(g), 0)
	if d[3] != 2 {
		t.Fatalf("depth[3] = %d, want 2", d[3])
	}
}

func TestWCC(t *testing.T) {
	g := &graph.EdgeList{NumVertices: 6, Edges: []graph.Edge{
		{Src: 0, Dst: 1}, {Src: 2, Dst: 1}, // component {0,1,2}
		{Src: 4, Dst: 5}, // component {4,5}
	}}
	labels := WCC(g)
	if labels[0] != labels[1] || labels[1] != labels[2] {
		t.Fatalf("0,1,2 should share a label: %v", labels)
	}
	if labels[4] != labels[5] || labels[4] == labels[0] {
		t.Fatalf("4,5 separate component: %v", labels)
	}
	if labels[3] == labels[0] || labels[3] == labels[4] {
		t.Fatalf("isolated vertex 3 should keep its own label: %v", labels)
	}
	if labels[0] != 0 {
		t.Fatalf("component label should be min id, got %d", labels[0])
	}
}

func TestSCCKnown(t *testing.T) {
	// Two 2-cycles joined by a one-way edge, plus a singleton.
	g := &graph.EdgeList{NumVertices: 5, Edges: []graph.Edge{
		{Src: 0, Dst: 1}, {Src: 1, Dst: 0},
		{Src: 1, Dst: 2},
		{Src: 2, Dst: 3}, {Src: 3, Dst: 2},
	}}
	c := SCC(graph.BuildAdjacency(g))
	if c[0] != c[1] {
		t.Fatalf("0,1 same SCC: %v", c)
	}
	if c[2] != c[3] {
		t.Fatalf("2,3 same SCC: %v", c)
	}
	if c[0] == c[2] {
		t.Fatalf("one-way edge should not merge SCCs: %v", c)
	}
	if c[4] != 4 {
		t.Fatalf("singleton SCC label: %v", c)
	}
	if c[0] != 0 || c[2] != 2 {
		t.Fatalf("labels should be component minima: %v", c)
	}
}

func TestSCCFullCycle(t *testing.T) {
	n := uint32(1000)
	g := &graph.EdgeList{NumVertices: n}
	for v := uint32(0); v < n; v++ {
		g.Edges = append(g.Edges, graph.Edge{Src: v, Dst: (v + 1) % n})
	}
	c := SCC(graph.BuildAdjacency(g))
	for v := range c {
		if c[v] != 0 {
			t.Fatalf("cycle should be one SCC, c[%d]=%d", v, c[v])
		}
	}
}

func TestSSSPWeighted(t *testing.T) {
	g := &graph.EdgeList{NumVertices: 4, Weighted: true, Edges: []graph.Edge{
		{Src: 0, Dst: 1, Weight: 1}, {Src: 1, Dst: 3, Weight: 1},
		{Src: 0, Dst: 2, Weight: 5}, {Src: 2, Dst: 3, Weight: 0.5},
	}}
	d := SSSP(graph.BuildAdjacency(g), 0)
	if d[3] != 2 { // via 0->1->3, not 0->2->3 (5.5)
		t.Fatalf("d[3] = %v, want 2", d[3])
	}
	if !math.IsInf(SSSP(graph.BuildAdjacency(g), 3)[0], 1) {
		t.Fatal("0 unreachable from 3")
	}
}

func TestHITSNormalized(t *testing.T) {
	auth, hub := HITS(diamond(), 10)
	var sa, sh float64
	for i := range auth {
		sa += auth[i] * auth[i]
		sh += hub[i] * hub[i]
	}
	if math.Abs(sa-1) > 1e-9 || math.Abs(sh-1) > 1e-9 {
		t.Fatalf("norms %v, %v", sa, sh)
	}
	// Vertex 3 receives from both 1 and 2: top authority... vertex 0
	// receives only from 3. Sanity: auth[3] >= auth[1].
	if auth[3] < auth[1] {
		t.Fatalf("auth ordering wrong: %v", auth)
	}
}
