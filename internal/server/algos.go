package server

import (
	"context"
	"fmt"
	"math"
	"sort"
	"time"

	nxgraph "nxgraph"
)

// algoFunc executes one algorithm over an opened graph under ctx,
// reporting per-iteration progress, and shapes the outcome as a Result.
type algoFunc func(ctx context.Context, g *nxgraph.Graph, p Params, progress nxgraph.ProgressFunc) (*Result, error)

// Algorithms lists the algorithm names the server accepts.
func Algorithms() []string {
	names := make([]string, 0, len(algos))
	for name := range algos {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

var algos = map[string]algoFunc{
	"pagerank": runPageRank,
	"ppr":      runPPR,
	"bfs":      runBFS,
	"sssp":     runSSSP,
	"wcc":      runWCC,
	"scc":      runSCC,
	"hits":     runHITS,
	"kcore":    runKCore,
}

// fromEngineResult shapes an engine result into the serving form.
func fromEngineResult(algo, label string, res *nxgraph.Result) *Result {
	return &Result{
		Algo:           algo,
		ValueLabel:     label,
		Values:         res.Attrs,
		Iterations:     res.Iterations,
		EdgesTraversed: res.EdgesTraversed,
		Strategy:       res.Strategy.String(),
		ElapsedMS:      res.Elapsed.Milliseconds(),
		Trace:          res.Trace,
	}
}

// sanitizeInf rewrites +Inf (unreachable in bfs/sssp) to -1 in place so
// the array is JSON-encodable.
func sanitizeInf(vals []float64) []float64 {
	for i, v := range vals {
		if math.IsInf(v, 1) {
			vals[i] = -1
		}
	}
	return vals
}

func runPageRank(ctx context.Context, g *nxgraph.Graph, p Params, progress nxgraph.ProgressFunc) (*Result, error) {
	var (
		res *nxgraph.Result
		err error
	)
	if p.Eps > 0 {
		res, err = g.PageRankConvergeContext(ctx, p.Damping, p.Eps, p.Iters, progress)
	} else {
		res, err = g.PageRankContext(ctx, p.Damping, p.Iters, progress)
	}
	if err != nil {
		return nil, err
	}
	return fromEngineResult("pagerank", "rank", res), nil
}

func runPPR(ctx context.Context, g *nxgraph.Graph, p Params, progress nxgraph.ProgressFunc) (*Result, error) {
	res, err := g.PersonalizedPageRankContext(ctx, p.Root, p.Damping, p.Iters, progress)
	if err != nil {
		return nil, err
	}
	return fromEngineResult("ppr", "score", res), nil
}

func runBFS(ctx context.Context, g *nxgraph.Graph, p Params, progress nxgraph.ProgressFunc) (*Result, error) {
	res, err := g.BFSContext(ctx, p.Root, progress)
	if err != nil {
		return nil, err
	}
	out := fromEngineResult("bfs", "depth", res)
	out.Values = sanitizeInf(out.Values)
	out.Ascending = true
	return out, nil
}

func runSSSP(ctx context.Context, g *nxgraph.Graph, p Params, progress nxgraph.ProgressFunc) (*Result, error) {
	res, err := g.SSSPContext(ctx, p.Root, progress)
	if err != nil {
		return nil, err
	}
	out := fromEngineResult("sssp", "distance", res)
	out.Values = sanitizeInf(out.Values)
	out.Ascending = true
	return out, nil
}

func runWCC(ctx context.Context, g *nxgraph.Graph, p Params, progress nxgraph.ProgressFunc) (*Result, error) {
	res, err := g.WCCContext(ctx, progress)
	if err != nil {
		return nil, err
	}
	out := fromEngineResult("wcc", "component", res)
	comps := make(map[int64]struct{})
	for _, v := range out.Values {
		comps[int64(v)] = struct{}{}
	}
	out.Stats = map[string]float64{"num_components": float64(len(comps))}
	return out, nil
}

func runSCC(ctx context.Context, g *nxgraph.Graph, p Params, progress nxgraph.ProgressFunc) (*Result, error) {
	res, err := g.SCCContext(ctx, progress)
	if err != nil {
		return nil, err
	}
	vals := make([]float64, len(res.Components))
	for i, c := range res.Components {
		vals[i] = float64(c)
	}
	return &Result{
		Algo:       "scc",
		ValueLabel: "component",
		Values:     vals,
		Stats: map[string]float64{
			"num_components": float64(res.NumComponents()),
			"rounds":         float64(res.Rounds),
		},
		Iterations:     res.Iterations,
		EdgesTraversed: res.EdgesTraversed,
		ElapsedMS:      res.Elapsed.Milliseconds(),
	}, nil
}

func runHITS(ctx context.Context, g *nxgraph.Graph, p Params, progress nxgraph.ProgressFunc) (*Result, error) {
	start := time.Now()
	// HITSContext has no engine.Result; recover the traversal count
	// from its per-half-step progress stream (Edges is cumulative).
	var edges int64
	auth, hub, err := g.HITSContext(ctx, p.Iters, func(pr nxgraph.Progress) {
		edges = pr.Edges
		if progress != nil {
			progress(pr)
		}
	})
	if err != nil {
		return nil, err
	}
	return &Result{
		Algo:       "hits",
		ValueLabel: "authority",
		Values:     auth,
		Aux:        map[string][]float64{"hub": hub},
		// Each HITS iteration is two engine half-steps; report engine
		// iterations so the count matches the job's progress stream.
		Iterations:     2 * p.Iters,
		EdgesTraversed: edges,
		ElapsedMS:      time.Since(start).Milliseconds(),
	}, nil
}

func runKCore(ctx context.Context, g *nxgraph.Graph, p Params, progress nxgraph.ProgressFunc) (*Result, error) {
	res, err := g.KCoreContext(ctx, progress)
	if err != nil {
		return nil, err
	}
	vals := make([]float64, len(res.Core))
	for i, c := range res.Core {
		vals[i] = float64(c)
	}
	return &Result{
		Algo:       "kcore",
		ValueLabel: "core",
		Values:     vals,
		Stats: map[string]float64{
			"max_core": float64(res.MaxCore),
			"passes":   float64(res.Passes),
		},
		Iterations:     res.Iterations,
		EdgesTraversed: res.EdgesTraversed,
		ElapsedMS:      res.Elapsed.Milliseconds(),
	}, nil
}

// validateAlgo checks the algorithm exists and its parameters are sane
// for the target graph before the job is queued, so obvious mistakes
// fail synchronously at submit time.
func validateAlgo(algo string, p Params, g *nxgraph.Graph) error {
	if _, ok := algos[algo]; !ok {
		return fmt.Errorf("unknown algorithm %q (have %v)", algo, Algorithms())
	}
	switch algo {
	case "bfs", "sssp", "ppr":
		if p.Root >= g.NumVertices() {
			return fmt.Errorf("%s root %d out of range n=%d", algo, p.Root, g.NumVertices())
		}
	case "wcc", "scc", "hits", "kcore":
		if !g.HasTranspose() {
			return fmt.Errorf("%s requires a store preprocessed with Transpose", algo)
		}
	}
	if p.Iters < 0 {
		return fmt.Errorf("iters must be >= 0")
	}
	if p.Damping < 0 || p.Damping >= 1 || math.IsNaN(p.Damping) {
		return fmt.Errorf("damping must be in [0, 1)")
	}
	if p.Eps < 0 || math.IsNaN(p.Eps) {
		return fmt.Errorf("eps must be >= 0")
	}
	return nil
}
