package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"sort"
	"sync"
	"testing"
	"time"

	nxgraph "nxgraph"
	"nxgraph/internal/graph"
)

// httpJSON is a goroutine-safe doJSON: it returns errors instead of
// calling into testing.T, so churn goroutines can report through a
// channel.
func httpJSON(method, url string, body any) (int, map[string]any, error) {
	var rd *bytes.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			return 0, nil, err
		}
		rd = bytes.NewReader(b)
	} else {
		rd = bytes.NewReader(nil)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		return 0, nil, err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	out := map[string]any{}
	if resp.StatusCode != http.StatusNoContent {
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			return resp.StatusCode, nil, err
		}
	}
	return resp.StatusCode, out, nil
}

// waitTerminal polls job id until it reaches a terminal state.
func waitTerminal(base, id string) (map[string]any, error) {
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		code, body, err := httpJSON("GET", base+"/v1/jobs/"+id, nil)
		if err != nil {
			return nil, err
		}
		if code != http.StatusOK {
			return nil, fmt.Errorf("poll %s: status %d (%v)", id, code, body)
		}
		if s, _ := body["state"].(string); s == "done" || s == "failed" || s == "cancelled" {
			return body, nil
		}
		time.Sleep(2 * time.Millisecond)
	}
	return nil, fmt.Errorf("poll %s: no terminal state before deadline", id)
}

// churnPageRank submits a pagerank job, waits it out, and sanity-checks
// the result (done, n values, ranks summing to ~1 — a mixed-generation
// read would break conservation long before the final equality check).
func churnPageRank(base string, iters, n int) error {
	code, body, err := httpJSON("POST", base+"/v1/graphs/g/jobs",
		map[string]any{"algo": "pagerank", "params": map[string]any{"iters": iters}})
	if err != nil {
		return err
	}
	if code != http.StatusAccepted {
		return fmt.Errorf("submit: status %d (%v)", code, body)
	}
	id, _ := body["id"].(string)
	end, err := waitTerminal(base, id)
	if err != nil {
		return err
	}
	if end["state"] != "done" {
		return fmt.Errorf("job %s ended %v (error %v)", id, end["state"], end["error"])
	}
	code, res, err := httpJSON("GET", base+"/v1/jobs/"+id+"/result", nil)
	if err != nil || code != http.StatusOK {
		return fmt.Errorf("result %s: status %d err %v", id, code, err)
	}
	raw, _ := res["values"].([]any)
	if len(raw) != n {
		return fmt.Errorf("job %s returned %d values, want %d", id, len(raw), n)
	}
	sum := 0.0
	for _, v := range raw {
		f, _ := v.(float64)
		sum += f
	}
	if math.Abs(sum-1) > 1e-6 {
		return fmt.Errorf("job %s ranks sum to %g", id, sum)
	}
	return nil
}

// TestSharedCacheConcurrentIngestCompact is the stale-generation gate:
// concurrent PageRank jobs on one graph share the block cache while
// edges are ingested mid-run and background compactions swap the store
// out underneath — repeatedly. If any job ever gathered a block from a
// retired store generation, its ranks would stop matching a from-scratch
// build of the final edge set (and rank conservation would break during
// the churn). Run under -race this also proves the cache/pipeline
// memory model.
func TestSharedCacheConcurrentIngestCompact(t *testing.T) {
	const n = 48
	seen := map[[2]int]bool{}
	g := &graph.EdgeList{NumVertices: n}
	addEdge := func(src, dst int) bool {
		if src == dst || seen[[2]int{src, dst}] {
			return false
		}
		seen[[2]int{src, dst}] = true
		g.Edges = append(g.Edges, graph.Edge{Src: uint32(src), Dst: uint32(dst), Weight: 1})
		return true
	}
	for i := 0; i < n; i++ {
		addEdge(i, (i+1)%n)
		addEdge(i, (i*7+3)%n)
	}
	dir := t.TempDir()
	gr, err := nxgraph.Build(dir, g, nxgraph.Options{P: 3})
	if err != nil {
		t.Fatal(err)
	}
	gr.Close()

	// A small block-cache budget keeps eviction churning alongside the
	// generation swaps.
	s := New(Config{Workers: 3, BlockCacheBytes: 1 << 20})
	if err := s.OpenGraph("g", dir, nxgraph.Options{}); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})

	// Pre-plan each round's ingest batch (distinct, loop-free edges) so
	// the fresh-build oracle sees exactly the same final edge set.
	final := &graph.EdgeList{NumVertices: n}
	final.Edges = append(final.Edges, g.Edges...)
	rounds := make([][]map[string]any, 3)
	next := 1
	for r := range rounds {
		for len(rounds[r]) < 8 {
			src, dst := next%n, (next*13+r)%n
			next++
			if !addEdge(src, dst) {
				continue
			}
			rounds[r] = append(rounds[r], map[string]any{"src": src, "dst": dst})
			final.Edges = append(final.Edges, graph.Edge{Src: uint32(src), Dst: uint32(dst), Weight: 1})
		}
	}

	for r, batch := range rounds {
		var wg sync.WaitGroup
		errc := make(chan error, 32)
		for w := 0; w < 3; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for k := 0; k < 3; k++ {
					// Distinct iteration counts defeat the result cache,
					// so every job runs the engine.
					if err := churnPageRank(ts.URL, 5+w*3+k+r, n); err != nil {
						errc <- err
					}
				}
			}(w)
		}
		wg.Add(1)
		go func(batch []map[string]any) {
			defer wg.Done()
			code, body, err := httpJSON("POST", ts.URL+"/v1/graphs/g/edges", map[string]any{"add": batch})
			if err != nil {
				errc <- err
			} else if code != http.StatusAccepted {
				errc <- fmt.Errorf("ingest: status %d (%v)", code, body)
			}
		}(batch)
		wg.Add(1)
		go func() {
			defer wg.Done()
			code, body, err := httpJSON("POST", ts.URL+"/v1/graphs/g/compact", nil)
			if err != nil {
				errc <- err
				return
			}
			if code != http.StatusAccepted && code != http.StatusOK {
				errc <- fmt.Errorf("compact: status %d (%v)", code, body)
				return
			}
			id, _ := body["id"].(string)
			end, err := waitTerminal(ts.URL, id)
			if err != nil {
				errc <- err
			} else if end["state"] != "done" {
				errc <- fmt.Errorf("compaction ended %v (error %v)", end["state"], end["error"])
			}
		}()
		wg.Wait()
		close(errc)
		for err := range errc {
			t.Fatal(err)
		}
	}

	// Quiesced: the final served graph (base + any still-pending deltas)
	// must rank exactly like a from-scratch build of the final edge set.
	// Dense id assignment differs across rebuilds, so compare the rank
	// multisets.
	code, body, err := httpJSON("POST", ts.URL+"/v1/graphs/g/jobs",
		map[string]any{"algo": "pagerank", "params": map[string]any{"iters": 30}})
	if err != nil || code != http.StatusAccepted {
		t.Fatalf("final submit: code %d err %v", code, err)
	}
	id, _ := body["id"].(string)
	if end, err := waitTerminal(ts.URL, id); err != nil || end["state"] != "done" {
		t.Fatalf("final job: %v %v", end, err)
	}
	_, res, err := httpJSON("GET", ts.URL+"/v1/jobs/"+id+"/result", nil)
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := res["values"].([]any)
	got := make([]float64, len(raw))
	for i, v := range raw {
		got[i], _ = v.(float64)
	}

	freshDir := t.TempDir()
	fg, err := nxgraph.Build(freshDir, final, nxgraph.Options{P: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer fg.Close()
	want, err := fg.PageRank(0.85, 30)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want.Attrs) {
		t.Fatalf("vertex counts differ: %d vs %d", len(got), len(want.Attrs))
	}
	wantSorted := append([]float64(nil), want.Attrs...)
	sort.Float64s(wantSorted)
	sort.Float64s(got)
	for i := range got {
		if math.Abs(got[i]-wantSorted[i]) > 1e-6 {
			t.Fatalf("rank multiset differs at %d: %g vs %g (stale block served?)", i, got[i], wantSorted[i])
		}
	}

	bs := s.BlockCacheStats()
	if bs.PinnedBytes != 0 {
		t.Fatalf("pinned bytes leaked after quiesce: %+v", bs)
	}
	if bs.Hits == 0 {
		t.Fatalf("shared cache never hit: %+v", bs)
	}
}
