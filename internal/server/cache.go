package server

import (
	"container/list"
	"sync"

	"nxgraph/internal/metrics"
)

// resultCache is a size-bounded LRU of completed algorithm results keyed
// by the canonical (graph, algorithm, params) string. The bound is in
// approximate bytes (result arrays dominate); inserting over budget
// evicts from the cold end. A single result larger than the whole budget
// is not cached.
type resultCache struct {
	mu       sync.Mutex
	maxBytes int64
	curBytes int64
	ll       *list.List               // front = most recently used
	items    map[string]*list.Element // key -> element holding *cacheEntry
	stats    *metrics.ServerStats
}

type cacheEntry struct {
	key   string
	res   *Result
	bytes int64
}

func newResultCache(maxBytes int64, stats *metrics.ServerStats) *resultCache {
	return &resultCache{
		maxBytes: maxBytes,
		ll:       list.New(),
		items:    make(map[string]*list.Element),
		stats:    stats,
	}
}

// get returns the cached result for key, refreshing its recency.
func (c *resultCache) get(key string) (*Result, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).res, true
}

// put inserts (or refreshes) a result and evicts LRU entries until the
// byte budget holds again.
func (c *resultCache) put(key string, res *Result) {
	size := res.sizeBytes()
	c.mu.Lock()
	defer c.mu.Unlock()
	if size > c.maxBytes {
		return
	}
	if el, ok := c.items[key]; ok {
		ent := el.Value.(*cacheEntry)
		c.curBytes += size - ent.bytes
		ent.res, ent.bytes = res, size
		c.ll.MoveToFront(el)
	} else {
		c.items[key] = c.ll.PushFront(&cacheEntry{key: key, res: res, bytes: size})
		c.curBytes += size
	}
	for c.curBytes > c.maxBytes {
		el := c.ll.Back()
		if el == nil {
			break
		}
		ent := el.Value.(*cacheEntry)
		c.ll.Remove(el)
		delete(c.items, ent.key)
		c.curBytes -= ent.bytes
	}
	c.publish()
}

// invalidateGraph drops every entry belonging to graph (called when a
// graph is closed, mutated by ingestion, or replaced by compaction, so
// stale results cannot outlive their store). Keys are either
// "uid|algo..." (no pending deltas) or "uid@N|algo..." (delta-versioned
// — see cacheKey); both spellings must be purged, or a post-compaction
// pending count that climbs back to a previously seen N would alias a
// pre-compaction entry.
func (c *resultCache) invalidateGraph(graph string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for el := c.ll.Front(); el != nil; {
		next := el.Next()
		ent := el.Value.(*cacheEntry)
		if k := ent.key; len(k) > len(graph) && k[:len(graph)] == graph &&
			(k[len(graph)] == '|' || k[len(graph)] == '@') {
			c.ll.Remove(el)
			delete(c.items, ent.key)
			c.curBytes -= ent.bytes
		}
		el = next
	}
	c.publish()
}

// publish pushes entry/byte gauges to the stats sink. Caller holds mu.
func (c *resultCache) publish() {
	if c.stats == nil {
		return
	}
	c.stats.CacheEntries.Store(int64(c.ll.Len()))
	c.stats.CacheBytes.Store(c.curBytes)
}

// len returns the entry count (for tests).
func (c *resultCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
