package server

import (
	"fmt"
	"testing"

	"nxgraph/internal/metrics"
)

func mkResult(nVals int) *Result {
	return &Result{Algo: "pagerank", Values: make([]float64, nVals)}
}

func TestCacheLRUEviction(t *testing.T) {
	stats := &metrics.ServerStats{}
	// Each 100-value result is 800 + 256 bytes; budget fits three.
	c := newResultCache(3*1056+10, stats)
	for i := 0; i < 4; i++ {
		c.put(fmt.Sprintf("g|k%d", i), mkResult(100))
	}
	if c.len() != 3 {
		t.Fatalf("cache holds %d entries, want 3", c.len())
	}
	if _, ok := c.get("g|k0"); ok {
		t.Fatal("oldest entry not evicted")
	}
	if _, ok := c.get("g|k3"); !ok {
		t.Fatal("newest entry missing")
	}
	if stats.CacheEntries.Load() != 3 {
		t.Fatalf("entries gauge %d, want 3", stats.CacheEntries.Load())
	}

	// Touching k1 promotes it; inserting k4 must evict k2 instead.
	c.get("g|k1")
	c.put("g|k4", mkResult(100))
	if _, ok := c.get("g|k1"); !ok {
		t.Fatal("recently used entry evicted")
	}
	if _, ok := c.get("g|k2"); ok {
		t.Fatal("cold entry survived eviction")
	}
}

func TestCacheRejectsOversized(t *testing.T) {
	c := newResultCache(100, nil)
	c.put("g|big", mkResult(1000))
	if c.len() != 0 {
		t.Fatal("oversized result cached")
	}
}

func TestCacheInvalidateGraph(t *testing.T) {
	c := newResultCache(1<<20, nil)
	c.put("a|k1", mkResult(10))
	c.put("a|k2", mkResult(10))
	c.put("b|k1", mkResult(10))
	c.invalidateGraph("a")
	if c.len() != 1 {
		t.Fatalf("cache holds %d entries after invalidate, want 1", c.len())
	}
	if _, ok := c.get("b|k1"); !ok {
		t.Fatal("unrelated graph entry dropped")
	}
}

func TestCacheInvalidateGraphDeltaKeys(t *testing.T) {
	c := newResultCache(1<<20, nil)
	// Both key spellings must be purged: plain and delta-versioned (see
	// cacheKey) — otherwise a post-compaction pending count that climbs
	// back to a previously cached value would alias a stale result.
	c.put("g#1|pagerank|d=0.85", mkResult(10))
	c.put("g#1@3|pagerank|d=0.85", mkResult(10))
	c.put("g#12@3|pagerank|d=0.85", mkResult(10)) // other uid, shared prefix
	c.invalidateGraph("g#1")
	if c.len() != 1 {
		t.Fatalf("cache holds %d entries after invalidate, want 1", c.len())
	}
	if _, ok := c.get("g#12@3|pagerank|d=0.85"); !ok {
		t.Fatal("entry of a different registration dropped")
	}
}
