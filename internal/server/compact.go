package server

import (
	"context"
	"errors"
	"fmt"
	iofs "io/fs"
	"os"
	"path/filepath"
	"time"

	nxgraph "nxgraph"
	"nxgraph/internal/blockcache"
	"nxgraph/internal/preprocess"
	"nxgraph/internal/storage"
	"nxgraph/internal/wal"
)

// Store directory names under a graph's root dir. The served store
// always lives at storeDirName; compaction builds into compactDirName
// and swaps via compactPrevName, so a crash mid-swap leaves at most one
// recoverable rename to undo by hand.
const (
	storeDirName    = "dsss"
	compactDirName  = "dsss.compact"
	compactPrevName = "dsss.prev"
)

// executeCompact drives a compaction job to a terminal state — the
// jobCompact counterpart of execute.
func (s *scheduler) executeCompact(j *Job) {
	ctx, cancel := context.WithCancel(s.baseCtx)
	defer cancel()

	j.mu.Lock()
	if j.state != Pending { // cancelled while queued
		j.mu.Unlock()
		return
	}
	j.state = Running
	j.started = time.Now()
	j.cancel = cancel
	j.mu.Unlock()
	s.stats.JobsStarted.Add(1)
	s.stats.RunningJobs.Add(1)
	defer s.stats.RunningJobs.Add(-1)
	s.stats.CompactionsStarted.Add(1)
	s.log.Info("compaction started", "job", j.ID, "graph", j.Graph,
		"pending_deltas", j.entry.deltaCount())

	res, err := s.runCompaction(ctx, j.entry)

	j.mu.Lock()
	j.cancel = nil
	j.finished = time.Now()
	switch {
	case err == nil:
		j.state = Done
		j.result = res
		s.stats.JobsCompleted.Add(1)
		s.stats.CompactionsCompleted.Add(1)
	case errors.Is(err, context.Canceled):
		j.state = Cancelled
		j.err = context.Canceled
		s.stats.JobsCancelled.Add(1)
	default:
		j.state = Failed
		j.err = err
		s.stats.JobsFailed.Add(1)
		s.stats.CompactionsFailed.Add(1)
	}
	close(j.done)
	j.mu.Unlock()
	s.retire(j, res)

	switch {
	case err == nil:
		attrs := []any{"job", j.ID, "graph", j.Graph,
			"duration_ms", j.finished.Sub(j.started).Milliseconds()}
		if res != nil {
			attrs = append(attrs, "compacted_ops", int64(res.Stats["compacted_ops"]))
		}
		s.log.Info("compaction completed", attrs...)
	case errors.Is(err, context.Canceled):
		s.log.Info("compaction cancelled", "job", j.ID, "graph", j.Graph)
	default:
		s.log.Error("compaction failed", "job", j.ID, "graph", j.Graph, "error", err.Error())
	}
}

// runCompaction folds the entry's checkpointed delta prefix into a
// rebuilt store and atomically swaps it in.
//
// Phases:
//
//  1. checkpoint — mark the log; ops ingested afterwards stay pending
//     and survive the swap (Advance rebases them onto the new store);
//  2. rebuild — stream base + deltas into a fresh store directory. The
//     base store is only read, so queries (base + overlay) keep being
//     served concurrently; the graph's run slot is never claimed. A
//     MANIFEST (store generation + the WAL sequence the checkpoint
//     covers) is written into the rebuilt directory *before* the swap,
//     so the rename that publishes the store atomically publishes its
//     replay start point with it;
//  3. swap — under runMu (no engine run in flight): close the old
//     graph, rotate directories (dsss → dsss.prev, dsss.compact →
//     dsss), reopen, rebase the delta log, and purge the graph's
//     result-cache entries before releasing the lock, so no stale
//     result can be served or inserted after the swap. WAL segments
//     the new manifest makes redundant are garbage-collected last —
//     a crash anywhere in between merely replays batches the
//     sequence-number dedup skips.
//
// On any swap failure the directories are rolled back and the old store
// reopened — the graph keeps serving base + overlay as if the
// compaction had never run.
func (s *scheduler) runCompaction(ctx context.Context, e *graphEntry) (*Result, error) {
	start := time.Now()
	delta := e.deltaLog()
	var mark int
	var markSeq uint64
	if delta != nil {
		mark, markSeq = delta.CheckpointSeq()
	}
	if mark == 0 {
		return &Result{
			Algo:      "compact",
			Stats:     map[string]float64{"compacted_ops": 0},
			ElapsedMS: time.Since(start).Milliseconds(),
		}, nil
	}

	g := e.live()
	st := g.Engine().Store()
	meta := st.Meta()
	disk := st.Disk()
	tmpAbs := disk.Path(compactDirName)
	os.RemoveAll(tmpAbs)
	res, err := delta.Rebuild(ctx, mark, disk, compactDirName, preprocess.Options{
		Name:      meta.Name,
		P:         meta.P,
		Weighted:  meta.Weighted,
		Transpose: meta.HasTranspose,
		// Compaction always writes the current default format, so a v1
		// store silently upgrades to the compressed encoding on its first
		// compaction (the meta version travels with the rebuilt store).
		Format: storage.DefaultFormatVersion,
	})
	if err != nil {
		os.RemoveAll(tmpAbs)
		return nil, err
	}
	newVerts, newEdges := res.NumVertices, res.NumEdges
	// The rebuilt store is reopened below at its final path; the engine
	// opens attribute/hub files lazily by path, so serving from a store
	// whose directory was renamed underneath it would misroute them.
	res.Store.Close()
	// Flush the rebuilt store to stable storage while it is still
	// private: the preprocess write path never fsyncs, and once the swap
	// below durably GCs the WAL prefix that produced these edges, a
	// power loss would have nothing left to rebuild them from.
	if err := syncTree(tmpAbs); err != nil {
		os.RemoveAll(tmpAbs)
		return nil, fmt.Errorf("server: graph %q: sync rebuilt store: %w", e.name, err)
	}
	// Stamp the rebuilt store with its WAL position while it is still
	// private: once the swap renames publish it, replay-on-open must
	// know that batches up to markSeq are already folded into its
	// edges.
	if err := wal.WriteManifest(tmpAbs, wal.Manifest{
		Generation:     e.storeGen + 1,
		LastAppliedSeq: markSeq,
	}); err != nil {
		os.RemoveAll(tmpAbs)
		return nil, fmt.Errorf("server: graph %q: write manifest: %w", e.name, err)
	}
	if err := ctx.Err(); err != nil {
		os.RemoveAll(tmpAbs)
		return nil, err
	}

	e.runMu.Lock()
	defer e.runMu.Unlock()
	if e.closed || e.draining.Load() {
		os.RemoveAll(tmpAbs)
		return nil, fmt.Errorf("server: graph %q closed during compaction", e.name)
	}
	cur := disk.Path(storeDirName)
	prev := disk.Path(compactPrevName)
	os.RemoveAll(prev)
	e.live().Close()
	if err := os.Rename(cur, prev); err != nil {
		os.RemoveAll(tmpAbs)
		return nil, errors.Join(err, e.reopenLocked())
	}
	if err := os.Rename(tmpAbs, cur); err != nil {
		err = errors.Join(err, os.Rename(prev, cur))
		os.RemoveAll(tmpAbs)
		return nil, errors.Join(err, e.reopenLocked())
	}
	ng, err := nxgraph.Open(e.dir, e.opt)
	if err == nil {
		// Purge the graph's cache entries BEFORE installing the rebased
		// log: submit's cache-hit path reads the delta count without
		// runMu, so once the rebased log (with its reset pending count)
		// is visible, a new submission could build a key that aliases a
		// pre-compaction entry. Purging first closes that window —
		// nothing can repopulate the old entries while we hold runMu
		// (all cache puts happen under it), and if the swap still rolls
		// back below, a cold cache is merely a wasted purge.
		s.cache.invalidateGraph(e.uid)
		e.deltaMu.Lock()
		nd, aerr := delta.Advance(mark, ng.Engine().Store())
		if aerr == nil {
			e.delta = nd
		}
		e.deltaMu.Unlock()
		if aerr != nil {
			ng.Close()
		}
		err = aerr
	}
	if err != nil {
		// Roll the directories back, resume serving the old store, and
		// drop the orphaned rebuild — it is a full store-sized copy that
		// would otherwise sit on disk until some later compaction.
		err = errors.Join(err, os.Rename(cur, tmpAbs), os.Rename(prev, cur), e.reopenLocked())
		os.RemoveAll(tmpAbs)
		return nil, err
	}
	// Key the rebuilt store under a fresh block-cache generation and
	// retire the old one. We hold runMu, so no run is in flight and no
	// new run can observe the old generation: blocks decoded from the
	// store now at dsss.prev are unreachable the moment the swap
	// publishes. Ingestion-only changes never reach this path — base
	// sub-shards are immutable under the delta overlay, so warm blocks
	// survive edge ingest and only a real store swap evicts them.
	oldGen := e.bcGen
	e.bcGen = blockcache.NextGeneration()
	e.bind(ng)
	e.graph.Store(ng)
	if e.cache != nil {
		e.cache.InvalidateGeneration(oldGen)
	}
	os.RemoveAll(prev)
	e.storeGen++
	// Make the swap renames durable before GC'ing the WAL prefix: until
	// the graph root's directory entries are on stable storage, a power
	// loss can roll the root back to the old store, and the only thing
	// that can re-create the compacted batches is the very prefix the GC
	// removes. On sync failure keep the segments — replay dedups them.
	if err := (wal.OSFS{}).SyncDir(disk.Root()); err != nil {
		s.log.Warn("graph root sync failed; keeping wal segments",
			"graph", e.name, "error", err.Error())
	} else if e.wal != nil {
		// The published manifest covers every batch up to markSeq, so WAL
		// segments holding only those batches are dead weight: drop them.
		// Failure is cosmetic — replay dedups whatever survives.
		if err := e.wal.TruncateThrough(markSeq); err != nil {
			s.log.Warn("wal gc failed", "graph", e.name, "error", err.Error())
		}
	}
	s.stats.DeltaPending.Add(-int64(mark))

	pendingAfter := 0
	if d := e.deltaLog(); d != nil {
		pendingAfter = d.Pending()
	}
	return &Result{
		Algo: "compact",
		Stats: map[string]float64{
			"compacted_ops": float64(mark),
			"num_vertices":  float64(newVerts),
			"num_edges":     float64(newEdges),
			"pending_after": float64(pendingAfter),
		},
		ElapsedMS: time.Since(start).Milliseconds(),
	}, nil
}

// syncTree fsyncs every regular file under root and then the
// directories themselves (children before parents), putting a freshly
// rebuilt store on stable storage before its WAL coverage is dropped.
func syncTree(root string) error {
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d iofs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			dirs = append(dirs, path)
			return nil
		}
		if !d.Type().IsRegular() {
			return nil
		}
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		serr := f.Sync()
		if cerr := f.Close(); serr == nil {
			serr = cerr
		}
		return serr
	})
	if err != nil {
		return err
	}
	for i := len(dirs) - 1; i >= 0; i-- {
		if err := (wal.OSFS{}).SyncDir(dirs[i]); err != nil {
			return err
		}
	}
	return nil
}

// reopenLocked restores the entry's graph from its directory after a
// failed swap. Caller holds runMu. If even the reopen fails the entry
// is marked closed: jobs fail fast instead of touching a dead store.
// The block-cache generation is kept: the rollback restored the same
// store content, so cached blocks remain valid.
func (e *graphEntry) reopenLocked() error {
	g, err := nxgraph.Open(e.dir, e.opt)
	if err != nil {
		e.closed = true
		return fmt.Errorf("server: graph %q unrecoverable after failed compaction swap: %w", e.name, err)
	}
	e.bind(g)
	e.graph.Store(g)
	return nil
}
