package server

import (
	"context"
	"errors"
	"sync"
	"time"

	nxgraph "nxgraph"
)

// Fused execution: a worker that claims a pending job scans the rest of
// the queue for compatible jobs — same graph registration, same
// algorithm, same parameters except the query root, and the same delta
// state acknowledged at submission — and runs them as lanes of one
// engine batch run. Every decoded sub-shard block is gathered once and
// applied to all lanes, so a fused batch of b queries costs roughly one
// graph traversal instead of b. Per-lane results are bit-identical to
// sequential runs and fan out into the result cache under each job's own
// key; cancellation stays per-job (a cancelled job's lane stops at the
// next iteration boundary while its siblings run on).

// fusableAlgo reports whether algo supports multi-query fusion (queries
// that differ only in their root vertex).
func fusableAlgo(algo string) bool {
	switch algo {
	case "ppr", "bfs", "sssp":
		return true
	}
	return false
}

// fuseCompatible reports whether pending job q can join a fused batch
// led by j. Mixed algorithms never fuse, and neither do jobs that acked
// different delta states: the batch shares one overlay snapshot, so
// lanes must agree on the edge set their cache keys promise.
func fuseCompatible(j, q *Job) bool {
	if q.kind != jobAlgo || q.entry != j.entry || q.Algo != j.Algo {
		return false
	}
	if q.deltaAtSubmit != j.deltaAtSubmit {
		return false
	}
	if j.Algo == "ppr" {
		return q.Params.Damping == j.Params.Damping && q.Params.Iters == j.Params.Iters
	}
	return true
}

// claimCompatibleLocked removes up to maxBatch-1 jobs compatible with j
// from the pending list and returns them, oldest first. Caller holds
// s.mu and has already claimed j's graph slot; the claimed jobs share
// j's entry, so the one claim covers them all.
func (s *scheduler) claimCompatibleLocked(j *Job) []*Job {
	if s.maxBatch <= 1 || j.kind != jobAlgo || !fusableAlgo(j.Algo) {
		return nil
	}
	var extra []*Job
	kept := s.pending[:0]
	for _, p := range s.pending {
		if len(extra)+1 < s.maxBatch && fuseCompatible(j, p) {
			extra = append(extra, p)
		} else {
			kept = append(kept, p)
		}
	}
	// Clear the vacated tail so claimed jobs aren't pinned by the
	// backing array.
	for i := len(kept); i < len(s.pending); i++ {
		s.pending[i] = nil
	}
	s.pending = kept
	return extra
}

// laneCanceller routes per-job cancellation into a fused run. Requests
// arriving before the engine binds its BatchControl are buffered and
// replayed at bind time; once every lane has been cancelled the whole
// run's context is cancelled so the engine stops instead of iterating a
// fully-dead batch.
type laneCanceller struct {
	mu        sync.Mutex
	ctrl      nxgraph.BatchControl
	buffered  []int
	cancelled int
	width     int
	cancelAll context.CancelFunc
}

// cancelLane cancels lane l (called at most once per lane — the job's
// cancelReq flag dedupes).
func (lc *laneCanceller) cancelLane(l int) {
	lc.mu.Lock()
	if lc.ctrl != nil {
		lc.ctrl.CancelLane(l)
	} else {
		lc.buffered = append(lc.buffered, l)
	}
	lc.cancelled++
	all := lc.cancelled >= lc.width
	lc.mu.Unlock()
	if all {
		lc.cancelAll()
	}
}

// bind wires the engine's control surface and replays buffered requests.
func (lc *laneCanceller) bind(ctrl nxgraph.BatchControl) {
	lc.mu.Lock()
	lc.ctrl = ctrl
	for _, l := range lc.buffered {
		ctrl.CancelLane(l)
	}
	lc.buffered = nil
	lc.mu.Unlock()
}

// fusedResult shapes one lane's engine result into the serving form,
// mirroring the scalar algoFunc for the same algorithm.
func fusedResult(algo string, res *nxgraph.Result) *Result {
	switch algo {
	case "bfs":
		out := fromEngineResult("bfs", "depth", res)
		out.Values = sanitizeInf(out.Values)
		out.Ascending = true
		return out
	case "sssp":
		out := fromEngineResult("sssp", "distance", res)
		out.Values = sanitizeInf(out.Values)
		out.Ascending = true
		return out
	default: // ppr
		return fromEngineResult("ppr", "score", res)
	}
}

// executeFused runs lead plus the claimed compatible jobs as one fused
// engine batch. The caller (worker) holds the entry's busy claim, which
// is released here exactly as in execute.
func (s *scheduler) executeFused(lead *Job, extra []*Job) {
	defer func() {
		s.mu.Lock()
		lead.entry.busy.Store(false)
		s.cond.Broadcast()
		s.mu.Unlock()
	}()
	ctx, cancel := context.WithCancel(s.baseCtx)
	defer cancel()

	// Transition every claimed job to Running; jobs cancelled while
	// queued are already terminal and drop out of the batch.
	start := time.Now()
	var live []*Job
	for _, j := range append([]*Job{lead}, extra...) {
		j.mu.Lock()
		if j.state != Pending {
			j.mu.Unlock()
			continue
		}
		j.state = Running
		j.started = start
		j.mu.Unlock()
		live = append(live, j)
	}
	if len(live) == 0 {
		return
	}
	s.stats.JobsStarted.Add(int64(len(live)))
	s.stats.RunningJobs.Add(int64(len(live)))
	defer s.stats.RunningJobs.Add(int64(-len(live)))

	e := lead.entry
	e.runMu.Lock()
	if e.closed || e.draining.Load() {
		e.runMu.Unlock()
		now := time.Now()
		for _, j := range live {
			s.failJob(j, now, errors.New("server: graph closed"))
		}
		return
	}

	// Per-job execution-time cache check: an identical job that queued
	// ahead may have produced a lane's result already. The delta count is
	// read once — all lanes share one overlay snapshot, so their keys
	// must agree on the delta state (see cacheKey for why execution-time
	// counting is safe).
	delta := e.deltaCount()
	var runJobs []*Job
	var keys []string
	var hits []*Job
	var hitRes []*Result
	for _, j := range live {
		key := cacheKey(e.uid, delta, j.Algo, j.Params)
		if cached, ok := s.cache.get(key); ok {
			hits = append(hits, j)
			hitRes = append(hitRes, cached)
			continue
		}
		runJobs = append(runJobs, j)
		keys = append(keys, key)
	}
	s.stats.CacheHits.Add(int64(len(hits)))

	var engResults []*nxgraph.Result
	var runErr error
	if len(runJobs) > 0 {
		s.stats.CacheMisses.Add(int64(len(runJobs)))
		s.stats.FusedRuns.Add(1)
		s.stats.FusedJobs.Add(int64(len(runJobs)))
		s.hist.BatchWidth.Observe(float64(len(runJobs)))

		roots := make([]uint32, len(runJobs))
		lc := &laneCanceller{width: len(runJobs), cancelAll: cancel}
		for i, j := range runJobs {
			roots[i] = j.Params.Root
			lane := i
			j.mu.Lock()
			j.fusedWidth = len(runJobs)
			if j.cancelReq {
				// Cancelled between the Running transition and lane
				// binding — forward the request now.
				lc.cancelLane(lane)
			} else {
				j.cancel = func() { lc.cancelLane(lane) }
			}
			j.mu.Unlock()
		}
		progress := func(p nxgraph.Progress) {
			for _, j := range runJobs {
				j.setProgress(p)
			}
		}
		g := e.live()
		switch lead.Algo {
		case "bfs":
			engResults, runErr = g.BFSBatchContext(ctx, roots, progress, lc.bind)
		case "sssp":
			engResults, runErr = g.SSSPBatchContext(ctx, roots, progress, lc.bind)
		default: // ppr
			engResults, runErr = g.PersonalizedPageRankBatchContext(ctx, roots, lead.Params.Damping, lead.Params.Iters, progress, lc.bind)
		}
		if runErr == nil {
			for i := range runJobs {
				if engResults[i] != nil {
					s.cache.put(keys[i], fusedResult(lead.Algo, engResults[i]))
				}
			}
		}
	}
	e.runMu.Unlock()

	now := time.Now()
	elapsed := now.Sub(start)
	for i, j := range hits {
		s.finishJob(j, now, hitRes[i], true)
	}
	var width, done int
	if len(runJobs) > 0 {
		width = len(runJobs)
		var tracedOnce bool
		for i, j := range runJobs {
			switch {
			case runErr != nil && errors.Is(runErr, context.Canceled):
				s.cancelFinishedJob(j, now)
			case runErr != nil:
				s.failJob(j, now, runErr)
			case engResults[i] == nil: // lane cancelled mid-run
				s.cancelFinishedJob(j, now)
			default:
				res := fusedResult(lead.Algo, engResults[i])
				s.finishJob(j, now, res, false)
				s.stats.EdgesTraversed.Add(res.EdgesTraversed)
				done++
				if !tracedOnce {
					// The batch shares one trace; fold it into the
					// histograms once, not once per lane.
					s.hist.JobDuration.Observe(elapsed.Seconds())
					s.observeTrace(engResults[i].Trace)
					tracedOnce = true
				}
			}
		}
	}
	s.log.Info("fused run finished",
		"graph", lead.Graph, "algo", lead.Algo,
		"width", width, "cache_hits", len(hits), "completed", done,
		"duration_ms", elapsed.Milliseconds(),
	)
}

// finishJob marks j Done with res and retires it.
func (s *scheduler) finishJob(j *Job, now time.Time, res *Result, cacheHit bool) {
	j.mu.Lock()
	j.cancel = nil
	j.finished = now
	j.state = Done
	j.result = res
	j.cacheHit = cacheHit
	close(j.done)
	j.mu.Unlock()
	s.retire(j, res)
	s.stats.JobsCompleted.Add(1)
	s.logJob(j, Done, cacheHit, nil, res)
}

// cancelFinishedJob marks j Cancelled and retires it.
func (s *scheduler) cancelFinishedJob(j *Job, now time.Time) {
	j.mu.Lock()
	j.cancel = nil
	j.finished = now
	j.state = Cancelled
	j.err = context.Canceled
	close(j.done)
	j.mu.Unlock()
	s.retire(j, nil)
	s.stats.JobsCancelled.Add(1)
	s.logJob(j, Cancelled, false, context.Canceled, nil)
}

// failJob marks j Failed with err and retires it.
func (s *scheduler) failJob(j *Job, now time.Time, err error) {
	j.mu.Lock()
	j.cancel = nil
	j.finished = now
	j.state = Failed
	j.err = err
	close(j.done)
	j.mu.Unlock()
	s.retire(j, nil)
	s.stats.JobsFailed.Add(1)
	s.logJob(j, Failed, false, err, nil)
}

// logJob emits the per-job completion log line shared by the scalar and
// fused paths.
func (s *scheduler) logJob(j *Job, state State, cacheHit bool, err error, res *Result) {
	j.mu.Lock()
	elapsed := j.finished.Sub(j.started)
	j.mu.Unlock()
	attrs := []any{
		"job", j.ID, "graph", j.Graph, "algo", j.Algo,
		"state", string(state), "cache_hit", cacheHit,
		"duration_ms", elapsed.Milliseconds(),
	}
	if err != nil && !errors.Is(err, context.Canceled) {
		s.log.Error("job finished", append(attrs, "error", err.Error())...)
		return
	}
	if res != nil {
		attrs = append(attrs, "iterations", res.Iterations, "edges", res.EdgesTraversed)
	}
	s.log.Info("job finished", attrs...)
}
