package server

import (
	"net/http/httptest"
	"testing"

	nxgraph "nxgraph"
)

// holdRunSlot parks the graph's dispatch claim so submissions pile up in
// the queue; the returned release re-opens dispatch and wakes the
// workers. Holding the slot is how these tests make a batch of jobs
// arrive at one worker simultaneously instead of racing execution.
func holdRunSlot(s *Server, e *graphEntry) (release func()) {
	e.busy.Store(true)
	return func() {
		// Flip under the scheduler lock: a worker's scan-then-wait runs
		// entirely under it, so the release cannot slip into the window
		// between a failed scan and the cond.Wait (lost wakeup).
		s.sched.mu.Lock()
		e.busy.Store(false)
		s.sched.mu.Unlock()
		s.sched.cond.Broadcast()
	}
}

// fusedResultValues fetches a done job's full value array.
func fusedResultValues(t *testing.T, ts *httptest.Server, id string) []float64 {
	t.Helper()
	code, body := doJSON(t, "GET", ts.URL+"/v1/jobs/"+id+"/result", nil)
	if code != 200 {
		t.Fatalf("result %s: status %d, body %v", id, code, body)
	}
	raw, _ := body["values"].([]any)
	out := make([]float64, len(raw))
	for i, v := range raw {
		out[i], _ = v.(float64)
	}
	return out
}

// oracleGraph opens an independent build of the deterministic test store
// so expected values come from runs that share nothing with the server.
func oracleGraph(t *testing.T) *nxgraph.Graph {
	t.Helper()
	gr, err := nxgraph.Open(buildStoreDir(t, 9), nxgraph.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { gr.Close() })
	return gr
}

func fusedWidth(b map[string]any) int {
	w, _ := b["fused_width"].(float64)
	return int(w)
}

// TestFusedCoalescing: queued compatible PPR jobs execute as one fused
// run, and every job's values match an independent sequential run
// exactly.
func TestFusedCoalescing(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1})
	e, _ := s.reg.get("g")
	release := holdRunSlot(s, e)
	roots := []uint32{1, 2, 3, 4}
	ids := make([]string, len(roots))
	for i, r := range roots {
		ids[i] = submit(t, ts, "g", "ppr", map[string]any{"root": r})
	}
	release()
	for _, id := range ids {
		b := pollUntil(t, ts, id, terminal)
		if b["state"] != "done" {
			t.Fatalf("job %s: state %v, want done (%v)", id, b["state"], b["error"])
		}
		if fusedWidth(b) != len(roots) {
			t.Fatalf("job %s: fused_width %d, want %d", id, fusedWidth(b), len(roots))
		}
	}
	if got := s.stats.FusedRuns.Load(); got != 1 {
		t.Fatalf("FusedRuns = %d, want 1", got)
	}
	if got := s.stats.FusedJobs.Load(); got != int64(len(roots)) {
		t.Fatalf("FusedJobs = %d, want %d", got, len(roots))
	}
	gr := oracleGraph(t)
	for i, id := range ids {
		want, err := gr.PersonalizedPageRank(roots[i], 0.85, 20)
		if err != nil {
			t.Fatal(err)
		}
		got := fusedResultValues(t, ts, id)
		if len(got) != len(want.Attrs) {
			t.Fatalf("root %d: %d values, want %d", roots[i], len(got), len(want.Attrs))
		}
		for v := range got {
			if got[v] != want.Attrs[v] {
				t.Fatalf("root %d vertex %d: fused %v, sequential %v", roots[i], v, got[v], want.Attrs[v])
			}
		}
	}
}

// TestFusedMixedAlgosNeverFuse: only same-algorithm jobs coalesce; the
// interleaved bfs and sssp submissions each run alone.
func TestFusedMixedAlgosNeverFuse(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1})
	e, _ := s.reg.get("g")
	release := holdRunSlot(s, e)
	ppr1 := submit(t, ts, "g", "ppr", map[string]any{"root": 1})
	bfs := submit(t, ts, "g", "bfs", map[string]any{"root": 2})
	ppr2 := submit(t, ts, "g", "ppr", map[string]any{"root": 3})
	sssp := submit(t, ts, "g", "sssp", map[string]any{"root": 4})
	release()
	for _, id := range []string{ppr1, bfs, ppr2, sssp} {
		if b := pollUntil(t, ts, id, terminal); b["state"] != "done" {
			t.Fatalf("job %s: state %v, want done (%v)", id, b["state"], b["error"])
		}
	}
	for _, id := range []string{ppr1, ppr2} {
		_, b := doJSON(t, "GET", ts.URL+"/v1/jobs/"+id, nil)
		if fusedWidth(b) != 2 {
			t.Fatalf("ppr job %s: fused_width %d, want 2", id, fusedWidth(b))
		}
	}
	for _, id := range []string{bfs, sssp} {
		_, b := doJSON(t, "GET", ts.URL+"/v1/jobs/"+id, nil)
		if fusedWidth(b) != 0 {
			t.Fatalf("job %s fused with another algorithm: fused_width %d", id, fusedWidth(b))
		}
	}
	if got := s.stats.FusedRuns.Load(); got != 1 {
		t.Fatalf("FusedRuns = %d, want 1", got)
	}
}

// TestFusedDeltaMismatchNeverFuses: jobs that acked different delta
// states never share a run, even when otherwise identical.
func TestFusedDeltaMismatchNeverFuses(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1})
	e, _ := s.reg.get("g")
	release := holdRunSlot(s, e)
	a := submit(t, ts, "g", "ppr", map[string]any{"root": 1})
	code, body := doJSON(t, "POST", ts.URL+"/v1/graphs/g/edges",
		map[string]any{"add": []map[string]any{{"src": 1, "dst": 2}}})
	if code != 202 {
		t.Fatalf("ingest: status %d, body %v", code, body)
	}
	b := submit(t, ts, "g", "ppr", map[string]any{"root": 2})
	release()
	for _, id := range []string{a, b} {
		st := pollUntil(t, ts, id, terminal)
		if st["state"] != "done" {
			t.Fatalf("job %s: state %v, want done (%v)", id, st["state"], st["error"])
		}
		if fusedWidth(st) != 0 {
			t.Fatalf("job %s fused across a delta version: fused_width %d", id, fusedWidth(st))
		}
	}
	if got := s.stats.FusedRuns.Load(); got != 0 {
		t.Fatalf("FusedRuns = %d, want 0", got)
	}
}

// TestFusedCancelLeavesSiblings: cancelling one job of a fused batch
// yields a cancelled job while its siblings complete with values
// identical to independent sequential runs. Holding runMu parks the
// batch between the Running transition and the engine run, so the
// cancellation deterministically lands mid-batch.
func TestFusedCancelLeavesSiblings(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1})
	e, _ := s.reg.get("g")
	release := holdRunSlot(s, e)
	roots := []uint32{5, 6, 7}
	ids := make([]string, len(roots))
	for i, r := range roots {
		ids[i] = submit(t, ts, "g", "ppr", map[string]any{"root": r})
	}
	e.runMu.Lock()
	release()
	pollUntil(t, ts, ids[1], stateIs("running"))
	if code, body := doJSON(t, "POST", ts.URL+"/v1/jobs/"+ids[1]+"/cancel", nil); code != 200 {
		t.Fatalf("cancel: status %d, body %v", code, body)
	}
	e.runMu.Unlock()

	if b := pollUntil(t, ts, ids[1], terminal); b["state"] != "cancelled" {
		t.Fatalf("cancelled job: state %v, want cancelled", b["state"])
	}
	gr := oracleGraph(t)
	for _, i := range []int{0, 2} {
		b := pollUntil(t, ts, ids[i], terminal)
		if b["state"] != "done" {
			t.Fatalf("sibling %s: state %v, want done (%v)", ids[i], b["state"], b["error"])
		}
		want, err := gr.PersonalizedPageRank(roots[i], 0.85, 20)
		if err != nil {
			t.Fatal(err)
		}
		got := fusedResultValues(t, ts, ids[i])
		for v := range got {
			if got[v] != want.Attrs[v] {
				t.Fatalf("sibling root %d vertex %d: %v, want %v", roots[i], v, got[v], want.Attrs[v])
			}
		}
	}
}

// TestFusedDisabled: MaxBatch 1 turns coalescing off entirely.
func TestFusedDisabled(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, MaxBatch: 1})
	e, _ := s.reg.get("g")
	release := holdRunSlot(s, e)
	a := submit(t, ts, "g", "bfs", map[string]any{"root": 1})
	b := submit(t, ts, "g", "bfs", map[string]any{"root": 2})
	release()
	for _, id := range []string{a, b} {
		st := pollUntil(t, ts, id, terminal)
		if st["state"] != "done" || fusedWidth(st) != 0 {
			t.Fatalf("job %s: state %v fused_width %d, want done alone", id, st["state"], fusedWidth(st))
		}
	}
	if got := s.stats.FusedRuns.Load(); got != 0 {
		t.Fatalf("FusedRuns = %d, want 0", got)
	}
}
