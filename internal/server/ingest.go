package server

import (
	"encoding/json"
	"errors"
	"math"
	"net/http"

	"nxgraph/internal/dynamic"
	"nxgraph/internal/wal"
)

// edgeSpec is one edge in an ingestion batch, in the graph's original
// index space (the ids of the raw input the store was built from —
// stable across compactions).
type edgeSpec struct {
	Src uint64 `json:"src"`
	Dst uint64 `json:"dst"`
	// Weight applies to insertions on weighted stores; 0 defaults to 1.
	Weight float32 `json:"weight,omitempty"`
}

// handleIngest is POST /v1/graphs/{name}/edges: append a batch of edge
// insertions/removals to the graph's delta log. Removals apply before
// insertions within one batch, so {"remove":[e],"add":[e]} re-adds the
// edge. The 202 is a durability *and* visibility guarantee: the batch
// has been appended to the graph's write-ahead log and fsynced per the
// -fsync policy before the response is written (replay-on-open
// restores it after a crash), and every job submitted afterwards
// observes the deltas (engine runs snapshot the log at execution
// start). Insertions referencing brand-new vertices are accepted but
// deferred to the next compaction — the engine's dense id space cannot
// address them.
func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	e, ok := s.reg.get(r.PathValue("name"))
	if !ok {
		writeErr(w, http.StatusNotFound, "graph %q not open", r.PathValue("name"))
		return
	}
	if e.draining.Load() {
		writeErr(w, http.StatusConflict, "%v", errGraphClosing)
		return
	}
	var req struct {
		Add    []edgeSpec `json:"add"`
		Remove []edgeSpec `json:"remove"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if len(req.Add)+len(req.Remove) == 0 {
		writeErr(w, http.StatusBadRequest, "batch has no add or remove entries")
		return
	}
	ops := make([]dynamic.Op, 0, len(req.Add)+len(req.Remove))
	for _, re := range req.Remove {
		ops = append(ops, dynamic.Op{Remove: true, Src: re.Src, Dst: re.Dst})
	}
	for _, ad := range req.Add {
		// Reject malformed weights before anything is logged: NaN
		// poisons every rank it touches, infinities overflow degree
		// normalization, and negative weights have no meaning for the
		// served algorithms. (0 is the documented "default to 1".)
		w64 := float64(ad.Weight)
		if math.IsNaN(w64) || math.IsInf(w64, 0) || ad.Weight < 0 {
			writeErr(w, http.StatusBadRequest,
				"edge %d->%d: weight %v must be a finite non-negative number", ad.Src, ad.Dst, ad.Weight)
			return
		}
		wt := ad.Weight
		if wt == 0 {
			wt = 1
		}
		ops = append(ops, dynamic.Op{Src: ad.Src, Dst: ad.Dst, Weight: wt})
	}
	pending, deferred, err := e.appendDurable(ops)
	switch {
	case errors.Is(err, errGraphClosing), errors.Is(err, wal.ErrClosed):
		writeErr(w, http.StatusConflict, "%v", errGraphClosing)
		return
	case errors.Is(err, wal.ErrFailed):
		// The log is poisoned (disk full, I/O error): nothing further
		// can be made durable until the operator restarts the process,
		// which truncates the torn tail and resumes.
		writeErr(w, http.StatusServiceUnavailable, "ingestion unavailable: %v", err)
		return
	case err != nil:
		writeErr(w, http.StatusInternalServerError, "%v", err)
		return
	}
	s.stats.EdgesIngested.Add(int64(len(req.Add)))
	s.stats.EdgesRemoved.Add(int64(len(req.Remove)))
	s.hist.IngestBatch.Observe(float64(len(ops)))
	// No cache purge here: the delta-versioned keys already make every
	// pre-batch entry unreachable (the pending count only grows between
	// compactions), and size-based LRU eviction reclaims the memory —
	// walking the shared cache on the ingest hot path would serialize
	// against every concurrent get/put for no correctness gain.

	resp := map[string]any{
		"graph":          e.name,
		"added":          len(req.Add),
		"removed":        len(req.Remove),
		"pending_deltas": pending,
	}
	if deferred > 0 {
		resp["deferred"] = deferred
	}
	if thr := s.deltaThreshold(); thr > 0 && pending >= thr {
		if j, _, err := s.sched.submitCompact(e); err == nil {
			resp["compaction_job"] = j.ID
		}
		// A full queue or shutdown just skips the trigger; the next
		// ingest (or a manual POST .../compact) retries.
	}
	writeJSON(w, http.StatusAccepted, resp)
}

// handleCompact is POST /v1/graphs/{name}/compact: schedule background
// compaction of the graph's pending deltas. Idempotent — if a
// compaction is already pending or running its job is returned with
// 200 instead of queueing another.
func (s *Server) handleCompact(w http.ResponseWriter, r *http.Request) {
	e, ok := s.reg.get(r.PathValue("name"))
	if !ok {
		writeErr(w, http.StatusNotFound, "graph %q not open", r.PathValue("name"))
		return
	}
	j, created, err := s.sched.submitCompact(e)
	switch {
	case errors.Is(err, ErrQueueFull), errors.Is(err, errShutdown):
		writeErr(w, http.StatusServiceUnavailable, "%v", err)
		return
	case errors.Is(err, errGraphClosing):
		writeErr(w, http.StatusConflict, "%v", err)
		return
	case err != nil:
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	status := http.StatusOK
	if created {
		status = http.StatusAccepted
	}
	writeJSON(w, status, j.Snapshot())
}

// deltaThreshold resolves the configured auto-compaction threshold.
func (s *Server) deltaThreshold() int {
	if s.cfg.DeltaThreshold < 0 {
		return 0 // disabled
	}
	if s.cfg.DeltaThreshold == 0 {
		return 8192
	}
	return s.cfg.DeltaThreshold
}
