package server

import (
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	nxgraph "nxgraph"
	"nxgraph/internal/graph"
)

// buildTinyStoreDir writes a 5-vertex cycle-with-chord graph whose
// original ids are the literal 0..4, so ingestion requests can address
// vertices without consulting the remap table.
func buildTinyStoreDir(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	g := &graph.EdgeList{NumVertices: 5}
	for _, e := range [][2]uint32{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}, {1, 3}} {
		g.Edges = append(g.Edges, graph.Edge{Src: e[0], Dst: e[1], Weight: 1})
	}
	gr, err := nxgraph.Build(dir, g, nxgraph.Options{P: 2})
	if err != nil {
		t.Fatal(err)
	}
	gr.Close()
	return dir
}

func newIngestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	dir := buildTinyStoreDir(t)
	s := New(cfg)
	if err := s.OpenGraph("g", dir, nxgraph.Options{}); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

// pagerankValues submits a pagerank job, waits for completion, and
// returns (values, cacheHit).
func pagerankValues(t *testing.T, ts *httptest.Server) ([]float64, bool) {
	t.Helper()
	id := submit(t, ts, "g", "pagerank", map[string]any{"iters": 15})
	body := pollUntil(t, ts, id, terminal)
	if body["state"] != "done" {
		t.Fatalf("job ended %v (error %v)", body["state"], body["error"])
	}
	code, res := doJSON(t, "GET", ts.URL+"/v1/jobs/"+id+"/result", nil)
	if code != http.StatusOK {
		t.Fatalf("result: status %d, body %v", code, res)
	}
	raw, _ := res["values"].([]any)
	vals := make([]float64, len(raw))
	for i, v := range raw {
		vals[i], _ = v.(float64)
	}
	hit, _ := res["cache_hit"].(bool)
	return vals, hit
}

// TestIngestServedLive is the end-to-end acceptance path: ingested
// edges change PageRank results with no restart, compaction folds them
// into the store, and post-compaction results match the overlay-served
// ones within 1e-6.
func TestIngestServedLive(t *testing.T) {
	_, ts := newIngestServer(t, Config{Workers: 2})

	before, _ := pagerankValues(t, ts)

	// Funnel extra links into vertex 2; its rank must rise.
	code, body := doJSON(t, "POST", ts.URL+"/v1/graphs/g/edges", map[string]any{
		"add": []map[string]any{
			{"src": 0, "dst": 2}, {"src": 3, "dst": 2}, {"src": 4, "dst": 2},
		},
	})
	if code != http.StatusAccepted {
		t.Fatalf("ingest: status %d, body %v", code, body)
	}
	if got := body["pending_deltas"].(float64); got != 3 {
		t.Fatalf("pending_deltas = %v, want 3", got)
	}

	overlay, hit := pagerankValues(t, ts)
	if hit {
		t.Fatal("post-ingest job served from the pre-ingest cache")
	}
	if len(overlay) != len(before) {
		t.Fatalf("vertex count changed: %d vs %d", len(overlay), len(before))
	}
	if overlay[2] <= before[2] {
		t.Fatalf("rank of vertex 2 did not rise: %g -> %g", before[2], overlay[2])
	}

	// Cache works within one delta state.
	_, hit = pagerankValues(t, ts)
	if !hit {
		t.Fatal("identical re-submission missed the cache")
	}

	// Compact and compare: rebuilt-store results must match the overlay
	// within 1e-6, served from a fresh engine run (cache invalidated).
	code, snap := doJSON(t, "POST", ts.URL+"/v1/graphs/g/compact", nil)
	if code != http.StatusAccepted {
		t.Fatalf("compact: status %d, body %v", code, snap)
	}
	id, _ := snap["id"].(string)
	end := pollUntil(t, ts, id, terminal)
	if end["state"] != "done" {
		t.Fatalf("compaction ended %v (error %v)", end["state"], end["error"])
	}

	code, info := doJSON(t, "GET", ts.URL+"/v1/graphs/g", nil)
	if code != http.StatusOK {
		t.Fatalf("info: status %d", code)
	}
	if pd, _ := info["pending_deltas"].(float64); pd != 0 {
		t.Fatalf("pending_deltas after compaction = %v, want 0", pd)
	}
	if ne, _ := info["num_edges"].(float64); ne != 9 {
		t.Fatalf("num_edges after compaction = %v, want 9", ne)
	}

	after, hit := pagerankValues(t, ts)
	if hit {
		t.Fatal("post-compaction job served from the pre-compaction cache")
	}
	for v := range after {
		if math.Abs(after[v]-overlay[v]) > 1e-6 {
			t.Fatalf("vertex %d: compacted rank %g vs overlay rank %g", v, after[v], overlay[v])
		}
	}
}

// TestIngestRejectsMalformedWeights: NaN, infinite, negative and
// unrepresentable weights get a 400 before anything reaches the log.
// Non-finite values cannot even be expressed as JSON numbers, so those
// are sent as raw bodies and die in the decoder; the negative case
// reaches the handler's own validation.
func TestIngestRejectsMalformedWeights(t *testing.T) {
	_, ts := newIngestServer(t, Config{Workers: 1})

	for _, body := range []string{
		`{"add":[{"src":0,"dst":1,"weight":NaN}]}`,
		`{"add":[{"src":0,"dst":1,"weight":Infinity}]}`,
		`{"add":[{"src":0,"dst":1,"weight":-Infinity}]}`,
		`{"add":[{"src":0,"dst":1,"weight":1e40}]}`,
		`{"add":[{"src":0,"dst":1,"weight":-2}]}`,
	} {
		resp, err := http.Post(ts.URL+"/v1/graphs/g/edges", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("body %s: status %d, want 400", body, resp.StatusCode)
		}
	}

	// Nothing was logged: the graph still reports no pending deltas.
	code, info := doJSON(t, "GET", ts.URL+"/v1/graphs/g", nil)
	if code != http.StatusOK {
		t.Fatalf("info: status %d", code)
	}
	if pd, _ := info["pending_deltas"].(float64); pd != 0 {
		t.Fatalf("pending_deltas = %v after rejected batches, want 0", pd)
	}
}

// TestIngestRemoveThenReAdd drives the tombstone semantics over HTTP:
// removals apply before insertions within a batch.
func TestIngestRemoveThenReAdd(t *testing.T) {
	_, ts := newIngestServer(t, Config{Workers: 1})
	before, _ := pagerankValues(t, ts)

	// Remove and re-add the chord in one batch: a no-op net change.
	code, _ := doJSON(t, "POST", ts.URL+"/v1/graphs/g/edges", map[string]any{
		"remove": []map[string]any{{"src": 1, "dst": 3}},
		"add":    []map[string]any{{"src": 1, "dst": 3}},
	})
	if code != http.StatusAccepted {
		t.Fatalf("ingest: status %d", code)
	}
	same, hit := pagerankValues(t, ts)
	if hit {
		t.Fatal("delta state changed but cache hit")
	}
	for v := range same {
		if math.Abs(same[v]-before[v]) > 1e-9 {
			t.Fatalf("vertex %d: %g vs %g after remove+re-add", v, same[v], before[v])
		}
	}

	// Now a real removal: vertex 3 loses an in-edge, its rank drops.
	code, _ = doJSON(t, "POST", ts.URL+"/v1/graphs/g/edges", map[string]any{
		"remove": []map[string]any{{"src": 1, "dst": 3}},
	})
	if code != http.StatusAccepted {
		t.Fatalf("ingest: status %d", code)
	}
	after, _ := pagerankValues(t, ts)
	if after[3] >= before[3] {
		t.Fatalf("rank of vertex 3 did not drop: %g -> %g", before[3], after[3])
	}
}

// TestIngestNewVertexDeferred: edges naming unseen vertices are
// deferred, then materialized by compaction.
func TestIngestNewVertexDeferred(t *testing.T) {
	_, ts := newIngestServer(t, Config{Workers: 1})

	code, body := doJSON(t, "POST", ts.URL+"/v1/graphs/g/edges", map[string]any{
		"add": []map[string]any{{"src": 99, "dst": 0}, {"src": 0, "dst": 99}},
	})
	if code != http.StatusAccepted {
		t.Fatalf("ingest: status %d", code)
	}
	if def, _ := body["deferred"].(float64); def != 2 {
		t.Fatalf("deferred = %v, want 2", body["deferred"])
	}
	vals, _ := pagerankValues(t, ts)
	if len(vals) != 5 {
		t.Fatalf("overlay should not serve the new vertex yet: n = %d", len(vals))
	}

	code, snap := doJSON(t, "POST", ts.URL+"/v1/graphs/g/compact", nil)
	if code != http.StatusAccepted {
		t.Fatalf("compact: status %d", code)
	}
	id, _ := snap["id"].(string)
	end := pollUntil(t, ts, id, terminal)
	if end["state"] != "done" {
		t.Fatalf("compaction ended %v (error %v)", end["state"], end["error"])
	}
	vals, _ = pagerankValues(t, ts)
	if len(vals) != 6 {
		t.Fatalf("new vertex missing after compaction: n = %d", len(vals))
	}
}

// TestIngestAutoCompaction: crossing the configured threshold schedules
// a background compaction without a manual POST.
func TestIngestAutoCompaction(t *testing.T) {
	_, ts := newIngestServer(t, Config{Workers: 2, DeltaThreshold: 2})

	code, body := doJSON(t, "POST", ts.URL+"/v1/graphs/g/edges", map[string]any{
		"add": []map[string]any{{"src": 0, "dst": 3}, {"src": 2, "dst": 0}},
	})
	if code != http.StatusAccepted {
		t.Fatalf("ingest: status %d", code)
	}
	id, _ := body["compaction_job"].(string)
	if id == "" {
		t.Fatalf("no compaction_job in %v", body)
	}
	end := pollUntil(t, ts, id, terminal)
	if end["state"] != "done" {
		t.Fatalf("auto compaction ended %v (error %v)", end["state"], end["error"])
	}
	code, info := doJSON(t, "GET", ts.URL+"/v1/graphs/g", nil)
	if code != http.StatusOK || info["pending_deltas"] != nil {
		t.Fatalf("pending deltas remain after auto compaction: %v", info["pending_deltas"])
	}
}

// TestCompactIdempotent: a second POST while one compaction is live
// returns the same job instead of queueing another.
func TestCompactIdempotent(t *testing.T) {
	s, ts := newIngestServer(t, Config{Workers: 1})

	// Pin the single worker deterministically: hold the graph's run
	// lock so the submitted job claims the worker, flips to running,
	// and parks right before execution — the queued compaction then
	// stays pending until we release it.
	e, ok := s.reg.get("g")
	if !ok {
		t.Fatal("graph not registered")
	}
	e.runMu.Lock()
	block := submit(t, ts, "g", "pagerank", map[string]any{"iters": 10})
	pollUntil(t, ts, block, stateIs("running"))
	doJSON(t, "POST", ts.URL+"/v1/graphs/g/edges", map[string]any{
		"add": []map[string]any{{"src": 0, "dst": 2}},
	})
	code1, snap1 := doJSON(t, "POST", ts.URL+"/v1/graphs/g/compact", nil)
	code2, snap2 := doJSON(t, "POST", ts.URL+"/v1/graphs/g/compact", nil)
	e.runMu.Unlock()
	if code1 != http.StatusAccepted {
		t.Fatalf("first compact: status %d", code1)
	}
	if code2 != http.StatusOK || snap1["id"] != snap2["id"] {
		t.Fatalf("second compact: status %d, ids %v vs %v", code2, snap1["id"], snap2["id"])
	}
	pollUntil(t, ts, block, terminal)
	pollUntil(t, ts, snap1["id"].(string), terminal)

	// Metrics surface the counters.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	buf := new(strings.Builder)
	if _, err := io.Copy(buf, resp.Body); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"nxserve_edges_ingested_total 1",
		"nxserve_compactions_started_total 1",
	} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("metrics missing %q:\n%s", want, buf.String())
		}
	}
}
