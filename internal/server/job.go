// Package server implements nxserve, the concurrent graph-serving
// subsystem on top of the nxgraph library: a registry of opened DSSS
// stores, an asynchronous job scheduler with a bounded worker pool and
// cooperative cancellation, a size-bounded LRU result cache, and an
// HTTP/JSON API exposing all of it (see Server for the routes).
//
// Architecture. Requests become Jobs that move through the states
// pending → running → done|failed|cancelled. Workers pull pending jobs
// from a bounded queue; per graph, execution is serialized (one engine
// run at a time per store — the DSSS attribute and hub files are not
// safe under concurrent runs) while distinct graphs run in parallel up
// to the worker-pool size. Completed results land in the LRU keyed by
// (graph, algorithm, canonical params), so a repeated identical request
// is answered without touching the engine. Cancellation propagates
// through context.Context into the engine's iteration loop, which checks
// it at sub-shard-batch boundaries.
package server

import (
	"fmt"
	"strconv"
	"strings"
	"sync"
	"time"

	nxgraph "nxgraph"
	"nxgraph/internal/trace"
)

// State is a job lifecycle state.
type State string

// Job states.
const (
	Pending   State = "pending"
	Running   State = "running"
	Done      State = "done"
	Failed    State = "failed"
	Cancelled State = "cancelled"
)

// Params carries algorithm parameters. The zero value of every field
// means "use the algorithm's default". Fields an algorithm does not
// consume are ignored entirely — they are validated but excluded from
// the cache key (see cacheKey), so a stray value cannot fragment the
// cache.
type Params struct {
	// Damping is the PageRank/PPR damping factor (default 0.85).
	Damping float64 `json:"damping,omitempty"`
	// Iters is the iteration count for pagerank, ppr and hits
	// (default 20 for pagerank/ppr, 10 for hits).
	Iters int `json:"iters,omitempty"`
	// Eps switches pagerank to run-until-convergence with this
	// tolerance. Iters then caps the iteration count, defaulting to a
	// 1000-iteration safety cap — a served job must not be able to
	// occupy a worker forever on an unreachable tolerance.
	Eps float64 `json:"eps,omitempty"`
	// Root is the source vertex for bfs, sssp and ppr.
	Root uint32 `json:"root,omitempty"`
}

// withDefaults resolves zero fields to the algorithm's defaults so that
// equivalent submissions share one cache key.
func (p Params) withDefaults(algo string) Params {
	switch algo {
	case "pagerank":
		if p.Damping == 0 {
			p.Damping = 0.85
		}
		if p.Iters == 0 {
			if p.Eps > 0 {
				p.Iters = 1000 // safety cap for convergence mode
			} else {
				p.Iters = 20
			}
		}
	case "ppr":
		if p.Damping == 0 {
			p.Damping = 0.85
		}
		if p.Iters == 0 {
			p.Iters = 20
		}
	case "hits":
		if p.Iters == 0 {
			p.Iters = 10
		}
	}
	return p
}

// cacheKey canonicalizes (graph registration uid, delta state, algo,
// params) into the LRU key. The uid — unique per open, not the reusable
// name — guarantees a rebound name never hits a previous store's
// results. delta is the count of ingestion ops acked when the key is
// built: results computed against different delta states never alias,
// so a job can never be answered from a cache entry missing edges that
// were acknowledged before it was submitted. (The count is monotone per
// log; compaction resets it but also purges the uid's entries under the
// graph's run lock, so stale keys cannot survive the swap.) Only the
// fields the algorithm actually consumes are included, so e.g. a stray
// Damping on a BFS submission does not fragment the cache.
func cacheKey(graphUID string, delta int, algo string, p Params) string {
	var b strings.Builder
	b.WriteString(graphUID)
	if delta != 0 {
		fmt.Fprintf(&b, "@%d", delta)
	}
	b.WriteByte('|')
	b.WriteString(algo)
	switch algo {
	case "pagerank":
		fmt.Fprintf(&b, "|d=%s|i=%d|e=%s",
			strconv.FormatFloat(p.Damping, 'g', -1, 64), p.Iters,
			strconv.FormatFloat(p.Eps, 'g', -1, 64))
	case "ppr":
		fmt.Fprintf(&b, "|d=%s|i=%d|r=%d",
			strconv.FormatFloat(p.Damping, 'g', -1, 64), p.Iters, p.Root)
	case "bfs", "sssp":
		fmt.Fprintf(&b, "|r=%d", p.Root)
	case "hits":
		fmt.Fprintf(&b, "|i=%d", p.Iters)
	}
	return b.String()
}

// Result is the outcome of one algorithm execution, shaped for caching
// and HTTP retrieval. Values is the primary per-vertex array (ranks,
// distances, labels, core numbers, authority scores); Aux carries
// secondary arrays (the hub scores of HITS). Unreachable vertices in
// bfs/sssp results are encoded as -1 so the arrays stay JSON-safe.
type Result struct {
	Algo string `json:"algo"`
	// ValueLabel names what Values holds ("rank", "distance", ...).
	ValueLabel string               `json:"value_label"`
	Values     []float64            `json:"-"`
	Aux        map[string][]float64 `json:"-"`
	// Ascending marks algorithms whose interesting extremes are small
	// values (distances); top-K retrieval sorts accordingly.
	Ascending bool `json:"-"`
	// Stats carries algorithm-specific scalars (num_components,
	// max_core, rounds, ...).
	Stats          map[string]float64 `json:"stats,omitempty"`
	Iterations     int                `json:"iterations"`
	EdgesTraversed int64              `json:"edges_traversed"`
	Strategy       string             `json:"strategy,omitempty"`
	ElapsedMS      int64              `json:"elapsed_ms"`
	// Trace is the producing run's span timeline, served by
	// GET /v1/jobs/{id}/trace (nil for algorithms that compose multiple
	// runs and for compaction jobs). A cached Result keeps the trace of
	// the run that produced it.
	Trace *trace.Trace `json:"-"`
}

// sizeBytes approximates the result's memory footprint for the LRU
// budget.
func (r *Result) sizeBytes() int64 {
	n := int64(len(r.Values)) * 8
	for _, a := range r.Aux {
		n += int64(len(a)) * 8
	}
	return n + 256
}

// JobProgress is the latest per-iteration progress of a running job.
type JobProgress struct {
	Iteration       int   `json:"iteration"`
	Edges           int64 `json:"edges"`
	ActiveIntervals int   `json:"active_intervals,omitempty"`
}

// jobKind distinguishes algorithm executions from maintenance jobs.
type jobKind int

const (
	// jobAlgo runs an algorithm over the graph (serialized per graph).
	jobAlgo jobKind = iota
	// jobCompact folds the graph's delta log into a rebuilt store. It
	// does not claim the graph's run slot while rebuilding — the
	// graph's queries keep executing — and takes runMu only for the
	// final store swap. It does occupy a worker-pool slot for the
	// rebuild's duration, so pool sizing must budget for background
	// compactions alongside query load.
	jobCompact
)

// Job is one asynchronous algorithm execution.
type Job struct {
	ID     string `json:"id"`
	Graph  string `json:"graph"`
	Algo   string `json:"algo"`
	Params Params `json:"params"`

	kind jobKind
	// deltaAtSubmit is the delta-op count acknowledged when the job was
	// accepted; fused batches only combine jobs that agree on it, so a
	// shared overlay snapshot never serves a lane missing edges its
	// submitter had already acked.
	deltaAtSubmit int

	mu        sync.Mutex
	state     State
	err       error
	result    *Result
	progress  JobProgress
	cacheHit  bool
	submitted time.Time
	started   time.Time
	finished  time.Time
	cancel    func() // non-nil while running
	cancelReq bool
	// fusedWidth is the lane count of the fused engine run this job
	// executed in (0 when it ran alone).
	fusedWidth int
	done       chan struct{}

	entry *graphEntry
}

// Snapshot is the JSON view of a job's current state.
type Snapshot struct {
	ID       string `json:"id"`
	Graph    string `json:"graph"`
	Algo     string `json:"algo"`
	Params   Params `json:"params"`
	State    State  `json:"state"`
	CacheHit bool   `json:"cache_hit"`
	// FusedWidth is the lane count of the fused engine run that executed
	// this job, omitted for jobs that ran alone.
	FusedWidth  int          `json:"fused_width,omitempty"`
	Error       string       `json:"error,omitempty"`
	Progress    *JobProgress `json:"progress,omitempty"`
	SubmittedAt time.Time    `json:"submitted_at"`
	StartedAt   *time.Time   `json:"started_at,omitempty"`
	FinishedAt  *time.Time   `json:"finished_at,omitempty"`
}

// Snapshot returns a consistent copy of the job's externally visible
// state.
func (j *Job) Snapshot() Snapshot {
	j.mu.Lock()
	defer j.mu.Unlock()
	s := Snapshot{
		ID:          j.ID,
		Graph:       j.Graph,
		Algo:        j.Algo,
		Params:      j.Params,
		State:       j.state,
		CacheHit:    j.cacheHit,
		FusedWidth:  j.fusedWidth,
		SubmittedAt: j.submitted,
	}
	if j.err != nil {
		s.Error = j.err.Error()
	}
	if j.state == Running || j.progress.Iteration > 0 {
		p := j.progress
		s.Progress = &p
	}
	if !j.started.IsZero() {
		t := j.started
		s.StartedAt = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		s.FinishedAt = &t
	}
	return s
}

// State returns the job's current state.
func (j *Job) State() State {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// Result returns the job's result, or nil while it has none.
func (j *Job) Result() *Result {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.result
}

// Done returns a channel closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// setProgress records per-iteration progress (the engine calls this
// synchronously from the job's worker via a ProgressFunc).
func (j *Job) setProgress(p nxgraph.Progress) {
	j.mu.Lock()
	j.progress = JobProgress{
		Iteration:       p.Iteration,
		Edges:           p.Edges,
		ActiveIntervals: p.ActiveIntervals,
	}
	j.mu.Unlock()
}
