package server

import (
	"fmt"
	"net/http"
	"strings"
	"time"
)

// statusRecorder captures the status code a handler writes so the
// access log and latency histogram can label the request's outcome.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	if r.status == 0 {
		r.status = code
	}
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(b []byte) (int, error) {
	if r.status == 0 {
		r.status = http.StatusOK
	}
	return r.ResponseWriter.Write(b)
}

// middleware wraps the API mux with per-request observability: a
// request id (generated, or propagated from an X-Request-Id the caller
// sent), the HTTP latency histogram, and a structured access log.
// Scrape and probe endpoints log at Debug so a 10s Prometheus interval
// doesn't fill the log with its own heartbeat.
func (s *Server) middleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		reqID := r.Header.Get("X-Request-Id")
		if reqID == "" {
			reqID = fmt.Sprintf("r-%08d", s.reqSeq.Add(1))
		}
		w.Header().Set("X-Request-Id", reqID)
		rec := &statusRecorder{ResponseWriter: w}
		next.ServeHTTP(rec, r)
		if rec.status == 0 {
			rec.status = http.StatusOK
		}
		elapsed := time.Since(start)
		s.hist.HTTPRequest.Observe(elapsed.Seconds())
		logf := s.log.Info
		if isScrapePath(r.URL.Path) {
			logf = s.log.Debug
		}
		logf("http request",
			"request_id", reqID,
			"method", r.Method,
			"path", r.URL.Path,
			"status", rec.status,
			"duration_ms", elapsed.Milliseconds(),
			"remote", r.RemoteAddr,
		)
	})
}

// isScrapePath reports paths polled by machines rather than called by
// clients.
func isScrapePath(p string) bool {
	return p == "/metrics" || p == "/healthz" || p == "/readyz" ||
		strings.HasPrefix(p, "/debug/pprof")
}
