package server

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"

	"nxgraph/internal/metrics"
	"nxgraph/internal/trace"
)

// traceResponse mirrors the /v1/jobs/{id}/trace payload.
type traceResponse struct {
	Job      string         `json:"job"`
	Algo     string         `json:"algo"`
	CacheHit bool           `json:"cache_hit"`
	Timeline trace.Timeline `json:"timeline"`
}

func getTrace(t *testing.T, url string) (int, traceResponse) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var tr traceResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&tr); err != nil {
			t.Fatalf("decode trace: %v", err)
		}
	}
	return resp.StatusCode, tr
}

// TestTraceEndpoint runs a PageRank job and checks the trace endpoint
// returns the full span timeline: a run span, iteration spans parented
// to it, block-load spans tagged hit or miss, and per-iteration stage
// stats.
func TestTraceEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	id := submit(t, ts, "g", "pagerank", map[string]any{"iters": 4})
	pollUntil(t, ts, id, stateIs("done"))

	code, tr := getTrace(t, ts.URL+"/v1/jobs/"+id+"/trace")
	if code != http.StatusOK {
		t.Fatalf("trace status %d", code)
	}
	if tr.Job != id || tr.Algo != "pagerank" {
		t.Fatalf("trace header = %q/%q, want %q/pagerank", tr.Job, tr.Algo, id)
	}
	if len(tr.Timeline.Spans) == 0 {
		t.Fatal("empty span timeline")
	}
	var runID uint64
	iterIDs := map[uint64]bool{}
	var iters, loads, hits, misses int
	for _, sp := range tr.Timeline.Spans {
		switch sp.Kind {
		case trace.KindRun:
			runID = sp.ID
		case trace.KindIteration:
			iterIDs[sp.ID] = true
			iters++
		}
	}
	if runID == 0 {
		t.Fatal("no run span in timeline")
	}
	if iters != 4 {
		t.Fatalf("iteration spans = %d, want 4", iters)
	}
	for _, sp := range tr.Timeline.Spans {
		switch sp.Kind {
		case trace.KindIteration:
			if sp.Parent != runID {
				t.Errorf("iteration %q parent %d, want run %d", sp.Name, sp.Parent, runID)
			}
		case trace.KindBlockLoad:
			loads++
			switch sp.Tag {
			case trace.TagHit:
				hits++
			case trace.TagMiss:
				misses++
			default:
				t.Errorf("block load %q untagged", sp.Name)
			}
			if !iterIDs[sp.Parent] {
				t.Errorf("block load %q parent %d is not an iteration", sp.Name, sp.Parent)
			}
		}
	}
	if loads == 0 || misses == 0 {
		t.Fatalf("block loads = %d (misses %d), want both > 0", loads, misses)
	}
	if len(tr.Timeline.Steps) != 4 {
		t.Fatalf("steps = %d, want 4", len(tr.Timeline.Steps))
	}
	for _, st := range tr.Timeline.Steps {
		if st.Edges <= 0 {
			t.Errorf("iteration %d traversed no edges", st.Iteration)
		}
		if st.DurUS < st.StallUS || st.DurUS < st.ComputeUS {
			t.Errorf("iteration %d: dur %dus < stall %dus / compute %dus",
				st.Iteration, st.DurUS, st.StallUS, st.ComputeUS)
		}
	}
}

// TestTraceNotDone checks a queued-or-running job's trace is a 409.
func TestTraceNotDone(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	// Saturate the single worker with a long run so the second job
	// stays pending while we probe its trace endpoint.
	blocker := submit(t, ts, "g", "pagerank", map[string]any{"iters": 100000})
	id := submit(t, ts, "g", "pagerank", map[string]any{"iters": 50, "damping": 0.8})
	if code, _ := getTrace(t, ts.URL+"/v1/jobs/"+id+"/trace"); code != http.StatusConflict {
		t.Fatalf("trace of pending job: status %d, want 409", code)
	}
	doJSON(t, "POST", ts.URL+"/v1/jobs/"+blocker+"/cancel", nil)
	doJSON(t, "POST", ts.URL+"/v1/jobs/"+id+"/cancel", nil)
	pollUntil(t, ts, blocker, terminal)
	pollUntil(t, ts, id, terminal)
}

// TestMetricsExposition validates the full /metrics payload against the
// Prometheus text-format parser and checks the histogram families and
// build info are present after a completed job.
func TestMetricsExposition(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	id := submit(t, ts, "g", "pagerank", map[string]any{"iters": 3})
	pollUntil(t, ts, id, stateIs("done"))

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	text := string(b)
	if err := metrics.ValidateExposition(strings.NewReader(text)); err != nil {
		t.Fatalf("exposition invalid: %v\n%s", err, text)
	}
	for _, want := range []string{
		"# TYPE nxserve_job_duration_seconds histogram",
		"# TYPE nxserve_iteration_duration_seconds histogram",
		"# TYPE nxserve_block_load_seconds histogram",
		"# TYPE nxserve_ingest_batch_edges histogram",
		"# TYPE nxserve_http_request_seconds histogram",
		"nxserve_job_duration_seconds_count 1",
		"nxserve_iteration_duration_seconds_count 3",
		"nxserve_build_info{",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics output missing %q", want)
		}
	}
	// The job loaded blocks, so the block-load histogram must be
	// populated.
	if strings.Contains(text, "nxserve_block_load_seconds_count 0\n") {
		t.Error("block-load histogram empty after a completed job")
	}
}

// TestHealthAndReady checks the probe endpoints, including readiness
// dropping when shutdown begins.
func TestHealthAndReady(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1})
	for _, path := range []string{"/healthz", "/readyz"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s status %d, want 200", path, resp.StatusCode)
		}
	}
	s.ready.Store(false) // what Close() does first
	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("/readyz while draining: status %d, want 503", resp.StatusCode)
	}
	s.ready.Store(true) // restore so cleanup paths look normal
}

// TestRequestID checks the middleware stamps a request id and
// propagates a caller-supplied one.
func TestRequestID(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	resp, err := http.Get(ts.URL + "/v1/graphs")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-Id"); got == "" {
		t.Error("no X-Request-Id on response")
	}

	req, _ := http.NewRequest("GET", ts.URL+"/v1/graphs", nil)
	req.Header.Set("X-Request-Id", "caller-7")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-Id"); got != "caller-7" {
		t.Errorf("X-Request-Id = %q, want caller-7", got)
	}
}
