package server

import (
	"errors"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"time"

	"nxgraph/internal/dynamic"
	"nxgraph/internal/wal"
)

// walDirName is the write-ahead log's directory under a graph's root
// (beside the dsss store directory).
const walDirName = "wal"

// walConfig carries the server's WAL settings into the registry, which
// opens one log per graph.
type walConfig struct {
	disabled bool
	policy   wal.SyncPolicy
	maxDelay time.Duration
	maxBatch int
	segment  int64
	stats    *wal.Stats
	observe  func(time.Duration)
}

// sweepStaleStoreDirs repairs the store-directory litter a crash during
// a compaction swap leaves behind, before the store is opened. The swap
// sequence is: build dsss.compact (manifest included), rename dsss →
// dsss.prev, rename dsss.compact → dsss, remove dsss.prev — so on open
// exactly one of these states can hold:
//
//	dsss present                → any prev/compact dirs are litter from
//	                              a crash outside the rename window
//	                              (or after a rollback): remove them;
//	dsss absent, prev + compact → crash between the two renames. Roll
//	                              forward: the rebuild is complete
//	                              (renames only start after it), and
//	                              its MANIFEST carries the replay
//	                              point;
//	dsss absent, prev only      → crash after the first rename with no
//	                              completed rebuild to promote: roll
//	                              back.
func sweepStaleStoreDirs(dir string, log *slog.Logger) error {
	cur := filepath.Join(dir, storeDirName)
	prev := filepath.Join(dir, compactPrevName)
	tmp := filepath.Join(dir, compactDirName)
	exists := func(p string) bool {
		st, err := os.Stat(p)
		return err == nil && st.IsDir()
	}
	switch {
	case exists(cur):
		for _, litter := range []string{prev, tmp} {
			if !exists(litter) {
				continue
			}
			if err := os.RemoveAll(litter); err != nil {
				return fmt.Errorf("server: sweep stale %s: %w", litter, err)
			}
			log.Warn("removed stale compaction directory", "dir", litter)
		}
	case exists(tmp) && exists(prev):
		if err := os.Rename(tmp, cur); err != nil {
			return fmt.Errorf("server: roll forward interrupted compaction swap: %w", err)
		}
		if err := os.RemoveAll(prev); err != nil {
			return fmt.Errorf("server: sweep stale %s: %w", prev, err)
		}
		log.Warn("rolled interrupted compaction swap forward", "dir", cur)
	case exists(prev):
		if err := os.Rename(prev, cur); err != nil {
			return fmt.Errorf("server: roll back interrupted compaction swap: %w", err)
		}
		log.Warn("rolled interrupted compaction swap back", "dir", cur)
	}
	return nil
}

// openWAL opens (or creates) the entry's write-ahead log, replays the
// tail beyond the store's MANIFEST position into the delta log, and
// leaves the log accepting appends. Called once during registry open,
// before the entry serves traffic.
func (e *graphEntry) openWAL(cfg walConfig, log *slog.Logger) error {
	if cfg.disabled {
		return nil
	}
	man, err := wal.ReadManifest(filepath.Join(e.dir, storeDirName))
	if err != nil {
		return err
	}
	e.storeGen = man.Generation
	l, err := wal.Open(filepath.Join(e.dir, walDirName), wal.Options{
		Policy:       cfg.policy,
		SegmentBytes: cfg.segment,
		MaxDelay:     cfg.maxDelay,
		MaxBatch:     cfg.maxBatch,
		Stats:        cfg.stats,
		ObserveFsync: cfg.observe,
		Commit:       e.commitBatch,
	})
	if err != nil {
		return err
	}
	replayed, err := l.Replay(man.LastAppliedSeq, e.commitBatch)
	if err != nil {
		l.Close()
		return fmt.Errorf("wal replay: %w", err)
	}
	if replayed > 0 {
		log.Info("wal replayed",
			"graph", e.name,
			"batches", replayed,
			"from_seq", man.LastAppliedSeq,
			"pending_deltas", e.deltaCount(),
		)
	}
	e.wal = l
	return nil
}

// commitBatch is the WAL's commit hook and the replay sink: it lands
// one durable, sequenced batch in the delta log. The committer invokes
// it in sequence order after the batch's fsync and before its Append
// returns, so visibility order always equals log order — exactly what
// replay reproduces after a crash. The sequence makes it idempotent:
// a batch the delta log has already seen (replay after a partial GC)
// is skipped.
func (e *graphEntry) commitBatch(seq uint64, ops []dynamic.Op) error {
	e.deltaMu.Lock()
	defer e.deltaMu.Unlock()
	if e.deltaClosed {
		// Durable but no longer servable here; the next open replays it.
		return errGraphClosing
	}
	if e.delta == nil {
		d, err := dynamic.NewDeltaLog(e.live().Engine().Store())
		if err != nil {
			return fmt.Errorf("server: graph %q: delta log: %w", e.name, err)
		}
		e.delta = d
	}
	if _, applied := e.delta.AppendBatch(seq, ops); applied && e.stats != nil {
		e.stats.DeltaPending.Add(int64(len(ops)))
	}
	return nil
}

// appendDurable logs ops to the graph's WAL and blocks until the batch
// is durable (per the fsync policy) and visible — the commit hook has
// appended it to the delta log. Only then may the ingest handler ack.
// Without a WAL (Config.DisableWAL) it degrades to the in-memory
// visibility-only append.
func (e *graphEntry) appendDurable(ops []dynamic.Op) (pending, deferred int, err error) {
	if e.wal == nil {
		return e.appendDeltas(ops)
	}
	if _, err := e.wal.Append(ops); err != nil {
		return 0, 0, err
	}
	e.deltaMu.Lock()
	defer e.deltaMu.Unlock()
	if e.delta == nil {
		return 0, 0, nil
	}
	return e.delta.Pending(), e.delta.Deferred(), nil
}

// closeWAL stops the entry's log after ingestion has been refused
// (closeDeltas), draining any in-flight group commit first.
func (e *graphEntry) closeWAL() error {
	if e.wal == nil {
		return nil
	}
	if err := e.wal.Close(); err != nil && !errors.Is(err, wal.ErrClosed) {
		return fmt.Errorf("server: graph %q: close wal: %w", e.name, err)
	}
	return nil
}
