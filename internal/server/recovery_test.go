package server

import (
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"testing"

	nxgraph "nxgraph"
	"nxgraph/internal/graph"
)

// buildRecoveryBaseDir writes a 6-vertex ring-with-chords graph, with
// transpose (WCC needs it) and literal 0..5 ids.
func buildRecoveryBaseDir(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	g := &graph.EdgeList{NumVertices: 6}
	for _, e := range [][2]uint32{
		{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 0}, // ring
		{1, 3}, {2, 4}, // chords
	} {
		g.Edges = append(g.Edges, graph.Edge{Src: e[0], Dst: e[1], Weight: 1})
	}
	gr, err := nxgraph.Build(dir, g, nxgraph.Options{P: 2, Transpose: true})
	if err != nil {
		t.Fatal(err)
	}
	gr.Close()
	return dir
}

func copyTree(t *testing.T, src, dst string) {
	t.Helper()
	if err := os.CopyFS(dst, os.DirFS(src)); err != nil {
		t.Fatal(err)
	}
}

// recoveryConfig forces tiny WAL segments so a handful of batches spans
// several files, exercising rotation, GC and multi-segment replay.
func recoveryConfig() Config {
	return Config{Workers: 1, WALSegmentBytes: 128}
}

// openRecoveryServer opens dir as graph "g" on a fresh server. Threads
// is pinned to 1 so float accumulation order — and therefore the
// bitwise result fingerprint — is deterministic across runs.
func openRecoveryServer(t *testing.T, dir string) (*Server, *httptest.Server, func()) {
	t.Helper()
	s := New(recoveryConfig())
	if err := s.OpenGraph("g", dir, nxgraph.Options{Threads: 1}); err != nil {
		s.Close()
		t.Fatalf("open %s: %v", dir, err)
	}
	ts := httptest.NewServer(s.Handler())
	return s, ts, func() { ts.Close(); s.Close() }
}

// recoveryBatches is the ingestion history the crash matrix replays.
// The final batch is exactly 2 ops so its WAL record size is known
// (16-byte header + 4-byte count + 2×21-byte ops = 62 bytes) and the
// pre-fsync crash state can drop precisely that record.
var recoveryBatches = []map[string]any{
	{"add": []map[string]any{{"src": 0, "dst": 3}, {"src": 2, "dst": 5}}},
	{"remove": []map[string]any{{"src": 1, "dst": 2}},
		"add": []map[string]any{{"src": 1, "dst": 4}}},
	{"add": []map[string]any{{"src": 5, "dst": 1}, {"src": 3, "dst": 0}, {"src": 4, "dst": 2}}},
	{"add": []map[string]any{{"src": 2, "dst": 0}},
		"remove": []map[string]any{{"src": 2, "dst": 4}}},
}

const lastRecoveryRecordBytes = 62

func postBatches(t *testing.T, ts *httptest.Server, batches []map[string]any) {
	t.Helper()
	for i, b := range batches {
		if code, body := doJSON(t, "POST", ts.URL+"/v1/graphs/g/edges", b); code != http.StatusAccepted {
			t.Fatalf("ingest batch %d: status %d, body %v", i, code, body)
		}
	}
}

// fingerprint is the bitwise query identity of a served graph state:
// PageRank and WCC values straight off the result endpoint. Go's JSON
// encoding of float64 round-trips exactly, so []float64 equality here
// is bit equality of the engine outputs.
type fingerprint struct {
	pagerank []float64
	wcc      []float64
}

func algoValues(t *testing.T, ts *httptest.Server, algo string, params map[string]any) []float64 {
	t.Helper()
	id := submit(t, ts, "g", algo, params)
	if body := pollUntil(t, ts, id, terminal); body["state"] != "done" {
		t.Fatalf("%s ended %v (error %v)", algo, body["state"], body["error"])
	}
	code, res := doJSON(t, "GET", ts.URL+"/v1/jobs/"+id+"/result", nil)
	if code != http.StatusOK {
		t.Fatalf("%s result: status %d, body %v", algo, code, res)
	}
	raw, _ := res["values"].([]any)
	vals := make([]float64, len(raw))
	for i, v := range raw {
		vals[i], _ = v.(float64)
	}
	return vals
}

func takeFingerprint(t *testing.T, ts *httptest.Server) fingerprint {
	t.Helper()
	return fingerprint{
		pagerank: algoValues(t, ts, "pagerank", map[string]any{"iters": 20}),
		wcc:      algoValues(t, ts, "wcc", nil),
	}
}

// fingerprintDir opens dir cleanly and queries it — the never-crashed
// reference every recovered state must match bitwise.
func fingerprintDir(t *testing.T, dir string) fingerprint {
	t.Helper()
	_, ts, closeAll := openRecoveryServer(t, dir)
	defer closeAll()
	return takeFingerprint(t, ts)
}

// tailSegment returns the path of the last (active) WAL segment.
func tailSegment(t *testing.T, dir string) string {
	t.Helper()
	ents, err := os.ReadDir(filepath.Join(dir, walDirName))
	if err != nil {
		t.Fatal(err)
	}
	var segs []string
	for _, e := range ents {
		if strings.HasSuffix(e.Name(), ".wal") {
			segs = append(segs, e.Name())
		}
	}
	if len(segs) == 0 {
		t.Fatal("no wal segments")
	}
	sort.Strings(segs)
	return filepath.Join(dir, walDirName, segs[len(segs)-1])
}

// TestCrashRecoveryMatrix constructs the on-disk state a crash leaves
// at each kill point of the ingest and compaction paths, reopens it,
// and requires the recovered graph's PageRank and WCC outputs to be
// bitwise equal to a never-crashed reference serving the batches that
// should have survived.
func TestCrashRecoveryMatrix(t *testing.T) {
	base := buildRecoveryBaseDir(t)

	// dirA: every batch ingested and durable, never compacted.
	dirA := t.TempDir()
	copyTree(t, base, dirA)
	{
		_, ts, closeAll := openRecoveryServer(t, dirA)
		postBatches(t, ts, recoveryBatches)
		closeAll()
	}

	// dirB: dirA after a completed compaction (new store generation,
	// MANIFEST, WAL garbage-collected).
	dirB := t.TempDir()
	copyTree(t, dirA, dirB)
	{
		_, ts, closeAll := openRecoveryServer(t, dirB)
		code, snap := doJSON(t, "POST", ts.URL+"/v1/graphs/g/compact", nil)
		if code != http.StatusAccepted {
			t.Fatalf("compact: status %d, body %v", code, snap)
		}
		if end := pollUntil(t, ts, snap["id"].(string), terminal); end["state"] != "done" {
			t.Fatalf("compaction ended %v (error %v)", end["state"], end["error"])
		}
		closeAll()
	}

	expectAll := fingerprintDir(t, cloneDir(t, dirA))
	expectCompacted := fingerprintDir(t, cloneDir(t, dirB))
	// Reference for the pre-fsync crash: a server that only ever saw
	// the first three batches.
	var expectAllButLast fingerprint
	{
		dir := cloneDir(t, base)
		_, ts, closeAll := openRecoveryServer(t, dir)
		postBatches(t, ts, recoveryBatches[:3])
		expectAllButLast = takeFingerprint(t, ts)
		closeAll()
	}
	if reflect.DeepEqual(expectAll, expectAllButLast) {
		t.Fatal("last batch does not change query results; matrix cannot distinguish losing it")
	}

	cases := []struct {
		name string
		from string // which master dir the crash state starts from
		prep func(t *testing.T, dir string)
		want fingerprint
	}{
		{
			// Crash mid-append: the tail carries a torn half-written
			// record. Reopen truncates it; every acked batch survives.
			name: "mid-append torn tail",
			from: "A",
			prep: func(t *testing.T, dir string) {
				f, err := os.OpenFile(tailSegment(t, dir), os.O_WRONLY|os.O_APPEND, 0)
				if err != nil {
					t.Fatal(err)
				}
				if _, err := f.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF}); err != nil {
					t.Fatal(err)
				}
				f.Close()
			},
			want: expectAll,
		},
		{
			// Crash after write but before fsync: the OS lost the final
			// record, and the client never got its ack (responses are
			// written after the fsync). Recovery serves everything else.
			name: "pre-fsync lost record",
			from: "A",
			prep: func(t *testing.T, dir string) {
				seg := tailSegment(t, dir)
				st, err := os.Stat(seg)
				if err != nil {
					t.Fatal(err)
				}
				if st.Size() < lastRecoveryRecordBytes {
					t.Fatalf("tail segment only %d bytes", st.Size())
				}
				if err := os.Truncate(seg, st.Size()-lastRecoveryRecordBytes); err != nil {
					t.Fatal(err)
				}
			},
			want: expectAllButLast,
		},
		{
			// Crash after fsync but before the ack reached the client:
			// the batch is durable, so replay must surface it anyway.
			name: "post-fsync pre-ack",
			from: "A",
			prep: func(t *testing.T, dir string) {},
			want: expectAll,
		},
		{
			// Crash mid-rebuild: a half-built dsss.compact with no swap
			// started. The sweep discards it; the old store plus full
			// WAL replay serves everything.
			name: "mid-rebuild litter",
			from: "A",
			prep: func(t *testing.T, dir string) {
				junk := filepath.Join(dir, compactDirName)
				if err := os.MkdirAll(junk, 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(filepath.Join(junk, "partial.bin"), []byte("junk"), 0o644); err != nil {
					t.Fatal(err)
				}
			},
			want: expectAll,
		},
		{
			// Crash between the two swap renames: dsss is gone, the old
			// store sits at dsss.prev and the complete rebuild (with its
			// MANIFEST) at dsss.compact. The sweep rolls forward and the
			// manifest stops replay from double-applying folded batches.
			name: "mid-swap between renames",
			from: "A",
			prep: func(t *testing.T, dir string) {
				if err := os.Rename(filepath.Join(dir, storeDirName), filepath.Join(dir, compactPrevName)); err != nil {
					t.Fatal(err)
				}
				copyTree(t, filepath.Join(dirB, storeDirName), filepath.Join(dir, compactDirName))
			},
			want: expectCompacted,
		},
		{
			// Crash after the swap published the new store but before
			// the old one was deleted: dsss.prev litter plus a WAL not
			// yet garbage-collected. Sweep removes the litter; replay
			// dedups the folded batches.
			name: "mid-swap before prev removal",
			from: "B",
			prep: func(t *testing.T, dir string) {
				copyTree(t, filepath.Join(dirA, storeDirName), filepath.Join(dir, compactPrevName))
				if err := os.RemoveAll(filepath.Join(dir, walDirName)); err != nil {
					t.Fatal(err)
				}
				copyTree(t, filepath.Join(dirA, walDirName), filepath.Join(dir, walDirName))
			},
			want: expectCompacted,
		},
		{
			// Crash mid-GC: the new store is live but stale WAL segments
			// survived. Replay skips every batch the manifest covers.
			name: "mid-gc stale segments",
			from: "B",
			prep: func(t *testing.T, dir string) {
				if err := os.RemoveAll(filepath.Join(dir, walDirName)); err != nil {
					t.Fatal(err)
				}
				copyTree(t, filepath.Join(dirA, walDirName), filepath.Join(dir, walDirName))
			},
			want: expectCompacted,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			master := dirA
			if tc.from == "B" {
				master = dirB
			}
			dir := cloneDir(t, master)
			tc.prep(t, dir)
			got := fingerprintDir(t, dir)
			if !reflect.DeepEqual(got.pagerank, tc.want.pagerank) {
				t.Errorf("pagerank diverged after recovery:\n got %v\nwant %v", got.pagerank, tc.want.pagerank)
			}
			if !reflect.DeepEqual(got.wcc, tc.want.wcc) {
				t.Errorf("wcc diverged after recovery:\n got %v\nwant %v", got.wcc, tc.want.wcc)
			}
		})
	}
}

func cloneDir(t *testing.T, src string) string {
	t.Helper()
	dst := t.TempDir()
	copyTree(t, src, dst)
	return dst
}

// TestRecoveryTornTailMetric: reopening a log with a torn tail surfaces
// it on /metrics, and ingestion keeps working afterwards.
func TestRecoveryTornTailMetric(t *testing.T) {
	base := buildRecoveryBaseDir(t)
	dir := cloneDir(t, base)
	{
		_, ts, closeAll := openRecoveryServer(t, dir)
		postBatches(t, ts, recoveryBatches[:1])
		closeAll()
	}
	f, err := os.OpenFile(tailSegment(t, dir), os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("torn")); err != nil {
		t.Fatal(err)
	}
	f.Close()

	_, ts, closeAll := openRecoveryServer(t, dir)
	defer closeAll()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		"nxserve_wal_torn_tails_total 1",
		"nxserve_wal_replayed_batches_total 1",
	} {
		if !strings.Contains(string(body), want) {
			t.Fatalf("metrics missing %q:\n%s", want, body)
		}
	}
	postBatches(t, ts, recoveryBatches[1:2]) // log still accepts appends
}

// TestSweepStaleStoreDirs drives the three crash states the sweep
// repairs, plus the clean fast path.
func TestSweepStaleStoreDirs(t *testing.T) {
	log := slog.New(slog.NewTextHandler(io.Discard, nil))
	mk := func(t *testing.T, dir, sub, marker string) {
		t.Helper()
		if err := os.MkdirAll(filepath.Join(dir, sub), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, sub, marker), []byte(marker), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	exists := func(p string) bool { _, err := os.Stat(p); return err == nil }

	t.Run("litter removed around live store", func(t *testing.T) {
		dir := t.TempDir()
		mk(t, dir, storeDirName, "live")
		mk(t, dir, compactPrevName, "old")
		mk(t, dir, compactDirName, "half")
		if err := sweepStaleStoreDirs(dir, log); err != nil {
			t.Fatal(err)
		}
		if !exists(filepath.Join(dir, storeDirName, "live")) {
			t.Fatal("live store touched")
		}
		if exists(filepath.Join(dir, compactPrevName)) || exists(filepath.Join(dir, compactDirName)) {
			t.Fatal("litter survived the sweep")
		}
	})
	t.Run("roll forward", func(t *testing.T) {
		dir := t.TempDir()
		mk(t, dir, compactPrevName, "old")
		mk(t, dir, compactDirName, "rebuilt")
		if err := sweepStaleStoreDirs(dir, log); err != nil {
			t.Fatal(err)
		}
		if !exists(filepath.Join(dir, storeDirName, "rebuilt")) {
			t.Fatal("rebuilt store not promoted")
		}
		if exists(filepath.Join(dir, compactPrevName)) || exists(filepath.Join(dir, compactDirName)) {
			t.Fatal("swap leftovers survived")
		}
	})
	t.Run("roll back", func(t *testing.T) {
		dir := t.TempDir()
		mk(t, dir, compactPrevName, "old")
		if err := sweepStaleStoreDirs(dir, log); err != nil {
			t.Fatal(err)
		}
		if !exists(filepath.Join(dir, storeDirName, "old")) {
			t.Fatal("old store not restored")
		}
		if exists(filepath.Join(dir, compactPrevName)) {
			t.Fatal("prev dir survived the rollback")
		}
	})
	t.Run("clean dir untouched", func(t *testing.T) {
		dir := t.TempDir()
		mk(t, dir, storeDirName, "live")
		if err := sweepStaleStoreDirs(dir, log); err != nil {
			t.Fatal(err)
		}
		if !exists(filepath.Join(dir, storeDirName, "live")) {
			t.Fatal("live store touched")
		}
	})
}
