package server

import (
	"errors"
	"fmt"
	"log/slog"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	nxgraph "nxgraph"
	"nxgraph/internal/blockcache"
	"nxgraph/internal/dynamic"
	"nxgraph/internal/engine"
	"nxgraph/internal/metrics"
	"nxgraph/internal/wal"
)

// errAlreadyOpen marks open() failures caused by a name collision (the
// HTTP layer maps it to 409 instead of 400).
var errAlreadyOpen = errors.New("graph already open")

// errNotOpen marks closeEntry() failures where the registration is no
// longer current (HTTP 404) — distinct from store-close I/O errors.
var errNotOpen = errors.New("graph not open")

// graphEntry is one opened DSSS store in the registry. runMu serializes
// engine executions on the store: the attribute and hub files backing a
// run are per-store resources, so two concurrent runs on one graph would
// corrupt each other. Distinct graphs run fully in parallel.
//
// uid is unique per registration — cache keys embed it rather than the
// name, so a name rebound to a different store can never hit results
// cached for the previous store, regardless of close/reopen timing.
// The opened graph lives behind an atomic pointer because background
// compaction swaps in a freshly rebuilt store while the entry keeps
// serving: readers take a consistent *nxgraph.Graph via live(), and the
// swap itself happens under runMu so it never races an engine run.
type graphEntry struct {
	name   string
	uid    string
	dir    string
	graph  atomic.Pointer[nxgraph.Graph]
	opt    nxgraph.Options
	opened time.Time

	// cache is the server's shared sub-shard block cache; bcGen is the
	// store generation this entry's current store is keyed under. A
	// compaction swap allocates a fresh generation for the rebuilt store
	// and invalidates the old one under runMu, so a block decoded from
	// the retired store (now dsss.prev) can never be served again.
	cache *blockcache.Cache
	bcGen uint64

	// deltaMu guards delta and deltaClosed (the pointer and flag — the
	// log itself is internally synchronized). The log is created lazily
	// on the first ingest: read-only graphs never pay its id-map and
	// degree-array footprint. Lock order where both are needed: runMu,
	// then deltaMu.
	deltaMu     sync.Mutex
	delta       *dynamic.DeltaLog
	deltaClosed bool
	stats       *metrics.ServerStats

	// wal is the graph's write-ahead log (nil when Config.DisableWAL):
	// handleIngest appends to it and acks only after the batch is
	// durable; its commit hook lands batches in delta in sequence
	// order. storeGen is the served store's compaction generation from
	// its MANIFEST — the next compaction stamps storeGen+1 into the
	// rebuilt store. Both are written at open and (storeGen) by the
	// serialized compaction path.
	wal      *wal.Log
	storeGen uint64

	// compactMu guards compactJob, the entry's one live compaction.
	compactMu  sync.Mutex
	compactJob *Job

	runMu  sync.Mutex
	closed bool
	// busy is the scheduler's dispatch claim: a worker takes a job
	// only after CASing busy, so pool slots never park on runMu behind
	// another worker — same-graph jobs wait in the queue while other
	// graphs' jobs run. (runMu still guards against registry close.)
	busy atomic.Bool
	// draining is set when closure begins, before the job sweep: new
	// submissions are refused and a job that slipped past the sweep
	// refuses to start, so close never waits behind a full engine run
	// born during the close itself.
	draining atomic.Bool
}

// GraphInfo is the JSON view of a registered graph.
type GraphInfo struct {
	Name        string    `json:"name"`
	Dir         string    `json:"dir"`
	NumVertices uint32    `json:"num_vertices"`
	NumEdges    int64     `json:"num_edges"`
	P           int       `json:"p"`
	OpenedAt    time.Time `json:"opened_at"`
	// PendingDeltas is the number of uncompacted ingestion ops; the
	// served edge set is the store plus these.
	PendingDeltas int `json:"pending_deltas,omitempty"`
	// DeltaEdges is the net served edge-count delta of the overlay.
	DeltaEdges int64 `json:"delta_edges,omitempty"`
}

// registry holds the set of opened graphs by name. Store directories
// are tracked too: one dir may be open under at most one name, because
// the per-graph run serialization (runMu) keys off the entry — two
// entries over one store would defeat it and corrupt the store's
// attribute and hub files under concurrent jobs.
type registry struct {
	mu     sync.Mutex
	graphs map[string]*graphEntry
	dirs   map[string]string // canonical store dir -> graph name
	seq    int64             // uid generator
	stats  *metrics.ServerStats
	cache  *blockcache.Cache // shared block cache handed to every entry
	walCfg walConfig         // WAL settings applied to every opened graph
	log    *slog.Logger
}

func newRegistry(stats *metrics.ServerStats, cache *blockcache.Cache, walCfg walConfig, log *slog.Logger) *registry {
	if log == nil {
		log = slog.Default()
	}
	return &registry{
		graphs: make(map[string]*graphEntry),
		dirs:   make(map[string]string),
		stats:  stats,
		cache:  cache,
		walCfg: walCfg,
		log:    log,
	}
}

// canonDir canonicalizes a store dir for the dirs index.
func canonDir(dir string) string {
	if abs, err := filepath.Abs(dir); err == nil {
		return abs
	}
	return filepath.Clean(dir)
}

// open opens the DSSS store at dir and registers it under name. Opening
// an already-registered name, or a dir already open under another name,
// fails; close the existing registration first.
func (r *registry) open(name, dir string, opt nxgraph.Options) (*graphEntry, error) {
	if name == "" {
		return nil, fmt.Errorf("server: graph name must not be empty")
	}
	cdir := canonDir(dir)
	check := func() error {
		if _, ok := r.graphs[name]; ok {
			return fmt.Errorf("server: graph %q: %w", name, errAlreadyOpen)
		}
		if other, ok := r.dirs[cdir]; ok {
			return fmt.Errorf("server: store %s: %w as graph %q", dir, errAlreadyOpen, other)
		}
		return nil
	}
	r.mu.Lock()
	err := check()
	r.mu.Unlock()
	if err != nil {
		return nil, err
	}
	// Repair crash litter (an interrupted compaction swap) before the
	// store is touched: the sweep may be the thing that puts the dsss
	// directory back in place.
	if err := sweepStaleStoreDirs(dir, r.log); err != nil {
		return nil, fmt.Errorf("server: open graph %q: %w", name, err)
	}
	g, err := nxgraph.Open(dir, opt)
	if err != nil {
		return nil, fmt.Errorf("server: open graph %q: %w", name, err)
	}
	e := &graphEntry{name: name, dir: dir, opt: opt, opened: time.Now(), stats: r.stats}
	e.cache = r.cache
	e.bcGen = blockcache.NextGeneration()
	e.bind(g)
	e.graph.Store(g)
	// Open the WAL and replay its tail (acked batches beyond the
	// store's MANIFEST position) into the delta log before the entry is
	// visible to traffic.
	if err := e.openWAL(r.walCfg, r.log); err != nil {
		g.Close()
		return nil, fmt.Errorf("server: open graph %q: %w", name, err)
	}
	r.mu.Lock()
	if err := check(); err != nil {
		r.mu.Unlock()
		e.closeWAL()
		g.Close()
		return nil, err
	}
	r.seq++
	e.uid = fmt.Sprintf("%s#%d", name, r.seq)
	r.graphs[name] = e
	r.dirs[cdir] = name
	if r.stats != nil {
		// Published under mu so concurrent open/close cannot store
		// stale gauge values out of order.
		r.stats.GraphsOpen.Store(int64(len(r.graphs)))
	}
	r.mu.Unlock()
	r.log.Info("graph opened",
		"graph", name,
		"dir", dir,
		"uid", e.uid,
		"vertices", g.NumVertices(),
		"edges", g.NumEdges(),
		"p", g.P(),
	)
	return e, nil
}

// get returns the entry for name.
func (r *registry) get(name string) (*graphEntry, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.graphs[name]
	return e, ok
}

// list returns info for every registered graph, sorted by name.
func (r *registry) list() []GraphInfo {
	r.mu.Lock()
	entries := make([]*graphEntry, 0, len(r.graphs))
	for _, e := range r.graphs {
		entries = append(entries, e)
	}
	r.mu.Unlock()
	sort.Slice(entries, func(i, j int) bool { return entries[i].name < entries[j].name })
	out := make([]GraphInfo, len(entries))
	for i, e := range entries {
		out[i] = e.info()
	}
	return out
}

// live returns the entry's currently served graph. The pointer is
// stable for the caller's use, but long operations that must not span a
// compaction swap (engine runs) additionally hold runMu.
func (e *graphEntry) live() *nxgraph.Graph { return e.graph.Load() }

// bind wires a freshly opened graph to the entry's serving state: the
// delta-overlay provider and the shared block cache under the entry's
// current store generation.
func (e *graphEntry) bind(g *nxgraph.Graph) {
	e.installOverlay(g)
	if e.cache != nil {
		g.Engine().SetBlockCache(e.cache, e.bcGen)
	}
}

// installOverlay binds g's engine to the entry's delta log, so every
// run snapshots the deltas pending at its start.
func (e *graphEntry) installOverlay(g *nxgraph.Graph) {
	g.Engine().SetOverlayProvider(func() (engine.Overlay, error) {
		e.deltaMu.Lock()
		d := e.delta
		e.deltaMu.Unlock()
		if d == nil {
			return nil, nil
		}
		return d.Overlay()
	})
}

// deltaCount returns the number of delta ops acked so far — the value
// folded into cache keys so results computed against different delta
// states never alias (see cacheKey).
func (e *graphEntry) deltaCount() int {
	e.deltaMu.Lock()
	d := e.delta
	e.deltaMu.Unlock()
	if d == nil {
		return 0
	}
	return d.Pending()
}

// deltaLog returns the entry's live delta log (nil before the first
// ingest).
func (e *graphEntry) deltaLog() *dynamic.DeltaLog {
	e.deltaMu.Lock()
	defer e.deltaMu.Unlock()
	return e.delta
}

// appendDeltas appends ops to the entry's current delta log (created
// lazily here on the first ingest), holding deltaMu across the pointer
// read and the append so a concurrent compaction swap (which replaces
// the log via Advance) can never strand an acknowledged batch on the
// discarded log. The pending gauge moves inside the same critical
// section, and closeDeltas sets deltaClosed before its subtraction, so
// an ingest racing a graph close either lands before the close (and is
// counted into its subtraction) or is refused — the gauge cannot leak.
// Returns the pending and deferred counts after the append.
func (e *graphEntry) appendDeltas(ops []dynamic.Op) (pending, deferred int, err error) {
	e.deltaMu.Lock()
	defer e.deltaMu.Unlock()
	if e.deltaClosed {
		return 0, 0, errGraphClosing
	}
	if e.delta == nil {
		d, err := dynamic.NewDeltaLog(e.live().Engine().Store())
		if err != nil {
			return 0, 0, fmt.Errorf("server: graph %q: delta log: %w", e.name, err)
		}
		e.delta = d
	}
	pending = e.delta.Append(ops...)
	if e.stats != nil {
		e.stats.DeltaPending.Add(int64(len(ops)))
	}
	return pending, e.delta.Deferred(), nil
}

// closeDeltas refuses further ingestion and returns the entry's pending
// ops to the global gauge. Called on every close path.
func (e *graphEntry) closeDeltas() {
	e.deltaMu.Lock()
	defer e.deltaMu.Unlock()
	if e.deltaClosed {
		return
	}
	e.deltaClosed = true
	if e.delta != nil && e.stats != nil {
		e.stats.DeltaPending.Add(-int64(e.delta.Pending()))
	}
}

func (e *graphEntry) info() GraphInfo {
	g := e.live()
	info := GraphInfo{
		Name:        e.name,
		Dir:         e.dir,
		NumVertices: g.NumVertices(),
		NumEdges:    g.NumEdges(),
		P:           g.P(),
		OpenedAt:    e.opened,
	}
	if d := e.deltaLog(); d != nil {
		info.PendingDeltas = d.Pending()
		// Only report the net edge delta when a snapshot is already
		// compiled — a metadata read must not trigger compilation (which
		// reads base cells to count tombstoned copies).
		if ov := d.CachedOverlay(); ov != nil {
			info.DeltaEdges = ov.DeltaEdges()
		}
	}
	return info
}

// closeEntry removes the given registration and closes its store. It
// no-ops (with an error) if the name has since been rebound to a
// different registration, so a stale DELETE cannot kill a fresh graph.
// It waits for any in-flight run on the graph to finish (callers should
// cancel the graph's jobs first if they want prompt closure). The name
// frees immediately, but the dir index entry is held until the
// in-flight run has drained — otherwise the same store could be
// reopened and run concurrently with the old run's final sub-shard
// batches.
func (r *registry) closeEntry(e *graphEntry) error {
	r.mu.Lock()
	if r.graphs[e.name] != e {
		r.mu.Unlock()
		return fmt.Errorf("server: graph %q: %w", e.name, errNotOpen)
	}
	delete(r.graphs, e.name)
	if r.stats != nil {
		r.stats.GraphsOpen.Store(int64(len(r.graphs)))
	}
	r.mu.Unlock()
	e.runMu.Lock()
	e.closed = true
	e.runMu.Unlock()
	e.closeDeltas()
	err := errors.Join(e.closeWAL(), e.live().Close())
	if e.cache != nil {
		// No run can start on a closed entry, so the generation's blocks
		// are unreachable: free their budget share now.
		e.cache.InvalidateGeneration(e.bcGen)
	}
	r.mu.Lock()
	delete(r.dirs, canonDir(e.dir))
	r.mu.Unlock()
	r.log.Info("graph closed", "graph", e.name, "uid", e.uid)
	return err
}

// closeAll closes every graph (shutdown path). The dir index is cleared
// only after every run has drained, mirroring close.
func (r *registry) closeAll() {
	r.mu.Lock()
	entries := make([]*graphEntry, 0, len(r.graphs))
	for _, e := range r.graphs {
		entries = append(entries, e)
	}
	r.graphs = make(map[string]*graphEntry)
	if r.stats != nil {
		r.stats.GraphsOpen.Store(0)
	}
	r.mu.Unlock()
	for _, e := range entries {
		e.runMu.Lock()
		e.closed = true
		e.runMu.Unlock()
		e.closeDeltas()
		if err := e.closeWAL(); err != nil {
			r.log.Error("wal close failed", "graph", e.name, "error", err.Error())
		}
		e.live().Close()
		if e.cache != nil {
			e.cache.InvalidateGeneration(e.bcGen)
		}
		r.log.Info("graph closed", "graph", e.name, "uid", e.uid)
	}
	r.mu.Lock()
	r.dirs = make(map[string]string)
	r.mu.Unlock()
}
