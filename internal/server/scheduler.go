package server

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"nxgraph/internal/metrics"
	"nxgraph/internal/trace"
)

// ErrQueueFull is returned by submit when the pending-job queue is at
// capacity; HTTP maps it to 503.
var ErrQueueFull = errors.New("server: job queue full")

// errShutdown is returned by submit after shutdown began; HTTP maps it
// to 503 (a server condition, not a client error).
var errShutdown = errors.New("server: shutting down")

// errGraphClosing is returned by submit while the target graph is being
// closed; HTTP maps it to 409.
var errGraphClosing = errors.New("server: graph is closing")

// scheduler owns the bounded worker pool and the job table. Jobs enter
// through submit (which consults the result cache first), wait in a
// bounded pending list, and execute on one of workers goroutines. The
// pending list (not a channel) lets cancellation remove a queued job
// immediately, freeing its capacity slot instead of leaving a corpse
// that still counts against the bound. Per graph, execution serializes
// on the graphEntry's runMu; the pool bound caps total engine
// concurrency across graphs.
type scheduler struct {
	cache *resultCache
	stats *metrics.ServerStats
	hist  *metrics.ServerHistograms
	log   *slog.Logger

	mu            sync.Mutex
	cond          *sync.Cond // signalled on pending growth and on stop
	pending       []*Job     // waiting jobs, oldest first
	queueCap      int
	maxBatch      int // fairness cap on fused batch width (1 = no fusion)
	stopped       bool
	jobs          map[string]*Job
	seq           int64
	retain        int
	retainBytes   int64 // byte bound on retained terminal results
	terminal      []terminalRef
	terminalBytes int64

	baseCtx   context.Context
	cancelAll context.CancelFunc
	wg        sync.WaitGroup
}

func newScheduler(workers, queueCap, retainJobs, maxBatch int, retainBytes int64, cache *resultCache, stats *metrics.ServerStats, hist *metrics.ServerHistograms, log *slog.Logger) *scheduler {
	if workers <= 0 {
		workers = 2
	}
	if maxBatch <= 0 {
		maxBatch = 16
	}
	if hist == nil {
		hist = metrics.NewServerHistograms()
	}
	if log == nil {
		log = slog.Default()
	}
	if queueCap <= 0 {
		queueCap = 64
	}
	if retainJobs <= 0 {
		retainJobs = 1000
	}
	if retainBytes <= 0 {
		retainBytes = 256 << 20
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &scheduler{
		cache:       cache,
		stats:       stats,
		hist:        hist,
		log:         log,
		queueCap:    queueCap,
		maxBatch:    maxBatch,
		jobs:        make(map[string]*Job),
		retain:      retainJobs,
		retainBytes: retainBytes,
		baseCtx:     ctx,
		cancelAll:   cancel,
	}
	s.cond = sync.NewCond(&s.mu)
	s.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go s.worker()
	}
	return s
}

// submit validates, registers and enqueues a job for entry. A cache hit
// completes the job immediately without queueing.
func (s *scheduler) submit(entry *graphEntry, algo string, params Params) (*Job, error) {
	params = params.withDefaults(algo)
	if err := validateAlgo(algo, params, entry.live()); err != nil {
		return nil, err
	}
	if entry.draining.Load() {
		return nil, errGraphClosing
	}
	j := &Job{
		Graph:     entry.name,
		Algo:      algo,
		Params:    params,
		submitted: time.Now(),
		done:      make(chan struct{}),
		entry:     entry,
	}

	// The sequence id is allocated inside the same critical section as
	// the accept checks: rejections must not consume an id, because
	// existed() relies on "every id at or below seq was registered" to
	// tell pruned jobs (410) apart from never-created ones (404).
	delta := entry.deltaCount()
	j.deltaAtSubmit = delta
	key := cacheKey(entry.uid, delta, algo, params)
	if res, ok := s.cache.get(key); ok {
		j.state = Done
		j.result = res
		j.cacheHit = true
		j.started = j.submitted
		j.finished = j.submitted
		close(j.done)
		s.mu.Lock()
		if s.stopped {
			s.mu.Unlock()
			return nil, errShutdown
		}
		s.seq++
		j.ID = fmt.Sprintf("j-%08d", s.seq)
		s.jobs[j.ID] = j
		s.mu.Unlock()
		s.retire(j, res)
		s.stats.JobsSubmitted.Add(1)
		s.stats.CacheHits.Add(1)
		s.stats.JobsCompleted.Add(1)
		return j, nil
	}
	j.state = Pending
	s.mu.Lock()
	if s.stopped {
		s.mu.Unlock()
		return nil, errShutdown
	}
	if len(s.pending) >= s.queueCap {
		s.mu.Unlock()
		return nil, ErrQueueFull
	}
	s.seq++
	j.ID = fmt.Sprintf("j-%08d", s.seq)
	s.jobs[j.ID] = j
	s.pending = append(s.pending, j)
	s.stats.QueueDepth.Store(int64(len(s.pending)))
	s.mu.Unlock()
	s.cond.Signal()
	// Counters move only for accepted jobs, so submitted ==
	// completed + failed + cancelled + pending + running holds.
	// CacheMisses is counted at execution time (when the engine
	// actually runs), so a queued duplicate later served by the
	// execute-time cache check registers as a hit, not a miss.
	s.stats.JobsSubmitted.Add(1)
	return j, nil
}

// submitCompact registers and enqueues a compaction job for entry. At
// most one compaction per graph is live at a time: if one is already
// pending or running, it is returned with created == false instead of
// queueing a duplicate, making POST .../compact idempotent.
func (s *scheduler) submitCompact(entry *graphEntry) (j *Job, created bool, err error) {
	if entry.draining.Load() {
		return nil, false, errGraphClosing
	}
	entry.compactMu.Lock()
	defer entry.compactMu.Unlock()
	if cur := entry.compactJob; cur != nil {
		if st := cur.State(); st == Pending || st == Running {
			return cur, false, nil
		}
	}
	j = &Job{
		Graph:     entry.name,
		Algo:      "compact",
		kind:      jobCompact,
		state:     Pending,
		submitted: time.Now(),
		done:      make(chan struct{}),
		entry:     entry,
	}
	s.mu.Lock()
	if s.stopped {
		s.mu.Unlock()
		return nil, false, errShutdown
	}
	if len(s.pending) >= s.queueCap {
		s.mu.Unlock()
		return nil, false, ErrQueueFull
	}
	s.seq++
	j.ID = fmt.Sprintf("j-%08d", s.seq)
	s.jobs[j.ID] = j
	s.pending = append(s.pending, j)
	s.stats.QueueDepth.Store(int64(len(s.pending)))
	s.mu.Unlock()
	s.cond.Signal()
	s.stats.JobsSubmitted.Add(1)
	entry.compactJob = j
	return j, true, nil
}

// terminalRef tracks one retained terminal job for pruning.
type terminalRef struct {
	id    string
	bytes int64 // result footprint pinned by the retained job
}

// retire records a terminal job and prunes the oldest terminal jobs
// beyond the retention caps — a count bound and a byte bound on the
// pinned results — so the job table cannot grow without bound (nor pin
// multi-GB result arrays) in a long-running server. res is the result
// the job retains (nil for cancelled/failed jobs). Cache-hit jobs
// account at full size even though they initially share the owner's
// array: the cache can evict (and the owner be pruned) while this job
// still pins it, so under-counting shared results would let the byte
// bound be defeated. The newest terminal job is never pruned, so a
// result always survives long enough to be fetched at least once.
// Callers may hold j.mu — retire must not take it, which is why res is
// passed explicitly.
func (s *scheduler) retire(j *Job, res *Result) {
	var bytes int64
	if res != nil {
		bytes = res.sizeBytes()
	}
	s.mu.Lock()
	s.terminal = append(s.terminal, terminalRef{j.ID, bytes})
	s.terminalBytes += bytes
	for len(s.terminal) > 1 &&
		(len(s.terminal) > s.retain || s.terminalBytes > s.retainBytes) {
		old := s.terminal[0]
		s.terminal = s.terminal[1:]
		s.terminalBytes -= old.bytes
		delete(s.jobs, old.id)
	}
	s.mu.Unlock()
}

// removePending drops j from the pending list if still queued, freeing
// its capacity slot. Caller must ensure j cannot re-enter the list.
func (s *scheduler) removePending(j *Job) {
	s.mu.Lock()
	for i, p := range s.pending {
		if p == j {
			s.pending = append(s.pending[:i], s.pending[i+1:]...)
			break
		}
	}
	s.stats.QueueDepth.Store(int64(len(s.pending)))
	s.mu.Unlock()
}

// get returns the job with the given id.
func (s *scheduler) get(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// existed reports whether id names a job that was once registered but
// has since been pruned from the retention window. Ids are sequential
// ("j-%08d") and registration is immediate, so any canonically-formed
// id at or below the current sequence that is absent from the table was
// pruned. Non-canonical spellings ("j-5", trailing garbage) are not
// job ids at all and report false.
func (s *scheduler) existed(id string) bool {
	digits, ok := strings.CutPrefix(id, "j-")
	if !ok || len(digits) < 8 {
		return false
	}
	n, err := strconv.ParseInt(digits, 10, 64)
	// Round-tripping through the id formatter rejects every
	// non-canonical spelling (extra zero-padding, trailing garbage is
	// already a ParseInt error) at any digit width.
	if err != nil || n <= 0 || fmt.Sprintf("j-%08d", n) != id {
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return n <= s.seq
}

// list returns a snapshot of every known job, newest first.
func (s *scheduler) list() []Snapshot {
	s.mu.Lock()
	jobs := make([]*Job, 0, len(s.jobs))
	for _, j := range s.jobs {
		jobs = append(jobs, j)
	}
	s.mu.Unlock()
	out := make([]Snapshot, len(jobs))
	for i, j := range jobs {
		out[i] = j.Snapshot()
	}
	// Ids are zero-padded sequence numbers; compare length before
	// bytes so ordering survives ids wider than the 8-digit padding.
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].ID, out[j].ID
		if len(a) != len(b) {
			return len(a) > len(b)
		}
		return a > b
	})
	return out
}

// cancelGraph cancels every live job belonging to exactly this
// registration (pointer identity, so a name rebound to a new entry is
// untouched by a stale close).
func (s *scheduler) cancelGraph(e *graphEntry) {
	s.mu.Lock()
	var victims []*Job
	for _, j := range s.jobs {
		if j.entry == e {
			victims = append(victims, j)
		}
	}
	s.mu.Unlock()
	for _, j := range victims {
		s.cancelJob(j)
	}
}

// cancelJob requests cancellation: a pending job terminates immediately,
// a running job has its context cancelled and terminates at the engine's
// next cancellation point. Terminal jobs are left untouched (returns
// false).
func (s *scheduler) cancelJob(j *Job) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	switch j.state {
	case Pending:
		j.state = Cancelled
		j.err = context.Canceled
		j.finished = time.Now()
		close(j.done)
		s.removePending(j)
		s.retire(j, nil)
		s.stats.JobsCancelled.Add(1)
		return true
	case Running:
		if !j.cancelReq {
			j.cancelReq = true
			if j.cancel != nil {
				j.cancel()
			}
		}
		return true
	default:
		return false
	}
}

// worker drains the pending list, executing one job at a time. It takes
// the oldest job whose graph is not already running (claimed via the
// entry's busy flag) so one graph's backlog never idles a pool slot
// that another graph's job could use. After claiming a fusable job it
// also claims every compatible queued job (up to the maxBatch fairness
// cap) and runs them all as one fused engine batch.
func (s *scheduler) worker() {
	defer s.wg.Done()
	for {
		s.mu.Lock()
		var j *Job
		for {
			for i, p := range s.pending {
				// Compactions don't occupy the graph's run slot: the
				// rebuild only reads the base store, so queries keep
				// running while it proceeds (one live compaction per
				// graph is enforced at submission).
				if p.kind == jobCompact || p.entry.busy.CompareAndSwap(false, true) {
					j = p
					s.pending = append(s.pending[:i], s.pending[i+1:]...)
					break
				}
			}
			if j != nil {
				break
			}
			if s.stopped && len(s.pending) == 0 {
				s.mu.Unlock()
				return
			}
			s.cond.Wait()
		}
		extra := s.claimCompatibleLocked(j)
		s.stats.QueueDepth.Store(int64(len(s.pending)))
		s.mu.Unlock()
		if len(extra) > 0 {
			s.executeFused(j, extra)
		} else {
			s.execute(j)
		}
	}
}

// execute runs one job to a terminal state. For algorithm jobs the
// caller (worker) holds the entry's busy claim; it is released here,
// waking waiters that may have skipped this graph's queued jobs. The
// release happens under s.mu — a worker that saw busy=true does so
// while holding the lock, so the release (and its broadcast) cannot
// slip between that observation and the worker's cond.Wait (the classic
// lost-wakeup window). Compaction jobs never claimed busy and dispatch
// to their own path.
func (s *scheduler) execute(j *Job) {
	if j.kind == jobCompact {
		s.executeCompact(j)
		return
	}
	defer func() {
		s.mu.Lock()
		j.entry.busy.Store(false)
		s.cond.Broadcast()
		s.mu.Unlock()
	}()
	ctx, cancel := context.WithCancel(s.baseCtx)
	defer cancel()

	j.mu.Lock()
	if j.state != Pending { // cancelled while queued
		j.mu.Unlock()
		return
	}
	j.state = Running
	j.started = time.Now()
	j.cancel = cancel
	j.mu.Unlock()
	s.stats.JobsStarted.Add(1)
	s.stats.RunningJobs.Add(1)
	defer s.stats.RunningJobs.Add(-1)

	// Serialize engine runs per graph; fail fast if the graph was
	// closed while the job waited. The cache insert happens inside the
	// same critical section: graph closure takes runMu before its
	// post-close cache invalidation, so an in-flight result keyed by
	// this registration's uid is always inserted before the uid's
	// entries are purged — nothing lingers after close. (Stale serving
	// to a rebound name is impossible regardless: the new registration
	// has a fresh uid.)
	j.entry.runMu.Lock()
	var res *Result
	var err error
	cacheHit := false
	// The key is rebuilt here with the delta count current at execution:
	// the run's overlay snapshot includes at least these ops, so the
	// inserted result can never be served to a job that acked more.
	key := cacheKey(j.entry.uid, j.entry.deltaCount(), j.Algo, j.Params)
	if j.entry.closed || j.entry.draining.Load() {
		// draining catches a job that raced past both submit's check
		// and the close sweep — it must not start a run the close
		// would then wait out.
		err = fmt.Errorf("server: graph %q closed", j.Graph)
	} else if cached, ok := s.cache.get(key); ok {
		// An identical job that queued behind ours may have already
		// produced this result; don't repeat a full engine run.
		res, cacheHit = cached, true
		s.stats.CacheHits.Add(1)
	} else {
		s.stats.CacheMisses.Add(1)
		res, err = algos[j.Algo](ctx, j.entry.live(), j.Params, j.setProgress)
		if err == nil {
			s.cache.put(key, res)
		}
	}
	j.entry.runMu.Unlock()

	j.mu.Lock()
	j.cancel = nil
	j.finished = time.Now()
	elapsed := j.finished.Sub(j.started)
	var state State
	switch {
	case err == nil:
		j.state = Done
		j.result = res
		j.cacheHit = cacheHit
		s.stats.JobsCompleted.Add(1)
		if !cacheHit {
			s.stats.EdgesTraversed.Add(res.EdgesTraversed)
		}
	case errors.Is(err, context.Canceled):
		j.state = Cancelled
		j.err = context.Canceled
		s.stats.JobsCancelled.Add(1)
	default:
		j.state = Failed
		j.err = err
		s.stats.JobsFailed.Add(1)
	}
	state = j.state
	close(j.done)
	j.mu.Unlock()
	s.retire(j, res)

	if err == nil && !cacheHit {
		s.hist.JobDuration.Observe(elapsed.Seconds())
		s.observeTrace(res.Trace)
	}
	attrs := []any{
		"job", j.ID, "graph", j.Graph, "algo", j.Algo,
		"state", string(state), "cache_hit", cacheHit,
		"duration_ms", elapsed.Milliseconds(),
	}
	if err != nil && !errors.Is(err, context.Canceled) {
		s.log.Error("job finished", append(attrs, "error", err.Error())...)
	} else {
		if res != nil {
			attrs = append(attrs, "iterations", res.Iterations, "edges", res.EdgesTraversed)
		}
		s.log.Info("job finished", attrs...)
	}
}

// observeTrace folds one engine run's trace into the iteration-time and
// block-load histograms. Cache hits skip it — their trace belongs to
// the run that was already observed when it executed.
func (s *scheduler) observeTrace(tr *trace.Trace) {
	if tr == nil {
		return
	}
	for _, st := range tr.Steps() {
		s.hist.IterationDuration.Observe(float64(st.DurUS) / 1e6)
	}
	for _, sp := range tr.Spans() {
		if sp.Kind == trace.KindBlockLoad {
			s.hist.BlockLoad.Observe(float64(sp.DurUS) / 1e6)
		}
	}
}

// shutdown cancels all work and waits for the workers to drain.
func (s *scheduler) shutdown() {
	s.mu.Lock()
	jobs := make([]*Job, 0, len(s.jobs))
	for _, j := range s.jobs {
		jobs = append(jobs, j)
	}
	s.mu.Unlock()
	for _, j := range jobs {
		s.cancelJob(j) // empties the pending list, cancels running ctxs
	}
	s.mu.Lock()
	s.stopped = true
	s.mu.Unlock()
	s.cond.Broadcast()
	s.cancelAll()
	s.wg.Wait()
}
