package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"sort"
	"strconv"
	"sync/atomic"
	"time"

	nxgraph "nxgraph"
	"nxgraph/internal/blockcache"
	"nxgraph/internal/metrics"
	"nxgraph/internal/wal"
)

// Config tunes a Server.
type Config struct {
	// Workers bounds concurrent engine executions (default 2).
	Workers int
	// QueueCap bounds the pending-job queue; submissions beyond it get
	// 503 (default 64).
	QueueCap int
	// CacheBytes bounds the result cache: 0 means the 256 MiB default,
	// negative disables caching entirely.
	CacheBytes int64
	// RetainJobs bounds how many terminal jobs stay queryable before
	// the oldest are pruned from the job table (default 1000).
	RetainJobs int
	// RetainBytes additionally bounds the result bytes pinned by
	// retained terminal jobs (default 256 MiB).
	RetainBytes int64
	// MaxBatch caps how many compatible queued jobs (same graph,
	// algorithm, parameters and delta state, differing only in root) one
	// worker fuses into a single engine run — the fairness bound on how
	// long a fused batch can occupy a graph's run slot (default 16; 1
	// disables coalescing).
	MaxBatch int
	// DeltaThreshold is the pending-delta count that triggers automatic
	// background compaction of a graph's delta log (default 8192;
	// negative disables auto-compaction — manual POST .../compact still
	// works).
	DeltaThreshold int
	// BlockCacheBytes bounds the process-wide sub-shard block cache
	// shared by every registered graph: 0 means the 256 MiB default,
	// negative disables caching (blocks live only while pinned by a
	// running iteration).
	BlockCacheBytes int64
	// BlockCacheL2Frac is the fraction of BlockCacheBytes held as encoded
	// sub-shard blobs instead of decoded blocks (see
	// blockcache.SplitBudget): 0 picks the default quarter, negative
	// disables the encoded tier.
	BlockCacheL2Frac float64
	// GraphOptions is applied when opening graphs via the API.
	GraphOptions nxgraph.Options
	// WALSync selects the ingestion write-ahead log's fsync policy:
	// wal.SyncBatch (default — group commit, one fsync per coalesced
	// batch of concurrent appends), wal.SyncAlways, or wal.SyncOff.
	WALSync wal.SyncPolicy
	// WALMaxDelay stretches the group-commit window: after picking up
	// work the committer waits up to this long for more appends before
	// syncing. 0 (default) coalesces only what queued during the
	// previous fsync, adding no latency.
	WALMaxDelay time.Duration
	// WALMaxBatch caps ingest batches per fsync (default 256).
	WALMaxBatch int
	// WALSegmentBytes rolls WAL segment files at this size (default
	// 64 MiB).
	WALSegmentBytes int64
	// DisableWAL turns ingestion durability off: edge batches are acked
	// on visibility alone, as before the WAL existed, and a crash loses
	// everything since the last compaction. For embedders and
	// benchmarks; nxserve always runs with the WAL on (-fsync=off keeps
	// the log but skips fsyncs).
	DisableWAL bool
	// Logger receives the server's structured logs; nil selects
	// slog.Default().
	Logger *slog.Logger
	// Version labels the build in the nxserve_build_info metric.
	Version string
}

// Server is the nxserve HTTP service: a graph registry, a job scheduler
// and a result cache behind a JSON API.
//
//	GET    /v1/graphs                 list opened graphs
//	POST   /v1/graphs                 open a store {"name": ..., "dir": ...}
//	GET    /v1/graphs/{name}          graph info
//	DELETE /v1/graphs/{name}          close a graph (cancels its jobs)
//	POST   /v1/graphs/{name}/jobs     submit {"algo": ..., "params": {...}}
//	POST   /v1/graphs/{name}/edges    ingest edges {"add": [...], "remove": [...]}
//	POST   /v1/graphs/{name}/compact  fold pending deltas into a rebuilt store
//	GET    /v1/jobs                   list jobs, newest first
//	GET    /v1/jobs/{id}              job status + progress
//	GET    /v1/jobs/{id}/result       result; ?top=K for the K extreme vertices
//	POST   /v1/jobs/{id}/cancel       request cancellation
//	GET    /v1/jobs/{id}/trace        run trace (span timeline + per-iteration stats)
//	GET    /metrics                   Prometheus text metrics
//	GET    /healthz                   liveness probe
//	GET    /readyz                    readiness probe (503 once shutdown began)
//	GET    /debug/pprof/...           Go runtime profiles
type Server struct {
	cfg    Config
	reg    *registry
	sched  *scheduler
	cache  *resultCache
	blocks *blockcache.Cache // shared sub-shard block cache
	stats  *metrics.ServerStats
	walSt  *wal.Stats // WAL counters pooled across all graphs
	hist   *metrics.ServerHistograms
	log    *slog.Logger
	mux    *http.ServeMux
	ready  atomic.Bool   // true between New and Close; drives /readyz
	reqSeq atomic.Uint64 // request-id generator for the access log
}

// New creates a Server with started workers. Call Close to shut it down.
func New(cfg Config) *Server {
	if cfg.CacheBytes == 0 {
		cfg.CacheBytes = 256 << 20
	}
	blockBudget := cfg.BlockCacheBytes
	switch {
	case blockBudget == 0:
		blockBudget = 256 << 20
	case blockBudget < 0:
		blockBudget = 0 // pins only: caching disabled
	}
	// A negative budget flows through to the cache, where every result
	// exceeds it and nothing is stored — caching disabled.
	stats := &metrics.ServerStats{}
	hist := metrics.NewServerHistograms()
	logger := cfg.Logger
	if logger == nil {
		logger = slog.Default()
	}
	cache := newResultCache(cfg.CacheBytes, stats)
	blocks := blockcache.NewTiered(blockcache.SplitBudget(blockBudget, cfg.BlockCacheL2Frac))
	walStats := &wal.Stats{}
	walCfg := walConfig{
		disabled: cfg.DisableWAL,
		policy:   cfg.WALSync,
		maxDelay: cfg.WALMaxDelay,
		maxBatch: cfg.WALMaxBatch,
		segment:  cfg.WALSegmentBytes,
		stats:    walStats,
		observe:  func(d time.Duration) { hist.WALFsync.Observe(d.Seconds()) },
	}
	s := &Server{
		cfg:    cfg,
		reg:    newRegistry(stats, blocks, walCfg, logger),
		sched:  newScheduler(cfg.Workers, cfg.QueueCap, cfg.RetainJobs, cfg.MaxBatch, cfg.RetainBytes, cache, stats, hist, logger),
		cache:  cache,
		blocks: blocks,
		stats:  stats,
		walSt:  walStats,
		hist:   hist,
		log:    logger,
		mux:    http.NewServeMux(),
	}
	s.ready.Store(true)
	s.routes()
	return s
}

// BlockCacheStats returns the shared block cache counters.
func (s *Server) BlockCacheStats() blockcache.Stats { return s.blocks.Stats() }

// Stats exposes the server's metric counters.
func (s *Server) Stats() *metrics.ServerStats { return s.stats }

// OpenGraph opens the store at dir under name (the programmatic
// equivalent of POST /v1/graphs, used by cmd/nxserve preloading).
func (s *Server) OpenGraph(name, dir string, opt nxgraph.Options) error {
	_, err := s.reg.open(name, dir, opt)
	return err
}

// Close cancels all jobs, stops the workers and closes every graph.
func (s *Server) Close() {
	s.ready.Store(false) // readiness drops first so probes drain traffic
	s.sched.shutdown()
	s.reg.closeAll()
}

// Handler returns the root HTTP handler: the API routes behind the
// request-id/access-log/latency middleware.
func (s *Server) Handler() http.Handler { return s.middleware(s.mux) }

func (s *Server) routes() {
	s.mux.HandleFunc("GET /v1/graphs", s.handleListGraphs)
	s.mux.HandleFunc("POST /v1/graphs", s.handleOpenGraph)
	s.mux.HandleFunc("GET /v1/graphs/{name}", s.handleGetGraph)
	s.mux.HandleFunc("DELETE /v1/graphs/{name}", s.handleCloseGraph)
	s.mux.HandleFunc("POST /v1/graphs/{name}/jobs", s.handleSubmit)
	s.mux.HandleFunc("POST /v1/graphs/{name}/edges", s.handleIngest)
	s.mux.HandleFunc("POST /v1/graphs/{name}/compact", s.handleCompact)
	s.mux.HandleFunc("GET /v1/jobs", s.handleListJobs)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleGetJob)
	s.mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleResult)
	s.mux.HandleFunc("POST /v1/jobs/{id}/cancel", s.handleCancel)
	s.mux.HandleFunc("GET /v1/jobs/{id}/trace", s.handleTrace)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /readyz", s.handleReadyz)
	// pprof must be mounted explicitly: the server runs on its own mux,
	// so the net/http/pprof DefaultServeMux registrations never apply.
	s.mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	s.mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// writeJSONCompact skips pretty-printing — used for bulk payloads
// (full per-vertex arrays) where indentation would add one line per
// value on the serving path.
func writeJSONCompact(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func (s *Server) handleListGraphs(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"graphs": s.reg.list()})
}

func (s *Server) handleOpenGraph(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Name string `json:"name"`
		Dir  string `json:"dir"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if req.Name == "" || req.Dir == "" {
		writeErr(w, http.StatusBadRequest, "name and dir are required")
		return
	}
	e, err := s.reg.open(req.Name, req.Dir, s.cfg.GraphOptions)
	if err != nil {
		status := http.StatusBadRequest // e.g. store dir missing or corrupt
		if errors.Is(err, errAlreadyOpen) {
			status = http.StatusConflict
		}
		writeErr(w, status, "%v", err)
		return
	}
	writeJSON(w, http.StatusCreated, e.info())
}

func (s *Server) handleGetGraph(w http.ResponseWriter, r *http.Request) {
	e, ok := s.reg.get(r.PathValue("name"))
	if !ok {
		writeErr(w, http.StatusNotFound, "graph %q not open", r.PathValue("name"))
		return
	}
	writeJSON(w, http.StatusOK, e.info())
}

func (s *Server) handleCloseGraph(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	e, ok := s.reg.get(name)
	if !ok {
		writeErr(w, http.StatusNotFound, "server: graph %q not open", name)
		return
	}
	// Refuse new submissions first, then cancel this registration's
	// live jobs so close doesn't wait a full run (scoped by entry, not
	// name, against concurrent rebinds).
	e.draining.Store(true)
	s.sched.cancelGraph(e)
	err := s.reg.closeEntry(e)
	if errors.Is(err, errNotOpen) {
		writeErr(w, http.StatusNotFound, "%v", err)
		return
	}
	// Any other error is an I/O failure closing an already-deregistered
	// store: the graph is gone either way, so still drop its cache
	// entries (correctness against a reused name is carried by the
	// per-open uid in the cache key; this just frees memory).
	s.cache.invalidateGraph(e.uid)
	if err != nil {
		writeErr(w, http.StatusInternalServerError, "%v", err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	e, ok := s.reg.get(r.PathValue("name"))
	if !ok {
		writeErr(w, http.StatusNotFound, "graph %q not open", r.PathValue("name"))
		return
	}
	var req struct {
		Algo   string `json:"algo"`
		Params Params `json:"params"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	j, err := s.sched.submit(e, req.Algo, req.Params)
	switch {
	case errors.Is(err, ErrQueueFull), errors.Is(err, errShutdown):
		writeErr(w, http.StatusServiceUnavailable, "%v", err)
		return
	case errors.Is(err, errGraphClosing):
		writeErr(w, http.StatusConflict, "%v", err)
		return
	case err != nil:
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	writeJSON(w, http.StatusAccepted, j.Snapshot())
}

func (s *Server) handleListJobs(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"jobs": s.sched.list()})
}

// lookupJob resolves a job id, writing 404 for unknown ids and 410 for
// jobs pruned from the retention window (so "expired" is
// distinguishable from "never existed").
func (s *Server) lookupJob(w http.ResponseWriter, id string) (*Job, bool) {
	j, ok := s.sched.get(id)
	if ok {
		return j, true
	}
	if s.sched.existed(id) {
		writeErr(w, http.StatusGone, "job %s expired from the retention window", id)
	} else {
		writeErr(w, http.StatusNotFound, "job %q not found", id)
	}
	return nil, false
}

func (s *Server) handleGetJob(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookupJob(w, r.PathValue("id"))
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, j.Snapshot())
}

// vertexValue is one entry of a top-K result.
type vertexValue struct {
	Vertex uint32  `json:"vertex"`
	Value  float64 `json:"value"`
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookupJob(w, r.PathValue("id"))
	if !ok {
		return
	}
	snap := j.Snapshot()
	if snap.State != Done {
		writeErr(w, http.StatusConflict, "job %s is %s, result available only for done jobs",
			snap.ID, snap.State)
		return
	}
	res := j.Result()
	resp := map[string]any{
		"job":          snap.ID,
		"algo":         res.Algo,
		"value_label":  res.ValueLabel,
		"cache_hit":    snap.CacheHit,
		"iterations":   res.Iterations,
		"elapsed_ms":   res.ElapsedMS,
		"num_vertices": len(res.Values),
	}
	if res.Strategy != "" {
		resp["strategy"] = res.Strategy
	}
	if res.EdgesTraversed > 0 {
		resp["edges_traversed"] = res.EdgesTraversed
	}
	if len(res.Stats) > 0 {
		resp["stats"] = res.Stats
	}
	if topStr := r.URL.Query().Get("top"); topStr != "" {
		k, err := strconv.Atoi(topStr)
		if err != nil || k <= 0 {
			writeErr(w, http.StatusBadRequest, "top must be a positive integer")
			return
		}
		if k > len(res.Values) { // also caps the heap allocation
			k = len(res.Values)
		}
		resp["top"] = topK(res, k)
	} else {
		resp["values"] = res.Values
		for name, a := range res.Aux {
			resp[name] = a
		}
	}
	// Result bodies can carry per-vertex arrays (or a top list capped
	// only by the vertex count) — always encode compactly here.
	writeJSONCompact(w, http.StatusOK, resp)
}

// topK returns the K most extreme vertices of res: largest values, or
// smallest non-negative ones for distance-like (Ascending) results where
// -1 marks unreachable. Selection runs in one pass with a size-K heap
// (O(n log k)), not a full sort — the result endpoint sits on the
// serving path and n is the whole vertex set.
func topK(res *Result, k int) []vertexValue {
	// better reports whether a outranks b in the final ordering.
	better := func(a, b vertexValue) bool {
		if a.Value != b.Value {
			if res.Ascending {
				return a.Value < b.Value
			}
			return a.Value > b.Value
		}
		return a.Vertex < b.Vertex
	}
	// heap is a min-heap under "better": the root is the weakest of
	// the current best K, the first to be displaced.
	heap := make([]vertexValue, 0, k)
	siftDown := func(i int) {
		for {
			l, r := 2*i+1, 2*i+2
			worst := i
			if l < len(heap) && better(heap[worst], heap[l]) {
				worst = l
			}
			if r < len(heap) && better(heap[worst], heap[r]) {
				worst = r
			}
			if worst == i {
				return
			}
			heap[i], heap[worst] = heap[worst], heap[i]
			i = worst
		}
	}
	for v, x := range res.Values {
		if res.Ascending && x < 0 {
			continue
		}
		cand := vertexValue{uint32(v), x}
		if len(heap) < k {
			heap = append(heap, cand)
			for i := len(heap) - 1; i > 0; {
				p := (i - 1) / 2
				if !better(heap[p], heap[i]) {
					break
				}
				heap[i], heap[p] = heap[p], heap[i]
				i = p
			}
		} else if better(cand, heap[0]) {
			heap[0] = cand
			siftDown(0)
		}
	}
	sort.Slice(heap, func(i, j int) bool { return better(heap[i], heap[j]) })
	return heap
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookupJob(w, r.PathValue("id"))
	if !ok {
		return
	}
	s.sched.cancelJob(j)
	writeJSON(w, http.StatusOK, j.Snapshot())
}

// handleTrace serves a completed job's run trace: the span timeline
// (run → iterations → block loads tagged hit/miss) plus the
// per-iteration stage stats. Jobs whose algorithm carries no engine
// trace (multi-phase compositions, compactions) return an empty
// timeline rather than an error; cache-hit jobs share the trace of the
// run that produced the cached result.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookupJob(w, r.PathValue("id"))
	if !ok {
		return
	}
	snap := j.Snapshot()
	if snap.State != Done {
		writeErr(w, http.StatusConflict, "job %s is %s, trace available only for done jobs",
			snap.ID, snap.State)
		return
	}
	res := j.Result()
	resp := map[string]any{
		"job":       snap.ID,
		"algo":      res.Algo,
		"cache_hit": snap.CacheHit,
		"timeline":  res.Trace.Snapshot(), // nil-safe: empty timeline
	}
	// Span timelines run to thousands of entries — compact encoding.
	writeJSONCompact(w, http.StatusOK, resp)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.Write([]byte("ok\n"))
}

func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if !s.ready.Load() {
		w.WriteHeader(http.StatusServiceUnavailable)
		w.Write([]byte("shutting down\n"))
		return
	}
	w.Write([]byte("ready\n"))
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	s.stats.WritePrometheus(w)
	metrics.WriteBlockCachePrometheus(w, s.blocks.Stats())
	metrics.WriteWALPrometheus(w,
		s.walSt.Appends.Load(), s.walSt.Fsyncs.Load(),
		s.walSt.ReplayedBatches.Load(), s.walSt.TornTails.Load())
	s.hist.WritePrometheus(w)
	metrics.WriteBuildInfo(w, s.cfg.Version)
}
