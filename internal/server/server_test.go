package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	nxgraph "nxgraph"
)

// buildStoreDir preprocesses a deterministic RMAT graph into a DSSS
// store under a temp dir and returns the dir.
func buildStoreDir(t *testing.T, scale int) string {
	t.Helper()
	dir := t.TempDir()
	g, err := nxgraph.Generate(nxgraph.RMAT(scale, 8, 42))
	if err != nil {
		t.Fatal(err)
	}
	gr, err := nxgraph.Build(dir, g, nxgraph.Options{P: 4, Transpose: true})
	if err != nil {
		t.Fatal(err)
	}
	gr.Close()
	return dir
}

// newTestServer starts a Server with one preloaded graph named "g"
// behind an httptest listener.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	dir := buildStoreDir(t, 9)
	s := New(cfg)
	if err := s.OpenGraph("g", dir, nxgraph.Options{}); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

func doJSON(t *testing.T, method, url string, body any) (int, map[string]any) {
	t.Helper()
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out := map[string]any{}
	if resp.StatusCode != http.StatusNoContent {
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil && err != io.EOF {
			t.Fatalf("%s %s: decode: %v", method, url, err)
		}
	}
	return resp.StatusCode, out
}

// submit posts a job and returns its id.
func submit(t *testing.T, ts *httptest.Server, graph, algo string, params map[string]any) string {
	t.Helper()
	code, body := doJSON(t, "POST", ts.URL+"/v1/graphs/"+graph+"/jobs",
		map[string]any{"algo": algo, "params": params})
	if code != http.StatusAccepted {
		t.Fatalf("submit %s: status %d, body %v", algo, code, body)
	}
	id, _ := body["id"].(string)
	if id == "" {
		t.Fatalf("submit %s: no job id in %v", algo, body)
	}
	return id
}

// pollUntil polls the job until pred holds or the deadline passes,
// returning the last status body.
func pollUntil(t *testing.T, ts *httptest.Server, id string, pred func(map[string]any) bool) map[string]any {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		code, body := doJSON(t, "GET", ts.URL+"/v1/jobs/"+id, nil)
		if code != http.StatusOK {
			t.Fatalf("poll %s: status %d, body %v", id, code, body)
		}
		if pred(body) {
			return body
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("poll %s: predicate not reached before deadline", id)
	return nil
}

func stateIs(want string) func(map[string]any) bool {
	return func(b map[string]any) bool { return b["state"] == want }
}

func terminal(b map[string]any) bool {
	s, _ := b["state"].(string)
	return s == "done" || s == "failed" || s == "cancelled"
}

func TestSubmitPollTopK(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	id := submit(t, ts, "g", "pagerank", map[string]any{"iters": 10})
	body := pollUntil(t, ts, id, terminal)
	if body["state"] != "done" {
		t.Fatalf("job ended %v (error %v)", body["state"], body["error"])
	}

	code, res := doJSON(t, "GET", ts.URL+"/v1/jobs/"+id+"/result?top=10", nil)
	if code != http.StatusOK {
		t.Fatalf("result: status %d, body %v", code, res)
	}
	top, _ := res["top"].([]any)
	if len(top) != 10 {
		t.Fatalf("top-10 returned %d entries", len(top))
	}
	prev := float64(2)
	for _, e := range top {
		v := e.(map[string]any)["value"].(float64)
		if v > prev {
			t.Fatalf("top list not descending: %v", top)
		}
		prev = v
	}
	if res["iterations"].(float64) != 10 {
		t.Fatalf("result iterations %v, want 10", res["iterations"])
	}

	// Full-result retrieval returns every vertex.
	code, res = doJSON(t, "GET", ts.URL+"/v1/jobs/"+id+"/result", nil)
	if code != http.StatusOK {
		t.Fatalf("full result: status %d", code)
	}
	vals, _ := res["values"].([]any)
	if len(vals) != int(res["num_vertices"].(float64)) || len(vals) == 0 {
		t.Fatalf("full result has %d values, want %v", len(vals), res["num_vertices"])
	}

	// An absurd top is clamped to the vertex count, not allocated.
	code, res = doJSON(t, "GET", ts.URL+"/v1/jobs/"+id+"/result?top=1000000000", nil)
	if code != http.StatusOK || len(res["top"].([]any)) != len(vals) {
		t.Fatalf("huge top: status %d, %d entries, want %d", code, len(res["top"].([]any)), len(vals))
	}
	// Trailing garbage in top is rejected.
	if code, _ = doJSON(t, "GET", ts.URL+"/v1/jobs/"+id+"/result?top=5xyz", nil); code != http.StatusBadRequest {
		t.Fatalf("malformed top: status %d, want 400", code)
	}
}

// TestConcurrentJobs is the acceptance demo: PageRank and BFS submitted
// concurrently over HTTP, both polled to completion, top-10 fetched.
func TestConcurrentJobs(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	var wg sync.WaitGroup
	ids := make([]string, 2)
	algos := []struct {
		algo   string
		params map[string]any
	}{
		{"pagerank", map[string]any{"iters": 10}},
		{"bfs", map[string]any{"root": 0}},
	}
	for i, a := range algos {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ids[i] = submit(t, ts, "g", a.algo, a.params)
		}()
	}
	wg.Wait()
	for i, id := range ids {
		body := pollUntil(t, ts, id, terminal)
		if body["state"] != "done" {
			t.Fatalf("%s ended %v (error %v)", algos[i].algo, body["state"], body["error"])
		}
		code, res := doJSON(t, "GET", ts.URL+"/v1/jobs/"+id+"/result?top=10", nil)
		if code != http.StatusOK {
			t.Fatalf("%s result: status %d", algos[i].algo, code)
		}
		if len(res["top"].([]any)) == 0 {
			t.Fatalf("%s top-10 empty", algos[i].algo)
		}
	}

	// BFS top-K is ascending (nearest vertices) and excludes
	// unreachable (-1) entries.
	_, res := doJSON(t, "GET", ts.URL+"/v1/jobs/"+ids[1]+"/result?top=5", nil)
	prev := -1.0
	for _, e := range res["top"].([]any) {
		v := e.(map[string]any)["value"].(float64)
		if v < prev || v < 0 {
			t.Fatalf("bfs top list not ascending/reachable: %v", res["top"])
		}
		prev = v
	}
}

// TestCancelMidFlight submits an effectively unbounded PageRank, waits
// for it to make progress, cancels, and observes state cancelled.
func TestCancelMidFlight(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	id := submit(t, ts, "g", "pagerank", map[string]any{"iters": 1000000})
	pollUntil(t, ts, id, func(b map[string]any) bool {
		if b["state"] != "running" {
			return false
		}
		p, _ := b["progress"].(map[string]any)
		return p != nil && p["iteration"].(float64) >= 1
	})
	code, _ := doJSON(t, "POST", ts.URL+"/v1/jobs/"+id+"/cancel", nil)
	if code != http.StatusOK {
		t.Fatalf("cancel: status %d", code)
	}
	body := pollUntil(t, ts, id, terminal)
	if body["state"] != "cancelled" {
		t.Fatalf("job ended %v, want cancelled", body["state"])
	}
	// Result retrieval for a cancelled job is a conflict.
	code, _ = doJSON(t, "GET", ts.URL+"/v1/jobs/"+id+"/result", nil)
	if code != http.StatusConflict {
		t.Fatalf("result of cancelled job: status %d, want 409", code)
	}
	// The graph remains serviceable after cancellation.
	id2 := submit(t, ts, "g", "bfs", map[string]any{"root": 0})
	if body := pollUntil(t, ts, id2, terminal); body["state"] != "done" {
		t.Fatalf("post-cancel job ended %v", body["state"])
	}
}

// TestCacheHit verifies a repeated identical request is served from the
// LRU without re-running the engine.
func TestCacheHit(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1})
	id1 := submit(t, ts, "g", "pagerank", map[string]any{"iters": 5, "damping": 0.85})
	if body := pollUntil(t, ts, id1, terminal); body["state"] != "done" {
		t.Fatalf("first job ended %v", body["state"])
	}
	started := s.Stats().JobsStarted.Load()

	// Identical params (damping left to default) must hit the cache.
	id2 := submit(t, ts, "g", "pagerank", map[string]any{"iters": 5})
	body := pollUntil(t, ts, id2, terminal)
	if body["state"] != "done" {
		t.Fatalf("second job ended %v", body["state"])
	}
	if body["cache_hit"] != true {
		t.Fatalf("second job not served from cache: %v", body)
	}
	if got := s.Stats().JobsStarted.Load(); got != started {
		t.Fatalf("cache hit re-ran the engine: started %d -> %d", started, got)
	}
	if s.Stats().CacheHits.Load() == 0 {
		t.Fatal("cache hit counter not incremented")
	}

	// Both jobs serve identical values.
	_, r1 := doJSON(t, "GET", ts.URL+"/v1/jobs/"+id1+"/result?top=3", nil)
	_, r2 := doJSON(t, "GET", ts.URL+"/v1/jobs/"+id2+"/result?top=3", nil)
	if fmt.Sprint(r1["top"]) != fmt.Sprint(r2["top"]) {
		t.Fatalf("cached result differs: %v vs %v", r1["top"], r2["top"])
	}
	if r2["cache_hit"] != true {
		t.Fatalf("result of cached job not flagged: %v", r2)
	}

	// Different params must miss.
	id3 := submit(t, ts, "g", "pagerank", map[string]any{"iters": 6})
	if body := pollUntil(t, ts, id3, terminal); body["cache_hit"] == true {
		t.Fatal("different params served from cache")
	}
}

func TestGraphLifecycle(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	dir := buildStoreDir(t, 8)

	code, body := doJSON(t, "POST", ts.URL+"/v1/graphs", map[string]any{"name": "h", "dir": dir})
	if code != http.StatusCreated {
		t.Fatalf("open: status %d, body %v", code, body)
	}
	if body["num_vertices"].(float64) == 0 {
		t.Fatalf("opened graph reports zero vertices: %v", body)
	}

	// Duplicate name conflicts.
	code, _ = doJSON(t, "POST", ts.URL+"/v1/graphs", map[string]any{"name": "h", "dir": dir})
	if code != http.StatusConflict {
		t.Fatalf("duplicate open: status %d, want 409", code)
	}

	code, body = doJSON(t, "GET", ts.URL+"/v1/graphs", nil)
	if code != http.StatusOK || len(body["graphs"].([]any)) != 2 {
		t.Fatalf("list: status %d, body %v", code, body)
	}

	// A job on the new graph works.
	id := submit(t, ts, "h", "wcc", nil)
	if b := pollUntil(t, ts, id, terminal); b["state"] != "done" {
		t.Fatalf("wcc on h ended %v (%v)", b["state"], b["error"])
	}

	code, _ = doJSON(t, "DELETE", ts.URL+"/v1/graphs/h", nil)
	if code != http.StatusNoContent {
		t.Fatalf("close: status %d", code)
	}
	code, _ = doJSON(t, "GET", ts.URL+"/v1/graphs/h", nil)
	if code != http.StatusNotFound {
		t.Fatalf("closed graph still visible: status %d", code)
	}
	code, _ = doJSON(t, "POST", ts.URL+"/v1/graphs/h/jobs", map[string]any{"algo": "bfs"})
	if code != http.StatusNotFound {
		t.Fatalf("submit to closed graph: status %d, want 404", code)
	}
}

// TestDuplicateDirRejected verifies one store dir cannot be opened under
// two names: per-graph run serialization keys off the registry entry, so
// two entries over one store would corrupt its attribute files.
func TestDuplicateDirRejected(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	dir := buildStoreDir(t, 8)
	code, _ := doJSON(t, "POST", ts.URL+"/v1/graphs", map[string]any{"name": "a", "dir": dir})
	if code != http.StatusCreated {
		t.Fatalf("first open: status %d", code)
	}
	code, body := doJSON(t, "POST", ts.URL+"/v1/graphs", map[string]any{"name": "b", "dir": dir})
	if code != http.StatusConflict {
		t.Fatalf("same dir under second name: status %d, body %v", code, body)
	}
	// After closing, the dir can be opened under a new name.
	if code, _ := doJSON(t, "DELETE", ts.URL+"/v1/graphs/a", nil); code != http.StatusNoContent {
		t.Fatalf("close: status %d", code)
	}
	if code, _ := doJSON(t, "POST", ts.URL+"/v1/graphs", map[string]any{"name": "b", "dir": dir}); code != http.StatusCreated {
		t.Fatalf("reopen after close: status %d", code)
	}
}

// TestJobRetention verifies the job table prunes the oldest terminal
// jobs beyond RetainJobs.
func TestJobRetention(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, RetainJobs: 3})
	var ids []string
	for i := 0; i < 5; i++ {
		id := submit(t, ts, "g", "pagerank", map[string]any{"iters": i + 1})
		pollUntil(t, ts, id, terminal)
		ids = append(ids, id)
	}
	// The two oldest jobs are pruned and answer 410 (distinguishable
	// from a never-existing id's 404); the three newest remain.
	for _, id := range ids[:2] {
		if code, _ := doJSON(t, "GET", ts.URL+"/v1/jobs/"+id, nil); code != http.StatusGone {
			t.Fatalf("pruned job %s: status %d, want 410", id, code)
		}
	}
	for _, id := range ids[2:] {
		if code, _ := doJSON(t, "GET", ts.URL+"/v1/jobs/"+id, nil); code != http.StatusOK {
			t.Fatalf("retained job %s: status %d, want 200", id, code)
		}
	}
}

// TestCloseInvalidatesCache verifies a graph name reopened over a
// different store does not serve the old store's cached results.
func TestCloseInvalidatesCache(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1})
	id := submit(t, ts, "g", "pagerank", map[string]any{"iters": 5})
	pollUntil(t, ts, id, terminal)
	if s.Stats().CacheEntries.Load() == 0 {
		t.Fatal("result not cached")
	}
	if code, _ := doJSON(t, "DELETE", ts.URL+"/v1/graphs/g", nil); code != http.StatusNoContent {
		t.Fatal("close failed")
	}
	// Rebind the name to a different store; the same submission must
	// run fresh, not hit the dead store's cache.
	dir := buildStoreDir(t, 8)
	if code, _ := doJSON(t, "POST", ts.URL+"/v1/graphs", map[string]any{"name": "g", "dir": dir}); code != http.StatusCreated {
		t.Fatal("reopen failed")
	}
	id2 := submit(t, ts, "g", "pagerank", map[string]any{"iters": 5})
	body := pollUntil(t, ts, id2, terminal)
	if body["state"] != "done" || body["cache_hit"] == true {
		t.Fatalf("resubmission after rebind: %v", body)
	}
}

func TestSubmitValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	code, body := doJSON(t, "POST", ts.URL+"/v1/graphs/g/jobs", map[string]any{"algo": "nope"})
	if code != http.StatusBadRequest {
		t.Fatalf("unknown algo: status %d, body %v", code, body)
	}
	code, _ = doJSON(t, "POST", ts.URL+"/v1/graphs/g/jobs",
		map[string]any{"algo": "bfs", "params": map[string]any{"root": 1 << 30}})
	if code != http.StatusBadRequest {
		t.Fatalf("out-of-range root: status %d, want 400", code)
	}
	code, _ = doJSON(t, "GET", ts.URL+"/v1/jobs/j-99999999", nil)
	if code != http.StatusNotFound {
		t.Fatalf("missing job: status %d, want 404", code)
	}

	// Transpose-requiring algorithms are rejected at submit time on a
	// forward-only store, not asynchronously.
	dir := t.TempDir()
	g, err := nxgraph.Generate(nxgraph.RMAT(8, 8, 9))
	if err != nil {
		t.Fatal(err)
	}
	gr, err := nxgraph.Build(dir, g, nxgraph.Options{P: 4})
	if err != nil {
		t.Fatal(err)
	}
	gr.Close()
	if code, _ := doJSON(t, "POST", ts.URL+"/v1/graphs", map[string]any{"name": "fwd", "dir": dir}); code != http.StatusCreated {
		t.Fatalf("open forward-only store: status %d", code)
	}
	for _, algo := range []string{"wcc", "scc", "hits", "kcore"} {
		code, body := doJSON(t, "POST", ts.URL+"/v1/graphs/fwd/jobs", map[string]any{"algo": algo})
		if code != http.StatusBadRequest {
			t.Fatalf("%s on forward-only store: status %d (%v), want 400", algo, code, body)
		}
	}
}

func TestMetricsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	id := submit(t, ts, "g", "pagerank", map[string]any{"iters": 3})
	pollUntil(t, ts, id, terminal)

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	text := string(b)
	for _, metric := range []string{
		"nxserve_jobs_submitted_total 1",
		"nxserve_jobs_completed_total 1",
		"nxserve_graphs_open 1",
		"nxserve_cache_misses_total 1",
		"nxserve_queue_depth 0",
		"# TYPE nxserve_jobs_submitted_total counter",
	} {
		if !strings.Contains(text, metric) {
			t.Errorf("metrics output missing %q", metric)
		}
	}
}

// TestQueueFull verifies backpressure: with one worker busy and a
// one-slot queue, a third submission gets 503.
func TestQueueFull(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, QueueCap: 1})
	blocker := submit(t, ts, "g", "pagerank", map[string]any{"iters": 1000000})
	pollUntil(t, ts, blocker, stateIs("running"))
	queued := submit(t, ts, "g", "pagerank", map[string]any{"iters": 999999}) // fills the queue
	code, _ := doJSON(t, "POST", ts.URL+"/v1/graphs/g/jobs",
		map[string]any{"algo": "pagerank", "params": map[string]any{"iters": 999998}})
	if code != http.StatusServiceUnavailable {
		t.Fatalf("overflow submit: status %d, want 503", code)
	}
	// Cancelling the queued job frees its slot immediately — the next
	// submission must be accepted, not 503.
	doJSON(t, "POST", ts.URL+"/v1/jobs/"+queued+"/cancel", nil)
	code, body := doJSON(t, "POST", ts.URL+"/v1/graphs/g/jobs",
		map[string]any{"algo": "pagerank", "params": map[string]any{"iters": 999997}})
	if code != http.StatusAccepted {
		t.Fatalf("submit after pending cancel: status %d (%v), want 202", code, body)
	}
	// Unblock the pool so Cleanup shuts down promptly.
	doJSON(t, "POST", ts.URL+"/v1/jobs/"+blocker+"/cancel", nil)
}
