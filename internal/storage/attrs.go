package storage

import (
	"encoding/binary"
	"fmt"
	"math"

	"nxgraph/internal/diskio"
)

// AttrStore persists per-vertex float64 attributes in attrs.bin, addressed
// by dense id. It backs the on-disk intervals of DPU and MPU (paper
// §III-B2): LoadFromDisk/SaveToDisk in Algorithm 6 map to ReadInterval and
// WriteInterval here.
type AttrStore struct {
	f    *diskio.File
	meta *Meta
}

// OpenAttrs opens the store's attribute file.
func (s *Store) OpenAttrs() (*AttrStore, error) {
	f, err := s.disk.Open(s.dir + "/" + AttrsFile)
	if err != nil {
		return nil, err
	}
	return &AttrStore{f: f, meta: &s.meta}, nil
}

// Close releases the attribute file.
func (a *AttrStore) Close() error { return a.f.Close() }

// ReadInterval loads interval k's attributes into dst, which must have
// exactly IntervalLen(k) entries.
func (a *AttrStore) ReadInterval(k int, dst []float64) error {
	lo, hi := a.meta.IntervalRange(k)
	if len(dst) != int(hi-lo) {
		return fmt.Errorf("storage: interval %d has %d vertices, buffer has %d", k, hi-lo, len(dst))
	}
	if lo == hi {
		return nil
	}
	buf := make([]byte, 8*(hi-lo))
	if _, err := a.f.ReadAt(buf, int64(lo)*8); err != nil {
		return fmt.Errorf("storage: read interval %d: %w", k, err)
	}
	for i := range dst {
		dst[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[8*i:]))
	}
	return nil
}

// WriteInterval stores interval k's attributes from src, which must have
// exactly IntervalLen(k) entries.
func (a *AttrStore) WriteInterval(k int, src []float64) error {
	lo, hi := a.meta.IntervalRange(k)
	if len(src) != int(hi-lo) {
		return fmt.Errorf("storage: interval %d has %d vertices, buffer has %d", k, hi-lo, len(src))
	}
	if lo == hi {
		return nil
	}
	buf := make([]byte, 8*(hi-lo))
	for i, v := range src {
		binary.LittleEndian.PutUint64(buf[8*i:], math.Float64bits(v))
	}
	if _, err := a.f.WriteAt(buf, int64(lo)*8); err != nil {
		return fmt.Errorf("storage: write interval %d: %w", k, err)
	}
	return nil
}

// WriteAll stores the full attribute array (n entries), used to initialize
// a run.
func (a *AttrStore) WriteAll(attrs []float64) error {
	if len(attrs) != int(a.meta.NumVertices) {
		return fmt.Errorf("storage: %d attrs, want %d", len(attrs), a.meta.NumVertices)
	}
	buf := make([]byte, 8*len(attrs))
	for i, v := range attrs {
		binary.LittleEndian.PutUint64(buf[8*i:], math.Float64bits(v))
	}
	if len(buf) == 0 {
		return nil
	}
	if _, err := a.f.WriteAt(buf, 0); err != nil {
		return fmt.Errorf("storage: write attrs: %w", err)
	}
	return nil
}

// ReadAll loads the full attribute array.
func (a *AttrStore) ReadAll() ([]float64, error) {
	n := int(a.meta.NumVertices)
	out := make([]float64, n)
	if n == 0 {
		return out, nil
	}
	buf := make([]byte, 8*n)
	if _, err := a.f.ReadAt(buf, 0); err != nil {
		return nil, fmt.Errorf("storage: read attrs: %w", err)
	}
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[8*i:]))
	}
	return out, nil
}
