// Package storage implements the on-disk Destination-Sorted Sub-Shard
// (DSSS) store of NXgraph (paper §II-A and §III-A).
//
// A graph with n vertices and m edges is stored as:
//
//   - P equal-sized vertex intervals (interval k owns the dense id range
//     [k·⌈n/P⌉, (k+1)·⌈n/P⌉));
//   - P² sub-shards: SS[i][j] holds every edge whose source lies in
//     interval i and destination in interval j, sorted by destination id
//     and, within one destination, by source id;
//   - shard S[j] is the column of sub-shards {SS[i][j] : i}, i.e. all edges
//     whose destination lies in interval j.
//
// Sub-shards use a compressed sparse layout: the distinct destination ids,
// per-destination source counts, and the concatenated sorted source lists.
// This is the paper's "efficient compressed sparse format"; the average
// in-degree d of Table II is edges/distinctDsts of a sub-shard.
//
// The physical layout is a single shards.dat file holding all P² blobs
// row-major (whole sub-shard rows are contiguous — the order SPU streaming
// and DPU's ToHub phase consume them in), plus a JSON meta document, a
// degree file, an id-map file, an attribute file used by the disk-based
// update strategies, and an optional transposed replica for algorithms
// that traverse reverse edges (WCC, SCC, HITS).
package storage

import (
	"encoding/binary"
	"fmt"
)

// Format constants.
const (
	// MetaMagic identifies a DSSS store's meta document.
	MetaMagic = "NXGRAPH-DSSS"
	// FormatV1 is the original fixed-width CSR blob layout: uint32
	// destination ids, counts and source ids (see EncodeSubShard).
	FormatV1 = 1
	// FormatV2 is the delta+varint compressed blob layout: destination
	// and per-destination source lists are gap-encoded as LEB128 varints,
	// weights stay fixed-width in a trailing section (see
	// EncodeSubShardV2). 2.5–4× smaller on disk for typical graphs.
	FormatV2 = 2
	// DefaultFormatVersion is the format newly written stores use.
	DefaultFormatVersion = FormatV2
	// ShardMagic heads shards.dat.
	ShardMagic = uint32(0x4e584752) // "NXGR"
)

// maxSupportedVersion caps the store formats this build reads. It is a
// variable only so tests can simulate an older binary opening a newer
// store; everything else treats it as a constant equal to FormatV2.
var maxSupportedVersion = FormatV2

// File names inside a store directory.
const (
	MetaFile    = "meta.json"
	DegreeFile  = "degrees.bin"
	IDMapFile   = "idmap.bin"
	ShardsFile  = "shards.dat"
	TShardsFile = "shards_t.dat"
	AttrsFile   = "attrs.bin"
	HubsFile    = "hubs.dat"
)

// SubShardInfo locates one sub-shard blob inside shards.dat.
type SubShardInfo struct {
	Offset int64 `json:"offset"`
	Length int64 `json:"length"`
	Edges  int64 `json:"edges"`
	Dsts   int64 `json:"dsts"` // distinct destination vertices
}

// Meta is the JSON-serialized description of a store.
type Meta struct {
	Magic        string `json:"magic"`
	Version      int    `json:"version"`
	Name         string `json:"name"`
	NumVertices  uint32 `json:"num_vertices"`
	NumEdges     int64  `json:"num_edges"`
	P            int    `json:"p"`
	Weighted     bool   `json:"weighted"`
	HasTranspose bool   `json:"has_transpose"`
	// SubShards is indexed row-major: entry i*P+j is SS[i][j]. This
	// matches the physical order in shards.dat, where row i (all
	// sub-shards with source interval i) is contiguous — the order the
	// row-phase of every update strategy streams edges in.
	SubShards []SubShardInfo `json:"sub_shards"`
	// TSubShards indexes shards_t.dat for the transposed graph, in the
	// same row-major order (of the transposed matrix).
	TSubShards []SubShardInfo `json:"t_sub_shards,omitempty"`
}

// IntervalSize returns ⌈n/P⌉, the number of vertex ids per interval.
func (m *Meta) IntervalSize() uint32 {
	if m.P <= 0 {
		return 0
	}
	return (m.NumVertices + uint32(m.P) - 1) / uint32(m.P)
}

// IntervalOf returns the interval owning vertex v.
func (m *Meta) IntervalOf(v uint32) int { return int(v / m.IntervalSize()) }

// IntervalRange returns the [lo, hi) dense-id range of interval k.
func (m *Meta) IntervalRange(k int) (lo, hi uint32) {
	size := m.IntervalSize()
	lo = uint32(k) * size
	hi = lo + size
	if hi > m.NumVertices || k == m.P-1 {
		hi = m.NumVertices
	}
	if lo > m.NumVertices {
		lo = m.NumVertices
	}
	return lo, hi
}

// IntervalLen returns the number of vertices in interval k.
func (m *Meta) IntervalLen(k int) int {
	lo, hi := m.IntervalRange(k)
	return int(hi - lo)
}

// SubShardAt returns the info for SS[i][j].
func (m *Meta) SubShardAt(i, j int) SubShardInfo { return m.SubShards[i*m.P+j] }

// Validate checks internal consistency of the meta document.
func (m *Meta) Validate() error {
	if m.Magic != MetaMagic {
		return fmt.Errorf("storage: bad magic %q (want %q)", m.Magic, MetaMagic)
	}
	if m.Version < FormatV1 || m.Version > maxSupportedVersion {
		// No "storage:" prefix — Open wraps this with the store path.
		return fmt.Errorf("store format version %d found, this build reads v%d..v%d"+
			" (v1 fixed-width stores come from `nxpre -format 1`,"+
			" v2 delta+varint stores from `nxpre -format 2` or any default build)",
			m.Version, FormatV1, maxSupportedVersion)
	}
	if m.P <= 0 {
		return fmt.Errorf("storage: non-positive P %d", m.P)
	}
	if len(m.SubShards) != m.P*m.P {
		return fmt.Errorf("storage: %d sub-shard entries, want %d", len(m.SubShards), m.P*m.P)
	}
	if m.HasTranspose && len(m.TSubShards) != m.P*m.P {
		return fmt.Errorf("storage: %d transpose entries, want %d", len(m.TSubShards), m.P*m.P)
	}
	var edges int64
	for _, ss := range m.SubShards {
		edges += ss.Edges
	}
	if edges != m.NumEdges {
		return fmt.Errorf("storage: sub-shards hold %d edges, meta says %d", edges, m.NumEdges)
	}
	return nil
}

// SubShard is one decoded destination-sorted sub-shard.
//
// For destination Dsts[k], the sources are Srcs[Offsets[k]:Offsets[k+1]]
// (sorted ascending), with parallel Weights when the graph is weighted.
type SubShard struct {
	Dsts    []uint32
	Offsets []uint32 // len(Dsts)+1
	Srcs    []uint32
	Weights []float32 // nil when unweighted
}

// NumEdges returns the edge count of the sub-shard.
func (ss *SubShard) NumEdges() int { return len(ss.Srcs) }

// MemBytes returns the decoded in-memory footprint of the sub-shard's
// arrays — the unit the shared block cache budgets.
func (ss *SubShard) MemBytes() int64 {
	b := int64(len(ss.Dsts)+len(ss.Offsets)+len(ss.Srcs)) * 4
	if ss.Weights != nil {
		b += int64(len(ss.Weights)) * 4
	}
	return b
}

// NumDsts returns the number of distinct destination vertices.
func (ss *SubShard) NumDsts() int { return len(ss.Dsts) }

// AvgInDegree returns d, the average in-degree of the sub-shard's
// destinations (paper Table II), or 0 for an empty sub-shard.
func (ss *SubShard) AvgInDegree() float64 {
	if len(ss.Dsts) == 0 {
		return 0
	}
	return float64(len(ss.Srcs)) / float64(len(ss.Dsts))
}

// EncodedSize returns the byte length of the blob encoding.
func encodedSize(dsts, edges int, weighted bool) int64 {
	sz := int64(8) + int64(dsts)*8 + int64(edges)*4
	if weighted {
		sz += int64(edges) * 4
	}
	return sz
}

// EncodeSubShard serializes ss into a FormatV1 blob. Layout
// (little-endian):
//
//	uint32 dstCount | uint32 edgeCount
//	[dstCount]uint32 dst ids
//	[dstCount]uint32 per-dst source counts
//	[edgeCount]uint32 source ids
//	[edgeCount]float32 weights        (weighted stores only)
func EncodeSubShard(ss *SubShard, weighted bool) []byte {
	buf := make([]byte, encodedSize(len(ss.Dsts), len(ss.Srcs), weighted))
	binary.LittleEndian.PutUint32(buf[0:4], uint32(len(ss.Dsts)))
	binary.LittleEndian.PutUint32(buf[4:8], uint32(len(ss.Srcs)))
	p := 8
	for _, d := range ss.Dsts {
		binary.LittleEndian.PutUint32(buf[p:], d)
		p += 4
	}
	for k := range ss.Dsts {
		binary.LittleEndian.PutUint32(buf[p:], ss.Offsets[k+1]-ss.Offsets[k])
		p += 4
	}
	for _, s := range ss.Srcs {
		binary.LittleEndian.PutUint32(buf[p:], s)
		p += 4
	}
	if weighted {
		for i := range ss.Srcs {
			w := float32(1)
			if ss.Weights != nil {
				w = ss.Weights[i]
			}
			binary.LittleEndian.PutUint32(buf[p:], float32bits(w))
			p += 4
		}
	}
	return buf
}

// DecodeSubShard parses a FormatV1 blob produced by EncodeSubShard.
func DecodeSubShard(buf []byte, weighted bool) (*SubShard, error) {
	if len(buf) < 8 {
		return nil, fmt.Errorf("storage: sub-shard blob too short (%d bytes)", len(buf))
	}
	dstCount := int(binary.LittleEndian.Uint32(buf[0:4]))
	edgeCount := int(binary.LittleEndian.Uint32(buf[4:8]))
	want := encodedSize(dstCount, edgeCount, weighted)
	if int64(len(buf)) != want {
		return nil, fmt.Errorf("storage: sub-shard blob is %d bytes, want %d (dsts=%d edges=%d)",
			len(buf), want, dstCount, edgeCount)
	}
	ss := &SubShard{
		Dsts:    make([]uint32, dstCount),
		Offsets: make([]uint32, dstCount+1),
		Srcs:    make([]uint32, edgeCount),
	}
	p := 8
	for k := 0; k < dstCount; k++ {
		ss.Dsts[k] = binary.LittleEndian.Uint32(buf[p:])
		p += 4
	}
	var sum uint32
	for k := 0; k < dstCount; k++ {
		c := binary.LittleEndian.Uint32(buf[p:])
		p += 4
		sum += c
		ss.Offsets[k+1] = sum
	}
	if int(sum) != edgeCount {
		return nil, fmt.Errorf("storage: sub-shard counts sum to %d, want %d edges", sum, edgeCount)
	}
	for k := 0; k < edgeCount; k++ {
		ss.Srcs[k] = binary.LittleEndian.Uint32(buf[p:])
		p += 4
	}
	if weighted {
		ss.Weights = make([]float32, edgeCount)
		for k := 0; k < edgeCount; k++ {
			ss.Weights[k] = float32frombits(binary.LittleEndian.Uint32(buf[p:]))
			p += 4
		}
	}
	return ss, nil
}

// EncodeSubShardV2 serializes ss into a FormatV2 blob. The sub-shard
// must be in canonical order — destinations strictly ascending, sources
// non-descending within each destination (the sharder, SortSubShard and
// NewSubShardFromEdges all guarantee this) — because both sorted lists
// are gap-encoded. Layout:
//
//	uvarint dstCount | uvarint edgeCount
//	uvarint dst[0], then uvarint(dst[k]−dst[k−1])        (strictly ascending)
//	[dstCount]uvarint per-dst source counts
//	per dst: uvarint src[lo], then uvarint(src[t]−src[t−1])  (gap 0 = parallel edge)
//	[edgeCount]float32 weights, little-endian             (weighted stores only)
//
// Weights stay fixed-width in a trailing section located at
// len(blob) − 4·edgeCount, so unweighted decode never touches them and
// weighted decode finds them without scanning the varint region.
func EncodeSubShardV2(ss *SubShard, weighted bool) []byte {
	nd, ne := len(ss.Dsts), len(ss.Srcs)
	// Capacity guess: headers ≤ 10, most gaps and counts 1–2 bytes.
	buf := make([]byte, 0, 10+3*nd+3*ne)
	buf = appendUvarint(buf, uint32(nd))
	buf = appendUvarint(buf, uint32(ne))
	prev := uint32(0)
	for k, d := range ss.Dsts {
		if k == 0 {
			buf = appendUvarint(buf, d)
		} else {
			buf = appendUvarint(buf, d-prev)
		}
		prev = d
	}
	for k := range ss.Dsts {
		buf = appendUvarint(buf, ss.Offsets[k+1]-ss.Offsets[k])
	}
	for k := range ss.Dsts {
		lo, hi := ss.Offsets[k], ss.Offsets[k+1]
		prev = 0
		for t := lo; t < hi; t++ {
			s := ss.Srcs[t]
			if t == lo {
				buf = appendUvarint(buf, s)
			} else {
				buf = appendUvarint(buf, s-prev)
			}
			prev = s
		}
	}
	if weighted {
		off := len(buf)
		buf = append(buf, make([]byte, 4*ne)...)
		for i := 0; i < ne; i++ {
			w := float32(1)
			if ss.Weights != nil {
				w = ss.Weights[i]
			}
			binary.LittleEndian.PutUint32(buf[off+4*i:], float32bits(w))
		}
	}
	return buf
}

// DecodeSubShardV2 parses a blob produced by EncodeSubShardV2. It
// validates every structural invariant (monotone destinations, monotone
// sources, counts summing to the edge count, the varint region ending
// exactly at the weight section), so arbitrary bytes produce an error,
// never a panic — the contract the fuzz target exercises.
func DecodeSubShardV2(buf []byte, weighted bool) (*SubShard, error) {
	dc, p := uvarint32(buf, 0)
	if p < 0 {
		return nil, fmt.Errorf("storage: v2 blob: truncated dst count")
	}
	ec, p := uvarint32(buf, p)
	if p < 0 {
		return nil, fmt.Errorf("storage: v2 blob: truncated edge count")
	}
	dstCount, edgeCount := int(dc), int(ec)
	end := len(buf)
	if weighted {
		end -= 4 * edgeCount
	}
	// Every destination needs at least one gap byte, one count byte and
	// one source byte; rejecting impossible counts up front also bounds
	// the allocations below against hostile headers.
	if end < p || end-p < 2*dstCount+edgeCount || edgeCount < dstCount {
		return nil, fmt.Errorf("storage: v2 blob: %d bytes cannot hold %d dsts / %d edges",
			len(buf), dstCount, edgeCount)
	}
	ss := &SubShard{
		Dsts:    make([]uint32, dstCount),
		Offsets: make([]uint32, dstCount+1),
		Srcs:    make([]uint32, edgeCount),
	}
	v := buf[:end] // varint region; p never legally reaches past it
	var d uint32
	for k := 0; k < dstCount; k++ {
		gap, np := uvarint32(v, p)
		if np < 0 {
			return nil, fmt.Errorf("storage: v2 blob: truncated dst gap %d", k)
		}
		p = np
		if k == 0 {
			d = gap
		} else {
			nd := uint64(d) + uint64(gap)
			if gap == 0 || nd > 1<<32-1 {
				return nil, fmt.Errorf("storage: v2 blob: dst %d not ascending", k)
			}
			d = uint32(nd)
		}
		ss.Dsts[k] = d
	}
	var sum uint64
	for k := 0; k < dstCount; k++ {
		c, np := uvarint32(v, p)
		if np < 0 {
			return nil, fmt.Errorf("storage: v2 blob: truncated count %d", k)
		}
		p = np
		if c == 0 {
			// A destination is listed only if it has sources; rejecting
			// zero keeps the encoding bijective and the source loop's
			// first-raw-then-gaps shape unconditional.
			return nil, fmt.Errorf("storage: v2 blob: dst %d has zero sources", k)
		}
		sum += uint64(c)
		if sum > uint64(edgeCount) {
			return nil, fmt.Errorf("storage: v2 blob: counts exceed %d edges", edgeCount)
		}
		ss.Offsets[k+1] = uint32(sum)
	}
	if sum != uint64(edgeCount) {
		return nil, fmt.Errorf("storage: v2 blob: counts sum to %d, want %d edges", sum, edgeCount)
	}
	srcs, t := ss.Srcs, 0
	for k := 0; k < dstCount; k++ {
		n := int(ss.Offsets[k+1]) - t
		s, np := uvarint32(v, p)
		if np < 0 {
			return nil, fmt.Errorf("storage: v2 blob: truncated sources of dst %d", k)
		}
		p = np
		// Short-run fast paths: the skewed graphs DSSS targets give most
		// destinations 1–3 sources per sub-shard cell, so the common runs
		// decode straight-line with no inner loop.
		switch n {
		case 1:
			srcs[t] = s
			t++
			continue
		case 2:
			srcs[t] = s
			g, np := uvarint32(v, p)
			if np < 0 {
				return nil, fmt.Errorf("storage: v2 blob: truncated sources of dst %d", k)
			}
			p = np
			s2 := uint64(s) + uint64(g)
			if s2 > 1<<32-1 {
				return nil, fmt.Errorf("storage: v2 blob: source overflow at dst %d", k)
			}
			srcs[t+1] = uint32(s2)
			t += 2
			continue
		}
		srcs[t] = s
		t++
		for i := 1; i < n; i++ {
			g, np := uvarint32(v, p)
			if np < 0 {
				return nil, fmt.Errorf("storage: v2 blob: truncated sources of dst %d", k)
			}
			p = np
			ns := uint64(s) + uint64(g)
			if ns > 1<<32-1 {
				return nil, fmt.Errorf("storage: v2 blob: source overflow at dst %d", k)
			}
			s = uint32(ns)
			srcs[t] = s
			t++
		}
	}
	if p != end {
		return nil, fmt.Errorf("storage: v2 blob: %d trailing bytes", end-p)
	}
	if weighted {
		ss.Weights = make([]float32, edgeCount)
		for k := 0; k < edgeCount; k++ {
			ss.Weights[k] = float32frombits(binary.LittleEndian.Uint32(buf[end+4*k:]))
		}
	}
	return ss, nil
}

// EncodeSubShardAs serializes ss in the given format version.
// FormatV2 requires canonical order; see EncodeSubShardV2.
func EncodeSubShardAs(ss *SubShard, weighted bool, version int) []byte {
	if version == FormatV1 {
		return EncodeSubShard(ss, weighted)
	}
	return EncodeSubShardV2(ss, weighted)
}

// DecodeSubShardAs parses a blob written in the given format version.
func DecodeSubShardAs(buf []byte, weighted bool, version int) (*SubShard, error) {
	if version == FormatV1 {
		return DecodeSubShard(buf, weighted)
	}
	return DecodeSubShardV2(buf, weighted)
}
