package storage

import (
	"math/rand"
	"os"
	"strings"
	"testing"
)

// canonicalSubShard builds a random sub-shard in canonical order:
// destinations strictly ascending, sources non-descending within each
// destination (duplicates model parallel edges). This is the order the
// v2 gap encoding requires.
func canonicalSubShard(rng *rand.Rand, weighted bool) *SubShard {
	nd := rng.Intn(24)
	ss := &SubShard{Offsets: []uint32{0}}
	dsts := rng.Perm(1 << 20)[:nd]
	for i := 1; i < len(dsts); i++ {
		for j := i; j > 0 && dsts[j] < dsts[j-1]; j-- {
			dsts[j], dsts[j-1] = dsts[j-1], dsts[j]
		}
	}
	for _, d := range dsts {
		ss.Dsts = append(ss.Dsts, uint32(d))
		cnt := 1 + rng.Intn(7)
		src := uint32(rng.Intn(1 << 24))
		for c := 0; c < cnt; c++ {
			if c > 0 && rng.Intn(4) > 0 {
				src += uint32(rng.Intn(1 << 12))
			} // else: repeat the source — a parallel edge, gap 0
			ss.Srcs = append(ss.Srcs, src)
			if weighted {
				ss.Weights = append(ss.Weights, rng.Float32())
			}
		}
		ss.Offsets = append(ss.Offsets, uint32(len(ss.Srcs)))
	}
	return ss
}

func sameSubShard(t *testing.T, got, want *SubShard, weighted bool) {
	t.Helper()
	if got.NumDsts() != want.NumDsts() || got.NumEdges() != want.NumEdges() {
		t.Fatalf("counts: got %d/%d, want %d/%d",
			got.NumDsts(), got.NumEdges(), want.NumDsts(), want.NumEdges())
	}
	for k := range want.Dsts {
		if got.Dsts[k] != want.Dsts[k] || got.Offsets[k+1] != want.Offsets[k+1] {
			t.Fatalf("dst %d: got (%d,%d), want (%d,%d)",
				k, got.Dsts[k], got.Offsets[k+1], want.Dsts[k], want.Offsets[k+1])
		}
	}
	for i := range want.Srcs {
		if got.Srcs[i] != want.Srcs[i] {
			t.Fatalf("src %d: got %d, want %d", i, got.Srcs[i], want.Srcs[i])
		}
		if weighted && got.Weights[i] != want.Weights[i] {
			t.Fatalf("weight %d: got %v, want %v", i, got.Weights[i], want.Weights[i])
		}
	}
	if !weighted && got.Weights != nil {
		t.Fatal("unweighted decode materialized weights")
	}
}

func TestEncodeDecodeV2RoundTrip(t *testing.T) {
	for _, weighted := range []bool{false, true} {
		rng := rand.New(rand.NewSource(7))
		for iter := 0; iter < 200; iter++ {
			ss := canonicalSubShard(rng, weighted)
			blob := EncodeSubShardV2(ss, weighted)
			got, err := DecodeSubShardV2(blob, weighted)
			if err != nil {
				t.Fatalf("weighted=%v iter=%d: %v", weighted, iter, err)
			}
			sameSubShard(t, got, ss, weighted)
		}
	}
}

// TestV2MatchesV1 decodes the same sub-shard through both codecs and
// checks both the equivalence and that v2 actually compresses.
func TestV2MatchesV1(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var v1Bytes, v2Bytes int
	for iter := 0; iter < 50; iter++ {
		ss := canonicalSubShard(rng, false)
		if ss.NumEdges() == 0 {
			continue
		}
		b1 := EncodeSubShard(ss, false)
		b2 := EncodeSubShardV2(ss, false)
		v1Bytes += len(b1)
		v2Bytes += len(b2)
		d1, err1 := DecodeSubShardAs(b1, false, FormatV1)
		d2, err2 := DecodeSubShardAs(b2, false, FormatV2)
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		sameSubShard(t, d2, d1, false)
	}
	// The fixture's gaps are deliberately large (up to 2^12); real
	// interval-partitioned stores compress harder (the soak benchmark
	// asserts >= 2x there), so only sanity-check 1.5x here.
	if v2Bytes*3 > v1Bytes*2 {
		t.Fatalf("v2 encoding is %d bytes vs %d for v1 — expected at least 1.5x compression",
			v2Bytes, v1Bytes)
	}
}

// TestV2RoundTripFromEdges drives the full construction path: raw edge
// arrays -> NewSubShardFromEdges (sorts to canonical order) -> v2 encode
// -> decode must reproduce the built sub-shard bit for bit.
func TestV2RoundTripFromEdges(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for _, weighted := range []bool{false, true} {
		for iter := 0; iter < 50; iter++ {
			n := 1 + rng.Intn(200)
			srcs := make([]uint32, n)
			dsts := make([]uint32, n)
			var ws []float32
			if weighted {
				ws = make([]float32, n)
			}
			for i := range srcs {
				srcs[i] = uint32(rng.Intn(64)) // few distinct ids: parallel edges likely
				dsts[i] = uint32(rng.Intn(64))
				if weighted {
					ws[i] = rng.Float32()
				}
			}
			ss := NewSubShardFromEdges(srcs, dsts, ws)
			blob := EncodeSubShardV2(ss, weighted)
			got, err := DecodeSubShardV2(blob, weighted)
			if err != nil {
				t.Fatalf("weighted=%v iter=%d: %v", weighted, iter, err)
			}
			sameSubShard(t, got, ss, weighted)
		}
	}
}

func TestDecodeV2RejectsCorruptBlobs(t *testing.T) {
	ss := canonicalSubShard(rand.New(rand.NewSource(3)), false)
	for ss.NumEdges() < 4 {
		ss = canonicalSubShard(rand.New(rand.NewSource(4)), false)
	}
	blob := EncodeSubShardV2(ss, false)
	if _, err := DecodeSubShardV2(nil, false); err == nil {
		t.Fatal("empty blob should fail")
	}
	if _, err := DecodeSubShardV2(blob[:len(blob)/2], false); err == nil {
		t.Fatal("truncated blob should fail")
	}
	if _, err := DecodeSubShardV2(append(append([]byte{}, blob...), 0), false); err == nil {
		t.Fatal("trailing garbage should fail")
	}
	// A huge declared dst count must be rejected before allocation.
	if _, err := DecodeSubShardV2([]byte{0xff, 0xff, 0xff, 0xff, 0x0f, 0x01, 0x01}, false); err == nil {
		t.Fatal("hostile dst count should fail")
	}
}

// TestEmptyAndSingleEdgeV2 covers the degenerate shapes explicitly (the
// fuzz corpus seeds the same cases).
func TestEmptyAndSingleEdgeV2(t *testing.T) {
	empty := &SubShard{Offsets: []uint32{0}}
	got, err := DecodeSubShardV2(EncodeSubShardV2(empty, false), false)
	if err != nil || got.NumDsts() != 0 || got.NumEdges() != 0 {
		t.Fatalf("empty: %+v, %v", got, err)
	}
	one := &SubShard{Dsts: []uint32{4294967295}, Offsets: []uint32{0, 1}, Srcs: []uint32{4294967295}}
	got, err = DecodeSubShardV2(EncodeSubShardV2(one, false), false)
	if err != nil || got.Dsts[0] != 4294967295 || got.Srcs[0] != 4294967295 {
		t.Fatalf("max-id single edge: %+v, %v", got, err)
	}
}

// setMaxSupportedVersion simulates a build capped at an older format.
func setMaxSupportedVersion(t *testing.T, v int) {
	t.Helper()
	old := maxSupportedVersion
	maxSupportedVersion = v
	t.Cleanup(func() { maxSupportedVersion = old })
}

// TestOpenRejectsNewerVersionCleanly opens a v2 store with a build
// capped at v1: the error must name the path, the found and supported
// versions, and the nxpre remedy — and no shard byte may be read.
func TestOpenRejectsNewerVersionCleanly(t *testing.T) {
	disk, st := buildTinyStore(t, false) // default format = v2
	st.Close()
	disk.ResetStats()

	setMaxSupportedVersion(t, FormatV1)
	_, err := Open(disk, "st")
	if err == nil {
		t.Fatal("v1-capped build opened a v2 store")
	}
	msg := err.Error()
	for _, want := range []string{disk.Path("st"), "version 2", "v1..v1", "nxpre -format"} {
		if !strings.Contains(msg, want) {
			t.Fatalf("error %q does not mention %q", msg, want)
		}
	}
	if got := disk.Stats().Snapshot().BytesRead; got != 0 {
		t.Fatalf("rejected open still read %d bytes from the store", got)
	}
}

// TestOpenRejectsMixedShardVersion corrupts the shard header version so
// it disagrees with meta.json.
func TestOpenRejectsMixedShardVersion(t *testing.T) {
	disk, st := buildTinyStore(t, false)
	st.Close()
	path := disk.Path("st/" + ShardsFile)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[4] = 1 // header says v1, meta says v2
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = Open(disk, "st")
	if err == nil {
		t.Fatal("mixed-version store accepted")
	}
	if !strings.Contains(err.Error(), ShardsFile) || !strings.Contains(err.Error(), "meta.json says 2") {
		t.Fatalf("unhelpful mixed-version error: %v", err)
	}
}

// TestV1StoreStillReadable writes a v1 store and reads it back through
// the dispatching path.
func TestV1StoreStillReadable(t *testing.T) {
	_, st := buildTinyStoreFormat(t, true, FormatV1)
	if st.Meta().Version != FormatV1 {
		t.Fatalf("meta version %d", st.Meta().Version)
	}
	ss, err := st.ReadSubShard(0, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	if ss.NumEdges() != 1 || ss.Dsts[0] != 2 || ss.Weights[0] != 2 {
		t.Fatalf("SS[0][1]: %+v", ss)
	}
	if err := Verify(st); err != nil {
		t.Fatal(err)
	}
}

// TestCompressionRatio checks the accounting helper on both formats.
func TestCompressionRatio(t *testing.T) {
	_, v1 := buildTinyStoreFormat(t, false, FormatV1)
	enc, fixed := v1.CompressionRatio()
	if enc != fixed {
		t.Fatalf("v1 store: encoded %d != fixed-width %d", enc, fixed)
	}
	_, v2 := buildTinyStore(t, false)
	enc, fixed = v2.CompressionRatio()
	if enc >= fixed || enc <= 0 {
		t.Fatalf("v2 store: encoded %d, fixed-width %d — expected compression", enc, fixed)
	}
}
