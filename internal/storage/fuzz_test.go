package storage

import (
	"bytes"
	"testing"
)

// FuzzUvarint32 round-trips the varint codec and cross-checks the
// decoder against re-encoding.
func FuzzUvarint32(f *testing.F) {
	for _, v := range []uint32{0, 1, 0x7f, 0x80, 0x3fff, 0x4000, 1 << 21, 1 << 28, 1<<32 - 1} {
		f.Add(v)
	}
	f.Fuzz(func(t *testing.T, v uint32) {
		buf := appendUvarint(nil, v)
		if len(buf) > maxUvarint32Len {
			t.Fatalf("%d encoded to %d bytes", v, len(buf))
		}
		got, p := uvarint32(buf, 0)
		if p != len(buf) || got != v {
			t.Fatalf("round trip of %d: got %d, consumed %d of %d", v, got, p, len(buf))
		}
		// Every truncation ends on a continuation byte (or is empty), so
		// all of them must fail rather than read out of bounds.
		for cut := 0; cut < len(buf); cut++ {
			if _, p := uvarint32(buf[:cut], 0); p >= 0 {
				t.Fatalf("truncated encoding of %d (len %d) decoded", v, cut)
			}
		}
	})
}

// fuzzSeedBlobs is the corpus the issue calls for: empty, single-edge,
// hub-shaped (one destination, many sources) and max-id sub-shards.
func fuzzSeedBlobs(weighted bool) [][]byte {
	hub := &SubShard{Dsts: []uint32{42}, Offsets: []uint32{0, 64}}
	for i := 0; i < 64; i++ {
		hub.Srcs = append(hub.Srcs, uint32(i*i))
		if weighted {
			hub.Weights = append(hub.Weights, float32(i))
		}
	}
	shards := []*SubShard{
		{Offsets: []uint32{0}},
		{Dsts: []uint32{7}, Offsets: []uint32{0, 1}, Srcs: []uint32{3}, Weights: wts(weighted, 0.5)},
		hub,
		{Dsts: []uint32{1<<32 - 1}, Offsets: []uint32{0, 2}, Srcs: []uint32{1<<32 - 1, 1<<32 - 1},
			Weights: func() []float32 {
				if weighted {
					return []float32{1, 2}
				}
				return nil
			}()},
	}
	var out [][]byte
	for _, ss := range shards {
		out = append(out, EncodeSubShardV2(ss, weighted))
	}
	return out
}

// FuzzDecodeSubShardV2 throws arbitrary bytes at the v2 decoder: it must
// never panic, and whatever it accepts must re-encode to the identical
// blob (a canonical-order sub-shard has exactly one v2 encoding).
func FuzzDecodeSubShardV2(f *testing.F) {
	for _, weighted := range []bool{false, true} {
		for _, blob := range fuzzSeedBlobs(weighted) {
			f.Add(blob, weighted)
		}
	}
	f.Fuzz(func(t *testing.T, blob []byte, weighted bool) {
		ss, err := DecodeSubShardV2(blob, weighted)
		if err != nil {
			return
		}
		// Structural invariants the decoder promises.
		if len(ss.Offsets) != len(ss.Dsts)+1 || int(ss.Offsets[len(ss.Dsts)]) != len(ss.Srcs) {
			t.Fatalf("inconsistent shape: %d dsts, %d offsets, %d srcs",
				len(ss.Dsts), len(ss.Offsets), len(ss.Srcs))
		}
		for k := 1; k < len(ss.Dsts); k++ {
			if ss.Dsts[k] <= ss.Dsts[k-1] {
				t.Fatalf("dsts not strictly ascending at %d", k)
			}
		}
		for k := range ss.Dsts {
			for t2 := ss.Offsets[k] + 1; t2 < ss.Offsets[k+1]; t2++ {
				if ss.Srcs[t2] < ss.Srcs[t2-1] {
					t.Fatalf("srcs of dst %d descend at %d", k, t2)
				}
			}
		}
		re := EncodeSubShardV2(ss, weighted)
		if !bytes.Equal(re, blob) {
			t.Fatalf("accepted blob is not canonical: decode/encode changed %d -> %d bytes",
				len(blob), len(re))
		}
	})
}
