package storage

import (
	"encoding/binary"
	"fmt"
	"math"

	"nxgraph/internal/diskio"
)

// HubStore holds the DPU/MPU hubs (paper §III-B2): for each hub-bearing
// sub-shard SS[i][j], hub H[i][j] stores the sub-shard's distinct
// destination ids together with the Sum-accumulated partial attribute each
// destination received from source interval i. The ToHub phase writes
// hubs; the FromHub phase reads and folds them into the destination
// interval.
//
// Each hub has a fixed region in hubs.dat, sized from the sub-shard's
// distinct-destination count, so a hub entry costs Ba+Bv bytes exactly as
// in the paper's I/O model (Table II).
type HubStore struct {
	f       *diskio.File
	meta    *Meta
	offsets []int64 // P*P+1 region boundaries, row-major index i*P+j
	infos   []SubShardInfo
}

const hubEntryBytes = 12 // uint32 dst id (Bv=4) + float64 value (Ba=8)

// OpenHubs creates (or re-creates) the hub file for the forward or
// transposed sub-shard set.
func (s *Store) OpenHubs(transpose bool) (*HubStore, error) {
	infos := s.meta.SubShards
	name := s.dir + "/" + HubsFile
	if transpose {
		if !s.meta.HasTranspose {
			return nil, fmt.Errorf("storage: store has no transpose replica")
		}
		infos = s.meta.TSubShards
		name = s.dir + "/hubs_t.dat"
	}
	P := s.meta.P
	offsets := make([]int64, P*P+1)
	for k, info := range infos {
		offsets[k+1] = offsets[k] + info.Dsts*hubEntryBytes
	}
	f, err := s.disk.Create(name)
	if err != nil {
		return nil, err
	}
	return &HubStore{f: f, meta: &s.meta, offsets: offsets, infos: infos}, nil
}

// Close releases the hub file.
func (h *HubStore) Close() error { return h.f.Close() }

// Write stores hub H[i][j]: parallel slices of destination ids and
// accumulated values, exactly as many as the sub-shard's distinct
// destinations.
func (h *HubStore) Write(i, j int, dsts []uint32, vals []float64) error {
	k := i*h.meta.P + j
	want := h.infos[k].Dsts
	if int64(len(dsts)) != want || int64(len(vals)) != want {
		return fmt.Errorf("storage: hub (%d,%d) has %d dsts, got %d/%d values",
			i, j, want, len(dsts), len(vals))
	}
	if want == 0 {
		return nil
	}
	buf := make([]byte, want*hubEntryBytes)
	p := 0
	for t := range dsts {
		binary.LittleEndian.PutUint32(buf[p:], dsts[t])
		binary.LittleEndian.PutUint64(buf[p+4:], math.Float64bits(vals[t]))
		p += hubEntryBytes
	}
	if _, err := h.f.WriteAt(buf, h.offsets[k]); err != nil {
		return fmt.Errorf("storage: write hub (%d,%d): %w", i, j, err)
	}
	return nil
}

// Read loads hub H[i][j] into freshly allocated slices.
func (h *HubStore) Read(i, j int) (dsts []uint32, vals []float64, err error) {
	k := i*h.meta.P + j
	count := h.infos[k].Dsts
	if count == 0 {
		return nil, nil, nil
	}
	buf := make([]byte, count*hubEntryBytes)
	if _, err := h.f.ReadAt(buf, h.offsets[k]); err != nil {
		return nil, nil, fmt.Errorf("storage: read hub (%d,%d): %w", i, j, err)
	}
	dsts = make([]uint32, count)
	vals = make([]float64, count)
	p := 0
	for t := int64(0); t < count; t++ {
		dsts[t] = binary.LittleEndian.Uint32(buf[p:])
		vals[t] = math.Float64frombits(binary.LittleEndian.Uint64(buf[p+4:]))
		p += hubEntryBytes
	}
	return dsts, vals, nil
}

// Entries returns the number of hub entries for sub-shard (i, j).
func (h *HubStore) Entries(i, j int) int64 { return h.infos[i*h.meta.P+j].Dsts }
