package storage

import "sort"

// NewSubShardFromEdges builds an in-memory destination-sorted sub-shard
// from parallel edge arrays (dense-id space). The input need not be
// ordered; edges are sorted by destination and then source, matching the
// canonical DSSS sub-shard order, so the result can flow through every
// gather kernel exactly like a decoded on-disk sub-shard. weights may be
// nil for an unweighted edge set. Parallel edges are preserved.
//
// This is the building block of the delta-overlay path (online edge
// ingestion): pending insertions are compiled into per-cell sub-shards
// the engine gathers alongside the base store's.
func NewSubShardFromEdges(srcs, dsts []uint32, weights []float32) *SubShard {
	n := len(srcs)
	if n == 0 {
		return nil
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		oa, ob := order[a], order[b]
		if dsts[oa] != dsts[ob] {
			return dsts[oa] < dsts[ob]
		}
		return srcs[oa] < srcs[ob]
	})
	ss := &SubShard{
		Srcs:    make([]uint32, n),
		Offsets: []uint32{0},
	}
	if weights != nil {
		ss.Weights = make([]float32, n)
	}
	for i, o := range order {
		d := dsts[o]
		if len(ss.Dsts) == 0 || ss.Dsts[len(ss.Dsts)-1] != d {
			ss.Dsts = append(ss.Dsts, d)
			ss.Offsets = append(ss.Offsets, uint32(i))
		}
		ss.Offsets[len(ss.Offsets)-1] = uint32(i + 1)
		ss.Srcs[i] = srcs[o]
		if weights != nil {
			ss.Weights[i] = weights[o]
		}
	}
	return ss
}
