package storage

import (
	"math/rand"
	"testing"
)

// benchSubShard builds a canonical-order fixture (sources sorted within
// each destination — the order the sharder emits and the v2 gap encoding
// requires).
func benchSubShard(b *testing.B, weighted bool) *SubShard {
	b.Helper()
	rng := rand.New(rand.NewSource(9))
	ss := &SubShard{Offsets: []uint32{0}}
	for d := uint32(0); d < 4096; d++ {
		ss.Dsts = append(ss.Dsts, d*3)
		cnt := 1 + rng.Intn(16)
		src := uint32(0)
		for s := 0; s < cnt; s++ {
			src += rng.Uint32() % (100000 / 16)
			ss.Srcs = append(ss.Srcs, src)
			if weighted {
				ss.Weights = append(ss.Weights, rng.Float32())
			}
		}
		ss.Offsets = append(ss.Offsets, uint32(len(ss.Srcs)))
	}
	return ss
}

func BenchmarkEncodeSubShard(b *testing.B) {
	ss := benchSubShard(b, false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		blob := EncodeSubShard(ss, false)
		b.SetBytes(int64(len(blob)))
	}
}

func BenchmarkDecodeSubShard(b *testing.B) {
	ss := benchSubShard(b, false)
	blob := EncodeSubShard(ss, false)
	b.SetBytes(int64(len(blob)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeSubShard(blob, false); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodeSubShardWeighted(b *testing.B) {
	ss := benchSubShard(b, true)
	blob := EncodeSubShard(ss, true)
	b.SetBytes(int64(len(blob)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeSubShard(blob, true); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEncodeSubShardV2(b *testing.B) {
	ss := benchSubShard(b, false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		blob := EncodeSubShardV2(ss, false)
		b.SetBytes(int64(len(blob)))
	}
}

// BenchmarkSubShardDecodeV2 measures the varint decode that runs on
// every L2 hit and every cold read of a v2 store; ns/op here is the
// price paid for the ~3x byte reduction BenchmarkDecodeSubShard's
// fixed-width layout avoids.
func BenchmarkSubShardDecodeV2(b *testing.B) {
	ss := benchSubShard(b, false)
	blob := EncodeSubShardV2(ss, false)
	b.SetBytes(int64(len(blob)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeSubShardV2(blob, false); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSubShardDecodeV2Weighted(b *testing.B) {
	ss := benchSubShard(b, true)
	blob := EncodeSubShardV2(ss, true)
	b.SetBytes(int64(len(blob)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeSubShardV2(blob, true); err != nil {
			b.Fatal(err)
		}
	}
}
