package storage

import (
	"math/rand"
	"testing"
)

func benchSubShard(b *testing.B, weighted bool) *SubShard {
	b.Helper()
	rng := rand.New(rand.NewSource(9))
	ss := &SubShard{Offsets: []uint32{0}}
	for d := uint32(0); d < 4096; d++ {
		ss.Dsts = append(ss.Dsts, d*3)
		cnt := 1 + rng.Intn(16)
		for s := 0; s < cnt; s++ {
			ss.Srcs = append(ss.Srcs, rng.Uint32()%100000)
			if weighted {
				ss.Weights = append(ss.Weights, rng.Float32())
			}
		}
		ss.Offsets = append(ss.Offsets, uint32(len(ss.Srcs)))
	}
	return ss
}

func BenchmarkEncodeSubShard(b *testing.B) {
	ss := benchSubShard(b, false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		blob := EncodeSubShard(ss, false)
		b.SetBytes(int64(len(blob)))
	}
}

func BenchmarkDecodeSubShard(b *testing.B) {
	ss := benchSubShard(b, false)
	blob := EncodeSubShard(ss, false)
	b.SetBytes(int64(len(blob)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeSubShard(blob, false); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodeSubShardWeighted(b *testing.B) {
	ss := benchSubShard(b, true)
	blob := EncodeSubShard(ss, true)
	b.SetBytes(int64(len(blob)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeSubShard(blob, true); err != nil {
			b.Fatal(err)
		}
	}
}
