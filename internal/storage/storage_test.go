package storage

import (
	"math/rand"
	"os"
	"sort"
	"testing"
	"testing/quick"

	"nxgraph/internal/diskio"
)

func randomSubShard(rng *rand.Rand, weighted bool) *SubShard {
	nd := rng.Intn(20)
	ss := &SubShard{Offsets: []uint32{0}}
	dsts := rng.Perm(1000)[:nd]
	sort.Ints(dsts)
	for _, d := range dsts {
		ss.Dsts = append(ss.Dsts, uint32(d))
		cnt := 1 + rng.Intn(5)
		srcs := rng.Perm(1000)[:cnt]
		sort.Ints(srcs)
		for _, s := range srcs {
			ss.Srcs = append(ss.Srcs, uint32(s))
			if weighted {
				ss.Weights = append(ss.Weights, rng.Float32())
			}
		}
		ss.Offsets = append(ss.Offsets, uint32(len(ss.Srcs)))
	}
	return ss
}

func TestSubShardEncodeDecodeRoundTrip(t *testing.T) {
	f := func(seed int64, weighted bool) bool {
		rng := rand.New(rand.NewSource(seed))
		ss := randomSubShard(rng, weighted)
		blob := EncodeSubShard(ss, weighted)
		got, err := DecodeSubShard(blob, weighted)
		if err != nil {
			return false
		}
		if got.NumDsts() != ss.NumDsts() || got.NumEdges() != ss.NumEdges() {
			return false
		}
		for k := range ss.Dsts {
			if got.Dsts[k] != ss.Dsts[k] || got.Offsets[k+1] != ss.Offsets[k+1] {
				return false
			}
		}
		for i := range ss.Srcs {
			if got.Srcs[i] != ss.Srcs[i] {
				return false
			}
			if weighted && got.Weights[i] != ss.Weights[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeRejectsCorruptBlobs(t *testing.T) {
	ss := randomSubShard(rand.New(rand.NewSource(1)), false)
	blob := EncodeSubShard(ss, false)
	if _, err := DecodeSubShard(blob[:4], false); err == nil {
		t.Fatal("short blob should fail")
	}
	if _, err := DecodeSubShard(blob[:len(blob)-1], false); err == nil {
		t.Fatal("truncated blob should fail")
	}
	if len(blob) > 8 {
		// Decoding an unweighted blob as weighted changes the expected
		// size and must fail.
		if _, err := DecodeSubShard(blob, true); err == nil {
			t.Fatal("weighted/unweighted confusion should fail")
		}
	}
}

func TestAvgInDegree(t *testing.T) {
	ss := &SubShard{
		Dsts:    []uint32{1, 2},
		Offsets: []uint32{0, 3, 4},
		Srcs:    []uint32{0, 1, 2, 0},
	}
	if d := ss.AvgInDegree(); d != 2 {
		t.Fatalf("d = %v, want 2", d)
	}
	empty := &SubShard{Offsets: []uint32{0}}
	if empty.AvgInDegree() != 0 {
		t.Fatal("empty sub-shard d should be 0")
	}
}

func TestMetaIntervals(t *testing.T) {
	m := &Meta{NumVertices: 10, P: 4}
	if m.IntervalSize() != 3 {
		t.Fatalf("size = %d", m.IntervalSize())
	}
	wantLens := []int{3, 3, 3, 1}
	for k, want := range wantLens {
		if m.IntervalLen(k) != want {
			t.Fatalf("len(%d) = %d, want %d", k, m.IntervalLen(k), want)
		}
	}
	if m.IntervalOf(9) != 3 || m.IntervalOf(0) != 0 || m.IntervalOf(3) != 1 {
		t.Fatal("IntervalOf wrong")
	}
}

func TestMetaValidate(t *testing.T) {
	good := Meta{Magic: MetaMagic, Version: DefaultFormatVersion, NumVertices: 4,
		NumEdges: 0, P: 2, SubShards: make([]SubShardInfo, 4)}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := good
	bad.Magic = "nope"
	if bad.Validate() == nil {
		t.Fatal("bad magic accepted")
	}
	bad = good
	bad.Version = 99
	if bad.Validate() == nil {
		t.Fatal("bad version accepted")
	}
	bad = good
	bad.SubShards = bad.SubShards[:3]
	if bad.Validate() == nil {
		t.Fatal("wrong sub-shard count accepted")
	}
	bad = good
	bad.NumEdges = 5
	if bad.Validate() == nil {
		t.Fatal("edge count mismatch accepted")
	}
}

func buildTinyStore(t *testing.T, weighted bool) (*diskio.Disk, *Store) {
	return buildTinyStoreFormat(t, weighted, DefaultFormatVersion)
}

func buildTinyStoreFormat(t *testing.T, weighted bool, format int) (*diskio.Disk, *Store) {
	t.Helper()
	disk := diskio.MustNew(t.TempDir(), diskio.Unthrottled)
	w, err := NewWriterFormat(disk, "st", "tiny", 4, 3, 2, weighted, format)
	if err != nil {
		t.Fatal(err)
	}
	// SS[0][0]: edge 1->0; SS[0][1]: edge 0->2; SS[1][1]: edge 3->3.
	shards := []*SubShard{
		{Dsts: []uint32{0}, Offsets: []uint32{0, 1}, Srcs: []uint32{1}, Weights: wts(weighted, 1)},
		{Dsts: []uint32{2}, Offsets: []uint32{0, 1}, Srcs: []uint32{0}, Weights: wts(weighted, 2)},
		{Offsets: []uint32{0}},
		{Dsts: []uint32{3}, Offsets: []uint32{0, 1}, Srcs: []uint32{3}, Weights: wts(weighted, 3)},
	}
	for _, ss := range shards {
		if err := w.AppendSubShard(ss); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.WriteDegrees([]uint32{1, 1, 0, 1}, []uint32{1, 0, 1, 1}); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteIDMap([]uint64{10, 20, 30, 40}); err != nil {
		t.Fatal(err)
	}
	if err := w.Finish(); err != nil {
		t.Fatal(err)
	}
	st, err := Open(disk, "st")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	return disk, st
}

func wts(weighted bool, w float32) []float32 {
	if !weighted {
		return nil
	}
	return []float32{w}
}

func TestWriterStoreRoundTrip(t *testing.T) {
	_, st := buildTinyStore(t, true)
	m := st.Meta()
	if m.NumVertices != 4 || m.NumEdges != 3 || m.P != 2 {
		t.Fatalf("meta: %+v", m)
	}
	ss, err := st.ReadSubShard(0, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	if ss.NumEdges() != 1 || ss.Dsts[0] != 2 || ss.Srcs[0] != 0 || ss.Weights[0] != 2 {
		t.Fatalf("SS[0][1]: %+v", ss)
	}
	empty, err := st.ReadSubShard(1, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	if empty.NumEdges() != 0 {
		t.Fatal("SS[1][0] should be empty")
	}
	out, in, err := st.Degrees()
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != 1 || in[2] != 1 {
		t.Fatalf("degrees: %v %v", out, in)
	}
	ids, err := st.IDMap()
	if err != nil {
		t.Fatal(err)
	}
	if ids[3] != 40 {
		t.Fatalf("idmap: %v", ids)
	}
	if got := st.SubShardsOfColumn(1, false); len(got) != 2 {
		t.Fatalf("column 1 rows: %v", got)
	}
	if st.EdgeBytesOnDisk(false) <= 0 {
		t.Fatal("edge bytes should be positive")
	}
	if _, err := st.ReadSubShard(5, 0, false); err == nil {
		t.Fatal("out-of-range sub-shard accepted")
	}
	if _, err := st.ReadSubShard(0, 0, true); err == nil {
		t.Fatal("transpose read without replica accepted")
	}
}

func TestWriterOrderEnforcement(t *testing.T) {
	disk := diskio.MustNew(t.TempDir(), diskio.Unthrottled)
	w, err := NewWriter(disk, "st", "x", 4, 0, 2, false)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Abort()
	for i := 0; i < 4; i++ {
		if err := w.AppendSubShard(&SubShard{Offsets: []uint32{0}}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.AppendSubShard(&SubShard{Offsets: []uint32{0}}); err == nil {
		t.Fatal("5th sub-shard for P=2 accepted")
	}
}

func TestAttrStoreRoundTrip(t *testing.T) {
	_, st := buildTinyStore(t, false)
	as, err := st.OpenAttrs()
	if err != nil {
		t.Fatal(err)
	}
	defer as.Close()
	if err := as.WriteAll([]float64{1, 2, 3, 4}); err != nil {
		t.Fatal(err)
	}
	got, err := as.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 1 || got[3] != 4 {
		t.Fatalf("attrs: %v", got)
	}
	buf := make([]float64, st.Meta().IntervalLen(1))
	if err := as.ReadInterval(1, buf); err != nil {
		t.Fatal(err)
	}
	if buf[0] != 3 || buf[1] != 4 {
		t.Fatalf("interval 1: %v", buf)
	}
	buf[0] = 30
	if err := as.WriteInterval(1, buf); err != nil {
		t.Fatal(err)
	}
	got, _ = as.ReadAll()
	if got[2] != 30 {
		t.Fatalf("after write: %v", got)
	}
	if err := as.ReadInterval(0, make([]float64, 1)); err == nil {
		t.Fatal("wrong buffer size accepted")
	}
	if err := as.WriteAll([]float64{1}); err == nil {
		t.Fatal("wrong WriteAll size accepted")
	}
}

func TestHubStoreRoundTrip(t *testing.T) {
	_, st := buildTinyStore(t, false)
	h, err := st.OpenHubs(false)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	if h.Entries(0, 1) != 1 {
		t.Fatalf("entries(0,1) = %d", h.Entries(0, 1))
	}
	if err := h.Write(0, 1, []uint32{2}, []float64{3.25}); err != nil {
		t.Fatal(err)
	}
	dsts, vals, err := h.Read(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(dsts) != 1 || dsts[0] != 2 || vals[0] != 3.25 {
		t.Fatalf("hub: %v %v", dsts, vals)
	}
	// Empty hub region round-trips as nil.
	d2, v2, err := h.Read(1, 0)
	if err != nil || d2 != nil || v2 != nil {
		t.Fatalf("empty hub: %v %v %v", d2, v2, err)
	}
	if err := h.Write(0, 1, []uint32{1, 2}, []float64{1, 2}); err == nil {
		t.Fatal("wrong entry count accepted")
	}
}

func TestOpenRejectsCorruptStore(t *testing.T) {
	disk, st := buildTinyStore(t, false)
	st.Close()
	// Corrupt the shard magic.
	path := disk.Path("st/" + ShardsFile)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[0] ^= 0xff
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(disk, "st"); err == nil {
		t.Fatal("corrupt shard magic accepted")
	}
}

func TestOpenRejectsBadMeta(t *testing.T) {
	disk, st := buildTinyStore(t, false)
	st.Close()
	path := disk.Path("st/" + MetaFile)
	if err := os.WriteFile(path, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(disk, "st"); err == nil {
		t.Fatal("unparseable meta accepted")
	}
	if err := os.Remove(path); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(disk, "st"); err == nil {
		t.Fatal("missing meta accepted")
	}
}

func TestSortSubShard(t *testing.T) {
	ss := &SubShard{
		Dsts:    []uint32{5, 1},
		Offsets: []uint32{0, 2, 4},
		Srcs:    []uint32{9, 3, 8, 2},
		Weights: []float32{90, 30, 80, 20},
	}
	SortSubShard(ss)
	if ss.Dsts[0] != 1 || ss.Dsts[1] != 5 {
		t.Fatalf("dsts: %v", ss.Dsts)
	}
	if ss.Srcs[0] != 2 || ss.Srcs[1] != 8 || ss.Srcs[2] != 3 || ss.Srcs[3] != 9 {
		t.Fatalf("srcs: %v", ss.Srcs)
	}
	if ss.Weights[0] != 20 || ss.Weights[3] != 90 {
		t.Fatalf("weights did not follow: %v", ss.Weights)
	}
}

func TestVerifyAcceptsGoodStore(t *testing.T) {
	_, st := buildTinyStore(t, false)
	if err := Verify(st); err != nil {
		t.Fatal(err)
	}
}

func TestVerifyCatchesCorruption(t *testing.T) {
	// Pinned to v1: the corruption below patches a fixed-width blob
	// offset that only exists in the v1 layout.
	disk, st := buildTinyStoreFormat(t, false, FormatV1)
	st.Close()
	// Flip a source id inside the first non-empty sub-shard blob: the
	// blob still decodes but the edge moves out of its source interval
	// or breaks the degree check.
	path := disk.Path("st/" + ShardsFile)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Blob layout after the 8-byte file header: dstCount, edgeCount,
	// dsts..., counts..., srcs...; the first sub-shard has 1 dst and 1
	// edge, so its src id lives at header+8+4+4.
	srcOff := 8 + 8 + 4 + 4
	raw[srcOff] = 99
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	st2, err := Open(disk, "st")
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if err := Verify(st2); err == nil {
		t.Fatal("verify accepted a corrupted sub-shard")
	}
}
