package storage

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"sort"

	"nxgraph/internal/diskio"
)

func float32bits(f float32) uint32     { return math.Float32bits(f) }
func float32frombits(b uint32) float32 { return math.Float32frombits(b) }

// Store is an opened DSSS store.
type Store struct {
	disk *diskio.Disk
	dir  string
	meta Meta

	shards  *diskio.File
	tshards *diskio.File // nil unless HasTranspose
}

// Open opens the store rooted at dir on disk and validates its meta.
func Open(disk *diskio.Disk, dir string) (*Store, error) {
	raw, err := os.ReadFile(disk.Path(dir + "/" + MetaFile))
	if err != nil {
		return nil, fmt.Errorf("storage: read meta: %w", err)
	}
	var meta Meta
	if err := json.Unmarshal(raw, &meta); err != nil {
		return nil, fmt.Errorf("storage: parse meta: %w", err)
	}
	if err := meta.Validate(); err != nil {
		// A build capped at an older format must fail before any shard
		// byte is read — the version error names the offending path here
		// and the store's files stay untouched (no partial reads).
		return nil, fmt.Errorf("storage: open %s: %w", disk.Path(dir), err)
	}
	s := &Store{disk: disk, dir: dir, meta: meta}
	if s.shards, err = disk.Open(dir + "/" + ShardsFile); err != nil {
		return nil, err
	}
	if err := checkShardHeader(s.shards, disk.Path(dir+"/"+ShardsFile), meta.Version); err != nil {
		s.shards.Close()
		return nil, err
	}
	if meta.HasTranspose {
		if s.tshards, err = disk.Open(dir + "/" + TShardsFile); err != nil {
			s.shards.Close()
			return nil, err
		}
		if err := checkShardHeader(s.tshards, disk.Path(dir+"/"+TShardsFile), meta.Version); err != nil {
			s.Close()
			return nil, err
		}
	}
	return s, nil
}

// checkShardHeader verifies a shard file's magic and that its embedded
// format version matches the meta document's (the two are written
// together; disagreement means a corrupt or hand-mixed store).
func checkShardHeader(f *diskio.File, path string, version int) error {
	var hdr [8]byte
	if _, err := f.ReadAt(hdr[:], 0); err != nil {
		return fmt.Errorf("storage: read shard header: %w", err)
	}
	if got := binary.LittleEndian.Uint32(hdr[0:4]); got != ShardMagic {
		return fmt.Errorf("storage: %s: shard file magic %#x, want %#x", path, got, ShardMagic)
	}
	if v := binary.LittleEndian.Uint32(hdr[4:8]); v != uint32(version) {
		return fmt.Errorf("storage: %s: shard file format version %d, meta.json says %d"+
			" — store is corrupt or mixed; rebuild it with `nxpre -format %d`",
			path, v, version, version)
	}
	return nil
}

// Close releases the store's file handles.
func (s *Store) Close() error {
	var first error
	if s.shards != nil {
		if err := s.shards.Close(); err != nil {
			first = err
		}
		s.shards = nil
	}
	if s.tshards != nil {
		if err := s.tshards.Close(); err != nil && first == nil {
			first = err
		}
		s.tshards = nil
	}
	return first
}

// Meta returns the store's meta document.
func (s *Store) Meta() *Meta { return &s.meta }

// Disk returns the disk the store lives on.
func (s *Store) Disk() *diskio.Disk { return s.disk }

// Dir returns the store's directory (disk-relative).
func (s *Store) Dir() string { return s.dir }

// ReadSubShard loads and decodes SS[i][j]. With transpose set it reads
// from the transposed replica (whose [i][j] is the transpose matrix's
// own indexing).
func (s *Store) ReadSubShard(i, j int, transpose bool) (*SubShard, error) {
	blob, err := s.ReadSubShardRaw(i, j, transpose)
	if err != nil {
		return nil, err
	}
	ss, err := s.DecodeSubShardBlob(blob)
	if err != nil {
		return nil, fmt.Errorf("storage: SS[%d][%d]: %w", i, j, err)
	}
	return ss, nil
}

// ReadSubShardRaw reads SS[i][j]'s encoded blob without decoding it —
// the unit the block cache's L2 tier holds (a v2 blob is 3–4× denser
// than its decoded arrays). Empty sub-shards return a nil blob and cost
// no disk read. The blob's format version is the store's Meta().Version.
func (s *Store) ReadSubShardRaw(i, j int, transpose bool) ([]byte, error) {
	P := s.meta.P
	if i < 0 || i >= P || j < 0 || j >= P {
		return nil, fmt.Errorf("storage: sub-shard (%d,%d) out of range P=%d", i, j, P)
	}
	infos, f := s.meta.SubShards, s.shards
	if transpose {
		if !s.meta.HasTranspose {
			return nil, fmt.Errorf("storage: store has no transpose replica")
		}
		infos, f = s.meta.TSubShards, s.tshards
	}
	info := infos[i*P+j]
	if info.Length == 0 {
		return nil, nil
	}
	buf := make([]byte, info.Length)
	if _, err := f.ReadAt(buf, info.Offset); err != nil {
		return nil, fmt.Errorf("storage: read SS[%d][%d]: %w", i, j, err)
	}
	return buf, nil
}

// DecodeSubShardBlob decodes a blob returned by ReadSubShardRaw in the
// store's format version. A nil (empty sub-shard) blob decodes to the
// canonical empty sub-shard.
func (s *Store) DecodeSubShardBlob(blob []byte) (*SubShard, error) {
	if len(blob) == 0 {
		return &SubShard{Offsets: []uint32{0}}, nil
	}
	return DecodeSubShardAs(blob, s.meta.Weighted, s.meta.Version)
}

// Degrees reads the degree file: out-degrees then in-degrees, each n
// uint32s.
func (s *Store) Degrees() (out, in []uint32, err error) {
	f, err := s.disk.Open(s.dir + "/" + DegreeFile)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	n := int(s.meta.NumVertices)
	buf := make([]byte, 8*n)
	if _, err := f.ReadAt(buf, 0); err != nil {
		return nil, nil, fmt.Errorf("storage: read degrees: %w", err)
	}
	out = make([]uint32, n)
	in = make([]uint32, n)
	for v := 0; v < n; v++ {
		out[v] = binary.LittleEndian.Uint32(buf[4*v:])
		in[v] = binary.LittleEndian.Uint32(buf[4*(n+v):])
	}
	return out, in, nil
}

// IDMap reads the id→original-index map (n uint64s).
func (s *Store) IDMap() ([]uint64, error) {
	f, err := s.disk.Open(s.dir + "/" + IDMapFile)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	n := int(s.meta.NumVertices)
	buf := make([]byte, 8*n)
	if _, err := f.ReadAt(buf, 0); err != nil {
		return nil, fmt.Errorf("storage: read idmap: %w", err)
	}
	out := make([]uint64, n)
	for v := 0; v < n; v++ {
		out[v] = binary.LittleEndian.Uint64(buf[8*v:])
	}
	return out, nil
}

// SubShardsOfColumn returns the row indices i of the non-empty sub-shards
// in shard S[j], ascending.
func (s *Store) SubShardsOfColumn(j int, transpose bool) []int {
	P := s.meta.P
	infos := s.meta.SubShards
	if transpose {
		infos = s.meta.TSubShards
	}
	var rows []int
	for i := 0; i < P; i++ {
		if infos[i*P+j].Edges > 0 {
			rows = append(rows, i)
		}
	}
	return rows
}

// EdgeBytesOnDisk returns the total encoded size of all sub-shards, i.e.
// m·Be for the Table II accounting.
func (s *Store) EdgeBytesOnDisk(transpose bool) int64 {
	infos := s.meta.SubShards
	if transpose {
		infos = s.meta.TSubShards
	}
	var total int64
	for _, info := range infos {
		total += info.Length
	}
	return total
}

// CompressionRatio reports the store's total encoded sub-shard bytes
// (both replicas) against what the FormatV1 fixed-width encoding of the
// same sub-shards would occupy — the factor every cold read saves. For
// a v1 store the two are equal.
func (s *Store) CompressionRatio() (encoded, fixedWidth int64) {
	infoSets := [][]SubShardInfo{s.meta.SubShards}
	if s.meta.HasTranspose {
		infoSets = append(infoSets, s.meta.TSubShards)
	}
	for _, infos := range infoSets {
		for _, info := range infos {
			if info.Length == 0 {
				continue
			}
			encoded += info.Length
			fixedWidth += encodedSize(int(info.Dsts), int(info.Edges), s.meta.Weighted)
		}
	}
	return encoded, fixedWidth
}

// ForEachEdge streams every edge of the (forward) graph in physical
// sub-shard order, calling fn(src, dst, weight). Unweighted stores report
// weight 1. Iteration stops at the first error.
func (s *Store) ForEachEdge(fn func(src, dst uint32, w float32) error) error {
	P := s.meta.P
	for i := 0; i < P; i++ {
		for j := 0; j < P; j++ {
			ss, err := s.ReadSubShard(i, j, false)
			if err != nil {
				return err
			}
			for k := range ss.Dsts {
				for t := ss.Offsets[k]; t < ss.Offsets[k+1]; t++ {
					w := float32(1)
					if ss.Weights != nil {
						w = ss.Weights[t]
					}
					if err := fn(ss.Srcs[t], ss.Dsts[k], w); err != nil {
						return err
					}
				}
			}
		}
	}
	return nil
}

// SortSubShard orders (in place) a sub-shard's CSR arrays canonically:
// destinations ascending, sources ascending within each destination. The
// sharder produces this order already; the helper exists for tests and for
// building sub-shards directly from memory.
func SortSubShard(ss *SubShard) {
	type group struct {
		dst  uint32
		srcs []uint32
		ws   []float32
	}
	groups := make([]group, len(ss.Dsts))
	for k := range ss.Dsts {
		lo, hi := ss.Offsets[k], ss.Offsets[k+1]
		g := group{dst: ss.Dsts[k], srcs: ss.Srcs[lo:hi]}
		if ss.Weights != nil {
			g.ws = ss.Weights[lo:hi]
		}
		groups[k] = g
	}
	sort.Slice(groups, func(a, b int) bool { return groups[a].dst < groups[b].dst })
	newSrcs := make([]uint32, 0, len(ss.Srcs))
	var newWs []float32
	if ss.Weights != nil {
		newWs = make([]float32, 0, len(ss.Weights))
	}
	for k, g := range groups {
		ss.Dsts[k] = g.dst
		if g.ws == nil {
			sort.Slice(g.srcs, func(a, b int) bool { return g.srcs[a] < g.srcs[b] })
			newSrcs = append(newSrcs, g.srcs...)
		} else {
			idx := make([]int, len(g.srcs))
			for i := range idx {
				idx[i] = i
			}
			sort.Slice(idx, func(a, b int) bool { return g.srcs[idx[a]] < g.srcs[idx[b]] })
			for _, i := range idx {
				newSrcs = append(newSrcs, g.srcs[i])
				newWs = append(newWs, g.ws[i])
			}
		}
		ss.Offsets[k+1] = uint32(len(newSrcs))
	}
	copy(ss.Srcs, newSrcs)
	if ss.Weights != nil {
		copy(ss.Weights, newWs)
	}
}
