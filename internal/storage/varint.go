package storage

// Unsigned LEB128 varints, the integer encoding of format-v2 sub-shard
// blobs (see EncodeSubShardV2). The decoder here is hand-tuned for the
// blob decode loop: values in a delta-encoded sub-shard are overwhelmingly
// one byte (a destination gap, a per-destination count of 1–3, a small
// source gap), so the single-byte case is a compare-and-return fast path
// and the multi-byte continuation lives in a separate, rarely-taken
// function that stays out of the hot path's inlining budget.

// maxUvarint32Len is the longest encoding of a uint32 (5 × 7 bits).
const maxUvarint32Len = 5

// appendUvarint appends v's LEB128 encoding to buf.
func appendUvarint(buf []byte, v uint32) []byte {
	for v >= 0x80 {
		buf = append(buf, byte(v)|0x80)
		v >>= 7
	}
	return append(buf, byte(v))
}

// uvarint32 decodes one varint at offset p of b, returning the value and
// the offset past it. A truncated, uint32-overflowing or non-minimal
// (zero-padded) encoding returns a negative offset — rejecting padding
// means every value has exactly one accepted encoding, so any blob the
// v2 decoder accepts re-encodes byte-identically. The common single-byte
// case is the only code a caller's loop executes; everything else
// tail-calls uvarint32Slow.
func uvarint32(b []byte, p int) (uint32, int) {
	if uint(p) < uint(len(b)) {
		if c := b[p]; c < 0x80 {
			return uint32(c), p + 1
		}
	}
	return uvarint32Slow(b, p)
}

// uvarint32Slow handles multi-byte encodings, truncation and overflow.
func uvarint32Slow(b []byte, p int) (uint32, int) {
	var v uint32
	var shift uint
	for i := 0; i < maxUvarint32Len; i++ {
		if uint(p) >= uint(len(b)) {
			return 0, -1
		}
		c := b[p]
		p++
		if c < 0x80 {
			if i == maxUvarint32Len-1 && c > 0x0f {
				return 0, -1 // bits 32+ set: not a uint32
			}
			if c == 0 && i > 0 {
				return 0, -1 // zero-padded: a shorter encoding exists
			}
			return v | uint32(c)<<shift, p
		}
		v |= uint32(c&0x7f) << shift
		shift += 7
	}
	return 0, -1 // 5 continuation bytes: not a uint32
}
