package storage

import "fmt"

// Verify checks the full set of DSSS invariants of an opened store:
//
//   - every sub-shard decodes and its destinations lie in interval j,
//     sources in interval i;
//   - destinations strictly ascend inside a sub-shard, sources ascend
//     inside each destination's list;
//   - per-sub-shard edge/destination counts match the meta index;
//   - edge totals match the meta document;
//   - the degree file agrees with the edges (forward set);
//   - the transposed replica (when present) holds the reversed multiset
//     (verified by total and per-interval-pair counts).
//
// It reads every byte of the store; intended for preprocessing
// validation (nxpre -verify) and the failure-injection tests.
func Verify(s *Store) error {
	m := s.Meta()
	out := make([]uint64, m.NumVertices)
	in := make([]uint64, m.NumVertices)
	pairCount := map[[2]int]int64{}
	var total int64
	for i := 0; i < m.P; i++ {
		for j := 0; j < m.P; j++ {
			info := m.SubShardAt(i, j)
			ss, err := s.ReadSubShard(i, j, false)
			if err != nil {
				return fmt.Errorf("storage: verify SS[%d][%d]: %w", i, j, err)
			}
			if int64(ss.NumEdges()) != info.Edges || int64(ss.NumDsts()) != info.Dsts {
				return fmt.Errorf("storage: verify SS[%d][%d]: counts %d/%d, index says %d/%d",
					i, j, ss.NumEdges(), ss.NumDsts(), info.Edges, info.Dsts)
			}
			// Re-encoding the decoded sub-shard must reproduce the indexed
			// blob length exactly — a canonical-order sub-shard has one v2
			// encoding, so drift between writer and codec shows up here.
			if info.Length > 0 {
				if got := int64(len(EncodeSubShardAs(ss, m.Weighted, m.Version))); got != info.Length {
					return fmt.Errorf("storage: verify SS[%d][%d]: re-encodes to %d bytes, index says %d",
						i, j, got, info.Length)
				}
			}
			ilo, ihi := m.IntervalRange(i)
			jlo, jhi := m.IntervalRange(j)
			var prevDst int64 = -1
			for k := range ss.Dsts {
				d := ss.Dsts[k]
				if d < jlo || d >= jhi {
					return fmt.Errorf("storage: verify SS[%d][%d]: dst %d outside [%d,%d)", i, j, d, jlo, jhi)
				}
				if int64(d) <= prevDst {
					return fmt.Errorf("storage: verify SS[%d][%d]: dsts not strictly ascending at %d", i, j, k)
				}
				prevDst = int64(d)
				var prevSrc int64 = -1
				for t := ss.Offsets[k]; t < ss.Offsets[k+1]; t++ {
					sv := ss.Srcs[t]
					if sv < ilo || sv >= ihi {
						return fmt.Errorf("storage: verify SS[%d][%d]: src %d outside [%d,%d)", i, j, sv, ilo, ihi)
					}
					if int64(sv) < prevSrc {
						return fmt.Errorf("storage: verify SS[%d][%d]: srcs of dst %d not ascending", i, j, d)
					}
					prevSrc = int64(sv)
					out[sv]++
					in[d]++
				}
			}
			total += info.Edges
			pairCount[[2]int{i, j}] += info.Edges
		}
	}
	if total != m.NumEdges {
		return fmt.Errorf("storage: verify: %d edges in sub-shards, meta says %d", total, m.NumEdges)
	}
	degOut, degIn, err := s.Degrees()
	if err != nil {
		return fmt.Errorf("storage: verify degrees: %w", err)
	}
	for v := uint32(0); v < m.NumVertices; v++ {
		if uint64(degOut[v]) != out[v] || uint64(degIn[v]) != in[v] {
			return fmt.Errorf("storage: verify: vertex %d degree file says %d/%d, edges say %d/%d",
				v, degOut[v], degIn[v], out[v], in[v])
		}
		if out[v] == 0 && in[v] == 0 {
			return fmt.Errorf("storage: verify: vertex %d is isolated (degreer should have dropped it)", v)
		}
	}
	if !m.HasTranspose {
		return nil
	}
	var ttotal int64
	for i := 0; i < m.P; i++ {
		for j := 0; j < m.P; j++ {
			ss, err := s.ReadSubShard(i, j, true)
			if err != nil {
				return fmt.Errorf("storage: verify transpose SS[%d][%d]: %w", i, j, err)
			}
			ttotal += int64(ss.NumEdges())
			pairCount[[2]int{j, i}] -= int64(ss.NumEdges())
		}
	}
	if ttotal != m.NumEdges {
		return fmt.Errorf("storage: verify: transpose holds %d edges, want %d", ttotal, m.NumEdges)
	}
	for pair, c := range pairCount {
		if c != 0 {
			return fmt.Errorf("storage: verify: interval pair %v: forward/transpose mismatch by %d edges", pair, c)
		}
	}
	return nil
}
