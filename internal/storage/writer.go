package storage

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"os"

	"nxgraph/internal/diskio"
)

// Writer builds a DSSS store. Sub-shards must be appended in physical
// (row-major) order: for i = 0..P-1, for j = 0..P-1, append SS[i][j].
// When writing a transposed replica, call BeginTranspose after the forward
// set and append another full P² sequence. Finish writes the meta document
// and allocates the attribute file.
type Writer struct {
	disk *diskio.Disk
	dir  string
	meta Meta

	f         *diskio.File
	off       int64
	idx       int  // sub-shards appended in the current set
	transpose bool // currently writing the transposed set
	finished  bool
}

// NewWriter creates (truncating) a store at dir in the default format.
func NewWriter(disk *diskio.Disk, dir, name string, numVertices uint32, numEdges int64, p int, weighted bool) (*Writer, error) {
	return NewWriterFormat(disk, dir, name, numVertices, numEdges, p, weighted, DefaultFormatVersion)
}

// NewWriterFormat is NewWriter with an explicit store format version
// (FormatV1 keeps the fixed-width layout readable by older builds).
func NewWriterFormat(disk *diskio.Disk, dir, name string, numVertices uint32, numEdges int64, p int, weighted bool, format int) (*Writer, error) {
	if p <= 0 {
		return nil, fmt.Errorf("storage: P must be positive, got %d", p)
	}
	if format < FormatV1 || format > maxSupportedVersion {
		return nil, fmt.Errorf("storage: cannot write format version %d (valid: %d..%d)",
			format, FormatV1, maxSupportedVersion)
	}
	if err := os.MkdirAll(disk.Path(dir), 0o755); err != nil {
		return nil, fmt.Errorf("storage: create store dir: %w", err)
	}
	w := &Writer{disk: disk, dir: dir, meta: Meta{
		Magic:       MetaMagic,
		Version:     format,
		Name:        name,
		NumVertices: numVertices,
		NumEdges:    numEdges,
		P:           p,
		Weighted:    weighted,
		SubShards:   make([]SubShardInfo, p*p),
	}}
	f, err := disk.Create(dir + "/" + ShardsFile)
	if err != nil {
		return nil, err
	}
	w.f = f
	if err := w.writeHeader(); err != nil {
		f.Close()
		return nil, err
	}
	return w, nil
}

func (w *Writer) writeHeader() error {
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], ShardMagic)
	binary.LittleEndian.PutUint32(hdr[4:8], uint32(w.meta.Version))
	if _, err := w.f.WriteAt(hdr[:], 0); err != nil {
		return fmt.Errorf("storage: write shard header: %w", err)
	}
	w.off = int64(len(hdr))
	return nil
}

// AppendSubShard appends the next sub-shard in row-major order. ss may
// be empty (zero destinations).
func (w *Writer) AppendSubShard(ss *SubShard) error {
	if w.finished {
		return fmt.Errorf("storage: append after Finish")
	}
	P := w.meta.P
	if w.idx >= P*P {
		return fmt.Errorf("storage: too many sub-shards (P=%d)", P)
	}
	infos := w.meta.SubShards
	if w.transpose {
		infos = w.meta.TSubShards
	}
	info := SubShardInfo{Edges: int64(ss.NumEdges()), Dsts: int64(ss.NumDsts())}
	if ss.NumDsts() > 0 {
		blob := EncodeSubShardAs(ss, w.meta.Weighted, w.meta.Version)
		if _, err := w.f.WriteAt(blob, w.off); err != nil {
			return fmt.Errorf("storage: write sub-shard: %w", err)
		}
		info.Offset = w.off
		info.Length = int64(len(blob))
		w.off += info.Length
	}
	infos[w.idx] = info
	w.idx++
	return nil
}

// BeginTranspose finishes the forward sub-shard set and starts the
// transposed one, written to its own file.
func (w *Writer) BeginTranspose() error {
	if w.finished {
		return fmt.Errorf("storage: BeginTranspose after Finish")
	}
	if w.transpose {
		return fmt.Errorf("storage: BeginTranspose called twice")
	}
	P := w.meta.P
	if w.idx != P*P {
		return fmt.Errorf("storage: forward set has %d sub-shards, want %d", w.idx, P*P)
	}
	if err := w.f.Close(); err != nil {
		return fmt.Errorf("storage: close shards: %w", err)
	}
	f, err := w.disk.Create(w.dir + "/" + TShardsFile)
	if err != nil {
		return err
	}
	w.f = f
	if err := w.writeHeader(); err != nil {
		return err
	}
	w.meta.HasTranspose = true
	w.meta.TSubShards = make([]SubShardInfo, P*P)
	w.transpose = true
	w.idx = 0
	return nil
}

// WriteDegrees stores the out- and in-degree arrays (each n entries).
func (w *Writer) WriteDegrees(out, in []uint32) error {
	n := int(w.meta.NumVertices)
	if len(out) != n || len(in) != n {
		return fmt.Errorf("storage: degree arrays have %d/%d entries, want %d", len(out), len(in), n)
	}
	f, err := w.disk.Create(w.dir + "/" + DegreeFile)
	if err != nil {
		return err
	}
	defer f.Close()
	buf := make([]byte, 8*n)
	for v := 0; v < n; v++ {
		binary.LittleEndian.PutUint32(buf[4*v:], out[v])
		binary.LittleEndian.PutUint32(buf[4*(n+v):], in[v])
	}
	if _, err := f.WriteAt(buf, 0); err != nil {
		return fmt.Errorf("storage: write degrees: %w", err)
	}
	return nil
}

// WriteIDMap stores the id→original-index map.
func (w *Writer) WriteIDMap(ids []uint64) error {
	n := int(w.meta.NumVertices)
	if len(ids) != n {
		return fmt.Errorf("storage: idmap has %d entries, want %d", len(ids), n)
	}
	f, err := w.disk.Create(w.dir + "/" + IDMapFile)
	if err != nil {
		return err
	}
	defer f.Close()
	buf := make([]byte, 8*n)
	for v := 0; v < n; v++ {
		binary.LittleEndian.PutUint64(buf[8*v:], ids[v])
	}
	if _, err := f.WriteAt(buf, 0); err != nil {
		return fmt.Errorf("storage: write idmap: %w", err)
	}
	return nil
}

// Finish validates counts, writes meta.json and allocates attrs.bin.
func (w *Writer) Finish() error {
	if w.finished {
		return fmt.Errorf("storage: Finish called twice")
	}
	P := w.meta.P
	if w.idx != P*P {
		return fmt.Errorf("storage: current set has %d sub-shards, want %d", w.idx, P*P)
	}
	if err := w.f.Close(); err != nil {
		return fmt.Errorf("storage: close shards: %w", err)
	}
	w.finished = true
	if err := w.meta.Validate(); err != nil {
		return fmt.Errorf("storage: finish: %w", err)
	}
	raw, err := json.MarshalIndent(&w.meta, "", " ")
	if err != nil {
		return fmt.Errorf("storage: marshal meta: %w", err)
	}
	if err := os.WriteFile(w.disk.Path(w.dir+"/"+MetaFile), raw, 0o644); err != nil {
		return fmt.Errorf("storage: write meta: %w", err)
	}
	// Pre-size the attribute file used by the disk-based strategies.
	af, err := w.disk.Create(w.dir + "/" + AttrsFile)
	if err != nil {
		return err
	}
	defer af.Close()
	if w.meta.NumVertices > 0 {
		var zero [8]byte
		if _, err := af.WriteAt(zero[:], int64(w.meta.NumVertices-1)*8); err != nil {
			return fmt.Errorf("storage: size attrs: %w", err)
		}
	}
	return nil
}

// Abort closes and best-effort removes a partially-written store.
func (w *Writer) Abort() {
	if w.f != nil {
		w.f.Close()
	}
	_ = os.RemoveAll(w.disk.Path(w.dir))
}
