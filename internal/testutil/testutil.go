// Package testutil provides shared fixtures for the NXgraph test suites:
// compacted graphs, temp-disk stores, and partition comparators.
package testutil

import (
	"os"
	"strconv"
	"testing"

	"nxgraph/internal/diskio"
	"nxgraph/internal/graph"
	"nxgraph/internal/preprocess"
	"nxgraph/internal/storage"
)

// Compact drops isolated vertices from g and renumbers the rest densely —
// the same transformation the degreer applies — so oracle results computed
// on the returned graph align index-by-index with engine results.
func Compact(g *graph.EdgeList) *graph.EdgeList {
	out := make([]uint32, g.NumVertices)
	in := make([]uint32, g.NumVertices)
	for _, e := range g.Edges {
		out[e.Src]++
		in[e.Dst]++
	}
	remap := make([]uint32, g.NumVertices)
	var next uint32
	for v := uint32(0); v < g.NumVertices; v++ {
		if out[v] == 0 && in[v] == 0 {
			remap[v] = ^uint32(0)
			continue
		}
		remap[v] = next
		next++
	}
	c := &graph.EdgeList{NumVertices: next, Weighted: g.Weighted,
		Edges: make([]graph.Edge, len(g.Edges))}
	for i, e := range g.Edges {
		c.Edges[i] = graph.Edge{Src: remap[e.Src], Dst: remap[e.Dst], Weight: e.Weight}
	}
	return c
}

// StoreOptions configures BuildStore.
type StoreOptions struct {
	P         int
	Weighted  bool
	Transpose bool
	Profile   diskio.Profile
	// Format selects the store encoding (storage.FormatV1/FormatV2). 0
	// defers to the NXGRAPH_TEST_FORMAT environment variable — CI's
	// format-matrix knob — and, when that is unset, to
	// storage.DefaultFormatVersion.
	Format int
}

// format resolves the store encoding for a test build.
func (o StoreOptions) format(t testing.TB) int {
	if o.Format != 0 {
		return o.Format
	}
	if env := os.Getenv("NXGRAPH_TEST_FORMAT"); env != "" {
		v, err := strconv.Atoi(env)
		if err != nil {
			t.Fatalf("bad NXGRAPH_TEST_FORMAT %q: %v", env, err)
		}
		return v
	}
	return storage.DefaultFormatVersion
}

// BuildStore preprocesses g into a store on a fresh temp disk. It returns
// the store and the compacted oracle graph. The store is closed and the
// disk removed by t.Cleanup.
func BuildStore(t testing.TB, g *graph.EdgeList, opt StoreOptions) (*storage.Store, *graph.EdgeList) {
	t.Helper()
	if opt.P == 0 {
		opt.P = 4
	}
	if opt.Profile.Name == "" {
		opt.Profile = diskio.Unthrottled
	}
	disk, err := diskio.New(t.TempDir(), opt.Profile)
	if err != nil {
		t.Fatalf("create disk: %v", err)
	}
	res, err := preprocess.FromEdgeList(disk, "store", g, preprocess.Options{
		Name:      "test",
		P:         opt.P,
		Weighted:  opt.Weighted,
		Transpose: opt.Transpose,
		Format:    opt.format(t),
	})
	if err != nil {
		t.Fatalf("preprocess: %v", err)
	}
	t.Cleanup(func() { res.Store.Close() })
	compact := Compact(g)
	if compact.NumVertices != res.NumVertices {
		t.Fatalf("compacted oracle has %d vertices, store has %d",
			compact.NumVertices, res.NumVertices)
	}
	return res.Store, compact
}

// SamePartition verifies two labelings induce the same partition of
// [0, n), i.e. a[i]==a[j] ⟺ b[i]==b[j], without requiring equal label
// values.
func SamePartition(t testing.TB, a, b []uint32) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("label slices differ in length: %d vs %d", len(a), len(b))
	}
	fwd := make(map[uint32]uint32)
	rev := make(map[uint32]uint32)
	for i := range a {
		if want, ok := fwd[a[i]]; ok {
			if want != b[i] {
				t.Fatalf("vertex %d: label %d maps to both %d and %d", i, a[i], want, b[i])
			}
		} else {
			fwd[a[i]] = b[i]
		}
		if want, ok := rev[b[i]]; ok {
			if want != a[i] {
				t.Fatalf("vertex %d: label %d maps back to both %d and %d", i, b[i], want, a[i])
			}
		} else {
			rev[b[i]] = a[i]
		}
	}
}
