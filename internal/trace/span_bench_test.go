package trace

import "testing"

func BenchmarkSpanStartEnd(b *testing.B) {
	tr := New(4096)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := tr.Start(KindBlockLoad, "f[1,2]", 3)
		tr.End(sp)
	}
}
