// Package trace is the engine's always-on run tracer: a lightweight
// span recorder with a bounded ring buffer, cheap enough to leave
// enabled on the serving path.
//
// NXgraph's performance story is about where bytes move — prefetch
// stall vs gather compute, cache-hit decode vs cold disk read — and
// none of that is visible from monotonic counters or a single
// elapsed_ms. A Trace records two complementary views of one run:
//
//   - spans: a timeline of timed sections (the run, each iteration,
//     each fetch-plan batch wait, block loads tagged hit/miss — misses
//     individually, a batch's hits coalesced into one counted span —
//     the gather work per row/column, the apply phase), parented into a
//     tree so a consumer can reconstruct where a run's time went;
//   - steps: one StepStats per iteration with the aggregate counters
//     the span timeline is too fine-grained for (bytes read, blocks
//     hit/missed, edges gathered, stall vs compute split).
//
// Recording a span costs two monotonic clock reads and a mutex append —
// and hot loops amortize further with Clock/Make plus one Record per
// batch. The ring bound caps memory on long runs by overwriting the
// oldest spans (Dropped counts them). A nil *Trace is valid and records
// nothing, so callers instrument unconditionally and disabling tracing
// is free.
package trace

import (
	"sync"
	"sync/atomic"
	"time"
)

// Kind classifies a span. The engine emits the kinds below; consumers
// should tolerate kinds they do not know.
type Kind string

// Span kinds emitted by the engine.
const (
	// KindRun covers one whole program execution.
	KindRun Kind = "run"
	// KindIteration covers one step of the update loop.
	KindIteration Kind = "iteration"
	// KindFetchBatch covers the step loop blocking on a prefetched
	// fetch-plan batch — the prefetch-stall component of an iteration.
	KindFetchBatch Kind = "fetch-batch"
	// KindBlockLoad covers sub-shard block acquisition, tagged "hit"
	// (served decoded from the block cache) or "miss" (decoded from
	// disk; Bytes carries the decoded size). Misses are one span per
	// block; a fetch batch's hits are coalesced into one span whose
	// Count carries how many (per-hit spans would each say "~0µs" and
	// their recording cost is measurable on warm runs).
	KindBlockLoad Kind = "block-load"
	// KindGather covers the gather work of one row (ToHub + resident
	// accumulation) or one destination column (FromHub + apply).
	KindGather Kind = "gather"
	// KindApply covers the resident apply phase closing an iteration.
	KindApply Kind = "apply"
	// KindOverlay covers capturing the delta-overlay snapshot at run
	// start.
	KindOverlay Kind = "overlay"
	// KindLane covers one query lane of a fused batch run, from run
	// start until the lane converges, is cancelled (Tag "cancelled"), or
	// the run finishes; Count carries the lane's iteration count. Lane
	// spans parent to the batch's run span, giving each fused query its
	// own timeline entry.
	KindLane Kind = "lane"
)

// Tag values for KindBlockLoad spans.
const (
	TagHit  = "hit"
	TagMiss = "miss"
)

// Span is one timed section of a run. Start/Dur are microseconds
// relative to the trace's start, so a JSON timeline is self-contained.
type Span struct {
	ID     uint64 `json:"id"`
	Parent uint64 `json:"parent,omitempty"`
	Kind   Kind   `json:"kind"`
	Name   string `json:"name"`
	// StartUS is the span's start, in microseconds since the trace
	// began.
	StartUS int64 `json:"start_us"`
	// DurUS is the span's duration in microseconds.
	DurUS int64 `json:"dur_us"`
	// Tag carries a kind-specific annotation (hit/miss for block
	// loads).
	Tag string `json:"tag,omitempty"`
	// Bytes carries a kind-specific byte count (decoded bytes for
	// block-load misses).
	Bytes int64 `json:"bytes,omitempty"`
	// Count carries the number of events a coalesced span stands for
	// (cache-hit block loads are batched into one span per fetch).
	Count int64 `json:"count,omitempty"`

	// beganNS is the monotonic offset from the trace start, set by
	// Start and consumed by End. Reading the monotonic clock once per
	// edge (time.Since against the trace's base) is measurably cheaper
	// than a full time.Now per edge on the block-load hot path.
	beganNS int64
}

// StepStats aggregates one iteration of a run: where its time went and
// what it moved. Durations are microseconds.
type StepStats struct {
	// Iteration is the zero-based iteration index.
	Iteration int `json:"iteration"`
	// Edges is the number of edges gathered during this iteration.
	Edges int64 `json:"edges"`
	// BlocksHit counts sub-shard block acquisitions served from cache.
	BlocksHit int64 `json:"blocks_hit"`
	// BlocksMiss counts acquisitions that decoded from disk.
	BlocksMiss int64 `json:"blocks_miss"`
	// BytesRead/BytesWritten are the store's disk traffic during the
	// iteration (attributes and hubs included).
	BytesRead    int64 `json:"bytes_read"`
	BytesWritten int64 `json:"bytes_written"`
	// StallUS is time the step loop spent blocked waiting for a
	// prefetched batch — I/O the pipeline failed to hide.
	StallUS int64 `json:"stall_us"`
	// ComputeUS is the rest of the iteration's wall time (gather,
	// fold, apply).
	ComputeUS int64 `json:"compute_us"`
	// DurUS is the iteration's total wall time (stall + compute).
	DurUS int64 `json:"dur_us"`
}

// DefaultCapacity is the span ring bound used when New is given a
// non-positive capacity.
const DefaultCapacity = 4096

// maxSteps bounds the per-iteration stats independently of the span
// ring (iterations are far rarer than spans).
const maxSteps = 65536

// Trace records one run's spans and per-iteration stats. Create with
// New; a nil *Trace is valid and records nothing.
type Trace struct {
	start time.Time
	cap   int
	ids   atomic.Uint64

	mu      sync.Mutex
	spans   []Span
	next    int // ring write index once len(spans) == cap
	dropped int64
	steps   []StepStats
}

// New creates a trace whose span buffer holds at most capacity spans
// (DefaultCapacity when capacity <= 0). The buffer grows on demand up
// to the bound, then overwrites the oldest spans.
func New(capacity int) *Trace {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Trace{start: time.Now(), cap: capacity}
}

// Start opens a span. The returned value must be passed to End to be
// recorded; until then it exists only on the caller's stack, so
// unfinished spans never leak. On a nil trace it returns a zero Span.
func (t *Trace) Start(kind Kind, name string, parent uint64) Span {
	if t == nil {
		return Span{}
	}
	return Span{
		ID:      t.ids.Add(1),
		Parent:  parent,
		Kind:    kind,
		Name:    name,
		beganNS: int64(time.Since(t.start)),
	}
}

// End closes and records a span, returning its duration. Ending a zero
// Span (from a nil trace's Start) is a no-op.
func (t *Trace) End(s Span) time.Duration {
	if t == nil || s.ID == 0 {
		return 0
	}
	d := t.CloseSpan(&s)
	t.mu.Lock()
	t.recordLocked(s)
	t.mu.Unlock()
	return d
}

// Clock returns the monotonic offset from the trace start in
// nanoseconds — the raw timestamp Make consumes. Zero on a nil trace.
func (t *Trace) Clock() int64 {
	if t == nil {
		return 0
	}
	return int64(time.Since(t.start))
}

// Make builds a fully-timed span from Clock timestamps, for hot loops
// that sample raw clock offsets and only materialize the few spans
// worth recording. Pass the result to Record. Zero Span on nil trace.
func (t *Trace) Make(kind Kind, name string, parent uint64, startNS, durNS int64) Span {
	if t == nil {
		return Span{}
	}
	return Span{
		ID:      t.ids.Add(1),
		Parent:  parent,
		Kind:    kind,
		Name:    name,
		StartUS: startNS / 1e3,
		DurUS:   durNS / 1e3,
	}
}

// CloseSpan finalizes s's timing in place without recording it,
// returning its duration. Pair with Record to batch many spans from a
// tight loop into one lock acquisition. No-op on a nil trace or a zero
// span.
func (t *Trace) CloseSpan(s *Span) time.Duration {
	if t == nil || s.ID == 0 {
		return 0
	}
	d := time.Since(t.start) - time.Duration(s.beganNS)
	s.StartUS = s.beganNS / 1e3
	s.DurUS = d.Microseconds()
	return d
}

// Record appends already-closed spans (see CloseSpan) under one lock
// acquisition, preserving their slice order.
func (t *Trace) Record(spans []Span) {
	if t == nil || len(spans) == 0 {
		return
	}
	t.mu.Lock()
	for _, s := range spans {
		t.recordLocked(s)
	}
	t.mu.Unlock()
}

func (t *Trace) recordLocked(s Span) {
	if len(t.spans) < t.cap {
		if t.spans == nil {
			// Start the buffer at a real size: a run records hundreds of
			// spans, so growing from 1 would pay several copy-and-double
			// rounds per run. 256 fits a typical short run exactly;
			// longer runs pay one doubling.
			t.spans = make([]Span, 0, min(t.cap, 256))
		}
		t.spans = append(t.spans, s)
	} else {
		t.spans[t.next] = s
		t.next = (t.next + 1) % t.cap
		t.dropped++
	}
}

// AddStep records one iteration's aggregate stats.
func (t *Trace) AddStep(s StepStats) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if len(t.steps) < maxSteps {
		t.steps = append(t.steps, s)
	}
	t.mu.Unlock()
}

// Timeline is a consistent snapshot of a trace, shaped for JSON.
type Timeline struct {
	// StartedAt is the wall-clock time the trace began.
	StartedAt time.Time `json:"started_at"`
	// Spans is the recorded timeline, in completion order (spans end
	// in the order they finish, so parents follow their children).
	Spans []Span `json:"spans"`
	// Steps is the per-iteration stats series.
	Steps []StepStats `json:"steps"`
	// DroppedSpans counts spans overwritten by the ring bound.
	DroppedSpans int64 `json:"dropped_spans,omitempty"`
}

// Snapshot returns a copy of everything recorded so far. Safe to call
// concurrently with recording; on a nil trace it returns an empty
// timeline.
func (t *Trace) Snapshot() Timeline {
	if t == nil {
		return Timeline{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	spans := make([]Span, 0, len(t.spans))
	// Unwrap the ring: oldest surviving span first.
	spans = append(spans, t.spans[t.next:]...)
	spans = append(spans, t.spans[:t.next]...)
	steps := make([]StepStats, len(t.steps))
	copy(steps, t.steps)
	return Timeline{
		StartedAt:    t.start,
		Spans:        spans,
		Steps:        steps,
		DroppedSpans: t.dropped,
	}
}

// Spans returns a copy of the recorded spans (see Timeline.Spans).
func (t *Trace) Spans() []Span { return t.Snapshot().Spans }

// Steps returns a copy of the per-iteration stats series.
func (t *Trace) Steps() []StepStats {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	steps := make([]StepStats, len(t.steps))
	copy(steps, t.steps)
	return steps
}
