package trace

import (
	"encoding/json"
	"sync"
	"testing"
)

func TestSpanRecording(t *testing.T) {
	tr := New(16)
	run := tr.Start(KindRun, "pagerank", 0)
	iter := tr.Start(KindIteration, "iter-0", run.ID)
	load := tr.Start(KindBlockLoad, "f[0,1]", iter.ID)
	load.Tag = TagMiss
	load.Bytes = 1234
	tr.End(load)
	tr.End(iter)
	tr.End(run)

	tl := tr.Snapshot()
	if len(tl.Spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(tl.Spans))
	}
	// Spans land in completion order: leaf first, run last.
	if tl.Spans[0].Kind != KindBlockLoad || tl.Spans[2].Kind != KindRun {
		t.Fatalf("unexpected order: %v, %v", tl.Spans[0].Kind, tl.Spans[2].Kind)
	}
	if tl.Spans[0].Parent != iter.ID || tl.Spans[1].Parent != run.ID {
		t.Fatal("parent links broken")
	}
	if tl.Spans[0].Tag != TagMiss || tl.Spans[0].Bytes != 1234 {
		t.Fatalf("tag/bytes lost: %+v", tl.Spans[0])
	}
	if tl.Spans[0].DurUS < 0 || tl.Spans[0].StartUS < 0 {
		t.Fatalf("negative timing: %+v", tl.Spans[0])
	}
	if tl.DroppedSpans != 0 {
		t.Fatalf("dropped %d spans in an underfull ring", tl.DroppedSpans)
	}
}

func TestRingBound(t *testing.T) {
	tr := New(8)
	for i := 0; i < 20; i++ {
		tr.End(tr.Start(KindBlockLoad, "b", 0))
	}
	tl := tr.Snapshot()
	if len(tl.Spans) != 8 {
		t.Fatalf("ring holds %d spans, want 8", len(tl.Spans))
	}
	if tl.DroppedSpans != 12 {
		t.Fatalf("dropped = %d, want 12", tl.DroppedSpans)
	}
	// The survivors are the newest spans, oldest first.
	for i := 1; i < len(tl.Spans); i++ {
		if tl.Spans[i].ID <= tl.Spans[i-1].ID {
			t.Fatalf("ring unwrap out of order: %d after %d", tl.Spans[i].ID, tl.Spans[i-1].ID)
		}
	}
	if got := tl.Spans[len(tl.Spans)-1].ID; got != 20 {
		t.Fatalf("newest surviving span id = %d, want 20", got)
	}
}

func TestSteps(t *testing.T) {
	tr := New(0)
	tr.AddStep(StepStats{Iteration: 0, Edges: 100, StallUS: 5, ComputeUS: 95, DurUS: 100})
	tr.AddStep(StepStats{Iteration: 1, Edges: 90})
	steps := tr.Steps()
	if len(steps) != 2 || steps[0].Edges != 100 || steps[1].Iteration != 1 {
		t.Fatalf("steps = %+v", steps)
	}
	// Steps returns a copy: mutating it must not reach the trace.
	steps[0].Edges = 0
	if tr.Steps()[0].Edges != 100 {
		t.Fatal("Steps returned aliased storage")
	}
}

func TestNilTraceIsInert(t *testing.T) {
	var tr *Trace
	sp := tr.Start(KindRun, "x", 0)
	if sp.ID != 0 {
		t.Fatal("nil trace allocated a span id")
	}
	if d := tr.End(sp); d != 0 {
		t.Fatal("nil trace measured a duration")
	}
	tr.AddStep(StepStats{})
	if got := tr.Snapshot(); len(got.Spans) != 0 || len(got.Steps) != 0 {
		t.Fatal("nil trace recorded something")
	}
	if tr.Steps() != nil || tr.Spans() != nil {
		t.Fatal("nil trace returned non-nil slices")
	}
}

func TestConcurrentRecording(t *testing.T) {
	tr := New(128)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				tr.End(tr.Start(KindBlockLoad, "b", 1))
				tr.Snapshot()
			}
		}()
	}
	wg.Wait()
	tl := tr.Snapshot()
	if len(tl.Spans) != 128 || tl.DroppedSpans != 800-128 {
		t.Fatalf("spans=%d dropped=%d", len(tl.Spans), tl.DroppedSpans)
	}
}

func TestTimelineJSON(t *testing.T) {
	tr := New(4)
	sp := tr.Start(KindBlockLoad, "f[1,2]", 7)
	sp.Tag = TagHit
	tr.End(sp)
	out, err := json.Marshal(tr.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var back Timeline
	if err := json.Unmarshal(out, &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Spans) != 1 || back.Spans[0].Tag != TagHit || back.Spans[0].Parent != 7 {
		t.Fatalf("round-trip lost data: %+v", back.Spans)
	}
}
