package wal

import (
	"sync/atomic"
	"testing"

	"nxgraph/internal/dynamic"
)

// BenchmarkWALAppendGroupCommit measures contended durable appends: 8
// goroutines appending 16-op batches concurrently, under each fsync
// policy. The batch-vs-off gap is the price of group-committed
// durability (the acceptance bound is <= 10% on warm hardware with a
// real disk; fsync=always shows what coalescing saves).
func BenchmarkWALAppendGroupCommit(b *testing.B) {
	ops := make([]dynamic.Op, 16)
	for i := range ops {
		ops[i] = dynamic.Op{Src: uint64(i), Dst: uint64(i + 1), Weight: 1}
	}
	for _, policy := range []SyncPolicy{SyncOff, SyncBatch, SyncAlways} {
		b.Run(policy.String(), func(b *testing.B) {
			stats := &Stats{}
			l, err := Open(b.TempDir(), Options{Policy: policy, Stats: stats})
			if err != nil {
				b.Fatal(err)
			}
			defer l.Close()
			var failed atomic.Bool
			b.SetParallelism(8)
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					if _, err := l.Append(ops); err != nil {
						failed.Store(true)
						return
					}
				}
			})
			b.StopTimer()
			if failed.Load() {
				b.Fatal("append failed during benchmark")
			}
			if n := stats.Appends.Load(); n > 0 {
				b.ReportMetric(float64(stats.Fsyncs.Load())/float64(n), "fsyncs/append")
			}
		})
	}
}
