package wal

import (
	"errors"
	"sync"
)

// ErrInjected is the default error FaultFS injects when a scheduled
// fault fires without an explicit error.
var ErrInjected = errors.New("wal: injected fault")

// FaultFS wraps an FS and injects failures at exact I/O points: the Nth
// segment write can fail outright or tear (persist a prefix of the
// buffer, then error — a short write), and the Nth sync can fail. It is
// how the tests exercise ENOSPC, torn tails and fsync loss without
// killing the process.
type FaultFS struct {
	inner FS

	mu sync.Mutex
	// Countdowns: a fault fires when its counter, decremented per
	// matching call, reaches zero. Zero means "not armed".
	failWriteIn int
	shortBytes  int // on a write fault, persist this many bytes first
	writeErr    error
	failSyncIn  int
	syncErr     error
	writes      int
	syncs       int
}

// NewFaultFS wraps inner (OSFS{} if nil).
func NewFaultFS(inner FS) *FaultFS {
	if inner == nil {
		inner = OSFS{}
	}
	return &FaultFS{inner: inner}
}

// FailWrite arms the nth upcoming segment write (1-based) to fail with
// err after persisting shortBytes of the buffer (0 = nothing reaches
// the file). A nil err injects ErrInjected.
func (f *FaultFS) FailWrite(n, shortBytes int, err error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if err == nil {
		err = ErrInjected
	}
	f.failWriteIn, f.shortBytes, f.writeErr = n, shortBytes, err
}

// FailSync arms the nth upcoming sync (1-based) to fail with err (nil =
// ErrInjected).
func (f *FaultFS) FailSync(n int, err error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if err == nil {
		err = ErrInjected
	}
	f.failSyncIn, f.syncErr = n, err
}

// Counts reports how many segment writes and syncs have been issued.
func (f *FaultFS) Counts() (writes, syncs int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.writes, f.syncs
}

// onWrite decides the fate of one write call. It returns how many bytes
// to pass through and the error to report after them (nil = no fault).
func (f *FaultFS) onWrite(n int) (int, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.writes++
	if f.failWriteIn > 0 {
		f.failWriteIn--
		if f.failWriteIn == 0 {
			short := f.shortBytes
			if short > n {
				short = n
			}
			return short, f.writeErr
		}
	}
	return n, nil
}

func (f *FaultFS) onSync() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.syncs++
	if f.failSyncIn > 0 {
		f.failSyncIn--
		if f.failSyncIn == 0 {
			return f.syncErr
		}
	}
	return nil
}

func (f *FaultFS) MkdirAll(dir string) error           { return f.inner.MkdirAll(dir) }
func (f *FaultFS) List(dir string) ([]string, error)   { return f.inner.List(dir) }
func (f *FaultFS) OpenRead(p string) (ReadFile, error) { return f.inner.OpenRead(p) }
func (f *FaultFS) Remove(p string) error               { return f.inner.Remove(p) }
func (f *FaultFS) Truncate(p string, n int64) error    { return f.inner.Truncate(p, n) }
func (f *FaultFS) SyncDir(dir string) error            { return f.inner.SyncDir(dir) }

func (f *FaultFS) OpenAppend(p string) (File, error) {
	inner, err := f.inner.OpenAppend(p)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, inner: inner}, nil
}

type faultFile struct {
	fs    *FaultFS
	inner File
}

func (f *faultFile) Write(p []byte) (int, error) {
	pass, ferr := f.fs.onWrite(len(p))
	if ferr == nil {
		return f.inner.Write(p)
	}
	n := 0
	if pass > 0 {
		// Tear the record: persist the allowed prefix for real so a
		// reopened log sees exactly what a crashed kernel would have
		// left behind.
		n, _ = f.inner.Write(p[:pass])
	}
	return n, ferr
}

func (f *faultFile) Sync() error {
	if err := f.fs.onSync(); err != nil {
		return err
	}
	return f.inner.Sync()
}

func (f *faultFile) Close() error { return f.inner.Close() }
