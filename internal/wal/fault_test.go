package wal

import (
	"errors"
	"sync"
	"syscall"
	"testing"
	"time"

	"nxgraph/internal/dynamic"
)

// appendN appends n single-op batches, returning the first error.
func appendN(l *Log, n int, tag uint64) error {
	for i := 0; i < n; i++ {
		if _, err := l.Append(batch(1, tag+uint64(i))); err != nil {
			return err
		}
	}
	return nil
}

func TestWriteFailurePoisonsAndRecovers(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFaultFS(nil)
	l, err := Open(dir, Options{FS: ffs})
	if err != nil {
		t.Fatal(err)
	}
	if err := appendN(l, 2, 0); err != nil {
		t.Fatal(err)
	}
	// The 3rd segment write dies with ENOSPC, persisting nothing.
	ffs.FailWrite(1, 0, syscall.ENOSPC)
	if _, err := l.Append(batch(1, 50)); !errors.Is(err, ErrFailed) || !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("append over full disk: %v, want ErrFailed wrapping ENOSPC", err)
	}
	// The log is poisoned: later appends fail fast without touching disk.
	w0, _ := ffs.Counts()
	if _, err := l.Append(batch(1, 51)); !errors.Is(err, ErrFailed) {
		t.Fatalf("append on poisoned log: %v, want ErrFailed", err)
	}
	if w1, _ := ffs.Counts(); w1 != w0 {
		t.Fatalf("poisoned append still wrote to disk (%d -> %d writes)", w0, w1)
	}
	l.Close()

	// Restart: the two acked batches survive, the failed one is gone,
	// and the sequence continues from the acked prefix.
	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("reopen after ENOSPC: %v", err)
	}
	defer l2.Close()
	if got := collect(t, l2, 0); len(got) != 2 {
		t.Fatalf("replay after ENOSPC found %d batches, want 2", len(got))
	}
	if seq, err := l2.Append(batch(1, 52)); err != nil || seq != 3 {
		t.Fatalf("append after recovery: seq=%d err=%v, want seq 3", seq, err)
	}
}

func TestShortWriteLeavesRecoverableTornTail(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFaultFS(nil)
	stats := &Stats{}
	l, err := Open(dir, Options{FS: ffs, Stats: stats})
	if err != nil {
		t.Fatal(err)
	}
	if err := appendN(l, 3, 0); err != nil {
		t.Fatal(err)
	}
	// The next write tears: 9 bytes of the record reach the file.
	ffs.FailWrite(1, 9, ErrInjected)
	if _, err := l.Append(batch(2, 70)); !errors.Is(err, ErrFailed) {
		t.Fatalf("short write: %v, want ErrFailed", err)
	}
	l.Close()

	reopened := &Stats{}
	l2, err := Open(dir, Options{Stats: reopened})
	if err != nil {
		t.Fatalf("reopen after short write: %v", err)
	}
	defer l2.Close()
	if got := reopened.TornTails.Load(); got != 1 {
		t.Fatalf("torn tails = %d, want 1", got)
	}
	if got := collect(t, l2, 0); len(got) != 3 {
		t.Fatalf("replay found %d batches, want the 3 acked ones", len(got))
	}
}

// TestPoisonFailsRestOfDrainedBatch covers the multi-chunk drain case:
// when an early chunk tears the tail and poisons the log, the committer
// must fail the chunks it has not written yet, not append them past the
// tear — records after a torn one would be acked as durable and then
// silently truncated away by the next Open.
func TestPoisonFailsRestOfDrainedBatch(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFaultFS(nil)
	entered := make(chan struct{})
	gate := make(chan struct{})
	var hookOnce sync.Once
	l, err := Open(dir, Options{
		FS:       ffs,
		MaxBatch: 1, // every drained append is its own chunk
		Commit: func(seq uint64, ops []dynamic.Op) error {
			// Park the committer inside batch 1's commit so appends 2
			// and 3 pile up in the queue and drain together.
			hookOnce.Do(func() {
				close(entered)
				<-gate
			})
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	firstDone := make(chan error, 1)
	go func() {
		_, err := l.Append(batch(1, 1))
		firstDone <- err
	}()
	<-entered

	errs := make(chan error, 2)
	for i := 0; i < 2; i++ {
		go func(tag uint64) {
			_, err := l.Append(batch(1, tag))
			errs <- err
		}(uint64(10 + i))
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		l.mu.Lock()
		queued := len(l.queue)
		l.mu.Unlock()
		if queued == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("appends 2 and 3 never queued")
		}
		time.Sleep(time.Millisecond)
	}
	// The next segment write (batch 2's record) tears after 9 bytes.
	ffs.FailWrite(1, 9, ErrInjected)
	close(gate)

	if err := <-firstDone; err != nil {
		t.Fatalf("append 1: %v", err)
	}
	for i := 0; i < 2; i++ {
		if err := <-errs; !errors.Is(err, ErrFailed) {
			t.Fatalf("append drained behind the torn chunk: err=%v, want ErrFailed", err)
		}
	}
	l.Close()

	// Reopen: exactly the one acked batch survives; the torn record is
	// truncated and nothing was buried behind it.
	stats := &Stats{}
	l2, err := Open(dir, Options{Stats: stats})
	if err != nil {
		t.Fatalf("reopen after mid-drain poison: %v", err)
	}
	defer l2.Close()
	if got := stats.TornTails.Load(); got != 1 {
		t.Fatalf("torn tails = %d, want 1", got)
	}
	if got := collect(t, l2, 0); len(got) != 1 {
		t.Fatalf("replay found %d batches, want only the acked one", len(got))
	}
}

func TestSyncFailureFailsWholeChunk(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFaultFS(nil)
	l, err := Open(dir, Options{FS: ffs})
	if err != nil {
		t.Fatal(err)
	}
	if err := appendN(l, 2, 0); err != nil {
		t.Fatal(err)
	}
	_, s0 := ffs.Counts()
	ffs.FailSync(1, syscall.EIO)
	if _, err := l.Append(batch(1, 80)); !errors.Is(err, ErrFailed) || !errors.Is(err, syscall.EIO) {
		t.Fatalf("append with failing fsync: %v, want ErrFailed wrapping EIO", err)
	}
	if _, s1 := ffs.Counts(); s1 != s0+1 {
		t.Fatalf("expected exactly one more sync attempt, got %d -> %d", s0, s1)
	}
	if _, err := l.Append(batch(1, 81)); !errors.Is(err, ErrFailed) {
		t.Fatalf("append after fsync loss: %v, want ErrFailed (poisoned)", err)
	}
	l.Close()

	// The record reached the OS even though fsync failed, so a reopen
	// may legitimately surface it — the "commit outcome unknown"
	// window. What must hold: the acked prefix is intact and the log
	// accepts appends again.
	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("reopen after fsync failure: %v", err)
	}
	defer l2.Close()
	got := collect(t, l2, 0)
	if len(got) < 2 {
		t.Fatalf("replay lost acked batches: found %d, want >= 2", len(got))
	}
	if err := appendN(l2, 1, 90); err != nil {
		t.Fatalf("append after restart: %v", err)
	}
}

func TestCommitHookErrorDoesNotPoison(t *testing.T) {
	dir := t.TempDir()
	hookErr := errors.New("delta append failed")
	fail := true
	l, err := Open(dir, Options{
		Commit: func(seq uint64, ops []dynamic.Op) error {
			if fail {
				return hookErr
			}
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if _, err := l.Append(batch(1, 1)); !errors.Is(err, hookErr) {
		t.Fatalf("append with failing hook: %v, want the hook's error", err)
	}
	fail = false
	// The batch is durable despite the hook error; the log keeps going.
	if seq, err := l.Append(batch(1, 2)); err != nil || seq != 2 {
		t.Fatalf("append after hook recovery: seq=%d err=%v", seq, err)
	}
	if got := collect(t, l, 0); len(got) != 2 {
		t.Fatalf("replay found %d batches, want 2 (hook failure is still durable)", len(got))
	}
}
