// Package wal implements the ingestion write-ahead log: a segmented,
// CRC32C-checksummed, append-only log of dynamic.Op batches with group
// commit. The server appends every accepted ingest batch before acking
// it and replays the tail into the DeltaLog when a graph opens, so
// acknowledged edges survive a crash (docs/durability.md).
package wal

import (
	"io"
	"os"
	"path/filepath"
	"sort"
)

// FS abstracts the file operations the log performs. Production uses
// OSFS; tests inject FaultFS to fail, short-write or ENOSPC the Nth
// write or sync at exact points.
type FS interface {
	MkdirAll(dir string) error
	// List returns the names (not paths) of dir's entries, sorted.
	List(dir string) ([]string, error)
	// OpenAppend opens path for appending, creating it if absent.
	OpenAppend(path string) (File, error)
	OpenRead(path string) (ReadFile, error)
	Remove(path string) error
	Truncate(path string, size int64) error
	// SyncDir flushes directory metadata, making segment creations and
	// removals durable.
	SyncDir(dir string) error
}

// File is an append handle on one segment.
type File interface {
	io.Writer
	Sync() error
	Close() error
}

// ReadFile is a sequential read handle on one segment.
type ReadFile interface {
	io.Reader
	io.Closer
	Size() (int64, error)
}

// OSFS is the real-filesystem FS.
type OSFS struct{}

func (OSFS) MkdirAll(dir string) error { return os.MkdirAll(dir, 0o755) }

func (OSFS) List(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		names = append(names, e.Name())
	}
	sort.Strings(names)
	return names, nil
}

func (OSFS) OpenAppend(path string) (File, error) {
	return os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
}

func (OSFS) OpenRead(path string) (ReadFile, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	return osReadFile{f}, nil
}

func (OSFS) Remove(path string) error { return os.Remove(path) }

func (OSFS) Truncate(path string, size int64) error { return os.Truncate(path, size) }

func (OSFS) SyncDir(dir string) error {
	d, err := os.Open(filepath.Clean(dir))
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

type osReadFile struct{ *os.File }

func (f osReadFile) Size() (int64, error) {
	st, err := f.Stat()
	if err != nil {
		return 0, err
	}
	return st.Size(), nil
}
