package wal

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
)

// ManifestName is the manifest's filename inside a store directory.
const ManifestName = "MANIFEST"

// Manifest anchors a store directory to a position in the WAL: every
// batch with sequence <= LastAppliedSeq is folded into the store's
// edges, so replay-on-open starts right after it. Compaction writes the
// manifest into the rebuilt directory *before* the swap renames — the
// rename that publishes the store publishes its replay point atomically
// with it. A store without a manifest (the pre-WAL layout, or a store
// built by nxpre) reads as the zero Manifest: replay from the start.
type Manifest struct {
	// Generation counts compactions of this store lineage.
	Generation uint64 `json:"generation"`
	// LastAppliedSeq is the highest WAL sequence folded into the store.
	LastAppliedSeq uint64 `json:"last_applied_seq"`
}

// ReadManifest loads the manifest inside store dir. A missing file is
// not an error — it returns the zero Manifest.
func ReadManifest(dir string) (Manifest, error) {
	var m Manifest
	b, err := os.ReadFile(filepath.Join(dir, ManifestName))
	if errors.Is(err, os.ErrNotExist) {
		return m, nil
	}
	if err != nil {
		return m, err
	}
	if err := json.Unmarshal(b, &m); err != nil {
		return m, fmt.Errorf("wal: manifest %s: %w", filepath.Join(dir, ManifestName), err)
	}
	return m, nil
}

// WriteManifest durably writes the manifest inside store dir
// (write-to-temp, fsync, rename, fsync dir).
func WriteManifest(dir string, m Manifest) error {
	b, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	path := filepath.Join(dir, ManifestName)
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	_, werr := f.Write(append(b, '\n'))
	if werr == nil {
		werr = f.Sync()
	}
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		os.Remove(tmp)
		return werr
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return OSFS{}.SyncDir(dir)
}
