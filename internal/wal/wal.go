package wal

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"nxgraph/internal/dynamic"
)

// Record layout (all little-endian):
//
//	seq     uint64  batch sequence number, contiguous from 1
//	length  uint32  payload bytes
//	crc     uint32  CRC32C over seq, length and the payload
//	payload         count uint32, then per op:
//	                flags u8 (bit0 = remove), src u64, dst u64,
//	                weight u32 (float32 bits)
//
// Segments are files named %020d.wal after their first record's seq,
// so the sorted directory listing is the log order and the replay start
// point locates its segment without reading headers.
const (
	recHeaderSize = 16
	opSize        = 21
	segSuffix     = ".wal"

	// maxPayload rejects absurd length fields when scanning: a header
	// claiming more is treated as a torn/corrupt record, not an
	// allocation request.
	maxPayload = 256 << 20
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

var (
	// ErrClosed is returned by Append after Close.
	ErrClosed = errors.New("wal: log closed")
	// ErrFailed marks a poisoned log: a segment write or sync failed,
	// so the on-disk tail may be torn and no further appends are
	// accepted. Recovery is reopening the log (restart), which
	// truncates the torn tail. Returned errors wrap the root cause.
	ErrFailed = errors.New("wal: log failed")
	// ErrCorrupt marks an unreadable record *before* the end of the
	// log — unlike a torn final record, this is not explainable by a
	// crash mid-append and is never repaired silently.
	ErrCorrupt = errors.New("wal: corrupt record")
)

// SyncPolicy selects when appends are fsynced.
type SyncPolicy int

const (
	// SyncBatch (default) groups commits: the committer coalesces every
	// append that queued while the previous fsync ran into one write
	// pass and one fsync.
	SyncBatch SyncPolicy = iota
	// SyncAlways fsyncs every batch individually (MaxBatch=1 degenerate
	// group commit).
	SyncAlways
	// SyncOff never fsyncs: appends are acked once written to the OS.
	// Data survives a process crash but not a kernel crash or power
	// loss.
	SyncOff
)

// ParseSyncPolicy parses the -fsync flag values off|batch|always.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch strings.ToLower(s) {
	case "", "batch":
		return SyncBatch, nil
	case "always":
		return SyncAlways, nil
	case "off":
		return SyncOff, nil
	}
	return SyncBatch, fmt.Errorf("wal: unknown fsync policy %q (want off, batch or always)", s)
}

func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncOff:
		return "off"
	default:
		return "batch"
	}
}

// Stats holds the log's monotonic counters, shared with /metrics.
type Stats struct {
	Appends         atomic.Int64 // durably acked batches
	Fsyncs          atomic.Int64
	ReplayedBatches atomic.Int64
	TornTails       atomic.Int64 // torn final records truncated at open
}

// Options tunes a Log.
type Options struct {
	// FS is the file layer (OSFS{} if nil) — tests inject FaultFS.
	FS FS
	// Policy is the fsync policy (default SyncBatch).
	Policy SyncPolicy
	// SegmentBytes rolls to a new segment once the current one reaches
	// this size (default 64 MiB).
	SegmentBytes int64
	// MaxDelay optionally stretches the group-commit window: after
	// picking up a batch the committer waits up to MaxDelay for more
	// appends before syncing, trading latency for fewer fsyncs. 0
	// (default) coalesces only what queued during the previous fsync,
	// adding no latency.
	MaxDelay time.Duration
	// MaxBatch caps appends per fsync (default 256).
	MaxBatch int
	// Commit, if set, is invoked by the committer for each batch in
	// sequence order after it is durable and before its Append returns
	// — the hook that makes batches visible (DeltaLog append) in
	// exactly the order replay would re-apply them. An error fails that
	// Append but does not poison the log.
	Commit func(seq uint64, ops []dynamic.Op) error
	// ObserveFsync, if set, receives each fsync's duration.
	ObserveFsync func(time.Duration)
	// Stats receives the log's counters (private Stats if nil).
	Stats *Stats
}

// Log is a write-ahead log of dynamic.Op batches. Appends are safe for
// concurrent use; a single committer goroutine orders, writes and syncs
// them (group commit).
type Log struct {
	dir string
	fs  FS
	opt Options

	mu      sync.Mutex
	cond    *sync.Cond
	queue   []*appendReq
	nextSeq uint64
	segs    []segInfo
	failed  error
	closed  bool

	// Committer-owned (no lock): the open tail segment.
	curFile File
	curSize int64

	wg sync.WaitGroup
}

type segInfo struct {
	name  string
	first uint64 // first seq the segment holds (from its name)
}

type appendReq struct {
	seq  uint64
	ops  []dynamic.Op
	rec  []byte
	done chan error
}

func segName(firstSeq uint64) string { return fmt.Sprintf("%020d%s", firstSeq, segSuffix) }

func parseSegName(name string) (uint64, bool) {
	if !strings.HasSuffix(name, segSuffix) {
		return 0, false
	}
	n, err := strconv.ParseUint(strings.TrimSuffix(name, segSuffix), 10, 64)
	return n, err == nil
}

// Open opens (creating if needed) the log at dir, scans every segment,
// truncates a torn final record if the last crash left one, and starts
// the committer. The first assignable sequence is one past the highest
// intact record.
func Open(dir string, opt Options) (*Log, error) {
	if opt.FS == nil {
		opt.FS = OSFS{}
	}
	if opt.SegmentBytes <= 0 {
		opt.SegmentBytes = 64 << 20
	}
	if opt.MaxBatch <= 0 {
		opt.MaxBatch = 256
	}
	if opt.Policy == SyncAlways {
		opt.MaxBatch = 1
	}
	if opt.Stats == nil {
		opt.Stats = &Stats{}
	}
	l := &Log{dir: dir, fs: opt.FS, opt: opt, nextSeq: 1}
	l.cond = sync.NewCond(&l.mu)

	if err := l.fs.MkdirAll(dir); err != nil {
		return nil, fmt.Errorf("wal: open %s: %w", dir, err)
	}
	names, err := l.fs.List(dir)
	if err != nil {
		return nil, fmt.Errorf("wal: open %s: %w", dir, err)
	}
	segNames := names[:0]
	for _, name := range names {
		if _, ok := parseSegName(name); ok {
			segNames = append(segNames, name)
		}
	}
	var lastSeq uint64
	seenRecords := false
	for i, name := range segNames {
		first, _ := parseSegName(name)
		path := filepath.Join(dir, name)
		// Within a segment, records run contiguously from the sequence
		// its name declares; across segments they continue without
		// gaps. (The log's prefix may be GC'd away, so the *first*
		// segment can start anywhere.)
		prev := first - 1
		if seenRecords {
			if first != lastSeq+1 {
				return nil, fmt.Errorf("%w: segment %s starts at seq %d, want %d", ErrCorrupt, path, first, lastSeq+1)
			}
			prev = lastSeq
		}
		sc, err := l.scanSegment(path, prev)
		if err != nil {
			return nil, err
		}
		if sc.torn {
			if i != len(segNames)-1 {
				return nil, fmt.Errorf("%w: segment %s damaged at offset %d but is not the log tail", ErrCorrupt, path, sc.goodBytes)
			}
			// A torn tail is the legal crash signature: the final
			// record never completed, so its batch was never acked.
			// Drop it.
			if err := l.fs.Truncate(path, sc.goodBytes); err != nil {
				return nil, fmt.Errorf("wal: truncate torn tail of %s: %w", path, err)
			}
			opt.Stats.TornTails.Add(1)
		}
		if sc.records > 0 {
			lastSeq = sc.last
			seenRecords = true
		}
		l.segs = append(l.segs, segInfo{name: name, first: first})
	}
	l.nextSeq = lastSeq + 1
	if n := len(l.segs); n > 0 {
		// An empty trailing segment (created, then crash before its
		// first record) still names the next sequence to be written.
		if first := l.segs[n-1].first; first > l.nextSeq {
			l.nextSeq = first
		}
		f, err := l.fs.OpenAppend(filepath.Join(dir, l.segs[n-1].name))
		if err != nil {
			return nil, fmt.Errorf("wal: reopen tail segment: %w", err)
		}
		l.curFile = f
		// Post-truncate size = bytes of intact records; recompute from
		// the scan below.
		l.curSize = l.tailSize()
	}
	l.wg.Add(1)
	go l.committer()
	return l, nil
}

// tailSize re-measures the tail segment after any truncation.
func (l *Log) tailSize() int64 {
	rf, err := l.fs.OpenRead(filepath.Join(l.dir, l.segs[len(l.segs)-1].name))
	if err != nil {
		return 0
	}
	defer rf.Close()
	n, err := rf.Size()
	if err != nil {
		return 0
	}
	return n
}

type segScan struct {
	last      uint64 // seq of the last intact record (0 if none)
	records   int
	goodBytes int64 // offset past the last intact record
	torn      bool  // trailing bytes do not form an intact record
}

// scanSegment walks one segment's records, verifying checksums and the
// contiguity of sequence numbers (each record must be prevSeq+1).
// Anything unreadable marks the scan torn at the last good offset; the
// caller decides whether that is a legal crash tail or corruption.
func (l *Log) scanSegment(path string, prevSeq uint64) (segScan, error) {
	rf, err := l.fs.OpenRead(path)
	if err != nil {
		return segScan{}, fmt.Errorf("wal: scan %s: %w", path, err)
	}
	defer rf.Close()
	var sc segScan
	br := bufio.NewReaderSize(rf, 1<<16)
	hdr := make([]byte, recHeaderSize)
	for {
		if _, err := io.ReadFull(br, hdr); err != nil {
			if err != io.EOF {
				sc.torn = true
			}
			return sc, nil
		}
		seq := binary.LittleEndian.Uint64(hdr[0:8])
		length := binary.LittleEndian.Uint32(hdr[8:12])
		crc := binary.LittleEndian.Uint32(hdr[12:16])
		if length < 4 || length > maxPayload || (length-4)%opSize != 0 {
			sc.torn = true
			return sc, nil
		}
		payload := make([]byte, length)
		if _, err := io.ReadFull(br, payload); err != nil {
			sc.torn = true
			return sc, nil
		}
		sum := crc32.Checksum(hdr[0:12], castagnoli)
		sum = crc32.Update(sum, castagnoli, payload)
		if sum != crc {
			sc.torn = true
			return sc, nil
		}
		want := prevSeq + 1
		if sc.records > 0 {
			want = sc.last + 1
		}
		if seq != want {
			return sc, fmt.Errorf("%w: %s holds seq %d where %d was expected", ErrCorrupt, path, seq, want)
		}
		sc.last = seq
		sc.records++
		sc.goodBytes += int64(recHeaderSize) + int64(length)
	}
}

func encodeRecord(seq uint64, ops []dynamic.Op) []byte {
	payload := 4 + len(ops)*opSize
	buf := make([]byte, recHeaderSize+payload)
	binary.LittleEndian.PutUint64(buf[0:8], seq)
	binary.LittleEndian.PutUint32(buf[8:12], uint32(payload))
	p := buf[recHeaderSize:]
	binary.LittleEndian.PutUint32(p[0:4], uint32(len(ops)))
	off := 4
	for _, op := range ops {
		var flags byte
		if op.Remove {
			flags = 1
		}
		p[off] = flags
		binary.LittleEndian.PutUint64(p[off+1:], op.Src)
		binary.LittleEndian.PutUint64(p[off+9:], op.Dst)
		binary.LittleEndian.PutUint32(p[off+17:], math.Float32bits(op.Weight))
		off += opSize
	}
	sum := crc32.Checksum(buf[0:12], castagnoli)
	sum = crc32.Update(sum, castagnoli, p)
	binary.LittleEndian.PutUint32(buf[12:16], sum)
	return buf
}

func decodeOps(payload []byte) ([]dynamic.Op, error) {
	count := binary.LittleEndian.Uint32(payload[0:4])
	if int(count)*opSize+4 != len(payload) {
		return nil, fmt.Errorf("%w: op count %d does not match payload size %d", ErrCorrupt, count, len(payload))
	}
	ops := make([]dynamic.Op, count)
	off := 4
	for i := range ops {
		ops[i] = dynamic.Op{
			Remove: payload[off]&1 != 0,
			Src:    binary.LittleEndian.Uint64(payload[off+1:]),
			Dst:    binary.LittleEndian.Uint64(payload[off+9:]),
			Weight: math.Float32frombits(binary.LittleEndian.Uint32(payload[off+17:])),
		}
		off += opSize
	}
	return ops, nil
}

// Append assigns the batch the next sequence number, hands it to the
// committer, and blocks until it is durable per the sync policy (and,
// when a Commit hook is set, visible). It returns the assigned
// sequence.
func (l *Log) Append(ops []dynamic.Op) (uint64, error) {
	if len(ops) == 0 {
		return 0, errors.New("wal: empty batch")
	}
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return 0, ErrClosed
	}
	if l.failed != nil {
		err := l.failed
		l.mu.Unlock()
		return 0, err
	}
	seq := l.nextSeq
	l.nextSeq++
	req := &appendReq{seq: seq, ops: ops, rec: encodeRecord(seq, ops), done: make(chan error, 1)}
	l.queue = append(l.queue, req)
	l.cond.Signal()
	l.mu.Unlock()
	return seq, <-req.done
}

// LastSeq returns the highest sequence assigned so far (durable or
// in flight).
func (l *Log) LastSeq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.nextSeq - 1
}

// committer is the single goroutine that writes and syncs batches. It
// drains whatever queued while the previous fsync ran (piggyback group
// commit), then acks each batch in sequence order.
func (l *Log) committer() {
	defer l.wg.Done()
	for {
		l.mu.Lock()
		for len(l.queue) == 0 && !l.closed {
			l.cond.Wait()
		}
		if len(l.queue) == 0 && l.closed {
			l.mu.Unlock()
			return
		}
		batch := l.queue
		l.queue = nil
		l.mu.Unlock()

		if l.opt.Policy == SyncBatch && l.opt.MaxDelay > 0 && len(batch) < l.opt.MaxBatch {
			time.Sleep(l.opt.MaxDelay)
			l.mu.Lock()
			batch = append(batch, l.queue...)
			l.queue = nil
			l.mu.Unlock()
		}
		for len(batch) > 0 {
			n := len(batch)
			if n > l.opt.MaxBatch {
				n = l.opt.MaxBatch
			}
			l.commitChunk(batch[:n])
			batch = batch[n:]
			if len(batch) == 0 {
				break
			}
			l.mu.Lock()
			failed := l.failed
			l.mu.Unlock()
			if failed != nil {
				// The chunk poisoned the log: the tail may be torn, and
				// anything written past the tear would be acked now but
				// truncated away on reopen. Fail the rest of the drained
				// batch instead of committing it.
				for _, r := range batch {
					r.done <- failed
				}
				break
			}
		}
	}
}

// commitChunk writes one group of batches, syncs once, then acks them.
func (l *Log) commitChunk(reqs []*appendReq) {
	if l.curFile == nil || l.curSize >= l.opt.SegmentBytes {
		if err := l.rotate(reqs[0].seq); err != nil {
			l.poison(err, reqs)
			return
		}
	}
	written := len(reqs)
	var werr error
	for i, r := range reqs {
		n, err := l.curFile.Write(r.rec)
		l.curSize += int64(n)
		if err != nil {
			written, werr = i, err
			break
		}
	}
	if l.opt.Policy != SyncOff {
		t0 := time.Now()
		if err := l.curFile.Sync(); err != nil {
			// Nothing in this chunk is known durable — fail every
			// batch. The written records may still surface after a
			// restart (the OS can have persisted them), which is the
			// unavoidable "commit outcome unknown" window of any log.
			l.poison(err, reqs)
			return
		}
		d := time.Since(t0)
		l.opt.Stats.Fsyncs.Add(1)
		if l.opt.ObserveFsync != nil {
			l.opt.ObserveFsync(d)
		}
	}
	for _, r := range reqs[:written] {
		var err error
		if l.opt.Commit != nil {
			err = l.opt.Commit(r.seq, r.ops)
		}
		if err == nil {
			// Count only fully acked batches: a Commit-hook failure fails
			// the Append even though the record is durable, and the
			// counter's contract is acked, not written.
			l.opt.Stats.Appends.Add(1)
		}
		r.done <- err
	}
	if werr != nil {
		// The tail is torn mid-record: appending more would bury the
		// damage where reopen-truncation cannot reach it. Poison.
		l.poison(werr, reqs[written:])
	}
}

// poison marks the log failed, fails reqs and everything still queued.
func (l *Log) poison(cause error, reqs []*appendReq) {
	err := fmt.Errorf("%w: %w", ErrFailed, cause)
	l.mu.Lock()
	if l.failed == nil {
		l.failed = err
	}
	queued := l.queue
	l.queue = nil
	l.mu.Unlock()
	for _, r := range reqs {
		r.done <- err
	}
	for _, r := range queued {
		r.done <- err
	}
}

// rotate syncs and closes the current segment and starts a new one
// whose first record will be firstSeq.
func (l *Log) rotate(firstSeq uint64) error {
	if l.curFile != nil {
		if l.opt.Policy != SyncOff {
			if err := l.curFile.Sync(); err != nil {
				return err
			}
		}
		if err := l.curFile.Close(); err != nil {
			return err
		}
		l.curFile = nil
	}
	name := segName(firstSeq)
	f, err := l.fs.OpenAppend(filepath.Join(l.dir, name))
	if err != nil {
		return err
	}
	if err := l.fs.SyncDir(l.dir); err != nil {
		f.Close()
		return err
	}
	l.curFile = f
	l.curSize = 0
	l.mu.Lock()
	l.segs = append(l.segs, segInfo{name: name, first: firstSeq})
	l.mu.Unlock()
	return nil
}

// Replay streams every intact record with sequence > from to fn, in
// order. It is meant for the quiet window right after Open, before
// concurrent appends start.
func (l *Log) Replay(from uint64, fn func(seq uint64, ops []dynamic.Op) error) (int, error) {
	l.mu.Lock()
	segs := append([]segInfo(nil), l.segs...)
	l.mu.Unlock()
	replayed := 0
	for i, s := range segs {
		if i+1 < len(segs) && segs[i+1].first <= from+1 {
			// Every record this segment holds is <= from (its last is
			// the successor's first minus one): skip the whole file.
			continue
		}
		path := filepath.Join(l.dir, s.name)
		rf, err := l.fs.OpenRead(path)
		if err != nil {
			return replayed, fmt.Errorf("wal: replay %s: %w", path, err)
		}
		err = replaySegment(rf, from, fn, &replayed, l.opt.Stats)
		rf.Close()
		if err != nil {
			return replayed, fmt.Errorf("wal: replay %s: %w", path, err)
		}
	}
	return replayed, nil
}

func replaySegment(rf ReadFile, from uint64, fn func(uint64, []dynamic.Op) error, replayed *int, stats *Stats) error {
	br := bufio.NewReaderSize(rf, 1<<16)
	hdr := make([]byte, recHeaderSize)
	for {
		if _, err := io.ReadFull(br, hdr); err != nil {
			// Open already truncated torn tails; a partial header here
			// means we raced nothing (replay runs pre-append) so treat
			// any trailing garbage as end-of-log.
			return nil
		}
		length := binary.LittleEndian.Uint32(hdr[8:12])
		if length > maxPayload || length < 4 {
			return nil
		}
		payload := make([]byte, length)
		if _, err := io.ReadFull(br, payload); err != nil {
			return nil
		}
		sum := crc32.Checksum(hdr[0:12], castagnoli)
		sum = crc32.Update(sum, castagnoli, payload)
		if sum != binary.LittleEndian.Uint32(hdr[12:16]) {
			return nil
		}
		seq := binary.LittleEndian.Uint64(hdr[0:8])
		if seq <= from {
			continue
		}
		ops, err := decodeOps(payload)
		if err != nil {
			return err
		}
		if err := fn(seq, ops); err != nil {
			return err
		}
		*replayed++
		stats.ReplayedBatches.Add(1)
	}
}

// TruncateThrough removes segments every record of which has sequence
// <= seq — the garbage collection run after a compaction makes a prefix
// of the log redundant. The active tail segment is never removed.
func (l *Log) TruncateThrough(seq uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	removed := 0
	for len(l.segs) > 1 && l.segs[1].first <= seq+1 {
		// segs[0]'s last record is segs[1].first-1 <= seq: redundant.
		path := filepath.Join(l.dir, l.segs[0].name)
		if err := l.fs.Remove(path); err != nil {
			break
		}
		l.segs = l.segs[1:]
		removed++
	}
	if removed > 0 {
		return l.fs.SyncDir(l.dir)
	}
	return nil
}

// Segments returns the current segment count (for tests and stats).
func (l *Log) Segments() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.segs)
}

// Close drains queued appends, stops the committer and closes the tail
// segment. Further Appends return ErrClosed.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	l.cond.Broadcast()
	l.mu.Unlock()
	l.wg.Wait()
	if l.curFile == nil {
		return nil
	}
	var err error
	if l.opt.Policy != SyncOff && l.failed == nil {
		err = l.curFile.Sync()
	}
	if cerr := l.curFile.Close(); err == nil {
		err = cerr
	}
	l.curFile = nil
	return err
}
