package wal

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"nxgraph/internal/dynamic"
)

func batch(n int, tag uint64) []dynamic.Op {
	ops := make([]dynamic.Op, n)
	for i := range ops {
		ops[i] = dynamic.Op{Src: tag*1000 + uint64(i), Dst: tag, Weight: float32(i) + 0.5}
		if i%3 == 0 {
			ops[i].Remove = true
		}
	}
	return ops
}

// collect replays the whole log into a seq->ops map.
func collect(t *testing.T, l *Log, from uint64) map[uint64][]dynamic.Op {
	t.Helper()
	got := make(map[uint64][]dynamic.Op)
	n, err := l.Replay(from, func(seq uint64, ops []dynamic.Op) error {
		got[seq] = ops
		return nil
	})
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if n != len(got) {
		t.Fatalf("replay count %d != batches seen %d", n, len(got))
	}
	return got
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := make(map[uint64][]dynamic.Op)
	for i := 0; i < 10; i++ {
		ops := batch(1+i%4, uint64(i))
		seq, err := l.Append(ops)
		if err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
		if seq != uint64(i+1) {
			t.Fatalf("append %d: got seq %d, want %d", i, seq, i+1)
		}
		want[seq] = ops
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if got := l2.LastSeq(); got != 10 {
		t.Fatalf("LastSeq after reopen = %d, want 10", got)
	}
	if got := collect(t, l2, 0); !reflect.DeepEqual(got, want) {
		t.Fatalf("replayed batches differ from appended:\n got %v\nwant %v", got, want)
	}
	// Replay(from) skips everything at or below from.
	if got := collect(t, l2, 7); len(got) != 3 {
		t.Fatalf("Replay(7) yielded %d batches, want 3", len(got))
	}
	// Appending after reopen continues the sequence.
	if seq, err := l2.Append(batch(2, 99)); err != nil || seq != 11 {
		t.Fatalf("append after reopen: seq=%d err=%v, want 11", seq, err)
	}
}

func TestTornTailTruncatedOnOpen(t *testing.T) {
	for name, garbage := range map[string][]byte{
		"partial-header": {0xde, 0xad, 0xbe, 0xef, 0x01},
		"huge-length": func() []byte {
			b := make([]byte, recHeaderSize)
			b[8], b[9], b[10], b[11] = 0xff, 0xff, 0xff, 0x7f
			return b
		}(),
		"bad-crc": func() []byte {
			rec := encodeRecord(3, batch(2, 7))
			rec[len(rec)-1] ^= 0xff // flip a payload byte after the crc was set
			return rec
		}(),
		"truncated-payload": encodeRecord(3, batch(5, 7))[:recHeaderSize+10],
	} {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			l, err := Open(dir, Options{})
			if err != nil {
				t.Fatal(err)
			}
			if _, err := l.Append(batch(3, 1)); err != nil {
				t.Fatal(err)
			}
			if _, err := l.Append(batch(2, 2)); err != nil {
				t.Fatal(err)
			}
			if err := l.Close(); err != nil {
				t.Fatal(err)
			}
			// Simulate the crash tail: raw garbage after the intact
			// records.
			seg := filepath.Join(dir, segName(1))
			f, err := os.OpenFile(seg, os.O_WRONLY|os.O_APPEND, 0)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := f.Write(garbage); err != nil {
				t.Fatal(err)
			}
			f.Close()

			stats := &Stats{}
			l2, err := Open(dir, Options{Stats: stats})
			if err != nil {
				t.Fatalf("reopen with torn tail: %v", err)
			}
			defer l2.Close()
			if got := stats.TornTails.Load(); got != 1 {
				t.Fatalf("torn tails = %d, want 1", got)
			}
			if got := l2.LastSeq(); got != 2 {
				t.Fatalf("LastSeq = %d, want 2 (torn record dropped)", got)
			}
			if got := collect(t, l2, 0); len(got) != 2 {
				t.Fatalf("replay found %d batches, want 2", len(got))
			}
			// The log must be appendable right where the tear was cut.
			if seq, err := l2.Append(batch(1, 3)); err != nil || seq != 3 {
				t.Fatalf("append after truncation: seq=%d err=%v", seq, err)
			}
		})
	}
}

func TestCorruptionBeforeTailRejected(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SegmentBytes: 1}) // every batch rolls a segment
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := l.Append(batch(2, uint64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Damage a record in the middle segment — not a legal crash tail.
	seg := filepath.Join(dir, segName(2))
	b, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	b[recHeaderSize] ^= 0xff
	if err := os.WriteFile(seg, b, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("open with mid-log corruption: err=%v, want ErrCorrupt", err)
	}
}

func TestSegmentRotationAndGC(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SegmentBytes: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := l.Append(batch(2, uint64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if got := l.Segments(); got != 5 {
		t.Fatalf("segments = %d, want 5", got)
	}
	// GC through seq 3: segments holding 1..3 go, 4..5 stay.
	if err := l.TruncateThrough(3); err != nil {
		t.Fatal(err)
	}
	if got := l.Segments(); got != 2 {
		t.Fatalf("segments after GC = %d, want 2", got)
	}
	// The active tail is never removed, even if fully redundant.
	if err := l.TruncateThrough(100); err != nil {
		t.Fatal(err)
	}
	if got := l.Segments(); got != 1 {
		t.Fatalf("segments after full GC = %d, want 1 (active tail)", got)
	}
	if got := collect(t, l, 4); len(got) != 1 {
		t.Fatalf("replay after GC found %d batches, want 1", len(got))
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// A GC'd log reopens fine even though its first segment is not 1.
	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("reopen after GC: %v", err)
	}
	defer l2.Close()
	if got := l2.LastSeq(); got != 5 {
		t.Fatalf("LastSeq = %d, want 5", got)
	}
	if seq, err := l2.Append(batch(1, 9)); err != nil || seq != 6 {
		t.Fatalf("append after GC reopen: seq=%d err=%v", seq, err)
	}
}

func TestGroupCommitCoalesces(t *testing.T) {
	dir := t.TempDir()
	stats := &Stats{}
	l, err := Open(dir, Options{Stats: stats})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	const appenders, rounds = 8, 25
	var wg sync.WaitGroup
	for a := 0; a < appenders; a++ {
		wg.Add(1)
		go func(a int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				if _, err := l.Append(batch(1, uint64(a*1000+r))); err != nil {
					t.Errorf("append: %v", err)
					return
				}
			}
		}(a)
	}
	wg.Wait()
	appends, fsyncs := stats.Appends.Load(), stats.Fsyncs.Load()
	if appends != appenders*rounds {
		t.Fatalf("appends = %d, want %d", appends, appenders*rounds)
	}
	if fsyncs > appends {
		t.Fatalf("fsyncs (%d) exceed appends (%d): group commit never coalesced", fsyncs, appends)
	}
	t.Logf("group commit: %d appends in %d fsyncs", appends, fsyncs)
	// Everything acked must be durable and ordered.
	if got := collect(t, l, 0); len(got) != appenders*rounds {
		t.Fatalf("replay found %d batches, want %d", len(got), appenders*rounds)
	}
}

func TestCommitHookOrderedAndPreAck(t *testing.T) {
	dir := t.TempDir()
	var mu sync.Mutex
	var seqs []uint64
	l, err := Open(dir, Options{
		Commit: func(seq uint64, ops []dynamic.Op) error {
			mu.Lock()
			seqs = append(seqs, seq)
			mu.Unlock()
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	var wg sync.WaitGroup
	for i := 0; i < 50; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := l.Append(batch(1, uint64(i))); err != nil {
				t.Errorf("append: %v", err)
			}
		}(i)
	}
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	if len(seqs) != 50 {
		t.Fatalf("commit hook ran %d times, want 50", len(seqs))
	}
	for i, s := range seqs {
		if s != uint64(i+1) {
			t.Fatalf("commit hook order broken at %d: got seq %d", i, s)
		}
	}
}

func TestSyncPolicyParse(t *testing.T) {
	cases := map[string]SyncPolicy{"off": SyncOff, "batch": SyncBatch, "always": SyncAlways, "": SyncBatch, "BATCH": SyncBatch}
	for in, want := range cases {
		got, err := ParseSyncPolicy(in)
		if err != nil || got != want {
			t.Fatalf("ParseSyncPolicy(%q) = %v, %v; want %v", in, got, err, want)
		}
		if in != "" && in != "BATCH" && got.String() != in {
			t.Fatalf("round trip %q -> %q", in, got.String())
		}
	}
	if _, err := ParseSyncPolicy("sometimes"); err == nil {
		t.Fatal("ParseSyncPolicy accepted garbage")
	}
}

func TestSyncOffNeverFsyncs(t *testing.T) {
	dir := t.TempDir()
	stats := &Stats{}
	l, err := Open(dir, Options{Policy: SyncOff, Stats: stats})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := l.Append(batch(1, uint64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if got := stats.Fsyncs.Load(); got != 0 {
		t.Fatalf("fsyncs = %d under -fsync=off, want 0", got)
	}
}

func TestAppendAfterCloseFails(t *testing.T) {
	l, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(batch(1, 1)); !errors.Is(err, ErrClosed) {
		t.Fatalf("append after close: %v, want ErrClosed", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
}

func TestManifestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	// Missing manifest reads as the zero value (pre-WAL stores).
	m, err := ReadManifest(dir)
	if err != nil || m != (Manifest{}) {
		t.Fatalf("missing manifest: %+v, %v", m, err)
	}
	want := Manifest{Generation: 3, LastAppliedSeq: 41}
	if err := WriteManifest(dir, want); err != nil {
		t.Fatal(err)
	}
	if got, err := ReadManifest(dir); err != nil || got != want {
		t.Fatalf("ReadManifest = %+v, %v; want %+v", got, err, want)
	}
}
