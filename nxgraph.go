// Package nxgraph is a single-machine out-of-core graph processing
// library, a from-scratch Go implementation of
//
//	Chi et al., "NXgraph: An Efficient Graph Processing System on a
//	Single Machine", ICDE 2016 (arXiv:1510.06916).
//
// Graphs are preprocessed into the Destination-Sorted Sub-Shard (DSSS)
// representation: vertices partitioned into P intervals, edges into P²
// destination-sorted sub-shards. Computations run as synchronous
// gather–sum–apply programs under one of three update strategies —
// Single-Phase (all intervals memory-resident), Double-Phase (fully
// disk-based via hubs) or Mixed-Phase (Q resident intervals) — chosen
// adaptively from the configured memory budget.
//
// # Quick start
//
//	g, _ := nxgraph.Generate(nxgraph.RMAT(16, 16, 1))
//	gr, _ := nxgraph.Build("/tmp/mygraph", g, nxgraph.Options{Transpose: true})
//	defer gr.Close()
//	ranks, _ := gr.PageRank(0.85, 10)
//
// Every algorithm also has a Context variant (PageRankContext, BFSContext,
// RunProgramContext, ...) that honours context cancellation — checked at
// iteration and sub-shard-batch boundaries — and reports per-iteration
// Progress to an optional callback. These power the serving layer in
// internal/server: a long-running HTTP service (cmd/nxserve) with a graph
// registry, an asynchronous job scheduler with a bounded worker pool, and
// an LRU result cache. The serving layer also supports online structural
// updates: internal/dynamic's DeltaLog overlays pending edge
// insertions/removals on the engine at query time (engine.Overlay), with
// background compaction folding them into a rebuilt store.
//
// The cmd/ directory provides the same functionality as CLI tools
// (nxgen, nxpre, nxrun, nxbench, nxserve); examples/ contains runnable
// scenarios.
package nxgraph

import (
	"context"
	"fmt"
	"os"

	"nxgraph/internal/algorithms"
	"nxgraph/internal/blockcache"
	"nxgraph/internal/diskio"
	"nxgraph/internal/engine"
	"nxgraph/internal/gen"
	"nxgraph/internal/graph"
	"nxgraph/internal/preprocess"
	"nxgraph/internal/storage"
	"nxgraph/internal/trace"
)

// Re-exported basic types.
type (
	// Edge is a directed edge with an optional weight.
	Edge = graph.Edge
	// EdgeList is an in-memory graph in coordinate form.
	EdgeList = graph.EdgeList
	// Program is a custom gather–sum–apply computation; see
	// internal/engine.Program for the full contract.
	Program = engine.Program
	// Result reports a program execution (attributes, iterations,
	// traffic, timing).
	Result = engine.Result
	// DiskProfile models a disk (bandwidth + seek); see SSD, HDD,
	// Unthrottled.
	DiskProfile = diskio.Profile
	// Progress reports the state of a running computation after each
	// iteration (see ProgressFunc).
	Progress = engine.Progress
	// ProgressFunc observes per-iteration progress of the *Context
	// algorithm variants. Called synchronously; must be cheap.
	ProgressFunc = engine.ProgressFunc
	// CacheStats is a snapshot of the sub-shard block cache counters
	// (see Graph.CacheStats and Options.CacheBytes).
	CacheStats = blockcache.Stats
	// Trace is a run's span recorder; Result.Trace carries one unless
	// tracing was disabled via Options.TraceSpans < 0.
	Trace = trace.Trace
	// TraceSpan is one timed section of a traced run.
	TraceSpan = trace.Span
	// TraceStep is one iteration's aggregate stage stats (stall vs
	// compute, blocks hit/missed, bytes moved).
	TraceStep = trace.StepStats
	// TraceTimeline is a JSON-ready snapshot of a run trace.
	TraceTimeline = trace.Timeline
	// BatchControl is the per-lane control surface of a fused batch run
	// (see the *Batch methods): Width reports the lane count and
	// CancelLane cancels one query without disturbing its siblings.
	BatchControl = engine.BatchControl
)

// Disk profiles for Options.Profile.
var (
	// Unthrottled does byte accounting only (the default).
	Unthrottled = diskio.Unthrottled
	// SSD simulates a SATA SSD.
	SSD = diskio.SSD
	// HDD simulates a 7200 rpm disk.
	HDD = diskio.HDD
)

// Strategy selects the update strategy.
type Strategy = engine.Strategy

// Update strategies.
const (
	// Auto adapts to the memory budget (the library default).
	Auto = engine.Auto
	// SPU forces Single-Phase Update.
	SPU = engine.SPU
	// DPU forces Double-Phase Update.
	DPU = engine.DPU
	// MPU forces Mixed-Phase Update.
	MPU = engine.MPU
)

// Store format versions for Options.Format.
const (
	// FormatV1 is the fixed-width uint32 sub-shard encoding.
	FormatV1 = storage.FormatV1
	// FormatV2 is the delta+varint compressed encoding (the default):
	// 3-4x fewer bytes per edge on disk and in the encoded cache tier.
	FormatV2 = storage.FormatV2
)

// Options configures Build and Open.
type Options struct {
	// P is the number of vertex intervals (default 12, the paper's
	// sweet spot).
	P int
	// Format selects the on-disk sub-shard encoding written by Build
	// (FormatV1 or FormatV2); 0 picks the current default, FormatV2.
	// Open reads either format regardless of this setting.
	Format int
	// Threads sizes the worker pool (default GOMAXPROCS).
	Threads int
	// MemoryBudget is BM in bytes; 0 means unlimited (SPU with all
	// sub-shards cached).
	MemoryBudget int64
	// CacheBytes budgets the graph's decoded sub-shard block cache,
	// shared by every run on the graph: 0 derives the budget from
	// MemoryBudget (unlimited when MemoryBudget is 0), a positive value
	// sets it in bytes, and a negative value disables caching.
	CacheBytes int64
	// CacheL2Frac is the fraction of the cache budget held as encoded
	// blobs rather than decoded blocks: an L1 miss whose blob is still
	// resident re-decodes from RAM instead of re-reading from disk.
	// 0 picks the default split (a quarter); negative disables the
	// encoded tier.
	CacheL2Frac float64
	// Strategy overrides adaptive strategy selection.
	Strategy Strategy
	// LockSync switches worker synchronization from conflict-free
	// callback scheduling to per-interval locking.
	LockSync bool
	// Weighted keeps edge weights (needed by SSSP).
	Weighted bool
	// Transpose materializes the reverse-edge replica (needed by WCC,
	// SCC and HITS).
	Transpose bool
	// Profile simulates a disk; zero value means unthrottled.
	Profile DiskProfile
	// TraceSpans bounds each run's trace span ring buffer: 0 selects the
	// default capacity, a positive value sets the bound, and a negative
	// value disables run tracing (Result.Trace is then nil).
	TraceSpans int
}

func (o Options) p() int {
	if o.P <= 0 {
		return 12
	}
	return o.P
}

func (o Options) profile() DiskProfile {
	if o.Profile.Name == "" {
		return Unthrottled
	}
	return o.Profile
}

func (o Options) engineConfig() engine.Config {
	sync := engine.Callback
	if o.LockSync {
		sync = engine.Lock
	}
	return engine.Config{
		Threads:      o.Threads,
		MemoryBudget: o.MemoryBudget,
		CacheBytes:   o.CacheBytes,
		CacheL2Frac:  o.CacheL2Frac,
		Strategy:     o.Strategy,
		Sync:         sync,
		TraceSpans:   o.TraceSpans,
	}
}

// Graph is an opened DSSS store bound to a compute engine.
type Graph struct {
	store  *storage.Store
	engine *engine.Engine
	opt    Options
}

// Build preprocesses g into a DSSS store rooted at dir and opens it. The
// directory is created (and truncated) as needed. Isolated vertices are
// dropped; RemapTable recovers original ids.
func Build(dir string, g *EdgeList, opt Options) (*Graph, error) {
	disk, err := diskio.New(dir, opt.profile())
	if err != nil {
		return nil, err
	}
	res, err := preprocess.FromEdgeList(disk, "dsss", g, preprocess.Options{
		Name:      dir,
		P:         opt.p(),
		Weighted:  opt.Weighted,
		Transpose: opt.Transpose,
		Format:    opt.Format,
	})
	if err != nil {
		return nil, err
	}
	return attach(res.Store, opt)
}

// BuildFromFile parses a whitespace-separated edge-list text file
// ("src dst [weight]" lines) and builds a store from it.
func BuildFromFile(dir, path string, opt Options) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("nxgraph: open edge file: %w", err)
	}
	defer f.Close()
	edges, err := graph.ParseEdgeText(f)
	if err != nil {
		return nil, err
	}
	disk, err := diskio.New(dir, opt.profile())
	if err != nil {
		return nil, err
	}
	res, err := preprocess.FromIndexEdges(disk, "dsss", edges, preprocess.Options{
		Name:      dir,
		P:         opt.p(),
		Weighted:  opt.Weighted,
		Transpose: opt.Transpose,
		Format:    opt.Format,
	})
	if err != nil {
		return nil, err
	}
	return attach(res.Store, opt)
}

// Open opens a store previously written by Build.
func Open(dir string, opt Options) (*Graph, error) {
	disk, err := diskio.New(dir, opt.profile())
	if err != nil {
		return nil, err
	}
	st, err := storage.Open(disk, "dsss")
	if err != nil {
		return nil, err
	}
	return attach(st, opt)
}

func attach(st *storage.Store, opt Options) (*Graph, error) {
	e, err := engine.New(st, opt.engineConfig())
	if err != nil {
		st.Close()
		return nil, err
	}
	return &Graph{store: st, engine: e, opt: opt}, nil
}

// Close releases the store.
func (g *Graph) Close() error { return g.store.Close() }

// NumVertices returns the dense vertex count (isolated vertices
// excluded, as in the paper).
func (g *Graph) NumVertices() uint32 { return g.store.Meta().NumVertices }

// NumEdges returns the edge count.
func (g *Graph) NumEdges() int64 { return g.store.Meta().NumEdges }

// P returns the interval count.
func (g *Graph) P() int { return g.store.Meta().P }

// HasTranspose reports whether the store carries the reverse-edge
// replica (required by WCC, SCC, HITS and KCore).
func (g *Graph) HasTranspose() bool { return g.store.Meta().HasTranspose }

// RemapTable returns, for each dense id, the vertex's id in the edge
// list passed to Build (or the raw index for BuildFromFile).
func (g *Graph) RemapTable() ([]uint64, error) { return g.store.IDMap() }

// Degrees returns out- and in-degree arrays indexed by dense id.
func (g *Graph) Degrees() (out, in []uint32, err error) { return g.store.Degrees() }

// IOStats returns cumulative disk traffic counters for the graph's disk.
func (g *Graph) IOStats() diskio.StatsSnapshot {
	return g.store.Disk().Stats().Snapshot()
}

// CacheStats returns the graph's sub-shard block cache counters (hits,
// misses, evictions, resident and pinned bytes).
func (g *Graph) CacheStats() CacheStats { return g.engine.CacheStats() }

// PageRank runs iters power iterations with the given damping and
// returns per-vertex ranks summing to 1.
func (g *Graph) PageRank(damping float64, iters int) (*Result, error) {
	return algorithms.PageRank(g.engine, damping, iters)
}

// PageRankContext is PageRank with cancellation and per-iteration
// progress reporting (progress may be nil). On cancellation it returns
// ctx.Err() and the graph remains usable for further runs; the same
// contract holds for every *Context method below.
func (g *Graph) PageRankContext(ctx context.Context, damping float64, iters int, progress ProgressFunc) (*Result, error) {
	return algorithms.PageRankContext(ctx, g.engine, damping, iters, progress)
}

// PageRankConvergeContext is PageRankConverge with cancellation and
// progress reporting.
func (g *Graph) PageRankConvergeContext(ctx context.Context, damping, eps float64, maxIters int, progress ProgressFunc) (*Result, error) {
	return algorithms.PageRankConvergeContext(ctx, g.engine, damping, eps, maxIters, progress)
}

// PageRankConverge iterates until the largest rank change is below eps.
func (g *Graph) PageRankConverge(damping, eps float64, maxIters int) (*Result, error) {
	return algorithms.PageRankConverge(g.engine, damping, eps, maxIters)
}

// PersonalizedPageRank scores random-walk-with-restart proximity to
// root; scores sum to 1.
func (g *Graph) PersonalizedPageRank(root uint32, damping float64, iters int) (*Result, error) {
	return algorithms.PersonalizedPageRank(g.engine, root, damping, iters)
}

// PersonalizedPageRankContext is PersonalizedPageRank with cancellation
// and progress reporting.
func (g *Graph) PersonalizedPageRankContext(ctx context.Context, root uint32, damping float64, iters int, progress ProgressFunc) (*Result, error) {
	return algorithms.PersonalizedPageRankContext(ctx, g.engine, root, damping, iters, progress)
}

// PersonalizedPageRankBatch fuses one personalized PageRank query per
// root into a single run: every decoded sub-shard block is gathered once
// and applied to all query lanes, so a batch of b roots costs roughly
// one graph traversal instead of b. Results come back in root order and
// are bit-identical to running each query alone.
func (g *Graph) PersonalizedPageRankBatch(roots []uint32, damping float64, iters int) ([]*Result, error) {
	return algorithms.PersonalizedPageRankBatch(g.engine, roots, damping, iters)
}

// PersonalizedPageRankBatchContext is PersonalizedPageRankBatch with
// cancellation, progress reporting, and per-lane control. ctrl, when
// non-nil, receives the run's BatchControl before the first iteration;
// a lane cancelled through it yields a nil slot in the result slice
// while its siblings run to completion.
func (g *Graph) PersonalizedPageRankBatchContext(ctx context.Context, roots []uint32, damping float64, iters int, progress ProgressFunc, ctrl func(BatchControl)) ([]*Result, error) {
	return algorithms.PersonalizedPageRankBatchContext(ctx, g.engine, roots, damping, iters, progress, ctrl)
}

// BFS returns hop distances from root (+Inf where unreachable).
func (g *Graph) BFS(root uint32) (*Result, error) {
	return algorithms.BFS(g.engine, root)
}

// BFSContext is BFS with cancellation and progress reporting.
func (g *Graph) BFSContext(ctx context.Context, root uint32, progress ProgressFunc) (*Result, error) {
	return algorithms.BFSContext(ctx, g.engine, root, progress)
}

// BFSBatch fuses one BFS per root into a single run; see
// PersonalizedPageRankBatch for the fusion contract.
func (g *Graph) BFSBatch(roots []uint32) ([]*Result, error) {
	return algorithms.BFSBatch(g.engine, roots)
}

// BFSBatchContext is BFSBatch with cancellation, progress reporting,
// and per-lane control (see PersonalizedPageRankBatchContext).
func (g *Graph) BFSBatchContext(ctx context.Context, roots []uint32, progress ProgressFunc, ctrl func(BatchControl)) ([]*Result, error) {
	return algorithms.BFSBatchContext(ctx, g.engine, roots, progress, ctrl)
}

// SSSP returns weighted shortest-path distances from root (+Inf where
// unreachable). Build the store with Weighted for real weights.
func (g *Graph) SSSP(root uint32) (*Result, error) {
	return algorithms.SSSP(g.engine, root)
}

// SSSPContext is SSSP with cancellation and progress reporting.
func (g *Graph) SSSPContext(ctx context.Context, root uint32, progress ProgressFunc) (*Result, error) {
	return algorithms.SSSPContext(ctx, g.engine, root, progress)
}

// SSSPBatch fuses one SSSP per root into a single run; see
// PersonalizedPageRankBatch for the fusion contract.
func (g *Graph) SSSPBatch(roots []uint32) ([]*Result, error) {
	return algorithms.SSSPBatch(g.engine, roots)
}

// SSSPBatchContext is SSSPBatch with cancellation, progress reporting,
// and per-lane control (see PersonalizedPageRankBatchContext).
func (g *Graph) SSSPBatchContext(ctx context.Context, roots []uint32, progress ProgressFunc, ctrl func(BatchControl)) ([]*Result, error) {
	return algorithms.SSSPBatchContext(ctx, g.engine, roots, progress, ctrl)
}

// WCC labels every vertex with the smallest id in its weakly connected
// component. Requires Transpose.
func (g *Graph) WCC() (*Result, error) { return algorithms.WCC(g.engine) }

// WCCContext is WCC with cancellation and progress reporting.
func (g *Graph) WCCContext(ctx context.Context, progress ProgressFunc) (*Result, error) {
	return algorithms.WCCContext(ctx, g.engine, progress)
}

// SCC computes strongly connected components. Requires Transpose.
func (g *Graph) SCC() (*algorithms.SCCResult, error) { return algorithms.SCC(g.engine) }

// SCCContext is SCC with cancellation and progress reporting.
func (g *Graph) SCCContext(ctx context.Context, progress ProgressFunc) (*algorithms.SCCResult, error) {
	return algorithms.SCCContext(ctx, g.engine, progress)
}

// HITS runs hubs-and-authorities for iters iterations. Requires
// Transpose.
func (g *Graph) HITS(iters int) (auth, hub []float64, err error) {
	return algorithms.HITS(g.engine, iters)
}

// HITSContext is HITS with cancellation and progress reporting.
func (g *Graph) HITSContext(ctx context.Context, iters int, progress ProgressFunc) (auth, hub []float64, err error) {
	return algorithms.HITSContext(ctx, g.engine, iters, progress)
}

// KCore computes every vertex's core number in the undirected view of
// the graph. Requires Transpose.
func (g *Graph) KCore() (*algorithms.KCoreResult, error) {
	return algorithms.KCore(g.engine)
}

// KCoreContext is KCore with cancellation and progress reporting.
func (g *Graph) KCoreContext(ctx context.Context, progress ProgressFunc) (*algorithms.KCoreResult, error) {
	return algorithms.KCoreContext(ctx, g.engine, progress)
}

// Verify checks every on-disk invariant of the graph's DSSS store.
func (g *Graph) Verify() error { return storage.Verify(g.store) }

// RunProgram executes a custom Program in the forward direction.
func (g *Graph) RunProgram(p Program) (*Result, error) {
	return g.engine.Run(p, engine.Forward)
}

// RunProgramContext executes a custom Program in the forward direction
// with cancellation (checked at iteration and sub-shard-batch boundaries)
// and per-iteration progress reporting (progress may be nil).
func (g *Graph) RunProgramContext(ctx context.Context, p Program, progress ProgressFunc) (*Result, error) {
	return g.engine.RunContext(ctx, p, engine.Forward, progress)
}

// Engine exposes the underlying engine for advanced orchestration
// (stepping, masks, custom directions).
func (g *Graph) Engine() *engine.Engine { return g.engine }

// GenSpec describes a synthetic graph for Generate.
type GenSpec struct {
	kind              string
	scale, edgeFactor int
	rows, cols        int
	seed              int64
	weighted          bool
}

// RMAT describes a power-law graph with 2^scale vertices and
// edgeFactor·2^scale edges (Graph500 skew).
func RMAT(scale, edgeFactor int, seed int64) GenSpec {
	return GenSpec{kind: "rmat", scale: scale, edgeFactor: edgeFactor, seed: seed}
}

// WeightedRMAT is RMAT with uniform random weights in (0, 1].
func WeightedRMAT(scale, edgeFactor int, seed int64) GenSpec {
	s := RMAT(scale, edgeFactor, seed)
	s.weighted = true
	return s
}

// Mesh describes a triangulated rows×cols grid (planar, avg degree ≈ 6).
func Mesh(rows, cols int, seed int64) GenSpec {
	return GenSpec{kind: "mesh", rows: rows, cols: cols, seed: seed}
}

// Generate produces the described synthetic graph.
func Generate(spec GenSpec) (*EdgeList, error) {
	switch spec.kind {
	case "rmat":
		cfg := gen.DefaultRMAT(spec.scale, spec.edgeFactor, spec.seed)
		cfg.Weighted = spec.weighted
		return gen.RMAT(cfg)
	case "mesh":
		return gen.Mesh(spec.rows, spec.cols, spec.seed)
	default:
		return nil, fmt.Errorf("nxgraph: unknown generator %q", spec.kind)
	}
}
