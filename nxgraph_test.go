package nxgraph_test

import (
	"math"
	"os"
	"path/filepath"
	"testing"

	nxgraph "nxgraph"
)

func buildSample(t *testing.T, opt nxgraph.Options) *nxgraph.Graph {
	t.Helper()
	g, err := nxgraph.Generate(nxgraph.RMAT(10, 8, 21))
	if err != nil {
		t.Fatal(err)
	}
	gr, err := nxgraph.Build(t.TempDir(), g, opt)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { gr.Close() })
	return gr
}

func TestBuildAndPageRank(t *testing.T) {
	gr := buildSample(t, nxgraph.Options{P: 6})
	if gr.NumVertices() == 0 || gr.NumEdges() != 8<<10 {
		t.Fatalf("graph: %d vertices, %d edges", gr.NumVertices(), gr.NumEdges())
	}
	res, err := gr.PageRank(0.85, 5)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, r := range res.Attrs {
		sum += r
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("ranks sum to %v", sum)
	}
	if res.Strategy != nxgraph.SPU {
		t.Fatalf("unlimited budget should pick SPU, got %s", res.Strategy)
	}
	if gr.IOStats().BytesWritten == 0 {
		t.Fatal("expected preprocessing writes on the graph's disk")
	}
}

func TestOpenExistingStore(t *testing.T) {
	g, err := nxgraph.Generate(nxgraph.Mesh(16, 16, 2))
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	gr, err := nxgraph.Build(dir, g, nxgraph.Options{P: 4, Transpose: true})
	if err != nil {
		t.Fatal(err)
	}
	n := gr.NumVertices()
	gr.Close()

	re, err := nxgraph.Open(dir, nxgraph.Options{P: 4, MemoryBudget: 64, Strategy: nxgraph.DPU})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.NumVertices() != n {
		t.Fatalf("reopened store has %d vertices, want %d", re.NumVertices(), n)
	}
	res, err := re.WCC()
	if err != nil {
		t.Fatal(err)
	}
	if res.Strategy != nxgraph.DPU {
		t.Fatalf("forced DPU, got %s", res.Strategy)
	}
	first := uint32(res.Attrs[0])
	for v, l := range res.Attrs {
		if uint32(l) != first {
			t.Fatalf("mesh is connected; vertex %d got label %v", v, l)
		}
	}
}

func TestBuildFromFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "edges.txt")
	content := "# tiny graph with sparse indices\n100 200\n200 300\n300 100\n300 999\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	gr, err := nxgraph.BuildFromFile(t.TempDir(), path, nxgraph.Options{P: 2, Transpose: true})
	if err != nil {
		t.Fatal(err)
	}
	defer gr.Close()
	if gr.NumVertices() != 4 {
		t.Fatalf("n = %d, want 4", gr.NumVertices())
	}
	ids, err := gr.RemapTable()
	if err != nil {
		t.Fatal(err)
	}
	if ids[0] != 100 || ids[3] != 999 {
		t.Fatalf("remap: %v", ids)
	}
	scc, err := gr.SCC()
	if err != nil {
		t.Fatal(err)
	}
	// {100,200,300} form a cycle; 999 is a sink singleton.
	if scc.NumComponents() != 2 {
		t.Fatalf("%d SCCs, want 2", scc.NumComponents())
	}
	out, in, err := gr.Degrees()
	if err != nil {
		t.Fatal(err)
	}
	if out[3] != 0 || in[3] != 1 {
		t.Fatalf("sink degrees: out=%d in=%d", out[3], in[3])
	}
}

func TestBFSAndSSSPFacade(t *testing.T) {
	g, err := nxgraph.Generate(nxgraph.WeightedRMAT(9, 8, 4))
	if err != nil {
		t.Fatal(err)
	}
	gr, err := nxgraph.Build(t.TempDir(), g, nxgraph.Options{P: 4, Weighted: true})
	if err != nil {
		t.Fatal(err)
	}
	defer gr.Close()
	bfs, err := gr.BFS(0)
	if err != nil {
		t.Fatal(err)
	}
	sssp, err := gr.SSSP(0)
	if err != nil {
		t.Fatal(err)
	}
	// Weighted distance can never exceed hop count here only if all
	// weights ≤ 1 (they are, by WeightedRMAT's construction).
	for v := range bfs.Attrs {
		if math.IsInf(bfs.Attrs[v], 1) != math.IsInf(sssp.Attrs[v], 1) {
			t.Fatalf("vertex %d: reachability disagrees", v)
		}
		if !math.IsInf(bfs.Attrs[v], 1) && sssp.Attrs[v] > bfs.Attrs[v]+1e-9 {
			t.Fatalf("vertex %d: weighted dist %v exceeds hops %v with weights ≤ 1",
				v, sssp.Attrs[v], bfs.Attrs[v])
		}
	}
}

func TestHITSFacade(t *testing.T) {
	gr := buildSample(t, nxgraph.Options{P: 4, Transpose: true})
	auth, hub, err := gr.HITS(5)
	if err != nil {
		t.Fatal(err)
	}
	var na, nh float64
	for i := range auth {
		na += auth[i] * auth[i]
		nh += hub[i] * hub[i]
	}
	if math.Abs(na-1) > 1e-9 || math.Abs(nh-1) > 1e-9 {
		t.Fatalf("scores not normalized: %v %v", na, nh)
	}
}

func TestTransposeRequiredErrors(t *testing.T) {
	gr := buildSample(t, nxgraph.Options{P: 4}) // no transpose
	if _, err := gr.WCC(); err == nil {
		t.Fatal("WCC without transpose accepted")
	}
	if _, err := gr.SCC(); err == nil {
		t.Fatal("SCC without transpose accepted")
	}
	if _, _, err := gr.HITS(3); err == nil {
		t.Fatal("HITS without transpose accepted")
	}
	if _, err := gr.BFS(1 << 30); err == nil {
		t.Fatal("out-of-range BFS root accepted")
	}
}

func TestGenerateErrors(t *testing.T) {
	if _, err := nxgraph.Generate(nxgraph.GenSpec{}); err == nil {
		t.Fatal("zero spec accepted")
	}
	if _, err := nxgraph.Generate(nxgraph.RMAT(99, 1, 1)); err == nil {
		t.Fatal("huge scale accepted")
	}
}
